package serve

import (
	"errors"
	"hash/fnv"
	"sync"

	"github.com/drv-go/drv/exp/monitor"
)

// job is one monitored replay: a closed stream's history plus the channel
// its responses go back on.
type job struct {
	stream string
	cfg    monitor.Config
	// respond delivers one response line toward the job's connection; it
	// blocks when the connection's outbound queue is full (backpressure: a
	// slow client stalls the shards its streams map to, nothing else).
	respond func(Response)
	// done releases the connection's in-flight accounting.
	done func()
}

// pool is the sharded session pool: each shard is one worker goroutine
// owning one exp/monitor.Session, fed by a bounded job queue. Streams are
// keyed to shards by stream id, so every run of a given id executes on the
// same warm session and runs of one id never reorder. Session pooling never
// changes verdict bytes (the pooled-vs-fresh contract of the monitor core),
// so served output is byte-identical across pool sizes.
type pool struct {
	shards []chan *job
	wg     sync.WaitGroup
}

// newPool starts shards workers with the given per-shard queue depth.
func newPool(shards, depth int) *pool {
	p := &pool{shards: make([]chan *job, shards)}
	for i := range p.shards {
		ch := make(chan *job, depth)
		p.shards[i] = ch
		p.wg.Add(1)
		go p.worker(ch)
	}
	return p
}

// shard returns the job queue stream id maps to.
func (p *pool) shard(stream string) chan<- *job {
	h := fnv.New32a()
	h.Write([]byte(stream))
	return p.shards[h.Sum32()%uint32(len(p.shards))]
}

// stop closes the shard queues and waits for the workers to drain them. Call
// only after every enqueuer has exited.
func (p *pool) stop() {
	for _, ch := range p.shards {
		close(ch)
	}
	p.wg.Wait()
}

func (p *pool) worker(jobs <-chan *job) {
	defer p.wg.Done()
	s := monitor.NewSession()
	defer s.Close()
	for j := range jobs {
		runJob(s, j)
		j.done()
	}
}

// runJob replays one history and streams its verdicts back: every verdict in
// (proc, index) order, then the done summary — a deterministic byte sequence
// for a given input. A replay cut by the stream's MaxSteps still delivers
// its partial verdicts, flagged Truncated; any other replay error becomes a
// stream-level error line.
func runJob(s *monitor.Session, j *job) {
	res, err := s.Run(j.cfg)
	truncated := false
	if err != nil {
		if !errors.Is(err, monitor.ErrTruncated) || res == nil {
			j.respond(Response{Error: &StreamError{Stream: j.stream, Msg: err.Error()}})
			return
		}
		truncated = true
	}
	verdicts, no := 0, 0
	for p := range res.Verdicts {
		for k, v := range res.Verdicts[p] {
			verdicts++
			if v == monitor.No {
				no++
			}
			hist := 0
			if k < len(res.HistAt[p]) {
				hist = res.HistAt[p][k]
			}
			j.respond(Response{Verdict: &VerdictEvent{
				Stream:  j.stream,
				Proc:    p,
				Index:   k,
				Verdict: v.String(),
				Step:    res.StepAt[p][k],
				Hist:    hist,
			}})
		}
	}
	j.respond(Response{Done: &Done{
		Stream:    j.stream,
		Events:    len(res.History),
		Steps:     res.Steps,
		Verdicts:  verdicts,
		NO:        no,
		Truncated: truncated,
	}})
}
