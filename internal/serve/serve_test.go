package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/drv-go/drv/exp/monitor"
	"github.com/drv-go/drv/exp/trace"
)

// rw glues a buffered request to a response buffer for one-shot ServeConn
// round trips.
type rw struct {
	io.Reader
	io.Writer
}

// request renders envelope lines: the handshake plus the given messages.
func request(t *testing.T, msgs ...Request) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, m := range append([]Request{{Config: &ClientConfig{Protocol: ProtocolVersion}}}, msgs...) {
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// streamRequest renders one full stream: open, meta, the word's symbols,
// close.
func streamRequest(t *testing.T, open Open, n int, w trace.Word) []Request {
	t.Helper()
	msgs := []Request{
		{Open: &open},
		{Event: &StreamEvent{Stream: open.Stream, Event: trace.Event{Kind: trace.KindMeta, Meta: &trace.Meta{N: n}}}},
	}
	for _, sym := range w {
		ev, err := trace.EncodeSymbol(sym)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, Request{Event: &StreamEvent{Stream: open.Stream, Event: ev}})
	}
	return append(msgs, Request{Close: &CloseStream{Stream: open.Stream}})
}

// serveOnce runs one buffered request through a fresh server and returns the
// raw response bytes.
func serveOnce(t *testing.T, cfg Config, req []byte) []byte {
	t.Helper()
	srv := New(cfg)
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	}()
	var out bytes.Buffer
	if err := srv.ServeConn(rw{bytes.NewReader(req), &out}); err != nil {
		t.Fatalf("ServeConn: %v", err)
	}
	return out.Bytes()
}

// parseResponses decodes every response line.
func parseResponses(t *testing.T, raw []byte) []Response {
	t.Helper()
	var out []Response
	dec := json.NewDecoder(bytes.NewReader(raw))
	for {
		var r Response
		if err := dec.Decode(&r); err == io.EOF {
			return out
		} else if err != nil {
			t.Fatalf("response stream does not parse: %v\n%s", err, raw)
		}
		out = append(out, r)
	}
}

// queueWord is a small linearizable queue history over two processes.
func queueWord() trace.Word {
	return trace.NewB().
		Inv(0, "enq", trace.Int(1)).
		Inv(1, "enq", trace.Int(2)).
		Res(0, "enq", trace.Unit{}).
		Res(1, "enq", trace.Unit{}).
		Op(0, "deq", nil, trace.Int(1)).
		Word()
}

func TestServeSingleStream(t *testing.T) {
	req := request(t, streamRequest(t, Open{Stream: "s1", Logic: "lin", Object: "queue"}, 2, queueWord())...)
	raw := serveOnce(t, Config{Shards: 2}, req)
	resps := parseResponses(t, raw)

	if len(resps) < 3 {
		t.Fatalf("got %d responses:\n%s", len(resps), raw)
	}
	if resps[0].Config == nil || resps[0].Config.Protocol != ProtocolVersion {
		t.Fatalf("first response is not the config ack: %+v", resps[0])
	}
	if resps[1].Opened == nil || resps[1].Opened.Stream != "s1" {
		t.Fatalf("second response is not the opened ack: %+v", resps[1])
	}
	last := resps[len(resps)-1]
	if last.Done == nil {
		t.Fatalf("last response is not done: %+v", last)
	}
	if last.Done.Truncated {
		t.Fatal("drained replay reported truncated")
	}
	if last.Done.Events != len(queueWord()) {
		t.Fatalf("done.events = %d, want %d", last.Done.Events, len(queueWord()))
	}
	verdicts := resps[2 : len(resps)-1]
	if len(verdicts) != last.Done.Verdicts || len(verdicts) == 0 {
		t.Fatalf("verdict lines %d vs done.verdicts %d", len(verdicts), last.Done.Verdicts)
	}
	// Verdicts arrive in (proc, index) order with NO count matching.
	no := 0
	prevProc, prevIdx := -1, -1
	for _, r := range verdicts {
		v := r.Verdict
		if v == nil {
			t.Fatalf("mid-stream response is not a verdict: %+v", r)
		}
		if v.Proc < prevProc || (v.Proc == prevProc && v.Index <= prevIdx) {
			t.Fatalf("verdicts out of (proc, index) order: %+v after (%d,%d)", v, prevProc, prevIdx)
		}
		prevProc, prevIdx = v.Proc, v.Index
		if v.Verdict == "NO" {
			no++
		}
	}
	if no != last.Done.NO {
		t.Fatalf("NO lines %d vs done.no %d", no, last.Done.NO)
	}
}

// TestServeMatchesDirectReplay pins the audit contract: the served verdict
// stream is exactly what replaying the recorded input through
// exp/monitor.Run produces.
func TestServeMatchesDirectReplay(t *testing.T) {
	h := queueWord()
	req := request(t, streamRequest(t, Open{Stream: "audit", Logic: "lin", Object: "queue"}, 2, h)...)
	resps := parseResponses(t, serveOnce(t, Config{Shards: 3}, req))

	res, err := monitor.Run(monitor.Config{N: 2, Object: trace.Queue(), Logic: monitor.LogicLin, History: h})
	if err != nil {
		t.Fatal(err)
	}
	var want []VerdictEvent
	for p := range res.Verdicts {
		for k, v := range res.Verdicts[p] {
			want = append(want, VerdictEvent{
				Stream: "audit", Proc: p, Index: k, Verdict: v.String(),
				Step: res.StepAt[p][k], Hist: res.HistAt[p][k],
			})
		}
	}
	var got []VerdictEvent
	for _, r := range resps {
		if r.Verdict != nil {
			got = append(got, *r.Verdict)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("served %d verdicts, replay has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("verdict %d: served %+v, replay %+v", i, got[i], want[i])
		}
	}
}

// TestServeDeterministicAcrossPools pins byte-identical responses across
// runs and across session-pool sizes.
func TestServeDeterministicAcrossPools(t *testing.T) {
	req := request(t,
		append(streamRequest(t, Open{Stream: "a", Logic: "lin", Object: "queue"}, 2, queueWord()),
			streamRequest(t, Open{Stream: "a", Logic: "sc", Object: "queue"}, 2, queueWord())...)...)
	first := serveOnce(t, Config{Shards: 1}, req)
	for _, shards := range []int{1, 4, 16} {
		got := serveOnce(t, Config{Shards: shards}, req)
		if !bytes.Equal(first, got) {
			t.Fatalf("responses differ between shards=1 and shards=%d:\n%s\nvs\n%s", shards, first, got)
		}
	}
}

// TestServeMultiStreamPerStreamDeterminism runs several interleaved streams
// and checks each stream's response subsequence equals its single-stream
// serve, whatever the global interleaving.
func TestServeMultiStreamPerStreamDeterminism(t *testing.T) {
	words := map[string]trace.Word{
		"q1": queueWord(),
		"q2": trace.NewB().Op(0, "enq", trace.Int(9), trace.Unit{}).Op(1, "deq", nil, trace.Int(9)).Word(),
		"c1": trace.NewB().Inv(0, "inc", nil).Op(1, "read", nil, trace.Int(0)).Res(0, "inc", trace.Unit{}).Word(),
	}
	open := map[string]Open{
		"q1": {Stream: "q1", Logic: "lin", Object: "queue"},
		"q2": {Stream: "q2", Logic: "sc", Object: "queue"},
		"c1": {Stream: "c1", Logic: "wec"},
	}
	ids := []string{"q1", "q2", "c1"}

	// Interleave the streams' lines round-robin after opening all three.
	var msgs []Request
	perStream := map[string][]Request{}
	for _, id := range ids {
		perStream[id] = streamRequest(t, open[id], 2, words[id])
	}
	for i := 0; ; i++ {
		progressed := false
		for _, id := range ids {
			if i < len(perStream[id]) {
				msgs = append(msgs, perStream[id][i])
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	interleaved := parseResponses(t, serveOnce(t, Config{Shards: 2}, request(t, msgs...)))

	project := func(resps []Response, id string) []string {
		var out []string
		for _, r := range resps {
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case r.Opened != nil && r.Opened.Stream == id,
				r.Verdict != nil && r.Verdict.Stream == id,
				r.Done != nil && r.Done.Stream == id,
				r.Error != nil && r.Error.Stream == id:
				out = append(out, string(b))
			}
		}
		return out
	}
	for _, id := range ids {
		solo := parseResponses(t, serveOnce(t, Config{Shards: 2}, request(t, streamRequest(t, open[id], 2, words[id])...)))
		want := project(solo, id)
		got := project(interleaved, id)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("stream %s projection differs:\n got %v\nwant %v", id, got, want)
		}
		if len(got) == 0 {
			t.Fatalf("stream %s produced no responses", id)
		}
	}
}

// TestServeTruncation pins honest partial verdicts: a max_steps bound that
// cuts the replay still delivers the prefix's verdicts, flagged truncated.
func TestServeTruncation(t *testing.T) {
	b := trace.NewB()
	for i := 0; i < 100; i++ {
		b.Op(0, "enq", trace.Int(int64(i)), trace.Unit{})
	}
	h := b.Word()
	req := request(t, streamRequest(t, Open{Stream: "cut", Logic: "lin", Object: "queue", MaxSteps: 30}, 1, h)...)
	resps := parseResponses(t, serveOnce(t, Config{Shards: 1}, req))
	last := resps[len(resps)-1]
	if last.Done == nil || !last.Done.Truncated {
		t.Fatalf("cut replay did not report truncated: %+v", last)
	}
	if last.Done.Events >= len(h) {
		t.Fatalf("cut replay claims %d of %d events", last.Done.Events, len(h))
	}
	if last.Done.Verdicts == 0 {
		t.Fatal("cut replay delivered no partial verdicts")
	}
}

// TestServeProtocolErrors table-tests the error paths of the envelope and
// the per-stream trace discipline.
func TestServeProtocolErrors(t *testing.T) {
	meta := func(id string, n int) Request {
		return Request{Event: &StreamEvent{Stream: id, Event: trace.Event{Kind: trace.KindMeta, Meta: &trace.Meta{N: n}}}}
	}
	sym := func(id string) Request {
		return Request{Event: &StreamEvent{Stream: id, Event: trace.Event{Kind: trace.KindSym, Proc: 0, Sym: "inv", Op: "enq"}}}
	}
	openQ := func(id string) Request { return Request{Open: &Open{Stream: id, Logic: "lin", Object: "queue"}} }

	tests := []struct {
		name string
		raw  []byte // raw request bytes; nil means use msgs
		msgs []Request
		// wantErr is a substring of some error response; conn tells whether
		// it must be connection-level (no stream).
		wantErr string
		conn    bool
	}{
		{name: "no handshake", raw: []byte(`{"open":{"stream":"s","logic":"lin"}}` + "\n"), wantErr: "first line must be the config handshake", conn: true},
		{name: "bad version", raw: []byte(`{"config":{"protocol":"v9.9.9"}}` + "\n"), wantErr: `protocol "v9.9.9" not supported`, conn: true},
		{name: "malformed json", raw: append(request(t), []byte("{not json}\n")...), wantErr: "malformed request", conn: true},
		{name: "two fields set", raw: append(request(t), []byte(`{"open":{"stream":"s","logic":"lin"},"close":{"stream":"s"}}`+"\n")...), wantErr: "exactly one of", conn: true},
		{name: "empty line object", raw: append(request(t), []byte("{}\n")...), wantErr: "exactly one of", conn: true},
		{name: "duplicate handshake", msgs: []Request{{Config: &ClientConfig{Protocol: ProtocolVersion}}}, wantErr: "duplicate config handshake", conn: true},
		{name: "unknown logic", msgs: []Request{{Open: &Open{Stream: "s", Logic: "wat"}}}, wantErr: `unknown logic "wat"`},
		{name: "unknown object", msgs: []Request{{Open: &Open{Stream: "s", Logic: "lin", Object: "wat"}}}, wantErr: `unknown object "wat"`},
		{name: "unknown array", msgs: []Request{{Open: &Open{Stream: "s", Logic: "lin", Object: "queue", Array: "wat"}}}, wantErr: `unknown array "wat"`},
		{name: "duplicate open", msgs: []Request{openQ("s"), openQ("s")}, wantErr: `stream "s" is already open`},
		{name: "event for unopened stream", msgs: []Request{sym("ghost")}, wantErr: `event for unopened stream "ghost"`},
		{name: "close for unopened stream", msgs: []Request{{Close: &CloseStream{Stream: "ghost"}}}, wantErr: `close for unopened stream "ghost"`},
		{name: "symbol before meta", msgs: []Request{openQ("s"), sym("s")}, wantErr: "symbol line before the stream's meta header"},
		{name: "duplicate meta", msgs: []Request{openQ("s"), meta("s", 2), meta("s", 2)}, wantErr: "duplicate meta line"},
		{name: "meta without object", msgs: []Request{openQ("s"), {Event: &StreamEvent{Stream: "s", Event: trace.Event{Kind: trace.KindMeta}}}}, wantErr: "meta line carries no meta object"},
		{name: "meta with bad n", msgs: []Request{openQ("s"), meta("s", 0)}, wantErr: "meta n must be ≥ 1"},
		{name: "verdict as input", msgs: []Request{openQ("s"), meta("s", 1), {Event: &StreamEvent{Stream: "s", Event: trace.Event{Kind: trace.KindVerdict, Verdict: "YES"}}}}, wantErr: "verdict lines are server output"},
		{name: "close without meta", msgs: []Request{openQ("s"), {Close: &CloseStream{Stream: "s"}}}, wantErr: "stream closed without a meta header"},
		{name: "ill-formed history", msgs: append([]Request{openQ("s"), meta("s", 1)},
			Request{Event: &StreamEvent{Stream: "s", Event: trace.Event{Kind: trace.KindSym, Proc: 0, Sym: "res", Op: "enq"}}},
			Request{Close: &CloseStream{Stream: "s"}}), wantErr: "not well-formed"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			raw := tc.raw
			if raw == nil {
				raw = request(t, tc.msgs...)
			}
			resps := parseResponses(t, serveOnce(t, Config{Shards: 1}, raw))
			found := false
			for _, r := range resps {
				if r.Error == nil {
					continue
				}
				if !strings.Contains(r.Error.Msg, tc.wantErr) {
					continue
				}
				if tc.conn && r.Error.Stream != "" {
					t.Fatalf("expected a connection-level error, got stream-level: %+v", r.Error)
				}
				found = true
			}
			if !found {
				t.Fatalf("no error response containing %q in:\n%+v", tc.wantErr, resps)
			}
		})
	}
}

// TestServeFailedStreamIsQuiet pins the no-flood contract: after a stream
// fails, its further events and its close produce no additional responses,
// and the id can be reopened and served.
func TestServeFailedStreamIsQuiet(t *testing.T) {
	sym := Request{Event: &StreamEvent{Stream: "s", Event: trace.Event{Kind: trace.KindSym, Proc: 0, Sym: "inv", Op: "enq"}}}
	msgs := []Request{
		{Open: &Open{Stream: "s", Logic: "lin", Object: "queue"}},
		sym,           // fails: symbol before meta
		sym, sym, sym, // discarded quietly
		{Close: &CloseStream{Stream: "s"}}, // swallowed
	}
	msgs = append(msgs, streamRequest(t, Open{Stream: "s", Logic: "lin", Object: "queue"}, 2, queueWord())...)
	resps := parseResponses(t, serveOnce(t, Config{Shards: 1}, request(t, msgs...)))

	errs, dones := 0, 0
	for _, r := range resps {
		if r.Error != nil {
			errs++
		}
		if r.Done != nil {
			dones++
		}
	}
	if errs != 1 {
		t.Fatalf("got %d error responses, want exactly 1:\n%+v", errs, resps)
	}
	if dones != 1 {
		t.Fatalf("reopened stream was not served: %d done lines", dones)
	}
}

// TestServeStreamEventCap pins the per-stream buffering bound.
func TestServeStreamEventCap(t *testing.T) {
	var msgs []Request
	msgs = append(msgs, Request{Open: &Open{Stream: "s", Logic: "lin", Object: "queue"}})
	msgs = append(msgs, Request{Event: &StreamEvent{Stream: "s", Event: trace.Event{Kind: trace.KindMeta, Meta: &trace.Meta{N: 1}}}})
	for i := 0; i < 5; i++ {
		ev, err := trace.EncodeSymbol(trace.NewInv(0, "enq", trace.Int(int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, Request{Event: &StreamEvent{Stream: "s", Event: ev}})
	}
	resps := parseResponses(t, serveOnce(t, Config{Shards: 1, MaxStreamEvents: 3}, request(t, msgs...)))
	found := false
	for _, r := range resps {
		if r.Error != nil && strings.Contains(r.Error.Msg, "exceeds the 3-event bound") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no event-cap error in %+v", resps)
	}
}

// TestServeBackpressureCompletes floods a tiny-queued server with many
// streams on several connections and checks every stream is served: bounded
// queues may stall producers but must not deadlock or drop.
func TestServeBackpressureCompletes(t *testing.T) {
	srv := New(Config{Shards: 2, QueueDepth: 1, WriteDepth: 1})
	defer srv.Shutdown(context.Background())

	const conns, streamsPer = 3, 8
	errc := make(chan error, conns)
	for ci := 0; ci < conns; ci++ {
		ci := ci
		go func() {
			var msgs []Request
			for si := 0; si < streamsPer; si++ {
				id := fmt.Sprintf("c%d-s%d", ci, si)
				msgs = append(msgs, streamRequestRaw(id, queueWord())...)
			}
			var out bytes.Buffer
			if err := srv.ServeConn(rw{bytes.NewReader(requestRaw(msgs...)), &out}); err != nil {
				errc <- err
				return
			}
			dones := 0
			for _, r := range parseResponsesRaw(out.Bytes()) {
				if r.Done != nil {
					dones++
				}
			}
			if dones != streamsPer {
				errc <- fmt.Errorf("conn %d: served %d of %d streams", ci, dones, streamsPer)
				return
			}
			errc <- nil
		}()
	}
	for i := 0; i < conns; i++ {
		select {
		case err := <-errc:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("backpressure deadlock: connections did not finish")
		}
	}
}

// Raw (non-testing.T) variants for use off the test goroutine.
func requestRaw(msgs ...Request) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, m := range append([]Request{{Config: &ClientConfig{Protocol: ProtocolVersion}}}, msgs...) {
		if err := enc.Encode(m); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

func streamRequestRaw(id string, w trace.Word) []Request {
	msgs := []Request{
		{Open: &Open{Stream: id, Logic: "lin", Object: "queue"}},
		{Event: &StreamEvent{Stream: id, Event: trace.Event{Kind: trace.KindMeta, Meta: &trace.Meta{N: 2}}}},
	}
	for _, sym := range w {
		ev, err := trace.EncodeSymbol(sym)
		if err != nil {
			panic(err)
		}
		msgs = append(msgs, Request{Event: &StreamEvent{Stream: id, Event: ev}})
	}
	return append(msgs, Request{Close: &CloseStream{Stream: id}})
}

func parseResponsesRaw(raw []byte) []Response {
	var out []Response
	dec := json.NewDecoder(bytes.NewReader(raw))
	for {
		var r Response
		if err := dec.Decode(&r); err != nil {
			return out
		}
		out = append(out, r)
	}
}

// TestServeTCPGracefulDrain serves over real TCP, starts Shutdown while a
// stream's run is in flight, and checks the verdicts are still delivered
// before the server stops.
func TestServeTCPGracefulDrain(t *testing.T) {
	srv := New(Config{Shards: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write(requestRaw(streamRequestRaw("drain", queueWord())...)); err != nil {
		t.Fatal(err)
	}
	if err := nc.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}

	// Wait for the config ack so the connection is known to be served, then
	// shut down while the stream may still be in flight; the drain must
	// deliver its done line anyway.
	br := bufio.NewReader(nc)
	ack, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading config ack: %v", err)
	}
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	resps := parseResponsesRaw(append(ack, rest...))
	if len(resps) == 0 || resps[len(resps)-1].Done == nil {
		t.Fatalf("drained connection did not receive its done line:\n%s%s", ack, rest)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}
