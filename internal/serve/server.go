// Package serve implements monitoring-as-a-service over the exported exp/
// surface: a long-running server that accepts recorded histories as NDJSON
// trace streams (the exp/trace Writer/Read line format inside a versioned
// request/response envelope), routes each stream through a sharded pool of
// exp/monitor sessions keyed by stream id, and streams the verdict events
// back incrementally as they are produced.
//
// The protocol is line-oriented in both directions; see envelope.go for the
// message set. Backpressure is bounded queues end to end: per-shard job
// queues (a burst of closed streams blocks the connections that sent them,
// not the server), per-connection outbound queues (a slow reader stalls only
// the shards serving its streams), and a per-stream event cap (a stream
// cannot buffer an unbounded history). Shutdown drains: in-flight runs
// finish and their verdicts are delivered before the server stops.
//
// Served verdict streams inherit the replay determinism contract: the same
// input stream yields byte-identical response lines, regardless of pool
// size or how the input was chunked, and re-running the recorded history
// through exp/monitor.Run reproduces exactly the served verdicts.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"

	"github.com/drv-go/drv/exp/monitor"
	"github.com/drv-go/drv/exp/trace"
)

// Defaults for Config fields left zero.
const (
	// DefaultQueueDepth bounds each shard's pending-run queue.
	DefaultQueueDepth = 16
	// DefaultWriteDepth bounds each connection's outbound response queue.
	DefaultWriteDepth = 64
	// DefaultMaxStreamEvents bounds the history one stream may buffer.
	DefaultMaxStreamEvents = 1 << 20
)

// Config sizes a Server.
type Config struct {
	// Shards is the session-pool width: the number of worker goroutines,
	// each owning one exp/monitor.Session. Streams are keyed to shards by
	// stream id. Zero means GOMAXPROCS.
	Shards int
	// QueueDepth bounds each shard's pending-run queue; zero means
	// DefaultQueueDepth.
	QueueDepth int
	// WriteDepth bounds each connection's outbound response queue; zero
	// means DefaultWriteDepth.
	WriteDepth int
	// MaxStreamEvents bounds the number of history events one stream may
	// buffer before it is failed; zero means DefaultMaxStreamEvents.
	MaxStreamEvents int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.WriteDepth <= 0 {
		c.WriteDepth = DefaultWriteDepth
	}
	if c.MaxStreamEvents <= 0 {
		c.MaxStreamEvents = DefaultMaxStreamEvents
	}
	return c
}

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("serve: server closed")

// Server accepts trace-stream connections and serves verdict streams. Create
// with New, run with Serve (TCP) and/or ServeConn (any byte stream), stop
// with Shutdown.
type Server struct {
	cfg  Config
	pool *pool

	mu        sync.Mutex
	closing   bool
	listeners map[net.Listener]struct{}
	conns     map[io.Closer]struct{}
	connWG    sync.WaitGroup
}

// New returns a running server (its session pool is live; connections can be
// served immediately). Stop it with Shutdown.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:       cfg,
		pool:      newPool(cfg.Shards, cfg.QueueDepth),
		listeners: map[net.Listener]struct{}{},
		conns:     map[io.Closer]struct{}{},
	}
}

// Serve accepts connections on l until Shutdown, serving each on its own
// goroutine. It returns ErrServerClosed after Shutdown, or the Accept error
// that stopped it.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.connWG.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
				c.Close()
			}()
			s.serveConn(c)
		}()
	}
}

// ServeConn serves one already-established connection (for example stdio or
// a test pipe) and returns when its input is exhausted and every response
// has been written. The returned error is the transport failure, if any;
// protocol errors are reported to the client in-band and return nil.
func (s *Server) ServeConn(rw io.ReadWriter) error {
	s.connWG.Add(1)
	defer s.connWG.Done()
	return s.serveConn(rw)
}

func (s *Server) serveConn(rw io.ReadWriter) error {
	c := &conn{
		srv:     s,
		out:     make(chan Response, s.cfg.WriteDepth),
		streams: map[string]*stream{},
	}

	// The writer goroutine serializes all response lines — the reader's acks
	// and the shard workers' verdicts — and flushes per line so clients see
	// verdicts as they are produced. On a transport error it keeps draining
	// (discarding) so no worker blocks on a dead connection.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriter(rw)
		enc := json.NewEncoder(bw)
		broken := false
		for resp := range c.out {
			if broken {
				continue
			}
			if err := enc.Encode(resp); err != nil {
				broken = true
				continue
			}
			if err := bw.Flush(); err != nil {
				broken = true
			}
		}
	}()

	err := c.read(rw)
	c.jobs.Wait() // every enqueued run has delivered its responses
	close(c.out)
	<-writerDone
	if errors.Is(err, errConnFatal) {
		// Already reported to the client in-band; the transport is fine.
		return nil
	}
	return err
}

// Shutdown stops the server gracefully: it stops accepting, waits for every
// connection to finish (their in-flight runs drain and deliver), then stops
// the session pool. If ctx expires first, remaining connections are
// force-closed — their queued runs still drain, but undelivered responses
// are discarded — and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	lns := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		lns = append(lns, l)
	}
	s.mu.Unlock()
	for _, l := range lns {
		l.Close()
	}

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.pool.stop()
	return err
}

// conn is the per-connection state: the protocol reader's stream table and
// the shared outbound queue.
type conn struct {
	srv     *Server
	out     chan Response
	jobs    sync.WaitGroup
	streams map[string]*stream
}

// stream is one open verdict stream: its monitor selection and the history
// collected so far under the trace-format discipline.
type stream struct {
	open   Open
	logic  monitor.Logic
	object trace.Object
	array  monitor.Array
	meta   *trace.Meta
	hist   trace.Word
	failed bool
}

// errConnFatal marks protocol failures that were already reported in-band.
var errConnFatal = errors.New("serve: connection-fatal protocol error")

// read runs the protocol state machine over the connection's input. It
// returns nil on EOF, errConnFatal after an in-band connection-level error,
// or the transport error.
func (c *conn) read(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, trace.ReadBufferSize), trace.ReadMaxLineBytes)
	line := 0
	configured := false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(raw, &req); err != nil {
			return c.fatal(line, fmt.Sprintf("malformed request: %v", err))
		}
		kind, err := req.kind()
		if err != nil {
			return c.fatal(line, err.Error())
		}
		if !configured {
			if kind != "config" {
				return c.fatal(line, "first line must be the config handshake")
			}
			if req.Config.Protocol != ProtocolVersion {
				return c.fatal(line, fmt.Sprintf("protocol %q not supported (server speaks %s)", req.Config.Protocol, ProtocolVersion))
			}
			configured = true
			c.out <- Response{Config: &ServerConfig{Protocol: ProtocolVersion}}
			continue
		}
		switch kind {
		case "config":
			return c.fatal(line, "duplicate config handshake")
		case "open":
			c.handleOpen(line, req.Open)
		case "event":
			c.handleEvent(line, req.Event)
		case "close":
			c.handleClose(line, req.Close)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return c.fatal(line+1, fmt.Sprintf("line exceeds the %d-byte bound: %v", trace.ReadMaxLineBytes, err))
		}
		return err
	}
	return nil
}

// fatal reports a connection-level error in-band and stops the reader.
func (c *conn) fatal(line int, msg string) error {
	c.out <- Response{Error: &StreamError{Line: line, Msg: msg}}
	return errConnFatal
}

// fail reports a stream-level error and marks the stream dead: its further
// input is discarded (no error flood), its close is swallowed, and its id
// may be reopened.
func (c *conn) fail(id string, line int, msg string) {
	c.out <- Response{Error: &StreamError{Stream: id, Line: line, Msg: msg}}
	c.streams[id] = &stream{failed: true}
}

func (c *conn) handleOpen(line int, o *Open) {
	if o.Stream == "" {
		c.out <- Response{Error: &StreamError{Line: line, Msg: "open without a stream id"}}
		return
	}
	if st, ok := c.streams[o.Stream]; ok && !st.failed {
		c.fail(o.Stream, line, fmt.Sprintf("stream %q is already open", o.Stream))
		return
	}
	logic, err := logicByName(o.Logic)
	if err != nil {
		c.fail(o.Stream, line, err.Error())
		return
	}
	object, err := objectByName(o.Object)
	if err != nil {
		c.fail(o.Stream, line, err.Error())
		return
	}
	array, err := arrayByName(o.Array)
	if err != nil {
		c.fail(o.Stream, line, err.Error())
		return
	}
	c.streams[o.Stream] = &stream{open: *o, logic: logic, object: object, array: array}
	c.out <- Response{Opened: &Opened{Stream: o.Stream}}
}

func (c *conn) handleEvent(line int, ev *StreamEvent) {
	st, ok := c.streams[ev.Stream]
	if !ok {
		c.fail(ev.Stream, line, fmt.Sprintf("event for unopened stream %q", ev.Stream))
		return
	}
	if st.failed {
		return
	}
	switch ev.Kind {
	case trace.KindMeta:
		if st.meta != nil {
			c.fail(ev.Stream, line, "duplicate meta line (the stream already has its header)")
			return
		}
		if ev.Meta == nil {
			c.fail(ev.Stream, line, "meta line carries no meta object")
			return
		}
		if ev.Meta.N < 1 {
			c.fail(ev.Stream, line, fmt.Sprintf("meta n must be ≥ 1, got %d", ev.Meta.N))
			return
		}
		m := *ev.Meta
		st.meta = &m
	case trace.KindSym:
		if st.meta == nil {
			c.fail(ev.Stream, line, "symbol line before the stream's meta header")
			return
		}
		if len(st.hist) >= c.srv.cfg.MaxStreamEvents {
			c.fail(ev.Stream, line, fmt.Sprintf("stream exceeds the %d-event bound", c.srv.cfg.MaxStreamEvents))
			return
		}
		sym, err := trace.DecodeSymbol(ev.Event)
		if err != nil {
			c.fail(ev.Stream, line, err.Error())
			return
		}
		st.hist = append(st.hist, sym)
	case trace.KindVerdict:
		c.fail(ev.Stream, line, "verdict lines are server output, not stream input")
	default:
		c.fail(ev.Stream, line, fmt.Sprintf("unknown event kind %q", ev.Kind))
	}
}

func (c *conn) handleClose(line int, cl *CloseStream) {
	st, ok := c.streams[cl.Stream]
	if !ok {
		c.fail(cl.Stream, line, fmt.Sprintf("close for unopened stream %q", cl.Stream))
		delete(c.streams, cl.Stream)
		return
	}
	delete(c.streams, cl.Stream) // the id may be reopened; runs stay ordered per shard
	if st.failed {
		return
	}
	if st.meta == nil {
		c.out <- Response{Error: &StreamError{Stream: cl.Stream, Line: line, Msg: "stream closed without a meta header"}}
		return
	}
	c.jobs.Add(1)
	c.srv.pool.shard(cl.Stream) <- &job{
		stream: cl.Stream,
		cfg: monitor.Config{
			N:        st.meta.N,
			Object:   st.object,
			Logic:    st.logic,
			History:  st.hist,
			Array:    st.array,
			MaxSteps: st.open.MaxSteps,
		},
		respond: func(resp Response) { c.out <- resp },
		done:    c.jobs.Done,
	}
}

// logicByName maps the wire name to the monitor logic.
func logicByName(name string) (monitor.Logic, error) {
	switch name {
	case "lin":
		return monitor.LogicLin, nil
	case "sc":
		return monitor.LogicSC, nil
	case "wec":
		return monitor.LogicWEC, nil
	case "sec":
		return monitor.LogicSEC, nil
	case "ecledger":
		return monitor.LogicECLedger, nil
	}
	return 0, fmt.Errorf("unknown logic %q (want lin, sc, wec, sec or ecledger)", name)
}

// objectByName maps the wire name to a sequential specification. Empty is
// allowed (the counter and ledger logics carry their own specification).
func objectByName(name string) (trace.Object, error) {
	switch name {
	case "":
		return nil, nil
	case "register":
		return trace.Register(), nil
	case "counter":
		return trace.Counter(), nil
	case "queue":
		return trace.Queue(), nil
	case "stack":
		return trace.Stack(), nil
	case "ledger":
		return trace.Ledger(), nil
	case "consensus":
		return trace.Consensus(), nil
	}
	return nil, fmt.Errorf("unknown object %q (want register, counter, queue, stack, ledger or consensus)", name)
}

// arrayByName maps the wire name to an announcement-array kind.
func arrayByName(name string) (monitor.Array, error) {
	switch name {
	case "", "atomic":
		return monitor.ArrayAtomic, nil
	case "aadgms":
		return monitor.ArrayAADGMS, nil
	case "collect":
		return monitor.ArrayCollect, nil
	}
	return 0, fmt.Errorf("unknown array %q (want atomic, aadgms or collect)", name)
}
