package serve

import (
	"fmt"

	"github.com/drv-go/drv/exp/trace"
)

// ProtocolVersion identifies the serve wire protocol. A client's config line
// must name exactly this version; the envelope is versioned so the structs
// below can evolve without silently misreading old streams.
const ProtocolVersion = "v1.0.0"

// Request is one client→server line of the NDJSON protocol. Exactly one
// field is set per line (the govulncheck wire-layer shape): a config
// handshake first, then any interleaving of open/event/close lines for the
// connection's streams.
type Request struct {
	Config *ClientConfig `json:"config,omitempty"`
	Open   *Open         `json:"open,omitempty"`
	Event  *StreamEvent  `json:"event,omitempty"`
	Close  *CloseStream  `json:"close,omitempty"`
}

// kind names the set request field for error messages, and errors unless
// exactly one field is set.
func (r *Request) kind() (string, error) {
	set := []string{}
	if r.Config != nil {
		set = append(set, "config")
	}
	if r.Open != nil {
		set = append(set, "open")
	}
	if r.Event != nil {
		set = append(set, "event")
	}
	if r.Close != nil {
		set = append(set, "close")
	}
	if len(set) != 1 {
		return "", fmt.Errorf("request line must set exactly one of config/open/event/close, got %d", len(set))
	}
	return set[0], nil
}

// ClientConfig is the handshake: the first line of every connection.
type ClientConfig struct {
	// Protocol is the client's protocol version; it must equal
	// ProtocolVersion.
	Protocol string `json:"protocol"`
}

// Open starts a verdict stream: it names the stream and selects the monitor
// that will judge its history. The history itself follows as event lines in
// the exp/trace wire format (one meta header, then symbols). Stream ids may
// be reused after the stream's done line: runs for one id always execute on
// the same pooled session, in order.
type Open struct {
	// Stream is the client-chosen stream id; all later lines of this stream
	// name it.
	Stream string `json:"stream"`
	// Logic selects the monitor: "lin", "sc", "wec", "sec" or "ecledger".
	Logic string `json:"logic"`
	// Object names the sequential specification for the lin and sc logics:
	// "register", "counter", "queue", "stack", "ledger" or "consensus".
	Object string `json:"object,omitempty"`
	// Array selects the announcement array: "atomic" (default), "aadgms" or
	// "collect".
	Array string `json:"array,omitempty"`
	// MaxSteps bounds the replay; ≤ 0 means monitor.DefaultMaxSteps. A
	// replay cut by the bound is reported with Done.Truncated.
	MaxSteps int `json:"max_steps,omitempty"`
}

// StreamEvent is one line of a stream's history: a verbatim exp/trace event
// (the Writer/Read line format) plus the stream id. The trace discipline is
// enforced per stream: the first event must be the one meta line, symbols
// follow, and verdict-kind lines are rejected (verdicts are the server's
// output, not its input).
type StreamEvent struct {
	Stream string `json:"stream"`
	trace.Event
}

// CloseStream ends a stream's history and requests its verdicts.
type CloseStream struct {
	Stream string `json:"stream"`
}

// Response is one server→client line. Exactly one field is set per line: a
// config ack first, then per-stream opened/verdict/done/error lines. For a
// given stream the order is opened, then every verdict in (proc, index)
// order, then done — deterministic for a given input, so a served verdict
// stream can be byte-compared against a replay of its recorded input.
type Response struct {
	Config  *ServerConfig `json:"config,omitempty"`
	Opened  *Opened       `json:"opened,omitempty"`
	Verdict *VerdictEvent `json:"verdict,omitempty"`
	Done    *Done         `json:"done,omitempty"`
	Error   *StreamError  `json:"error,omitempty"`
}

// ServerConfig acknowledges the handshake with the server's protocol
// version.
type ServerConfig struct {
	Protocol string `json:"protocol"`
}

// Opened acknowledges an Open.
type Opened struct {
	Stream string `json:"stream"`
}

// VerdictEvent is one reported verdict of one monitor process.
type VerdictEvent struct {
	Stream string `json:"stream"`
	// Proc is the monitor process reporting.
	Proc int `json:"proc"`
	// Index is the report's position in the process's verdict stream.
	Index int `json:"index"`
	// Verdict is the monitor package's rendering: YES, NO or MAYBE.
	Verdict string `json:"verdict"`
	// Step is the global scheduler step of the report.
	Step int `json:"step"`
	// Hist is the length of the exhibited history prefix the verdict judges.
	Hist int `json:"hist,omitempty"`
}

// Done closes a stream's verdict output with its summary.
type Done struct {
	Stream string `json:"stream"`
	// Events is the number of history symbols replayed.
	Events int `json:"events"`
	// Steps is the number of scheduler steps the replay took.
	Steps int `json:"steps"`
	// Verdicts is the total number of verdict lines emitted.
	Verdicts int `json:"verdicts"`
	// NO is the number of NO verdicts among them.
	NO int `json:"no"`
	// Truncated reports that MaxSteps cut the replay before the history was
	// fully exhibited: the verdicts above are honest but partial.
	Truncated bool `json:"truncated,omitempty"`
}

// StreamError reports a failure. With a Stream it is stream-level: that
// stream is dead (its later input is discarded) but the connection and its
// other streams continue. Without a Stream it is connection-level and the
// connection closes after the line. Line, when non-zero, is the request line
// that caused the failure.
type StreamError struct {
	Stream string `json:"stream,omitempty"`
	Line   int    `json:"line,omitempty"`
	Msg    string `json:"msg"`
}
