// Package lang defines the paper's distributed languages (Definitions
// 2.3–2.9) operationally: for each language, a finite-prefix safety test, its
// real-time obliviousness classification (Definition 5.3), and labelled
// ω-word generators used by the possibility experiments — finite runs cannot
// decide ω-membership, so each source carries ground truth about the word it
// samples.
package lang

import (
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// Lang describes one distributed language.
type Lang struct {
	// Name matches Table 1: LIN_REG, SC_REG, LIN_LED, SC_LED, EC_LED,
	// WEC_COUNT, SEC_COUNT.
	Name string
	// Object is the sequential object underlying the language, when there is
	// one (nil for the counter languages, whose definitions are clause-based).
	Object spec.Object
	// SafetyViolated reports that the finite prefix already falsifies
	// membership: no continuation of w is in the language. Liveness clauses
	// (the "eventually" parts of the eventual objects) are not prefix-
	// falsifiable and are covered by source labels instead.
	SafetyViolated func(w word.Word) bool
	// RealTimeOblivious is the Definition 5.3 classification the paper
	// derives: it determines decidability against A via Theorem 5.2.
	RealTimeOblivious bool
	// Checker, when non-nil, states that SafetyViolated is exactly the
	// witness-search consistency condition over Object described by its
	// fields, so callers that check many prefixes of one history may run it
	// through an incremental checker instead of the closed-over functions.
	Checker *ObjectChecker
	// Sources returns labelled behaviour generators over n processes.
	// Deterministic in seed.
	Sources func(n int, seed int64) []adversary.Labeled
}

// All returns the seven languages of Table 1, in table order.
func All() []Lang {
	return []Lang{
		LinReg(), SCReg(), LinLed(), SCLed(), ECLed(), WECCount(), SECCount(),
	}
}

// anyPrefixViolates lifts a per-word violation test to the language
// definitions that quantify over all finite prefixes (Definitions 2.3, 2.5,
// 2.9: "every finite prefix of it is ..."). Sequential consistency and the
// eventual ledger's clause (1) are not prefix-closed — a later symbol can
// repair a whole-word check (e.g. a read of r before write(r) is even
// invoked) — so each prefix ending at a response symbol must be tested.
// Linearizability is prefix-closed, so LIN languages test the word directly.
func anyPrefixViolates(violated func(word.Word) bool) func(word.Word) bool {
	return func(w word.Word) bool {
		for cut := 1; cut <= len(w); cut++ {
			if cut < len(w) && w[cut-1].Kind != word.Res {
				continue
			}
			if violated(w[:cut]) {
				return true
			}
		}
		return false
	}
}

// ObjectChecker maps a language's safety test onto the witness-search
// checkers of package check: SafetyViolated(w) equals, for RealTime,
// !Linearizable(Object, w) (respectively !SeqConsistent), lifted by
// anyPrefixViolates when PerPrefix is set. The equivalence is pinned by the
// explorer's differential tests.
type ObjectChecker struct {
	// RealTime selects linearizability; false selects sequential consistency.
	RealTime bool
	// PerPrefix marks the non-prefix-closed conditions, which quantify the
	// violation test over every response-ended prefix.
	PerPrefix bool
}

// LinReg is the linearizable register language (Definition 2.4).
func LinReg() Lang {
	reg := spec.Register()
	return Lang{
		Name:              "LIN_REG",
		Object:            reg,
		SafetyViolated:    func(w word.Word) bool { return !check.Linearizable(reg, w) },
		RealTimeOblivious: false,
		Checker:           &ObjectChecker{RealTime: true},
		Sources:           registerSources(true),
	}
}

// SCReg is the sequentially consistent register language (Definition 2.3).
func SCReg() Lang {
	reg := spec.Register()
	return Lang{
		Name:              "SC_REG",
		Object:            reg,
		SafetyViolated:    anyPrefixViolates(func(w word.Word) bool { return !check.SeqConsistent(reg, w) }),
		RealTimeOblivious: false,
		Checker:           &ObjectChecker{PerPrefix: true},
		Sources:           registerSources(false),
	}
}

// LinLed is the linearizable ledger language (Definition 2.6).
func LinLed() Lang {
	led := spec.Ledger()
	return Lang{
		Name:              "LIN_LED",
		Object:            led,
		SafetyViolated:    func(w word.Word) bool { return !check.Linearizable(led, w) },
		RealTimeOblivious: false,
		Checker:           &ObjectChecker{RealTime: true},
		Sources:           ledgerSources(true),
	}
}

// SCLed is the sequentially consistent ledger language (Definition 2.5).
func SCLed() Lang {
	led := spec.Ledger()
	return Lang{
		Name:              "SC_LED",
		Object:            led,
		SafetyViolated:    anyPrefixViolates(func(w word.Word) bool { return !check.SeqConsistent(led, w) }),
		RealTimeOblivious: false,
		Checker:           &ObjectChecker{PerPrefix: true},
		Sources:           ledgerSources(false),
	}
}

// ECLed is the eventually consistent ledger language (Definition 2.9).
func ECLed() Lang {
	return Lang{
		Name:              "EC_LED",
		Object:            spec.Ledger(),
		SafetyViolated:    anyPrefixViolates(func(w word.Word) bool { return check.ECLedgerSafety(w) != nil }),
		RealTimeOblivious: false, // Appendix A
		Sources:           ecLedgerSources,
	}
}

// WECCount is the weakly-eventual consistent counter language (Definition
// 2.7).
func WECCount() Lang {
	return Lang{
		Name:              "WEC_COUNT",
		Object:            spec.Counter(),
		SafetyViolated:    func(w word.Word) bool { return check.WECSafety(w) != nil },
		RealTimeOblivious: true, // noted after Definition 5.3
		Sources:           counterSources(false),
	}
}

// SECCount is the strongly-eventual consistent counter language (Definition
// 2.8).
func SECCount() Lang {
	return Lang{
		Name:              "SEC_COUNT",
		Object:            spec.Counter(),
		SafetyViolated:    func(w word.Word) bool { return check.SECSafety(w) != nil },
		RealTimeOblivious: false, // clause (4) is a real-time constraint
		Sources:           counterSources(true),
	}
}
