package lang

import (
	"fmt"
	"math/rand"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// chunked adapts a chunk generator to an adversary.Source: refill is called
// whenever the buffer runs dry and must return the next non-empty chunk of
// the ω-word (fairness: every process appears in every chunk).
type chunked struct {
	buf    word.Word
	pos    int
	refill func() word.Word
}

func (c *chunked) Next() (word.Symbol, bool) {
	for c.pos >= len(c.buf) {
		chunk := c.refill()
		if len(chunk) == 0 {
			return word.Symbol{}, false
		}
		c.buf, c.pos = chunk, 0
	}
	s := c.buf[c.pos]
	c.pos++
	return s, true
}

func source(refill func() word.Word) func() adversary.Source {
	return func() adversary.Source {
		return &chunked{refill: refill}
	}
}

// -------------------------------------------------------------- counters

// counterSources builds the labelled counter behaviours; strong selects
// SEC_COUNT labels (the over-read source is in WEC_COUNT but not SEC_COUNT).
func counterSources(strong bool) func(n int, seed int64) []adversary.Labeled {
	return func(n int, seed int64) []adversary.Labeled {
		return []adversary.Labeled{
			{Name: "exact", In: true, New: exactCounter(n, seed, 3*n)},
			{Name: "lagging-converge", In: true, New: laggingCounter(n, seed, 2*n)},
			{Name: "over-read", In: !strong, New: overReadCounter(n)},
			{Name: "own-inc-violation", In: false, New: lemma52Counter(n)},
			{Name: "non-monotone", In: false, New: nonMonotoneCounter(n)},
			{Name: "diverge", In: false, New: divergingCounter(n, 2)},
		}
	}
}

// exactCounter behaves like an atomic counter: an inc phase of total incs
// spread round-robin, then reads returning the exact total forever. Satisfies
// all four clauses.
func exactCounter(n int, seed int64, incs int) func() adversary.Source {
	return func() adversary.Source {
		rng := rand.New(rand.NewSource(seed))
		count := 0
		proc := 0
		return &chunked{refill: func() word.Word {
			b := word.NewB()
			for i := 0; i < n; i++ {
				p := proc % n
				proc++
				if count < incs && rng.Intn(2) == 0 {
					count++
					b.Op(p, spec.OpInc, word.Unit{}, word.Unit{})
					b.Op(p, spec.OpRead, word.Unit{}, word.Int(count))
				} else {
					b.Op(p, spec.OpRead, word.Unit{}, word.Int(count))
				}
			}
			return b.Word()
		}}
	}
}

// laggingCounter lets incs propagate slowly: readers see a stale but
// per-process monotone count that eventually converges to the total. In both
// WEC_COUNT and SEC_COUNT (lag only lowers read values, and the strong
// clause (4) is an upper bound).
func laggingCounter(n int, seed int64, incs int) func() adversary.Source {
	return func() adversary.Source {
		rng := rand.New(rand.NewSource(seed + 1))
		count := 0
		seen := make([]int, n) // per-reader last reported value
		incProc := 0           // process 0 performs all incs, others lag
		round := 0
		return &chunked{refill: func() word.Word {
			b := word.NewB()
			round++
			if count < incs {
				count++
				b.Op(incProc, spec.OpInc, word.Unit{}, word.Unit{})
			}
			for p := 0; p < n; p++ {
				if p == incProc {
					b.Op(p, spec.OpRead, word.Unit{}, word.Int(count))
					continue
				}
				// Lag behind by a random amount, monotone, converging once
				// incs stop.
				target := count
				if count < incs && target > 0 {
					target -= rng.Intn(2)
				}
				if target < seen[p] {
					target = seen[p]
				}
				seen[p] = target
				b.Op(p, spec.OpRead, word.Unit{}, word.Int(target))
			}
			return b.Word()
		}}
	}
}

// overReadCounter violates only the strong clause (4): process 1 reads 2
// when a single inc has completed and none is pending, the second inc arrives
// later, and everything converges to 2. Weakly consistent, not strongly.
func overReadCounter(n int) func() adversary.Source {
	return func() adversary.Source {
		phase := 0
		return &chunked{refill: func() word.Word {
			b := word.NewB()
			switch phase {
			case 0:
				b.Op(0, spec.OpInc, word.Unit{}, word.Unit{})
				b.Op(1%n, spec.OpRead, word.Unit{}, word.Int(2)) // the over-read
				b.Op(0, spec.OpInc, word.Unit{}, word.Unit{})
			default:
				for p := 0; p < n; p++ {
					b.Op(p, spec.OpRead, word.Unit{}, word.Int(2))
				}
			}
			phase++
			return b.Word()
		}}
	}
}

// lemma52Counter is the witness of Lemma 5.2: process 0 increments once and
// every process reads 0 forever — process 0's first read violates clause (1).
func lemma52Counter(n int) func() adversary.Source {
	return func() adversary.Source {
		started := false
		return &chunked{refill: func() word.Word {
			b := word.NewB()
			if !started {
				started = true
				b.Op(0, spec.OpInc, word.Unit{}, word.Unit{})
			}
			for p := n - 1; p >= 0; p-- { // p2 reads first, as in the paper
				b.Op(p, spec.OpRead, word.Unit{}, word.Int(0))
			}
			return b.Word()
		}}
	}
}

// nonMonotoneCounter violates clause (2): after two incs, process 1 reads 2
// then 1, then converges.
func nonMonotoneCounter(n int) func() adversary.Source {
	return func() adversary.Source {
		phase := 0
		return &chunked{refill: func() word.Word {
			b := word.NewB()
			if phase == 0 {
				b.Op(0, spec.OpInc, word.Unit{}, word.Unit{})
				b.Op(0, spec.OpInc, word.Unit{}, word.Unit{})
				b.Op(1%n, spec.OpRead, word.Unit{}, word.Int(2))
				b.Op(1%n, spec.OpRead, word.Unit{}, word.Int(1)) // violation
			} else {
				for p := 0; p < n; p++ {
					b.Op(p, spec.OpRead, word.Unit{}, word.Int(2))
				}
			}
			phase++
			return b.Word()
		}}
	}
}

// divergingCounter violates only the liveness clause (3): incs incs happen,
// reads stabilize at incs−1 forever. No finite prefix falsifies membership.
func divergingCounter(n, incs int) func() adversary.Source {
	return func() adversary.Source {
		phase := 0
		return &chunked{refill: func() word.Word {
			b := word.NewB()
			if phase == 0 {
				for k := 0; k < incs; k++ {
					b.Op(0, spec.OpInc, word.Unit{}, word.Unit{})
				}
			}
			phase++
			for p := 0; p < n; p++ {
				if p == 0 {
					b.Op(p, spec.OpRead, word.Unit{}, word.Int(incs)) // own incs force ≥
					continue
				}
				b.Op(p, spec.OpRead, word.Unit{}, word.Int(incs-1))
			}
			return b.Word()
		}}
	}
}

// -------------------------------------------------------------- registers

func registerSources(lin bool) func(n int, seed int64) []adversary.Labeled {
	return func(n int, seed int64) []adversary.Labeled {
		return []adversary.Labeled{
			{Name: "atomic", In: true, New: atomicRegister(n, seed)},
			{Name: "stale-reads", In: !lin, New: staleRegister(n, seed)},
			{Name: "inversion", In: false, New: inversionRegister(n)},
			{Name: "phantom", In: false, New: phantomRegister(n)},
		}
	}
}

// atomicRegister behaves like an atomic register, including overlapping
// write/read pairs where the read may return either the old or new value —
// linearizable either way.
func atomicRegister(n int, seed int64) func() adversary.Source {
	return func() adversary.Source {
		rng := rand.New(rand.NewSource(seed + 2))
		cur := int64(0)
		next := int64(1)
		return &chunked{refill: func() word.Word {
			b := word.NewB()
			writer := rng.Intn(n)
			reader := (writer + 1 + rng.Intn(n-1)) % n
			if rng.Intn(2) == 0 {
				// Sequential write then read.
				cur = next
				next++
				b.Op(writer, spec.OpWrite, word.Int(cur), word.Unit{})
				b.Op(reader, spec.OpRead, word.Unit{}, word.Int(cur))
			} else {
				// Overlapping write and read; the read returns old or new.
				old := cur
				cur = next
				next++
				ret := cur
				if rng.Intn(2) == 0 {
					ret = old
				}
				b.Inv(writer, spec.OpWrite, word.Int(cur)).
					Inv(reader, spec.OpRead, word.Unit{}).
					Res(writer, spec.OpWrite, word.Unit{}).
					Res(reader, spec.OpRead, word.Int(ret))
			}
			// Keep fairness: everyone else reads the current value.
			for p := 0; p < n; p++ {
				if p != writer && p != reader {
					b.Op(p, spec.OpRead, word.Unit{}, word.Int(cur))
				}
			}
			return b.Word()
		}}
	}
}

// staleRegister: process 0 writes 1,2,3,... and readers lag monotonically —
// sequentially consistent but not linearizable once a read returns an
// overwritten value.
func staleRegister(n int, seed int64) func() adversary.Source {
	return func() adversary.Source {
		rng := rand.New(rand.NewSource(seed + 3))
		written := int64(0)
		seen := make([]int64, n)
		return &chunked{refill: func() word.Word {
			b := word.NewB()
			written++
			b.Op(0, spec.OpWrite, word.Int(written), word.Unit{})
			for p := 1; p < n; p++ {
				lag := int64(rng.Intn(2) + 1) // always at least one behind
				v := written - lag
				if v < seen[p] {
					v = seen[p]
				}
				if v < 0 {
					v = 0
				}
				seen[p] = v
				b.Op(p, spec.OpRead, word.Unit{}, word.Int(v))
			}
			return b.Word()
		}}
	}
}

// inversionRegister: a read observes the new value and a later read of
// another process observes the old one — not sequentially consistent once
// the same reader regresses.
func inversionRegister(n int) func() adversary.Source {
	return func() adversary.Source {
		phase := 0
		return &chunked{refill: func() word.Word {
			b := word.NewB()
			if phase == 0 {
				b.Op(0, spec.OpWrite, word.Int(1), word.Unit{})
				b.Op(1%n, spec.OpRead, word.Unit{}, word.Int(1))
				b.Op(1%n, spec.OpRead, word.Unit{}, word.Int(0)) // regression
			} else {
				for p := 0; p < n; p++ {
					b.Op(p, spec.OpRead, word.Unit{}, word.Int(1))
				}
			}
			phase++
			return b.Word()
		}}
	}
}

// phantomRegister: a read returns a value never written.
func phantomRegister(n int) func() adversary.Source {
	return func() adversary.Source {
		phase := 0
		return &chunked{refill: func() word.Word {
			b := word.NewB()
			if phase == 0 {
				b.Op(0, spec.OpWrite, word.Int(1), word.Unit{})
				b.Op(1%n, spec.OpRead, word.Unit{}, word.Int(99))
			} else {
				for p := 0; p < n; p++ {
					b.Op(p, spec.OpRead, word.Unit{}, word.Int(1))
				}
			}
			phase++
			return b.Word()
		}}
	}
}

// -------------------------------------------------------------- ledgers

func ledgerSources(lin bool) func(n int, seed int64) []adversary.Labeled {
	return func(n int, seed int64) []adversary.Labeled {
		return []adversary.Labeled{
			{Name: "atomic", In: true, New: atomicLedger(n, seed)},
			{Name: "stale-gets", In: !lin, New: staleLedger(n)},
			{Name: "lost-append", In: false, New: lostAppendLedger(n)},
		}
	}
}

func recName(k int) word.Rec { return word.Rec(fmt.Sprintf("r%d", k)) }

// atomicLedger: sequential appends and exact gets.
func atomicLedger(n int, seed int64) func() adversary.Source {
	return func() adversary.Source {
		rng := rand.New(rand.NewSource(seed + 4))
		var ledger word.Seq
		k := 0
		return &chunked{refill: func() word.Word {
			b := word.NewB()
			appender := rng.Intn(n)
			k++
			ledger = append(ledger.Clone(), recName(k))
			b.Op(appender, spec.OpAppend, recName(k), word.Unit{})
			for p := 0; p < n; p++ {
				b.Op(p, spec.OpGet, word.Unit{}, ledger.Clone())
			}
			return b.Word()
		}}
	}
}

// staleLedger: process 0 appends; readers' gets return lagging prefixes —
// sequentially consistent, not linearizable.
func staleLedger(n int) func() adversary.Source {
	return func() adversary.Source {
		var ledger word.Seq
		k := 0
		return &chunked{refill: func() word.Word {
			b := word.NewB()
			k++
			ledger = append(ledger.Clone(), recName(k))
			b.Op(0, spec.OpAppend, recName(k), word.Unit{})
			for p := 1; p < n; p++ {
				lag := 1
				cut := len(ledger) - lag
				if cut < 0 {
					cut = 0
				}
				b.Op(p, spec.OpGet, word.Unit{}, ledger[:cut].Clone())
			}
			b.Op(0, spec.OpGet, word.Unit{}, ledger.Clone())
			return b.Word()
		}}
	}
}

// lostAppendLedger: an append completes and later gets return subsequent
// records without it — the chain breaks, violating even EC clause (1).
func lostAppendLedger(n int) func() adversary.Source {
	return func() adversary.Source {
		phase := 0
		return &chunked{refill: func() word.Word {
			b := word.NewB()
			if phase == 0 {
				b.Op(0, spec.OpAppend, word.Rec("lost"), word.Unit{})
				b.Op(0, spec.OpAppend, word.Rec("kept"), word.Unit{})
				b.Op(1%n, spec.OpGet, word.Unit{}, word.Seq{"kept"})
			} else {
				for p := 0; p < n; p++ {
					b.Op(p, spec.OpGet, word.Unit{}, word.Seq{"kept"})
				}
			}
			phase++
			return b.Word()
		}}
	}
}

// ecLedgerSources are the behaviours for the eventually consistent ledger.
func ecLedgerSources(n int, seed int64) []adversary.Labeled {
	return []adversary.Labeled{
		{Name: "gossip-converge", In: true, New: gossipLedger(n, seed, 4)},
		{Name: "lemma65-dropped", In: false, New: lemma65Ledger(n)},
		{Name: "forked", In: false, New: forkedLedger(n)},
	}
}

// gossipLedger: appends propagate lazily, gets return growing prefixes of one
// canonical order and eventually contain everything.
func gossipLedger(n int, seed int64, appends int) func() adversary.Source {
	return func() adversary.Source {
		rng := rand.New(rand.NewSource(seed + 5))
		var ledger word.Seq
		prefix := make([]int, n)
		k := 0
		return &chunked{refill: func() word.Word {
			b := word.NewB()
			if k < appends {
				k++
				ledger = append(ledger.Clone(), recName(k))
				b.Op(rng.Intn(n), spec.OpAppend, recName(k), word.Unit{})
			}
			for p := 0; p < n; p++ {
				// Each reader's known prefix grows monotonically and reaches
				// the full ledger once appends stop.
				if prefix[p] < len(ledger) {
					grow := 1
					if k < appends {
						grow = rng.Intn(2)
					}
					prefix[p] += grow
				}
				b.Op(p, spec.OpGet, word.Unit{}, ledger[:prefix[p]].Clone())
			}
			return b.Word()
		}}
	}
}

// lemma65Ledger is the Lemma 6.5 witness: append(a) then gets returning the
// empty string forever — clause (1) holds on every prefix (the append can be
// permuted last), clause (2) fails in the limit.
func lemma65Ledger(n int) func() adversary.Source {
	return func() adversary.Source {
		started := false
		return &chunked{refill: func() word.Word {
			b := word.NewB()
			if !started {
				started = true
				b.Op(0, spec.OpAppend, word.Rec("a"), word.Unit{})
			}
			for p := n - 1; p >= 0; p-- {
				b.Op(p, spec.OpGet, word.Unit{}, word.Seq{})
			}
			return b.Word()
		}}
	}
}

// forkedLedger violates clause (1): two gets return incomparable sequences.
func forkedLedger(n int) func() adversary.Source {
	return func() adversary.Source {
		phase := 0
		return &chunked{refill: func() word.Word {
			b := word.NewB()
			if phase == 0 {
				b.Op(0, spec.OpAppend, word.Rec("a"), word.Unit{})
				b.Op(0, spec.OpAppend, word.Rec("b"), word.Unit{})
				b.Op(1%n, spec.OpGet, word.Unit{}, word.Seq{"a"})
				b.Op((2)%n, spec.OpGet, word.Unit{}, word.Seq{"b"})
			} else {
				for p := 0; p < n; p++ {
					b.Op(p, spec.OpGet, word.Unit{}, word.Seq{"a", "b"})
				}
			}
			phase++
			return b.Word()
		}}
	}
}
