package lang

import (
	"testing"

	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

func TestAllSevenLanguages(t *testing.T) {
	names := []string{"LIN_REG", "SC_REG", "LIN_LED", "SC_LED", "EC_LED", "WEC_COUNT", "SEC_COUNT"}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() returned %d languages, want %d", len(all), len(names))
	}
	for i, l := range all {
		if l.Name != names[i] {
			t.Errorf("language %d is %s, want %s (Table 1 order)", i, l.Name, names[i])
		}
		if l.SafetyViolated == nil {
			t.Errorf("%s has no safety test", l.Name)
		}
		if l.Sources == nil {
			t.Errorf("%s has no sources", l.Name)
		}
	}
}

func TestRegisterSafety(t *testing.T) {
	lin, sc := LinReg(), SCReg()

	// Write 1, read 1 in real-time order: fine for both.
	b := word.NewB()
	b.Op(0, spec.OpWrite, word.Int(1), word.Unit{})
	b.Op(1, spec.OpRead, nil, word.Int(1))
	good := b.Word()
	if lin.SafetyViolated(good) {
		t.Error("LIN_REG rejects a linearizable word")
	}
	if sc.SafetyViolated(good) {
		t.Error("SC_REG rejects a linearizable word")
	}

	// Read 1 before write(1) is even invoked: the first prefix violates
	// both (no write can serialize before the read in that prefix).
	b2 := word.NewB()
	b2.Op(1, spec.OpRead, nil, word.Int(1))
	b2.Op(0, spec.OpWrite, word.Int(1), word.Unit{})
	bad := b2.Word()
	if !lin.SafetyViolated(bad) {
		t.Error("LIN_REG accepts a read from the future")
	}
	if !sc.SafetyViolated(bad) {
		t.Error("SC_REG accepts a read from the future")
	}

	// Stale read: read 0 after write(1) completed — not linearizable, but
	// sequentially consistent (the read serializes first).
	b3 := word.NewB()
	b3.Op(0, spec.OpWrite, word.Int(1), word.Unit{})
	b3.Op(1, spec.OpRead, nil, word.Int(0))
	stale := b3.Word()
	if !lin.SafetyViolated(stale) {
		t.Error("LIN_REG accepts a stale read")
	}
	if sc.SafetyViolated(stale) {
		t.Error("SC_REG rejects a reorderable stale read")
	}
}

func TestLedgerSafety(t *testing.T) {
	lin, sc, ec := LinLed(), SCLed(), ECLed()

	b := word.NewB()
	b.Op(0, spec.OpAppend, word.Rec("a"), word.Unit{})
	b.Op(1, spec.OpGet, nil, word.Seq{"a"})
	good := b.Word()
	for _, l := range []Lang{lin, sc, ec} {
		if l.SafetyViolated(good) {
			t.Errorf("%s rejects a valid ledger word", l.Name)
		}
	}

	// Get returns a record never appended: all three reject.
	b2 := word.NewB()
	b2.Op(1, spec.OpGet, nil, word.Seq{"ghost"})
	bad := b2.Word()
	for _, l := range []Lang{lin, sc, ec} {
		if !l.SafetyViolated(bad) {
			t.Errorf("%s accepts a phantom record", l.Name)
		}
	}

	// Forked gets — [a] and [b] with both appended — violate EC's single
	// permutation clause (and the stronger ones too).
	b3 := word.NewB()
	b3.Op(0, spec.OpAppend, word.Rec("a"), word.Unit{})
	b3.Op(1, spec.OpAppend, word.Rec("b"), word.Unit{})
	b3.Op(0, spec.OpGet, nil, word.Seq{"a"})
	b3.Op(1, spec.OpGet, nil, word.Seq{"b"})
	forked := b3.Word()
	for _, l := range []Lang{lin, sc, ec} {
		if !l.SafetyViolated(forked) {
			t.Errorf("%s accepts forked gets", l.Name)
		}
	}
}

func TestCounterSafety(t *testing.T) {
	wec, sec := WECCount(), SECCount()

	// Reads lag behind other processes' incs: fine for both (weak clauses
	// only bound a process against itself; clause 4 only bounds above).
	b := word.NewB()
	b.Op(0, spec.OpInc, nil, word.Unit{})
	b.Op(1, spec.OpRead, nil, word.Int(0))
	lag := b.Word()
	if wec.SafetyViolated(lag) {
		t.Error("WEC_COUNT rejects a lagging read")
	}
	if sec.SafetyViolated(lag) {
		t.Error("SEC_COUNT rejects a lagging read")
	}

	// A process under-counting its own incs: both reject.
	b2 := word.NewB()
	b2.Op(0, spec.OpInc, nil, word.Unit{})
	b2.Op(0, spec.OpRead, nil, word.Int(0))
	own := b2.Word()
	if !wec.SafetyViolated(own) {
		t.Error("WEC_COUNT accepts an own-inc undercount")
	}
	if !sec.SafetyViolated(own) {
		t.Error("SEC_COUNT accepts an own-inc undercount")
	}

	// Over-read: read exceeds every inc invoked so far — only SEC rejects.
	b3 := word.NewB()
	b3.Op(0, spec.OpInc, nil, word.Unit{})
	b3.Op(1, spec.OpRead, nil, word.Int(2))
	over := b3.Word()
	if wec.SafetyViolated(over) {
		t.Error("WEC_COUNT rejects an over-read it cannot forbid")
	}
	if !sec.SafetyViolated(over) {
		t.Error("SEC_COUNT accepts an over-read (clause 4)")
	}
}

func TestSourcesLabelledConsistently(t *testing.T) {
	// Finite prefixes of in-language sources must never violate safety;
	// every language needs at least one source per label. The whole-word
	// safety checks are super-linear in the prefix length (the SC search is
	// exponential in the worst case), so -short tests a shorter prefix.
	const procs = 3
	steps := 400
	if testing.Short() {
		steps = 150
	}
	for _, l := range All() {
		ins, outs := 0, 0
		for _, lb := range l.Sources(procs, 1) {
			if lb.In {
				ins++
			} else {
				outs++
			}
			src := lb.New()
			var w word.Word
			for i := 0; i < steps; i++ {
				s, ok := src.Next()
				if !ok {
					break
				}
				w = append(w, s)
			}
			if len(w) == 0 {
				t.Errorf("%s/%s produced no symbols", l.Name, lb.Name)
				continue
			}
			if lb.In && l.SafetyViolated(w) {
				t.Errorf("%s/%s: prefix of an in-language word violates safety", l.Name, lb.Name)
			}
		}
		if ins == 0 || outs == 0 {
			t.Errorf("%s sources: %d in-language, %d out — need both labels", l.Name, ins, outs)
		}
	}
}

func TestSourcesDeterministicInSeed(t *testing.T) {
	for _, l := range All() {
		for _, lb := range l.Sources(3, 5) {
			a, b := lb.New(), lb.New()
			for i := 0; i < 100; i++ {
				sa, oka := a.Next()
				sb, okb := b.Next()
				if oka != okb || (oka && !sa.Equal(sb)) {
					t.Errorf("%s/%s not deterministic at symbol %d", l.Name, lb.Name, i)
					break
				}
			}
		}
	}
}

func TestSourcesWellFormedPerProcess(t *testing.T) {
	// Local words must alternate invocation/response starting with an
	// invocation (Definition 2.1's sequentiality).
	const procs, steps = 3, 600
	for _, l := range All() {
		for _, lb := range l.Sources(procs, 2) {
			src := lb.New()
			var w word.Word
			for i := 0; i < steps; i++ {
				s, ok := src.Next()
				if !ok {
					break
				}
				w = append(w, s)
			}
			for p := 0; p < procs; p++ {
				local := w.Project(p)
				for k, s := range local {
					want := word.Inv
					if k%2 == 1 {
						want = word.Res
					}
					if s.Kind != want {
						t.Errorf("%s/%s: process %d local word breaks alternation at %d", l.Name, lb.Name, p, k)
						break
					}
				}
			}
		}
	}
}
