package abd

import (
	"fmt"

	"github.com/drv-go/drv/internal/msgnet"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/sut"
	"github.com/drv-go/drv/internal/word"
)

// Consensus message tags.
const (
	tagProposeReq = "cons-propose-req"
	tagProposeAck = "cons-propose-ack"
)

// Consensus emulates one-shot consensus with a fixed coordinator at process
// 0: propose(v) sends the proposal to the coordinator's replica, which
// decides the first proposal it serves and acknowledges every proposal with
// the decided value. Decisions linearize at the coordinator, so histories
// are linearizable against spec.Consensus. The protocol is safe but not
// fault-tolerant — if the coordinator crashes, outstanding and future
// proposals never return — which the explorer's truncated-run handling
// tolerates: pending proposals are pending operations, nothing more.
type Consensus struct {
	name string
	n    int
	net  *msgnet.Net

	decided bool
	val     int64
	echo    bool // seeded bug: acknowledge with the proposer's own value
	seq     []int
}

// NewConsensus creates an emulated consensus instance named name for n
// processes, coordinated by process 0's replica.
func NewConsensus(name string, n int, net *msgnet.Net) *Consensus {
	c := &Consensus{name: name, net: net}
	c.Reset(n)
	return c
}

// Reset restores the instance to its freshly constructed, undecided state for
// n processes; the name, the network binding and the Echo bug (a construction
// parameter) survive.
func (c *Consensus) Reset(n int) {
	c.n = n
	c.decided, c.val = false, 0
	if cap(c.seq) >= n {
		c.seq = c.seq[:n]
	} else {
		c.seq = make([]int, n)
	}
	for i := 0; i < n; i++ {
		c.seq[i] = 0
	}
}

// Echo seeds the agreement bug: the coordinator still records the first
// proposal as decided but acknowledges every proposal with the proposer's
// own value, so two proposers can return different decisions. Returns c for
// chaining at construction sites.
func (c *Consensus) Echo() *Consensus {
	c.echo = true
	return c
}

// cbody is the payload of consensus protocol messages.
type cbody struct {
	Name string
	Val  int64
}

// Propose submits v and parks until the coordinator's decision arrives.
func (c *Consensus) Propose(p *sched.Proc, v int64) int64 {
	c.seq[p.ID]++
	seq := c.seq[p.ID]
	c.net.Send(p, msgnet.Message{
		To: 0, Tag: tagProposeReq, Seq: seq,
		Body: cbody{Name: c.name, Val: v},
	})
	m := c.net.RecvAwait(p, func(m msgnet.Message) bool {
		b, isB := m.Body.(cbody)
		return isB && b.Name == c.name && m.Tag == tagProposeAck && m.Seq == seq
	})
	return m.Body.(cbody).Val
}

// isRequest filters this instance's proposals.
func (c *Consensus) isRequest(m msgnet.Message) bool {
	b, isB := m.Body.(cbody)
	return isB && b.Name == c.name && m.Tag == tagProposeReq
}

// HasRequest implements Server: only the coordinator's replica serves.
func (c *Consensus) HasRequest(id int) bool {
	return id == 0 && c.net.InboxHas(0, c.isRequest)
}

// ServeStep implements Server: decide on the first proposal, acknowledge.
func (c *Consensus) ServeStep(id int) bool {
	if id != 0 {
		return false
	}
	m, ok := c.net.AuxRecv(0, c.isRequest)
	if !ok {
		return false
	}
	b := m.Body.(cbody)
	if !c.decided {
		c.decided, c.val = true, b.Val
	}
	reply := c.val
	if c.echo {
		reply = b.Val
	}
	c.net.AuxSend(0, msgnet.Message{
		To: m.From, Tag: tagProposeAck, Seq: m.Seq,
		Body: cbody{Name: c.name, Val: reply},
	})
	return true
}

// ConsensusImpl adapts an emulated consensus instance to sut.Impl.
type ConsensusImpl struct {
	cons *Consensus
	name string
}

var _ sut.Impl = (*ConsensusImpl)(nil)

// NewConsensusImpl wraps an emulated consensus instance.
func NewConsensusImpl(cons *Consensus) *ConsensusImpl {
	return &ConsensusImpl{cons: cons, name: "consensus/coord"}
}

// WithName overrides the reported implementation name (bug variants).
func (c *ConsensusImpl) WithName(name string) *ConsensusImpl {
	c.name = name
	return c
}

// Name implements sut.Impl.
func (c *ConsensusImpl) Name() string { return c.name }

// Reset implements sut.Impl by delegation to the wrapped emulation.
func (c *ConsensusImpl) Reset(n int) { c.cons.Reset(n) }

// Invoke implements sut.Impl.
func (c *ConsensusImpl) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	if op != spec.OpPropose {
		panic(fmt.Sprintf("abd: consensus does not implement %q", op))
	}
	return word.Int(c.cons.Propose(p, int64(arg.(word.Int))))
}
