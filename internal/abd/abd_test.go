package abd

import (
	"testing"

	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/msgnet"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/sut"
	"github.com/drv-go/drv/internal/word"
)

// runABD drives n processes through a sut.Service wrapping the ABD register
// and returns the exhibited history. Crashes (step → process IDs) are
// injected between scheduler steps, mirroring the monitor runner. The run
// stops once every live process finished its workload (server loops never
// quiesce on their own).
func runABD(t *testing.T, n int, seed int64, opsPerProc int, crash map[int][]int) word.Word {
	t.Helper()
	rt := sched.New(n, sched.Random(seed))
	nt := msgnet.New(n, msgnet.RandomOrder(seed))
	nt.Register(rt)
	reg := NewRegister("x", n, nt, 0)
	svc := sut.NewService(n, NewRegisterImpl(reg), sut.NewRandomWorkload(spec.Register(), n, opsPerProc, 0.5, seed))

	done := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		rt.Spawn(i, func(p *sched.Proc) {
			for {
				v, ok := svc.NextInv(p.ID)
				if !ok {
					done[i] = true
					// Keep serving the replica so others' quorums stay live.
					for {
						if !reg.Serve(p) {
							p.Pause()
						}
					}
				}
				svc.Send(p, v)
				svc.Recv(p)
			}
		})
	}
	defer rt.Stop()
	allDone := func() bool {
		for i, d := range done {
			if !d && !rt.Crashed(i) {
				return false
			}
		}
		return true
	}
	for rt.Steps() < 2_000_000 && !allDone() {
		if ids, ok := crash[rt.Steps()]; ok {
			for _, id := range ids {
				rt.Crash(id)
				nt.Crash(id)
			}
		}
		if !rt.Step() {
			break
		}
	}
	return svc.History()
}

func TestABDRegisterLinearizable(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		for _, seed := range []int64{1, 2, 3} {
			h := runABD(t, n, seed, 4, nil)
			if len(word.Complete(h)) == 0 {
				t.Fatalf("n=%d seed=%d: no operation completed", n, seed)
			}
			if !check.Linearizable(spec.Register(), h) {
				t.Errorf("n=%d seed=%d: ABD history not linearizable:\n%v", n, seed, h)
			}
		}
	}
}

func TestABDSurvivesMinorityCrash(t *testing.T) {
	// Crash ⌊(n-1)/2⌋ processes early; the survivors' operations must keep
	// completing and the overall history must stay linearizable.
	n := 5
	crash := map[int][]int{300: {3}, 600: {4}}
	h := runABD(t, n, 11, 6, crash)
	if !check.Linearizable(spec.Register(), h) {
		t.Errorf("history with crashed minority not linearizable:\n%v", h)
	}
	// Survivors completed their whole workload: 3 procs × 6 ops.
	complete := word.Complete(h)
	perProc := map[int]int{}
	for _, op := range complete {
		perProc[op.ID.Proc]++
	}
	for p := 0; p < 3; p++ {
		if perProc[p] != 6 {
			t.Errorf("survivor %d completed %d ops, want 6 — ABD must be wait-free for survivors", p, perProc[p])
		}
	}
}

func TestABDUnderStarvation(t *testing.T) {
	// Starving one process's deliveries must not break atomicity or the
	// other processes' progress.
	n := 3
	rt := sched.New(n, sched.Random(7))
	nt := msgnet.New(n, msgnet.StarveOrder(2, msgnet.RandomOrder(7)))
	nt.Register(rt)
	reg := NewRegister("x", n, nt, 0)
	svc := sut.NewService(n, NewRegisterImpl(reg), sut.NewRandomWorkload(spec.Register(), n, 4, 0.5, 7))
	done := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		rt.Spawn(i, func(p *sched.Proc) {
			for {
				v, ok := svc.NextInv(p.ID)
				if !ok {
					done[i] = true
					for {
						if !reg.Serve(p) {
							p.Pause()
						}
					}
				}
				svc.Send(p, v)
				svc.Recv(p)
			}
		})
	}
	defer rt.Stop()
	for rt.Steps() < 2_000_000 && !(done[0] && done[1] && done[2]) {
		if !rt.Step() {
			break
		}
	}
	h := svc.History()
	if !check.Linearizable(spec.Register(), h) {
		t.Errorf("starved ABD history not linearizable:\n%v", h)
	}
	perProc := map[int]int{}
	for _, op := range word.Complete(h) {
		perProc[op.ID.Proc]++
	}
	for p := 0; p < 2; p++ {
		if perProc[p] != 4 {
			t.Errorf("process %d completed %d ops under starvation of 2, want 4", p, perProc[p])
		}
	}
}

func TestTwoRegistersMultiplex(t *testing.T) {
	// Distinct register names share one network without crosstalk.
	n := 3
	rt := sched.New(n, sched.Random(13))
	nt := msgnet.New(n, msgnet.RandomOrder(13))
	nt.Register(rt)
	rx := NewRegister("x", n, nt, 0)
	ry := NewRegister("y", n, nt, 0)

	var gotX, gotY int64
	rt.Spawn(0, func(p *sched.Proc) {
		rx.Write(p, 1)
		ry.Write(p, 2)
		for {
			if !rx.Serve(p) && !ry.Serve(p) {
				p.Pause()
			}
		}
	})
	rt.Spawn(1, func(p *sched.Proc) {
		for rx.Read(p) != 1 {
		}
		gotX = rx.Read(p)
		gotY = ry.Read(p)
		for {
			if !rx.Serve(p) && !ry.Serve(p) {
				p.Pause()
			}
		}
	})
	rt.Spawn(2, func(p *sched.Proc) {
		for {
			if !rx.Serve(p) && !ry.Serve(p) {
				p.Pause()
			}
		}
	})
	defer rt.Stop()
	for rt.Steps() < 2_000_000 && (gotX != 1 || gotY != 2) {
		if !rt.Step() {
			break
		}
	}
	if gotX != 1 || gotY != 2 {
		t.Errorf("multiplexed reads got x=%d y=%d, want 1/2", gotX, gotY)
	}
}
