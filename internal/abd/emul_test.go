package abd

import (
	"testing"

	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/msgnet"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/sut"
	"github.com/drv-go/drv/internal/word"
)

// driveAuxServed runs n client processes to workload exhaustion over an
// aux-served emulation (replicas answer from aux actors, so finished clients
// simply return — the explorer's run shape). Crashes are injected between
// steps. Returns the exhibited history.
func driveAuxServed(t *testing.T, rt *sched.Runtime, nt *msgnet.Net, n int, svc *sut.Service, crash map[int][]int) word.Word {
	t.Helper()
	for i := 0; i < n; i++ {
		rt.Spawn(i, func(p *sched.Proc) {
			for {
				v, ok := svc.NextInv(p.ID)
				if !ok {
					return
				}
				svc.Send(p, v)
				svc.Recv(p)
			}
		})
	}
	defer rt.Stop()
	for rt.Steps() < 2_000_000 {
		if ids, ok := crash[rt.Steps()]; ok {
			for _, id := range ids {
				rt.Crash(id)
				nt.Crash(id)
			}
		}
		if !rt.Step() {
			break
		}
	}
	return svc.History()
}

// runRegister builds an aux-served ABD register deployment and returns its
// history; mutate tweaks the register before the run (seeded bugs).
func runRegister(t *testing.T, n int, seed int64, ops int, crash map[int][]int, drops []int, mutate func(*Register)) word.Word {
	t.Helper()
	return runRegisterCfg(t, n, seed, ops, 0.5, msgnet.RandomOrder(seed), crash, drops, mutate)
}

// runRegisterCfg is runRegister with the delivery order and mutate bias
// exposed, for the bug-variant hunts below.
func runRegisterCfg(t *testing.T, n int, seed int64, ops int, bias float64, order msgnet.Order, crash map[int][]int, drops []int, mutate func(*Register)) word.Word {
	t.Helper()
	rt := sched.New(n, sched.Random(seed))
	nt := msgnet.New(n, order)
	nt.SetDrops(drops)
	nt.Register(rt)
	reg := NewRegister("x", n, nt, 0)
	if mutate != nil {
		mutate(reg)
	}
	Servers(rt, n, reg)
	svc := sut.NewService(n, NewRegisterImpl(reg), sut.NewRandomWorkload(spec.Register(), n, ops, bias, seed))
	return driveAuxServed(t, rt, nt, n, svc, crash)
}

func TestAuxServedABDLinearizable(t *testing.T) {
	// The aux-served deployment must preserve ABD's guarantee: linearizable
	// histories at every n, with clients parking instead of self-serving.
	for _, n := range []int{2, 3, 5} {
		for _, seed := range []int64{1, 2, 3, 4} {
			h := runRegister(t, n, seed, 4, nil, nil, nil)
			if len(word.Complete(h)) == 0 {
				t.Fatalf("n=%d seed=%d: no operation completed", n, seed)
			}
			if !check.Linearizable(spec.Register(), h) {
				t.Errorf("n=%d seed=%d: aux-served ABD history not linearizable:\n%v", n, seed, h)
			}
		}
	}
}

func TestAuxServedABDSafeUnderCrashesAndDrops(t *testing.T) {
	// ABD's safety is unconditional: crashes and message loss can stall
	// quorums (operations stay pending, the run quiesces) but never produce
	// a non-linearizable history.
	for seed := int64(1); seed <= 8; seed++ {
		crash := map[int][]int{40 + int(seed)*13: {1}}
		drops := []int{0, 3, 5, 11, 20}
		h := runRegister(t, 3, seed, 4, crash, drops, nil)
		if !check.Linearizable(spec.Register(), h) {
			t.Errorf("seed=%d: crashed+lossy ABD history not linearizable:\n%v", seed, h)
		}
	}
}

func TestNoWriteBackViolatesAtomicity(t *testing.T) {
	// The seeded read bug demotes the register to regular: a write caught
	// mid-store is visible to one read and invisible to the next (new-old
	// inversion). The window needs the store broadcast to stay in flight
	// across two reads, so the hunt uses read-heavy workloads and the LIFO
	// order, which buries old store messages under fresh query traffic. The
	// whole stack is deterministic, so the hit is stable run over run.
	orders := []func(seed int64) msgnet.Order{
		func(int64) msgnet.Order { return msgnet.LIFOOrder() },
		func(seed int64) msgnet.Order { return msgnet.RandomOrder(seed) },
	}
	found := false
	for _, n := range []int{3, 5} {
		for _, order := range orders {
			for seed := int64(1); seed <= 100 && !found; seed++ {
				h := runRegisterCfg(t, n, seed, 4, 0.3, order(seed), nil, nil,
					func(r *Register) { r.DropReadWriteBack() })
				if !check.Linearizable(spec.Register(), h) {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no hunted schedule exposed the missing write-back — bug variant ineffective")
	}
}

func TestLostIncCounterUnderCounts(t *testing.T) {
	// The lost-increment counter publishes incs only to the incrementing
	// process's own replica; reads that quorum-miss that replica under-count.
	found := false
	for seed := int64(1); seed <= 60 && !found; seed++ {
		h := runCounter(t, 3, seed, 4, true)
		if !check.Linearizable(spec.Counter(), h) {
			found = true
		}
	}
	if !found {
		t.Fatal("no seed in 1..60 exposed the lost-increment bug — variant ineffective")
	}
}

// runCounter builds an aux-served emulated counter deployment.
func runCounter(t *testing.T, n int, seed int64, ops int, lost bool) word.Word {
	t.Helper()
	rt := sched.New(n, sched.Random(seed))
	nt := msgnet.New(n, msgnet.RandomOrder(seed))
	nt.Register(rt)
	ctr := NewCounter("c", n, nt)
	if lost {
		ctr.DropIncStore()
	}
	srvs := make([]Server, 0, n)
	for _, cell := range ctr.Cells() {
		srvs = append(srvs, cell)
	}
	Servers(rt, n, srvs...)
	svc := sut.NewService(n, NewCounterImpl(ctr), sut.NewRandomWorkload(spec.Counter(), n, ops, 0.5, seed))
	return driveAuxServed(t, rt, nt, n, svc, nil)
}

func TestEmulatedCounterLinearizable(t *testing.T) {
	// Collecting atomic monotone single-writer cells is linearizable as a
	// counter — the message-passing analogue of the snapshot counter.
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		h := runCounter(t, 3, seed, 3, false)
		if len(word.Complete(h)) == 0 {
			t.Fatalf("seed=%d: no operation completed", seed)
		}
		if !check.Linearizable(spec.Counter(), h) {
			t.Errorf("seed=%d: emulated counter history not linearizable:\n%v", seed, h)
		}
	}
}

// runConsensus builds an aux-served coordinator-consensus deployment.
func runConsensus(t *testing.T, n int, seed int64, ops int, echo bool, crash map[int][]int) word.Word {
	t.Helper()
	rt := sched.New(n, sched.Random(seed))
	nt := msgnet.New(n, msgnet.RandomOrder(seed))
	nt.Register(rt)
	cons := NewConsensus("k", n, nt)
	if echo {
		cons.Echo()
	}
	Servers(rt, n, cons)
	svc := sut.NewService(n, NewConsensusImpl(cons), sut.NewRandomWorkload(spec.Consensus(), n, ops, 0.5, seed))
	return driveAuxServed(t, rt, nt, n, svc, crash)
}

func TestEmulatedConsensusLinearizable(t *testing.T) {
	// The coordinator decides the first proposal it serves; histories must
	// linearize against the sequential one-shot consensus, including runs
	// where the coordinator crashes and proposals stay pending.
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		h := runConsensus(t, 3, seed, 2, false, nil)
		if !check.Linearizable(spec.Consensus(), h) {
			t.Errorf("seed=%d: consensus history not linearizable:\n%v", seed, h)
		}
	}
	for _, seed := range []int64{6, 7} {
		h := runConsensus(t, 3, seed, 2, false, map[int][]int{25: {0}})
		if !check.Linearizable(spec.Consensus(), h) {
			t.Errorf("seed=%d: crashed-coordinator history not linearizable:\n%v", seed, h)
		}
	}
}

func TestEchoConsensusDisagrees(t *testing.T) {
	// The echo bug acknowledges each proposer with its own value; once two
	// proposals with distinct values complete, no sequential order explains
	// the history.
	found := false
	for seed := int64(1); seed <= 40 && !found; seed++ {
		h := runConsensus(t, 3, seed, 2, true, nil)
		if !check.Linearizable(spec.Consensus(), h) {
			found = true
		}
	}
	if !found {
		t.Fatal("no seed in 1..40 exposed the echo bug — variant ineffective")
	}
}
