package abd

import (
	"fmt"

	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/sut"
	"github.com/drv-go/drv/internal/word"
)

// RegisterImpl adapts an emulated register to the sut.Impl interface, so the
// whole monitoring stack — workloads, history recording, the timed adversary
// Aτ, the predictive monitors — runs over message passing unchanged. This is
// the package-level deliverable of the paper's porting remark.
type RegisterImpl struct {
	reg  *Register
	name string
}

var _ sut.Impl = (*RegisterImpl)(nil)

// NewRegisterImpl wraps an emulated register.
func NewRegisterImpl(reg *Register) *RegisterImpl {
	return &RegisterImpl{reg: reg, name: "register/abd"}
}

// WithName overrides the reported implementation name (bug variants).
func (r *RegisterImpl) WithName(name string) *RegisterImpl {
	r.name = name
	return r
}

// Name implements sut.Impl.
func (r *RegisterImpl) Name() string { return r.name }

// Reset implements sut.Impl by delegation to the wrapped emulation.
func (r *RegisterImpl) Reset(n int) { r.reg.Reset(n) }

// Invoke implements sut.Impl.
func (r *RegisterImpl) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpWrite:
		r.reg.Write(p, int64(arg.(word.Int)))
		return word.Unit{}
	case spec.OpRead:
		return word.Int(r.reg.Read(p))
	default:
		panic(fmt.Sprintf("abd: register does not implement %q", op))
	}
}
