package abd

import (
	"fmt"

	"github.com/drv-go/drv/internal/msgnet"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/sut"
	"github.com/drv-go/drv/internal/word"
)

// Counter emulates the paper's counter over per-process ABD cells — the
// message-passing analogue of sut.SnapshotCounter's cells-plus-collect walk:
// inc writes the process's own single-writer cell, read collects all n cells
// one emulated read at a time and sums. A collect over atomic monotone
// single-writer cells is linearizable as a counter: each cell read returns
// the cell's value at some instant inside the collect, so the sum lies
// between the true totals at the collect's invocation and response, and the
// total passes through every intermediate value one inc at a time.
type Counter struct {
	name    string
	n       int
	net     *msgnet.Net
	cells   []*Register
	local   []int64 // each process's own count; single-writer, no race
	dropInc bool    // DropIncStore was applied; newly grown cells inherit it
}

// NewCounter creates an emulated counter named name for n processes, with
// one ABD cell per process multiplexed over the network.
func NewCounter(name string, n int, net *msgnet.Net) *Counter {
	c := &Counter{name: name, net: net}
	c.Reset(n)
	return c
}

// Reset restores the counter to its freshly constructed state for n
// processes: existing cells reset in place (they stay bound to the same
// network), new cells are created when n grows, and the DropIncStore bug (a
// construction parameter) survives.
func (c *Counter) Reset(n int) {
	c.n = n
	if cap(c.cells) >= n {
		c.cells = c.cells[:n]
	}
	for i, cell := range c.cells {
		if cell == nil {
			c.cells = c.cells[:i]
			break
		}
		cell.Reset(n)
	}
	for i := len(c.cells); i < n; i++ {
		cell := NewRegister(fmt.Sprintf("%s.c%d", c.name, i), n, c.net, 0)
		if c.dropInc {
			cell.DropWriteStore()
		}
		c.cells = append(c.cells, cell)
	}
	if cap(c.local) >= n {
		c.local = c.local[:n]
	} else {
		c.local = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		c.local[i] = 0
	}
}

// DropIncStore seeds the lost-increment bug: every cell drops its write
// store phase, so an inc lands only in the incrementing process's own
// replica and a reader sees it only when its query quorums happen to include
// that replica — reads under-count and can even run backwards.
func (c *Counter) DropIncStore() *Counter {
	c.dropInc = true
	for _, cell := range c.cells {
		cell.DropWriteStore()
	}
	return c
}

// Cells exposes the underlying registers for server registration.
func (c *Counter) Cells() []*Register { return c.cells }

// Inc adds one to the caller's cell.
func (c *Counter) Inc(p *sched.Proc) {
	c.local[p.ID]++
	c.cells[p.ID].Write(p, c.local[p.ID])
}

// Read collects every cell and returns the sum.
func (c *Counter) Read(p *sched.Proc) int64 {
	var total int64
	for _, cell := range c.cells {
		total += cell.Read(p)
	}
	return total
}

// CounterImpl adapts an emulated counter to sut.Impl.
type CounterImpl struct {
	ctr  *Counter
	name string
}

var _ sut.Impl = (*CounterImpl)(nil)

// NewCounterImpl wraps an emulated counter.
func NewCounterImpl(ctr *Counter) *CounterImpl {
	return &CounterImpl{ctr: ctr, name: "counter/abd"}
}

// WithName overrides the reported implementation name (bug variants).
func (c *CounterImpl) WithName(name string) *CounterImpl {
	c.name = name
	return c
}

// Name implements sut.Impl.
func (c *CounterImpl) Name() string { return c.name }

// Reset implements sut.Impl by delegation to the wrapped emulation.
func (c *CounterImpl) Reset(n int) { c.ctr.Reset(n) }

// Invoke implements sut.Impl.
func (c *CounterImpl) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpInc:
		c.ctr.Inc(p)
		return word.Unit{}
	case spec.OpRead:
		return word.Int(c.ctr.Read(p))
	default:
		panic(fmt.Sprintf("abd: counter does not implement %q", op))
	}
}
