package abd

import (
	"fmt"

	"github.com/drv-go/drv/internal/msgnet"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/sut"
	"github.com/drv-go/drv/internal/word"
)

// Counter emulates the paper's counter over per-process ABD cells — the
// message-passing analogue of sut.SnapshotCounter's cells-plus-collect walk:
// inc writes the process's own single-writer cell, read collects all n cells
// one emulated read at a time and sums. A collect over atomic monotone
// single-writer cells is linearizable as a counter: each cell read returns
// the cell's value at some instant inside the collect, so the sum lies
// between the true totals at the collect's invocation and response, and the
// total passes through every intermediate value one inc at a time.
type Counter struct {
	n     int
	cells []*Register
	local []int64 // each process's own count; single-writer, no race
}

// NewCounter creates an emulated counter named name for n processes, with
// one ABD cell per process multiplexed over the network.
func NewCounter(name string, n int, net *msgnet.Net) *Counter {
	c := &Counter{n: n, cells: make([]*Register, n), local: make([]int64, n)}
	for i := 0; i < n; i++ {
		c.cells[i] = NewRegister(fmt.Sprintf("%s.c%d", name, i), n, net, 0)
	}
	return c
}

// DropIncStore seeds the lost-increment bug: every cell drops its write
// store phase, so an inc lands only in the incrementing process's own
// replica and a reader sees it only when its query quorums happen to include
// that replica — reads under-count and can even run backwards.
func (c *Counter) DropIncStore() *Counter {
	for _, cell := range c.cells {
		cell.DropWriteStore()
	}
	return c
}

// Cells exposes the underlying registers for server registration.
func (c *Counter) Cells() []*Register { return c.cells }

// Inc adds one to the caller's cell.
func (c *Counter) Inc(p *sched.Proc) {
	c.local[p.ID]++
	c.cells[p.ID].Write(p, c.local[p.ID])
}

// Read collects every cell and returns the sum.
func (c *Counter) Read(p *sched.Proc) int64 {
	var total int64
	for _, cell := range c.cells {
		total += cell.Read(p)
	}
	return total
}

// CounterImpl adapts an emulated counter to sut.Impl.
type CounterImpl struct {
	ctr  *Counter
	name string
}

var _ sut.Impl = (*CounterImpl)(nil)

// NewCounterImpl wraps an emulated counter.
func NewCounterImpl(ctr *Counter) *CounterImpl {
	return &CounterImpl{ctr: ctr, name: "counter/abd"}
}

// WithName overrides the reported implementation name (bug variants).
func (c *CounterImpl) WithName(name string) *CounterImpl {
	c.name = name
	return c
}

// Name implements sut.Impl.
func (c *CounterImpl) Name() string { return c.name }

// Invoke implements sut.Impl.
func (c *CounterImpl) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpInc:
		c.ctr.Inc(p)
		return word.Unit{}
	case spec.OpRead:
		return word.Int(c.ctr.Read(p))
	default:
		panic(fmt.Sprintf("abd: counter does not implement %q", op))
	}
}
