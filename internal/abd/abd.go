// Package abd implements the Attiya–Bar-Noy–Dolev emulation of atomic
// single-writer and multi-writer read/write registers over asynchronous
// message passing with crash faults in a minority of processes [5]. It
// closes the paper's porting remark: "our possibility results use only
// read/write registers, hence can be simulated in asynchronous
// message-passing systems tolerating crash faults in less than half the
// processes". The monitors of Figures 5, 8 and 9 run unchanged on registers
// emulated by this package, which the message-passing experiments and the
// examples/messagepassing program demonstrate.
//
// The protocol is the standard two-phase quorum emulation. Every process is
// both a client and a server replica holding a (timestamp, writer, value)
// triple. A write queries a majority for the highest timestamp, picks a
// higher one (tie-broken by writer ID), and propagates it to a majority. A
// read queries a majority for the highest triple and then writes it back to
// a majority before returning — the write-back is what makes reads atomic
// rather than merely regular.
package abd

import (
	"fmt"

	"github.com/drv-go/drv/internal/msgnet"
	"github.com/drv-go/drv/internal/sched"
)

// Tags of the protocol's four message types plus their replies.
const (
	tagQueryReq = "abd-query-req" // phase 1 request: send me your triple
	tagQueryAck = "abd-query-ack" // phase 1 reply
	tagStoreReq = "abd-store-req" // phase 2 request: adopt this triple
	tagStoreAck = "abd-store-ack" // phase 2 reply
)

// triple is a replica's state: a Lamport-style timestamp, the writer that
// chose it (tie-breaker), and the value.
type triple struct {
	TS     int
	Writer int
	Value  int64
}

// newer reports whether a is strictly newer than b in (TS, Writer) order.
func (a triple) newer(b triple) bool {
	return a.TS > b.TS || (a.TS == b.TS && a.Writer > b.Writer)
}

// Register is one emulated multi-writer multi-reader atomic register. A
// deployment creates one Register per shared variable, all multiplexed over
// the same network via distinct register names.
type Register struct {
	name string
	n    int
	net  *msgnet.Net

	replicas []triple
	seq      []int // per-process RPC sequence numbers

	// auxServed is set by Servers: replicas answer from aux actors, so
	// clients park on the scheduler gate instead of busy-polling and
	// self-serving while they wait for a quorum.
	auxServed bool
	// noWriteBack is the seeded bug of DropReadWriteBack: reads skip the
	// write-back phase, demoting the register from atomic to regular.
	noWriteBack bool
	// noWriteStore is the seeded bug of DropWriteStore: writes never
	// propagate past the writer's own replica.
	noWriteStore bool
}

// NewRegister creates an emulated register named name (names multiplex the
// shared network) for n processes, initialized to init.
func NewRegister(name string, n int, net *msgnet.Net, init int64) *Register {
	r := &Register{name: name, net: net}
	r.Reset(n)
	return r
}

// Reset restores the register to its freshly constructed state for n
// processes, reusing the replica and sequence buffers. The name, the network
// binding and the seeded-bug flags (construction parameters) survive;
// auxServed is cleared and re-armed by the next Servers call.
func (r *Register) Reset(n int) {
	r.n = n
	r.auxServed = false
	if cap(r.replicas) >= n {
		r.replicas = r.replicas[:n]
		r.seq = r.seq[:n]
	} else {
		r.replicas = make([]triple, n)
		r.seq = make([]int, n)
	}
	for i := 0; i < n; i++ {
		r.replicas[i] = triple{}
		r.seq[i] = 0
	}
}

// DropReadWriteBack disables the read's write-back phase — the classic
// seeded protocol bug: without it two sequential reads can see a concurrent
// write new-then-old (the register is regular, not atomic), and a process's
// own reads can even run backwards because a query quorum need not contain
// the reader's replica. Returns r for chaining at construction sites.
func (r *Register) DropReadWriteBack() *Register {
	r.noWriteBack = true
	return r
}

// DropWriteStore disables the write's store phase: the new triple lands only
// in the writer's own replica, so a completed write is visible to a later
// quorum read only when that quorum happens to include the writer. Returns r
// for chaining at construction sites.
func (r *Register) DropWriteStore() *Register {
	r.noWriteStore = true
	return r
}

// Serve handles one incoming protocol message addressed to p's replica, if
// any is pending; returns false when nothing was handled. Deployments call
// Serve from each process's main loop (or from a dedicated server pass) so
// replicas answer while clients are blocked in their own operations —
// the standard way ABD is layered under a local algorithm.
func (r *Register) Serve(p *sched.Proc) bool {
	m, ok := r.net.TryRecv(p, r.isRequest)
	if !ok {
		return false
	}
	r.handle(p.ID, m, func(mm msgnet.Message) { r.net.Send(p, mm) })
	return true
}

// isRequest filters this register's replica-side protocol messages.
func (r *Register) isRequest(m msgnet.Message) bool {
	b, isB := m.Body.(body)
	return isB && b.Reg == r.name && (m.Tag == tagQueryReq || m.Tag == tagStoreReq)
}

// handle answers one replica-side request on behalf of replica id, sending
// the reply through send (a stepped Proc send or an inline aux send).
func (r *Register) handle(id int, m msgnet.Message, send func(msgnet.Message)) {
	b := m.Body.(body)
	switch m.Tag {
	case tagQueryReq:
		send(msgnet.Message{
			To: m.From, Tag: tagQueryAck, Seq: m.Seq,
			Body: body{Reg: r.name, Trip: r.replicas[id]},
		})
	case tagStoreReq:
		if b.Trip.newer(r.replicas[id]) {
			r.replicas[id] = b.Trip
		}
		send(msgnet.Message{
			To: m.From, Tag: tagStoreAck, Seq: m.Seq,
			Body: body{Reg: r.name},
		})
	}
}

// HasRequest reports whether a protocol request for replica id is waiting —
// the runnable gate of the replica's aux actor.
func (r *Register) HasRequest(id int) bool {
	return r.net.InboxHas(id, r.isRequest)
}

// ServeStep answers one pending request for replica id inline, without a
// Proc — the step body of the replica's aux actor. Returns false when
// nothing was pending.
func (r *Register) ServeStep(id int) bool {
	m, ok := r.net.AuxRecv(id, r.isRequest)
	if !ok {
		return false
	}
	r.handle(id, m, func(mm msgnet.Message) { r.net.AuxSend(id, mm) })
	return true
}

// Server is the replica side of a message-passing emulation, servable from a
// scheduler aux actor: HasRequest gates the actor, ServeStep is its step.
type Server interface {
	HasRequest(id int) bool
	ServeStep(id int) bool
}

// Servers installs one aux actor per process that serves every given
// emulation's replica at that process, and switches ABD registers among them
// to Await-based ack gathering (with replicas served out-of-process, parked
// clients no longer deadlock the emulation, and parking beats busy-polling
// by orders of magnitude in scheduler steps). Crashes need no extra wiring:
// msgnet.Net.Crash empties the process's inbox, so its server actor is never
// runnable again. Returns the aux actor IDs in process order.
func Servers(rt *sched.Runtime, n int, srvs ...Server) []int {
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		i := i
		runnable := func() bool {
			for _, s := range srvs {
				if s.HasRequest(i) {
					return true
				}
			}
			return false
		}
		step := func() {
			for _, s := range srvs {
				if s.ServeStep(i) {
					return
				}
			}
		}
		ids = append(ids, rt.AddAux(fmt.Sprintf("abd-server-%d", i), runnable, step))
	}
	for _, s := range srvs {
		if r, ok := s.(*Register); ok {
			r.auxServed = true
		}
	}
	return ids
}

// body is the payload of every protocol message.
type body struct {
	Reg  string
	Trip triple
}

// quorum returns the majority size.
func (r *Register) quorum() int { return r.n/2 + 1 }

// rpc broadcasts a request and gathers acks from a majority, serving the
// process's own replica while waiting so the emulation stays live when
// everyone is a client simultaneously. Returns the collected ack triples.
func (r *Register) rpc(p *sched.Proc, reqTag, ackTag string, trip triple) []triple {
	r.seq[p.ID]++
	seq := r.seq[p.ID]
	r.net.Broadcast(p, msgnet.Message{
		Tag: reqTag, Seq: seq,
		Body: body{Reg: r.name, Trip: trip},
	})
	matchAck := func(m msgnet.Message) bool {
		b, isB := m.Body.(body)
		return isB && b.Reg == r.name && m.Tag == ackTag && m.Seq == seq
	}
	acks := make([]triple, 0, r.quorum())
	for len(acks) < r.quorum() {
		if r.auxServed {
			// Replicas answer from aux actors; park until the next ack. A
			// client whose quorum can never form (too many crashes, dropped
			// messages) quiesces here instead of spinning.
			m := r.net.RecvAwait(p, matchAck)
			acks = append(acks, m.Body.(body).Trip)
			continue
		}
		m, ok := r.net.TryRecv(p, matchAck)
		if ok {
			acks = append(acks, m.Body.(body).Trip)
			continue
		}
		// No ack yet: act as a server so the system cannot deadlock with all
		// processes blocked as clients.
		r.Serve(p)
	}
	return acks
}

// maxTriple returns the newest triple among ts.
func maxTriple(ts []triple) triple {
	best := ts[0]
	for _, t := range ts[1:] {
		if t.newer(best) {
			best = t
		}
	}
	return best
}

// Write performs an atomic write: query a majority for the newest timestamp,
// then store a strictly newer triple at a majority (unless DropWriteStore
// seeded the propagation bug).
func (r *Register) Write(p *sched.Proc, v int64) {
	acks := r.rpc(p, tagQueryReq, tagQueryAck, triple{})
	cur := maxTriple(acks)
	next := triple{TS: cur.TS + 1, Writer: p.ID, Value: v}
	if next.newer(r.replicas[p.ID]) {
		r.replicas[p.ID] = next // adopt locally first
	}
	if r.noWriteStore {
		return
	}
	r.rpc(p, tagStoreReq, tagStoreAck, next)
}

// Read performs an atomic read: query a majority for the newest triple,
// write it back to a majority, then return its value. With DropReadWriteBack
// the whole write-back phase — local adoption included — is skipped: the
// read returns the newest triple it saw and stores it nowhere, so a value
// held only by a minority (a write caught mid-store) can be seen by one read
// and missed by the next.
func (r *Register) Read(p *sched.Proc) int64 {
	acks := r.rpc(p, tagQueryReq, tagQueryAck, triple{})
	cur := maxTriple(acks)
	if r.noWriteBack {
		return cur.Value
	}
	if cur.newer(r.replicas[p.ID]) {
		r.replicas[p.ID] = cur
	}
	r.rpc(p, tagStoreReq, tagStoreAck, cur)
	return cur.Value
}

// String identifies the register in logs.
func (r *Register) String() string { return fmt.Sprintf("abd:%s", r.name) }
