package sut

import (
	"github.com/drv-go/drv/internal/mem"
	"github.com/drv-go/drv/internal/sched"
)

// lock is a CAS-based test-and-set spinlock. Implementations that need a
// multi-step critical section (ledger, queue, stack) use it to obtain
// linearizable behaviour: the operation takes effect atomically at the
// critical section. Spinning is acceptable in the cooperative model because
// every fair policy schedules the holder again; the substrate's wait-free
// requirements apply to monitors, not to the systems they inspect.
type lock struct {
	cell mem.CAS
}

// acquire spins until the lock is free; each attempt is one step.
func (l *lock) acquire(p *sched.Proc) {
	for !l.cell.CompareAndSwap(p, 0, 1) {
	}
}

// release frees the lock; one step.
func (l *lock) release(p *sched.Proc) {
	l.cell.Store(p, 0)
}
