// Package sut provides systems under test: real concurrent object
// implementations running on the shared-memory substrate, exposed through the
// adversary.Service interface so monitors interact with them exactly as with
// the abstract adversary A. Where package adversary exhibits scripted
// behaviours (any word, per Claim 3.1), this package exhibits emergent
// behaviours: the responses are computed by actual wait-free or lock-free
// algorithms whose interleaving the scheduler controls. Each object comes in
// a correct variant and one or more seeded-bug variants, so end-to-end
// experiments can demonstrate monitors both accepting correct deployments and
// catching real bugs — the deployment story of [17] that motivates the paper.
package sut

import (
	"fmt"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/word"
)

// Impl is a concurrent object implementation. Invoke executes one operation
// on behalf of process p, consuming p's scheduler steps through shared-memory
// operations, and returns the response value. Implementations must tolerate
// arbitrary interleavings of concurrent Invoke calls by different processes;
// the scheduler guarantees only one process runs between Pause points.
//
// Reset is the pooled-lifecycle contract: it must restore the implementation
// to its freshly constructed state for n processes — same seeded-bug
// parameters, empty shared state, zeroed per-process caches — reusing backing
// storage where capacity allows. A reused instance must exhibit byte-identical
// histories to a fresh one under the same schedule; the explorer leans on this
// to run one instance per worker per object/impl pair instead of allocating
// per scenario.
type Impl interface {
	// Name identifies the implementation in experiment reports.
	Name() string
	// Invoke runs op(arg) for process p and returns its response value.
	Invoke(p *sched.Proc, op string, arg word.Value) word.Value
	// Reset restores the freshly constructed state for n processes.
	Reset(n int)
}

// Workload decides the invocations each monitor process sends, resolving
// Line 01's nondeterministic pick for deployments (where no adversary script
// exists).
type Workload interface {
	// Next returns the id-th process's next operation, or ok=false when the
	// process's budget is exhausted and it should stop iterating.
	Next(id int) (op string, arg word.Value, ok bool)
}

// Service adapts an Impl plus a Workload to the adversary.Service interface:
// Send records the invocation event, Recv executes the operation and records
// the response event. Between a process's send and receive events the
// scheduler interleaves other processes freely, so operations genuinely
// overlap and the recorded history is a concurrent history of the
// implementation.
type Service struct {
	n    int
	impl Impl
	wl   Workload

	history word.Word
	pending []word.Symbol
	opCount []int
}

var _ adversary.Service = (*Service)(nil)

// NewService wires an implementation and a workload for n processes.
func NewService(n int, impl Impl, wl Workload) *Service {
	s := &Service{}
	s.Reset(n, impl, wl)
	return s
}

// Reset rewires the service for n processes around impl and wl, truncating
// the history and reusing the per-process buffers. Safe because History()
// clones: outcomes of earlier runs never alias the recycled backing arrays.
func (s *Service) Reset(n int, impl Impl, wl Workload) {
	s.n, s.impl, s.wl = n, impl, wl
	s.history = s.history[:0]
	if cap(s.pending) >= n {
		s.pending = s.pending[:n]
		s.opCount = s.opCount[:n]
	} else {
		s.pending = make([]word.Symbol, n)
		s.opCount = make([]int, n)
	}
	for i := 0; i < n; i++ {
		s.pending[i] = word.Symbol{}
		s.opCount[i] = 0
	}
}

// Name returns the implementation's name.
func (s *Service) Name() string { return s.impl.Name() }

// NextInv implements adversary.Service using the workload.
func (s *Service) NextInv(id int) (word.Symbol, bool) {
	op, arg, ok := s.wl.Next(id)
	if !ok {
		return word.Symbol{}, false
	}
	return word.NewInv(id, op, arg), true
}

// Send implements adversary.Service: the invocation event of the operation.
// It consumes one scheduler step, which is the event's position in real time.
func (s *Service) Send(p *sched.Proc, v word.Symbol) {
	if v.Proc != p.ID {
		panic(fmt.Sprintf("sut: process %d sending symbol of process %d", p.ID, v.Proc))
	}
	p.Pause()
	s.history = append(s.history, v)
	s.pending[p.ID] = v
}

// Recv implements adversary.Service: it executes the operation body on the
// shared-memory substrate (consuming the caller's steps) and then delivers
// the response event.
func (s *Service) Recv(p *sched.Proc) adversary.Response {
	inv := s.pending[p.ID]
	ret := s.impl.Invoke(p, inv.Op, inv.Val)
	p.Pause()
	res := word.NewRes(p.ID, inv.Op, ret)
	s.history = append(s.history, res)
	id := word.OpID{Proc: p.ID, Idx: s.opCount[p.ID]}
	s.opCount[p.ID]++
	return adversary.Response{Sym: res, ID: id}
}

// History implements adversary.Service: the concurrent history the
// implementation exhibited, in real-time event order.
func (s *Service) History() word.Word { return s.history.Clone() }
