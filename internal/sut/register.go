package sut

import (
	"fmt"

	"github.com/drv-go/drv/internal/mem"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// AtomicRegister is the correct register implementation: a single atomic
// read/write cell. Every history it exhibits is linearizable with respect to
// the sequential register (each operation's step is its linearization point).
type AtomicRegister struct {
	cell mem.Register[int64]
}

// NewAtomicRegister returns a register initialized to 0.
func NewAtomicRegister() *AtomicRegister { return &AtomicRegister{} }

// Name implements Impl.
func (*AtomicRegister) Name() string { return "register/atomic" }

// Reset implements Impl.
func (r *AtomicRegister) Reset(int) { r.cell = mem.Register[int64]{} }

// Invoke implements Impl.
func (r *AtomicRegister) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpWrite:
		r.cell.Write(p, int64(arg.(word.Int)))
		return word.Unit{}
	case spec.OpRead:
		return word.Int(r.cell.Read(p))
	default:
		panic(fmt.Sprintf("sut: register does not implement %q", op))
	}
}

// StaleRegister is a seeded-bug register: reads return a per-process cached
// value and refresh the cache from the shared cell only every Refresh-th
// read. Stale reads violate linearizability — a read can return a value
// overwritten before the read was even invoked — while every returned value
// was genuinely written at some point, so order-free (naive) monitors cannot
// see the bug. It is the deployable incarnation of the Lemma 5.1 adversary.
type StaleRegister struct {
	cell    mem.Register[int64]
	refresh int
	cache   []int64
	reads   []int
}

// NewStaleRegister returns a stale register for n processes whose caches
// refresh every refresh reads (refresh ≥ 1; 1 behaves atomically for reads
// that follow a refresh, larger values are staler).
func NewStaleRegister(n, refresh int) *StaleRegister {
	if refresh < 1 {
		refresh = 1
	}
	return &StaleRegister{
		refresh: refresh,
		cache:   make([]int64, n),
		reads:   make([]int, n),
	}
}

// Name implements Impl.
func (r *StaleRegister) Name() string { return fmt.Sprintf("register/stale-%d", r.refresh) }

// Reset implements Impl: the refresh period (a construction parameter)
// survives, the cell and the per-process caches do not.
func (r *StaleRegister) Reset(n int) {
	r.cell = mem.Register[int64]{}
	r.cache = resetInt64s(r.cache, n)
	r.reads = resetInts(r.reads, n)
}

// resetInts returns s resized to n zeroed entries, reusing its backing array
// where capacity allows.
func resetInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// resetInt64s is resetInts for int64 slices.
func resetInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Invoke implements Impl.
func (r *StaleRegister) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpWrite:
		v := int64(arg.(word.Int))
		r.cell.Write(p, v)
		r.cache[p.ID] = v // writers see their own writes
		return word.Unit{}
	case spec.OpRead:
		id := p.ID
		if r.reads[id]%r.refresh == 0 {
			r.cache[id] = r.cell.Read(p)
		} else {
			p.Pause() // a local step, so reads still take time
		}
		r.reads[id]++
		return word.Int(r.cache[id])
	default:
		panic(fmt.Sprintf("sut: register does not implement %q", op))
	}
}

// SplitRegister is a seeded-bug register with per-process replicas and no
// synchronization at all: writes go to the writer's replica, reads read the
// reader's replica. Processes disagree forever about the register's value.
// Perhaps surprisingly, its histories are always sequentially consistent —
// serialize each process's initial-value reads first and the per-process
// blocks after — but they violate linearizability as soon as a process reads
// the initial value after another's write completed. It is therefore a
// second real-time-only bug, sharper than StaleRegister: no order-free
// monitor can ever catch it, by Theorem 5.2.
type SplitRegister struct {
	replicas []mem.Register[int64]
}

// NewSplitRegister returns a split register for n processes.
func NewSplitRegister(n int) *SplitRegister {
	return &SplitRegister{replicas: make([]mem.Register[int64], n)}
}

// Name implements Impl.
func (*SplitRegister) Name() string { return "register/split" }

// Reset implements Impl.
func (r *SplitRegister) Reset(n int) {
	if cap(r.replicas) < n {
		r.replicas = make([]mem.Register[int64], n)
		return
	}
	r.replicas = r.replicas[:n]
	for i := range r.replicas {
		r.replicas[i] = mem.Register[int64]{}
	}
}

// Invoke implements Impl.
func (r *SplitRegister) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpWrite:
		r.replicas[p.ID].Write(p, int64(arg.(word.Int)))
		return word.Unit{}
	case spec.OpRead:
		return word.Int(r.replicas[p.ID].Read(p))
	default:
		panic(fmt.Sprintf("sut: register does not implement %q", op))
	}
}
