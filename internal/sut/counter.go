package sut

import (
	"fmt"

	"github.com/drv-go/drv/internal/mem"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// SnapshotCounter is the correct counter: per-process increment cells plus an
// atomic-snapshot read. inc writes the process's own cell (one step, atomic);
// read sums an atomic snapshot of all cells. Every history is linearizable
// with respect to the sequential counter, hence also in SEC_COUNT and
// WEC_COUNT.
type SnapshotCounter struct {
	cells mem.Array[int]
}

// NewSnapshotCounter returns a counter for n processes backed by the given
// array kind (atomic one-step snapshot or the AADGMS wait-free protocol —
// both yield linearizable counters; a collect array yields CollectCounter
// semantics instead, see below).
func NewSnapshotCounter(n int, kind CounterArray) *SnapshotCounter {
	return &SnapshotCounter{cells: newCounterArray(n, kind)}
}

// CounterArray selects the shared-array flavour backing a counter.
type CounterArray uint8

// Counter array kinds.
const (
	// CounterAtomic uses the model's one-step atomic snapshot array.
	CounterAtomic CounterArray = iota + 1
	// CounterAADGMS uses the wait-free read/write snapshot protocol.
	CounterAADGMS
	// CounterCollect uses a plain collect; reads are not atomic.
	CounterCollect
)

func newCounterArray(n int, kind CounterArray) mem.Array[int] {
	switch kind {
	case CounterAADGMS:
		return mem.NewSnapshotArray(n, 0)
	case CounterCollect:
		return mem.NewCollectArray(n, 0)
	default:
		return mem.NewAtomicArray(n, 0)
	}
}

// Name implements Impl.
func (c *SnapshotCounter) Name() string { return "counter/snapshot" }

// Reset implements Impl: the backing array keeps its kind (it resets in
// place), so an AADGMS counter stays AADGMS.
func (c *SnapshotCounter) Reset(n int) { c.cells.Reset(n, 0) }

// Invoke implements Impl.
func (c *SnapshotCounter) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpInc:
		own := c.cells.Read(p, p.ID)
		c.cells.Write(p, p.ID, own+1)
		return word.Unit{}
	case spec.OpRead:
		snap := c.cells.Snapshot(p)
		total := 0
		for _, v := range snap {
			total += v
		}
		return word.Int(total)
	default:
		panic(fmt.Sprintf("sut: counter does not implement %q", op))
	}
}

// CollectCounter reads by collecting the cells one at a time instead of
// snapshotting. Collect sums are not atomic — two overlapping reads can
// return values in either order of magnitude — so histories are generally
// not linearizable; but cells only grow, so every read returns at least the
// process's own preceding incs, reads are per-process monotone (a later
// collect starts after the earlier one finished), and at most the incs
// invoked before the read returns. Its histories therefore satisfy the
// SEC_COUNT safety clauses: the classic eventually consistent counter of [2].
type CollectCounter struct {
	cells *mem.CollectArray[int]
}

// NewCollectCounter returns a collect-read counter for n processes.
func NewCollectCounter(n int) *CollectCounter {
	return &CollectCounter{cells: mem.NewCollectArray(n, 0)}
}

// Name implements Impl.
func (c *CollectCounter) Name() string { return "counter/collect" }

// Reset implements Impl.
func (c *CollectCounter) Reset(n int) { c.cells.Reset(n, 0) }

// Invoke implements Impl.
func (c *CollectCounter) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpInc:
		own := c.cells.Read(p, p.ID)
		c.cells.Write(p, p.ID, own+1)
		return word.Unit{}
	case spec.OpRead:
		vals := c.cells.Snapshot(p) // CollectArray's Snapshot is a collect
		total := 0
		for _, v := range vals {
			total += v
		}
		return word.Int(total)
	default:
		panic(fmt.Sprintf("sut: counter does not implement %q", op))
	}
}

// InflatedCounter is a seeded-bug counter: once the reader has completed an
// increment, its reads add a phantom bias — speculative double-counting.
// Reads exceed the number of incs invoked so far, violating clause (4) of the
// strongly-eventual counter (over-reads), which Figure 9's view test flags as
// a safety violation the moment an over-read is shared. Figure 5 has no
// real-time information, so it can implicate the bug only through the
// clause-(3) convergence diagnostic (reads never settle on the true total) —
// a weaker, non-sticky signal: the deployable incarnation of the SEC/WEC
// separation.
type InflatedCounter struct {
	cells mem.Array[int]
	bias  int
}

// NewInflatedCounter returns a counter for n processes whose reads over-
// report by bias whenever the reader has performed at least one inc.
func NewInflatedCounter(n, bias int) *InflatedCounter {
	if bias < 1 {
		bias = 1
	}
	return &InflatedCounter{cells: mem.NewAtomicArray(n, 0), bias: bias}
}

// Name implements Impl.
func (c *InflatedCounter) Name() string { return fmt.Sprintf("counter/inflated-%d", c.bias) }

// Reset implements Impl: the bias (a construction parameter) survives.
func (c *InflatedCounter) Reset(n int) { c.cells.Reset(n, 0) }

// Invoke implements Impl.
func (c *InflatedCounter) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpInc:
		own := c.cells.Read(p, p.ID)
		c.cells.Write(p, p.ID, own+1)
		return word.Unit{}
	case spec.OpRead:
		snap := c.cells.Snapshot(p)
		total := 0
		for _, v := range snap {
			total += v
		}
		if snap[p.ID] > 0 {
			total += c.bias // phantom speculative inflation
		}
		return word.Int(total)
	default:
		panic(fmt.Sprintf("sut: counter does not implement %q", op))
	}
}

// StuckCounter is a seeded-bug counter that stops propagating increments:
// incs beyond the first per process are applied to a private shadow cell
// invisible to readers. Reads converge to the wrong total, violating the
// eventual clause (3) of both eventual counters — the liveness-style bug
// that only the convergence diagnostics catch.
type StuckCounter struct {
	cells  mem.Array[int]
	shadow []int
}

// NewStuckCounter returns a counter for n processes that publishes only the
// first increment of each process.
func NewStuckCounter(n int) *StuckCounter {
	return &StuckCounter{cells: mem.NewAtomicArray(n, 0), shadow: make([]int, n)}
}

// Name implements Impl.
func (c *StuckCounter) Name() string { return "counter/stuck" }

// Reset implements Impl.
func (c *StuckCounter) Reset(n int) {
	c.cells.Reset(n, 0)
	c.shadow = resetInts(c.shadow, n)
}

// Invoke implements Impl.
func (c *StuckCounter) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpInc:
		own := c.cells.Read(p, p.ID)
		if own == 0 {
			c.cells.Write(p, p.ID, 1)
		} else {
			p.Pause()
			c.shadow[p.ID]++ // lost to readers
		}
		return word.Unit{}
	case spec.OpRead:
		snap := c.cells.Snapshot(p)
		total := 0
		for _, v := range snap {
			total += v
		}
		return word.Int(total)
	default:
		panic(fmt.Sprintf("sut: counter does not implement %q", op))
	}
}
