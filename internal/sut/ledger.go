package sut

import (
	"fmt"

	"github.com/drv-go/drv/internal/mem"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// LockLedger is the correct ledger implementation (after [3]): a shared
// record list guarded by a spinlock, so append and get take effect atomically
// inside the critical section. Every history is linearizable with respect to
// the sequential ledger.
type LockLedger struct {
	mu   lock
	recs mem.Register[word.Seq]
}

// NewLockLedger returns an empty ledger.
func NewLockLedger() *LockLedger { return &LockLedger{} }

// Name implements Impl.
func (*LockLedger) Name() string { return "ledger/lock" }

// Reset implements Impl.
func (l *LockLedger) Reset(int) { *l = LockLedger{} }

// Invoke implements Impl.
func (l *LockLedger) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpAppend:
		l.mu.acquire(p)
		cur := l.recs.Read(p)
		l.recs.Write(p, append(cur.Clone(), arg.(word.Rec)))
		l.mu.release(p)
		return word.Unit{}
	case spec.OpGet:
		l.mu.acquire(p)
		cur := l.recs.Read(p)
		l.mu.release(p)
		return cur.Clone()
	default:
		panic(fmt.Sprintf("sut: ledger does not implement %q", op))
	}
}

// SnapshotLedger is a seeded-bug, coordination-free ledger: appenders publish
// their local append sequences in per-process cells and get() assembles the
// global list from an atomic snapshot, interleaving the per-process sequences
// round-robin by local index. It looks plausible — every get observes an
// atomic cut and every record eventually appears — but the assembled order is
// not stable under new appends: a get with counts (2,0) returns [a1 a2],
// while a later get with counts (2,1) returns [a1 b a2], which is not an
// extension of the first. Under cross-process interleaving its histories
// violate linearizability, sequential consistency, and even the eventually
// consistent ledger's ordering clause (1) — while any single-process
// execution is perfectly correct, which is exactly why bugs of this shape
// survive sequential testing.
type SnapshotLedger struct {
	cells mem.Array[int]
	logs  [][]word.Rec
}

// NewSnapshotLedger returns an empty lock-free ledger for n processes.
func NewSnapshotLedger(n int) *SnapshotLedger {
	return &SnapshotLedger{
		cells: mem.NewAtomicArray(n, 0),
		logs:  make([][]word.Rec, n),
	}
}

// Name implements Impl.
func (*SnapshotLedger) Name() string { return "ledger/snapshot" }

// Reset implements Impl. Truncating the per-process logs in place is safe:
// gets assemble their result into a fresh word.Seq, so no earlier history
// aliases the log backing arrays.
func (l *SnapshotLedger) Reset(n int) {
	l.cells.Reset(n, 0)
	if cap(l.logs) < n {
		l.logs = make([][]word.Rec, n)
		return
	}
	l.logs = l.logs[:n]
	for i := range l.logs {
		l.logs[i] = l.logs[i][:0]
	}
}

// Invoke implements Impl.
func (l *SnapshotLedger) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpAppend:
		id := p.ID
		l.logs[id] = append(l.logs[id], arg.(word.Rec)) // local, no step
		l.cells.Write(p, id, len(l.logs[id]))           // publish
		return word.Unit{}
	case spec.OpGet:
		counts := l.cells.Snapshot(p)
		var out word.Seq
		// Deterministic round-robin assembly: index k of every process before
		// index k+1 of any process.
		for k := 0; ; k++ {
			appended := false
			for i, c := range counts {
				if k < c {
					out = append(out, l.logs[i][k])
					appended = true
				}
			}
			if !appended {
				break
			}
		}
		return out
	default:
		panic(fmt.Sprintf("sut: ledger does not implement %q", op))
	}
}

// ForkedLedger is a seeded-bug ledger with per-process replicas and no
// synchronization: appends go to the appender's replica only, gets read the
// reader's replica. Processes see forked, incompatible record sequences, so
// gets of different processes return sequences that are not prefixes of one
// another — a violation of even the eventually consistent ledger's ordering
// clause (1), let alone linearizability.
type ForkedLedger struct {
	replicas []mem.Register[word.Seq]
}

// NewForkedLedger returns a forked ledger for n processes.
func NewForkedLedger(n int) *ForkedLedger {
	return &ForkedLedger{replicas: make([]mem.Register[word.Seq], n)}
}

// Name implements Impl.
func (*ForkedLedger) Name() string { return "ledger/forked" }

// Reset implements Impl.
func (l *ForkedLedger) Reset(n int) {
	if cap(l.replicas) < n {
		l.replicas = make([]mem.Register[word.Seq], n)
		return
	}
	l.replicas = l.replicas[:n]
	for i := range l.replicas {
		l.replicas[i] = mem.Register[word.Seq]{}
	}
}

// Invoke implements Impl.
func (l *ForkedLedger) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpAppend:
		cur := l.replicas[p.ID].Read(p)
		l.replicas[p.ID].Write(p, append(cur.Clone(), arg.(word.Rec)))
		return word.Unit{}
	case spec.OpGet:
		return l.replicas[p.ID].Read(p).Clone()
	default:
		panic(fmt.Sprintf("sut: ledger does not implement %q", op))
	}
}

// LossyLedger is a seeded-bug ledger that silently drops every Drop-th
// append: the operation responds normally but the record never becomes
// visible to any get. Safety (clause 1) is preserved — gets return consistent
// prefixes of the surviving records — but convergence (clause 2 of the
// eventually consistent ledger) fails: dropped records never appear. The
// liveness-style ledger bug.
type LossyLedger struct {
	inner   LockLedger
	drop    int
	appends int
}

// NewLossyLedger returns a ledger that drops every drop-th append (drop ≥ 2).
func NewLossyLedger(drop int) *LossyLedger {
	if drop < 2 {
		drop = 2
	}
	return &LossyLedger{drop: drop}
}

// Name implements Impl.
func (l *LossyLedger) Name() string { return fmt.Sprintf("ledger/lossy-%d", l.drop) }

// Reset implements Impl: the drop period (a construction parameter) survives,
// the append counter and the wrapped ledger do not.
func (l *LossyLedger) Reset(n int) {
	l.appends = 0
	l.inner.Reset(n)
}

// Invoke implements Impl.
func (l *LossyLedger) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	if op == spec.OpAppend {
		l.appends++
		if l.appends%l.drop == 0 {
			p.Pause() // the operation "runs", but the record vanishes
			return word.Unit{}
		}
	}
	return l.inner.Invoke(p, op, arg)
}
