package sut

import (
	"testing"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
)

// monitorImpl wires a SUT implementation into the full predictive stack —
// Aτ wrapping the service, the Figure 8 monitor V_O on top — and returns
// the total NO count across seeds.
func monitorImpl(t *testing.T, obj spec.Object, mk func() Impl, seeds []int64, opsPerProc int) int {
	t.Helper()
	const procs = 3
	total := 0
	for _, seed := range seeds {
		svc := NewService(procs, mk(), NewRandomWorkload(obj, procs, opsPerProc, 0.5, seed))
		tau := adversary.NewTimed(procs, svc, adversary.ArrayAtomic)
		res := monitor.Run(monitor.Config{
			N:       procs,
			Monitor: monitor.NewLin(obj, tau, adversary.ArrayAtomic),
			NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
				return tau, nil
			},
			Policy: func([]int) sched.Policy {
				return sched.Random(seed)
			},
			MaxSteps: 80_000,
		})
		total += res.TotalNO()
	}
	return total
}

// TestFig8OnQueues runs V_O end to end on the queue — the object for which
// [17] proved no sound-and-complete asynchronous monitor exists, making the
// predictive regime the only option. The correct lock queue draws no NOs;
// the wrong-ended queue is caught.
func TestFig8OnQueues(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if nos := monitorImpl(t, spec.Queue(), func() Impl { return NewLockQueue() }, seeds, 5); nos != 0 {
		t.Errorf("correct queue drew %d NOs from V_O", nos)
	}
	if nos := monitorImpl(t, spec.Queue(), func() Impl { return NewLIFOQueue() }, seeds, 5); nos == 0 {
		t.Error("LIFO queue bug went unnoticed by V_O")
	}
}

// TestFig8OnStacks is the stack counterpart; the LIFO queue doubles as a
// correct stack when monitored against the stack specification with stack
// operation names — instead we check the lock stack directly.
func TestFig8OnStacks(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if nos := monitorImpl(t, spec.Stack(), func() Impl { return NewLockStack() }, seeds, 5); nos != 0 {
		t.Errorf("correct stack drew %d NOs from V_O", nos)
	}
}

// TestFig8OnLedgers exercises V_O on the ledger implementations.
func TestFig8OnLedgers(t *testing.T) {
	seeds := []int64{1, 2}
	if nos := monitorImpl(t, spec.Ledger(), func() Impl { return NewLockLedger() }, seeds, 4); nos != 0 {
		t.Errorf("correct ledger drew %d NOs from V_O", nos)
	}
	if nos := monitorImpl(t, spec.Ledger(), func() Impl { return NewForkedLedger(3) }, seeds, 4); nos == 0 {
		t.Error("forked ledger went unnoticed by V_O")
	}
}
