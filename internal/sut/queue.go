package sut

import (
	"fmt"

	"github.com/drv-go/drv/internal/mem"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// LockQueue is the correct FIFO queue: a shared item list guarded by a
// spinlock. Queues are the original object for which [17] proved that no
// sound-and-complete asynchronous monitor exists, making them a key system
// under test for the predictive monitors.
type LockQueue struct {
	mu    lock
	items mem.Register[[]int64]
}

// NewLockQueue returns an empty queue.
func NewLockQueue() *LockQueue { return &LockQueue{} }

// Name implements Impl.
func (*LockQueue) Name() string { return "queue/lock" }

// Reset implements Impl: an empty queue with a free lock.
func (q *LockQueue) Reset(int) { *q = LockQueue{} }

// Invoke implements Impl.
func (q *LockQueue) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpEnq:
		q.mu.acquire(p)
		cur := q.items.Read(p)
		next := make([]int64, len(cur)+1)
		copy(next, cur)
		next[len(cur)] = int64(arg.(word.Int))
		q.items.Write(p, next)
		q.mu.release(p)
		return word.Unit{}
	case spec.OpDeq:
		q.mu.acquire(p)
		cur := q.items.Read(p)
		if len(cur) == 0 {
			q.mu.release(p)
			return spec.Empty
		}
		head := cur[0]
		q.items.Write(p, append([]int64(nil), cur[1:]...))
		q.mu.release(p)
		return word.Int(head)
	default:
		panic(fmt.Sprintf("sut: queue does not implement %q", op))
	}
}

// LIFOQueue is a seeded-bug queue that dequeues from the wrong end: it is a
// stack wearing a queue's interface. Order-free monitors catch it as soon as
// two enqueued items come back inverted.
type LIFOQueue struct {
	mu    lock
	items mem.Register[[]int64]
}

// NewLIFOQueue returns an empty wrong-ended queue.
func NewLIFOQueue() *LIFOQueue { return &LIFOQueue{} }

// Name implements Impl.
func (*LIFOQueue) Name() string { return "queue/lifo-bug" }

// Reset implements Impl.
func (q *LIFOQueue) Reset(int) { *q = LIFOQueue{} }

// Invoke implements Impl.
func (q *LIFOQueue) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpEnq:
		q.mu.acquire(p)
		cur := q.items.Read(p)
		next := make([]int64, len(cur)+1)
		copy(next, cur)
		next[len(cur)] = int64(arg.(word.Int))
		q.items.Write(p, next)
		q.mu.release(p)
		return word.Unit{}
	case spec.OpDeq:
		q.mu.acquire(p)
		cur := q.items.Read(p)
		if len(cur) == 0 {
			q.mu.release(p)
			return spec.Empty
		}
		tail := cur[len(cur)-1] // bug: LIFO pop
		q.items.Write(p, append([]int64(nil), cur[:len(cur)-1]...))
		q.mu.release(p)
		return word.Int(tail)
	default:
		panic(fmt.Sprintf("sut: queue does not implement %q", op))
	}
}

// LockStack is the correct LIFO stack, the second object of [17]'s
// impossibility result.
type LockStack struct {
	mu    lock
	items mem.Register[[]int64]
}

// NewLockStack returns an empty stack.
func NewLockStack() *LockStack { return &LockStack{} }

// Name implements Impl.
func (*LockStack) Name() string { return "stack/lock" }

// Reset implements Impl.
func (s *LockStack) Reset(int) { *s = LockStack{} }

// Invoke implements Impl.
func (s *LockStack) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpPush:
		s.mu.acquire(p)
		cur := s.items.Read(p)
		next := make([]int64, len(cur)+1)
		copy(next, cur)
		next[len(cur)] = int64(arg.(word.Int))
		s.items.Write(p, next)
		s.mu.release(p)
		return word.Unit{}
	case spec.OpPop:
		s.mu.acquire(p)
		cur := s.items.Read(p)
		if len(cur) == 0 {
			s.mu.release(p)
			return spec.Empty
		}
		top := cur[len(cur)-1]
		s.items.Write(p, append([]int64(nil), cur[:len(cur)-1]...))
		s.mu.release(p)
		return word.Int(top)
	default:
		panic(fmt.Sprintf("sut: stack does not implement %q", op))
	}
}

// FIFOStack is the stack counterpart of LIFOQueue: a seeded-bug stack that
// pops from the bottom — a queue wearing a stack's interface. Like the
// wrong-ended queue, two pushed items coming back in push order expose it to
// any order-sensitive monitor.
type FIFOStack struct {
	mu    lock
	items mem.Register[[]int64]
}

// NewFIFOStack returns an empty wrong-ended stack.
func NewFIFOStack() *FIFOStack { return &FIFOStack{} }

// Name implements Impl.
func (*FIFOStack) Name() string { return "stack/fifo-bug" }

// Reset implements Impl.
func (s *FIFOStack) Reset(int) { *s = FIFOStack{} }

// Invoke implements Impl.
func (s *FIFOStack) Invoke(p *sched.Proc, op string, arg word.Value) word.Value {
	switch op {
	case spec.OpPush:
		s.mu.acquire(p)
		cur := s.items.Read(p)
		next := make([]int64, len(cur)+1)
		copy(next, cur)
		next[len(cur)] = int64(arg.(word.Int))
		s.items.Write(p, next)
		s.mu.release(p)
		return word.Unit{}
	case spec.OpPop:
		s.mu.acquire(p)
		cur := s.items.Read(p)
		if len(cur) == 0 {
			s.mu.release(p)
			return spec.Empty
		}
		bottom := cur[0] // bug: FIFO pop
		s.items.Write(p, append([]int64(nil), cur[1:]...))
		s.mu.release(p)
		return word.Int(bottom)
	default:
		panic(fmt.Sprintf("sut: stack does not implement %q", op))
	}
}
