package sut

import (
	"testing"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// run drives n processes through the service with the given policy seed and
// returns the exhibited history.
func run(t *testing.T, n int, svc adversary.Service, seed int64, maxSteps int) word.Word {
	t.Helper()
	rt := sched.New(n, sched.Random(seed))
	for i := 0; i < n; i++ {
		i := i
		rt.Spawn(i, func(p *sched.Proc) {
			for {
				v, ok := svc.NextInv(p.ID)
				if !ok {
					return
				}
				svc.Send(p, v)
				svc.Recv(p)
			}
		})
	}
	defer rt.Stop()
	for rt.Steps() < maxSteps {
		if !rt.Step() {
			break
		}
	}
	return svc.History()
}

func seeds() []int64 { return []int64{1, 2, 3, 4, 5} }

func TestAtomicRegisterLinearizable(t *testing.T) {
	for _, seed := range seeds() {
		svc := NewService(3, NewAtomicRegister(), NewRandomWorkload(spec.Register(), 3, 8, 0.5, seed))
		h := run(t, 3, svc, seed, 100_000)
		if len(h) == 0 {
			t.Fatalf("seed %d: empty history", seed)
		}
		if !check.Linearizable(spec.Register(), h) {
			t.Errorf("seed %d: atomic register produced non-linearizable history:\n%v", seed, h)
		}
	}
}

func TestStaleRegisterViolatesLinearizability(t *testing.T) {
	// Some schedule must expose a stale read; all schedules must remain
	// "plausible" to an order-free observer (values really were written).
	caught := false
	for _, seed := range seeds() {
		svc := NewService(3, NewStaleRegister(3, 4), NewRandomWorkload(spec.Register(), 3, 8, 0.5, seed))
		h := run(t, 3, svc, seed, 100_000)
		if !check.Linearizable(spec.Register(), h) {
			caught = true
		}
	}
	if !caught {
		t.Error("no schedule exposed the stale-read bug; increase ops or seeds")
	}
}

func TestSplitRegisterSCButNotLinearizable(t *testing.T) {
	// The partitioned register is the sharpest real-time-only bug: histories
	// stay sequentially consistent (initial-value reads serialize first, then
	// per-process blocks), yet a read of 0 after a completed foreign write
	// breaks linearizability. Drive p2's reads after both writers finish by
	// letting every process run its script to completion.
	scripts := [][]word.Symbol{
		{
			{Op: spec.OpWrite, Val: word.Int(1)},
			{Op: spec.OpRead},
		},
		{
			{Op: spec.OpWrite, Val: word.Int(2)},
			{Op: spec.OpRead},
		},
		{
			{Op: spec.OpRead},
			{Op: spec.OpRead},
		},
	}
	linViolated := false
	for _, seed := range seeds() {
		svc := NewService(3, NewSplitRegister(3), NewScriptWorkload(scripts))
		h := run(t, 3, svc, seed, 100_000)
		if !check.SeqConsistent(spec.Register(), h) {
			t.Errorf("seed %d: split register history not sequentially consistent:\n%v", seed, h)
		}
		if !check.Linearizable(spec.Register(), h) {
			linViolated = true
		}
	}
	if !linViolated {
		t.Error("no schedule exposed the split register's real-time violation")
	}
}

func TestSnapshotCounterLinearizable(t *testing.T) {
	for _, kind := range []CounterArray{CounterAtomic, CounterAADGMS} {
		for _, seed := range seeds() {
			svc := NewService(3, NewSnapshotCounter(3, kind), NewRandomWorkload(spec.Counter(), 3, 6, 0.5, seed))
			h := run(t, 3, svc, seed, 100_000)
			if !check.Linearizable(spec.Counter(), h) {
				t.Errorf("kind %d seed %d: snapshot counter non-linearizable:\n%v", kind, seed, h)
			}
		}
	}
}

func TestCollectCounterSECSafe(t *testing.T) {
	// Collect reads need not linearize, but they satisfy the SEC safety
	// clauses: no under-read, monotone, no over-read.
	for _, seed := range seeds() {
		svc := NewService(3, NewCollectCounter(3), NewRandomWorkload(spec.Counter(), 3, 10, 0.5, seed))
		h := run(t, 3, svc, seed, 100_000)
		if v := check.SECSafety(h); v != nil {
			t.Errorf("seed %d: collect counter violated SEC safety: %v\n%v", seed, v, h)
		}
	}
}

func TestInflatedCounterOverReads(t *testing.T) {
	// The inflation must eventually violate SEC clause (4).
	caught := false
	for _, seed := range seeds() {
		svc := NewService(3, NewInflatedCounter(3, 2), NewRandomWorkload(spec.Counter(), 3, 10, 0.6, seed))
		h := run(t, 3, svc, seed, 100_000)
		if v := check.SECSafety(h); v != nil {
			caught = true
		}
		// But never under-read or lose monotonicity (WEC clauses hold).
		if v := check.WECSafety(h); v != nil {
			t.Errorf("seed %d: inflated counter violated WEC safety clause: %v", seed, v)
		}
	}
	if !caught {
		t.Error("inflation never observed as an over-read")
	}
}

func TestStuckCounterDoesNotConverge(t *testing.T) {
	// Quiescent tail: everyone incs twice, then reads repeatedly. The
	// published total stalls at n, never reaching 2n.
	n := 3
	script := make([][]word.Symbol, n)
	for i := range script {
		script[i] = []word.Symbol{
			{Op: spec.OpInc}, {Op: spec.OpInc},
			{Op: spec.OpRead}, {Op: spec.OpRead}, {Op: spec.OpRead},
		}
	}
	svc := NewService(n, NewStuckCounter(n), NewScriptWorkload(script))
	h := run(t, n, svc, 42, 100_000)
	if check.Converges(h) {
		t.Error("stuck counter converged to the true total despite lost increments")
	}
	if v := check.WECSafety(h); v != nil {
		t.Errorf("stuck counter broke a safety clause it should preserve: %v", v)
	}
}

func TestLockLedgerLinearizable(t *testing.T) {
	for _, seed := range seeds() {
		svc := NewService(3, NewLockLedger(), NewRandomWorkload(spec.Ledger(), 3, 6, 0.5, seed))
		h := run(t, 3, svc, seed, 100_000)
		if !check.Linearizable(spec.Ledger(), h) {
			t.Errorf("seed %d: lock ledger non-linearizable:\n%v", seed, h)
		}
	}
}

func TestSnapshotLedgerReordersUnderInterleaving(t *testing.T) {
	// The round-robin assembly returns non-prefix-compatible gets once
	// processes' appends interleave; some schedule must expose an EC-clause-1
	// violation.
	scripts := [][]word.Symbol{
		{
			{Op: spec.OpAppend, Val: word.Rec("a1")},
			{Op: spec.OpAppend, Val: word.Rec("a2")},
			{Op: spec.OpGet},
		},
		{
			{Op: spec.OpGet},
			{Op: spec.OpAppend, Val: word.Rec("b")},
			{Op: spec.OpGet},
		},
		{
			{Op: spec.OpGet},
			{Op: spec.OpGet},
		},
	}
	caught := false
	for seed := int64(1); seed <= 40 && !caught; seed++ {
		svc := NewService(3, NewSnapshotLedger(3), NewScriptWorkload(scripts))
		h := run(t, 3, svc, seed, 100_000)
		if check.ECLedgerSafety(h) != nil {
			caught = true
		}
	}
	if !caught {
		t.Error("snapshot ledger never produced incompatible gets")
	}
}

func TestForkedLedgerForks(t *testing.T) {
	scripts := [][]word.Symbol{
		{
			{Op: spec.OpAppend, Val: word.Rec("a")},
			{Op: spec.OpGet},
		},
		{
			{Op: spec.OpAppend, Val: word.Rec("b")},
			{Op: spec.OpGet},
		},
	}
	caught := false
	for _, seed := range seeds() {
		svc := NewService(2, NewForkedLedger(2), NewScriptWorkload(scripts))
		h := run(t, 2, svc, seed, 100_000)
		if check.ECLedgerSafety(h) != nil {
			caught = true
		}
	}
	if !caught {
		t.Error("forked ledger's incompatible gets went undetected")
	}
}

func TestLossyLedgerDoesNotConverge(t *testing.T) {
	n := 2
	scripts := [][]word.Symbol{
		{
			{Op: spec.OpAppend, Val: word.Rec("a1")},
			{Op: spec.OpAppend, Val: word.Rec("a2")},
			{Op: spec.OpGet},
		},
		{
			{Op: spec.OpGet},
			{Op: spec.OpGet},
		},
	}
	svc := NewService(n, NewLossyLedger(2), NewScriptWorkload(scripts))
	h := run(t, n, svc, 9, 100_000)
	if check.ECLedgerConverges(h) {
		t.Error("lossy ledger converged despite dropping records")
	}
	if v := check.ECLedgerSafety(h); v != nil {
		t.Errorf("lossy ledger broke ordering safety it should preserve: %v", v)
	}
}

func TestLockQueueLinearizable(t *testing.T) {
	for _, seed := range seeds() {
		svc := NewService(3, NewLockQueue(), NewRandomWorkload(spec.Queue(), 3, 6, 0.5, seed))
		h := run(t, 3, svc, seed, 100_000)
		if !check.Linearizable(spec.Queue(), h) {
			t.Errorf("seed %d: lock queue non-linearizable:\n%v", seed, h)
		}
	}
}

func TestLIFOQueueCaught(t *testing.T) {
	// Sequential script: enq 1, enq 2, deq must return 1; the bug returns 2,
	// violating even sequential consistency.
	scripts := [][]word.Symbol{
		{
			{Op: spec.OpEnq, Val: word.Int(1)},
			{Op: spec.OpEnq, Val: word.Int(2)},
			{Op: spec.OpDeq},
			{Op: spec.OpDeq},
		},
	}
	svc := NewService(1, NewLIFOQueue(), NewScriptWorkload(scripts))
	h := run(t, 1, svc, 1, 100_000)
	if check.SeqConsistent(spec.Queue(), h) {
		t.Errorf("LIFO queue bug not caught:\n%v", h)
	}
}

func TestFIFOStackCaught(t *testing.T) {
	// Sequential script: push 1, push 2, pop must return 2; the bug returns
	// 1, violating even sequential consistency — the mirror image of the
	// LIFO queue.
	scripts := [][]word.Symbol{
		{
			{Op: spec.OpPush, Val: word.Int(1)},
			{Op: spec.OpPush, Val: word.Int(2)},
			{Op: spec.OpPop},
			{Op: spec.OpPop},
		},
	}
	svc := NewService(1, NewFIFOStack(), NewScriptWorkload(scripts))
	h := run(t, 1, svc, 1, 100_000)
	if check.SeqConsistent(spec.Stack(), h) {
		t.Errorf("FIFO stack bug not caught:\n%v", h)
	}
}

func TestLockStackLinearizable(t *testing.T) {
	for _, seed := range seeds() {
		svc := NewService(3, NewLockStack(), NewRandomWorkload(spec.Stack(), 3, 6, 0.5, seed))
		h := run(t, 3, svc, seed, 100_000)
		if !check.Linearizable(spec.Stack(), h) {
			t.Errorf("seed %d: lock stack non-linearizable:\n%v", seed, h)
		}
	}
}

func TestServiceHistoryWellFormedPerProcess(t *testing.T) {
	svc := NewService(3, NewAtomicRegister(), NewRandomWorkload(spec.Register(), 3, 10, 0.5, 77))
	h := run(t, 3, svc, 77, 100_000)
	for p := 0; p < 3; p++ {
		local := h.Project(p)
		for k, s := range local {
			wantKind := word.Inv
			if k%2 == 1 {
				wantKind = word.Res
			}
			if s.Kind != wantKind {
				t.Fatalf("process %d local word does not alternate at %d: %v", p, k, local)
			}
		}
	}
}

// TestTimedWrapsSUT is the deployment form of Lemma 6.1: wrapping a SUT in
// the timed adversary Aτ preserves correctness — the outer (monitored)
// history of a correct implementation stays linearizable, and views arrive
// on every response.
func TestTimedWrapsSUT(t *testing.T) {
	n := 3
	for _, seed := range seeds() {
		inner := NewService(n, NewAtomicRegister(), NewRandomWorkload(spec.Register(), n, 6, 0.5, seed))
		tau := adversary.NewTimed(n, inner, adversary.ArrayAtomic)

		rt := sched.New(n, sched.Random(seed))
		views := 0
		for i := 0; i < n; i++ {
			rt.Spawn(i, func(p *sched.Proc) {
				for {
					v, ok := tau.NextInv(p.ID)
					if !ok {
						return
					}
					tau.Send(p, v)
					resp := tau.Recv(p)
					if resp.View == nil {
						t.Errorf("timed response carries no view")
						return
					}
					views++
				}
			})
		}
		for rt.Steps() < 200_000 {
			if !rt.Step() {
				break
			}
		}
		rt.Stop()

		outer := tau.History()
		innerH := tau.InnerHistory()
		if !check.Linearizable(spec.Register(), outer) {
			t.Errorf("seed %d: outer history of wrapped atomic register not linearizable", seed)
		}
		if !check.Linearizable(spec.Register(), innerH) {
			t.Errorf("seed %d: inner history of wrapped atomic register not linearizable", seed)
		}
		if views == 0 {
			t.Error("no views observed")
		}
	}
}

// TestInnerLinImpliesOuterLin checks the operational half of Lemma 6.1 on
// histories: outer operations contain their inner operations, so outer
// real-time precedence implies inner precedence; a linearization of the
// inner history therefore serves for the outer one.
func TestInnerLinImpliesOuterLin(t *testing.T) {
	n := 3
	for _, seed := range seeds() {
		inner := NewService(n, NewStaleRegister(n, 3), NewRandomWorkload(spec.Register(), n, 6, 0.5, seed))
		tau := adversary.NewTimed(n, inner, adversary.ArrayAtomic)
		rt := sched.New(n, sched.Random(seed))
		for i := 0; i < n; i++ {
			rt.Spawn(i, func(p *sched.Proc) {
				for {
					v, ok := tau.NextInv(p.ID)
					if !ok {
						return
					}
					tau.Send(p, v)
					tau.Recv(p)
				}
			})
		}
		for rt.Steps() < 200_000 {
			if !rt.Step() {
				break
			}
		}
		rt.Stop()
		if check.Linearizable(spec.Register(), tau.InnerHistory()) &&
			!check.Linearizable(spec.Register(), tau.History()) {
			t.Errorf("seed %d: inner linearizable but outer not — contradicts operation nesting", seed)
		}
	}
}
