package sut

import (
	"math/rand"

	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// RandomWorkload draws each process's operations independently from the
// object's signature, weighting mutating operations by MutateBias. Arguments
// come from the object's RandArg with a per-process generator, so workloads
// replay deterministically per (seed, process).
type RandomWorkload struct {
	obj    spec.Object
	ops    []spec.OpSig
	bias   float64
	budget []int
	rngs   []*rand.Rand
}

// NewRandomWorkload builds a workload of opsPerProc operations per process
// with the given mutate bias in [0,1].
func NewRandomWorkload(obj spec.Object, n, opsPerProc int, bias float64, seed int64) *RandomWorkload {
	w := &RandomWorkload{
		obj:    obj,
		ops:    obj.Ops(),
		bias:   bias,
		budget: make([]int, n),
		rngs:   make([]*rand.Rand, n),
	}
	for i := 0; i < n; i++ {
		w.budget[i] = opsPerProc
		w.rngs[i] = rand.New(rand.NewSource(seed + int64(i)*7919))
	}
	return w
}

// Next implements Workload.
func (w *RandomWorkload) Next(id int) (string, word.Value, bool) {
	if w.budget[id] <= 0 {
		return "", nil, false
	}
	w.budget[id]--
	rng := w.rngs[id]
	var mutating, reading []spec.OpSig
	for _, sig := range w.ops {
		if sig.Mutating {
			mutating = append(mutating, sig)
		} else {
			reading = append(reading, sig)
		}
	}
	pool := reading
	if len(mutating) > 0 && (len(reading) == 0 || rng.Float64() < w.bias) {
		pool = mutating
	}
	sig := pool[rng.Intn(len(pool))]
	arg := w.obj.RandArg(sig.Name, rng)
	if _, ok := arg.(word.Unit); ok && sig.Name != spec.OpWrite {
		// Reads/gets/incs carry no argument symbolically; use nil like the
		// scripted sources so histories compare equal.
		arg = nil
	}
	return sig.Name, arg, true
}

// ScriptWorkload replays fixed per-process operation scripts; used by
// regression tests that need a specific interleaving potential.
type ScriptWorkload struct {
	scripts [][]word.Symbol
	pos     []int
}

// NewScriptWorkload builds a workload from per-process invocation scripts.
// Only the Op and Val fields of the symbols are used.
func NewScriptWorkload(scripts [][]word.Symbol) *ScriptWorkload {
	return &ScriptWorkload{scripts: scripts, pos: make([]int, len(scripts))}
}

// Next implements Workload.
func (w *ScriptWorkload) Next(id int) (string, word.Value, bool) {
	if w.pos[id] >= len(w.scripts[id]) {
		return "", nil, false
	}
	s := w.scripts[id][w.pos[id]]
	w.pos[id]++
	return s.Op, s.Val, true
}
