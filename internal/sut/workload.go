package sut

import (
	"math/rand"

	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// RandomWorkload draws each process's operations independently from the
// object's signature, weighting mutating operations by MutateBias. Arguments
// come from the object's RandArg with a per-process generator, so workloads
// replay deterministically per (seed, process).
type RandomWorkload struct {
	obj      spec.Object
	bias     float64
	mutating []spec.OpSig
	reading  []spec.OpSig
	budget   []int
	rngs     []*rand.Rand
}

// NewRandomWorkload builds a workload of opsPerProc operations per process
// with the given mutate bias in [0,1].
func NewRandomWorkload(obj spec.Object, n, opsPerProc int, bias float64, seed int64) *RandomWorkload {
	w := &RandomWorkload{}
	w.Reset(obj, n, opsPerProc, bias, seed)
	return w
}

// Reset re-arms the workload for another run, reusing the budget and
// signature buffers and re-seeding the per-process generators in place —
// rand.Rand.Seed restores exactly the state a fresh rand.NewSource would
// start from, so a reset workload draws the same operation stream as a fresh
// one with the same parameters.
func (w *RandomWorkload) Reset(obj spec.Object, n, opsPerProc int, bias float64, seed int64) {
	if w.obj == nil || w.obj.Name() != obj.Name() {
		w.mutating, w.reading = w.mutating[:0], w.reading[:0]
		for _, sig := range obj.Ops() {
			if sig.Mutating {
				w.mutating = append(w.mutating, sig)
			} else {
				w.reading = append(w.reading, sig)
			}
		}
	}
	w.obj, w.bias = obj, bias
	if cap(w.budget) >= n {
		w.budget = w.budget[:n]
	} else {
		w.budget = make([]int, n)
	}
	for i := 0; i < n; i++ {
		w.budget[i] = opsPerProc
	}
	for i := 0; i < n && i < len(w.rngs); i++ {
		w.rngs[i].Seed(seed + int64(i)*7919)
	}
	for i := len(w.rngs); i < n; i++ {
		w.rngs = append(w.rngs, rand.New(rand.NewSource(seed+int64(i)*7919)))
	}
}

// Next implements Workload.
func (w *RandomWorkload) Next(id int) (string, word.Value, bool) {
	if w.budget[id] <= 0 {
		return "", nil, false
	}
	w.budget[id]--
	rng := w.rngs[id]
	pool := w.reading
	if len(w.mutating) > 0 && (len(w.reading) == 0 || rng.Float64() < w.bias) {
		pool = w.mutating
	}
	sig := pool[rng.Intn(len(pool))]
	arg := w.obj.RandArg(sig.Name, rng)
	if _, ok := arg.(word.Unit); ok && sig.Name != spec.OpWrite {
		// Reads/gets/incs carry no argument symbolically; use nil like the
		// scripted sources so histories compare equal.
		arg = nil
	}
	return sig.Name, arg, true
}

// ScriptWorkload replays fixed per-process operation scripts; used by
// regression tests that need a specific interleaving potential.
type ScriptWorkload struct {
	scripts [][]word.Symbol
	pos     []int
}

// NewScriptWorkload builds a workload from per-process invocation scripts.
// Only the Op and Val fields of the symbols are used.
func NewScriptWorkload(scripts [][]word.Symbol) *ScriptWorkload {
	return &ScriptWorkload{scripts: scripts, pos: make([]int, len(scripts))}
}

// Next implements Workload.
func (w *ScriptWorkload) Next(id int) (string, word.Value, bool) {
	if w.pos[id] >= len(w.scripts[id]) {
		return "", nil, false
	}
	s := w.scripts[id][w.pos[id]]
	w.pos[id]++
	return s.Op, s.Val, true
}
