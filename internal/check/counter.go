package check

import (
	"fmt"

	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// Violation describes why a safety check failed, pointing at the offending
// operation.
type Violation struct {
	Op     word.Operation
	Reason string
}

// Error renders the violation; Violation is used as a report, not an error
// value, but a readable rendering helps experiment logs.
func (v *Violation) String() string {
	return fmt.Sprintf("%s: %s", v.Op, v.Reason)
}

// WECSafety checks the two safety clauses of the weakly-eventual consistent
// counter (Definition 2.7) on a finite word and returns the first violation,
// or nil:
//
//	(1) every read of a process returns at least the number of inc operations
//	    of the same process that precede it, and
//	(2) every read of a process returns at least the value of the process's
//	    previous read.
//
// Clause (3) is a liveness property of ω-words; see Converges for the
// finite-trace diagnostic and the experiment harness for ground-truth
// labelled sources.
func WECSafety(w word.Word) *Violation {
	ops := word.Operations(w)
	myIncs := map[int]int64{}   // proc -> completed incs so far
	lastRead := map[int]int64{} // proc -> last read value
	for _, o := range ops {
		if o.Pending() {
			continue
		}
		switch o.Op {
		case spec.OpInc:
			myIncs[o.ID.Proc]++
		case spec.OpRead:
			v, ok := o.Ret.(word.Int)
			if !ok {
				return &Violation{Op: o, Reason: "read returned a non-integer value"}
			}
			if int64(v) < myIncs[o.ID.Proc] {
				return &Violation{Op: o, Reason: fmt.Sprintf(
					"clause (1): returned %d < %d own preceding incs", v, myIncs[o.ID.Proc])}
			}
			if prev, seen := lastRead[o.ID.Proc]; seen && int64(v) < prev {
				return &Violation{Op: o, Reason: fmt.Sprintf(
					"clause (2): returned %d < previous read %d", v, prev)}
			}
			lastRead[o.ID.Proc] = int64(v)
		}
	}
	return nil
}

// SECSafety checks the safety clauses of the strongly-eventual consistent
// counter (Definition 2.8): WEC clauses (1)–(2) plus
//
//	(4) every read returns at most the number of inc operations that precede
//	    or are concurrent with it.
//
// An inc precedes-or-is-concurrent-with a read exactly when the inc's
// invocation appears before the read's response, which makes clause (4) a
// real-time-sensitive property — the reason SEC_COUNT is not real-time
// oblivious and hence undecidable against A (Theorem 5.2).
func SECSafety(w word.Word) *Violation {
	if v := WECSafety(w); v != nil {
		return v
	}
	ops := word.Operations(w)
	for _, o := range ops {
		if o.Pending() || o.Op != spec.OpRead {
			continue
		}
		bound := 0
		for _, inc := range ops {
			if inc.Op == spec.OpInc && inc.Inv < o.Res {
				bound++
			}
		}
		v := o.Ret.(word.Int)
		if int(v) > bound {
			return &Violation{Op: o, Reason: fmt.Sprintf(
				"clause (4): returned %d > %d incs preceding or concurrent", v, bound)}
		}
	}
	return nil
}

// Converges is the finite-trace diagnostic for clause (3) of the eventual
// counters: if the word's suffix after the last inc response contains reads,
// the final read of every process that reads in that suffix must return the
// total number of incs invoked in the word. It reports false for traces that
// end mid-convergence, so it is a diagnostic for quiescent trace tails, not a
// language membership test (membership of ω-words is handled by labelled
// sources in the experiment harness).
func Converges(w word.Word) bool {
	ops := word.Operations(w)
	totalIncs := 0
	lastIncEnd := -1
	for _, o := range ops {
		if o.Op == spec.OpInc {
			totalIncs++
			if o.Res > lastIncEnd {
				lastIncEnd = o.Res
			}
		}
	}
	finalRead := map[int]int64{}
	sawRead := false
	for _, o := range ops {
		if o.Pending() || o.Op != spec.OpRead || o.Inv < lastIncEnd {
			continue
		}
		sawRead = true
		finalRead[o.ID.Proc] = int64(o.Ret.(word.Int))
	}
	if !sawRead {
		return false
	}
	for _, v := range finalRead {
		if v != int64(totalIncs) {
			return false
		}
	}
	return true
}
