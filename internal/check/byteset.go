package check

import "hash/maphash"

// byteSet is an open-addressing hash set of byte-string keys, stored in one
// append-only arena: inserting copies the key bytes into the arena and the
// table holds small fixed-width references. Unlike map[string]struct{}, no
// per-key string allocation survives an insert, Clear is constant-time and
// releases nothing, and a set that has grown to a workload's size inserts
// without allocating — the properties the witness-search memos and the
// incremental checker need to keep their steady state allocation-free.
type byteSet struct {
	// tab packs (generation << 32 | 1-based index into offs/ends) per slot;
	// a slot whose generation is not current is empty. Bumping gen empties
	// the whole table at once, so the fill/clear cycle of each witness
	// re-search never pays to zero it.
	tab   []uint64
	gen   uint64 // current generation, pre-shifted; bumped before first use
	offs  []int32
	ends  []int32
	arena []byte
}

// Len returns the number of keys in the set.
func (s *byteSet) Len() int { return len(s.offs) }

// Clear empties the set in constant time, keeping every backing array.
func (s *byteSet) Clear() {
	s.gen += 1 << 32
	s.offs = s.offs[:0]
	s.ends = s.ends[:0]
	s.arena = s.arena[:0]
}

// Contains reports whether key is in the set.
func (s *byteSet) Contains(key []byte) bool {
	if len(s.tab) == 0 {
		return false
	}
	mask := uint32(len(s.tab) - 1)
	for i := hashBytes(key) & mask; ; i = (i + 1) & mask {
		e := s.tab[i]
		if e&^0xffffffff != s.gen {
			return false
		}
		j := uint32(e)
		if string(s.arena[s.offs[j-1]:s.ends[j-1]]) == string(key) {
			return true
		}
	}
}

// Insert adds key to the set and reports whether it was absent. The key
// bytes are copied; the caller may reuse its buffer.
func (s *byteSet) Insert(key []byte) bool {
	if len(s.tab) == 0 {
		s.grow(16)
	} else if (len(s.offs)+1)*4 > len(s.tab)*3 {
		s.grow(len(s.tab) * 2)
	}
	mask := uint32(len(s.tab) - 1)
	for i := hashBytes(key) & mask; ; i = (i + 1) & mask {
		e := s.tab[i]
		if e&^0xffffffff != s.gen {
			off := int32(len(s.arena))
			s.arena = append(s.arena, key...)
			s.offs = append(s.offs, off)
			s.ends = append(s.ends, off+int32(len(key)))
			s.tab[i] = s.gen | uint64(len(s.offs))
			return true
		}
		j := uint32(e)
		if string(s.arena[s.offs[j-1]:s.ends[j-1]]) == string(key) {
			return false
		}
	}
}

// grow rehashes the current keys into a table of the given power-of-two
// size. The fresh table starts a fresh generation, so old slots need no
// zeroing beyond the allocation (or reuse) itself.
func (s *byteSet) grow(size int) {
	s.gen += 1 << 32 // a fresh generation empties reused slots without zeroing
	if cap(s.tab) >= size {
		s.tab = s.tab[:size]
	} else {
		s.tab = make([]uint64, size)
	}
	mask := uint32(size - 1)
	for j := range s.offs {
		key := s.arena[s.offs[j]:s.ends[j]]
		for i := hashBytes(key) & mask; ; i = (i + 1) & mask {
			if s.tab[i]&^0xffffffff != s.gen {
				s.tab[i] = s.gen | uint64(j+1)
				break
			}
		}
	}
}

// hashSeed keys the memo hashes. The seed is per-process random, which only
// perturbs probe order inside one set — memo semantics (and hence verdicts)
// never depend on it.
var hashSeed = maphash.MakeSeed()

// hashBytes hashes a key through the runtime's bulk hash, which processes
// words at a time — memo keys are hashed at every search node, so the
// byte-at-a-time FNV this replaces was a top-line cost of hard searches.
func hashBytes(b []byte) uint32 {
	return uint32(maphash.Bytes(hashSeed, b))
}
