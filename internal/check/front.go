package check

import (
	"encoding/binary"

	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// frontSearch is the fast path of the Wing–Gill witness search, exploiting
// the shape of histories extracted by word.Operations: within one process,
// operations never overlap (per-process alternation), so every operation's
// same-process predecessors are also real-time predecessors. An operation is
// therefore only ever placeable when it is the first unplaced operation of
// its process — the search state collapses from an arbitrary placed-subset
// bitmask to one front index per process, which shrinks both the branching
// scan (fronts instead of all operations) and the memo keys (a few bytes of
// front counters instead of ⌈n/8⌉ mask bytes), and lets keys be built into a
// reused buffer instead of a fresh string per node.
//
// The explored space is exactly the generic search's: placed sets reachable
// under either precedence order are per-process prefix unions, in bijection
// with front vectors, and the candidate set at each node is the same. Only
// the visit order differs, which cannot change an exhaustive memoized
// search's verdict.
type frontSearch struct {
	obj    spec.Object
	ops    []word.Operation
	byProc [][]int // operation indices per process, in process order
	front  []int   // per-process count of placed operations
	// realTime adds the real-time precedence test: an operation may only be
	// placed when no unplaced operation of another process precedes it.
	realTime     bool
	completeLeft int
	memo         byteSet // fruitless (fronts, state) nodes
	key          []byte  // reused key-building buffer
}

// newFrontSearch lays the operations out per process. ok is false when the
// slice does not satisfy the per-process alternation shape (strictly
// increasing ID.Idx, every non-final operation complete and preceding its
// successor) — callers then fall back to the generic bitmask search.
func newFrontSearch(obj spec.Object, ops []word.Operation, realTime bool) (*frontSearch, bool) {
	maxProc := -1
	for i := range ops {
		if ops[i].ID.Proc > maxProc {
			maxProc = ops[i].ID.Proc
		}
		if ops[i].ID.Proc < 0 {
			return nil, false
		}
	}
	s := &frontSearch{
		obj:      obj,
		ops:      ops,
		byProc:   make([][]int, maxProc+1),
		front:    make([]int, maxProc+1),
		realTime: realTime,
	}
	for i := range ops {
		o := &ops[i]
		row := s.byProc[o.ID.Proc]
		if len(row) > 0 {
			prev := &ops[row[len(row)-1]]
			// The shape the collapse relies on: process order is by ID.Idx,
			// and consecutive same-process operations never overlap.
			if prev.ID.Idx >= o.ID.Idx || prev.Pending() || prev.Res >= o.Inv {
				return nil, false
			}
		}
		s.byProc[o.ID.Proc] = append(row, i)
		if !o.Pending() {
			s.completeLeft++
		}
	}
	for _, row := range s.byProc {
		if len(row) > 1<<16-1 {
			return nil, false // front counters are encoded as uint16
		}
	}
	return s, true
}

// run starts the search from the object's initial state — the interned root
// when the object offers one, so reconverging branches share states instead
// of re-allocating them.
func (s *frontSearch) run() bool {
	if len(s.ops) == 0 {
		return true
	}
	init := s.obj.Init()
	if ri, ok := s.obj.(spec.RootInterner); ok {
		init = ri.InternRoot()
	}
	return s.rec(init)
}

// buildKey encodes (fronts, state) into the reused buffer. Front counters
// are fixed-width so distinct vectors cannot collide, and the state encoding
// is State.Key's (via the allocation-free AppendKey when available).
func (s *frontSearch) buildKey(st spec.State) []byte {
	b := s.key[:0]
	for _, f := range s.front {
		b = binary.LittleEndian.AppendUint16(b, uint16(f))
	}
	b = append(b, '/')
	if ka, ok := st.(spec.KeyAppender); ok {
		b = ka.AppendKey(b)
	} else {
		b = append(b, st.Key()...)
	}
	s.key = b
	return b
}

// placeable reports whether the front operation o of process p may be placed
// next: under real-time precedence, no other process may still hold an
// unplaced operation that precedes o. Per process the earliest unplaced
// response is the front's (responses are increasing along a process), so one
// front comparison per process decides it.
func (s *frontSearch) placeable(o *word.Operation) bool {
	if !s.realTime {
		return true
	}
	for q, row := range s.byProc {
		if q == o.ID.Proc || s.front[q] >= len(row) {
			continue
		}
		if f := &s.ops[row[s.front[q]]]; f.Precedes(*o) {
			return false
		}
	}
	return true
}

// rec is the memoized descent; it mirrors validOrder exactly, over fronts.
func (s *frontSearch) rec(st spec.State) bool {
	if s.completeLeft == 0 {
		return true // remaining pending operations are dropped
	}
	if s.memo.Contains(s.buildKey(st)) {
		return false
	}
	for p, row := range s.byProc {
		if s.front[p] >= len(row) {
			continue
		}
		o := &s.ops[row[s.front[p]]]
		if !s.placeable(o) {
			continue
		}
		nxt, ret, ok := st.Apply(o.Op, o.Arg)
		if !ok {
			continue
		}
		if !o.Pending() && !ret.Equal(o.Ret) {
			continue
		}
		s.front[p]++
		if !o.Pending() {
			s.completeLeft--
		}
		if s.rec(nxt) {
			return true
		}
		s.front[p]--
		if !o.Pending() {
			s.completeLeft++
		}
	}
	// Rebuild the key: the buffer was clobbered by the descent, but fronts
	// and state are back to this node's values, so the encoding is too.
	s.memo.Insert(s.buildKey(st))
	return false
}
