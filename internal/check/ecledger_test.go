package check

import (
	"testing"

	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

func TestECLedgerSafety(t *testing.T) {
	tests := []struct {
		name     string
		w        word.Word
		violates bool
	}{
		{"empty", word.Word{}, false},
		{
			"lemma 6.5 prefix: append then empty gets",
			// append(a) completes, gets return ε: clause (1) holds because
			// the append can be permuted after the gets. (Clause (2) is what
			// fails in the limit.)
			word.NewB().
				Op(0, spec.OpAppend, word.Rec("a"), word.Unit{}).
				Op(1, spec.OpGet, word.Unit{}, word.Seq{}).
				Op(0, spec.OpGet, word.Unit{}, word.Seq{}).Word(),
			false,
		},
		{
			"chained gets",
			word.NewB().
				Op(0, spec.OpAppend, word.Rec("a"), word.Unit{}).
				Op(1, spec.OpGet, word.Unit{}, word.Seq{"a"}).
				Op(0, spec.OpAppend, word.Rec("b"), word.Unit{}).
				Op(1, spec.OpGet, word.Unit{}, word.Seq{"a", "b"}).Word(),
			false,
		},
		{
			"incomparable gets",
			// One get saw a-then-b, another saw b alone: no single append
			// order explains both.
			word.NewB().
				Op(0, spec.OpAppend, word.Rec("a"), word.Unit{}).
				Op(0, spec.OpAppend, word.Rec("b"), word.Unit{}).
				Op(1, spec.OpGet, word.Unit{}, word.Seq{"a", "b"}).
				Op(2, spec.OpGet, word.Unit{}, word.Seq{"b"}).Word(),
			true,
		},
		{
			"get returns phantom record",
			word.NewB().
				Op(1, spec.OpGet, word.Unit{}, word.Seq{"ghost"}).Word(),
			true,
		},
		{
			"get doubles a single append",
			word.NewB().
				Op(0, spec.OpAppend, word.Rec("a"), word.Unit{}).
				Op(1, spec.OpGet, word.Unit{}, word.Seq{"a", "a"}).Word(),
			true,
		},
		{
			"pending append visible",
			word.NewB().
				Inv(0, spec.OpAppend, word.Rec("a")).
				Word().Append(
				word.NewInv(1, spec.OpGet, word.Unit{}),
				word.NewRes(1, spec.OpGet, word.Seq{"a"})),
			false,
		},
		{
			"duplicate appends allow duplicate records",
			word.NewB().
				Op(0, spec.OpAppend, word.Rec("a"), word.Unit{}).
				Op(1, spec.OpAppend, word.Rec("a"), word.Unit{}).
				Op(2, spec.OpGet, word.Unit{}, word.Seq{"a", "a"}).Word(),
			false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := ECLedgerSafety(tt.w)
			if (v != nil) != tt.violates {
				t.Errorf("ECLedgerSafety = %v, want violation=%v", v, tt.violates)
			}
		})
	}
}

func TestECLedgerSafetyAgreesWithSC(t *testing.T) {
	// Every sequentially consistent ledger word satisfies EC clause (1),
	// since an SC witness is in particular a valid permutation.
	words := []word.Word{
		word.NewB().
			Op(0, spec.OpAppend, word.Rec("a"), word.Unit{}).
			Op(1, spec.OpGet, word.Unit{}, word.Seq{"a"}).Word(),
		word.NewB().
			Op(0, spec.OpAppend, word.Rec("a"), word.Unit{}).
			Op(1, spec.OpGet, word.Unit{}, word.Seq{}).Word(),
	}
	l := spec.Ledger()
	for _, w := range words {
		if SeqConsistent(l, w) && ECLedgerSafety(w) != nil {
			t.Errorf("SC word violates EC clause (1): %v", w)
		}
	}
}

func TestECLedgerConverges(t *testing.T) {
	conv := word.NewB().
		Op(0, spec.OpAppend, word.Rec("a"), word.Unit{}).
		Op(1, spec.OpGet, word.Unit{}, word.Seq{}).
		Op(1, spec.OpGet, word.Unit{}, word.Seq{"a"}).Word()
	if !ECLedgerConverges(conv) {
		t.Error("converged ledger trace reported diverging")
	}
	div := word.NewB().
		Op(0, spec.OpAppend, word.Rec("a"), word.Unit{}).
		Op(1, spec.OpGet, word.Unit{}, word.Seq{}).Word()
	if ECLedgerConverges(div) {
		t.Error("diverging ledger trace reported converged")
	}
}
