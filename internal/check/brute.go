package check

import (
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// BruteLinearizable is an exhaustive reference implementation of the
// linearizability check used to cross-validate the memoized search: it
// enumerates every subset of pending operations to keep, every permutation of
// the kept operations, and tests real-time order plus validity directly.
// Exponential in both dimensions; for tests on histories of ≤ ~8 operations.
func BruteLinearizable(obj spec.Object, w word.Word) bool {
	return bruteSearch(obj, word.Operations(w), true)
}

// BruteSeqConsistent is the exhaustive reference for SeqConsistent.
func BruteSeqConsistent(obj spec.Object, w word.Word) bool {
	return bruteSearch(obj, word.Operations(w), false)
}

func bruteSearch(obj spec.Object, ops []word.Operation, realTime bool) bool {
	var pendingIdx []int
	for i, o := range ops {
		if o.Pending() {
			pendingIdx = append(pendingIdx, i)
		}
	}
	// Enumerate subsets of pending operations to keep.
	for mask := 0; mask < 1<<len(pendingIdx); mask++ {
		kept := make([]word.Operation, 0, len(ops))
		for _, o := range ops {
			if !o.Pending() {
				kept = append(kept, o)
			}
		}
		for b, idx := range pendingIdx {
			if mask&(1<<b) != 0 {
				kept = append(kept, ops[idx])
			}
		}
		if permuteValid(obj, kept, realTime) {
			return true
		}
	}
	return false
}

// permuteValid enumerates permutations of ops and accepts if any is a valid
// sequential history respecting the required order.
func permuteValid(obj spec.Object, ops []word.Operation, realTime bool) bool {
	n := len(ops)
	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			return checkPerm(obj, ops, perm, realTime)
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			perm[k] = i
			if rec(k + 1) {
				return true
			}
			used[i] = false
		}
		return false
	}
	return rec(0)
}

func checkPerm(obj spec.Object, ops []word.Operation, perm []int, realTime bool) bool {
	// Order constraints.
	pos := make([]int, len(ops))
	for k, i := range perm {
		pos[i] = k
	}
	for i := range ops {
		for j := range ops {
			if i == j {
				continue
			}
			var mustBefore bool
			if realTime {
				mustBefore = ops[i].Precedes(ops[j])
			} else {
				mustBefore = ops[i].ID.Proc == ops[j].ID.Proc && ops[i].ID.Idx < ops[j].ID.Idx
			}
			if mustBefore && pos[i] > pos[j] {
				return false
			}
		}
	}
	// Validity.
	st := obj.Init()
	for _, i := range perm {
		next, ret, ok := st.Apply(ops[i].Op, ops[i].Arg)
		if !ok {
			return false
		}
		if !ops[i].Pending() && !ret.Equal(ops[i].Ret) {
			return false
		}
		st = next
	}
	return true
}
