package check

// Differential validation on histories exhibited by the ABD register
// emulation of package abd over the deterministic message network — the
// shapes the explorer's message-passing family feeds the checkers. Three
// checkers are compared pairwise on every history: the memoized frontSearch,
// the pruned brute reference, and a third, deliberately naive exhaustive
// enumeration written in this file with no sharing of code or pruning ideas
// with either. The histories include the two shapes shared memory never
// produces: operations left pending because a *message* was dropped (the
// quorum stalls with the client parked), and operations pending at a crash
// of a client whose replica dies with it. Workloads are kept tiny (≤ 6
// operations) so the exhaustive reference stays affordable.

import (
	"testing"

	"github.com/drv-go/drv/internal/abd"
	"github.com/drv-go/drv/internal/msgnet"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/sut"
	"github.com/drv-go/drv/internal/word"
)

// abdHistory drives n clients over an aux-served ABD register emulation
// (optionally the no-write-back bug variant) under the given delivery order,
// loss schedule and crash schedule, and returns the exhibited history.
func abdHistory(t *testing.T, n, opsPerProc int, seed int64, bias float64, order msgnet.Order, drops []int, crashStep, crashProc int, buggy bool) word.Word {
	t.Helper()
	rt := sched.New(n, sched.Random(seed))
	defer rt.Stop()
	nt := msgnet.New(n, order)
	nt.SetDrops(drops)
	nt.Register(rt)
	reg := abd.NewRegister("x", n, nt, 0)
	if buggy {
		reg.DropReadWriteBack()
	}
	abd.Servers(rt, n, reg)
	svc := sut.NewService(n, abd.NewRegisterImpl(reg),
		sut.NewRandomWorkload(spec.Register(), n, opsPerProc, bias, seed))
	for i := 0; i < n; i++ {
		rt.Spawn(i, func(p *sched.Proc) {
			for {
				v, ok := svc.NextInv(p.ID)
				if !ok {
					return
				}
				svc.Send(p, v)
				svc.Recv(p)
			}
		})
	}
	for rt.Steps() < 200_000 {
		if crashStep > 0 && rt.Steps() == crashStep && !rt.Crashed(crashProc) {
			rt.Crash(crashProc)
			nt.Crash(crashProc)
		}
		if !rt.Step() {
			break
		}
	}
	return svc.History()
}

// exhaustiveValid reports whether some order of ops is a legal sequential
// execution honoring the given precedence relation. Unlike permuteValid it
// builds orders by repeatedly placing any operation with no unplaced
// predecessor and replays the specification only at full length — a
// different traversal shape, so a shared blind spot with the brute reference
// is unlikely.
func exhaustiveValid(obj spec.Object, ops []word.Operation, precedes func(a, b word.Operation) bool) bool {
	perm := make([]int, 0, len(ops))
	used := make([]bool, len(ops))
	var rec func() bool
	rec = func() bool {
		if len(perm) == len(ops) {
			st := obj.Init()
			for _, i := range perm {
				next, ret, ok := st.Apply(ops[i].Op, ops[i].Arg)
				if !ok {
					return false
				}
				if !ops[i].Pending() && !ret.Equal(ops[i].Ret) {
					return false
				}
				st = next
			}
			return true
		}
		for i := range ops {
			if used[i] {
				continue
			}
			// Every not-yet-placed predecessor of ops[i] blocks it.
			blocked := false
			for j := range ops {
				if !used[j] && j != i && precedes(ops[j], ops[i]) {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			used[i] = true
			perm = append(perm, i)
			if rec() {
				return true
			}
			perm = perm[:len(perm)-1]
			used[i] = false
		}
		return false
	}
	return rec()
}

// exhaustiveSearch decides the consistency condition given by precedes,
// trying every subset of pending operations (each independently either took
// effect before the run ended or did not, as the definitions allow).
func exhaustiveSearch(obj spec.Object, w word.Word, precedes func(a, b word.Operation) bool) bool {
	ops := word.Operations(w)
	var pend []int
	for i := range ops {
		if ops[i].Pending() {
			pend = append(pend, i)
		}
	}
	drop := make(map[int]bool, len(pend))
	for mask := 0; mask < 1<<len(pend); mask++ {
		for k, pi := range pend {
			drop[pi] = mask&(1<<k) == 0
		}
		sub := make([]word.Operation, 0, len(ops))
		for i := range ops {
			if !drop[i] {
				sub = append(sub, ops[i])
			}
		}
		if exhaustiveValid(obj, sub, precedes) {
			return true
		}
	}
	return false
}

// exhaustiveLinearizable is the naive linearizability reference: real-time
// precedence constrains the order.
func exhaustiveLinearizable(obj spec.Object, w word.Word) bool {
	return exhaustiveSearch(obj, w, word.Operation.Precedes)
}

// exhaustiveSeqConsistent is the naive sequential-consistency reference:
// only per-process program order constrains the order.
func exhaustiveSeqConsistent(obj spec.Object, w word.Word) bool {
	return exhaustiveSearch(obj, w, func(a, b word.Operation) bool {
		return a.ID.Proc == b.ID.Proc && a.ID.Idx < b.ID.Idx
	})
}

func TestFrontSearchMatchesBruteOnABDHistories(t *testing.T) {
	obj := spec.Register()
	cases := []struct {
		name      string
		order     func(seed int64) msgnet.Order
		bias      float64
		seeds     int64
		drops     []int
		crashStep int
		buggy     bool
	}{
		{name: "fifo/clean", order: func(int64) msgnet.Order { return msgnet.FIFOOrder() }},
		{name: "random/clean", order: msgnet.RandomOrder},
		{name: "random/dropped", order: msgnet.RandomOrder, drops: []int{0, 2, 4, 7}},
		{name: "random/crash", order: msgnet.RandomOrder, crashStep: 25},
		{name: "random/crash+dropped", order: msgnet.RandomOrder, drops: []int{1, 3, 5}, crashStep: 40},
		// The buggy variant demotes reads to regular; the inversion window
		// needs read-leaning traffic and LIFO delivery (see package abd) and
		// is rare at 6-operation workloads, so these cases hunt over many
		// seeds (the stack is deterministic: seed 243 of the first case is a
		// stable non-linearizable hit).
		{name: "lifo/nowriteback", order: func(int64) msgnet.Order { return msgnet.LIFOOrder() }, seeds: 300, buggy: true},
		{name: "lifo/nowriteback+dropped", order: func(int64) msgnet.Order { return msgnet.LIFOOrder() }, seeds: 300, drops: []int{2, 3}, buggy: true},
	}
	const n, opsPerProc = 3, 2
	sawPending, sawNonLin := false, false
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			bias, seeds := tc.bias, tc.seeds
			if bias == 0 {
				bias = 0.4
			}
			if seeds == 0 {
				seeds = 10
			}
			for seed := int64(1); seed <= seeds; seed++ {
				h := abdHistory(t, n, opsPerProc, seed, bias, tc.order(seed), tc.drops, tc.crashStep, 1, tc.buggy)
				ops := word.Operations(h)
				if len(ops) == 0 || len(ops) > 6 {
					continue
				}
				for i := range ops {
					if ops[i].Pending() {
						sawPending = true
					}
				}
				fastLin := LinearizableOps(obj, ops)
				if !fastLin {
					sawNonLin = true
				}
				if brute := BruteLinearizable(obj, h); brute != fastLin {
					t.Errorf("%s seed %d: frontSearch lin=%v, brute lin=%v on\n%v", tc.name, seed, fastLin, brute, h)
				}
				if ex := exhaustiveLinearizable(obj, h); ex != fastLin {
					t.Errorf("%s seed %d: frontSearch lin=%v, exhaustive lin=%v on\n%v", tc.name, seed, fastLin, ex, h)
				}
				fastSC := SeqConsistentOps(obj, ops)
				if brute := BruteSeqConsistent(obj, h); brute != fastSC {
					t.Errorf("%s seed %d: frontSearch sc=%v, brute sc=%v on\n%v", tc.name, seed, fastSC, brute, h)
				}
				if ex := exhaustiveSeqConsistent(obj, h); ex != fastSC {
					t.Errorf("%s seed %d: frontSearch sc=%v, exhaustive sc=%v on\n%v", tc.name, seed, fastSC, ex, h)
				}
				if fastLin && !fastSC {
					t.Errorf("%s seed %d: linearizable but not sequentially consistent:\n%v", tc.name, seed, h)
				}
			}
		})
	}
	if !sawPending {
		t.Error("no drop or crash left an operation pending; the differential never hit the pending path")
	}
	if !sawNonLin {
		t.Error("no history violated linearizability; the differential never exercised a negative verdict")
	}
}
