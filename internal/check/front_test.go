package check

import (
	"math/rand"
	"testing"

	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// TestFrontSearchMatchesGenericSearch differentially pins the per-process
// front search (the production fast path) against the generic bitmask search
// on histories too large for the brute-force reference: the two must agree on
// every object, both precedence orders, across random histories mixing
// consistent, inconsistent and pending-heavy cases.
func TestFrontSearchMatchesGenericSearch(t *testing.T) {
	objects := []spec.Object{
		spec.Register(), spec.Counter(), spec.Queue(), spec.Stack(), spec.Ledger(),
	}
	rng := rand.New(rand.NewSource(42))
	for _, obj := range objects {
		for trial := 0; trial < 60; trial++ {
			w := randomHistory(rng, obj, 12+rng.Intn(28), 2+rng.Intn(3))
			ops := word.Operations(w)
			for _, realTime := range []bool{true, false} {
				s, ok := newFrontSearch(obj, ops, realTime)
				if !ok {
					t.Fatalf("%s: word.Operations output rejected by the front search on %v", obj.Name(), w)
				}
				got := s.run()
				want := validOrder(obj, ops, precedenceEdges(ops, realTime))
				if got != want {
					t.Fatalf("%s realTime=%v: front search=%v generic=%v on %v",
						obj.Name(), realTime, got, want, w)
				}
			}
		}
	}
}

// TestFrontSearchRejectsNonAlternatingOps pins the fallback guard: hand-built
// operation slices that violate per-process alternation (overlapping
// same-process operations) must be rejected so the public checkers route
// them through the generic search instead of silently mis-searching.
func TestFrontSearchRejectsNonAlternatingOps(t *testing.T) {
	ops := []word.Operation{
		{ID: word.OpID{Proc: 0, Idx: 0}, Op: spec.OpRead, Ret: word.Int(0), Inv: 0, Res: 3},
		{ID: word.OpID{Proc: 0, Idx: 1}, Op: spec.OpRead, Ret: word.Int(0), Inv: 1, Res: 2},
	}
	if _, ok := newFrontSearch(spec.Register(), ops, true); ok {
		t.Error("overlapping same-process operations must fall back to the generic search")
	}
	if LinearizableOps(spec.Register(), ops) != validOrder(spec.Register(), ops, precedenceEdges(ops, true)) {
		t.Error("fallback path disagrees with the generic search")
	}
}
