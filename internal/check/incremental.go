package check

import (
	"encoding/binary"
	"fmt"

	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// maxFrontRow bounds a process's operation count in the incremental checker:
// front counters are encoded as uint16 in memo keys, exactly like
// frontSearch's.
const maxFrontRow = 1<<16 - 1

// Incremental answers linearizability or sequential-consistency queries over
// every prefix of one growing history without re-running the witness search
// from scratch per prefix. The device is a cached witness: the last accepting
// linearization found, kept as per-process placed-operation fronts, the
// object state after its final placement, and the specification response
// recorded for each placed-but-pending operation. Appending symbols updates
// the witness in constant time in the common cases:
//
//   - An invocation leaves the witness intact. The new operation is pending,
//     and a pending operation may always be dropped from a linearization, so
//     an accepting prefix stays accepting. (The converse is false — a new
//     pending operation can also make a previously rejecting prefix
//     accepting, by being placed with the specification's response — so a
//     rejecting verdict is re-checked, lazily, at the next query.)
//
//   - A response completes the process's pending operation. If the witness
//     placed it, the recorded specification response either matches the real
//     one (the witness still stands) or refutes the placement. If the
//     witness dropped it, the operation is appended at the end of the
//     witness when the specification's response from the witness's final
//     state matches the real one — always legal there: per-process order is
//     respected (the operation is its process's last), and under real-time
//     precedence every operation that precedes it is complete, hence already
//     placed, while the new operation precedes nothing (its response is the
//     history's last symbol).
//
// Only when no cheap update applies does the next query run the full
// memoized front search (the same state space as frontSearch, over buffers
// the checker retains), which either rebuilds the witness or memoizes a
// rejecting verdict until the history changes. Verdict-stream workloads are
// therefore cheap on both sides of a violation: accepting rounds ride the
// witness, and once a round rejects, repeated queries of the unchanged
// history cost nothing.
//
// Crash boundaries need no special casing: a crashed process's last
// operation simply stays pending forever, which the witness already models
// (pending operations are placeable or droppable at every query).
//
// Histories outside the per-process-alternation shape frontSearch relies on
// (out-of-range process indices, more than 65535 operations on one process)
// permanently fall back to the from-scratch checkers over the accumulated
// operations. Append mirrors word.Operations' well-formedness contract,
// panicking on the same malformed inputs at the same positions.
//
// An Incremental is not safe for concurrent use; pooled workloads give each
// worker (or each monitor logic) its own, via Pool.
type Incremental struct {
	obj      spec.Object
	realTime bool
	n        int

	init      spec.State       // initial state (interned root when offered)
	syms      word.Word        // the fed history
	ops       []word.Operation // word.Operations(syms), maintained in place
	byProc    [][]int          // operation indices per process, process order
	counts    []int            // per-process operations started
	complete  []int            // per-process complete-operation count
	pendingOf []int            // per-process index into ops of the pending op, -1 = none
	negOpen   map[int]int      // pending op of a negative process index (degenerate histories)
	negCount  map[int]int      // operation count of a negative process index
	nComplete int              // total complete operations

	// The cached witness, valid when wValid: an accepting linearization of
	// the current history, as per-process placed counts, the recorded
	// specification response of each placed pending operation, and the
	// object state after the last placement.
	wValid bool
	wFront []int
	wRets  []word.Value
	wState spec.State

	// Full-search scratch, retained across searches.
	sFront   []int
	sRets    []word.Value
	sLeft    int        // complete operations not yet placed
	winState spec.State // state at the accepting leaf
	memo     byteSet    // fruitless (fronts, state) nodes
	key      []byte     // reused key-building buffer

	muts map[string]bool // operation name -> OpSig.Mutating, built lazily

	fallback bool
	okCache  bool
	okValid  bool
}

// mutatingOp reports whether the named operation is mutating per the
// object's signatures; unknown operations are conservatively mutating.
func (c *Incremental) mutatingOp(op string) bool {
	if c.muts == nil {
		c.muts = map[string]bool{}
		for _, sig := range c.obj.Ops() {
			c.muts[sig.Name] = sig.Mutating
		}
	}
	m, known := c.muts[op]
	return !known || m
}

// NewIncremental returns a checker for the object over n processes:
// realTime true checks linearizability, false sequential consistency.
func NewIncremental(obj spec.Object, realTime bool, n int) *Incremental {
	c := &Incremental{obj: obj, realTime: realTime}
	c.Reset(n)
	return c
}

// Len returns the number of symbols fed since the last Reset.
func (c *Incremental) Len() int { return len(c.syms) }

// Reset rewinds the checker to the empty history over n processes, keeping
// every grown buffer: a reset checker re-fed a same-sized workload does not
// allocate.
func (c *Incremental) Reset(n int) {
	if n < 0 {
		n = 0
	}
	c.n = n
	c.syms = c.syms[:0]
	c.ops = c.ops[:0]
	for len(c.byProc) < n {
		c.byProc = append(c.byProc, nil)
	}
	c.byProc = c.byProc[:n]
	for p := range c.byProc {
		c.byProc[p] = c.byProc[p][:0]
	}
	c.counts = resetInts(c.counts, n, 0)
	c.complete = resetInts(c.complete, n, 0)
	c.pendingOf = resetInts(c.pendingOf, n, -1)
	c.negOpen = nil
	c.negCount = nil
	c.nComplete = 0

	// The empty history's witness: nothing placed, initial state. An object
	// with an interning root gets a fresh one per Reset: the checker is
	// single-goroutine, so every search of this history can share states
	// across reconverging branches, and the interned tree is released with
	// the history it served.
	c.init = c.obj.Init()
	if ri, ok := c.obj.(spec.RootInterner); ok {
		c.init = ri.InternRoot()
	}
	c.wValid = true
	c.wFront = resetInts(c.wFront, n, 0)
	c.wRets = resetVals(c.wRets, n)
	c.wState = c.init

	c.fallback = false
	c.okValid = false
}

// resetInts re-sizes a per-process counter slice to n entries of v.
func resetInts(s []int, n int, v int) []int {
	for len(s) < n {
		s = append(s, v)
	}
	s = s[:n]
	for i := range s {
		s[i] = v
	}
	return s
}

// resetVals re-sizes a per-process value slice to n nil entries.
func resetVals(s []word.Value, n int) []word.Value {
	for len(s) < n {
		s = append(s, nil)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

// Append feeds the next symbol of the history, updating the witness. It
// enforces word.Operations' well-formedness contract with the same panics.
func (c *Incremental) Append(sym word.Symbol) {
	i := len(c.syms)
	c.syms = append(c.syms, sym)
	// A cached rejecting verdict often survives the appended symbol, because
	// a witness for the extension would project to one for the old history:
	//
	//   - A response: the witness restricted to the old operations places the
	//     newly complete operation as pending, with the specification's
	//     response — the real one.
	//   - Under real-time precedence, any invocation: every complete
	//     operation's response precedes the new invocation, so a witness
	//     places the new operation after all of them, and truncating the
	//     witness just before it leaves one for the old history.
	//   - A non-mutating invocation: dropping the new operation from a
	//     witness leaves the state sequence — hence every other operation's
	//     legality — unchanged (the OpSig.Mutating contract).
	//
	// Only a mutating invocation under sequential consistency can resurrect
	// acceptance (placed with the specification's response, it may repair the
	// states later operations observe), so only it forces a re-search.
	keepNo := c.okValid && !c.okCache && !c.fallback &&
		(sym.Kind == word.Res || c.realTime || !c.mutatingOp(sym.Op))
	if !keepNo {
		c.okValid = false
	}
	p := sym.Proc
	switch sym.Kind {
	case word.Inv:
		if c.openOf(p) >= 0 {
			panic(fmt.Sprintf("word: process %d invokes %q at position %d with an operation still pending", p, sym.Op, i))
		}
		oi := len(c.ops)
		c.ops = append(c.ops, word.Operation{
			ID:  word.OpID{Proc: p, Idx: c.countOf(p)},
			Op:  sym.Op,
			Arg: sym.Val,
			Inv: i,
			Res: -1,
		})
		c.setOpen(p, oi)
		if p < 0 || p >= c.n {
			c.fallback = true
		}
		if c.fallback {
			return
		}
		c.byProc[p] = append(c.byProc[p], oi)
		if len(c.byProc[p]) > maxFrontRow {
			c.fallback = true
		}
	case word.Res:
		oi := c.openOf(p)
		if oi < 0 {
			panic(fmt.Sprintf("word: process %d responds %q at position %d with no pending invocation", p, sym.Op, i))
		}
		o := &c.ops[oi]
		if o.Op != sym.Op {
			panic(fmt.Sprintf("word: process %d response %q at position %d does not match pending invocation %q", p, sym.Op, i, o.Op))
		}
		o.Ret = sym.Val
		o.Res = i
		c.clearOpen(p)
		if c.fallback {
			return
		}
		c.complete[p]++
		c.nComplete++
		if !c.wValid {
			return
		}
		switch idx := c.complete[p] - 1; c.wFront[p] {
		case idx + 1:
			// The witness placed the operation while it was pending; the
			// recorded specification response either matches the real one
			// or refutes the placement.
			if c.wRets[p] != nil && c.wRets[p].Equal(sym.Val) {
				c.wRets[p] = nil
			} else {
				c.wValid = false
			}
		case idx:
			// The witness dropped the operation; append it at the end.
			if nxt, ret, ok := c.wState.Apply(o.Op, o.Arg); ok && ret.Equal(sym.Val) {
				c.wState = nxt
				c.wFront[p] = idx + 1
			} else {
				c.wValid = false
			}
		default:
			c.wValid = false // unreachable: a valid witness places every complete operation
		}
	default:
		panic(fmt.Sprintf("word: symbol at position %d has invalid kind %d", i, sym.Kind))
	}
}

// OK reports whether the history fed so far passes the check — exactly
// LinearizableOps/SeqConsistentOps(obj, word.Operations(prefix)).
func (c *Incremental) OK() bool {
	if c.fallback {
		if !c.okValid {
			if c.realTime {
				c.okCache = LinearizableOps(c.obj, c.ops)
			} else {
				c.okCache = SeqConsistentOps(c.obj, c.ops)
			}
			c.okValid = true
		}
		return c.okCache
	}
	if c.wValid {
		return true
	}
	if !c.okValid {
		c.okCache = c.search()
		c.okValid = true
	}
	return c.okCache
}

// CheckWord resets the checker and checks w whole.
func (c *Incremental) CheckWord(w word.Word) bool {
	c.Reset(c.n)
	for _, s := range w {
		c.Append(s)
	}
	return c.OK()
}

// CheckExtending checks w, reusing the witness when w extends the history
// already fed (the predictive monitors' verdict stream: successive sketch
// histories usually extend each other, but view reordering can rebuild the
// past, in which case the checker resets and re-feeds).
func (c *Incremental) CheckExtending(w word.Word) bool {
	k := len(c.syms)
	if k > len(w) || !c.syms.Equal(w[:k]) {
		c.Reset(c.n)
		k = 0
	}
	for _, s := range w[k:] {
		c.Append(s)
	}
	return c.OK()
}

// AnyPrefixViolated reports whether some finite prefix of w fails the check
// — the incremental form of the anyPrefixViolates lift the non-prefix-closed
// languages (sequential consistency) need. Only prefixes ending at a
// response symbol (and w itself) can introduce a violation: a trailing
// pending invocation is droppable, so it never invalidates a witness. The
// forward pass exits at the first violated prefix, so an accepting history
// costs one witness maintenance sweep and a violating one at most one full
// search beyond it.
func (c *Incremental) AnyPrefixViolated(w word.Word) bool {
	c.Reset(c.n)
	for _, s := range w {
		c.Append(s)
		if s.Kind == word.Res && !c.OK() {
			return true
		}
	}
	return !c.OK()
}

// openOf returns the index into ops of the process's pending operation, or
// -1; out-of-range processes are tracked in the degenerate side maps.
func (c *Incremental) openOf(p int) int {
	if p >= 0 && p < len(c.pendingOf) {
		return c.pendingOf[p]
	}
	if oi, ok := c.negOpen[p]; ok {
		return oi
	}
	return -1
}

func (c *Incremental) setOpen(p, oi int) {
	if p >= 0 {
		for p >= len(c.pendingOf) {
			c.pendingOf = append(c.pendingOf, -1)
			c.counts = append(c.counts, 0)
		}
		c.pendingOf[p] = oi
		c.counts[p]++
		return
	}
	if c.negOpen == nil {
		c.negOpen = map[int]int{}
		c.negCount = map[int]int{}
	}
	c.negOpen[p] = oi
	c.negCount[p]++
}

func (c *Incremental) clearOpen(p int) {
	if p >= 0 {
		c.pendingOf[p] = -1
		return
	}
	delete(c.negOpen, p)
}

// countOf returns how many operations the process has started.
func (c *Incremental) countOf(p int) int {
	if p >= 0 && p < len(c.counts) {
		return c.counts[p]
	}
	return c.negCount[p]
}

// search runs the memoized front search over the current operations,
// mirroring frontSearch exactly (same state space, same verdict), but over
// the checker's retained buffers, and extracting the accepting linearization
// into the witness on success.
func (c *Incremental) search() bool {
	c.sFront = resetInts(c.sFront, c.n, 0)
	c.sRets = resetVals(c.sRets, c.n)
	c.sLeft = c.nComplete
	c.memo.Clear()
	if !c.rec(c.init) {
		return false
	}
	// A success returns through every frame without unwinding, so sFront and
	// sRets hold the accepting leaf's values.
	copy(c.wFront, c.sFront)
	copy(c.wRets, c.sRets)
	c.wState = c.winState
	c.wValid = true
	return true
}

// buildKey encodes (fronts, state) into the reused buffer. Front counters
// are fixed-width so distinct vectors cannot collide, and the state encoding
// is State.Key's (via the allocation-free AppendKey when available).
// Recorded pending responses need no slot: within one search the placed
// operations' responses are functions of the placement order the fronts
// already encode, and a pending operation's response is never re-examined.
func (c *Incremental) buildKey(st spec.State) []byte {
	b := c.key[:0]
	for _, f := range c.sFront {
		b = binary.LittleEndian.AppendUint16(b, uint16(f))
	}
	b = append(b, '/')
	if ka, ok := st.(spec.KeyAppender); ok {
		b = ka.AppendKey(b)
	} else {
		b = append(b, st.Key()...)
	}
	c.key = b
	return b
}

// placeable mirrors frontSearch.placeable over the search fronts.
func (c *Incremental) placeable(o *word.Operation) bool {
	if !c.realTime {
		return true
	}
	for q, row := range c.byProc {
		if q == o.ID.Proc || c.sFront[q] >= len(row) {
			continue
		}
		if f := &c.ops[row[c.sFront[q]]]; f.Precedes(*o) {
			return false
		}
	}
	return true
}

// rec is the memoized descent, frontSearch.rec over the checker's buffers.
func (c *Incremental) rec(st spec.State) bool {
	if c.sLeft == 0 {
		c.winState = st
		return true // remaining pending operations are dropped
	}
	if c.memo.Contains(c.buildKey(st)) {
		return false
	}
	for p, row := range c.byProc {
		if c.sFront[p] >= len(row) {
			continue
		}
		o := &c.ops[row[c.sFront[p]]]
		if !c.placeable(o) {
			continue
		}
		nxt, ret, ok := st.Apply(o.Op, o.Arg)
		if !ok {
			continue
		}
		pending := o.Pending()
		if !pending && !ret.Equal(o.Ret) {
			continue
		}
		c.sFront[p]++
		if pending {
			c.sRets[p] = ret
		} else {
			c.sLeft--
		}
		if c.rec(nxt) {
			return true
		}
		c.sFront[p]--
		if pending {
			c.sRets[p] = nil
		} else {
			c.sLeft++
		}
	}
	// Rebuild the key: the buffer was clobbered by the descent, but fronts
	// and state are back to this node's values, so the encoding is too.
	c.memo.Insert(c.buildKey(st))
	return false
}

// Pool recycles Incremental checkers across the runs of one worker: Get
// borrows a reset checker (reusing a reclaimed one whose object and order
// mode match), Reclaim returns every borrowed checker at once — callers
// reclaim at the start of each run, so a borrowed checker stays valid for
// the rest of its run, like a pooled session's Result. A Pool is not safe
// for concurrent use: pooled workloads give each worker its own.
type Pool struct {
	chks []*Incremental
	used []bool
}

// NewPool returns an empty checker pool.
func NewPool() *Pool { return &Pool{} }

// Get borrows a reset checker for (obj, realTime) over n processes.
func (p *Pool) Get(obj spec.Object, realTime bool, n int) *Incremental {
	for i, c := range p.chks {
		if !p.used[i] && c.realTime == realTime && c.obj.Name() == obj.Name() {
			p.used[i] = true
			c.obj = obj
			c.Reset(n)
			return c
		}
	}
	c := NewIncremental(obj, realTime, n)
	p.chks = append(p.chks, c)
	p.used = append(p.used, true)
	return c
}

// Reclaim returns every borrowed checker to the pool.
func (p *Pool) Reclaim() {
	for i := range p.used {
		p.used[i] = false
	}
}
