package check

import (
	"fmt"
	"sort"

	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// ECLedgerSafety checks clause (1) of the eventually consistent ledger
// (Definition 2.9) on a finite prefix: it must be possible to append response
// symbols so every operation completes, and to permute the operations —
// without any process-order or real-time constraint — into a sequential
// history valid for the ledger.
//
// For the deterministic ledger this reduces to: the distinct return values of
// complete get operations must form a chain in the prefix order, and the
// longest returned sequence must be buildable from the word's append
// operations (each used at most once). Pending operations and unread appends
// impose no constraint, since their completions can be placed after every
// complete get. Returns the first violation found, or nil.
func ECLedgerSafety(w word.Word) *Violation {
	ops := word.Operations(w)
	var gets []word.Operation
	appends := map[word.Rec]int{} // record -> multiplicity among append ops
	for _, o := range ops {
		switch o.Op {
		case spec.OpAppend:
			r, ok := o.Arg.(word.Rec)
			if !ok {
				return &Violation{Op: o, Reason: "append with non-record argument"}
			}
			appends[r]++
		case spec.OpGet:
			if o.Pending() {
				continue
			}
			if _, ok := o.Ret.(word.Seq); !ok {
				return &Violation{Op: o, Reason: "get returned a non-sequence value"}
			}
			gets = append(gets, o)
		}
	}
	// Sort complete gets by return length; each must extend the previous.
	sort.SliceStable(gets, func(i, j int) bool {
		return len(gets[i].Ret.(word.Seq)) < len(gets[j].Ret.(word.Seq))
	})
	var longest word.Seq
	for _, g := range gets {
		s := g.Ret.(word.Seq)
		if len(s) < len(longest) || !longest.Equal(s[:len(longest)]) {
			return &Violation{Op: g, Reason: fmt.Sprintf(
				"clause (1): return %v does not extend %v", s, longest)}
		}
		longest = s
	}
	// The longest return must be realizable from the available appends.
	used := map[word.Rec]int{}
	for i, r := range longest {
		used[r]++
		if used[r] > appends[r] {
			g := gets[len(gets)-1]
			return &Violation{Op: g, Reason: fmt.Sprintf(
				"clause (1): position %d returns record %q appended fewer than %d times", i, r, used[r])}
		}
	}
	return nil
}

// ECLedgerConverges is the finite-trace diagnostic for clause (2): the final
// complete get of every process that performs a get after the last append
// must contain every record appended in the word. Like Converges it reports
// on quiescent trace tails only.
func ECLedgerConverges(w word.Word) bool {
	ops := word.Operations(w)
	want := map[word.Rec]int{}
	lastAppendEnd := -1
	for _, o := range ops {
		if o.Op == spec.OpAppend {
			want[o.Arg.(word.Rec)]++
			if o.Res > lastAppendEnd {
				lastAppendEnd = o.Res
			}
		}
	}
	finalGet := map[int]word.Seq{}
	sawGet := false
	for _, o := range ops {
		if o.Pending() || o.Op != spec.OpGet || o.Inv < lastAppendEnd {
			continue
		}
		sawGet = true
		finalGet[o.ID.Proc] = o.Ret.(word.Seq)
	}
	if !sawGet {
		return false
	}
	for _, s := range finalGet {
		have := map[word.Rec]int{}
		for _, r := range s {
			have[r]++
		}
		for r, n := range want {
			if have[r] < n {
				return false
			}
		}
	}
	return true
}
