package check

import (
	"testing"

	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// lemma52Word is the paper's Lemma 5.2 witness: p1 increments, then p2 and p1
// alternately read 0 forever. Clause (1) fails at p1's first read.
func lemma52Word(rounds int) word.Word {
	b := word.NewB().Op(0, spec.OpInc, word.Unit{}, word.Unit{})
	for i := 0; i < rounds; i++ {
		b.Op(1, spec.OpRead, word.Unit{}, word.Int(0))
		b.Op(0, spec.OpRead, word.Unit{}, word.Int(0))
	}
	return b.Word()
}

func TestWECSafety(t *testing.T) {
	tests := []struct {
		name     string
		w        word.Word
		violates bool
	}{
		{"empty", word.Word{}, false},
		{
			"own inc then correct read",
			word.NewB().
				Op(0, spec.OpInc, word.Unit{}, word.Unit{}).
				Op(0, spec.OpRead, word.Unit{}, word.Int(1)).Word(),
			false,
		},
		{
			"lemma 5.2: read below own incs",
			lemma52Word(1),
			true,
		},
		{
			"other process may lag",
			// p1 reads 0 after p0's inc: allowed by WEC (only own incs count).
			word.NewB().
				Op(0, spec.OpInc, word.Unit{}, word.Unit{}).
				Op(1, spec.OpRead, word.Unit{}, word.Int(0)).Word(),
			false,
		},
		{
			"non-monotonic reads",
			word.NewB().
				Op(0, spec.OpRead, word.Unit{}, word.Int(2)).
				Op(0, spec.OpRead, word.Unit{}, word.Int(1)).Word(),
			true,
		},
		{
			"monotonic reads above own incs",
			word.NewB().
				Op(0, spec.OpRead, word.Unit{}, word.Int(2)).
				Op(0, spec.OpRead, word.Unit{}, word.Int(5)).Word(),
			false,
		},
		{
			"pending read ignored",
			word.NewB().
				Op(0, spec.OpInc, word.Unit{}, word.Unit{}).
				Inv(0, spec.OpRead, word.Unit{}).Word(),
			false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := WECSafety(tt.w)
			if (v != nil) != tt.violates {
				t.Errorf("WECSafety = %v, want violation=%v", v, tt.violates)
			}
		})
	}
}

func TestSECSafety(t *testing.T) {
	tests := []struct {
		name     string
		w        word.Word
		violates bool
	}{
		{
			"read bounded by concurrent incs",
			// p0's inc overlaps p1's read: read may return 0 or 1.
			word.NewB().
				Inv(0, spec.OpInc, word.Unit{}).
				Inv(1, spec.OpRead, word.Unit{}).
				Res(0, spec.OpInc, word.Unit{}).
				Res(1, spec.OpRead, word.Int(1)).Word(),
			false,
		},
		{
			"clause 4: read above all incs",
			// No inc anywhere, read returns 1: weakly fine (monotone, above
			// own 0 incs) but strongly impossible.
			word.NewB().
				Op(0, spec.OpRead, word.Unit{}, word.Int(1)).Word(),
			true,
		},
		{
			"clause 4: read sees inc invoked after its response",
			word.NewB().
				Op(1, spec.OpRead, word.Unit{}, word.Int(1)).
				Op(0, spec.OpInc, word.Unit{}, word.Unit{}).Word(),
			true,
		},
		{
			"pending inc counts as concurrent",
			word.NewB().
				Inv(0, spec.OpInc, word.Unit{}).
				Word().Append(
				word.NewInv(1, spec.OpRead, word.Unit{}),
				word.NewRes(1, spec.OpRead, word.Int(1))),
			false,
		},
		{
			"wec violation surfaces through sec",
			lemma52Word(1),
			true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := SECSafety(tt.w)
			if (v != nil) != tt.violates {
				t.Errorf("SECSafety = %v, want violation=%v", v, tt.violates)
			}
		})
	}
}

func TestSECImpliesWEC(t *testing.T) {
	// SEC ⊂ WEC on safety clauses: anything passing SECSafety passes
	// WECSafety (Lemma 5.2 uses SEC_COUNT ⊂ WEC_COUNT).
	words := []word.Word{
		lemma52Word(2),
		word.NewB().Op(0, spec.OpInc, word.Unit{}, word.Unit{}).
			Op(0, spec.OpRead, word.Unit{}, word.Int(1)).Word(),
		word.NewB().Op(0, spec.OpRead, word.Unit{}, word.Int(3)).Word(),
	}
	for _, w := range words {
		if SECSafety(w) == nil && WECSafety(w) != nil {
			t.Errorf("SEC-safe word fails WEC safety: %v", w)
		}
	}
}

func TestConverges(t *testing.T) {
	conv := word.NewB().
		Op(0, spec.OpInc, word.Unit{}, word.Unit{}).
		Op(1, spec.OpRead, word.Unit{}, word.Int(0)).
		Op(1, spec.OpRead, word.Unit{}, word.Int(1)).
		Op(0, spec.OpRead, word.Unit{}, word.Int(1)).Word()
	if !Converges(conv) {
		t.Error("converged trace reported as diverging")
	}
	div := word.NewB().
		Op(0, spec.OpInc, word.Unit{}, word.Unit{}).
		Op(1, spec.OpRead, word.Unit{}, word.Int(0)).Word()
	if Converges(div) {
		t.Error("diverging trace reported as converged")
	}
	if Converges(word.Word{}) {
		t.Error("empty trace cannot witness convergence")
	}
}
