// Package check implements the consistency checkers behind the paper's
// distributed languages: linearizability [31] and sequential consistency [34]
// for arbitrary sequential objects (Definitions 2.3–2.6), the weak and strong
// eventual counter properties (Definitions 2.7–2.8), and the eventual ledger
// (Definition 2.9).
//
// Linearizability and sequential consistency share one memoized
// Wing–Gill-style search: a concurrent history is accepted iff the complete
// operations (plus any subset of pending ones, which may be assigned their
// specification response) admit a valid sequential order that extends a
// required partial order — process order ∪ real-time order for
// linearizability, process order alone for sequential consistency.
package check

import (
	"strings"

	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// Linearizable reports whether the finite word is linearizable with respect
// to the sequential object (Definitions 2.4/2.6 and, for any object O,
// Section 6.2's LIN_O): responses may be appended to pending operations (the
// object's specification determines the appended value), remaining pending
// operations are removed, and the complete operations must admit a valid
// sequential order that preserves real-time precedence.
func Linearizable(obj spec.Object, w word.Word) bool {
	return LinearizableOps(obj, word.Operations(w))
}

// LinearizableOps is Linearizable on pre-extracted operations. Operations
// must carry the invocation/response indices assigned by word.Operations or
// an order-isomorphic embedding.
func LinearizableOps(obj spec.Object, ops []word.Operation) bool {
	if s, ok := newFrontSearch(obj, ops, true); ok {
		return s.run()
	}
	return validOrder(obj, ops, precedenceEdges(ops, true))
}

// SeqConsistent reports whether the finite word is sequentially consistent
// with respect to the object (Definitions 2.3/2.5): like linearizability but
// the sequential witness need only respect each process's own operation
// order, not real-time.
func SeqConsistent(obj spec.Object, w word.Word) bool {
	return SeqConsistentOps(obj, word.Operations(w))
}

// SeqConsistentOps is SeqConsistent on pre-extracted operations.
func SeqConsistentOps(obj spec.Object, ops []word.Operation) bool {
	if s, ok := newFrontSearch(obj, ops, false); ok {
		return s.run()
	}
	return validOrder(obj, ops, precedenceEdges(ops, false))
}

// precedenceEdges computes, for each operation, the indices of operations
// that must be linearized before it: real-time predecessors when realTime is
// set (which subsumes process order), otherwise same-process predecessors
// only.
func precedenceEdges(ops []word.Operation, realTime bool) [][]int {
	prec := make([][]int, len(ops))
	for i, oi := range ops {
		for j, oj := range ops {
			if i == j {
				continue
			}
			if realTime {
				if oj.Precedes(oi) {
					prec[i] = append(prec[i], j)
				}
			} else if oj.ID.Proc == oi.ID.Proc && oj.ID.Idx < oi.ID.Idx {
				prec[i] = append(prec[i], j)
			}
		}
	}
	return prec
}

// validOrder runs the memoized search for a sequential witness. An operation
// is eligible once all operations in prec[i] are already placed; complete
// operations must reproduce their recorded response, pending operations adopt
// the specification's response or are dropped. Acceptance requires all
// complete operations placed.
func validOrder(obj spec.Object, ops []word.Operation, prec [][]int) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	done := make([]bool, n)
	completeLeft := 0
	for _, o := range ops {
		if !o.Pending() {
			completeLeft++
		}
	}
	// memo records (placed-set, state) pairs already proven fruitless.
	memo := map[string]bool{}
	maskBuf := make([]byte, (n+7)/8)

	maskKey := func(stateKey string) string {
		for i := range maskBuf {
			maskBuf[i] = 0
		}
		for i, d := range done {
			if d {
				maskBuf[i/8] |= 1 << (i % 8)
			}
		}
		var b strings.Builder
		b.Grow(len(maskBuf) + 1 + len(stateKey))
		b.Write(maskBuf)
		b.WriteByte('/')
		b.WriteString(stateKey)
		return b.String()
	}

	var rec func(st spec.State) bool
	rec = func(st spec.State) bool {
		if completeLeft == 0 {
			return true // remaining pending operations are dropped
		}
		key := maskKey(st.Key())
		if memo[key] {
			return false
		}
	next:
		for i := range ops {
			if done[i] {
				continue
			}
			for _, j := range prec[i] {
				if !done[j] {
					continue next
				}
			}
			o := &ops[i]
			nxt, ret, ok := st.Apply(o.Op, o.Arg)
			if !ok {
				continue
			}
			if !o.Pending() && !ret.Equal(o.Ret) {
				continue
			}
			done[i] = true
			if !o.Pending() {
				completeLeft--
			}
			if rec(nxt) {
				return true
			}
			done[i] = false
			if !o.Pending() {
				completeLeft++
			}
		}
		memo[key] = true
		return false
	}
	return rec(obj.Init())
}
