package check

// Unit, property, fuzz, allocation and race coverage for the incremental
// checker beyond the differential battery of incdiff_test.go: interleaved
// prefix queries (the monitors re-check prefixes out of lockstep and repeat
// them), the CheckExtending reset path when successive histories are not
// extensions, the steady-state allocation pins the explorer's hot path
// relies on, and per-goroutine checker ownership under the race detector.

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// TestIncrementalInterleavedPrefixQueries drives one checker through an
// arbitrary (non-monotone, repeating) sequence of prefix lengths of the same
// history via CheckExtending — the HistAt access pattern — and compares
// every verdict with a fresh checker fed the same prefix from scratch.
// Histories include crash-shaped ones (operations pending forever).
func TestIncrementalInterleavedPrefixQueries(t *testing.T) {
	objs := []spec.Object{spec.Register(), spec.Queue(), spec.Counter()}
	for _, obj := range objs {
		obj := obj
		t.Run(obj.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 40; trial++ {
				n := 2 + rng.Intn(2)
				w := randWord(obj, n, 6+rng.Intn(10), []float64{0, 0.3}[trial%2], rng)
				for _, realTime := range []bool{true, false} {
					chk := NewIncremental(obj, realTime, n)
					for q := 0; q < 12; q++ {
						k := rng.Intn(len(w) + 1)
						got := chk.CheckExtending(w[:k])
						if want := scratchOK(obj, realTime, w[:k]); got != want {
							t.Fatalf("%s trial %d realTime=%v: CheckExtending(w[:%d])=%v, fresh=%v on\n%v",
								obj.Name(), trial, realTime, k, got, want, w)
						}
						// Repeated query on the unchanged prefix must agree too.
						if got2 := chk.CheckExtending(w[:k]); got2 != got {
							t.Fatalf("%s trial %d: repeated CheckExtending(w[:%d]) flipped %v -> %v",
								obj.Name(), trial, k, got, got2)
						}
					}
				}
			}
		})
	}
}

// TestIncrementalCheckExtendingDivergence rebuilds the past between queries:
// the second history is not an extension of the first, so CheckExtending
// must reset and still agree with a fresh checker.
func TestIncrementalCheckExtendingDivergence(t *testing.T) {
	obj := spec.Register()
	rng := rand.New(rand.NewSource(23))
	chk := NewIncremental(obj, true, 3)
	for trial := 0; trial < 60; trial++ {
		w := randWord(obj, 3, 5+rng.Intn(8), 0.25, rng)
		if got, want := chk.CheckExtending(w), scratchOK(obj, true, w); got != want {
			t.Fatalf("trial %d: CheckExtending=%v, fresh=%v on\n%v", trial, got, want, w)
		}
	}
}

// TestIncrementalCrashBoundaryInvalidation checks the crash shape directly:
// a process's operation left pending forever must keep every later verdict
// identical to from-scratch checking, including verdicts queried both before
// and after the crash point.
func TestIncrementalCrashBoundaryInvalidation(t *testing.T) {
	obj := spec.Register()
	// p0 writes 1 (completes), p1's write 2 stays pending (crashed), p0
	// then reads; the pending write may or may not have taken effect, so
	// reads of 0 and 2 are both linearizable, a read of 3 is not.
	base := word.Word{
		{Proc: 0, Kind: word.Inv, Op: spec.OpWrite, Val: word.Int(1)},
		{Proc: 0, Kind: word.Res, Op: spec.OpWrite, Val: word.Unit{}},
		{Proc: 1, Kind: word.Inv, Op: spec.OpWrite, Val: word.Int(2)},
		{Proc: 0, Kind: word.Inv, Op: spec.OpRead, Val: word.Unit{}},
	}
	for _, tc := range []struct {
		ret  int64
		want bool
	}{{1, true}, {2, true}, {3, false}} {
		w := append(append(word.Word(nil), base...),
			word.Symbol{Proc: 0, Kind: word.Res, Op: spec.OpRead, Val: word.Int(tc.ret)})
		chk := NewIncremental(obj, true, 2)
		for _, s := range w {
			chk.Append(s)
		}
		if got := chk.OK(); got != tc.want {
			t.Errorf("read %d after pending-at-crash write: incremental=%v, want %v", tc.ret, got, tc.want)
		}
		if got := scratchOK(obj, true, w); got != tc.want {
			t.Errorf("read %d after pending-at-crash write: scratch=%v, want %v", tc.ret, got, tc.want)
		}
	}
}

// TestIncrementalPanicsMatchOperations pins Append to word.Operations'
// well-formedness contract: same malformed inputs, same panic messages.
func TestIncrementalPanicsMatchOperations(t *testing.T) {
	cases := []word.Word{
		{{Proc: 0, Kind: word.Inv, Op: "read"}, {Proc: 0, Kind: word.Inv, Op: "read"}},
		{{Proc: 0, Kind: word.Res, Op: "read"}},
		{{Proc: 0, Kind: word.Inv, Op: "read"}, {Proc: 0, Kind: word.Res, Op: "write"}},
		{{Proc: 0, Kind: 7, Op: "read"}},
	}
	for i, w := range cases {
		wantMsg := func() (msg interface{}) {
			defer func() { msg = recover() }()
			word.Operations(w)
			return nil
		}()
		gotMsg := func() (msg interface{}) {
			defer func() { msg = recover() }()
			chk := NewIncremental(spec.Register(), true, 2)
			for _, s := range w {
				chk.Append(s)
			}
			return nil
		}()
		if wantMsg == nil {
			t.Fatalf("case %d: word.Operations did not panic", i)
		}
		if gotMsg != wantMsg {
			t.Errorf("case %d: Append panic %q, word.Operations panic %q", i, gotMsg, wantMsg)
		}
	}
}

// TestIncrementalSteadyStateAllocs pins the object-family hot path at zero
// allocations: once a checker has processed one history of a workload's
// size, re-checking same-sized histories allocates nothing.
func TestIncrementalSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		obj      spec.Object
		realTime bool
	}{
		{spec.Register(), true},
		{spec.Register(), false},
		{spec.Counter(), true},
	} {
		rng := rand.New(rand.NewSource(5))
		w := randWord(tc.obj, 3, 24, 0, rng)
		chk := NewIncremental(tc.obj, tc.realTime, 3)
		chk.CheckWord(w) // grow every buffer to the workload's size
		avg := testing.AllocsPerRun(64, func() {
			chk.Reset(3)
			for _, s := range w {
				chk.Append(s)
			}
			chk.OK()
		})
		if avg != 0 {
			t.Errorf("%s realTime=%v: steady-state re-check allocates %.1f/run, want 0", tc.obj.Name(), tc.realTime, avg)
		}
	}
}

// TestIncrementalMsgFamilyAllocBudget budgets the message-family shape: the
// verdict stream re-checks growing prefixes of one history through
// CheckExtending. Accepting prefixes ride the cached witness without
// allocating; past a violation, each appended invocation may lawfully
// re-search (an invocation can resurrect acceptance), boxing a few
// specification states per search — the budget caps that at roughly two
// allocations per symbol of the rejected suffix, so a regression to
// per-symbol re-checking from scratch (tens of allocations each) fails.
func TestIncrementalMsgFamilyAllocBudget(t *testing.T) {
	obj := spec.Consensus()
	rng := rand.New(rand.NewSource(9))
	w := randWord(obj, 3, 24, 0.2, rng)
	chk := NewIncremental(obj, true, 3)
	chk.CheckWord(w)
	avg := testing.AllocsPerRun(32, func() {
		chk.Reset(3)
		for k := 1; k <= len(w); k++ {
			chk.CheckExtending(w[:k])
		}
	})
	const budget = 32
	if avg > budget {
		t.Errorf("msg-family prefix sweep allocates %.1f/run, budget %d", avg, budget)
	}
}

// TestIncrementalPerGoroutineCheckers exercises checker pools under
// concurrent workers — each goroutine owns its Pool and its checkers, which
// is the contract the pooled explorer relies on; run under -race this pins
// the absence of hidden shared state (objects and specs must be stateless).
func TestIncrementalPerGoroutineCheckers(t *testing.T) {
	objs := []spec.Object{spec.Register(), spec.Queue()}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			pool := NewPool()
			for trial := 0; trial < 30; trial++ {
				pool.Reclaim()
				for _, obj := range objs {
					w := randWord(obj, 2, 4+rng.Intn(8), 0.3, rng)
					chk := pool.Get(obj, trial%2 == 0, 2)
					got := chk.CheckExtending(w)
					if want := scratchOK(obj, trial%2 == 0, w); got != want {
						t.Errorf("goroutine %d trial %d %s: pooled=%v, fresh=%v", g, trial, obj.Name(), got, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// fuzzWord decodes a byte string into a well-formed register history over 3
// processes: each byte pair picks a process and a small value; a process
// with no pending operation invokes (even value: write, odd: read), one with
// a pending operation responds (reads take the data-driven value, so the
// corpus reaches violating histories).
func fuzzWord(data []byte) word.Word {
	const n = 3
	var pend [n]bool
	var pendOp [n]string
	var w word.Word
	for i := 0; i+1 < len(data) && len(w) < 24; i += 2 {
		p := int(data[i]) % n
		v := int64(data[i+1] % 6)
		if !pend[p] {
			if v%2 == 0 {
				w = append(w, word.Symbol{Proc: p, Kind: word.Inv, Op: spec.OpWrite, Val: word.Int(v)})
				pendOp[p] = spec.OpWrite
			} else {
				w = append(w, word.Symbol{Proc: p, Kind: word.Inv, Op: spec.OpRead, Val: word.Unit{}})
				pendOp[p] = spec.OpRead
			}
			pend[p] = true
			continue
		}
		var ret word.Value
		if pendOp[p] == spec.OpWrite {
			ret = word.Unit{}
		} else {
			ret = word.Int(v)
		}
		w = append(w, word.Symbol{Proc: p, Kind: word.Res, Op: pendOp[p], Val: ret})
		pend[p] = false
	}
	return w
}

// FuzzIncrementalFrontSearch feeds fuzzer-shaped register histories through
// the incremental checker and cross-checks every prefix verdict against the
// from-scratch search, in both order modes.
func FuzzIncrementalFrontSearch(f *testing.F) {
	f.Add([]byte{0, 0, 0, 2, 1, 1, 1, 3, 0, 1, 2, 0, 0, 5})
	f.Add([]byte{1, 2, 2, 1, 1, 0, 0, 3, 2, 3, 1, 1})
	f.Add([]byte{0, 1, 1, 1, 2, 1, 0, 3, 1, 5, 2, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		w := fuzzWord(data)
		obj := spec.Register()
		for _, realTime := range []bool{true, false} {
			if at, bad := incrementalDisagrees(obj, realTime, w); bad {
				t.Fatalf("realTime=%v: incremental disagrees with from-scratch at prefix %d of\n%v",
					realTime, at, shrinkMismatch(obj, realTime, w))
			}
		}
	})
}
