package check

// Differential validation of the incremental checker: on every prefix of
// every generated history, Incremental's verdict must equal the from-scratch
// frontSearch's, and — where the workload is small enough to afford it — the
// exhaustive brute reference's. The histories span the explorer's three
// scenario families: synthetic language-family words (including truncated
// words with trailing pendings), object-family histories from the real
// implementations of package sut (including operations left pending at a
// crash), and message-family histories from the ABD emulation (including
// operations parked forever by a dropped message). A mismatch is shrunk to a
// minimal reproducing word before reporting, so a failure names the smallest
// offending history and the seed that found it.

import (
	"math/rand"
	"testing"

	"github.com/drv-go/drv/internal/msgnet"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/sut"
	"github.com/drv-go/drv/internal/word"
)

// scratchOK is the from-scratch reference the incremental checker must track
// on every prefix.
func scratchOK(obj spec.Object, realTime bool, w word.Word) bool {
	ops := word.Operations(w)
	if realTime {
		return LinearizableOps(obj, ops)
	}
	return SeqConsistentOps(obj, ops)
}

// wellFormed reports whether word.Operations accepts w.
func wellFormed(w word.Word) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	word.Operations(w)
	return true
}

// incrementalDisagrees reports whether feeding w symbol-by-symbol into a
// fresh Incremental ever disagrees with the from-scratch reference on a
// prefix, returning the length of the first disagreeing prefix.
func incrementalDisagrees(obj spec.Object, realTime bool, w word.Word) (int, bool) {
	chk := NewIncremental(obj, realTime, w.Procs())
	for i, s := range w {
		chk.Append(s)
		if chk.OK() != scratchOK(obj, realTime, w[:i+1]) {
			return i + 1, true
		}
	}
	return 0, false
}

// shrinkMismatch greedily removes symbols (keeping the word well-formed)
// while the incremental/scratch disagreement persists, returning a minimal
// reproducer.
func shrinkMismatch(obj spec.Object, realTime bool, w word.Word) word.Word {
	cur := append(word.Word(nil), w...)
	for {
		shrunk := false
		for i := 0; i < len(cur); i++ {
			cand := append(append(word.Word(nil), cur[:i]...), cur[i+1:]...)
			if !wellFormed(cand) {
				continue
			}
			if _, bad := incrementalDisagrees(obj, realTime, cand); bad {
				cur = cand
				shrunk = true
				break
			}
		}
		if !shrunk {
			return cur
		}
	}
}

// checkIncremental runs the full differential battery on one history: the
// incremental checker against from-scratch on every prefix (both order
// modes), against brute on affordable whole words, and the interleaved-query
// modes (CheckExtending, AnyPrefixViolated) against their scratch forms.
func checkIncremental(t *testing.T, obj spec.Object, w word.Word, label string) {
	t.Helper()
	if !wellFormed(w) {
		t.Fatalf("%s: generator produced a malformed word:\n%v", label, w)
	}
	for _, realTime := range []bool{true, false} {
		mode := "sc"
		if realTime {
			mode = "lin"
		}
		if at, bad := incrementalDisagrees(obj, realTime, w); bad {
			min := shrinkMismatch(obj, realTime, w)
			t.Fatalf("%s: incremental %s disagrees with from-scratch at prefix %d of\n%v\nminimal reproducer:\n%v",
				label, mode, at, w, min)
		}
		// Whole-word agreement with the exhaustive reference, where affordable.
		if ops := word.Operations(w); len(ops) <= 6 {
			chk := NewIncremental(obj, realTime, w.Procs())
			var brute bool
			if realTime {
				brute = BruteLinearizable(obj, w)
			} else {
				brute = BruteSeqConsistent(obj, w)
			}
			if got := chk.CheckWord(w); got != brute {
				t.Fatalf("%s: incremental %s=%v, brute=%v on\n%v", label, mode, got, brute, w)
			}
		}
		// AnyPrefixViolated must match the literal per-prefix loop.
		chk := NewIncremental(obj, realTime, w.Procs())
		wantAny := false
		for cut := 1; cut <= len(w); cut++ {
			if cut < len(w) && w[cut-1].Kind != word.Res {
				continue
			}
			if !scratchOK(obj, realTime, w[:cut]) {
				wantAny = true
				break
			}
		}
		if got := chk.AnyPrefixViolated(w); got != wantAny {
			t.Fatalf("%s: incremental %s AnyPrefixViolated=%v, scratch=%v on\n%v", label, mode, got, wantAny, w)
		}
	}
}

// randWord generates a well-formed history over obj: random interleaving,
// responses mostly drawn from a resolve-at-response sequential shadow (so
// most histories are linearizable) with a perturbation rate that manufactures
// violations, and a truncation that leaves trailing operations pending — the
// language family's word shapes, including truncated ones.
func randWord(obj spec.Object, n, steps int, perturb float64, rng *rand.Rand) word.Word {
	type open struct {
		op  string
		arg word.Value
	}
	pend := make([]*open, n)
	shadow := obj.Init()
	sigs := obj.Ops()
	var w word.Word
	for len(w) < steps {
		p := rng.Intn(n)
		if pend[p] == nil {
			sig := sigs[rng.Intn(len(sigs))]
			arg := obj.RandArg(sig.Name, rng)
			pend[p] = &open{op: sig.Name, arg: arg}
			w = append(w, word.Symbol{Proc: p, Kind: word.Inv, Op: sig.Name, Val: arg})
			continue
		}
		o := pend[p]
		next, ret, ok := shadow.Apply(o.op, o.arg)
		if !ok {
			pend[p] = nil
			continue
		}
		shadow = next
		if rng.Float64() < perturb {
			ret = word.Int(int64(rng.Intn(5)))
		}
		w = append(w, word.Symbol{Proc: p, Kind: word.Res, Op: o.op, Val: ret})
		pend[p] = nil
	}
	// Truncate at a random point: trailing invocations stay pending.
	if len(w) > 0 && rng.Intn(2) == 0 {
		w = w[:1+rng.Intn(len(w))]
	}
	return w
}

func TestIncrementalMatchesScratchOnRandomWords(t *testing.T) {
	objs := []spec.Object{
		spec.Register(), spec.Counter(), spec.Queue(), spec.Stack(),
		spec.Ledger(), spec.Consensus(),
	}
	for _, obj := range objs {
		obj := obj
		t.Run(obj.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 120; trial++ {
				n := 2 + rng.Intn(2)
				steps := 4 + rng.Intn(10)
				perturb := []float64{0, 0.15, 0.5}[trial%3]
				w := randWord(obj, n, steps, perturb, rng)
				checkIncremental(t, obj, w, obj.Name())
			}
		})
	}
}

func TestIncrementalMatchesScratchOnSUTHistories(t *testing.T) {
	cases := []struct {
		name string
		obj  spec.Object
		mk   func(n int) sut.Impl
	}{
		{"queue/lock", spec.Queue(), func(n int) sut.Impl { return sut.NewLockQueue() }},
		{"queue/lifo", spec.Queue(), func(n int) sut.Impl { return sut.NewLIFOQueue() }},
		{"stack/fifo", spec.Stack(), func(n int) sut.Impl { return sut.NewFIFOStack() }},
		{"register/atomic", spec.Register(), func(n int) sut.Impl { return sut.NewAtomicRegister() }},
		{"register/stale", spec.Register(), func(n int) sut.Impl { return sut.NewStaleRegister(n, 2) }},
	}
	const n, opsPerProc = 2, 3
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 10; seed++ {
				// Crash-free, then crashing process 1 mid-flight so its open
				// operation stays pending for the rest of the history.
				for _, crashStep := range []int{0, 9} {
					h := sutHistory(t, tc.obj, tc.mk(n), n, opsPerProc, seed, crashStep, 1)
					if len(word.Operations(h)) > 7 {
						continue
					}
					checkIncremental(t, tc.obj, h, tc.name)
				}
			}
		})
	}
}

func TestIncrementalMatchesScratchOnABDHistories(t *testing.T) {
	obj := spec.Register()
	cases := []struct {
		name      string
		drops     []int
		crashStep int
		buggy     bool
	}{
		{name: "clean"},
		{name: "dropped", drops: []int{0, 2, 4, 7}},
		{name: "crash", crashStep: 25},
		{name: "crash+dropped", drops: []int{1, 3, 5}, crashStep: 40},
	}
	const n, opsPerProc = 3, 2
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				h := abdHistory(t, n, opsPerProc, seed, 0.4, msgnet.RandomOrder(seed), tc.drops, tc.crashStep, 1, tc.buggy)
				if len(word.Operations(h)) > 6 {
					continue
				}
				checkIncremental(t, obj, h, tc.name)
			}
		})
	}
}
