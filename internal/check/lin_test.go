package check

import (
	"math/rand"
	"testing"

	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

func TestLinearizableRegister(t *testing.T) {
	tests := []struct {
		name string
		w    word.Word
		lin  bool
		sc   bool
	}{
		{
			name: "empty",
			w:    word.Word{},
			lin:  true, sc: true,
		},
		{
			name: "sequential write then read",
			w: word.NewB().
				Op(0, spec.OpWrite, word.Int(1), word.Unit{}).
				Op(1, spec.OpRead, word.Unit{}, word.Int(1)).Word(),
			lin: true, sc: true,
		},
		{
			name: "stale read after completed write",
			w: word.NewB().
				Op(0, spec.OpWrite, word.Int(1), word.Unit{}).
				Op(1, spec.OpRead, word.Unit{}, word.Int(0)).Word(),
			lin: false, sc: true, // SC may reorder across processes
		},
		{
			name: "overlapping write and read old value",
			w: word.NewB().
				Inv(0, spec.OpWrite, word.Int(1)).
				Inv(1, spec.OpRead, word.Unit{}).
				Res(0, spec.OpWrite, word.Unit{}).
				Res(1, spec.OpRead, word.Int(0)).Word(),
			lin: true, sc: true,
		},
		{
			name: "overlapping write and read new value",
			w: word.NewB().
				Inv(0, spec.OpWrite, word.Int(1)).
				Inv(1, spec.OpRead, word.Unit{}).
				Res(0, spec.OpWrite, word.Unit{}).
				Res(1, spec.OpRead, word.Int(1)).Word(),
			lin: true, sc: true,
		},
		{
			name: "read value never written",
			w: word.NewB().
				Op(0, spec.OpWrite, word.Int(1), word.Unit{}).
				Op(1, spec.OpRead, word.Unit{}, word.Int(9)).Word(),
			lin: false, sc: false,
		},
		{
			name: "lemma 5.1 swapped execution: read before write invoked",
			// p2 reads r=1 completely before p1 even invokes write(1).
			w: word.NewB().
				Op(1, spec.OpRead, word.Unit{}, word.Int(1)).
				Op(0, spec.OpWrite, word.Int(1), word.Unit{}).Word(),
			lin: false, sc: true,
		},
		{
			name: "pending write justifies read",
			w: word.NewB().
				Inv(0, spec.OpWrite, word.Int(4)).
				Word().Append(
				word.NewInv(1, spec.OpRead, word.Unit{}),
				word.NewRes(1, spec.OpRead, word.Int(4))),
			lin: true, sc: true,
		},
		{
			name: "new-old inversion across two readers",
			// w(1) completes; then p1 reads 1, afterwards p2 reads 0: not SC
			// for a single register? Process order allows p2's read first, so
			// SC holds; linearizability fails.
			w: word.NewB().
				Op(0, spec.OpWrite, word.Int(1), word.Unit{}).
				Op(1, spec.OpRead, word.Unit{}, word.Int(1)).
				Op(2, spec.OpRead, word.Unit{}, word.Int(0)).Word(),
			lin: false, sc: true,
		},
		{
			name: "same process cannot unread its own write",
			// p0 writes 1 then reads 0: violates process order, so not SC.
			w: word.NewB().
				Op(0, spec.OpWrite, word.Int(1), word.Unit{}).
				Op(0, spec.OpRead, word.Unit{}, word.Int(0)).Word(),
			lin: false, sc: false,
		},
	}
	reg := spec.Register()
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Linearizable(reg, tt.w); got != tt.lin {
				t.Errorf("Linearizable = %v, want %v", got, tt.lin)
			}
			if got := SeqConsistent(reg, tt.w); got != tt.sc {
				t.Errorf("SeqConsistent = %v, want %v", got, tt.sc)
			}
		})
	}
}

func TestLinearizableQueue(t *testing.T) {
	q := spec.Queue()
	// Herlihy–Wing style: two concurrent enqueues, then dequeues see a
	// consistent FIFO order.
	ok := word.NewB().
		Inv(0, spec.OpEnq, word.Int(1)).
		Inv(1, spec.OpEnq, word.Int(2)).
		Res(1, spec.OpEnq, word.Unit{}).
		Res(0, spec.OpEnq, word.Unit{}).
		Op(0, spec.OpDeq, word.Unit{}, word.Int(2)).
		Op(1, spec.OpDeq, word.Unit{}, word.Int(1)).Word()
	if !Linearizable(q, ok) {
		t.Error("concurrent enqueues: either dequeue order should linearize")
	}
	// Dequeue returns an element enqueued strictly later: impossible.
	bad := word.NewB().
		Op(0, spec.OpDeq, word.Unit{}, word.Int(5)).
		Op(1, spec.OpEnq, word.Int(5), word.Unit{}).Word()
	if Linearizable(q, bad) {
		t.Error("deq before matching enq must not linearize")
	}
	if !SeqConsistent(q, bad) {
		t.Error("deq before enq is SC: processes may be reordered")
	}
	// FIFO violation visible to one process: enq 1,2 by p0; p0 deqs 2 first.
	fifoBad := word.NewB().
		Op(0, spec.OpEnq, word.Int(1), word.Unit{}).
		Op(0, spec.OpEnq, word.Int(2), word.Unit{}).
		Op(0, spec.OpDeq, word.Unit{}, word.Int(2)).Word()
	if SeqConsistent(q, fifoBad) {
		t.Error("single-process FIFO violation must not be SC")
	}
}

func TestLinearizableLedger(t *testing.T) {
	l := spec.Ledger()
	ok := word.NewB().
		Op(0, spec.OpAppend, word.Rec("a"), word.Unit{}).
		Op(1, spec.OpGet, word.Unit{}, word.Seq{"a"}).
		Op(1, spec.OpAppend, word.Rec("b"), word.Unit{}).
		Op(0, spec.OpGet, word.Unit{}, word.Seq{"a", "b"}).Word()
	if !Linearizable(l, ok) {
		t.Error("sequential ledger history should linearize")
	}
	// Get misses a completed append.
	bad := word.NewB().
		Op(0, spec.OpAppend, word.Rec("a"), word.Unit{}).
		Op(1, spec.OpGet, word.Unit{}, word.Seq{}).Word()
	if Linearizable(l, bad) {
		t.Error("get missing completed append must not linearize")
	}
	if !SeqConsistent(l, bad) {
		t.Error("get-before-append reordering is SC")
	}
}

func TestCrossValidateWithBrute(t *testing.T) {
	// The memoized search must agree with the exhaustive reference on random
	// small histories for every object.
	objects := []spec.Object{spec.Register(), spec.Counter(), spec.Queue(), spec.Stack()}
	rng := rand.New(rand.NewSource(2025))
	for _, obj := range objects {
		for trial := 0; trial < 120; trial++ {
			w := randomHistory(rng, obj, 7, 3)
			gotLin := Linearizable(obj, w)
			wantLin := BruteLinearizable(obj, w)
			if gotLin != wantLin {
				t.Fatalf("%s: Linearizable=%v brute=%v on %v", obj.Name(), gotLin, wantLin, w)
			}
			gotSC := SeqConsistent(obj, w)
			wantSC := BruteSeqConsistent(obj, w)
			if gotSC != wantSC {
				t.Fatalf("%s: SeqConsistent=%v brute=%v on %v", obj.Name(), gotSC, wantSC, w)
			}
			if gotLin && !gotSC {
				t.Fatalf("%s: linearizable but not SC on %v", obj.Name(), w)
			}
		}
	}
}

func TestLinearizablePrefixClosed(t *testing.T) {
	// Linearizability is prefix-closed on complete-operation boundaries: if a
	// word is linearizable, so is every prefix (Section 6.2 uses this to
	// justify that a non-linearizable prefix can never be fixed).
	rng := rand.New(rand.NewSource(7))
	reg := spec.Register()
	for trial := 0; trial < 60; trial++ {
		w := randomHistory(rng, reg, 8, 3)
		if !Linearizable(reg, w) {
			continue
		}
		for cut := 0; cut <= len(w); cut++ {
			if !Linearizable(reg, w[:cut]) {
				t.Fatalf("prefix %v of linearizable %v not linearizable", w[:cut], w)
			}
		}
	}
}

// randomHistory generates a random well-formed concurrent history of the
// object where responses are drawn from plausible values (not necessarily
// consistent ones, so both accepting and rejecting cases occur).
func randomHistory(rng *rand.Rand, obj spec.Object, symbols, n int) word.Word {
	var w word.Word
	sigs := obj.Ops()
	pendingOp := make([]string, n)
	for len(w) < symbols {
		p := rng.Intn(n)
		if pendingOp[p] == "" {
			sig := sigs[rng.Intn(len(sigs))]
			w = append(w, word.NewInv(p, sig.Name, randomArg(rng, sig.Name)))
			pendingOp[p] = sig.Name
		} else {
			w = append(w, word.NewRes(p, pendingOp[p], randomRet(rng, pendingOp[p])))
			pendingOp[p] = ""
		}
	}
	return w
}

// randomArg draws arguments from a small domain so that random histories mix
// consistent and inconsistent cases.
func randomArg(rng *rand.Rand, op string) word.Value {
	switch op {
	case spec.OpWrite, spec.OpEnq, spec.OpPush:
		return word.Int(rng.Intn(3))
	case spec.OpAppend:
		return word.Rec([]string{"a", "b", "c"}[rng.Intn(3)])
	default:
		return word.Unit{}
	}
}

func randomRet(rng *rand.Rand, op string) word.Value {
	switch op {
	case spec.OpWrite, spec.OpInc, spec.OpAppend, spec.OpEnq, spec.OpPush:
		return word.Unit{}
	case spec.OpRead:
		return word.Int(rng.Intn(4))
	case spec.OpDeq, spec.OpPop:
		return word.Int(rng.Intn(4)*2 - 1) // includes Empty (-1)
	case spec.OpGet:
		n := rng.Intn(3)
		s := make(word.Seq, n)
		for i := range s {
			s[i] = word.Rec([]string{"a", "b", "c"}[rng.Intn(3)])
		}
		return s
	default:
		return word.Unit{}
	}
}

func TestLinearizableTrickyHistories(t *testing.T) {
	// The explorer uses this checker as its differential oracle, so the
	// known-tricky corners need direct coverage: operations left pending by
	// crashes, response/invocation mismatches, and reads racing writes.
	reg := spec.Register()
	ctr := spec.Counter()
	led := spec.Ledger()
	tests := []struct {
		name string
		obj  spec.Object
		w    word.Word
		lin  bool
		sc   bool
	}{
		{
			name: "two writers crash mid-operation, read may see either",
			obj:  reg,
			// p0 and p1 both have pending writes (crashed before the
			// response); p2's read of 2 is justified by completing p1's.
			w: word.NewB().
				Inv(0, spec.OpWrite, word.Int(1)).
				Inv(1, spec.OpWrite, word.Int(2)).
				Op(2, spec.OpRead, word.Unit{}, word.Int(2)).Word(),
			lin: true, sc: true,
		},
		{
			name: "crashed write cannot justify a third value",
			obj:  reg,
			w: word.NewB().
				Inv(0, spec.OpWrite, word.Int(1)).
				Op(2, spec.OpRead, word.Unit{}, word.Int(7)).Word(),
			lin: false, sc: false,
		},
		{
			name: "pending write taken then dropped: two reads disagree",
			obj:  reg,
			// The read of 1 requires linearizing the pending write; the
			// later read of 0 then regresses for the same reader — the
			// pending operation cannot be both taken and not taken.
			w: word.NewB().
				Inv(0, spec.OpWrite, word.Int(1)).
				Op(1, spec.OpRead, word.Unit{}, word.Int(1)).
				Op(1, spec.OpRead, word.Unit{}, word.Int(0)).Word(),
			lin: false, sc: false,
		},
		{
			name: "read racing two overlapping writes may see the later one",
			obj:  reg,
			w: word.NewB().
				Inv(0, spec.OpWrite, word.Int(1)).
				Inv(1, spec.OpWrite, word.Int(2)).
				Inv(2, spec.OpRead, word.Unit{}).
				Res(0, spec.OpWrite, word.Unit{}).
				Res(1, spec.OpWrite, word.Unit{}).
				Res(2, spec.OpRead, word.Int(1)).Word(),
			lin: true, sc: true,
		},
		{
			name: "write completed before read invoked is not overtakable",
			obj:  reg,
			// w(1) ≺ w(2) ≺ read: the read must see 2 under
			// linearizability but SC may reorder the second write after it.
			w: word.NewB().
				Op(0, spec.OpWrite, word.Int(1), word.Unit{}).
				Op(0, spec.OpWrite, word.Int(2), word.Unit{}).
				Op(1, spec.OpRead, word.Unit{}, word.Int(1)).Word(),
			lin: false, sc: true,
		},
		{
			name: "counter read may include a crashed pending inc",
			obj:  ctr,
			w: word.NewB().
				Op(0, spec.OpInc, word.Unit{}, word.Unit{}).
				Inv(1, spec.OpInc, word.Unit{}).
				Op(2, spec.OpRead, word.Unit{}, word.Int(2)).Word(),
			lin: true, sc: true,
		},
		{
			name: "counter read cannot exceed completed plus pending incs",
			obj:  ctr,
			w: word.NewB().
				Op(0, spec.OpInc, word.Unit{}, word.Unit{}).
				Inv(1, spec.OpInc, word.Unit{}).
				Op(2, spec.OpRead, word.Unit{}, word.Int(3)).Word(),
			lin: false, sc: false,
		},
		{
			name: "ledger get sees crashed pending append",
			obj:  led,
			w: word.NewB().
				Inv(0, spec.OpAppend, word.Rec("a")).
				Op(1, spec.OpGet, word.Unit{}, word.Seq{"a"}).Word(),
			lin: true, sc: true,
		},
		{
			name: "ledger gets must agree on one order of concurrent appends",
			obj:  led,
			// Both appends overlap, but the two gets return incomparable
			// orders — no single witness sequence exists.
			w: word.NewB().
				Inv(0, spec.OpAppend, word.Rec("a")).
				Inv(1, spec.OpAppend, word.Rec("b")).
				Res(0, spec.OpAppend, word.Unit{}).
				Res(1, spec.OpAppend, word.Unit{}).
				Op(2, spec.OpGet, word.Unit{}, word.Seq{"a", "b"}).
				Op(2, spec.OpGet, word.Unit{}, word.Seq{"b", "a"}).Word(),
			lin: false, sc: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Linearizable(tt.obj, tt.w); got != tt.lin {
				t.Errorf("Linearizable = %v, want %v", got, tt.lin)
			}
			if got := SeqConsistent(tt.obj, tt.w); got != tt.sc {
				t.Errorf("SeqConsistent = %v, want %v", got, tt.sc)
			}
		})
	}
}

func TestIllFormedHistoriesRejectedUpstream(t *testing.T) {
	// Duplicate responses and responses without invocations are not
	// consistency violations but well-formedness ones: the checkers assume
	// WellFormed input (Operations panics otherwise), and the explorer's
	// wellformed check screens histories before this oracle ever runs.
	// Pin the division of labour.
	cases := []struct {
		name string
		w    word.Word
	}{
		{
			name: "duplicate response",
			w: word.NewB().
				Inv(0, spec.OpWrite, word.Int(1)).
				Res(0, spec.OpWrite, word.Unit{}).
				Res(0, spec.OpWrite, word.Unit{}).Word(),
		},
		{
			name: "response with no invocation",
			w:    word.NewB().Res(1, spec.OpRead, word.Int(0)).Word(),
		},
		{
			name: "response names a different operation",
			w: word.NewB().
				Inv(0, spec.OpWrite, word.Int(1)).
				Res(0, spec.OpRead, word.Int(1)).Word(),
		},
		{
			name: "second invocation while pending",
			w: word.NewB().
				Inv(0, spec.OpWrite, word.Int(1)).
				Inv(0, spec.OpWrite, word.Int(2)).Word(),
		},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if err := word.WellFormed(tt.w); err == nil {
				t.Fatalf("WellFormed accepted %v", tt.w)
			}
		})
	}
}
