package sketch

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/word"
)

// triple builds a test triple for process proc, operation idx, with the
// given per-process announce counts as its view.
func triple(proc, idx int, op string, counts ...int) Triple {
	return Triple{
		ID:   word.OpID{Proc: proc, Idx: idx},
		Inv:  word.NewInv(proc, op, nil),
		Res:  word.NewRes(proc, op, word.Unit{}),
		View: adversary.NewView(counts),
	}
}

// resolver returns invocation symbols for any identifier.
func resolver(id word.OpID) word.Symbol {
	return word.NewInv(id.Proc, "op", nil)
}

func TestBuildEmpty(t *testing.T) {
	w, err := Build(2, nil, resolver)
	if err != nil || len(w) != 0 {
		t.Errorf("empty build: %v, %v", w, err)
	}
}

func TestBuildSequential(t *testing.T) {
	// Two ops with strictly growing views: full precedence.
	trs := []Triple{
		triple(0, 0, "op", 1, 0),
		triple(1, 0, "op", 1, 1),
	}
	w, err := Build(2, trs, resolver)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: <0 >0 <1 >1.
	if len(w) != 4 {
		t.Fatalf("built word has %d symbols, want 4: %v", len(w), w)
	}
	ops := word.Operations(w)
	if len(ops) != 2 {
		t.Fatalf("built word has %d operations", len(ops))
	}
	if !ops[0].Precedes(ops[1]) {
		t.Error("smaller view's operation should precede")
	}
}

func TestBuildSameViewConcurrent(t *testing.T) {
	// Two ops with the same view: both invocations before both responses.
	trs := []Triple{
		triple(0, 0, "op", 1, 1),
		triple(1, 0, "op", 1, 1),
	}
	w, err := Build(2, trs, resolver)
	if err != nil {
		t.Fatal(err)
	}
	ops := word.Operations(w)
	if len(ops) != 2 {
		t.Fatalf("%d operations", len(ops))
	}
	if !ops[0].ConcurrentWith(ops[1]) {
		t.Errorf("same-view operations should be concurrent: %v", w)
	}
}

func TestBuildPendingInvocations(t *testing.T) {
	// A view containing an invocation with no published triple yields a
	// pending operation.
	trs := []Triple{
		triple(1, 0, "op", 1, 1), // sees p0's announce, p0's op unfinished
	}
	w, err := Build(2, trs, resolver)
	if err != nil {
		t.Fatal(err)
	}
	pend := word.PendingOps(w)
	if len(pend) != 1 || pend[0].ID.Proc != 0 {
		t.Errorf("expected p0's operation pending, got %v (word %v)", pend, w)
	}
}

func TestBuildRejectsViewMissingOwnInvocation(t *testing.T) {
	trs := []Triple{triple(0, 0, "op", 0, 1)} // view says p0 announced nothing
	if _, err := Build(2, trs, resolver); err == nil {
		t.Error("expected rejection of a view missing its own invocation")
	}
}

func TestBuildRejectsIncomparableViews(t *testing.T) {
	trs := []Triple{
		triple(0, 0, "op", 1, 0),
		triple(1, 0, "op", 0, 1), // incomparable with the first
	}
	_, err := Build(2, trs, resolver)
	if err == nil {
		t.Fatal("expected incomparable-view error")
	}
	if !strings.Contains(err.Error(), ErrIncomparableViews.Error()) {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestTheorem61PrecedencePreservation is the property test for Theorem
// 6.1(1): operations ordered in the input stay ordered in the sketch. The
// input here is the view structure itself — precedence in x(E) implies the
// earlier operation's view is contained in every view snapshotted after it,
// in particular the later operation's.
func TestTheorem61PrecedencePreservation(t *testing.T) {
	f := func(seedRaw uint32) bool {
		seed := int64(seedRaw)
		// Build a chain of k sequential operations across 3 processes with
		// strictly growing views, interleaved with some same-view pairs.
		k := int(seed%5) + 2
		counts := []int{0, 0, 0}
		var trs []Triple
		idx := []int{0, 0, 0}
		for i := 0; i < k; i++ {
			p := int((seed >> (i % 8)) % 3)
			counts[p]++
			trs = append(trs, triple(p, idx[p], "op", counts[0], counts[1], counts[2]))
			idx[p]++
		}
		w, err := Build(3, trs, resolver)
		if err != nil {
			return false
		}
		ops := word.Operations(w)
		// The triples were created in strictly growing view order, so each
		// complete operation must precede or be concurrent with later ones —
		// never follow them.
		for i := 0; i < len(ops); i++ {
			for j := i + 1; j < len(ops); j++ {
				if ops[j].Precedes(ops[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRenderTimeline(t *testing.T) {
	b := word.NewB()
	b.Op(0, "write", word.Int(1), word.Unit{})
	b.Op(1, "read", nil, word.Int(1))
	out := RenderTimeline(b.Word())
	if !strings.Contains(out, "p0") || !strings.Contains(out, "p1") {
		t.Errorf("timeline missing process rows:\n%s", out)
	}
	if !strings.Contains(out, "[") || !strings.Contains(out, "]") {
		t.Errorf("timeline missing interval brackets:\n%s", out)
	}
	// Valid UTF-8 with no replacement characters (regression for the
	// byte-indexed render bug).
	if strings.ContainsRune(out, '�') {
		t.Errorf("timeline contains replacement characters:\n%s", out)
	}
}

func TestRenderComparison(t *testing.T) {
	b := word.NewB()
	b.Op(0, "write", word.Int(1), word.Unit{})
	w := b.Word()
	out := RenderComparison(w, w)
	if !strings.Contains(out, "x(E)") || !strings.Contains(out, "x~(E)") {
		t.Errorf("comparison missing headings:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := RenderTimeline(nil); !strings.Contains(out, "empty") {
		t.Errorf("empty render: %q", out)
	}
}
