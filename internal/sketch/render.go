package sketch

import (
	"fmt"
	"strings"

	"github.com/drv-go/drv/internal/word"
)

// RenderTimeline draws a word as per-process interval diagrams in the style
// of Figure 7: one row per process, each operation spanning its invocation
// and response positions, with a legend listing the operations.
func RenderTimeline(w word.Word) string {
	n := w.Procs()
	if n == 0 {
		return "(empty history)\n"
	}
	width := len(w)
	rows := make([][]rune, n)
	for i := range rows {
		rows[i] = []rune(strings.Repeat("·", width))
	}
	ops := word.Operations(w)
	for _, o := range ops {
		row := rows[o.ID.Proc]
		end := o.Res
		pending := o.Pending()
		if pending {
			end = width - 1
		}
		for c := o.Inv; c <= end && c < width; c++ {
			row[c] = '='
		}
		row[o.Inv] = '['
		if !pending {
			row[o.Res] = ']'
		}
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "p%d %s\n", i, string(rows[i]))
	}
	b.WriteString("ops:\n")
	for _, o := range ops {
		fmt.Fprintf(&b, "  %s\n", o)
	}
	return b.String()
}

// RenderComparison draws an execution's input word x(E) above its sketch
// x~(E), making the "shrinking" of operations visible — the exact content of
// Figure 7.
func RenderComparison(input, sk word.Word) string {
	var b strings.Builder
	b.WriteString("x(E)  — input word as emitted by Aτ:\n")
	b.WriteString(RenderTimeline(input))
	b.WriteString("\nx~(E) — sketch reconstructed from views (operations may shrink):\n")
	b.WriteString(RenderTimeline(sk))
	return b.String()
}
