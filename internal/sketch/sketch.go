// Package sketch implements the construction of Appendix B: from the views a
// timed adversary Aτ attaches to responses, build the history x~(E) — the
// sketch of the execution's input word in which operations may "shrink"
// (Figure 7). Theorem 6.1 gives the two properties monitors rely on:
// precedence in x(E) is preserved in x~(E), and x~(E) is the input of an
// execution indistinguishable from E.
package sketch

import (
	"cmp"
	"errors"
	"fmt"
	"slices"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/word"
)

// ErrIncomparableViews is returned when the collected views do not form a
// containment chain. Atomic-snapshot timed adversaries never trigger it;
// collect-based ones can (the complication addressed in [41]).
var ErrIncomparableViews = errors.New("sketch: views are not totally ordered by containment")

// Triple is one observed interaction with Aτ: the invocation a process sent,
// the identifier Aτ assigned, the response, and the view attached to it.
// Triples are what Figure 8's monitor stores in its shared array M.
type Triple struct {
	ID   word.OpID
	Inv  word.Symbol
	Res  word.Symbol
	View adversary.View
}

// Resolver maps announced invocation identifiers to their symbols. Views may
// contain invocations of operations whose responses the collector never saw;
// the resolver (backed by Aτ's announcement log) supplies their symbols.
type Resolver func(word.OpID) word.Symbol

// Build constructs the sketch history from the triples, per Appendix B:
// distinct views are sorted in ascending containment order; for each view in
// turn, first the invocations in its difference with the previous view are
// appended, then the responses of all operations carrying exactly that view.
// Within a batch, symbols are appended in operation-identifier order — one
// canonical representative of the construction's equivalence class (any
// batch order yields the same precedence relations).
func Build(n int, triples []Triple, resolve Resolver) (word.Word, error) {
	if len(triples) == 0 {
		return nil, nil
	}
	// Distinct views, deduplicated by canonical key.
	distinct := map[string]adversary.View{}
	byKey := map[string][]Triple{}
	for _, tr := range triples {
		if !tr.View.Contains(tr.ID) {
			return nil, fmt.Errorf("sketch: triple %v has view %v missing its own invocation", tr.ID, tr.View)
		}
		k := tr.View.Key()
		distinct[k] = tr.View
		byKey[k] = append(byKey[k], tr)
	}
	views := make([]adversary.View, 0, len(distinct))
	for _, v := range distinct {
		views = append(views, v)
	}
	slices.SortFunc(views, func(a, b adversary.View) int { return cmp.Compare(a.Total(), b.Total()) })
	for i := 1; i < len(views); i++ {
		if !views[i-1].Leq(views[i]) {
			return nil, fmt.Errorf("%w: %v vs %v", ErrIncomparableViews, views[i-1], views[i])
		}
	}

	out := make(word.Word, 0, 2*len(triples))
	var fresh []word.OpID
	prev := adversary.NewView(make([]int, n))
	for _, v := range views {
		// Step 1: invocations newly visible in this view.
		fresh = fresh[:0]
		v.Diff(prev, func(id word.OpID) { fresh = append(fresh, id) })
		slices.SortFunc(fresh, compareOpIDs)
		for _, id := range fresh {
			out = append(out, resolve(id))
		}
		// Step 2: responses of the operations carrying exactly this view.
		batch := byKey[v.Key()]
		slices.SortFunc(batch, func(a, b Triple) int { return compareOpIDs(a.ID, b.ID) })
		for _, tr := range batch {
			out = append(out, tr.Res)
		}
		prev = v
	}
	return out, nil
}

// compareOpIDs orders identifiers by process then per-process index — the
// canonical batch order of the construction.
func compareOpIDs(a, b word.OpID) int {
	if a.Proc != b.Proc {
		return cmp.Compare(a.Proc, b.Proc)
	}
	return cmp.Compare(a.Idx, b.Idx)
}
