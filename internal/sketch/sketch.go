// Package sketch implements the construction of Appendix B: from the views a
// timed adversary Aτ attaches to responses, build the history x~(E) — the
// sketch of the execution's input word in which operations may "shrink"
// (Figure 7). Theorem 6.1 gives the two properties monitors rely on:
// precedence in x(E) is preserved in x~(E), and x~(E) is the input of an
// execution indistinguishable from E.
package sketch

import (
	"errors"
	"fmt"
	"sort"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/word"
)

// ErrIncomparableViews is returned when the collected views do not form a
// containment chain. Atomic-snapshot timed adversaries never trigger it;
// collect-based ones can (the complication addressed in [41]).
var ErrIncomparableViews = errors.New("sketch: views are not totally ordered by containment")

// Triple is one observed interaction with Aτ: the invocation a process sent,
// the identifier Aτ assigned, the response, and the view attached to it.
// Triples are what Figure 8's monitor stores in its shared array M.
type Triple struct {
	ID   word.OpID
	Inv  word.Symbol
	Res  word.Symbol
	View adversary.View
}

// Resolver maps announced invocation identifiers to their symbols. Views may
// contain invocations of operations whose responses the collector never saw;
// the resolver (backed by Aτ's announcement log) supplies their symbols.
type Resolver func(word.OpID) word.Symbol

// Build constructs the sketch history from the triples, per Appendix B:
// distinct views are sorted in ascending containment order; for each view in
// turn, first the invocations in its difference with the previous view are
// appended, then the responses of all operations carrying exactly that view.
// Within a batch, symbols are appended in operation-identifier order — one
// canonical representative of the construction's equivalence class (any
// batch order yields the same precedence relations).
func Build(n int, triples []Triple, resolve Resolver) (word.Word, error) {
	if len(triples) == 0 {
		return nil, nil
	}
	// Distinct views, deduplicated by canonical key.
	distinct := map[string]adversary.View{}
	byKey := map[string][]Triple{}
	for _, tr := range triples {
		if !tr.View.Contains(tr.ID) {
			return nil, fmt.Errorf("sketch: triple %v has view %v missing its own invocation", tr.ID, tr.View)
		}
		k := tr.View.Key()
		distinct[k] = tr.View
		byKey[k] = append(byKey[k], tr)
	}
	views := make([]adversary.View, 0, len(distinct))
	for _, v := range distinct {
		views = append(views, v)
	}
	sort.Slice(views, func(i, j int) bool { return views[i].Total() < views[j].Total() })
	for i := 1; i < len(views); i++ {
		if !views[i-1].Leq(views[i]) {
			return nil, fmt.Errorf("%w: %v vs %v", ErrIncomparableViews, views[i-1], views[i])
		}
	}

	var out word.Word
	prev := adversary.NewView(make([]int, n))
	for _, v := range views {
		// Step 1: invocations newly visible in this view.
		var fresh []word.OpID
		v.Diff(prev, func(id word.OpID) { fresh = append(fresh, id) })
		sort.Slice(fresh, func(i, j int) bool {
			if fresh[i].Proc != fresh[j].Proc {
				return fresh[i].Proc < fresh[j].Proc
			}
			return fresh[i].Idx < fresh[j].Idx
		})
		for _, id := range fresh {
			out = append(out, resolve(id))
		}
		// Step 2: responses of the operations carrying exactly this view.
		batch := byKey[v.Key()]
		sort.Slice(batch, func(i, j int) bool {
			if batch[i].ID.Proc != batch[j].ID.Proc {
				return batch[i].ID.Proc < batch[j].ID.Proc
			}
			return batch[i].ID.Idx < batch[j].ID.Idx
		})
		for _, tr := range batch {
			out = append(out, tr.Res)
		}
		prev = v
	}
	return out, nil
}
