// Package sketch implements the construction of Appendix B: from the views a
// timed adversary Aτ attaches to responses, build the history x~(E) — the
// sketch of the execution's input word in which operations may "shrink"
// (Figure 7). Theorem 6.1 gives the two properties monitors rely on:
// precedence in x(E) is preserved in x~(E), and x~(E) is the input of an
// execution indistinguishable from E.
//
// The construction is re-homed in the exported exp/trace package (as
// BuildSketch/SketchBuilder) and aliased here; the timeline renderers stay
// internal.
package sketch

import (
	"github.com/drv-go/drv/exp/trace"
)

// ErrIncomparableViews reports views not totally ordered by containment.
var ErrIncomparableViews = trace.ErrIncomparableViews

// Triple is one process's record of a completed operation: the operation
// identifier, its invocation and response symbols, and the view attached to
// the response.
type Triple = trace.Triple

// Resolver recovers the invocation symbol of an operation identifier.
type Resolver = trace.Resolver

// Build constructs the sketch x~(E) from the triples of a run against a
// timed adversary.
var Build = trace.BuildSketch

// Builder amortizes Build's allocations across repeated constructions.
type Builder = trace.SketchBuilder
