// Package sched provides the asynchronous computation model of Section 3 as
// an executable substrate: n crash-prone processes, each a goroutine, run
// under a cooperative scheduler that grants one atomic step at a time. There
// is no bound on the number of steps of other processes between consecutive
// steps of the same process — the scheduling Policy is the adversary's
// control over asynchrony. Because exactly one goroutine runs at any moment
// and policies are deterministic (seeded), every execution is replayable,
// which is what makes the paper's indistinguishability arguments (E ≡ F)
// checkable in code.
//
// Processes park between steps; shared-memory operations (package mem) call
// Proc.Pause once per atomic action. A process can also park on a condition
// gate (Proc.Await) — used to wait for the adversary to deliver a response —
// and is not runnable until the gate opens. Crashing a process simply stops
// scheduling it, which is exactly the crash model of the paper.
//
// Runtimes are poolable: Reset rewinds a runtime for a fresh execution while
// reusing its Proc structs, parked process goroutines, and runnable scratch
// buffer, so workloads that run thousands of short executions (the scenario
// explorer, the Table 1 sweeps) pay goroutine spawn/teardown once per worker
// instead of once per execution, and the steady-state step loop allocates
// nothing.
package sched

import (
	"errors"
	"fmt"
	"sync"
)

// errStopped is the sentinel panic value used to unwind process goroutines
// when the runtime halts an execution; it never escapes the package.
var errStopped = errors.New("sched: runtime stopped")

type procState uint8

const (
	stateReady procState = iota + 1
	stateGated
	stateCrashed
	stateExited
)

// Proc is the handle a process body uses to interact with the scheduler.
// All methods must be called only from the process's own goroutine.
type Proc struct {
	// ID is the process index, 0 ≤ ID < n.
	ID int

	rt      *Runtime
	grant   chan struct{}
	done    chan struct{}
	state   procState
	gate    func() bool
	steps   int
	spawned bool
	body    func(p *Proc)
	live    bool // worker goroutine started (parked at <-grant between runs)
}

// Pause yields control and blocks until the scheduler grants the process its
// next step. Every atomic action (a shared-memory operation, an interaction
// with the adversary) performs exactly one Pause; purely local computation
// between pauses is free, matching the model where local steps are absorbed
// into the surrounding shared-memory step.
func (p *Proc) Pause() {
	p.done <- struct{}{}
	<-p.grant
	p.checkStopped()
	p.steps++
}

// Await parks the process until cond reports true, then consumes one step.
// The condition is evaluated by the scheduler between steps, so it must only
// read state that is written by other actors' steps.
func (p *Proc) Await(cond func() bool) {
	p.state = stateGated
	p.gate = cond
	p.done <- struct{}{}
	<-p.grant
	p.gate = nil
	p.state = stateReady
	p.checkStopped()
	p.steps++
}

// Steps returns the number of steps the process has taken.
func (p *Proc) Steps() int { return p.steps }

func (p *Proc) checkStopped() {
	if p.rt.stopped {
		panic(errStopped)
	}
}

// loop is the persistent worker: it parks between executions at <-p.grant,
// runs the spawned body when granted its first step, signals exit, and parks
// again until the next Reset/Spawn cycle — or returns for good once the
// runtime is killed by Stop.
func (p *Proc) loop() {
	defer p.rt.wg.Done()
	for {
		<-p.grant
		if p.rt.killed {
			return
		}
		p.runBody()
		p.state = stateExited
		p.done <- struct{}{}
	}
}

// runBody executes the body of one spawn, absorbing the errStopped unwind.
func (p *Proc) runBody() {
	defer func() {
		if r := recover(); r != nil && r != errStopped {
			panic(r)
		}
	}()
	p.checkStopped()
	p.steps++
	p.body(p)
}

// Policy chooses the next actor to schedule among the runnable ones. IDs
// 0..n−1 are processes; IDs ≥ n are auxiliary actors in registration order.
// runnable is sorted ascending and non-empty; implementations must return one
// of its elements.
type Policy interface {
	Next(runnable []int, step int) int
}

// Runtime hosts the processes and auxiliary actors of one execution. A
// runtime can be reused for many executions via Reset; Stop tears it down for
// good.
type Runtime struct {
	n       int
	procs   []*Proc
	aux     []auxActor
	policy  Policy
	scratch []int // runnable-ID buffer reused across Steps
	steps   int
	stopped bool // current execution halted; bodies unwind at next grant
	killed  bool // runtime dead for good; workers exit at next grant
	started bool
	wg      sync.WaitGroup
}

type auxActor struct {
	name     string
	runnable func() bool
	step     func()
}

// New creates a runtime for n processes scheduled by the policy.
func New(n int, policy Policy) *Runtime {
	rt := &Runtime{}
	rt.Reset(n, policy)
	return rt
}

// Reset rewinds the runtime for a fresh execution of n processes under the
// policy: any in-flight execution is halted (its process bodies unwind and
// their goroutines park for reuse), auxiliary actors are dropped, and the
// step count rewinds to zero. Proc structs, parked goroutines and the
// runnable scratch buffer are reused, so resetting an already-grown runtime
// allocates nothing. The runtime behaves exactly like a fresh New(n, policy):
// schedules are byte-for-byte deterministic across reuse.
func (rt *Runtime) Reset(n int, policy Policy) {
	if rt.killed {
		panic("sched: Reset after Stop")
	}
	if n < 1 {
		panic("sched: need at least one process")
	}
	rt.halt()
	for len(rt.procs) < n {
		i := len(rt.procs)
		rt.procs = append(rt.procs, &Proc{
			ID:    i,
			rt:    rt,
			grant: make(chan struct{}),
			done:  make(chan struct{}),
			state: stateReady,
		})
	}
	rt.n = n
	rt.policy = policy
	rt.steps = 0
	rt.stopped = false
	rt.started = false
	rt.aux = rt.aux[:0]
	for _, p := range rt.procs[:n] {
		p.state = stateReady
		p.gate = nil
		p.steps = 0
		p.spawned = false
		p.body = nil
	}
	if cap(rt.scratch) < n {
		rt.scratch = make([]int, 0, n+4)
	}
}

// N returns the number of processes.
func (rt *Runtime) N() int { return rt.n }

// SetPolicy installs or replaces the scheduling policy. It must be called
// before the first step; New may be given a nil policy when the final policy
// depends on actor IDs assigned by AddAux.
func (rt *Runtime) SetPolicy(p Policy) {
	if rt.started {
		panic("sched: SetPolicy after Run")
	}
	rt.policy = p
}

// Steps returns the number of steps scheduled so far.
func (rt *Runtime) Steps() int { return rt.steps }

// Spawn installs the body of process id. The body starts executing at the
// process's first scheduled step. Must be called before Run/Step; each
// process can be spawned once per execution (Reset re-arms it). The worker
// goroutine is created on the process's first-ever spawn and reused by
// subsequent executions.
func (rt *Runtime) Spawn(id int, body func(p *Proc)) {
	if rt.started {
		panic("sched: Spawn after Run")
	}
	p := rt.procs[id]
	if p.spawned {
		panic(fmt.Sprintf("sched: process %d spawned twice", id))
	}
	p.spawned = true
	p.body = body
	if !p.live {
		p.live = true
		rt.wg.Add(1)
		go p.loop()
	}
}

// AddAux registers an auxiliary actor — a step function scheduled like a
// process but executed inline (the adversary's word cursor is one). Its
// actor ID is n plus the registration index, returned for use in scripted
// policies.
func (rt *Runtime) AddAux(name string, runnable func() bool, step func()) int {
	if rt.started {
		panic("sched: AddAux after Run")
	}
	rt.aux = append(rt.aux, auxActor{name: name, runnable: runnable, step: step})
	return rt.n + len(rt.aux) - 1
}

// Crash marks the process as crashed: it is never scheduled again. Its
// goroutine is reclaimed at Reset or Stop. Matches the crash-fault model
// where up to n−1 processes may stop taking steps.
func (rt *Runtime) Crash(id int) {
	if rt.procs[id].state != stateExited {
		rt.procs[id].state = stateCrashed
	}
}

// Crashed reports whether the process has been crashed.
func (rt *Runtime) Crashed(id int) bool { return rt.procs[id].state == stateCrashed }

// Exited reports whether the process's body has returned. Schedule drivers
// use it to stop directing steps at finished processes.
func (rt *Runtime) Exited(id int) bool { return rt.procs[id].state == stateExited }

func (rt *Runtime) runnableIDs(buf []int) []int {
	buf = buf[:0]
	for i, p := range rt.procs[:rt.n] {
		if !p.spawned {
			continue
		}
		switch p.state {
		case stateReady:
			buf = append(buf, i)
		case stateGated:
			if p.gate() {
				buf = append(buf, i)
			}
		}
	}
	for j := range rt.aux {
		if rt.aux[j].runnable() {
			buf = append(buf, rt.n+j)
		}
	}
	return buf
}

// Step schedules one actor step. It returns false — without scheduling —
// when no actor is runnable (the execution has stalled or completed).
func (rt *Runtime) Step() bool {
	if rt.policy == nil {
		panic("sched: no policy installed")
	}
	rt.started = true
	runnable := rt.runnableIDs(rt.scratch)
	rt.scratch = runnable
	if len(runnable) == 0 {
		return false
	}
	id := rt.policy.Next(runnable, rt.steps)
	if !contains(runnable, id) {
		panic(fmt.Sprintf("sched: policy chose non-runnable actor %d from %v", id, runnable))
	}
	rt.steps++
	if id >= rt.n {
		rt.aux[id-rt.n].step()
		return true
	}
	p := rt.procs[id]
	p.grant <- struct{}{}
	<-p.done
	return true
}

// Run schedules up to maxSteps steps and returns the number scheduled; fewer
// than maxSteps means the execution stalled (every process parked on a gate
// that never opens, crashed, or exited).
func (rt *Runtime) Run(maxSteps int) int {
	for i := 0; i < maxSteps; i++ {
		if !rt.Step() {
			return i
		}
	}
	return maxSteps
}

// halt unwinds the current execution: every spawned, non-exited process is
// granted one final step at which its body panics out (errStopped) and its
// goroutine parks, ready for the next Reset/Spawn cycle.
func (rt *Runtime) halt() {
	if rt.stopped {
		return
	}
	rt.stopped = true
	for _, p := range rt.procs {
		if !p.live || !p.spawned || p.state == stateExited {
			continue
		}
		p.grant <- struct{}{}
		<-p.done
	}
}

// Stop terminates all process goroutines and waits for them to exit. The
// runtime cannot be used (or Reset) afterwards. Safe to call multiple times.
func (rt *Runtime) Stop() {
	if rt.killed {
		return
	}
	rt.halt()
	rt.killed = true
	for _, p := range rt.procs {
		if p.live {
			p.grant <- struct{}{}
		}
	}
	rt.wg.Wait()
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
