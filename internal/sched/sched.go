// Package sched provides the asynchronous computation model of Section 3 as
// an executable substrate: n crash-prone processes, each a goroutine, run
// under a cooperative scheduler that grants one atomic step at a time. There
// is no bound on the number of steps of other processes between consecutive
// steps of the same process — the scheduling Policy is the adversary's
// control over asynchrony. Because exactly one goroutine runs at any moment
// and policies are deterministic (seeded), every execution is replayable,
// which is what makes the paper's indistinguishability arguments (E ≡ F)
// checkable in code.
//
// Processes park between steps; shared-memory operations (package mem) call
// Proc.Pause once per atomic action. A process can also park on a condition
// gate (Proc.Await) — used to wait for the adversary to deliver a response —
// and is not runnable until the gate opens. Crashing a process simply stops
// scheduling it, which is exactly the crash model of the paper.
package sched

import (
	"errors"
	"fmt"
	"sync"
)

// errStopped is the sentinel panic value used to unwind process goroutines
// when the runtime shuts down; it never escapes the package.
var errStopped = errors.New("sched: runtime stopped")

type procState uint8

const (
	stateReady procState = iota + 1
	stateGated
	stateCrashed
	stateExited
)

// Proc is the handle a process body uses to interact with the scheduler.
// All methods must be called only from the process's own goroutine.
type Proc struct {
	// ID is the process index, 0 ≤ ID < n.
	ID int

	rt      *Runtime
	grant   chan struct{}
	done    chan struct{}
	state   procState
	gate    func() bool
	steps   int
	spawned bool
}

// Pause yields control and blocks until the scheduler grants the process its
// next step. Every atomic action (a shared-memory operation, an interaction
// with the adversary) performs exactly one Pause; purely local computation
// between pauses is free, matching the model where local steps are absorbed
// into the surrounding shared-memory step.
func (p *Proc) Pause() {
	p.done <- struct{}{}
	<-p.grant
	p.checkStopped()
	p.steps++
}

// Await parks the process until cond reports true, then consumes one step.
// The condition is evaluated by the scheduler between steps, so it must only
// read state that is written by other actors' steps.
func (p *Proc) Await(cond func() bool) {
	p.state = stateGated
	p.gate = cond
	p.done <- struct{}{}
	<-p.grant
	p.gate = nil
	p.state = stateReady
	p.checkStopped()
	p.steps++
}

// Steps returns the number of steps the process has taken.
func (p *Proc) Steps() int { return p.steps }

func (p *Proc) checkStopped() {
	if p.rt.stopped {
		panic(errStopped)
	}
}

// Policy chooses the next actor to schedule among the runnable ones. IDs
// 0..n−1 are processes; IDs ≥ n are auxiliary actors in registration order.
// runnable is sorted ascending and non-empty; implementations must return one
// of its elements.
type Policy interface {
	Next(runnable []int, step int) int
}

// Runtime hosts the processes and auxiliary actors of one execution.
type Runtime struct {
	n       int
	procs   []*Proc
	aux     []auxActor
	policy  Policy
	steps   int
	stopped bool
	started bool
	wg      sync.WaitGroup
}

type auxActor struct {
	name     string
	runnable func() bool
	step     func()
}

// New creates a runtime for n processes scheduled by the policy.
func New(n int, policy Policy) *Runtime {
	if n < 1 {
		panic("sched: need at least one process")
	}
	rt := &Runtime{n: n, policy: policy}
	rt.procs = make([]*Proc, n)
	for i := range rt.procs {
		rt.procs[i] = &Proc{
			ID:    i,
			rt:    rt,
			grant: make(chan struct{}),
			done:  make(chan struct{}),
			state: stateReady,
		}
	}
	return rt
}

// N returns the number of processes.
func (rt *Runtime) N() int { return rt.n }

// SetPolicy installs or replaces the scheduling policy. It must be called
// before the first step; New may be given a nil policy when the final policy
// depends on actor IDs assigned by AddAux.
func (rt *Runtime) SetPolicy(p Policy) {
	if rt.started {
		panic("sched: SetPolicy after Run")
	}
	rt.policy = p
}

// Steps returns the number of steps scheduled so far.
func (rt *Runtime) Steps() int { return rt.steps }

// Spawn installs the body of process id. The body starts executing at the
// process's first scheduled step. Must be called before Run/Step; each
// process can be spawned once.
func (rt *Runtime) Spawn(id int, body func(p *Proc)) {
	if rt.started {
		panic("sched: Spawn after Run")
	}
	p := rt.procs[id]
	if p.spawned {
		panic(fmt.Sprintf("sched: process %d spawned twice", id))
	}
	p.spawned = true
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		defer func() {
			if r := recover(); r != nil && r != errStopped {
				panic(r)
			}
			p.state = stateExited
			p.done <- struct{}{}
		}()
		<-p.grant
		p.checkStopped()
		p.steps++
		body(p)
	}()
}

// AddAux registers an auxiliary actor — a step function scheduled like a
// process but executed inline (the adversary's word cursor is one). Its
// actor ID is n plus the registration index, returned for use in scripted
// policies.
func (rt *Runtime) AddAux(name string, runnable func() bool, step func()) int {
	if rt.started {
		panic("sched: AddAux after Run")
	}
	rt.aux = append(rt.aux, auxActor{name: name, runnable: runnable, step: step})
	return rt.n + len(rt.aux) - 1
}

// Crash marks the process as crashed: it is never scheduled again. Its
// goroutine is reclaimed at Stop. Matches the crash-fault model where up to
// n−1 processes may stop taking steps.
func (rt *Runtime) Crash(id int) {
	if rt.procs[id].state != stateExited {
		rt.procs[id].state = stateCrashed
	}
}

// Crashed reports whether the process has been crashed.
func (rt *Runtime) Crashed(id int) bool { return rt.procs[id].state == stateCrashed }

// Exited reports whether the process's body has returned. Schedule drivers
// use it to stop directing steps at finished processes.
func (rt *Runtime) Exited(id int) bool { return rt.procs[id].state == stateExited }

func (rt *Runtime) runnableIDs(buf []int) []int {
	buf = buf[:0]
	for i, p := range rt.procs {
		if !p.spawned {
			continue
		}
		switch p.state {
		case stateReady:
			buf = append(buf, i)
		case stateGated:
			if p.gate() {
				buf = append(buf, i)
			}
		}
	}
	for j, a := range rt.aux {
		if a.runnable() {
			buf = append(buf, rt.n+j)
		}
	}
	return buf
}

// Step schedules one actor step. It returns false — without scheduling —
// when no actor is runnable (the execution has stalled or completed).
func (rt *Runtime) Step() bool {
	if rt.policy == nil {
		panic("sched: no policy installed")
	}
	rt.started = true
	runnable := rt.runnableIDs(make([]int, 0, rt.n+len(rt.aux)))
	if len(runnable) == 0 {
		return false
	}
	id := rt.policy.Next(runnable, rt.steps)
	if !contains(runnable, id) {
		panic(fmt.Sprintf("sched: policy chose non-runnable actor %d from %v", id, runnable))
	}
	rt.steps++
	if id >= rt.n {
		rt.aux[id-rt.n].step()
		return true
	}
	p := rt.procs[id]
	p.grant <- struct{}{}
	<-p.done
	return true
}

// Run schedules up to maxSteps steps and returns the number scheduled; fewer
// than maxSteps means the execution stalled (every process parked on a gate
// that never opens, crashed, or exited).
func (rt *Runtime) Run(maxSteps int) int {
	for i := 0; i < maxSteps; i++ {
		if !rt.Step() {
			return i
		}
	}
	return maxSteps
}

// Stop terminates all process goroutines and waits for them to exit. The
// runtime cannot be used afterwards. Safe to call multiple times.
func (rt *Runtime) Stop() {
	if rt.stopped {
		return
	}
	rt.stopped = true
	for _, p := range rt.procs {
		if !p.spawned || p.state == stateExited {
			continue
		}
		p.grant <- struct{}{}
		<-p.done
	}
	rt.wg.Wait()
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
