package sched

import (
	"testing"
)

func TestRoundRobinRuns(t *testing.T) {
	rt := New(3, RoundRobin())
	var counts [3]int
	for i := 0; i < 3; i++ {
		i := i
		rt.Spawn(i, func(p *Proc) {
			for {
				counts[i]++
				p.Pause()
			}
		})
	}
	defer rt.Stop()
	if got := rt.Run(30); got != 30 {
		t.Fatalf("Run = %d, want 30", got)
	}
	for i, c := range counts {
		if c != 10 {
			t.Errorf("process %d took %d steps, want 10", i, c)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []int {
		rt := New(4, Random(seed))
		var order []int
		for i := 0; i < 4; i++ {
			i := i
			rt.Spawn(i, func(p *Proc) {
				for {
					order = append(order, i)
					p.Pause()
				}
			})
		}
		defer rt.Stop()
		rt.Run(50)
		return order
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at step %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules (suspicious)")
	}
}

func TestCrashStopsScheduling(t *testing.T) {
	rt := New(2, RoundRobin())
	var counts [2]int
	for i := 0; i < 2; i++ {
		i := i
		rt.Spawn(i, func(p *Proc) {
			for {
				counts[i]++
				p.Pause()
			}
		})
	}
	defer rt.Stop()
	rt.Run(10)
	rt.Crash(0)
	c0 := counts[0]
	rt.Run(10)
	if counts[0] != c0 {
		t.Errorf("crashed process took %d more steps", counts[0]-c0)
	}
	if counts[1] < 10 {
		t.Errorf("surviving process should keep running, took %d steps", counts[1])
	}
}

func TestAwaitGate(t *testing.T) {
	rt := New(2, RoundRobin())
	ready := false
	var got int
	rt.Spawn(0, func(p *Proc) {
		p.Await(func() bool { return ready })
		got = 42
	})
	rt.Spawn(1, func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Pause()
		}
		ready = true
		p.Pause()
	})
	defer rt.Stop()
	rt.Run(100)
	if got != 42 {
		t.Error("gated process never resumed after gate opened")
	}
}

func TestStallDetected(t *testing.T) {
	rt := New(1, RoundRobin())
	rt.Spawn(0, func(p *Proc) {
		p.Await(func() bool { return false })
	})
	defer rt.Stop()
	if got := rt.Run(100); got >= 100 {
		t.Errorf("Run should stall, took %d steps", got)
	}
}

func TestProcessExit(t *testing.T) {
	rt := New(2, RoundRobin())
	rt.Spawn(0, func(p *Proc) {
		p.Pause()
		// returns: process exits
	})
	count := 0
	rt.Spawn(1, func(p *Proc) {
		for {
			count++
			p.Pause()
		}
	})
	defer rt.Stop()
	rt.Run(20)
	if count < 8 {
		t.Errorf("survivor only took %d steps", count)
	}
}

func TestAuxActor(t *testing.T) {
	rt := New(1, RoundRobin())
	fired := 0
	budget := 3
	id := rt.AddAux("cursor", func() bool { return budget > 0 }, func() {
		budget--
		fired++
	})
	if id != 1 {
		t.Errorf("aux actor id = %d, want 1", id)
	}
	seen := 0
	rt.Spawn(0, func(p *Proc) {
		for {
			seen = fired
			p.Pause()
		}
	})
	defer rt.Stop()
	rt.Run(50)
	if fired != 3 {
		t.Errorf("aux fired %d times, want 3", fired)
	}
	if seen != 3 {
		t.Errorf("process observed %d aux firings", seen)
	}
}

func TestScriptPolicy(t *testing.T) {
	rt := New(2, Script([]int{0, 0, 1, 0, 1, 1}, RoundRobin()))
	var order []int
	for i := 0; i < 2; i++ {
		i := i
		rt.Spawn(i, func(p *Proc) {
			for {
				order = append(order, i)
				p.Pause()
			}
		})
	}
	defer rt.Stop()
	rt.Run(6)
	want := []int{0, 0, 1, 0, 1, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("scripted order %v, want %v", order, want)
		}
	}
}

func TestScriptPolicyPanicsOnNonRunnable(t *testing.T) {
	rt := New(2, Script([]int{1}, RoundRobin()))
	rt.Spawn(0, func(p *Proc) {
		for {
			p.Pause()
		}
	})
	// Process 1 never spawned: script entry 1 is not runnable.
	defer rt.Stop()
	defer func() {
		if recover() == nil {
			t.Error("script policy should panic on non-runnable entry")
		}
	}()
	rt.Run(1)
}

func TestPrioritize(t *testing.T) {
	rt := New(1, Prioritize(1, RoundRobin()))
	budget := 5
	rt.AddAux("hot", func() bool { return budget > 0 }, func() { budget-- })
	steps0 := 0
	rt.Spawn(0, func(p *Proc) {
		for {
			steps0++
			p.Pause()
		}
	})
	defer rt.Stop()
	rt.Run(8)
	if budget != 0 {
		t.Errorf("prioritized actor still has budget %d", budget)
	}
	if steps0 != 3 {
		t.Errorf("process took %d steps, want 3 (after aux exhausted)", steps0)
	}
}

func TestBiasedPolicyDistribution(t *testing.T) {
	rt := New(1, Biased(3, 1, 0.9))
	auxSteps, procSteps := 0, 0
	rt.AddAux("adv", func() bool { return true }, func() { auxSteps++ })
	rt.Spawn(0, func(p *Proc) {
		for {
			procSteps++
			p.Pause()
		}
	})
	defer rt.Stop()
	rt.Run(1000)
	if auxSteps < 800 {
		t.Errorf("bias 0.9 gave aux only %d/1000 steps", auxSteps)
	}
	if procSteps == 0 {
		t.Error("proc starved entirely under bias 0.9")
	}
}

func TestStopIsIdempotentAndReleasesGoroutines(t *testing.T) {
	rt := New(3, RoundRobin())
	for i := 0; i < 3; i++ {
		rt.Spawn(i, func(p *Proc) {
			for {
				p.Pause()
			}
		})
	}
	rt.Run(10)
	rt.Crash(2)
	rt.Stop()
	rt.Stop() // second call must be a no-op
}

func TestPolicyFunc(t *testing.T) {
	// PolicyFunc adapts a closure; here a worst-fit policy: always the
	// highest runnable ID.
	rt := New(2, PolicyFunc(func(runnable []int, _ int) int {
		return runnable[len(runnable)-1]
	}))
	got := []int{}
	for i := 0; i < 2; i++ {
		i := i
		rt.Spawn(i, func(p *Proc) {
			for {
				got = append(got, i)
				p.Pause()
			}
		})
	}
	defer rt.Stop()
	rt.Run(6)
	for _, id := range got {
		if id != 1 {
			t.Fatalf("highest-ID policy scheduled process %d (order %v)", id, got)
		}
	}
}

func TestBurstyPolicySticksAndIsFair(t *testing.T) {
	// Bursts: consecutive grants go to the same actor far more often than
	// uniform choice would, yet every actor still runs.
	rt := New(3, Bursty(7, 8))
	last, repeats, total := -1, 0, 0
	steps := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		rt.Spawn(i, func(p *Proc) {
			for {
				steps[i]++
				if last == i {
					repeats++
				}
				last = i
				total++
				p.Pause()
			}
		})
	}
	defer rt.Stop()
	rt.Run(3000)
	for i, s := range steps {
		if s == 0 {
			t.Errorf("process %d starved under Bursty", i)
		}
	}
	// Uniform choice over 3 runnable actors repeats ~1/3 of the time; mean-8
	// bursts must repeat far more often.
	if repeats*2 < total {
		t.Errorf("Bursty(mean 8) repeated only %d of %d grants", repeats, total)
	}
}

func TestBurstyDeterministicPerSeed(t *testing.T) {
	run := func() []int {
		rt := New(2, Bursty(42, 4))
		var order []int
		for i := 0; i < 2; i++ {
			i := i
			rt.Spawn(i, func(p *Proc) {
				for {
					order = append(order, i)
					p.Pause()
				}
			})
		}
		defer rt.Stop()
		rt.Run(200)
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different schedule lengths %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at step %d", i)
		}
	}
}
