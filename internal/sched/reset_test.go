package sched

import (
	"testing"
)

// schedTrace runs a canonical workload — three processes taking turns under a
// seeded random policy, one crashed mid-run, one parked on a gate that never
// opens — and records the grant order and per-process step counts.
type schedTrace struct {
	order  []int
	counts [3]int
	steps  int
}

// runWorkload executes the workload on rt (already Reset/New for 3 procs with
// a nil policy) and returns its trace. Process 2 gates forever after a few
// steps; process 1 is crashed at step 20.
func runWorkload(rt *Runtime, seed int64) schedTrace {
	var tr schedTrace
	rt.SetPolicy(Random(seed))
	for i := 0; i < 3; i++ {
		i := i
		switch i {
		case 2:
			rt.Spawn(i, func(p *Proc) {
				for k := 0; k < 3; k++ {
					tr.order = append(tr.order, i)
					tr.counts[i]++
					p.Pause()
				}
				p.Await(func() bool { return false }) // gated at halt
			})
		default:
			rt.Spawn(i, func(p *Proc) {
				for {
					tr.order = append(tr.order, i)
					tr.counts[i]++
					p.Pause()
				}
			})
		}
	}
	for rt.Steps() < 60 {
		if rt.Steps() == 20 {
			rt.Crash(1)
		}
		if !rt.Step() {
			break
		}
	}
	tr.steps = rt.Steps()
	return tr
}

func (a schedTrace) equal(b schedTrace) bool {
	if a.steps != b.steps || a.counts != b.counts || len(a.order) != len(b.order) {
		return false
	}
	for i := range a.order {
		if a.order[i] != b.order[i] {
			return false
		}
	}
	return true
}

// TestResetReplaysIdentically is the runtime-reuse contract: the same seed
// through a fresh runtime and through a 100×-reused one yields identical
// schedules, step counts and crash behaviour — including runs that end with
// crashed processes and processes gated at halt time.
func TestResetReplaysIdentically(t *testing.T) {
	fresh := New(3, nil)
	want := runWorkload(fresh, 7)
	fresh.Stop()
	if want.steps != 60 {
		t.Fatalf("workload stalled after %d steps", want.steps)
	}

	rt := New(3, nil)
	defer rt.Stop()
	got := runWorkload(rt, 7)
	if !got.equal(want) {
		t.Fatalf("first pooled run diverged: %+v vs %+v", got, want)
	}
	for i := 0; i < 100; i++ {
		rt.Reset(3, nil)
		got = runWorkload(rt, 7)
		if !got.equal(want) {
			t.Fatalf("reuse %d diverged: %+v vs %+v", i, got, want)
		}
	}
}

// TestResetAcrossSizes reuses one runtime for executions of different process
// counts, interleaved, each compared against a fresh runtime's trace.
func TestResetAcrossSizes(t *testing.T) {
	baseline := func(n int, seed int64) []int {
		rt := New(n, Random(seed))
		defer rt.Stop()
		var order []int
		for i := 0; i < n; i++ {
			i := i
			rt.Spawn(i, func(p *Proc) {
				for {
					order = append(order, i)
					p.Pause()
				}
			})
		}
		rt.Run(40)
		return order
	}

	rt := New(1, nil)
	defer rt.Stop()
	for _, n := range []int{4, 2, 5, 2, 4} {
		want := baseline(n, int64(n))
		rt.Reset(n, Random(int64(n)))
		var order []int
		for i := 0; i < n; i++ {
			i := i
			rt.Spawn(i, func(p *Proc) {
				for {
					order = append(order, i)
					p.Pause()
				}
			})
		}
		rt.Run(40)
		if len(order) != len(want) {
			t.Fatalf("n=%d: pooled run took %d grants, fresh %d", n, len(order), len(want))
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("n=%d: schedules diverge at %d", n, i)
			}
		}
	}
}

// TestResetReusesProcsAndAux verifies Reset rewinds counters and re-arms
// spawning, and that aux IDs restart at n.
func TestResetReusesProcsAndAux(t *testing.T) {
	rt := New(2, RoundRobin())
	rt.AddAux("a", func() bool { return false }, func() {})
	rt.Spawn(0, func(p *Proc) {
		for {
			p.Pause()
		}
	})
	rt.Run(5)
	if rt.Steps() != 5 {
		t.Fatalf("Steps = %d", rt.Steps())
	}
	defer rt.Stop()

	rt.Reset(2, RoundRobin())
	if rt.Steps() != 0 {
		t.Errorf("Steps after Reset = %d, want 0", rt.Steps())
	}
	if id := rt.AddAux("b", func() bool { return false }, func() {}); id != 2 {
		t.Errorf("first aux ID after Reset = %d, want 2", id)
	}
	// Spawning the same process again must not panic: Reset re-armed it.
	steps := 0
	rt.Spawn(0, func(p *Proc) {
		for {
			steps++
			p.Pause()
		}
	})
	rt.Run(4)
	if steps != 4 {
		t.Errorf("respawned process took %d steps, want 4", steps)
	}
	if rt.Crashed(0) || rt.Exited(0) {
		t.Error("Reset left stale crash/exit state")
	}
}

// TestResetAfterStopPanics pins the lifecycle: a stopped runtime is dead.
func TestResetAfterStopPanics(t *testing.T) {
	rt := New(1, RoundRobin())
	rt.Stop()
	defer func() {
		if recover() == nil {
			t.Error("Reset after Stop should panic")
		}
	}()
	rt.Reset(1, RoundRobin())
}

// TestStepZeroAlloc asserts the steady-state step loop allocates nothing:
// with processes spawned and an aux actor registered, scheduling a step is
// allocation-free.
func TestStepZeroAlloc(t *testing.T) {
	rt := New(3, RoundRobin())
	defer rt.Stop()
	for i := 0; i < 3; i++ {
		rt.Spawn(i, func(p *Proc) {
			for {
				p.Pause()
			}
		})
	}
	rt.AddAux("aux", func() bool { return true }, func() {})
	if avg := testing.AllocsPerRun(1000, func() { rt.Step() }); avg != 0 {
		t.Errorf("Step allocates %.1f objects per call, want 0", avg)
	}
}

// TestResetZeroAlloc asserts the pooled per-execution setup is
// allocation-free in the steady state: once the runtime has grown to its
// working size, a full Reset + Spawn + run cycle with pre-built bodies and a
// reused policy allocates nothing.
func TestResetZeroAlloc(t *testing.T) {
	rt := New(3, nil)
	defer rt.Stop()
	pol := RoundRobin()
	bodies := make([]func(*Proc), 3)
	for i := range bodies {
		bodies[i] = func(p *Proc) {
			for {
				p.Pause()
			}
		}
	}
	cycle := func() {
		rt.Reset(3, pol)
		rt.AddAux("aux", func() bool { return false }, func() {})
		for i, b := range bodies {
			rt.Spawn(i, b)
		}
		rt.Run(30)
	}
	cycle() // warm up: grow procs, scratch, aux capacity, start goroutines
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Errorf("pooled execution cycle allocates %.1f objects, want 0", avg)
	}
}
