package sched

import (
	"fmt"
	"math/rand"
)

// RoundRobin returns a fair policy that cycles through runnable actors in
// ascending ID order. Fairness matters: the decidability definitions of
// Section 4 quantify over fair executions, in which every process takes
// infinitely many steps.
func RoundRobin() Policy { return &roundRobin{last: -1} }

type roundRobin struct {
	last int
}

func (p *roundRobin) Next(runnable []int, _ int) int {
	for _, id := range runnable {
		if id > p.last {
			p.last = id
			return id
		}
	}
	p.last = runnable[0]
	return runnable[0]
}

// Random returns a seeded uniformly random policy. Uniform choice over
// runnable actors is fair with probability one, and the seed makes every
// execution replayable.
func Random(seed int64) Policy {
	return &randomPolicy{rng: rand.New(rand.NewSource(seed))}
}

type randomPolicy struct {
	rng *rand.Rand
}

func (p *randomPolicy) Next(runnable []int, _ int) int {
	return runnable[p.rng.Intn(len(runnable))]
}

// Biased returns a seeded policy that picks the given actor whenever it is
// runnable with probability bias, otherwise uniformly among the rest. Used to
// control how eagerly the adversary's word cursor advances relative to the
// monitor's memory steps — the knob that turns "almost synchronous"
// executions (Lemma 5.1) into heavily skewed ones.
func Biased(seed int64, actor int, bias float64) Policy {
	return &biasedPolicy{rng: rand.New(rand.NewSource(seed)), actor: actor, bias: bias}
}

type biasedPolicy struct {
	rng   *rand.Rand
	actor int
	bias  float64
}

func (p *biasedPolicy) Next(runnable []int, _ int) int {
	idx := -1
	for i, id := range runnable {
		if id == p.actor {
			idx = i
			break
		}
	}
	if idx >= 0 && p.rng.Float64() < p.bias {
		return p.actor
	}
	if idx >= 0 && len(runnable) > 1 {
		// Choose uniformly among the others.
		k := p.rng.Intn(len(runnable) - 1)
		if k >= idx {
			k++
		}
		return runnable[k]
	}
	return runnable[p.rng.Intn(len(runnable))]
}

// PolicyFunc adapts a plain function to the Policy interface, the hook that
// lets scenario explorers plug in custom randomized policies without a new
// named type per experiment.
type PolicyFunc func(runnable []int, step int) int

// Next implements Policy.
func (f PolicyFunc) Next(runnable []int, step int) int { return f(runnable, step) }

// Bursty returns a seeded policy that sticks with one actor for a geometric
// burst (mean length mean ≥ 1) before picking a new one uniformly at random.
// Bursts produce the heavily skewed interleavings — one process racing far
// ahead while the others are frozen — that uniform choice almost never
// samples, yet remain fair with probability one since every actor is
// re-drawn infinitely often.
func Bursty(seed int64, mean int) Policy {
	if mean < 1 {
		mean = 1
	}
	rng := rand.New(rand.NewSource(seed))
	cur := -1
	return PolicyFunc(func(runnable []int, _ int) int {
		if cur >= 0 && contains(runnable, cur) && rng.Float64() < 1-1/float64(mean) {
			return cur
		}
		cur = runnable[rng.Intn(len(runnable))]
		return cur
	})
}

// Script returns a policy that follows an explicit actor sequence and then
// delegates to fallback. The proof constructions (Lemma 5.1's executions E
// and F, Claim 3.1's sequential execution) are scripts: each entry must be
// runnable when consumed, and the policy panics otherwise, because a
// non-runnable entry means the experiment driver mis-translated the proof.
func Script(seq []int, fallback Policy) Policy {
	return &scriptPolicy{seq: seq, fallback: fallback}
}

type scriptPolicy struct {
	seq      []int
	pos      int
	fallback Policy
}

func (p *scriptPolicy) Next(runnable []int, step int) int {
	if p.pos < len(p.seq) {
		id := p.seq[p.pos]
		p.pos++
		if !contains(runnable, id) {
			panic(fmt.Sprintf("sched: script step %d requires actor %d but runnable=%v", p.pos-1, id, runnable))
		}
		return id
	}
	return p.fallback.Next(runnable, step)
}

// Exhausted reports whether a Script policy consumed its whole sequence;
// other policies report true. Experiment drivers assert this to catch
// truncated constructions.
func Exhausted(p Policy) bool {
	sp, ok := p.(*scriptPolicy)
	if !ok {
		return true
	}
	return sp.pos >= len(sp.seq)
}

// Prioritize returns a policy that always schedules the given actor when
// runnable and otherwise delegates. Claim 3.1's sequential executions use
// this with the adversary cursor: the word advances whenever it can, and
// processes run wait-free blocks in between.
func Prioritize(actor int, fallback Policy) Policy {
	return &priorityPolicy{actor: actor, fallback: fallback}
}

type priorityPolicy struct {
	actor    int
	fallback Policy
}

func (p *priorityPolicy) Next(runnable []int, step int) int {
	if contains(runnable, p.actor) {
		return p.actor
	}
	return p.fallback.Next(runnable, step)
}
