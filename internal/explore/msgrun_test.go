package explore

// Tests for the message-passing scenario family: drv3 spec round trips,
// execution determinism (pooled and not, across worker counts), the clean
// run of every correct emulation, the oracle split, the network axes of the
// coverage signature and the mutator, and the acceptance pin — the explorer
// finds the seeded emulation bugs and shrinks a finding to a reproducer of
// at most 20 workload operations.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/drv-go/drv/internal/experiment"
	"github.com/drv-go/drv/internal/monitor"
)

// msgGen is the message-family generator config used across these tests.
func msgGen() GenConfig {
	return GenConfig{Families: []string{FamMsg}, MaxCrashes: 2}
}

func TestMsgSpecStringRoundTrip(t *testing.T) {
	sawDrops, sawCrash := false, false
	for i := 0; i < 200; i++ {
		s := NewSpec(2078, i, msgGen())
		if s.Fam() != FamMsg {
			t.Fatalf("spec %d is not a message scenario: %s", i, s)
		}
		parsed, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("spec %d %q: %v", i, s.String(), err)
		}
		if parsed.String() != s.String() {
			t.Fatalf("round trip changed %q into %q", s.String(), parsed.String())
		}
		if !strings.HasPrefix(s.String(), specVersion+":"+FamMsg+"/") {
			t.Fatalf("message spec %q does not carry the %s tag", s.String(), specVersion)
		}
		if !strings.Contains(s.String(), ":net=") {
			t.Fatalf("message spec %q lacks the network-order field", s.String())
		}
		sawDrops = sawDrops || len(s.Drops) > 0
		sawCrash = sawCrash || len(s.Crashes) > 0
	}
	if !sawDrops || !sawCrash {
		t.Errorf("generator never drew some axis: drops=%v crashes=%v", sawDrops, sawCrash)
	}
}

func TestParseSpecRejectsMalformedMsg(t *testing.T) {
	bad := []string{
		// The message family and the network fields are drv3-only grammar.
		"drv2:msg/register/abd:n=3:seed=1:pol=random:steps=2000:ops=4:mb=0.5:net=fifo",
		"drv1:msg/register/abd:n=3:seed=1:pol=random:steps=2000:ops=4:mb=0.5:net=fifo",
		"drv2:obj/queue/lifo:n=2:seed=1:pol=random:steps=900:ops=4:mb=0.5:net=fifo",
		"drv2:obj/queue/lifo:n=2:seed=1:pol=random:steps=900:ops=4:mb=0.5:drop=3",
		// A message spec must carry a network order.
		"drv3:msg/register/abd:n=3:seed=1:pol=random:steps=2000:ops=4:mb=0.5",
		// Unknown order, malformed or non-canonical loss schedules.
		"drv3:msg/register/abd:n=3:seed=1:pol=random:steps=2000:ops=4:mb=0.5:net=turtle",
		"drv3:msg/register/abd:n=3:seed=1:pol=random:steps=2000:ops=4:mb=0.5:net=fifo:drop=",
		"drv3:msg/register/abd:n=3:seed=1:pol=random:steps=2000:ops=4:mb=0.5:net=fifo:drop=5,3",
		"drv3:msg/register/abd:n=3:seed=1:pol=random:steps=2000:ops=4:mb=0.5:net=fifo:drop=3,3",
		"drv3:msg/register/abd:n=3:seed=1:pol=random:steps=2000:ops=4:mb=0.5:net=fifo:drop=-1",
		// Unknown emulated object / implementation, and family cross-overs.
		"drv3:msg/deque/abd:n=3:seed=1:pol=random:steps=2000:ops=4:mb=0.5:net=fifo",
		"drv3:msg/register/split:n=3:seed=1:pol=random:steps=2000:ops=4:mb=0.5:net=fifo",
		"drv3:msg/queue/lifo:n=2:seed=1:pol=random:steps=900:ops=4:mb=0.5:net=fifo",
		// Missing workload fields on a message spec.
		"drv3:msg/register/abd:n=3:seed=1:pol=random:steps=2000:net=fifo",
		// A language spec must not carry network fields even under drv3.
		"drv3:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100:net=fifo",
	}
	for _, in := range bad {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed spec", in)
		}
	}
	// The drv3 tag is a superset grammar: object and language specs parse
	// under it and re-render version-minimally.
	for in, want := range map[string]string{
		"drv3:obj/queue/lifo:n=2:seed=1:pol=random:steps=900:ops=4:mb=0.5": "drv2:obj/queue/lifo:n=2:seed=1:pol=random:steps=900:ops=4:mb=0.5",
		"drv3:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100":             "drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100",
	} {
		s, err := ParseSpec(in)
		if err != nil {
			t.Errorf("drv3-tagged spec %q rejected: %v", in, err)
			continue
		}
		if got := s.String(); got != want {
			t.Errorf("drv3-tagged spec %q re-rendered as %q, want %q", in, got, want)
		}
	}
}

func TestMsgExecuteDeterministicAndPooled(t *testing.T) {
	// The determinism contract extends to message scenarios: same spec, same
	// digest and signature, pooled or not, run after run on one session.
	sess := monitor.NewSession()
	defer sess.Close()
	pooled := Runner{Session: sess}
	for i := 0; i < 12; i++ {
		s := NewSpec(33, i, msgGen())
		a, err := Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pooled.Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		if a.Digest != b.Digest || a.Signature != b.Signature {
			t.Errorf("%s: unpooled %s/%s vs pooled %s/%s", s, a.Digest, a.Signature, b.Digest, b.Signature)
		}
	}
}

func TestMsgCorrectImplsClean(t *testing.T) {
	// The correct emulation of every object must run clean across seeds,
	// network orders, crash schedules and lossy networks: no divergence (the
	// emulation's guarantees hold) and no oracle failure (nothing planted).
	for _, object := range MsgObjects() {
		impl := MsgImplsOf(object)[0] // correct variant first, by convention
		for seed := int64(1); seed <= 4; seed++ {
			s := Spec{Family: FamMsg, Object: object, Impl: impl, N: 3, Seed: seed,
				Policy: PolRandom, Steps: 4000, OpsPerProc: 3, MutBias: 0.5,
				NetOrder: []string{"fifo", "lifo", "random", "starve"}[seed%4]}
			switch seed % 3 {
			case 0:
				s.Crashes = []Crash{{Step: 200, Proc: 1}}
			case 1:
				s.Drops = []int{2, 3, 4}
			}
			out, err := Execute(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Divergences) > 0 {
				t.Errorf("%s diverged: %v", s, out.Divergences)
			}
			if len(out.OracleFailures) > 0 {
				t.Errorf("%s produced oracle failures on a correct emulation: %v", s, out.OracleFailures)
			}
			if !out.Label {
				t.Errorf("%s: correct emulation not labelled correct", s)
			}
		}
	}
}

func TestMsgSignatureSeparatesImplsAndNet(t *testing.T) {
	// The family/object/impl triple anchors the class, and the network
	// schedule contributes its own signature axis — the explorer must be
	// able to tell a FIFO scenario from a starved one on the same emulation.
	base := Spec{Family: FamMsg, Object: "register", Impl: "abd", N: 3, Seed: 7,
		Policy: PolRandom, Steps: 2000, OpsPerProc: 3, MutBias: 0.5, NetOrder: "fifo"}
	starved := base
	starved.NetOrder = "starve"
	a, err := Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(starved)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Signature, FamMsg+"/register/abd") {
		t.Errorf("signature %q lacks the family/object/impl anchor", a.Signature)
	}
	if !strings.Contains(a.Signature, "|nt=fifo") || !strings.Contains(b.Signature, "|nt=starve") {
		t.Errorf("signatures lack the network axis: %q vs %q", a.Signature, b.Signature)
	}
	if a.Signature == b.Signature {
		t.Errorf("fifo and starved schedules share signature %q", a.Signature)
	}
}

func TestMsgReportDeterministicAcrossWorkersAndPooling(t *testing.T) {
	// The message sweep inherits the determinism contract: byte-identical
	// reports for every worker count and pooling mode.
	n := 16
	if !testing.Short() {
		n = 40
	}
	var renders []string
	for _, cfg := range []struct {
		workers  int
		unpooled bool
	}{{1, false}, {4, false}, {4, true}} {
		rep, err := Explore(Options{
			Master: 9, Scenarios: n, Workers: cfg.workers,
			Gen:      msgGen(),
			Unpooled: cfg.unpooled,
			Shrink:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		renders = append(renders, string(js))
	}
	for i := 1; i < len(renders); i++ {
		if renders[i] != renders[0] {
			t.Fatalf("message configuration %d folded a different report:\n%s\nvs\n%s", i, renders[i], renders[0])
		}
	}
}

func TestMsgParallelExecutionsIndependent(t *testing.T) {
	// Race-tier coverage for the message stack: many goroutines executing
	// message scenarios at once — each with its own network, runtime and
	// pooled monitor session, the explorer's per-worker shape — must neither
	// race (the -race CI tier runs this test) nor bleed state across
	// executions: every goroutine sees the same digest for the same spec.
	specs := make([]Spec, 6)
	for i := range specs {
		specs[i] = NewSpec(41, i, msgGen())
	}
	want := make([]string, len(specs))
	for i, s := range specs {
		out, err := Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out.Digest
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4*len(specs))
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := monitor.NewSession()
			defer sess.Close()
			r := Runner{Session: sess}
			for i, s := range specs {
				out, err := r.Execute(s)
				if err != nil {
					errs <- err
					return
				}
				if out.Digest != want[i] {
					errs <- fmt.Errorf("%s: digest %s under concurrency, want %s", s, out.Digest, want[i])
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMsgExplorerFindsSeededBugs is the acceptance pin: a seeded run over
// the broken emulations produces failing-oracle outcomes, never divergences
// on the shipped stack, and the minimizer shrinks the canonical ABD
// write-back bug to a reproducer of at most 20 workload operations.
func TestMsgExplorerFindsSeededBugs(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 30
	}
	rep, err := Explore(Options{
		Master: 4, Scenarios: n, Workers: 4,
		Gen:    msgGen(),
		Shrink: true, ShrinkBudget: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("divergence on the shipped stack: %s %v", f.Spec, f.Divergences)
	}
	if rep.BugScenarios == 0 {
		t.Fatal("no scenario exposed a seeded emulation bug")
	}
	found := map[string]bool{}
	for _, b := range rep.Bugs {
		found[b.Object+"/"+b.Impl] = true
		if b.Shrunk == "" {
			t.Errorf("bug %s/%s has no shrunk reproducer", b.Object, b.Impl)
			continue
		}
		if _, err := ParseSpec(b.Shrunk); err != nil {
			t.Errorf("shrunk bug spec %q does not re-parse: %v", b.Shrunk, err)
		}
	}
	for _, want := range []string{"counter/lost", "consensus/echo"} {
		if !found[want] {
			t.Errorf("the broken %s emulation went unfound (found %v)", want, found)
		}
	}

	// The ≤20-operation pin on the ABD write-back bug: the no-write-back
	// read is merely regular, and among the first seeds of its canonical
	// exposing shape (read-heavy workload, LIFO delivery) the minimizer
	// reaches a reproducer of at most 20 workload operations total. The pin
	// counts operations (N·ops), not scheduler steps: one two-phase ABD
	// operation costs ~30–40 scheduler steps through the emulation, so an
	// operation bound is the meaningful notion of "small" here.
	r := Runner{}
	best := 1 << 30
	for seed := int64(1); seed <= 150 && best > 20; seed++ {
		s, err := ParseSpec(fmt.Sprintf(
			"drv3:msg/register/nowriteback:n=3:seed=%d:pol=random:steps=4000:ops=4:mb=0.3:net=lifo", seed))
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.OracleFailures) == 0 {
			continue
		}
		shrunk, still := ShrinkBugSpec(s, r, 0)
		if len(still) == 0 {
			t.Errorf("shrinking %s lost the bug", s)
			continue
		}
		if ops := shrunk.N * shrunk.OpsPerProc; ops < best {
			best = ops
		}
	}
	if best > 20 {
		t.Errorf("smallest shrunk reproducer needs %d workload operations, want ≤ 20", best)
	}
}

func TestMsgGuidedDeterministicAcrossWorkersAndPooling(t *testing.T) {
	// The guided message sweep over the committed corpus inherits the
	// determinism contract: byte-identical reports for every worker count
	// and pooling mode, corpus growth included.
	n := 30
	if !testing.Short() {
		n = 80
	}
	var renders []string
	for _, cfg := range []struct {
		workers  int
		unpooled bool
	}{{1, false}, {4, false}, {4, true}} {
		c, err := LoadCorpus("testdata/corpus-msg")
		if err != nil {
			t.Fatal(err)
		}
		if c.Len() == 0 {
			t.Fatal("committed message corpus is empty; regenerate with EXPLORE_MSG_CORPUS_OUT=testdata/corpus-msg go test -run TestRegenerateMsgSeedCorpus ./internal/explore")
		}
		rep, err := Explore(Options{
			Master: 8, Scenarios: n, Workers: cfg.workers,
			Gen:    msgGen(),
			Corpus: c, MutateFrac: 0.5, Round: 25,
			Unpooled: cfg.unpooled,
			Shrink:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		renders = append(renders, string(js))
	}
	for i := 1; i < len(renders); i++ {
		if renders[i] != renders[0] {
			t.Fatalf("guided message configuration %d folded a different report:\n%s\nvs\n%s", i, renders[i], renders[0])
		}
	}
}

func TestCommittedMsgCorpusEntriesReplayClean(t *testing.T) {
	// Every committed message seed must execute without divergence on the
	// shipped stack — corpus entries seed mutation draws, and a diverging
	// one would be a standing false alarm.
	c, err := LoadCorpus("testdata/corpus-msg")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == 0 {
		t.Fatal("committed message corpus is empty; regenerate with EXPLORE_MSG_CORPUS_OUT=testdata/corpus-msg go test -run TestRegenerateMsgSeedCorpus ./internal/explore")
	}
	n := c.Len()
	if testing.Short() {
		n = 12 // spot-check the head; the full tier replays everything
	}
	workers := 8
	runners := make([]Runner, experiment.WorkerCount(n, workers))
	for w := range runners {
		runners[w].Session = monitor.NewSession()
		defer runners[w].Session.Close()
	}
	errs := make([]string, n)
	experiment.ForEachWorker(n, workers, func(w, i int) {
		s := c.At(i)
		out, err := runners[w].Execute(s)
		switch {
		case err != nil:
			errs[i] = "does not execute: " + err.Error()
		case len(out.Divergences) > 0:
			errs[i] = "diverges: " + out.Divergences[0].Detail
		}
	})
	for i, msg := range errs {
		if msg != "" {
			t.Errorf("message corpus entry %s %s", c.At(i), msg)
		}
	}
}

func TestMsgMutateValidAndPerturbs(t *testing.T) {
	// Mutation must stay inside the family (and the parent's object), keep
	// specs executable, and actually explore the network axes alongside the
	// impl-swap and workload ones.
	rng := rand.New(rand.NewSource(5))
	cfg := msgGen()
	implSwaps, orderChanges, dropChanges := 0, 0, 0
	for i := 0; i < 400; i++ {
		parent := NewSpec(17, i, cfg)
		child := Mutate(parent, rng, cfg)
		if err := child.validate(); err != nil {
			t.Fatalf("mutation %d of %s produced invalid %s: %v", i, parent, child, err)
		}
		if child.Fam() != FamMsg || child.Object != parent.Object {
			t.Fatalf("mutation left the parent's object family: %s -> %s", parent, child)
		}
		reparsed, err := ParseSpec(child.String())
		if err != nil {
			t.Fatalf("mutated spec %q does not re-parse: %v", child, err)
		}
		if reparsed.String() != child.String() {
			t.Fatalf("mutated spec round-trip changed %q to %q", child, reparsed)
		}
		if child.Impl != parent.Impl {
			implSwaps++
		}
		if child.NetOrder != parent.NetOrder {
			orderChanges++
		}
		if fmt.Sprint(child.Drops) != fmt.Sprint(parent.Drops) {
			dropChanges++
		}
	}
	if implSwaps == 0 || orderChanges == 0 || dropChanges == 0 {
		t.Errorf("mutation never explored some message axis: impl=%d net=%d drops=%d", implSwaps, orderChanges, dropChanges)
	}
}
