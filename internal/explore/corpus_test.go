package explore

// The seed-corpus regression suite: a fixed list of interesting scenarios
// replayed deterministically on every test run. The corpus pins two kinds of
// value: coverage (every language, every policy kind, crash and crash-free
// runs) and history (scenarios that exposed oracle-model bugs while the
// explorer was built — each carries the lesson learned, so a regression
// reintroducing the bug fails here with context).
//
// Every entry must execute without divergence on the shipped monitors, and
// byte-identically on replay.

import "testing"

// corpus is the pinned scenario list. Keep entries append-only where
// possible; a spec-format change bumps specVersion and rewrites them
// deliberately.
var corpus = []struct {
	spec string
	why  string
}{
	// --- regressions: sketch escape on the predictive Out-side ----------
	// Under bursty scheduling the over-reader's snapshot can be delayed
	// until both incs are announced; the outer word of Aτ then genuinely
	// repairs the clause-4 violation (the read is concurrent with its inc)
	// and Figure 9 rightly converges to YES. The first oracle model flagged
	// this as a missed detection; the fix judges the exhibited outer word
	// and excuses violations the sketch lost.
	{"drv1:SEC_COUNT/over-read:n=4:seed=6658008954765487501:pol=bursty:steps=3122",
		"PWD Out-side escape: views lose the over-read's real-time order"},
	{"drv1:SEC_COUNT/over-read:n=2:seed=6030712058774715852:pol=bursty:steps=2720",
		"PWD Out-side escape, two-process variant"},
	// Same lesson for Figure 8: a cursor-heavy schedule delays the lagging
	// readers' announcements until the stale gets are concurrent with their
	// appends; the sketch is linearizable and V_O's silence is correct.
	{"drv1:LIN_LED/stale-gets:n=4:seed=1783143470261156601:pol=biased/0.75:steps=556",
		"PSD Out-side escape: stale get repaired by outer reordering"},
	{"drv1:LIN_LED/stale-gets:n=3:seed=3194411741172216367:pol=biased/0.65:steps=826",
		"PSD Out-side escape, three-process variant"},

	// --- coverage: every language, policy kind, with and without crashes —
	{"drv1:WEC_COUNT/exact:n=3:seed=2765682843422732378:pol=random:steps=2898", "WD possibility under uniform random scheduling"},
	{"drv1:WEC_COUNT/own-inc-violation:n=4:seed=4957131021397394865:pol=biased/0.40:steps=3770:crash=2@3345", "Lemma 5.2 witness with a late crash"},
	{"drv1:WEC_COUNT/diverge:n=2:seed=5203094175101027911:pol=bursty:steps=4917:crash=1@3892", "liveness-only violation, crashed reader"},
	{"drv1:SEC_COUNT/non-monotone:n=3:seed=4569354892178634740:pol=biased/0.80:steps=2849", "clause-2 violation through Figure 9"},
	{"drv1:SEC_COUNT/diverge:n=4:seed=448385284287791708:pol=random:steps=3380:crash=1@2167,3@3216", "liveness violation with two crashes"},
	{"drv1:LIN_REG/atomic:n=3:seed=6235467027987522165:pol=bursty:steps=765:crash=0@1,2@269", "step-1 crash: a process that never runs"},
	{"drv1:LIN_REG/phantom:n=3:seed=1690968043131451133:pol=biased/0.80:steps=401", "phantom value caught by V_O"},
	{"drv1:LIN_REG/stale-reads:n=3:seed=4771576892371869558:pol=cursor:steps=1152:crash=0@714,1@818", "stale reads, writer crashed"},
	{"drv1:SC_REG/stale-reads:n=4:seed=862686058662328681:pol=cursor:steps=526", "stale reads are in SC_REG: label flips with the language"},
	{"drv1:SC_REG/phantom:n=4:seed=3965957585858529441:pol=bursty:steps=649", "phantom value through the SC check"},
	{"drv1:SC_LED/atomic:n=2:seed=402364829343287788:pol=bursty:steps=406:crash=0@334", "ledger SC with a crash"},
	{"drv1:SC_LED/stale-gets:n=3:seed=4620368805144028552:pol=random:steps=683", "lagging gets are in SC_LED"},
	{"drv1:LIN_LED/atomic:n=3:seed=2009177822363617102:pol=biased/0.30:steps=546:crash=1@217,2@312", "process-starved schedule with two crashes"},
	{"drv1:LIN_LED/lost-append:n=4:seed=2312171718557744096:pol=bursty:steps=401", "broken chain caught by V_O"},
	{"drv1:EC_LED/gossip-converge:n=4:seed=2759404806500095411:pol=cursor:steps=642", "eventually consistent gossip, structural checks only"},
	{"drv1:EC_LED/forked:n=2:seed=3993397225625499186:pol=cursor:steps=753:crash=0@349", "forked ledger with the appender crashed"},
}

func TestCorpusRepliesClean(t *testing.T) {
	for _, entry := range corpus {
		entry := entry
		t.Run(entry.spec, func(t *testing.T) {
			s, err := ParseSpec(entry.spec)
			if err != nil {
				t.Fatalf("corpus spec does not parse: %v", err)
			}
			out, err := Execute(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Divergences) != 0 {
				t.Errorf("corpus scenario diverges (%s): %v", entry.why, out.Divergences)
			}
			if testing.Short() {
				return
			}
			again, err := Execute(s)
			if err != nil {
				t.Fatal(err)
			}
			if again.Digest != out.Digest {
				t.Errorf("corpus scenario is nondeterministic: digest %s then %s", out.Digest, again.Digest)
			}
		})
	}
}

func TestCorpusCoversAllLanguages(t *testing.T) {
	seen := map[string]bool{}
	crashes := false
	for _, entry := range corpus {
		s, err := ParseSpec(entry.spec)
		if err != nil {
			t.Fatal(err)
		}
		seen[s.Lang] = true
		if len(s.Crashes) > 0 {
			crashes = true
		}
	}
	for _, name := range []string{"LIN_REG", "SC_REG", "LIN_LED", "SC_LED", "EC_LED", "WEC_COUNT", "SEC_COUNT"} {
		if !seen[name] {
			t.Errorf("corpus has no scenario for %s", name)
		}
	}
	if !crashes {
		t.Error("corpus has no crash scenario")
	}
}
