package explore

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/drv-go/drv/internal/monitor"
)

// specVersion tags the seed-spec wire format; bump when the encoding or the
// scenario semantics change incompatibly, so stale corpora fail loudly
// instead of replaying a different execution.
const specVersion = "drv1"

// Policy kinds a scenario can schedule under. All are seeded from the spec;
// see Spec.policy.
const (
	// PolBiased is sched.Biased toward the adversary cursor.
	PolBiased = "biased"
	// PolRandom is sched.Random, uniform over runnable actors.
	PolRandom = "random"
	// PolBursty is sched.Bursty: geometric bursts of one actor.
	PolBursty = "bursty"
	// PolCursor is sched.Prioritize(cursor) over a random fallback: the
	// most synchronous schedule, the Claim 3.1 shape.
	PolCursor = "cursor"
)

// Crash schedules one process crash: at scheduler step Step, process Proc
// stops being scheduled and its remaining events drop out of the exhibited
// word.
type Crash struct {
	Step int `json:"step"`
	Proc int `json:"proc"`
}

// Spec fully determines one scenario: the language and labelled source under
// inspection, the process count, the scheduling policy and its seed, the
// step bound, and the crash schedule. Specs serialize to a one-line string
// (String/ParseSpec) used as the replay and corpus format.
type Spec struct {
	// Lang is the Table 1 language name (e.g. "WEC_COUNT").
	Lang string `json:"lang"`
	// Source is the labelled source name within the language (e.g. "exact").
	Source string `json:"source"`
	// N is the monitor process count.
	N int `json:"n"`
	// Seed drives the source generators and (via an independent stream) the
	// scheduling policy.
	Seed int64 `json:"seed"`
	// Policy is one of the Pol* kinds.
	Policy string `json:"policy"`
	// Bias is the cursor bias for PolBiased (ignored otherwise).
	Bias float64 `json:"bias,omitempty"`
	// Steps bounds the scheduler.
	Steps int `json:"steps"`
	// Crashes is the crash schedule, in increasing step order.
	Crashes []Crash `json:"crashes,omitempty"`
}

// String renders the one-line seed spec, e.g.
//
//	drv1:WEC_COUNT/exact:n=3:seed=42:pol=biased/0.50:steps=2400:crash=1@120,0@300
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%s/%s:n=%d:seed=%d:pol=%s", specVersion, s.Lang, s.Source, s.N, s.Seed, s.Policy)
	if s.Policy == PolBiased {
		// 'g'/-1 renders the shortest decimal that parses back to exactly
		// this float64, so String↔ParseSpec is exact for every bias a
		// mutator can produce (the old %.2f encoding forced biases onto a
		// hundredths grid); old two-decimal specs still parse.
		b.WriteByte('/')
		b.WriteString(strconv.FormatFloat(s.Bias, 'g', -1, 64))
	}
	fmt.Fprintf(&b, ":steps=%d", s.Steps)
	if len(s.Crashes) > 0 {
		b.WriteString(":crash=")
		for i, c := range s.Crashes {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d@%d", c.Proc, c.Step)
		}
	}
	return b.String()
}

// ParseSpec parses the String encoding back into a Spec.
func ParseSpec(in string) (Spec, error) {
	var s Spec
	fields := strings.Split(strings.TrimSpace(in), ":")
	if len(fields) < 2 || fields[0] != specVersion {
		return s, fmt.Errorf("explore: spec %q does not start with %q", in, specVersion)
	}
	langSrc := strings.SplitN(fields[1], "/", 2)
	if len(langSrc) != 2 || langSrc[0] == "" || langSrc[1] == "" {
		return s, fmt.Errorf("explore: spec %q lacks a lang/source field", in)
	}
	s.Lang, s.Source = langSrc[0], langSrc[1]
	seen := map[string]bool{}
	for _, f := range fields[2:] {
		kv := strings.SplitN(f, "=", 2)
		if len(kv) != 2 {
			return s, fmt.Errorf("explore: malformed spec field %q", f)
		}
		if seen[kv[0]] {
			// A duplicate field would silently overwrite the first value and
			// replay a different execution than the spec's author saw.
			return s, fmt.Errorf("explore: duplicate spec field %q", kv[0])
		}
		seen[kv[0]] = true
		var err error
		switch kv[0] {
		case "n":
			s.N, err = strconv.Atoi(kv[1])
		case "seed":
			s.Seed, err = strconv.ParseInt(kv[1], 10, 64)
		case "pol":
			pol := strings.SplitN(kv[1], "/", 2)
			s.Policy = pol[0]
			if len(pol) == 2 {
				s.Bias, err = strconv.ParseFloat(pol[1], 64)
			}
		case "steps":
			s.Steps, err = strconv.Atoi(kv[1])
		case "crash":
			for _, part := range strings.Split(kv[1], ",") {
				var c Crash
				// Sscanf stops at trailing garbage without erroring;
				// re-render and compare so a mis-pasted spec is rejected
				// instead of silently replaying a different execution.
				if _, err = fmt.Sscanf(part, "%d@%d", &c.Proc, &c.Step); err != nil ||
					fmt.Sprintf("%d@%d", c.Proc, c.Step) != part {
					return s, fmt.Errorf("explore: malformed crash %q", part)
				}
				s.Crashes = append(s.Crashes, c)
			}
		default:
			err = fmt.Errorf("unknown key %q", kv[0])
		}
		if err != nil {
			return s, fmt.Errorf("explore: spec field %q: %w", f, err)
		}
	}
	return s, s.validate()
}

// validate rejects specs that cannot execute.
func (s Spec) validate() error {
	switch {
	case s.N < 1:
		return fmt.Errorf("explore: spec needs n ≥ 1, got %d", s.N)
	case s.Steps < 1:
		return fmt.Errorf("explore: spec needs steps ≥ 1, got %d", s.Steps)
	case s.Steps > monitor.DefaultMaxSteps:
		// The runner hands Steps straight to the monitor runner; bounding it
		// by the runner's own default keeps mis-pasted specs from demanding
		// effectively unbounded executions.
		return fmt.Errorf("explore: spec steps %d exceed monitor.DefaultMaxSteps (%d)", s.Steps, monitor.DefaultMaxSteps)
	case s.Policy != PolBiased && s.Policy != PolRandom && s.Policy != PolBursty && s.Policy != PolCursor:
		return fmt.Errorf("explore: unknown policy %q", s.Policy)
	case s.Policy != PolBiased && s.Bias != 0:
		return fmt.Errorf("explore: policy %q does not take a bias", s.Policy)
	}
	// Negated-range form so NaN (which fails every comparison) is rejected
	// too — ParseFloat accepts "NaN" and a NaN bias would silently degenerate
	// the biased policy.
	if s.Policy == PolBiased && !(s.Bias >= 0 && s.Bias <= 1) {
		return fmt.Errorf("explore: bias %v outside [0,1]", s.Bias)
	}
	for i, c := range s.Crashes {
		if c.Proc < 0 || c.Proc >= s.N {
			return fmt.Errorf("explore: crash names process %d of %d", c.Proc, s.N)
		}
		// The runner consults the crash schedule at steps 0..Steps−1; a
		// crash at step ≥ Steps would never fire yet still demote the
		// scenario to the weaker crash-run oracle set.
		if c.Step < 1 || c.Step >= s.Steps {
			return fmt.Errorf("explore: crash step %d outside [1,%d]", c.Step, s.Steps-1)
		}
		// The schedule must be in the canonical step-then-process order the
		// generator and the mutators emit (ties broken by process), with each
		// process crashing at most once — an out-of-order or duplicated
		// schedule would make two spec strings name one execution.
		if i > 0 {
			prev := s.Crashes[i-1]
			if c.Step < prev.Step || (c.Step == prev.Step && c.Proc <= prev.Proc) {
				return fmt.Errorf("explore: crash schedule not in canonical step-then-process order at %d@%d", c.Proc, c.Step)
			}
		}
		for _, earlier := range s.Crashes[:i] {
			if earlier.Proc == c.Proc {
				return fmt.Errorf("explore: process %d crashes twice", c.Proc)
			}
		}
	}
	return nil
}

// mix derives an independent 64-bit stream from two seeds via one splitmix64
// round — the scenario-index and policy sub-seeds must not correlate with
// the raw master seed handed to the source generators.
func mix(a, b int64) int64 {
	z := uint64(a) + 0x9E3779B97F4A7C15*uint64(b+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
