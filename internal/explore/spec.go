package explore

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/msgnet"
)

// Spec wire-format versions. drv3 is the current grammar: it adds the
// message-passing family (a "msg/<object>/<impl>" head plus the net= and
// drop= network-schedule fields) on top of drv2, which added the
// object-execution family (an "obj/<object>/<impl>" head plus the ops= and
// mb= workload fields) on top of the drv1 language-scenario grammar. The
// grammars are cumulative — drv3 accepts every drv1 and drv2 construct — and
// the encoder is version-minimal: a spec expressible in an older grammar
// renders with that grammar's tag, so every pre-drv3 corpus line and report
// stays byte stable; message-passing specs require — and render with — the
// drv3 tag. ParseSpec accepts all three tags, but rejects newer-grammar
// constructs under an older tag, so a stale tool that knows only the older
// grammar fails loudly instead of replaying a different execution.
const (
	specVersion       = "drv3"
	objSpecVersion    = "drv2"
	legacySpecVersion = "drv1"
)

// Scenario families. The family decides what a scenario executes: a Table 1
// language source through its paper monitor (FamLang), or a real concurrent
// object implementation (package sut) under a random workload through the
// Figure 8 predictive monitor (FamObj).
const (
	// FamLang is the language-scenario family of PRs 2–4. It is the zero
	// value: Spec.Family == "" means FamLang, which keeps every stored drv1
	// spec and its JSON rendering unchanged.
	FamLang = "lang"
	// FamObj is the object-execution family: Spec.Object/Impl name a sut
	// implementation, Spec.OpsPerProc/MutBias shape its random workload.
	FamObj = "obj"
	// FamMsg is the message-passing family: Spec.Object/Impl name an
	// emulated object over internal/msgnet (ABD registers and the snapshot-
	// counter and consensus walks built on them), Spec.NetOrder/Drops pick
	// the deterministic message delivery-and-loss schedule, and the workload
	// fields mean what they mean for FamObj.
	FamMsg = "msg"
)

// Fam returns the scenario family, resolving the empty legacy value to
// FamLang.
func (s Spec) Fam() string {
	if s.Family == "" {
		return FamLang
	}
	return s.Family
}

// Policy kinds a scenario can schedule under. All are seeded from the spec;
// see Spec.policy.
const (
	// PolBiased is sched.Biased toward the adversary cursor.
	PolBiased = "biased"
	// PolRandom is sched.Random, uniform over runnable actors.
	PolRandom = "random"
	// PolBursty is sched.Bursty: geometric bursts of one actor.
	PolBursty = "bursty"
	// PolCursor is sched.Prioritize(cursor) over a random fallback: the
	// most synchronous schedule, the Claim 3.1 shape.
	PolCursor = "cursor"
)

// Crash schedules one process crash: at scheduler step Step, process Proc
// stops being scheduled and its remaining events drop out of the exhibited
// word.
type Crash struct {
	Step int `json:"step"`
	Proc int `json:"proc"`
}

// Spec fully determines one scenario: what runs (a labelled language source,
// or an object implementation under a random workload), the process count,
// the scheduling policy and its seed, the step bound, and the crash
// schedule. Specs serialize to a one-line string (String/ParseSpec) used as
// the replay and corpus format.
type Spec struct {
	// Family is the scenario family: "" or FamLang for language scenarios,
	// FamObj for object executions.
	Family string `json:"family,omitempty"`
	// Lang is the Table 1 language name (e.g. "WEC_COUNT"); FamLang only.
	Lang string `json:"lang,omitempty"`
	// Source is the labelled source name within the language (e.g. "exact");
	// FamLang only.
	Source string `json:"source,omitempty"`
	// Object is the sequential object name (e.g. "queue"); FamObj only.
	Object string `json:"object,omitempty"`
	// Impl is the implementation slug within the object (e.g. "lifo");
	// FamObj only.
	Impl string `json:"impl,omitempty"`
	// N is the monitor process count.
	N int `json:"n"`
	// Seed drives the source generators or the workload and (via independent
	// streams) the scheduling policy.
	Seed int64 `json:"seed"`
	// Policy is one of the Pol* kinds.
	Policy string `json:"policy"`
	// Bias is the cursor bias for PolBiased (ignored otherwise).
	Bias float64 `json:"bias,omitempty"`
	// Steps bounds the scheduler.
	Steps int `json:"steps"`
	// OpsPerProc is each process's workload budget; FamObj only.
	OpsPerProc int `json:"ops,omitempty"`
	// MutBias weights mutating operations in the random workload; FamObj
	// only.
	MutBias float64 `json:"mut_bias,omitempty"`
	// NetOrder is the message delivery-order kind (msgnet.OrderFIFO etc.);
	// the order's seed, where one is needed, derives from Seed. FamMsg only.
	NetOrder string `json:"net,omitempty"`
	// Drops is the deterministic message-loss schedule: global send indices
	// the network discards, strictly increasing. FamMsg only.
	Drops []int `json:"drops,omitempty"`
	// Crashes is the crash schedule, in increasing step order.
	Crashes []Crash `json:"crashes,omitempty"`
}

// maxOpsPerProc bounds an object workload; generation draws far below it,
// mutation may push toward it, and anything above is a mis-pasted spec.
const maxOpsPerProc = 64

// String renders the one-line seed spec, e.g.
//
//	drv1:WEC_COUNT/exact:n=3:seed=42:pol=biased/0.5:steps=2400:crash=1@120,0@300
//	drv2:obj/queue/lifo:n=3:seed=42:pol=random:steps=900:ops=5:mb=0.5:crash=1@120
//	drv3:msg/register/abd:n=3:seed=42:pol=random:steps=2000:ops=4:mb=0.3:net=lifo:drop=3,4,5:crash=1@120
//
// The encoding is version-minimal: language specs render with the drv1 tag
// and object specs with drv2 (so pre-drv3 corpora replay and dedup
// byte-for-byte); message-passing specs need the drv3 grammar and render with
// its tag.
func (s Spec) String() string {
	var b strings.Builder
	switch s.Fam() {
	case FamMsg:
		fmt.Fprintf(&b, "%s:%s/%s/%s", specVersion, FamMsg, s.Object, s.Impl)
	case FamObj:
		fmt.Fprintf(&b, "%s:%s/%s/%s", objSpecVersion, FamObj, s.Object, s.Impl)
	default:
		fmt.Fprintf(&b, "%s:%s/%s", legacySpecVersion, s.Lang, s.Source)
	}
	fmt.Fprintf(&b, ":n=%d:seed=%d:pol=%s", s.N, s.Seed, s.Policy)
	if s.Policy == PolBiased {
		// 'g'/-1 renders the shortest decimal that parses back to exactly
		// this float64, so String↔ParseSpec is exact for every bias a
		// mutator can produce (the old %.2f encoding forced biases onto a
		// hundredths grid); old two-decimal specs still parse.
		b.WriteByte('/')
		b.WriteString(strconv.FormatFloat(s.Bias, 'g', -1, 64))
	}
	fmt.Fprintf(&b, ":steps=%d", s.Steps)
	if s.Fam() == FamObj || s.Fam() == FamMsg {
		fmt.Fprintf(&b, ":ops=%d:mb=%s", s.OpsPerProc, strconv.FormatFloat(s.MutBias, 'g', -1, 64))
	}
	if s.Fam() == FamMsg {
		fmt.Fprintf(&b, ":net=%s", s.NetOrder)
		if len(s.Drops) > 0 {
			fmt.Fprintf(&b, ":drop=%s", msgnet.FormatDrops(s.Drops))
		}
	}
	if len(s.Crashes) > 0 {
		b.WriteString(":crash=")
		for i, c := range s.Crashes {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d@%d", c.Proc, c.Step)
		}
	}
	return b.String()
}

// ParseSpec parses the String encoding back into a Spec. All three version
// tags are accepted; newer-grammar constructs (the object family and workload
// fields under drv1, the message-passing family and network fields under
// drv1/drv2) are rejected under older tags.
func ParseSpec(in string) (Spec, error) {
	var s Spec
	fields := strings.Split(strings.TrimSpace(in), ":")
	var grammar int
	if len(fields) >= 2 {
		switch fields[0] {
		case legacySpecVersion:
			grammar = 1
		case objSpecVersion:
			grammar = 2
		case specVersion:
			grammar = 3
		}
	}
	if grammar == 0 {
		return s, fmt.Errorf("explore: spec %q does not start with %q, %q or %q", in, specVersion, objSpecVersion, legacySpecVersion)
	}
	head := strings.Split(fields[1], "/")
	switch {
	case head[0] == FamObj || head[0] == FamMsg:
		fam := head[0]
		need := 2
		if fam == FamMsg {
			need = 3
		}
		if grammar < need {
			return s, fmt.Errorf("explore: spec %q uses the %s family under the %s tag (needs drv%d)", in, fam, fields[0], need)
		}
		if len(head) != 3 || head[1] == "" || head[2] == "" {
			return s, fmt.Errorf("explore: spec %q lacks a %s/object/impl head", in, fam)
		}
		s.Family, s.Object, s.Impl = fam, head[1], head[2]
	case len(head) == 2 && head[0] != "" && head[1] != "":
		s.Lang, s.Source = head[0], head[1]
	default:
		return s, fmt.Errorf("explore: spec %q lacks a lang/source field", in)
	}
	seen := map[string]bool{}
	for _, f := range fields[2:] {
		kv := strings.SplitN(f, "=", 2)
		if len(kv) != 2 {
			return s, fmt.Errorf("explore: malformed spec field %q", f)
		}
		if seen[kv[0]] {
			// A duplicate field would silently overwrite the first value and
			// replay a different execution than the spec's author saw.
			return s, fmt.Errorf("explore: duplicate spec field %q", kv[0])
		}
		seen[kv[0]] = true
		var err error
		switch kv[0] {
		case "n":
			s.N, err = strconv.Atoi(kv[1])
		case "seed":
			s.Seed, err = strconv.ParseInt(kv[1], 10, 64)
		case "pol":
			pol := strings.SplitN(kv[1], "/", 2)
			s.Policy = pol[0]
			if len(pol) == 2 {
				s.Bias, err = strconv.ParseFloat(pol[1], 64)
			}
		case "steps":
			s.Steps, err = strconv.Atoi(kv[1])
		case "ops":
			if grammar < 2 {
				return s, fmt.Errorf("explore: spec field %q needs the %s grammar", f, objSpecVersion)
			}
			s.OpsPerProc, err = strconv.Atoi(kv[1])
		case "mb":
			if grammar < 2 {
				return s, fmt.Errorf("explore: spec field %q needs the %s grammar", f, objSpecVersion)
			}
			s.MutBias, err = strconv.ParseFloat(kv[1], 64)
		case "net":
			if grammar < 3 {
				return s, fmt.Errorf("explore: spec field %q needs the %s grammar", f, specVersion)
			}
			s.NetOrder = kv[1]
		case "drop":
			if grammar < 3 {
				return s, fmt.Errorf("explore: spec field %q needs the %s grammar", f, specVersion)
			}
			s.Drops, err = msgnet.ParseDrops(kv[1])
		case "crash":
			for _, part := range strings.Split(kv[1], ",") {
				var c Crash
				// Sscanf stops at trailing garbage without erroring;
				// re-render and compare so a mis-pasted spec is rejected
				// instead of silently replaying a different execution.
				if _, err = fmt.Sscanf(part, "%d@%d", &c.Proc, &c.Step); err != nil ||
					fmt.Sprintf("%d@%d", c.Proc, c.Step) != part {
					return s, fmt.Errorf("explore: malformed crash %q", part)
				}
				s.Crashes = append(s.Crashes, c)
			}
		default:
			err = fmt.Errorf("unknown key %q", kv[0])
		}
		if err != nil {
			return s, fmt.Errorf("explore: spec field %q: %w", f, err)
		}
	}
	return s, s.validate()
}

// validate rejects specs that cannot execute.
func (s Spec) validate() error {
	switch {
	case s.Fam() != FamLang && s.Fam() != FamObj && s.Fam() != FamMsg:
		return fmt.Errorf("explore: unknown scenario family %q", s.Family)
	case s.N < 1:
		return fmt.Errorf("explore: spec needs n ≥ 1, got %d", s.N)
	case s.Steps < 1:
		return fmt.Errorf("explore: spec needs steps ≥ 1, got %d", s.Steps)
	case s.Steps > monitor.DefaultMaxSteps:
		// The runner hands Steps straight to the monitor runner; bounding it
		// by the runner's own default keeps mis-pasted specs from demanding
		// effectively unbounded executions.
		return fmt.Errorf("explore: spec steps %d exceed monitor.DefaultMaxSteps (%d)", s.Steps, monitor.DefaultMaxSteps)
	case s.Policy != PolBiased && s.Policy != PolRandom && s.Policy != PolBursty && s.Policy != PolCursor:
		return fmt.Errorf("explore: unknown policy %q", s.Policy)
	case s.Policy != PolBiased && s.Bias != 0:
		return fmt.Errorf("explore: policy %q does not take a bias", s.Policy)
	}
	// Negated-range form so NaN (which fails every comparison) is rejected
	// too — ParseFloat accepts "NaN" and a NaN bias would silently degenerate
	// the biased policy.
	if s.Policy == PolBiased && !(s.Bias >= 0 && s.Bias <= 1) {
		return fmt.Errorf("explore: bias %v outside [0,1]", s.Bias)
	}
	if err := s.validateFamily(); err != nil {
		return err
	}
	for i, c := range s.Crashes {
		if c.Proc < 0 || c.Proc >= s.N {
			return fmt.Errorf("explore: crash names process %d of %d", c.Proc, s.N)
		}
		// The runner consults the crash schedule at steps 0..Steps−1; a
		// crash at step ≥ Steps would never fire yet still demote the
		// scenario to the weaker crash-run oracle set.
		if c.Step < 1 || c.Step >= s.Steps {
			return fmt.Errorf("explore: crash step %d outside [1,%d]", c.Step, s.Steps-1)
		}
		// The schedule must be in the canonical step-then-process order the
		// generator and the mutators emit (ties broken by process), with each
		// process crashing at most once — an out-of-order or duplicated
		// schedule would make two spec strings name one execution.
		if i > 0 {
			prev := s.Crashes[i-1]
			if c.Step < prev.Step || (c.Step == prev.Step && c.Proc <= prev.Proc) {
				return fmt.Errorf("explore: crash schedule not in canonical step-then-process order at %d@%d", c.Proc, c.Step)
			}
		}
		for _, earlier := range s.Crashes[:i] {
			if earlier.Proc == c.Proc {
				return fmt.Errorf("explore: process %d crashes twice", c.Proc)
			}
		}
	}
	return nil
}

// validateFamily checks the family-specific half of the spec: language
// scenarios must not carry workload or network fields, object and
// message-passing scenarios must name a known implementation and a sane
// workload, and only message-passing scenarios may (and must) carry a network
// schedule.
func (s Spec) validateFamily() error {
	if s.Fam() == FamLang {
		switch {
		case s.Object != "" || s.Impl != "":
			return fmt.Errorf("explore: language spec carries object fields %q/%q", s.Object, s.Impl)
		case s.OpsPerProc != 0 || s.MutBias != 0:
			return fmt.Errorf("explore: language spec carries workload fields ops=%d mb=%v", s.OpsPerProc, s.MutBias)
		case s.NetOrder != "" || len(s.Drops) > 0:
			return fmt.Errorf("explore: language spec carries network fields net=%q drop=%v", s.NetOrder, s.Drops)
		}
		return nil
	}
	switch {
	case s.Lang != "" || s.Source != "":
		return fmt.Errorf("explore: %s spec carries language fields %q/%q", s.Fam(), s.Lang, s.Source)
	case s.OpsPerProc < 1 || s.OpsPerProc > maxOpsPerProc:
		return fmt.Errorf("explore: %s spec needs ops in [1,%d], got %d", s.Fam(), maxOpsPerProc, s.OpsPerProc)
	}
	// Negated-range form for the same NaN reason as the policy bias.
	if !(s.MutBias >= 0 && s.MutBias <= 1) {
		return fmt.Errorf("explore: workload mutate bias %v outside [0,1]", s.MutBias)
	}
	if s.Fam() == FamObj {
		if s.NetOrder != "" || len(s.Drops) > 0 {
			return fmt.Errorf("explore: object spec carries network fields net=%q drop=%v", s.NetOrder, s.Drops)
		}
		_, _, err := implByName(s.Object, s.Impl)
		return err
	}
	// The network schedule validates through the msgnet codec itself, so the
	// spec grammar and the schedule grammar cannot drift apart. The order's
	// seed derives from Seed at execution time; 0 stands in for it here.
	if err := (msgnet.Schedule{Order: s.NetOrder, Drops: s.Drops}).Validate(); err != nil {
		return err
	}
	_, _, err := msgImplByName(s.Object, s.Impl)
	return err
}

// mix derives an independent 64-bit stream from two seeds via one splitmix64
// round — the scenario-index and policy sub-seeds must not correlate with
// the raw master seed handed to the source generators.
func mix(a, b int64) int64 {
	z := uint64(a) + 0x9E3779B97F4A7C15*uint64(b+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
