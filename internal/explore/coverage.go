package explore

// Coverage signatures: a compact deterministic abstraction of one executed
// scenario, coarse enough that blind uniform sampling saturates it and fine
// enough that the rare shapes — late crashes racing verdict tails, starved
// cursors, predictive escapes — land in their own classes. The guided
// explorer keeps one corpus entry per signature and spends part of each
// round mutating those entries, so exploration concentrates on the boundary
// of what has been seen instead of re-drawing the bulk of the space.
//
// Granularity is the tuning knob: every axis below is bucketed (log₂ capped
// for magnitudes, quarters for positions) and per-process data folds into a
// sorted multiset, because a signature fine enough to make every scenario
// novel guides nothing — the corpus would just mirror the sweep.

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"github.com/drv-go/drv/internal/monitor"
)

// sigVersion tags the signature algorithm; corpus entries persist their
// signature, so a change here must invalidate stale dedup data.
const sigVersion = "c1"

// signatureOf derives the outcome's coverage signature. Equal executions
// yield equal signatures (everything folded is replay-deterministic).
// Execute computes it before the optional replay pass, so the replay check
// never appears in the ran/skipped vector or the divergence fold.
func signatureOf(o *Outcome, res *monitor.Result) string {
	// The language and ω-label anchor the class; the source name is left out
	// deliberately — a source manifests through the verdict shapes and check
	// vectors it induces, and naming it would multiply every behavioural
	// class by the source list without adding behaviour.
	var b strings.Builder
	b.WriteString(sigVersion)
	b.WriteByte(':')
	b.WriteString(o.Spec.Lang)
	if o.Label {
		b.WriteString("/in")
	} else {
		b.WriteString("/out")
	}

	writeVerdictShape(&b, res)
	writeCrashAxis(&b, o, res)

	// Per-check ran/skipped vector in langCheckNames order: r ran, s
	// skipped, - not applicable this run. The vector is pinned to the
	// language family's own check list — folding the union of both
	// families' checks here would shift every signature (and invalidate
	// every committed corpus entry) each time a family gains a check.
	b.WriteString("|ck=")
	writeCheckVector(&b, o, langCheckNames())

	// Adversary cursor stats: the gate backlog the schedule left behind
	// (capped bucket) and whether the source script ended. The emitted depth
	// is left out — it tracks the step bound, which already shapes every
	// other axis.
	b.WriteString("|cu=")
	b.WriteString(strconv.Itoa(capBucket(log2Bucket(o.Cursor.Queued), 2)))
	if o.Cursor.Exhausted {
		b.WriteByte('x')
	}

	// Divergences are the rarest shape of all: fold the distinct failed
	// check names so each divergence kind is its own class.
	writeNameFold(&b, "|dv=", o.Divergences, langCheckNames())
	return b.String()
}

// writeVerdictShape renders the verdict-stream shape axis as counts over the
// processes (which process showed a shape rarely matters): how many opened on
// NO, how many hold NO in their tail window, how many reported nothing at
// all, and a capped bucket of the total verdict flips — the axis that
// separates converging monitors from oscillating ones. Process counts fold as
// none/one/many (capBucket at 2): whether SOME process held NO or stayed
// silent separates behaviours, the exact count mostly echoes N.
func writeVerdictShape(b *strings.Builder, res *monitor.Result) {
	firstNO, tailNO, silent, flips := 0, 0, 0, 0
	for p := range res.Verdicts {
		vs := res.Verdicts[p]
		if len(vs) == 0 {
			silent++
			continue
		}
		if vs[0] == monitor.No {
			firstNO++
		}
		if res.NOInTail(p, evalWindow) {
			tailNO++
		}
		for k := 1; k < len(vs); k++ {
			if vs[k] != vs[k-1] {
				flips++
			}
		}
	}
	b.WriteString("|vs=")
	b.WriteString(strconv.Itoa(len(res.Verdicts)))
	b.WriteByte('n')
	b.WriteString(strconv.Itoa(capBucket(firstNO, 2)))
	b.WriteString(strconv.Itoa(capBucket(tailNO, 2)))
	b.WriteString(strconv.Itoa(capBucket(silent, 2)))
	b.WriteString(strconv.Itoa(capBucket(log2Bucket(flips), 3)))
}

// writeCrashAxis renders the crash/verdict interleaving class, a sorted
// multiset over crashes: the quarter of the run the crash landed in and where
// it fell relative to the crashed process's verdict stream (before the first
// verdict, mid-stream, or after the last). Crash-free outcomes render
// nothing.
func writeCrashAxis(b *strings.Builder, o *Outcome, res *monitor.Result) {
	if len(o.Spec.Crashes) == 0 {
		return
	}
	cxs := make([]string, 0, len(o.Spec.Crashes))
	for _, c := range o.Spec.Crashes {
		cxs = append(cxs, strconv.Itoa(quarter(c.Step, o.Spec.Steps))+crashPhase(c, res.StepAt[c.Proc]))
	}
	sort.Strings(cxs)
	b.WriteString("|cx=")
	b.WriteString(strings.Join(cxs, ","))
}

// writeCheckVector renders the per-check ran/skipped vector over the given
// name list: r ran, s skipped, - not applicable this run.
func writeCheckVector(b *strings.Builder, o *Outcome, names []string) {
	ran := map[string]bool{}
	for _, c := range o.Ran {
		ran[c] = true
	}
	skipped := map[string]bool{}
	for _, c := range o.Skipped {
		skipped[c] = true
	}
	for _, name := range names {
		switch {
		case ran[name]:
			b.WriteByte('r')
		case skipped[name]:
			b.WriteByte('s')
		default:
			b.WriteByte('-')
		}
	}
}

// writeNameFold folds the distinct Check names of the findings, in the
// given order, under the axis prefix — each finding kind becomes its own
// coverage class. Shared by the divergence and oracle-failure axes.
func writeNameFold(b *strings.Builder, prefix string, findings []Divergence, order []string) {
	if len(findings) == 0 {
		return
	}
	b.WriteString(prefix)
	names := map[string]bool{}
	for _, d := range findings {
		names[d.Check] = true
	}
	first := true
	for _, name := range order {
		if names[name] {
			if !first {
				b.WriteByte(',')
			}
			b.WriteString(name)
			first = false
		}
	}
}

// objSignature is the object family's coverage signature: the same
// granularity philosophy as signatureOf, with the family/object/impl triple
// anchoring the class and a workload axis replacing the cursor axis (object
// runs have no word cursor). Failed oracles fold like divergences — a spec
// whose schedule exposes a planted bug is a coverage class of its own, which
// is what steers the guided explorer toward bug-adjacent schedules.
func objSignature(o *Outcome, res *monitor.Result) string {
	var b strings.Builder
	b.WriteString(sigVersion)
	b.WriteByte(':')
	b.WriteString(FamObj)
	b.WriteByte('/')
	b.WriteString(o.Spec.Object)
	b.WriteByte('/')
	b.WriteString(o.Spec.Impl)

	writeVerdictShape(&b, res)
	writeCrashAxis(&b, o, res)

	b.WriteString("|ck=")
	writeCheckVector(&b, o, ObjCheckNames())

	// Workload axis: the per-process operation budget (log₂ bucket) and
	// whether the run drained its workload or was cut by the step bound —
	// the boundary the crash/spinlock interactions live on, and the same
	// signal that gates the monitor-lin completeness oracle.
	b.WriteString("|wl=")
	b.WriteString(strconv.Itoa(capBucket(log2Bucket(o.Spec.OpsPerProc), 4)))
	if !res.Drained {
		b.WriteByte('t') // truncated at the step bound
	}

	// Exposed planted bugs fold by oracle name, divergences by check name.
	writeNameFold(&b, "|bug=", o.OracleFailures, oracleNames())
	writeNameFold(&b, "|dv=", o.Divergences, ObjCheckNames())
	return b.String()
}

// msgSignature is the message-passing family's coverage signature: the object
// family's axes — anchored by the msg/object/impl triple — plus a network
// axis, so schedules that differ in delivery order or loss pressure land in
// distinct classes and guided mutation explores the network dimension too.
// Language and object signatures fold over their own check lists and never
// gain an axis here, so every committed drv1/drv2 corpus entry keeps its
// signature bit for bit.
func msgSignature(o *Outcome, res *monitor.Result) string {
	var b strings.Builder
	b.WriteString(sigVersion)
	b.WriteByte(':')
	b.WriteString(FamMsg)
	b.WriteByte('/')
	b.WriteString(o.Spec.Object)
	b.WriteByte('/')
	b.WriteString(o.Spec.Impl)

	writeVerdictShape(&b, res)
	writeCrashAxis(&b, o, res)

	b.WriteString("|ck=")
	writeCheckVector(&b, o, MsgCheckNames())

	b.WriteString("|wl=")
	b.WriteString(strconv.Itoa(capBucket(log2Bucket(o.Spec.OpsPerProc), 4)))
	if !res.Drained {
		b.WriteByte('t')
	}

	// Network axis: the delivery-order kind and a capped log₂ bucket of the
	// loss-schedule length — none/light/heavy loss behave differently long
	// before the exact indices matter.
	b.WriteString("|nt=")
	b.WriteString(o.Spec.NetOrder)
	b.WriteString(strconv.Itoa(capBucket(log2Bucket(len(o.Spec.Drops)), 3)))

	writeNameFold(&b, "|bug=", o.OracleFailures, oracleNames())
	writeNameFold(&b, "|dv=", o.Divergences, MsgCheckNames())
	return b.String()
}

// oracleNames lists the oracle labels in deterministic fold order.
func oracleNames() []string {
	return []string{OracleLin, OracleSC, OracleSECSafety, OracleECSafety}
}

// log2Bucket maps a non-negative count onto 0, 1, 2, ... by bit length:
// 0→0, 1→1, 2..3→2, 4..7→3, ...
func log2Bucket(n int) int { return bits.Len(uint(n)) }

// capBucket clamps a bucket to the top class "max or beyond".
func capBucket(b, max int) int {
	if b > max {
		return max
	}
	return b
}

// quarter maps a step inside [0, bound) onto its quarter 0..3.
func quarter(step, bound int) int {
	if bound <= 0 {
		return 0
	}
	q := 4 * step / bound
	if q > 3 {
		q = 3
	}
	return q
}

// crashPhase classifies a crash against the crashed process's verdict steps:
// "a" before any verdict, "m" between the first and the last, "z" after the
// last.
func crashPhase(c Crash, stepAt []int) string {
	if len(stepAt) == 0 || c.Step < stepAt[0] {
		return "a"
	}
	if c.Step >= stepAt[len(stepAt)-1] {
		return "z"
	}
	return "m"
}
