package explore

// The message-passing scenario family (FamMsg, spec grammar drv3): where the
// object family runs shared-memory implementations, this family runs objects
// *emulated over asynchronous message passing* — the ABD register of package
// abd and the snapshot-counter and coordinator-consensus walks built on it —
// on internal/msgnet under a seeded deterministic network schedule (delivery
// order, delay, reorder and loss) plus the usual crash schedule. The clients
// drive through the same deployment stack as the object family (the timed
// adversary Aτ, the Figure 8 predictive monitor V_O), replica servers run as
// scheduler aux actors, and the exhibited history of the *emulated* object is
// judged offline by the same class oracles, differentially against the
// brute-force reference, and against the monitor's verdict stream.
//
// The oracle split mirrors the object family: a violated property the
// emulation guarantees is a Divergence; a violated property a seeded-bug
// variant forfeits — the ABD read that skips its write-back phase, the
// counter that never propagates increments, the coordinator that echoes each
// proposer's own value — is an OracleFailure, the family's figure of merit.
// Shrinking gains a network axis: bug reproducers drop their loss schedule
// entry by entry before crashes, processes, operations and steps.

import (
	"fmt"

	"github.com/drv-go/drv/internal/abd"
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/msgnet"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/sut"
	"github.com/drv-go/drv/internal/word"
)

// netSalt derives the network-order stream from the spec seed, independent
// of the policy (0x5eed), workload (0x3ead) and guidance (0x9ded) streams.
const netSalt = 0x0abd

// msgImplDef is one registered message-passing emulation variant, with its
// ground truth — the same contract as implDef, but construction needs the
// scenario's network and returns the replica servers to install as aux
// actors alongside the client-side implementation.
type msgImplDef struct {
	// name is the spec slug (drv3:msg/<object>/<name>).
	name string
	// lin guarantees every exhibited history is linearizable.
	lin bool
	// safe guarantees the object's secondary safety oracle.
	safe bool
	// make builds a fresh emulation for n processes on the network. The
	// second return re-derives the replica servers from the live emulation:
	// pooled runners call it again after every Reset, because a counter's
	// cell set (hence its server list) can grow when n does.
	make func(n int, nt *msgnet.Net) (sut.Impl, func() []abd.Server)
}

// msgDef is one registered emulated object: its sequential specification,
// its secondary safety oracle, and its emulation variants (first correct).
type msgDef struct {
	name       string
	obj        spec.Object
	safetyName string
	safety     func(obj spec.Object, w word.Word, ops []word.Operation) string
	impls      []msgImplDef
}

// msgRegistry lists the message-passing scenarios, in deterministic order.
// The ground-truth flags restate what package abd's tests pin: the ABD
// register is atomic (its no-write-back variant is merely regular, and even
// a process's own reads can run backwards, so it forfeits SC too); the
// emulated counter — per-process ABD cells plus a collect read — stays
// linearizable because the cells are monotone single-writer atomic registers
// (its lost-increment variant under-counts and can violate SEC safety when a
// read's quorums miss the incrementing replica); coordinator consensus
// decides the first proposal the coordinator serves (its echo variant
// acknowledges every proposer with its own value, so two completed proposals
// with distinct values disagree).
var msgRegistry = []msgDef{
	{
		name: "register", obj: spec.Register(), safetyName: OracleSC, safety: scViolation,
		impls: []msgImplDef{
			{name: "abd", lin: true, safe: true, make: func(n int, nt *msgnet.Net) (sut.Impl, func() []abd.Server) {
				r := abd.NewRegister("x", n, nt, 0)
				return abd.NewRegisterImpl(r), func() []abd.Server { return []abd.Server{r} }
			}},
			{name: "nowriteback", lin: false, safe: false, make: func(n int, nt *msgnet.Net) (sut.Impl, func() []abd.Server) {
				r := abd.NewRegister("x", n, nt, 0).DropReadWriteBack()
				return abd.NewRegisterImpl(r).WithName("register/nowriteback"), func() []abd.Server { return []abd.Server{r} }
			}},
		},
	},
	{
		name: "counter", obj: spec.Counter(), safetyName: OracleSECSafety, safety: secViolation,
		impls: []msgImplDef{
			{name: "abd", lin: true, safe: true, make: func(n int, nt *msgnet.Net) (sut.Impl, func() []abd.Server) {
				c := abd.NewCounter("c", n, nt)
				return abd.NewCounterImpl(c), func() []abd.Server { return counterServers(c) }
			}},
			{name: "lost", lin: false, safe: false, make: func(n int, nt *msgnet.Net) (sut.Impl, func() []abd.Server) {
				c := abd.NewCounter("c", n, nt).DropIncStore()
				return abd.NewCounterImpl(c).WithName("counter/lost"), func() []abd.Server { return counterServers(c) }
			}},
		},
	},
	{
		name: "consensus", obj: spec.Consensus(), safetyName: OracleSC, safety: scViolation,
		impls: []msgImplDef{
			{name: "coord", lin: true, safe: true, make: func(n int, nt *msgnet.Net) (sut.Impl, func() []abd.Server) {
				c := abd.NewConsensus("k", n, nt)
				return abd.NewConsensusImpl(c), func() []abd.Server { return []abd.Server{c} }
			}},
			{name: "echo", lin: false, safe: false, make: func(n int, nt *msgnet.Net) (sut.Impl, func() []abd.Server) {
				c := abd.NewConsensus("k", n, nt).Echo()
				return abd.NewConsensusImpl(c).WithName("consensus/echo"), func() []abd.Server { return []abd.Server{c} }
			}},
		},
	},
}

// counterServers gathers an emulated counter's per-cell replica servers.
func counterServers(c *abd.Counter) []abd.Server {
	srvs := make([]abd.Server, 0, len(c.Cells()))
	for _, cell := range c.Cells() {
		srvs = append(srvs, cell)
	}
	return srvs
}

// MsgObjects returns the registered emulated-object names, in registry order.
func MsgObjects() []string {
	names := make([]string, 0, len(msgRegistry))
	for _, md := range msgRegistry {
		names = append(names, md.name)
	}
	return names
}

// MsgImplsOf returns the emulation slugs of the object, correct variant
// first, or nil for an object with no message-passing emulation.
func MsgImplsOf(object string) []string {
	for _, md := range msgRegistry {
		if md.name != object {
			continue
		}
		names := make([]string, 0, len(md.impls))
		for _, id := range md.impls {
			names = append(names, id.name)
		}
		return names
	}
	return nil
}

// msgImplByName resolves an object/impl slug pair in the message registry.
func msgImplByName(object, impl string) (msgDef, msgImplDef, error) {
	for _, md := range msgRegistry {
		if md.name != object {
			continue
		}
		for _, id := range md.impls {
			if id.name == impl {
				return md, id, nil
			}
		}
		return msgDef{}, msgImplDef{}, fmt.Errorf("explore: emulated object %q has no implementation %q", object, impl)
	}
	return msgDef{}, msgImplDef{}, fmt.Errorf("explore: unknown emulated object %q", object)
}

// msgService couples the workload service to the scenario's network: a crash
// must reach both the scheduler (stopping the client) and the network
// (emptying the inbox, silencing the replica's aux server, voiding future
// deliveries). Aτ forwards Crash to its inner service, which lands here.
type msgService struct {
	*sut.Service
	net *msgnet.Net
}

// Crash routes a crash into the network; the scheduler half is the runner's.
func (m *msgService) Crash(id int) { m.net.Crash(id) }

// msgSchedule derives the scenario's network schedule: the spec's order and
// loss schedule, seeded from the net stream for the seeded orders.
func msgSchedule(s Spec) msgnet.Schedule {
	sch := msgnet.Schedule{Order: s.NetOrder, Drops: s.Drops}
	if s.NetOrder == msgnet.OrderRandom || s.NetOrder == msgnet.OrderStarve {
		sch.Seed = mix(s.Seed, netSalt)
	}
	return sch
}

// executeMsg runs one message-passing scenario: the emulated object's clients
// under a seeded random workload, its replicas as aux actors, the network
// delivering under the spec's schedule, all wrapped in Aτ and monitored by
// V_O on the runner's pooled session when it has one. With scratch the
// substrate is reused: the network re-arms in place (Schedule.Reset), the
// cached emulation resets against it, and workload, service and Aτ recycle
// their buffers; the Reset contracts make the outcomes byte-identical.
func (r Runner) executeMsg(s Spec) (*Outcome, error) {
	md, id, err := msgImplByName(s.Object, s.Impl)
	if err != nil {
		return nil, err
	}
	crash := r.crashMap(s)

	var nt *msgnet.Net
	var servers []abd.Server
	var inner *msgService
	var tau *adversary.Timed
	if sc := r.scratch; sc != nil {
		nt, err = sc.network(s)
		if err != nil {
			return nil, err
		}
		var impl sut.Impl
		impl, servers = sc.msgImpl(id, s)
		sc.wl.Reset(md.obj, s.N, s.OpsPerProc, s.MutBias, mix(s.Seed, wlSalt))
		sc.svc.Reset(s.N, impl, &sc.wl)
		sc.msgSvc = msgService{Service: &sc.svc, net: nt}
		inner = &sc.msgSvc
		tau = sc.timed(s.N, inner)
	} else {
		nt, err = msgSchedule(s).New(s.N)
		if err != nil {
			return nil, err
		}
		var impl sut.Impl
		var srvFn func() []abd.Server
		impl, srvFn = id.make(s.N, nt)
		servers = srvFn()
		wl := sut.NewRandomWorkload(md.obj, s.N, s.OpsPerProc, s.MutBias, mix(s.Seed, wlSalt))
		inner = &msgService{Service: sut.NewService(s.N, impl, wl), net: nt}
		tau = adversary.NewTimed(s.N, inner, adversary.ArrayAtomic)
	}
	m := monitor.NewLin(md.obj, tau, adversary.ArrayAtomic)
	if r.Unincremental {
		m = monitor.NewLinScratch(md.obj, tau, adversary.ArrayAtomic)
	}
	if r.Wrap != nil {
		m = r.Wrap(m)
	}
	cfg := monitor.Config{
		N:       s.N,
		Monitor: m,
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			// The delivery actor leads the aux list, so a biased policy's
			// cursor lands on it: biased schedules are delivery-eager, the
			// network-side counterpart of the language family's cursor bias.
			aux := []int{nt.Register(rt)}
			aux = append(aux, abd.Servers(rt, s.N, servers...)...)
			return tau, aux
		},
		Policy:   func(aux []int) sched.Policy { return s.policy(aux) },
		MaxSteps: s.Steps,
		Crash:    crash,
	}
	mark := r.stages.start()
	var res *monitor.Result
	if r.Session != nil {
		res = r.Session.Run(cfg)
	} else {
		res = monitor.Run(cfg)
	}
	r.stages.stop(FamMsg, stageExecute, mark)

	out := &Outcome{
		Spec:    s,
		Monitor: m.Name(),
		Label:   id.lin && id.safe,
		Steps:   res.Steps,
		NOs:     res.TotalNO(),
		Digest:  digest(res),
	}
	for p := range res.Verdicts {
		out.Verdicts += len(res.Verdicts[p])
	}
	r.runHistoryChecks(out, md.obj, md.safetyName, md.safety, id.lin, id.safe, len(s.Drops) > 0, res, tau)
	out.Signature = msgSignature(out, res)
	return out, nil
}
