package explore

import (
	"fmt"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/core"
	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// Differential check names.
const (
	// CheckWellFormed: the exhibited history must satisfy the finite-prefix
	// part of Definition 2.1 — an adversary-construction invariant.
	CheckWellFormed = "wellformed"
	// CheckSourcePrefix: per process, the exhibited history must be a
	// prefix of the source's word projection — the cursor may drop crashed
	// processes' symbols and (for Aτ) reorder across processes, but never
	// reorder, invent or lose a live process's events.
	CheckSourcePrefix = "source-prefix"
	// CheckOwnSafety: a counter monitor whose own projection already
	// violates a prefix-falsifying clause — WEC clauses (1)–(2), which the
	// process observes entirely on its own — must report NO from that point
	// on. Evaluated verdict by verdict via Result.HistAt, so it applies to
	// crashed runs and to arbitrarily short prefixes.
	CheckOwnSafety = "own-safety"
	// CheckCrashQuiet: a crashed process reports no verdict after its
	// crash step.
	CheckCrashQuiet = "crash-quiet"
	// CheckLabelSafety: on crash-free runs of an in-language source, the
	// exhibited prefix must pass the language's safety checker — the
	// generator-versus-checker axis of the differential.
	CheckLabelSafety = "label-safety"
	// CheckClass: the family's decidability predicate (WD, PWD or PSD)
	// judged against the source label on crash-free runs — the monitor-
	// versus-oracle axis. Crashes invalidate the ω-label (dropped events
	// change membership), so crashed runs skip it.
	CheckClass = "class"
	// CheckReplay: re-executing the spec must reproduce the digest.
	CheckReplay = "replay"

	// Object-family checks (see sutrun.go):
	//
	// CheckOracle: every property the implementation guarantees must hold on
	// the exhibited history (violations of non-guaranteed properties are
	// OracleFailures — planted bugs found, not divergences).
	CheckOracle = "oracle"
	// CheckBrute: the memoized frontSearch checkers must agree with the
	// exhaustive brute-force reference on small histories.
	CheckBrute = "brute"
	// CheckMonitorLin: V_O's verdict stream against the offline
	// linearizability oracle — no NO on a linearizable history, and (modulo
	// the predictive sketch escape) some NO when the drained crash-free
	// history and its sketch both violate.
	CheckMonitorLin = "monitor-lin"
)

// Divergence is one failed differential check.
type Divergence struct {
	Check  string `json:"check"`
	Detail string `json:"detail"`
}

// evalWindow is the verdict-tail length interpreting the ω-quantifiers
// ("finitely many NOs") on finite runs, as in the Table 1 harness.
const evalWindow = 4

// labelSafetyCap bounds how many history symbols the label-safety oracle
// checks: the sequential-consistency and eventual-ledger checkers test every
// prefix with an exponential-time witness search, so unbounded histories
// would dominate a sweep. A capped check is still sound — any prefix of an
// in-language word must be clean.
const labelSafetyCap = 600

func (o *Outcome) ran(name string)     { o.Ran = append(o.Ran, name) }
func (o *Outcome) skipped(name string) { o.Skipped = append(o.Skipped, name) }

func (o *Outcome) diverge(name, format string, args ...any) {
	o.Divergences = append(o.Divergences, Divergence{Check: name, Detail: fmt.Sprintf(format, args...)})
}

// runChecks evaluates every applicable differential check, appending
// divergences and bookkeeping to the outcome.
func (r Runner) runChecks(out *Outcome, l lang.Lang, lb adversary.Labeled, fam family, res *monitor.Result, tau *adversary.Timed) {
	s := out.Spec
	crashed := len(s.Crashes) > 0

	out.ran(CheckWellFormed)
	if err := word.WellFormed(res.History); err != nil {
		out.diverge(CheckWellFormed, "%v", err)
	}

	out.ran(CheckSourcePrefix)
	checkSourcePrefix(out, lb, fam, res)

	if fam == famWEC || fam == famSEC {
		out.ran(CheckOwnSafety)
		checkOwnSafety(out, res)
	}

	if crashed {
		out.ran(CheckCrashQuiet)
		checkCrashQuiet(out, res)
	}

	// The label-based oracles quantify over the source's ω-word; crashes
	// drop events from the exhibited word, so the label no longer applies.
	if crashed {
		out.skipped(CheckLabelSafety)
		out.skipped(CheckClass)
		return
	}

	out.ran(CheckLabelSafety)
	if lb.In {
		prefix := res.History
		if len(prefix) > labelSafetyCap {
			prefix = prefix[:labelSafetyCap]
		}
		if r.safetyViolated(l, prefix) {
			out.diverge(CheckLabelSafety,
				"source %s is labelled in-language but its exhibited prefix fails the %s safety checker", lb.Name, l.Name)
		}
	}

	r.checkClass(out, l, lb, fam, res, tau)
}

// checkCrashQuiet asserts a crashed process reports no verdict after its
// crash step; shared by both scenario families.
func checkCrashQuiet(out *Outcome, res *monitor.Result) {
	for _, c := range out.Spec.Crashes {
		for k, step := range res.StepAt[c.Proc] {
			if step > c.Step {
				out.diverge(CheckCrashQuiet,
					"process %d crashed at step %d but reported verdict %d at step %d", c.Proc, c.Step, k, step)
				break
			}
		}
	}
}

// checkSourcePrefix re-generates the source and compares the exhibited
// history against it: per-process projections must be prefixes of the
// source's projections, and on untimed crash-free runs the history must be a
// verbatim prefix of the source word (the cursor emits symbols in source
// order).
func checkSourcePrefix(out *Outcome, lb adversary.Labeled, fam family, res *monitor.Result) {
	src := lb.New()
	var w word.Word
	limit := 8*len(res.History) + 256
	for len(w) < limit {
		sym, ok := src.Next()
		if !ok {
			break
		}
		w = append(w, sym)
	}
	if !fam.timed() && len(out.Spec.Crashes) == 0 {
		if len(w) < len(res.History) || !res.History.Equal(w[:len(res.History)]) {
			out.diverge(CheckSourcePrefix, "history is not a verbatim prefix of the source word")
		}
		return
	}
	for p := 0; p < out.Spec.N; p++ {
		hp := res.History.Project(p)
		sp := w.Project(p)
		if len(hp) > len(sp) || !hp.Equal(sp[:len(hp)]) {
			out.diverge(CheckSourcePrefix, "process %d history projection is not a prefix of the source projection", p)
		}
	}
}

// checkOwnSafety evaluates the per-verdict counter oracle: scan the history
// once, recording for each process the earliest history index at which its
// own projection violates WEC clause (1) (read below own preceding incs) or
// clause (2) (read below previous read) — violations the process fully
// observes itself, so any sound weak decider for the counter languages holds
// NO from there on. Then every verdict whose HistAt is past that index must
// be NO.
func checkOwnSafety(out *Outcome, res *monitor.Result) {
	n := out.Spec.N
	violAt := make([]int, n) // earliest violating history index +1, 0 = none
	incs := make([]int64, n)
	lastRead := make([]int64, n)
	hasRead := make([]bool, n)
	pendingInc := make([]bool, n)
	for i, sym := range res.History {
		p := sym.Proc
		switch {
		case sym.Kind == word.Inv && sym.Op == spec.OpInc:
			pendingInc[p] = true
		case sym.Kind == word.Res && sym.Op == spec.OpInc:
			if pendingInc[p] {
				incs[p]++
				pendingInc[p] = false
			}
		case sym.Kind == word.Res && sym.Op == spec.OpRead:
			v, ok := sym.Val.(word.Int)
			if !ok {
				continue
			}
			if violAt[p] == 0 && (int64(v) < incs[p] || (hasRead[p] && int64(v) < lastRead[p])) {
				violAt[p] = i + 1
			}
			lastRead[p] = int64(v)
			hasRead[p] = true
		}
	}
	for p := 0; p < n; p++ {
		if violAt[p] == 0 {
			continue
		}
		for k, v := range res.Verdicts[p] {
			if res.HistAt[p][k] >= violAt[p] && v != monitor.No {
				out.diverge(CheckOwnSafety,
					"process %d verdict %d is %s although its own projection violated a safety clause at history index %d",
					p, k, v, violAt[p]-1)
				break
			}
		}
	}
}

// checkClass judges the family's decidability predicate against the source
// label. The weak predicates read verdict tails, which is only meaningful
// once every process got past the sources' transient phases; runs whose
// verdict streams are too short for the window proxy are skipped rather than
// misjudged.
//
// For the predictive families the Out-side carries the escape clause of
// Definitions 6.1/6.2, mirrored from the In-side: a predictive monitor
// answers for the sketch x~(E), not for x(E), so it is excused from
// reporting a real-time-sensitive safety violation of the exhibited word
// exactly when the execution's sketch is clean — the views genuinely lost
// the real-time order that made the word violating (the explorer's random
// schedules reach these executions; the curated Table 1 schedules do not).
// No such excuse exists for violations the monitors observe without
// real-time information: liveness violations (announced counts never
// converge) and violations the sketch itself exhibits.
func (r Runner) checkClass(out *Outcome, l lang.Lang, lb adversary.Labeled, fam family, res *monitor.Result, tau *adversary.Timed) {
	n := out.Spec.N
	sketchBad := func(bad func(word.Word) bool) bool {
		sk, err := res.Sketch(n, tau.InvAt)
		if err != nil {
			return false
		}
		return bad(sk)
	}
	cappedHistory := res.History
	if len(cappedHistory) > labelSafetyCap {
		cappedHistory = cappedHistory[:labelSafetyCap]
	}
	minVerdicts := 1
	if fam == famWEC || fam == famSEC {
		minVerdicts = evalWindow + 1
	}
	for p := 0; p < n; p++ {
		if len(res.Verdicts[p]) < minVerdicts {
			out.skipped(CheckClass)
			return
		}
	}

	switch fam {
	case famWEC:
		// WEC_COUNT is real-time oblivious: Figure 5 needs no views and has
		// no escape, so the plain WD predicate applies.
		out.ran(CheckClass)
		ev := core.Eval{Class: core.WD, Window: evalWindow}
		if err := ev.Check(res, lb.In); err != nil {
			out.diverge(CheckClass, "WD source %s: %v", lb.Name, err)
		}

	case famSEC:
		out.ran(CheckClass)
		secBad := func(w word.Word) bool { return check.SECSafety(w) != nil }
		if lb.In {
			ev := core.Eval{Class: core.PWD, Window: evalWindow,
				SketchViolated: func() bool { return sketchBad(secBad) }}
			if err := ev.Check(res, true); err != nil {
				out.diverge(CheckClass, "PWD source %s: %v", lb.Name, err)
			}
			return
		}
		// Out-side. The label describes the source word; the monitor's
		// input is the outer word of Aτ, whose wider operation intervals
		// can legitimately repair a real-time-sensitive violation (the
		// clause-4 over-read becomes concurrent with its inc). Judge what
		// was exhibited: a safety-violating outer word must draw NO unless
		// even the sketch lost the violation; a safety-clean one only obliges
		// the monitor when it visibly fails to converge (the view-independent
		// liveness clause).
		switch {
		case secBad(res.History):
			if !sketchBad(secBad) {
				return // real-time violation invisible in the sketch: excused
			}
		case check.Converges(res.History):
			return // the exhibited word was repaired into the language
		}
		for p := 0; p < n; p++ {
			if !res.NOInTail(p, evalWindow) {
				out.diverge(CheckClass,
					"PWD source %s: exhibited word outside language (violation visible to the monitor) but process %d stopped reporting NO", lb.Name, p)
				return
			}
		}

	case famPred:
		out.ran(CheckClass)
		langBad := func(w word.Word) bool { return r.safetyViolated(l, w) }
		if lb.In {
			ev := core.Eval{Class: core.PSD,
				SketchViolated: func() bool { return sketchBad(langBad) }}
			if err := ev.Check(res, true); err != nil {
				out.diverge(CheckClass, "PSD source %s: %v", lb.Name, err)
			}
			return
		}
		if res.TotalNO() == 0 && langBad(cappedHistory) && sketchBad(langBad) {
			out.diverge(CheckClass,
				"PSD source %s: exhibited word and sketch both violate %s safety but no process ever reported NO", lb.Name, l.Name)
		}

	default: // famECLed: undecidable in every class, no verdict oracle
		out.skipped(CheckClass)
	}
}
