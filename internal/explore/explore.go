// Package explore is a seeded, deterministic scenario-exploration engine:
// randomized differential testing for the whole monitoring stack. The paper's
// Table 1 experiments exercise a curated execution per cell, but its
// decidability claims quantify over all asynchronous fault-prone executions;
// this package samples that space. Each scenario draws a random scheduling
// policy (package sched), a random crash schedule, and a labelled adversary
// source (package lang), runs a real monitor through monitor.Run, and
// differentially checks the verdict stream against ground-truth oracles: the
// languages' safety checkers (package check), the sources' ω-membership
// labels, and structural invariants of the adversary construction.
//
// Everything is deterministic in the master seed: scenario i of master seed m
// is the same execution no matter how many workers run (scenarios fan out on
// the experiment package's ForEach pool and fold back by index), so an
// explorer report is byte-reproducible and any divergence is replayable from
// its one-line seed spec. A divergent scenario is shrunk — fewer crashes,
// fewer processes, fewer scheduler steps — to a minimal reproducer before it
// is reported.
//
// cmd/drvexplore is the command-line front end; corpus_test.go pins a
// regression corpus of interesting specs.
package explore

import (
	"fmt"
	"sort"
	"sync"

	"github.com/drv-go/drv/internal/experiment"
	"github.com/drv-go/drv/internal/monitor"
)

// Options configures one exploration run.
type Options struct {
	// Master seeds the whole exploration; scenario i derives its own
	// independent seed from (Master, i).
	Master int64
	// Scenarios is how many random scenarios to run.
	Scenarios int
	// Workers is the worker-pool size; ≤ 1 runs scenarios sequentially.
	Workers int
	// Gen constrains scenario generation.
	Gen GenConfig
	// Replay re-executes every scenario and reports a divergence when the
	// two runs' digests differ — the determinism axis of the differential
	// check. Doubles the work.
	Replay bool
	// Shrink minimizes divergent scenarios to small reproducers.
	Shrink bool
	// ShrinkBudget bounds the number of candidate executions one shrink may
	// spend (0 = default).
	ShrinkBudget int
	// Unpooled makes every scenario allocate a fresh runtime instead of
	// reusing its worker's pooled runtime+session pair. Reports are
	// byte-identical either way; the flag exists for differential tests and
	// as an escape hatch.
	Unpooled bool
	// Wrap, when non-nil, wraps every scenario's monitor; tests use it to
	// inject synthetically broken monitors and assert the explorer catches
	// them.
	Wrap func(monitor.Monitor) monitor.Monitor
	// OnScenario, when non-nil, receives one event per finished scenario.
	// Events are serialized but arrive in nondeterministic order when
	// Workers > 1.
	OnScenario func(index int, out *Outcome)
}

// Failure is one divergent scenario of a report.
type Failure struct {
	// Spec is the scenario's seed spec, replayable with drvexplore -replay.
	Spec string `json:"spec"`
	// Divergences are the failed checks.
	Divergences []Divergence `json:"divergences"`
	// Shrunk is the minimized reproducer ("" when shrinking was off or
	// failed to reproduce).
	Shrunk string `json:"shrunk,omitempty"`
	// ShrunkSteps is the scheduler step bound of the minimized reproducer.
	ShrunkSteps int `json:"shrunk_steps,omitempty"`
	// ShrunkDivergences are the checks that still fail on the reproducer.
	ShrunkDivergences []Divergence `json:"shrunk_divergences,omitempty"`
}

// Report is the deterministic outcome of an exploration.
type Report struct {
	Master    int64 `json:"master"`
	Scenarios int   `json:"scenarios"`
	// Failures lists divergent scenarios in scenario order.
	Failures []Failure `json:"failures"`
	// Checks counts how many times each differential check ran.
	Checks map[string]int `json:"checks"`
	// Skipped counts checks that did not apply (crashed runs skip label
	// checks, short runs skip tail proxies).
	Skipped map[string]int `json:"skipped"`
	// ByLang counts scenarios per language.
	ByLang map[string]int `json:"by_lang"`
	// Crashed counts scenarios that included at least one crash.
	Crashed int `json:"crashed"`
	// TotalSteps and TotalVerdicts aggregate the executions (replay runs
	// excluded).
	TotalSteps    int64 `json:"total_steps"`
	TotalVerdicts int64 `json:"total_verdicts"`
}

// Divergent reports whether the exploration found any divergence.
func (r *Report) Divergent() bool { return len(r.Failures) > 0 }

// Explore runs the configured number of random scenarios on a bounded worker
// pool and folds the outcomes into a report that is identical for every
// worker count.
func Explore(opts Options) (*Report, error) {
	if opts.Scenarios < 0 {
		return nil, fmt.Errorf("explore: negative scenario count %d", opts.Scenarios)
	}
	if err := opts.Gen.validate(); err != nil {
		return nil, err
	}
	specs := make([]Spec, opts.Scenarios)
	for i := range specs {
		specs[i] = NewSpec(opts.Master, i, opts.Gen)
	}

	// One runner per worker: each owns a pooled runtime+session pair for its
	// whole batch (unless pooling is off), so scenario setup stops paying
	// per-execution goroutine spawns and result allocations.
	runners := make([]Runner, experiment.WorkerCount(opts.Scenarios, opts.Workers))
	for w := range runners {
		runners[w] = Runner{Wrap: opts.Wrap}
		if !opts.Unpooled {
			runners[w].Session = monitor.NewSession()
		}
	}
	defer func() {
		for _, r := range runners {
			if r.Session != nil {
				r.Session.Close()
			}
		}
	}()

	outcomes := make([]*Outcome, opts.Scenarios)
	errs := make([]error, opts.Scenarios)
	var mu sync.Mutex
	experiment.ForEachWorker(opts.Scenarios, opts.Workers, func(w, i int) {
		runner := runners[w]
		out, err := runner.Execute(specs[i])
		if err == nil && opts.Replay {
			again, err2 := runner.Execute(specs[i])
			if err2 != nil {
				err = err2
			} else {
				out.Ran = append(out.Ran, CheckReplay)
				if again.Digest != out.Digest {
					out.Divergences = append(out.Divergences, Divergence{
						Check:  CheckReplay,
						Detail: fmt.Sprintf("digest %s on first run, %s on replay", out.Digest, again.Digest),
					})
				}
			}
		}
		outcomes[i], errs[i] = out, err
		if opts.OnScenario != nil && out != nil {
			mu.Lock()
			opts.OnScenario(i, out)
			mu.Unlock()
		}
	})

	rep := &Report{
		Master:    opts.Master,
		Scenarios: opts.Scenarios,
		Failures:  []Failure{},
		Checks:    map[string]int{},
		Skipped:   map[string]int{},
		ByLang:    map[string]int{},
	}
	for i, out := range outcomes {
		if errs[i] != nil {
			return nil, fmt.Errorf("explore: scenario %d (%s): %w", i, specs[i], errs[i])
		}
		rep.ByLang[out.Spec.Lang]++
		if len(out.Spec.Crashes) > 0 {
			rep.Crashed++
		}
		for _, c := range out.Ran {
			rep.Checks[c]++
		}
		for _, c := range out.Skipped {
			rep.Skipped[c]++
		}
		rep.TotalSteps += int64(out.Steps)
		rep.TotalVerdicts += int64(out.Verdicts)
		if len(out.Divergences) == 0 {
			continue
		}
		f := Failure{Spec: out.Spec.String(), Divergences: out.Divergences}
		if opts.Shrink {
			// The fold runs after every worker has drained, so worker 0's
			// pooled runner is free to replay shrink candidates.
			shrunk, still := ShrinkSpec(out.Spec, runners[0], opts.ShrinkBudget)
			if len(still) > 0 {
				f.Shrunk = shrunk.String()
				f.ShrunkSteps = shrunk.Steps
				f.ShrunkDivergences = still
			}
		}
		rep.Failures = append(rep.Failures, f)
	}
	return rep, nil
}

// CheckNames returns the names of every differential check the explorer can
// run, sorted; reports index their Checks/Skipped maps by these.
func CheckNames() []string {
	names := []string{
		CheckWellFormed, CheckSourcePrefix, CheckOwnSafety, CheckCrashQuiet,
		CheckLabelSafety, CheckClass, CheckReplay,
	}
	sort.Strings(names)
	return names
}
