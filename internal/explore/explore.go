// Package explore is a seeded, deterministic scenario-exploration engine:
// randomized differential testing for the whole monitoring stack. The paper's
// Table 1 experiments exercise a curated execution per cell, but its
// decidability claims quantify over all asynchronous fault-prone executions;
// this package samples that space. Each scenario draws a random scheduling
// policy (package sched), a random crash schedule, and a labelled adversary
// source (package lang), runs a real monitor through monitor.Run, and
// differentially checks the verdict stream against ground-truth oracles: the
// languages' safety checkers (package check), the sources' ω-membership
// labels, and structural invariants of the adversary construction.
//
// Everything is deterministic in the master seed: scenario i of master seed m
// is the same execution no matter how many workers run (scenarios fan out on
// the experiment package's ForEach pool and fold back by index), so an
// explorer report is byte-reproducible and any divergence is replayable from
// its one-line seed spec. A divergent scenario is shrunk — fewer crashes,
// fewer processes, fewer scheduler steps — to a minimal reproducer before it
// is reported.
//
// Exploration can be coverage-guided: every outcome folds into a compact
// deterministic signature (coverage.go — verdict-stream shape, crash/verdict
// interleaving class, the ran/skipped check vector, adversary cursor stats),
// a corpus (corpus.go) keeps one spec per novel signature, and each round
// splits its budget between fresh random specs and seeded mutations of
// corpus entries (mutate.go). Signatures fold in scenario-index order
// between rounds, so a guided sweep stays byte-deterministic in the master
// seed and independent of the worker count, exactly like a blind one.
//
// A second scenario family — the object family, spec grammar drv2 — swaps
// the scripted adversary for the real concurrent implementations of package
// sut: each scenario runs a correct or seeded-bug implementation (queue,
// stack, register, counter, ledger) under a seeded random workload through
// the timed adversary Aτ and the Figure 8 predictive monitor, judges the
// exhibited history with the matching check oracle (differentially against
// the brute-force reference on small histories) and the verdict stream
// against the offline oracle under the predictive sketch escape. Violations
// of properties the implementation guarantees are divergences; violations
// of properties a seeded-bug implementation forfeits are bug findings,
// shrunk to minimal reproducers and summarized per implementation in the
// report (see sutrun.go).
//
// A third family — the message-passing family, spec grammar drv3 — runs
// objects emulated over asynchronous message passing (internal/msgnet): the
// ABD register of package abd and the counter and consensus walks built on
// it, each in a correct and a seeded-bug variant, under a deterministic
// seeded network schedule (delivery order, delay, reorder and explicit
// message loss) plus the usual crash schedule. The same Aτ + V_O stack
// monitors the emulated object's history, the same oracle battery judges it,
// and coverage signatures gain a network axis; shrinking gains a
// message-schedule axis, dropping loss entries before crashes, processes,
// operations and steps (see msgrun.go).
//
// cmd/drvexplore is the command-line front end; corpus_test.go pins a
// regression corpus of interesting specs, and testdata/corpus
// (language family), testdata/corpus-obj (object family) and
// testdata/corpus-msg (message-passing family) hold the committed seed
// corpora guided runs start from.
package explore

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/drv-go/drv/internal/experiment"
	"github.com/drv-go/drv/internal/monitor"
)

// Options configures one exploration run.
type Options struct {
	// Master seeds the whole exploration; scenario i derives its own
	// independent seed from (Master, i).
	Master int64
	// Scenarios is how many random scenarios to run.
	Scenarios int
	// Workers is the worker-pool size; ≤ 1 runs scenarios sequentially.
	Workers int
	// Gen constrains scenario generation.
	Gen GenConfig
	// Replay re-executes every scenario and reports a divergence when the
	// two runs' digests differ — the determinism axis of the differential
	// check. Doubles the work.
	Replay bool
	// Shrink minimizes divergent scenarios to small reproducers.
	Shrink bool
	// ShrinkBudget bounds the number of candidate executions one shrink may
	// spend (0 = default).
	ShrinkBudget int
	// Unpooled makes every scenario allocate a fresh runtime instead of
	// reusing its worker's pooled runtime+session pair. Reports are
	// byte-identical either way; the flag exists for differential tests and
	// as an escape hatch.
	Unpooled bool
	// Unincremental disables the incremental consistency checkers (see
	// Runner.Unincremental): every witness search re-runs from scratch.
	// Reports are byte-identical either way; the flag exists for differential
	// tests and as an escape hatch while the incremental path is new.
	Unincremental bool
	// StageStats, when true, adds a per-family, per-stage cost breakdown
	// (generate/execute/monitor/check wall time and allocations) to the
	// report's Stages field. Off by default: stage timing is nondeterministic,
	// so reports with it on are not byte-comparable, and the allocation deltas
	// are process-global (exact only at Workers <= 1).
	StageStats bool
	// Corpus, when non-nil, turns the sweep coverage-guided: mutation draws
	// take parents from it, and specs producing coverage signatures no
	// corpus entry covers are added to it as the sweep runs (the caller owns
	// persistence via Corpus.SaveNew). Growth is folded in scenario-index
	// order between rounds, so a guided report is as worker-count-
	// independent as a blind one.
	Corpus *Corpus
	// MutateFrac ∈ [0,1] is the fraction of the scenario budget spent
	// mutating corpus entries instead of drawing fresh random specs. 0, or
	// an empty corpus, reproduces the blind sweep scenario for scenario.
	MutateFrac float64
	// Round is the number of scenarios run between corpus folds (0 = the
	// default). Smaller rounds feed discoveries back into mutation sooner at
	// slightly more fold overhead; the round size must be identical for two
	// runs to compare byte-for-byte, and is independent of Workers.
	Round int
	// Wrap, when non-nil, wraps every scenario's monitor; tests use it to
	// inject synthetically broken monitors and assert the explorer catches
	// them.
	Wrap func(monitor.Monitor) monitor.Monitor
	// OnScenario, when non-nil, receives one event per finished scenario.
	// Events are serialized but arrive in nondeterministic order when
	// Workers > 1.
	OnScenario func(index int, out *Outcome)
}

// Failure is one divergent scenario of a report.
type Failure struct {
	// Spec is the scenario's seed spec, replayable with drvexplore -replay.
	Spec string `json:"spec"`
	// Divergences are the failed checks.
	Divergences []Divergence `json:"divergences"`
	// Shrunk is the minimized reproducer ("" when shrinking was off or
	// failed to reproduce).
	Shrunk string `json:"shrunk,omitempty"`
	// ShrunkSteps is the scheduler step bound of the minimized reproducer.
	ShrunkSteps int `json:"shrunk_steps,omitempty"`
	// ShrunkDivergences are the checks that still fail on the reproducer.
	ShrunkDivergences []Divergence `json:"shrunk_divergences,omitempty"`
}

// Report is the deterministic outcome of an exploration.
type Report struct {
	Master    int64 `json:"master"`
	Scenarios int   `json:"scenarios"`
	// Failures lists divergent scenarios in scenario order.
	Failures []Failure `json:"failures"`
	// Checks counts how many times each differential check ran.
	Checks map[string]int `json:"checks"`
	// Skipped counts checks that did not apply (crashed runs skip label
	// checks, short runs skip tail proxies).
	Skipped map[string]int `json:"skipped"`
	// ByLang counts scenarios per language (language family).
	ByLang map[string]int `json:"by_lang"`
	// ByObject counts scenarios per object/impl pair (object family); nil
	// when the sweep ran no object scenarios, so language-only reports keep
	// their exact shape.
	ByObject map[string]int `json:"by_object,omitempty"`
	// Crashed counts scenarios that included at least one crash.
	Crashed int `json:"crashed"`
	// TotalSteps and TotalVerdicts aggregate the executions (replay runs
	// excluded).
	TotalSteps    int64 `json:"total_steps"`
	TotalVerdicts int64 `json:"total_verdicts"`
	// Coverage counts the distinct coverage signatures the sweep produced —
	// the guided explorer's figure of merit.
	Coverage int `json:"coverage"`
	// Mutated counts scenarios derived by mutating corpus entries (the rest
	// were fresh random draws).
	Mutated int `json:"mutated"`
	// CorpusSeeds is the corpus size when the sweep started; CorpusNew is
	// how many novel-signature specs the sweep added to it.
	CorpusSeeds int `json:"corpus_seeds,omitempty"`
	CorpusNew   int `json:"corpus_new,omitempty"`
	// BugScenarios counts object scenarios whose schedule exposed a planted
	// implementation bug (an oracle failure on a non-guaranteed property).
	BugScenarios int `json:"bug_scenarios,omitempty"`
	// Bugs summarizes the exposed implementation bugs, one entry per
	// object/impl pair in first-hit scenario order, each with a shrunk
	// reproducer when shrinking is on.
	Bugs []Bug `json:"bugs,omitempty"`
	// Stages is the opt-in per-family, per-stage cost breakdown (see
	// Options.StageStats); nil when profiling was off, so default reports
	// keep their exact shape.
	Stages StageStats `json:"stages,omitempty"`
}

// Bug is one exposed implementation bug: the first scenario that tripped an
// oracle the implementation does not guarantee, minimized to a small
// reproducer. Where a Failure indicts the monitoring stack, a Bug indicts
// the system under test — finding these is what the object family is for.
type Bug struct {
	// Object and Impl name the registry entry (e.g. "queue", "lifo").
	Object string `json:"object"`
	Impl   string `json:"impl"`
	// Spec is the first scenario that exposed the bug.
	Spec string `json:"spec"`
	// Failures are the violated oracles of that scenario.
	Failures []Divergence `json:"failures"`
	// Count is how many scenarios of the sweep exposed this impl's bug.
	Count int `json:"count"`
	// Shrunk is the minimized reproducer ("" when shrinking was off or
	// failed to reproduce); ShrunkSteps its scheduler bound and
	// ShrunkFailures the oracles it still violates.
	Shrunk         string       `json:"shrunk,omitempty"`
	ShrunkSteps    int          `json:"shrunk_steps,omitempty"`
	ShrunkFailures []Divergence `json:"shrunk_failures,omitempty"`
}

// Divergent reports whether the exploration found any divergence.
func (r *Report) Divergent() bool { return len(r.Failures) > 0 }

// defaultRound is the scenarios-per-round fold granularity of a guided
// sweep: small enough that discoveries feed back into mutation within a few
// hundred scenarios, large enough that every worker of a typical pool has a
// full batch per round.
const defaultRound = 64

// guidedSalt decorrelates the guidance stream (the mutate-or-fresh coin and
// the mutation draws for scenario i) from the generation stream NewSpec
// consumes, so a blind sweep's scenarios are untouched by guidance being on.
const guidedSalt = 0x9ded

// Explore runs the configured number of scenarios on a bounded worker pool
// and folds the outcomes into a report that is identical for every worker
// count. With a corpus and MutateFrac > 0 the sweep is coverage-guided: it
// runs in rounds, splitting each round's budget between fresh random specs
// and mutations of corpus entries, and folds novel-signature specs into the
// corpus between rounds (in scenario-index order, so guidance is as
// deterministic as generation).
func Explore(opts Options) (*Report, error) {
	if opts.Scenarios < 0 {
		return nil, fmt.Errorf("explore: negative scenario count %d", opts.Scenarios)
	}
	if opts.MutateFrac < 0 || opts.MutateFrac > 1 {
		return nil, fmt.Errorf("explore: MutateFrac %v outside [0,1]", opts.MutateFrac)
	}
	if err := opts.Gen.validate(); err != nil {
		return nil, err
	}
	round := opts.Round
	if round <= 0 {
		round = defaultRound
	}

	// One runner per worker: each owns a pooled runtime+session pair and a
	// pooled execution substrate (SUT instances, workload, service, timed
	// adversary, network — see Runner.Pooled) for the whole sweep, unless
	// pooling is off, so scenario setup stops paying per-execution goroutine
	// spawns, result allocations and substrate rebuilds. The pool itself
	// persists across rounds too.
	pool := experiment.NewPool(experiment.WorkerCount(opts.Scenarios, opts.Workers))
	defer pool.Close()
	runners := make([]Runner, pool.Workers())
	var genStages *stageRecorder
	if opts.StageStats {
		genStages = newStageRecorder()
	}
	for w := range runners {
		runners[w] = Runner{Wrap: opts.Wrap, Unincremental: opts.Unincremental}
		if !opts.Unpooled {
			runners[w].Session = monitor.NewSession()
			runners[w] = runners[w].Pooled()
		}
		if opts.StageStats {
			runners[w].stages = newStageRecorder()
		}
	}
	defer func() {
		for _, r := range runners {
			if r.Session != nil {
				r.Session.Close()
			}
		}
	}()

	rep := &Report{
		Master:    opts.Master,
		Scenarios: opts.Scenarios,
		Failures:  []Failure{},
		Checks:    map[string]int{},
		Skipped:   map[string]int{},
		ByLang:    map[string]int{},
	}
	if opts.Corpus != nil {
		rep.CorpusSeeds = opts.Corpus.Len()
	}

	specs := make([]Spec, opts.Scenarios)
	outcomes := make([]*Outcome, opts.Scenarios)
	errs := make([]error, opts.Scenarios)
	seen := map[string]bool{}
	var mu sync.Mutex
	// The generator and guidance rngs are reused across indices by reseeding:
	// rand.Rand.Seed reproduces exactly the stream a fresh rand.NewSource
	// yields, so the draw sequences — hence the specs — are byte-identical to
	// per-index construction, without the two rng+source allocations per
	// scenario. Spec building is sequential, so sharing them is race-free.
	genRng := rand.New(rand.NewSource(0))
	guideRng := rand.New(rand.NewSource(0))
	for next := 0; next < opts.Scenarios; next += round {
		batch := round
		if next+batch > opts.Scenarios {
			batch = opts.Scenarios - next
		}
		// Build the round's specs sequentially: the mutate-or-fresh coin and
		// the mutation itself draw from a per-index stream independent of
		// the one NewSpec consumes, so MutateFrac 0 reproduces the blind
		// sweep exactly and worker count never enters.
		for i := next; i < next+batch; i++ {
			mark := genStages.start()
			if opts.Corpus != nil && opts.Corpus.Len() > 0 {
				guideRng.Seed(mix(mix(opts.Master, guidedSalt), int64(i)))
				if guideRng.Float64() < opts.MutateFrac {
					parent := opts.Corpus.At(guideRng.Intn(opts.Corpus.Len()))
					specs[i] = Mutate(parent, guideRng, opts.Gen)
					rep.Mutated++
					genStages.stop(specs[i].Fam(), stageGenerate, mark)
					continue
				}
			}
			genRng.Seed(mix(opts.Master, int64(i)))
			specs[i] = newSpecSeeded(genRng, opts.Gen)
			genStages.stop(specs[i].Fam(), stageGenerate, mark)
		}

		pool.Run(batch, func(w, j int) {
			i := next + j
			runner := runners[w]
			out, err := runner.Execute(specs[i])
			if err == nil && opts.Replay {
				again, err2 := runner.Execute(specs[i])
				if err2 != nil {
					err = err2
				} else {
					out.Ran = append(out.Ran, CheckReplay)
					if again.Digest != out.Digest {
						out.Divergences = append(out.Divergences, Divergence{
							Check:  CheckReplay,
							Detail: fmt.Sprintf("digest %s on first run, %s on replay", out.Digest, again.Digest),
						})
					}
				}
			}
			outcomes[i], errs[i] = out, err
			if opts.OnScenario != nil && out != nil {
				mu.Lock()
				opts.OnScenario(i, out)
				mu.Unlock()
			}
		})

		// Fold the round in scenario-index order: aggregate counters, record
		// coverage, grow the corpus with novel-signature specs, and shrink
		// divergences (every worker has drained, so worker 0's pooled runner
		// is free to replay shrink candidates).
		for i := next; i < next+batch; i++ {
			if errs[i] != nil {
				return nil, fmt.Errorf("explore: scenario %d (%s): %w", i, specs[i], errs[i])
			}
			out := outcomes[i]
			if out.Spec.Fam() == FamObj || out.Spec.Fam() == FamMsg {
				if rep.ByObject == nil {
					rep.ByObject = map[string]int{}
				}
				// Keys stay unambiguous across families: the emulation slugs
				// (abd, nowriteback, lost, coord, ...) never collide with the
				// shared-memory ones.
				rep.ByObject[out.Spec.Object+"/"+out.Spec.Impl]++
			} else {
				rep.ByLang[out.Spec.Lang]++
			}
			if len(out.Spec.Crashes) > 0 {
				rep.Crashed++
			}
			for _, c := range out.Ran {
				rep.Checks[c]++
			}
			for _, c := range out.Skipped {
				rep.Skipped[c]++
			}
			rep.TotalSteps += int64(out.Steps)
			rep.TotalVerdicts += int64(out.Verdicts)
			if !seen[out.Signature] {
				seen[out.Signature] = true
				rep.Coverage++
				if opts.Corpus != nil && !opts.Corpus.HasSig(out.Signature) {
					opts.Corpus.Add(out.Spec, out.Signature)
				}
			}
			if len(out.OracleFailures) > 0 {
				rep.BugScenarios++
				rep.foldBug(out, runners[0], opts)
			}
			if len(out.Divergences) == 0 {
				continue
			}
			f := Failure{Spec: out.Spec.String(), Divergences: out.Divergences}
			if opts.Shrink {
				shrunk, still := ShrinkSpec(out.Spec, runners[0], opts.ShrinkBudget)
				if len(still) > 0 {
					f.Shrunk = shrunk.String()
					f.ShrunkSteps = shrunk.Steps
					f.ShrunkDivergences = still
				}
			}
			rep.Failures = append(rep.Failures, f)
		}
	}
	if opts.Corpus != nil {
		rep.CorpusNew = opts.Corpus.Len() - rep.CorpusSeeds
	}
	if opts.StageStats {
		stats := StageStats{}
		stats.merge(genStages.stats)
		for _, r := range runners {
			stats.merge(r.stages.stats)
		}
		rep.Stages = stats
	}
	return rep, nil
}

// foldBug accounts one bug-exposing object scenario: the first hit per
// object/impl pair becomes a Bug entry (shrunk to a minimal reproducer when
// shrinking is on — one shrink per impl, so a sweep saturated with findings
// stays cheap), later hits only bump its count. Called in scenario-index
// order, so the Bugs list is as worker-count-independent as the rest of the
// report.
func (r *Report) foldBug(out *Outcome, runner Runner, opts Options) {
	for i := range r.Bugs {
		if r.Bugs[i].Object == out.Spec.Object && r.Bugs[i].Impl == out.Spec.Impl {
			r.Bugs[i].Count++
			return
		}
	}
	b := Bug{
		Object:   out.Spec.Object,
		Impl:     out.Spec.Impl,
		Spec:     out.Spec.String(),
		Failures: out.OracleFailures,
		Count:    1,
	}
	if opts.Shrink {
		shrunk, still := ShrinkBugSpec(out.Spec, runner, opts.ShrinkBudget)
		if len(still) > 0 {
			b.Shrunk = shrunk.String()
			b.ShrunkSteps = shrunk.Steps
			b.ShrunkFailures = still
		}
	}
	r.Bugs = append(r.Bugs, b)
}

// langCheckNames returns the language family's differential checks, sorted.
// The coverage signature's check vector folds over exactly this list, so it
// must never change shape when other families gain checks — a longer vector
// would re-classify every committed corpus entry.
func langCheckNames() []string {
	names := []string{
		CheckWellFormed, CheckSourcePrefix, CheckOwnSafety, CheckCrashQuiet,
		CheckLabelSafety, CheckClass, CheckReplay,
	}
	sort.Strings(names)
	return names
}

// ObjCheckNames returns the object family's differential checks, sorted;
// the object coverage signature's check vector folds over this list.
func ObjCheckNames() []string {
	names := []string{
		CheckWellFormed, CheckCrashQuiet, CheckOracle, CheckBrute,
		CheckMonitorLin, CheckReplay,
	}
	sort.Strings(names)
	return names
}

// MsgCheckNames returns the message-passing family's differential checks,
// sorted; the msg coverage signature's check vector folds over this list. The
// family runs the object family's battery (the emulated object's history is
// judged by the same oracles), but the list is its own so either family can
// gain a check without re-classifying the other's committed corpus.
func MsgCheckNames() []string {
	names := []string{
		CheckWellFormed, CheckCrashQuiet, CheckOracle, CheckBrute,
		CheckMonitorLin, CheckReplay,
	}
	sort.Strings(names)
	return names
}

// CheckNames returns the names of every differential check the explorer can
// run across both scenario families, sorted and deduplicated; reports index
// their Checks/Skipped maps by these.
func CheckNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, name := range append(append(langCheckNames(), ObjCheckNames()...), MsgCheckNames()...) {
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
