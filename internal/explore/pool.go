package explore

// Pooled per-run transient state. A Runner without scratch allocates every
// piece of a scenario's execution substrate fresh — workload, service, timed
// adversary, crash schedule, network, implementation instance — and drops it
// all on the floor when the scenario ends. A Runner with scratch (see
// Runner.Pooled) instead keeps one instance of each per worker and re-arms it
// through the Reset contracts (sut.Impl.Reset, sut.Service.Reset,
// sut.RandomWorkload.Reset, adversary.Timed.Reset, msgnet.Schedule.Reset):
// the pooled counterpart, on the execution side, of what monitor.Session is
// on the runtime side and check.Pool is on the oracle side. Outcomes are
// byte-identical either way — the Reset contracts guarantee a reused instance
// exhibits exactly a fresh one's behaviour — which the reuse-vs-fresh
// differential tests pin per registered implementation.

import (
	"github.com/drv-go/drv/internal/abd"
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/msgnet"
	"github.com/drv-go/drv/internal/sut"
)

// implKey identifies one registered implementation within its family's
// registry; object and impl slugs never collide across families.
type implKey struct{ object, impl string }

// msgEntry caches one message-passing emulation bound to the scratch's
// pooled network: the client-side impl plus the closure re-deriving its
// replica servers (a counter's cell set can grow when Reset raises n, so the
// server list cannot be cached once and for all).
type msgEntry struct {
	impl    sut.Impl
	servers func() []abd.Server
}

// runScratch holds a Runner's reusable execution substrate. It is owned by
// exactly one worker and never shared, so no synchronization is needed.
type runScratch struct {
	// impls caches one live instance per object/impl pair (object family),
	// reset per scenario instead of rebuilt.
	impls map[implKey]sut.Impl
	// msgImpls caches one live emulation per object/impl pair (msg family),
	// each bound to the pooled network nt.
	msgImpls map[implKey]msgEntry
	// wl, svc and tau are the per-scenario pipeline stages every family
	// shares; msgSvc couples svc to the pooled network for the msg family.
	wl     sut.RandomWorkload
	svc    sut.Service
	msgSvc msgService
	tau    *adversary.Timed
	// crash is the reusable crash-schedule map.
	crash map[int][]int
	// nt is the pooled network; created on the first msg scenario and re-armed
	// by Schedule.Reset afterwards. The cached emulations hold this pointer.
	nt *msgnet.Net
}

func newRunScratch() *runScratch {
	return &runScratch{
		impls:    map[implKey]sut.Impl{},
		msgImpls: map[implKey]msgEntry{},
		crash:    map[int][]int{},
	}
}

// Pooled returns a copy of the runner that reuses one execution substrate
// across the scenarios it runs — object and emulation instances (reset per
// scenario through the sut.Impl Reset contract), workload, service, timed
// adversary, crash map and network. Outcomes are byte-identical to a
// scratch-less runner's; the copy must not be used concurrently (explore
// gives each worker its own).
func (r Runner) Pooled() Runner {
	r.scratch = newRunScratch()
	return r
}

// crashMap builds the spec's crash schedule, reusing the scratch map when the
// runner has one.
func (r Runner) crashMap(s Spec) map[int][]int {
	var crash map[int][]int
	if r.scratch != nil {
		crash = r.scratch.crash
		for k := range crash {
			delete(crash, k)
		}
	} else {
		crash = map[int][]int{}
	}
	for _, c := range s.Crashes {
		crash[c.Step] = append(crash[c.Step], c.Proc)
	}
	return crash
}

// objImpl returns the cached instance for the scenario's object/impl pair,
// reset for s.N processes, creating it on first use.
func (sc *runScratch) objImpl(id implDef, s Spec) sut.Impl {
	key := implKey{s.Object, s.Impl}
	if impl, ok := sc.impls[key]; ok {
		impl.Reset(s.N)
		return impl
	}
	impl := id.make(s.N)
	sc.impls[key] = impl
	return impl
}

// timed returns the pooled timed adversary re-armed around inner.
func (sc *runScratch) timed(n int, inner adversary.Service) *adversary.Timed {
	if sc.tau == nil {
		sc.tau = adversary.NewTimed(n, inner, adversary.ArrayAtomic)
	} else {
		sc.tau.Reset(n, inner)
	}
	return sc.tau
}

// network re-arms the pooled network for the scenario's schedule, creating it
// on the first msg scenario.
func (sc *runScratch) network(s Spec) (*msgnet.Net, error) {
	sch := msgSchedule(s)
	if sc.nt == nil {
		nt, err := sch.New(s.N)
		if err != nil {
			return nil, err
		}
		sc.nt = nt
		return nt, nil
	}
	if err := sch.Reset(sc.nt, s.N); err != nil {
		return nil, err
	}
	return sc.nt, nil
}

// msgImpl returns the cached emulation for the scenario's object/impl pair,
// reset for s.N processes, creating it (bound to the pooled network) on first
// use. Call network first so the emulation binds the re-armed net.
func (sc *runScratch) msgImpl(id msgImplDef, s Spec) (sut.Impl, []abd.Server) {
	key := implKey{s.Object, s.Impl}
	if e, ok := sc.msgImpls[key]; ok {
		e.impl.Reset(s.N)
		return e.impl, e.servers()
	}
	impl, servers := id.make(s.N, sc.nt)
	sc.msgImpls[key] = msgEntry{impl: impl, servers: servers}
	return impl, servers()
}
