package explore

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"github.com/drv-go/drv/internal/monitor"
)

// reuseObjSpec builds a fixed object-family spec for one registered impl.
func reuseObjSpec(object, impl string, seed int64, n int) Spec {
	s := Spec{Family: FamObj, Object: object, Impl: impl, N: n, Seed: seed,
		Policy: PolRandom, Steps: 1200, OpsPerProc: 4, MutBias: 0.5}
	if seed%2 == 0 {
		s.Crashes = []Crash{{Step: 40, Proc: 1}}
	}
	return s
}

// reuseMsgSpec builds a fixed message-family spec for one registered
// emulation, cycling the network orders so reuse crosses order kinds too.
func reuseMsgSpec(object, impl string, seed int64, n int) Spec {
	s := Spec{Family: FamMsg, Object: object, Impl: impl, N: n, Seed: seed,
		Policy: PolRandom, Steps: 4000, OpsPerProc: 3, MutBias: 0.5,
		NetOrder: []string{"fifo", "lifo", "random", "starve"}[seed%4]}
	switch seed % 3 {
	case 0:
		s.Crashes = []Crash{{Step: 200, Proc: 1}}
	case 1:
		s.Drops = []int{2, 3, 4}
	}
	return s
}

func TestPooledReuseMatchesFreshAcrossImpls(t *testing.T) {
	// The Reset contract, pinned per registered implementation: executing a
	// spec on a pooled runner whose cached instance already ran a *different*
	// spec (different seed, process count, crash and network schedule) must
	// reproduce a fresh instance's digest and signature exactly. This is the
	// reuse-vs-fresh differential for every impl in both registries,
	// seeded-bug variants included — a bug variant whose planted state leaked
	// across runs would shift its signature here.
	sess := monitor.NewSession()
	defer sess.Close()
	pooled := Runner{Session: sess}.Pooled()
	check := func(t *testing.T, dirty, target Spec) {
		t.Helper()
		fresh, err := Execute(target)
		if err != nil {
			t.Fatal(err)
		}
		// Dirty the cached instance (and the shared workload/service/Aτ
		// buffers) with a run at a different size and seed...
		if _, err := pooled.Execute(dirty); err != nil {
			t.Fatal(err)
		}
		// ...then the target must come out byte-identical to fresh.
		got, err := pooled.Execute(target)
		if err != nil {
			t.Fatal(err)
		}
		if got.Digest != fresh.Digest || got.Signature != fresh.Signature {
			t.Errorf("%s: reused %s/%s vs fresh %s/%s",
				target, got.Digest, got.Signature, fresh.Digest, fresh.Signature)
		}
	}
	for _, object := range Objects() {
		for _, impl := range ImplsOf(object) {
			t.Run(fmt.Sprintf("obj/%s/%s", object, impl), func(t *testing.T) {
				check(t, reuseObjSpec(object, impl, 6, 2), reuseObjSpec(object, impl, 3, 3))
			})
		}
	}
	for _, object := range MsgObjects() {
		for _, impl := range MsgImplsOf(object) {
			t.Run(fmt.Sprintf("msg/%s/%s", object, impl), func(t *testing.T) {
				// Shrinking n across reuse (3 then 2 then 3) plus crossing
				// network orders is the hard case for the emulations: cell
				// sets, replica arrays and inboxes must all re-arm.
				check(t, reuseMsgSpec(object, impl, 6, 2), reuseMsgSpec(object, impl, 3, 3))
			})
		}
	}
}

func TestPooledRunnersPerGoroutine(t *testing.T) {
	// Worker isolation: each goroutine owns its own session and scratch, the
	// way Explore wires its pool, and concurrent pooled execution agrees with
	// sequential fresh execution. The race tier runs this under -race; a
	// scratch accidentally shared across workers would trip it.
	specs := make([]Spec, 0, 12)
	for i := 0; i < 6; i++ {
		specs = append(specs, NewSpec(91, i, objGen()))
		specs = append(specs, NewSpec(91, i, msgGen()))
	}
	want := make([]string, len(specs))
	for i, s := range specs {
		out, err := Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out.Digest + "|" + out.Signature
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := monitor.NewSession()
			defer sess.Close()
			r := Runner{Session: sess}.Pooled()
			for i, s := range specs {
				out, err := r.Execute(s)
				if err != nil {
					errs[w] = err
					return
				}
				if got := out.Digest + "|" + out.Signature; got != want[i] {
					errs[w] = fmt.Errorf("worker %d: %s: got %s want %s", w, s, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// Steady-state allocation budgets for one pooled scenario execution,
// workload through verdict. The values pin the pooled substrate: remaining
// allocations are per-scenario results (monitor state, sketches, oracle
// scratch growth, history clones, the Outcome itself), not setup — a
// regression that reintroduces per-scenario substrate construction (fresh
// runtime, implementation, workload or network) blows well past them.
const (
	objAllocBudget = 2000 // measured steady state ~1536 (fresh runner: ~1849)
	msgAllocBudget = 1100 // measured steady state ~868 (fresh runner: ~1267)
)

func TestPooledExecuteAllocBudgetObj(t *testing.T) {
	testPooledAllocBudget(t, FamObj, objAllocBudget)
}

func TestPooledExecuteAllocBudgetMsg(t *testing.T) {
	testPooledAllocBudget(t, FamMsg, msgAllocBudget)
}

func testPooledAllocBudget(t *testing.T, fam string, budget float64) {
	cfg := GenConfig{Families: []string{fam}, MaxCrashes: 2}
	specs := make([]Spec, 16)
	for i := range specs {
		specs[i] = NewSpec(1, i, cfg)
	}
	sess := monitor.NewSession()
	defer sess.Close()
	r := Runner{Session: sess}.Pooled()
	// Warm to steady state: impls cached, buffers at capacity, oracle
	// memo tables saturated for this spec batch.
	for round := 0; round < 2; round++ {
		for _, s := range specs {
			if _, err := r.Execute(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	i := 0
	avg := testing.AllocsPerRun(len(specs)*2, func() {
		if _, err := r.Execute(specs[i%len(specs)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg > budget {
		t.Errorf("%s: pooled execution averages %.0f allocs per scenario, budget %.0f", fam, avg, budget)
	}
}
