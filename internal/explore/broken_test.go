package explore

// The explorer's reason to exist is catching monitors that are wrong in ways
// the curated Table 1 runs never notice. These tests inject synthetically
// broken monitors and assert the differential checks catch them and the
// minimizer shrinks the finding to a tiny reproducer.

import (
	"testing"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/word"
)

// yesMan wraps a monitor and discards its verdicts, always reporting YES —
// the canonical unsound decider. The inner logic still runs, so the
// execution shape (shared-memory steps, announcements) stays realistic.
type yesMan struct{ inner monitor.Monitor }

func (m yesMan) Name() string { return "broken-yes(" + m.inner.Name() + ")" }

func (m yesMan) New(n int) []monitor.Logic {
	inners := m.inner.New(n)
	out := make([]monitor.Logic, n)
	for i := range out {
		out[i] = yesLogic{inner: inners[i]}
	}
	return out
}

type yesLogic struct{ inner monitor.Logic }

func (l yesLogic) PreSend(p *sched.Proc, inv word.Symbol)       { l.inner.PreSend(p, inv) }
func (l yesLogic) PostRecv(p *sched.Proc, r adversary.Response) { l.inner.PostRecv(p, r) }
func (l yesLogic) Decide(p *sched.Proc) monitor.Verdict {
	l.inner.Decide(p)
	return monitor.Yes
}

// flipFlop wraps a monitor and reports NO on every other round regardless of
// the input — unsound in the other direction (false alarms on in-language
// words).
type flipFlop struct{ inner monitor.Monitor }

func (m flipFlop) Name() string { return "broken-flipflop(" + m.inner.Name() + ")" }

func (m flipFlop) New(n int) []monitor.Logic {
	inners := m.inner.New(n)
	out := make([]monitor.Logic, n)
	for i := range out {
		out[i] = &flipFlopLogic{inner: inners[i]}
	}
	return out
}

type flipFlopLogic struct {
	inner monitor.Logic
	round int
}

func (l *flipFlopLogic) PreSend(p *sched.Proc, inv word.Symbol)       { l.inner.PreSend(p, inv) }
func (l *flipFlopLogic) PostRecv(p *sched.Proc, r adversary.Response) { l.inner.PostRecv(p, r) }
func (l *flipFlopLogic) Decide(p *sched.Proc) monitor.Verdict {
	l.inner.Decide(p)
	l.round++
	if l.round%2 == 0 {
		return monitor.No
	}
	return monitor.Yes
}

func wrapYes(m monitor.Monitor) monitor.Monitor      { return yesMan{inner: m} }
func wrapFlipFlop(m monitor.Monitor) monitor.Monitor { return flipFlop{inner: m} }

func TestBrokenYesMonitorCaughtAndShrunk(t *testing.T) {
	// Acceptance: a verdict-suppressing monitor is caught, and the shrunk
	// reproducer is at most 20 scheduler steps.
	r := Runner{Wrap: wrapYes}
	s := Spec{Lang: "WEC_COUNT", Source: "own-inc-violation", N: 3, Seed: 11, Policy: PolCursor, Steps: 3000}
	out, err := r.Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Divergences) == 0 {
		t.Fatal("yes-man monitor not caught")
	}
	found := false
	for _, d := range out.Divergences {
		if d.Check == CheckOwnSafety {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an %s divergence, got %v", CheckOwnSafety, out.Divergences)
	}

	shrunk, still := ShrinkSpec(s, r, 0)
	if len(still) == 0 {
		t.Fatal("shrunk spec no longer diverges")
	}
	if shrunk.Steps > 20 {
		t.Errorf("shrunk reproducer needs %d steps, want ≤ 20 (%s)", shrunk.Steps, shrunk)
	}
	if shrunk.N > s.N || len(shrunk.Crashes) > 0 {
		t.Errorf("shrink did not minimize the scenario: %s", shrunk)
	}
	// The reproducer must replay deterministically.
	if _, err := ParseSpec(shrunk.String()); err != nil {
		t.Errorf("shrunk spec does not re-parse: %v", err)
	}
}

func TestShrinkBudgetExhaustionReturnsBestSoFar(t *testing.T) {
	// A shrink that runs out of candidate executions mid-search must return
	// the smallest spec that was CONFIRMED divergent, with its divergences —
	// never a half-explored candidate it could not re-execute.
	r := Runner{Wrap: wrapYes}
	s := Spec{Lang: "WEC_COUNT", Source: "own-inc-violation", N: 3, Seed: 11, Policy: PolCursor, Steps: 3000}

	// Budget 1: only the initial confirmation runs, so the best-so-far IS
	// the original spec.
	best, still := ShrinkSpec(s, r, 1)
	if len(still) == 0 {
		t.Fatal("budget-1 shrink lost the divergence")
	}
	if best.String() != s.String() {
		t.Errorf("budget-1 shrink returned %s, want the original %s", best, s)
	}

	// Tight budgets must always return a confirmed reproducer no larger than
	// the original, monotonically improving (never regressing) as the budget
	// grows enough to reach further axes.
	prevSteps := s.Steps + 1
	for _, budget := range []int{2, 5, 20, 60} {
		best, still := ShrinkSpec(s, r, budget)
		if len(still) == 0 {
			t.Fatalf("budget-%d shrink lost the divergence", budget)
		}
		if best.N > s.N || best.Steps > s.Steps || len(best.Crashes) > len(s.Crashes) {
			t.Errorf("budget-%d shrink returned a larger spec: %s", budget, best)
		}
		out, err := r.Execute(best)
		if err != nil {
			t.Fatalf("budget-%d reproducer does not execute: %v", budget, err)
		}
		if len(out.Divergences) == 0 {
			t.Errorf("budget-%d reproducer %s does not diverge", budget, best)
		}
		if best.Steps > prevSteps {
			t.Errorf("budget-%d reproducer (%d steps) is worse than the smaller budget's (%d)", budget, best.Steps, prevSteps)
		}
		prevSteps = best.Steps
	}
}

func TestBrokenFlipFlopCaught(t *testing.T) {
	// False alarms on an in-language source violate the WD tail predicate.
	r := Runner{Wrap: wrapFlipFlop}
	s := Spec{Lang: "WEC_COUNT", Source: "exact", N: 3, Seed: 4, Policy: PolBiased, Bias: 0.5, Steps: 4000}
	out, err := r.Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range out.Divergences {
		if d.Check == CheckClass {
			found = true
		}
	}
	if !found {
		t.Errorf("flip-flop monitor not caught by the class oracle: %v", out.Divergences)
	}
}

func TestExploreEndToEndCatchesBrokenMonitor(t *testing.T) {
	// Whole-pipeline: a sweep over the broken monitor must report failures
	// with shrunk reproducers.
	rep, err := Explore(Options{
		Master: 1, Scenarios: 40, Workers: 4,
		Gen:    GenConfig{Langs: []string{"WEC_COUNT"}, MaxCrashes: 1},
		Shrink: true,
		Wrap:   wrapYes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("sweep over a broken monitor reported no failures")
	}
	shrunkSeen := false
	for _, f := range rep.Failures {
		if f.Shrunk != "" {
			shrunkSeen = true
			if f.ShrunkSteps <= 0 || len(f.ShrunkDivergences) == 0 {
				t.Errorf("failure %s has an inconsistent shrink result", f.Spec)
			}
			if _, err := ParseSpec(f.Shrunk); err != nil {
				t.Errorf("shrunk spec %q does not parse: %v", f.Shrunk, err)
			}
		}
	}
	if !shrunkSeen {
		t.Error("no failure carried a shrunk reproducer")
	}
}
