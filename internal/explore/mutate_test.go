package explore

import (
	"math/rand"
	"testing"
)

func TestMutateAlwaysYieldsValidSpecs(t *testing.T) {
	// Whatever chain of ops fires, the child must execute: parse-exact,
	// validate-clean, and inside the fault model. Parents are drawn from the
	// generator across all languages, with and without crashes.
	rng := rand.New(rand.NewSource(7))
	cfg := GenConfig{MaxCrashes: 2}
	for i := 0; i < 400; i++ {
		parent := NewSpec(11, i, cfg)
		child := Mutate(parent, rng, cfg)
		if err := child.validate(); err != nil {
			t.Fatalf("mutation %d of %s produced invalid %s: %v", i, parent, child, err)
		}
		reparsed, err := ParseSpec(child.String())
		if err != nil {
			t.Fatalf("mutated spec %q does not re-parse: %v", child, err)
		}
		if reparsed.String() != child.String() {
			t.Fatalf("mutated spec round-trip changed %q to %q", child, reparsed)
		}
		if child.Lang != parent.Lang {
			t.Fatalf("mutation changed the language: %s to %s", parent, child)
		}
	}
}

func TestMutateDeterministicInRng(t *testing.T) {
	cfg := GenConfig{MaxCrashes: 2}
	for i := 0; i < 50; i++ {
		parent := NewSpec(3, i, cfg)
		a := Mutate(parent, rand.New(rand.NewSource(int64(i))), cfg)
		b := Mutate(parent, rand.New(rand.NewSource(int64(i))), cfg)
		if a.String() != b.String() {
			t.Fatalf("same rng stream mutated %s into %s and %s", parent, a, b)
		}
	}
}

func TestMutateActuallyPerturbs(t *testing.T) {
	// Across a batch of draws, mutation must usually produce a spec distinct
	// from its parent — a mutator that degenerates to the identity would turn
	// the guided half of the budget into duplicate executions.
	rng := rand.New(rand.NewSource(13))
	cfg := GenConfig{MaxCrashes: 2}
	changed := 0
	for i := 0; i < 200; i++ {
		parent := NewSpec(17, i, cfg)
		if Mutate(parent, rng, cfg).String() != parent.String() {
			changed++
		}
	}
	if changed < 180 {
		t.Errorf("only %d/200 mutations changed the spec", changed)
	}
}

func TestMutateRespectsConfigBounds(t *testing.T) {
	// MaxCrashes 0 must block crash insertion (existing crashes may remain),
	// and MaxSteps must cap step growth.
	rng := rand.New(rand.NewSource(21))
	cfg := GenConfig{MaxCrashes: 0, MaxSteps: 500}
	parent := Spec{Lang: "WEC_COUNT", Source: "exact", N: 3, Seed: 5, Policy: PolRandom, Steps: 400}
	for i := 0; i < 300; i++ {
		child := Mutate(parent, rng, cfg)
		if len(child.Crashes) > 0 {
			t.Fatalf("mutation inserted a crash despite MaxCrashes 0: %s", child)
		}
		if child.Steps > 500 {
			t.Fatalf("mutation exceeded MaxSteps: %s", child)
		}
	}

	// A MaxSteps below the mutation floor still wins: mutated children honor
	// the user's bound exactly as NewSpec does (the floor used to be applied
	// after the cap, silently exceeding small -max-steps values).
	tiny := Spec{Lang: "WEC_COUNT", Source: "exact", N: 2, Seed: 5, Policy: PolRandom, Steps: 10}
	for i := 0; i < 300; i++ {
		child := Mutate(tiny, rng, GenConfig{MaxCrashes: 1, MaxSteps: 10})
		if child.Steps > 10 {
			t.Fatalf("mutation exceeded a sub-floor MaxSteps: %s", child)
		}
		for _, c := range child.Crashes {
			if c.Step >= 10 {
				t.Fatalf("mutation drew a crash beyond a sub-floor MaxSteps: %s", child)
			}
		}
	}

	// A crashy parent may keep or lose crashes, but never gain processes
	// crashing beyond the fault model.
	crashy := Spec{Lang: "LIN_REG", Source: "atomic", N: 3, Seed: 5, Policy: PolRandom, Steps: 400,
		Crashes: []Crash{{Step: 10, Proc: 0}, {Step: 20, Proc: 1}}}
	for i := 0; i < 300; i++ {
		child := Mutate(crashy, rng, GenConfig{MaxCrashes: 2})
		if len(child.Crashes) > child.N-1 {
			t.Fatalf("mutation broke the fault model: %s", child)
		}
	}
}

func TestMutSourceNoOpReportsFalse(t *testing.T) {
	// A source draw that lands back on the current source is not a mutation:
	// reporting it as one made Mutate hand back a byte-identical child while
	// the report counted it as mutated.
	rng := rand.New(rand.NewSource(7))
	s := mustSpec(t, "drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100")
	for i := 0; i < 300; i++ {
		before := s.Source
		if changed := mutSource(&s, rng, GenConfig{}); changed != (s.Source != before) {
			t.Fatalf("mutSource reported %v but source went %q -> %q", changed, before, s.Source)
		}
	}
}

func TestMutPolicyNoOpReportsFalse(t *testing.T) {
	// Redrawing the parent's own policy kind is only a mutation for biased
	// (where the bias itself is redrawn); for the other kinds it must report
	// false instead of handing back a byte-identical child.
	rng := rand.New(rand.NewSource(9))
	s := mustSpec(t, "drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100")
	for i := 0; i < 300; i++ {
		before := s.Policy
		changed := mutPolicy(&s, rng, GenConfig{})
		want := s.Policy != before || s.Policy == PolBiased
		if changed != want {
			t.Fatalf("mutPolicy reported %v for %q -> %q", changed, before, s.Policy)
		}
	}
}

func TestMutateNeverAliasesParentCrashes(t *testing.T) {
	// Regression: Mutate used to share the parent's Crashes backing array,
	// so canonicalize's in-place sort/compact (and op appends) corrupted the
	// corpus entry the parent came from — corrupted seeds then failed to
	// re-load with "crash schedule not in canonical order".
	parent := mustSpec(t, "drv1:SC_LED/lost-append:n=4:seed=5:pol=bursty:steps=400:crash=0@50,1@100,2@300")
	want := parent.String()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 500; i++ {
		Mutate(parent, rng, GenConfig{MaxCrashes: 3})
		if parent.String() != want {
			t.Fatalf("mutation %d corrupted the parent: %s", i, parent)
		}
	}
}

func TestMutateFallsBackToParentOnNoOp(t *testing.T) {
	// With every op either failing or a no-op the parent comes back as-is;
	// simplest way to force it: a single-process parent can neither insert
	// crashes nor change N below 2, so some draws return the parent. The
	// contract under test is just that the fallback is the parent, not an
	// invalid intermediate.
	parent := Spec{Lang: "WEC_COUNT", Source: "exact", N: 2, Seed: 1, Policy: PolRandom, Steps: 100}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		child := Mutate(parent, rng, GenConfig{})
		if err := child.validate(); err != nil {
			t.Fatalf("fallback produced invalid spec %s: %v", child, err)
		}
	}
}
