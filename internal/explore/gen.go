package explore

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/drv-go/drv/internal/lang"
)

// GenConfig constrains random scenario generation.
type GenConfig struct {
	// Langs restricts scenarios to these language names; empty means all
	// seven Table 1 languages.
	Langs []string
	// MaxCrashes bounds the crash count per scenario (further capped at
	// n−1: the paper's fault model keeps at least one process alive).
	MaxCrashes int
	// MaxSteps caps the scheduler step bound a scenario may draw (0 = the
	// per-family defaults only).
	MaxSteps int
	// CrashProb is the probability a scenario has any crashes at all
	// (default 0.5 when MaxCrashes > 0). Crash-free scenarios carry the
	// label-based differential checks, so the generator keeps both kinds in
	// the mix.
	CrashProb float64
}

// validate checks the config against the known language set.
func (g GenConfig) validate() error {
	for _, name := range g.Langs {
		if _, err := langByName(name); err != nil {
			return err
		}
	}
	if g.MaxCrashes < 0 {
		return fmt.Errorf("explore: negative MaxCrashes %d", g.MaxCrashes)
	}
	return nil
}

func langByName(name string) (lang.Lang, error) {
	for _, l := range lang.All() {
		if l.Name == name {
			return l, nil
		}
	}
	return lang.Lang{}, fmt.Errorf("explore: unknown language %q", name)
}

// stepRange returns the scheduler-step bounds scenarios of the family draw
// from. The floors keep the finite-run proxies meaningful (a weak decider
// needs to get past the sources' transient phases before its verdict tail is
// judged); the ceilings keep 500-scenario sweeps interactive — the predictive
// monitors re-check a growing history every round, the sequential-consistency
// ones with an exponential-time witness search.
func stepRange(fam family, langName string) (lo, hi int) {
	switch fam {
	case famWEC:
		return 2500, 6000
	case famSEC:
		return 2000, 3600
	case famECLed:
		return 500, 1500
	default:
		switch langName {
		case "LIN_REG", "LIN_LED":
			return 400, 1200
		default: // SC_REG, SC_LED: exponential witness search, shortest runs
			return 300, 700
		}
	}
}

// NewSpec derives scenario index of the master seed under the config. The
// same (master, index, cfg) triple always yields the same spec, and distinct
// indices draw from independent random streams, so a sweep's scenario list
// does not depend on worker count or on how many scenarios run.
func NewSpec(master int64, index int, cfg GenConfig) Spec {
	rng := rand.New(rand.NewSource(mix(master, int64(index))))
	names := cfg.Langs
	if len(names) == 0 {
		for _, l := range lang.All() {
			names = append(names, l.Name)
		}
	}
	name := names[rng.Intn(len(names))]
	l, err := langByName(name)
	if err != nil {
		panic(err) // cfg was validated
	}

	s := Spec{
		Lang: name,
		N:    2 + rng.Intn(3), // 2..4 processes
		Seed: rng.Int63(),
	}
	sources := l.Sources(s.N, s.Seed)
	s.Source = sources[rng.Intn(len(sources))].Name

	switch rng.Intn(4) {
	case 0:
		s.Policy = PolRandom
	case 1:
		s.Policy = PolBursty
	case 2:
		s.Policy = PolCursor
	default:
		s.Policy = PolBiased
		// Fresh specs draw from a coarse bias grid (the encoding itself is
		// exact for any float64 since the FormatFloat move — mutators perturb
		// off-grid); the grid keeps blind sweeps reproducible across PRs.
		s.Bias = float64(30+5*rng.Intn(11)) / 100 // 0.30..0.80
	}

	lo, hi := stepRange(famOf(name), name)
	s.Steps = lo + rng.Intn(hi-lo+1)
	if cfg.MaxSteps > 0 && s.Steps > cfg.MaxSteps {
		s.Steps = cfg.MaxSteps
	}

	maxCrashes := cfg.MaxCrashes
	if maxCrashes > s.N-1 {
		maxCrashes = s.N - 1
	}
	crashProb := cfg.CrashProb
	if crashProb == 0 {
		crashProb = 0.5
	}
	if maxCrashes > 0 && s.Steps > 1 && rng.Float64() < crashProb {
		k := 1 + rng.Intn(maxCrashes)
		procs := rng.Perm(s.N)[:k]
		for _, p := range procs {
			// The runner consults the crash schedule at steps 0..Steps−1,
			// so a crash at step Steps would never fire.
			s.Crashes = append(s.Crashes, Crash{Step: 1 + rng.Intn(s.Steps-1), Proc: p})
		}
		sortCrashes(s.Crashes)
	}
	return s
}

// sortCrashes orders the schedule by step then process, the canonical order
// used by the spec encoding.
func sortCrashes(cs []Crash) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Step != cs[j].Step {
			return cs[i].Step < cs[j].Step
		}
		return cs[i].Proc < cs[j].Proc
	})
}
