package explore

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/msgnet"
)

// GenConfig constrains random scenario generation.
type GenConfig struct {
	// Families restricts scenarios to these scenario families (FamLang,
	// FamObj); empty means the language family alone, which keeps every
	// pre-drv2 sweep byte-identical.
	Families []string
	// Langs restricts language scenarios to these language names; empty
	// means all seven Table 1 languages.
	Langs []string
	// Objects restricts object scenarios to these object names; empty means
	// every registered object.
	Objects []string
	// Impls restricts object scenarios to these implementation slugs; empty
	// means every implementation of the drawn object.
	Impls []string
	// MaxCrashes bounds the crash count per scenario (further capped at
	// n−1: the paper's fault model keeps at least one process alive).
	MaxCrashes int
	// MaxSteps caps the scheduler step bound a scenario may draw (0 = the
	// per-family defaults only).
	MaxSteps int
	// CrashProb is the probability a scenario has any crashes at all
	// (default 0.5 when MaxCrashes > 0). Crash-free scenarios carry the
	// label-based differential checks, so the generator keeps both kinds in
	// the mix.
	CrashProb float64
	// NetOrders restricts message-passing scenarios to these delivery-order
	// kinds (msgnet.OrderFIFO etc.); empty means all four.
	NetOrders []string
}

// families resolves the family set, defaulting to the language family.
func (g GenConfig) families() []string {
	if len(g.Families) == 0 {
		return []string{FamLang}
	}
	return g.Families
}

// validate checks the config against the known language, family and object
// sets.
func (g GenConfig) validate() error {
	for _, fam := range g.Families {
		if fam != FamLang && fam != FamObj && fam != FamMsg {
			return fmt.Errorf("explore: unknown scenario family %q", fam)
		}
	}
	for _, name := range g.Langs {
		if _, err := langByName(name); err != nil {
			return err
		}
	}
	msg := g.hasFamily(FamMsg)
	for _, name := range g.Objects {
		if ImplsOf(name) == nil && !(msg && MsgImplsOf(name) != nil) {
			return fmt.Errorf("explore: unknown object %q", name)
		}
	}
	for _, impl := range g.Impls {
		found := false
		for _, object := range g.objects() {
			for _, have := range ImplsOf(object) {
				if have == impl {
					found = true
				}
			}
		}
		if msg {
			for _, object := range g.msgObjects() {
				for _, have := range MsgImplsOf(object) {
					if have == impl {
						found = true
					}
				}
			}
		}
		if !found {
			return fmt.Errorf("explore: no selected object has an implementation %q", impl)
		}
	}
	// A selected family must have something to draw: object filters naming
	// only the other family's objects would otherwise panic deep in NewSpec.
	for _, fam := range g.families() {
		switch {
		case fam == FamObj && len(g.drawableObjects()) == 0:
			return fmt.Errorf("explore: no selected object is drawable in the %s family", FamObj)
		case fam == FamMsg && len(g.drawableMsgObjects()) == 0:
			return fmt.Errorf("explore: no selected object is drawable in the %s family", FamMsg)
		}
	}
	for _, order := range g.NetOrders {
		if err := (msgnet.Schedule{Order: order}).Validate(); err != nil {
			return err
		}
	}
	if g.MaxCrashes < 0 {
		return fmt.Errorf("explore: negative MaxCrashes %d", g.MaxCrashes)
	}
	return nil
}

// hasFamily reports whether the resolved family set includes fam.
func (g GenConfig) hasFamily(fam string) bool {
	for _, have := range g.families() {
		if have == fam {
			return true
		}
	}
	return false
}

// objects resolves the object set, defaulting to the whole registry.
func (g GenConfig) objects() []string {
	if len(g.Objects) == 0 {
		return Objects()
	}
	return g.Objects
}

// implsFor returns the object's implementation slugs allowed by the config's
// Impls filter (all of them when the filter is empty), in registry order.
func (g GenConfig) implsFor(object string) []string {
	all := ImplsOf(object)
	if len(g.Impls) == 0 {
		return all
	}
	var keep []string
	for _, name := range all {
		for _, want := range g.Impls {
			if name == want {
				keep = append(keep, name)
			}
		}
	}
	return keep
}

// drawableObjects returns the objects that still have at least one allowed
// implementation under the filters.
func (g GenConfig) drawableObjects() []string {
	var keep []string
	for _, object := range g.objects() {
		if len(g.implsFor(object)) > 0 {
			keep = append(keep, object)
		}
	}
	return keep
}

// msgObjects resolves the emulated-object set, defaulting to the whole
// message registry.
func (g GenConfig) msgObjects() []string {
	if len(g.Objects) == 0 {
		return MsgObjects()
	}
	return g.Objects
}

// msgImplsFor returns the object's emulation slugs allowed by the Impls
// filter, in registry order.
func (g GenConfig) msgImplsFor(object string) []string {
	all := MsgImplsOf(object)
	if len(g.Impls) == 0 {
		return all
	}
	var keep []string
	for _, name := range all {
		for _, want := range g.Impls {
			if name == want {
				keep = append(keep, name)
			}
		}
	}
	return keep
}

// drawableMsgObjects returns the emulated objects that still have at least
// one allowed emulation under the filters.
func (g GenConfig) drawableMsgObjects() []string {
	var keep []string
	for _, object := range g.msgObjects() {
		if len(g.msgImplsFor(object)) > 0 {
			keep = append(keep, object)
		}
	}
	return keep
}

// netOrders resolves the delivery-order set, defaulting to all four kinds in
// msgnet's declaration order.
func (g GenConfig) netOrders() []string {
	if len(g.NetOrders) == 0 {
		return []string{msgnet.OrderFIFO, msgnet.OrderLIFO, msgnet.OrderRandom, msgnet.OrderStarve}
	}
	return g.NetOrders
}

func langByName(name string) (lang.Lang, error) {
	for _, l := range lang.All() {
		if l.Name == name {
			return l, nil
		}
	}
	return lang.Lang{}, fmt.Errorf("explore: unknown language %q", name)
}

// stepRange returns the scheduler-step bounds scenarios of the family draw
// from. The floors keep the finite-run proxies meaningful (a weak decider
// needs to get past the sources' transient phases before its verdict tail is
// judged); the ceilings keep 500-scenario sweeps interactive — the predictive
// monitors re-check a growing history every round, the sequential-consistency
// ones with an exponential-time witness search.
func stepRange(fam family, langName string) (lo, hi int) {
	switch fam {
	case famWEC:
		return 2500, 6000
	case famSEC:
		return 2000, 3600
	case famECLed:
		return 500, 1500
	default:
		switch langName {
		case "LIN_REG", "LIN_LED":
			return 400, 1200
		default: // SC_REG, SC_LED: exponential witness search, shortest runs
			return 300, 700
		}
	}
}

// NewSpec derives scenario index of the master seed under the config. The
// same (master, index, cfg) triple always yields the same spec, and distinct
// indices draw from independent random streams, so a sweep's scenario list
// does not depend on worker count or on how many scenarios run.
//
// With the default (language-only) family set the draw sequence is exactly
// the pre-drv2 one, so existing sweeps replay byte-for-byte; a multi-family
// config spends one extra draw picking the family first.
func NewSpec(master int64, index int, cfg GenConfig) Spec {
	return newSpecSeeded(rand.New(rand.NewSource(mix(master, int64(index)))), cfg)
}

// newSpecSeeded is NewSpec on a caller-owned rng already seeded with
// mix(master, index). Explore's generator loop reseeds one reusable rng per
// index instead of building a fresh source each time — rand.Rand.Seed
// reproduces rand.NewSource's stream exactly, so the draws are identical.
func newSpecSeeded(rng *rand.Rand, cfg GenConfig) Spec {
	fams := cfg.families()
	fam := fams[0]
	if len(fams) > 1 {
		fam = fams[rng.Intn(len(fams))]
	}
	if fam == FamObj {
		return newObjSpec(rng, cfg)
	}
	if fam == FamMsg {
		return newMsgSpec(rng, cfg)
	}
	names := cfg.Langs
	if len(names) == 0 {
		for _, l := range lang.All() {
			names = append(names, l.Name)
		}
	}
	name := names[rng.Intn(len(names))]
	l, err := langByName(name)
	if err != nil {
		panic(err) // cfg was validated
	}

	s := Spec{
		Lang: name,
		N:    2 + rng.Intn(3), // 2..4 processes
		Seed: rng.Int63(),
	}
	sources := l.Sources(s.N, s.Seed)
	s.Source = sources[rng.Intn(len(sources))].Name

	switch rng.Intn(4) {
	case 0:
		s.Policy = PolRandom
	case 1:
		s.Policy = PolBursty
	case 2:
		s.Policy = PolCursor
	default:
		s.Policy = PolBiased
		// Fresh specs draw from a coarse bias grid (the encoding itself is
		// exact for any float64 since the FormatFloat move — mutators perturb
		// off-grid); the grid keeps blind sweeps reproducible across PRs.
		s.Bias = float64(30+5*rng.Intn(11)) / 100 // 0.30..0.80
	}

	lo, hi := stepRange(famOf(name), name)
	s.Steps = lo + rng.Intn(hi-lo+1)
	if cfg.MaxSteps > 0 && s.Steps > cfg.MaxSteps {
		s.Steps = cfg.MaxSteps
	}

	genCrashes(&s, rng, cfg)
	return s
}

// objStepRange is the scheduler-step band object scenarios draw from. An
// operation costs roughly a dozen steps through the full stack (impl shared-
// memory steps, Aτ announce/snapshot, V_O publish/snapshot), so the ceiling
// comfortably drains the largest workloads while the floor keeps truncated
// runs — crashes parking a spinlock forever, schedules starving a process —
// in the mix.
func objStepRange() (lo, hi int) { return 160, 1600 }

// newObjSpec draws one object-execution scenario from the rng.
func newObjSpec(rng *rand.Rand, cfg GenConfig) Spec {
	objects := cfg.drawableObjects()
	object := objects[rng.Intn(len(objects))]
	impls := cfg.implsFor(object)
	s := Spec{
		Family: FamObj,
		Object: object,
		Impl:   impls[rng.Intn(len(impls))],
		N:      2 + rng.Intn(3), // 2..4 processes
		Seed:   rng.Int63(),
	}

	// No word cursor exists to prioritize, so the cursor policy (which would
	// degenerate to the random one) stays out of the draw; biased policies
	// target no actor and act as a differently-seeded uniform draw, kept for
	// schedule diversity under mutation.
	switch rng.Intn(3) {
	case 0:
		s.Policy = PolRandom
	case 1:
		s.Policy = PolBursty
	default:
		s.Policy = PolBiased
		s.Bias = float64(30+5*rng.Intn(11)) / 100 // 0.30..0.80
	}

	s.OpsPerProc = 1 + rng.Intn(8)          // 1..8 operations per process
	s.MutBias = float64(2+rng.Intn(7)) / 10 // 0.2..0.8, exact decimals

	lo, hi := objStepRange()
	s.Steps = lo + rng.Intn(hi-lo+1)
	if cfg.MaxSteps > 0 && s.Steps > cfg.MaxSteps {
		s.Steps = cfg.MaxSteps
	}

	genCrashes(&s, rng, cfg)
	return s
}

// msgStepRange is the scheduler-step band message-passing scenarios draw
// from. One emulated operation costs tens of steps (two quorum RPCs, each a
// broadcast plus parked receives, with one delivery-actor step per message),
// so the band sits well above the object family's; the ceiling drains the
// largest workloads at n=5 while the floor keeps truncated runs — loss
// schedules starving a quorum forever, crashes parking clients mid-RPC — in
// the mix.
func msgStepRange() (lo, hi int) { return 600, 6000 }

// newMsgSpec draws one message-passing scenario from the rng. Two draws are
// deliberately skewed toward the protocol bugs' exposure windows: the process
// count reaches 5 (partial-propagation races need quorums that can miss each
// other), and the loss schedule is a contiguous run of send indices (dropping
// the tail of one broadcast, which a uniform scatter almost never does).
func newMsgSpec(rng *rand.Rand, cfg GenConfig) Spec {
	objects := cfg.drawableMsgObjects()
	object := objects[rng.Intn(len(objects))]
	impls := cfg.msgImplsFor(object)
	s := Spec{
		Family: FamMsg,
		Object: object,
		Impl:   impls[rng.Intn(len(impls))],
		N:      2 + rng.Intn(4), // 2..5 processes
		Seed:   rng.Int63(),
	}

	// Same policy menu as the object family: no word cursor exists, so the
	// cursor policy stays out; a biased policy's cursor lands on the network
	// delivery actor (see executeMsg), making it a delivery-eager schedule.
	switch rng.Intn(3) {
	case 0:
		s.Policy = PolRandom
	case 1:
		s.Policy = PolBursty
	default:
		s.Policy = PolBiased
		s.Bias = float64(30+5*rng.Intn(11)) / 100 // 0.30..0.80
	}

	s.OpsPerProc = 1 + rng.Intn(6)          // 1..6 operations per process
	s.MutBias = float64(2+rng.Intn(7)) / 10 // 0.2..0.8, exact decimals

	orders := cfg.netOrders()
	s.NetOrder = orders[rng.Intn(len(orders))]
	if rng.Intn(5) < 2 { // 40% of scenarios are lossy
		start := rng.Intn(40)
		for k, run := 0, 1+rng.Intn(6); k < run; k++ {
			s.Drops = append(s.Drops, start+k)
		}
	}

	lo, hi := msgStepRange()
	s.Steps = lo + rng.Intn(hi-lo+1)
	if cfg.MaxSteps > 0 && s.Steps > cfg.MaxSteps {
		s.Steps = cfg.MaxSteps
	}

	genCrashes(&s, rng, cfg)
	return s
}

// genCrashes draws the crash schedule shared by both families: with
// probability CrashProb, 1..MaxCrashes distinct processes crash at uniform
// steps in [1, Steps−1], canonically ordered.
func genCrashes(s *Spec, rng *rand.Rand, cfg GenConfig) {
	maxCrashes := cfg.MaxCrashes
	if maxCrashes > s.N-1 {
		maxCrashes = s.N - 1
	}
	crashProb := cfg.CrashProb
	if crashProb == 0 {
		crashProb = 0.5
	}
	if maxCrashes > 0 && s.Steps > 1 && rng.Float64() < crashProb {
		k := 1 + rng.Intn(maxCrashes)
		procs := rng.Perm(s.N)[:k]
		for _, p := range procs {
			// The runner consults the crash schedule at steps 0..Steps−1,
			// so a crash at step Steps would never fire.
			s.Crashes = append(s.Crashes, Crash{Step: 1 + rng.Intn(s.Steps-1), Proc: p})
		}
		sortCrashes(s.Crashes)
	}
}

// sortCrashes orders the schedule by step then process, the canonical order
// used by the spec encoding.
func sortCrashes(cs []Crash) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Step != cs[j].Step {
			return cs[i].Step < cs[j].Step
		}
		return cs[i].Proc < cs[j].Proc
	})
}
