package explore

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func TestSpecStringRoundTrip(t *testing.T) {
	// Every generated spec must survive the one-line encoding unchanged —
	// the corpus and replay machinery depend on it.
	for i := 0; i < 200; i++ {
		s := NewSpec(2026, i, GenConfig{MaxCrashes: 3})
		parsed, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("spec %d %q: %v", i, s.String(), err)
		}
		if parsed.String() != s.String() {
			t.Fatalf("round trip changed %q into %q", s.String(), parsed.String())
		}
	}
}

func TestParseSpecRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"drv0:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=10",
		"drv1:WEC_COUNT:n=3:seed=1:pol=random:steps=10",
		"drv1:WEC_COUNT/exact:n=0:seed=1:pol=random:steps=10",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=0",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=sloppy:steps=10",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=10:crash=9@5",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=10:crash=0@99",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=10:crash=0@5extra",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=10:crash=0@10",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100:crash=0@1O0",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=10:bogus=1",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=biased/1.50:steps=10",
		// NaN fails every range comparison, so the bias check must use the
		// negated in-range form to reject it.
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=biased/NaN:steps=10",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=biased/-Inf:steps=10",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random/0.50:steps=10",
		// Duplicate fields would silently overwrite the first value.
		"drv1:WEC_COUNT/exact:n=3:n=4:seed=1:pol=random:steps=10",
		"drv1:WEC_COUNT/exact:n=3:seed=1:seed=2:pol=random:steps=10",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=10:crash=0@5:crash=1@6",
		// Crash schedules must be in canonical step-then-process order with
		// one crash per process; out-of-order or duplicated schedules would
		// make two spec strings name one execution.
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100:crash=1@50,0@20",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100:crash=1@20,0@20",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100:crash=0@20,0@50",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100:crash=0@20,0@20",
		// Trailing garbage in crash= fields.
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100:crash=0@20,",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100:crash=0@2 0",
	}
	for _, in := range bad {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed spec", in)
		}
	}
}

func TestSpecBiasExactRoundTrip(t *testing.T) {
	// The FormatFloat('g', -1) encoding must make String↔ParseSpec exact for
	// ANY bias in [0,1] — in particular the off-grid biases mutation
	// produces, which the old %.2f quantization rejected.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		s := Spec{Lang: "WEC_COUNT", Source: "exact", N: 3, Seed: rng.Int63(),
			Policy: PolBiased, Bias: rng.Float64(), Steps: 100}
		parsed, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("bias %v: %v", s.Bias, err)
		}
		if parsed.Bias != s.Bias || parsed.String() != s.String() {
			t.Fatalf("bias %v did not round-trip exactly: %q parsed to %+v", s.Bias, s.String(), parsed)
		}
	}
	// Old two-decimal specs still parse (and re-render normalized).
	legacy, err := ParseSpec("drv1:WEC_COUNT/exact:n=3:seed=1:pol=biased/0.50:steps=10")
	if err != nil {
		t.Fatalf("legacy two-decimal bias rejected: %v", err)
	}
	if legacy.Bias != 0.5 {
		t.Fatalf("legacy bias parsed to %v, want 0.5", legacy.Bias)
	}
	if got := legacy.String(); got != "drv1:WEC_COUNT/exact:n=3:seed=1:pol=biased/0.5:steps=10" {
		t.Fatalf("legacy spec re-rendered as %q", got)
	}
}

func TestExecuteRejectsUnknownLangAndSource(t *testing.T) {
	if _, err := Execute(Spec{Lang: "NO_SUCH", Source: "exact", N: 2, Policy: PolRandom, Steps: 10}); err == nil {
		t.Error("unknown language accepted")
	}
	if _, err := Execute(Spec{Lang: "WEC_COUNT", Source: "no-such", N: 2, Policy: PolRandom, Steps: 10}); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestExecuteDeterministicDigest(t *testing.T) {
	// The same spec must reproduce the same execution bit for bit; the
	// digest covers the history and every verdict's step and history index.
	specs := []string{
		"drv1:WEC_COUNT/exact:n=3:seed=7:pol=random:steps=2600",
		"drv1:LIN_REG/atomic:n=3:seed=7:pol=bursty:steps=500",
		"drv1:SEC_COUNT/over-read:n=2:seed=7:pol=biased/0.60:steps=2100",
		"drv1:EC_LED/gossip-converge:n=3:seed=7:pol=cursor:steps=800:crash=1@222",
	}
	for _, in := range specs {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		if a.Digest != b.Digest {
			t.Errorf("%s: digest %s then %s across two executions", in, a.Digest, b.Digest)
		}
	}
}

// sweepSize returns the scenario count for sweep tests: small in -short,
// fuller at full depth.
func sweepSize() int {
	if testing.Short() {
		return 40
	}
	return 300
}

func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	// The folded report must be byte-identical for every worker count —
	// the same property drvtable guarantees for Table 1.
	n := sweepSize()
	var renders []string
	for _, workers := range []int{1, 4} {
		rep, err := Explore(Options{
			Master: 3, Scenarios: n, Workers: workers,
			Gen: GenConfig{MaxCrashes: 2}, Shrink: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		renders = append(renders, string(js))
	}
	if renders[0] != renders[1] {
		t.Errorf("workers=1 and workers=4 folded different reports:\n%s\n%s", renders[0], renders[1])
	}
}

func TestExplorePooledMatchesUnpooled(t *testing.T) {
	// Pooled runtime+session reuse is an optimization, never a semantic
	// knob: the folded report must be byte-identical with pooling on and
	// off, across worker counts.
	n := sweepSize()
	var renders []string
	for _, cfg := range []struct {
		unpooled bool
		workers  int
	}{{false, 1}, {true, 1}, {false, 4}, {true, 4}} {
		rep, err := Explore(Options{
			Master: 5, Scenarios: n, Workers: cfg.workers,
			Gen: GenConfig{MaxCrashes: 2}, Unpooled: cfg.unpooled,
		})
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		renders = append(renders, string(js))
	}
	for i := 1; i < len(renders); i++ {
		if renders[i] != renders[0] {
			t.Fatalf("configuration %d folded a different report:\n%s\nvs\n%s", i, renders[i], renders[0])
		}
	}
}

func TestExploreIncrementalMatchesUnincremental(t *testing.T) {
	// The incremental checker is an optimization, never a semantic knob: for
	// every scenario family the folded report must be byte-identical with the
	// incremental path on and off, across worker counts and pooling — the
	// same contract pooling itself carries. A mismatch means a stale memo
	// corrupted a verdict somewhere, which the per-package differentials
	// should have caught first.
	n := sweepSize() / 2
	for _, fam := range []string{FamLang, FamObj, FamMsg} {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			gen := GenConfig{MaxCrashes: 2}
			if fam != FamLang {
				gen.Families = []string{fam}
			}
			var renders []string
			for _, cfg := range []struct {
				unincremental bool
				unpooled      bool
				workers       int
			}{{false, false, 1}, {true, false, 1}, {true, true, 1}, {false, false, 4}, {true, false, 4}} {
				rep, err := Explore(Options{
					Master: 11, Scenarios: n, Workers: cfg.workers, Gen: gen,
					Unpooled: cfg.unpooled, Unincremental: cfg.unincremental,
				})
				if err != nil {
					t.Fatal(err)
				}
				js, err := json.Marshal(rep)
				if err != nil {
					t.Fatal(err)
				}
				renders = append(renders, string(js))
			}
			for i := 1; i < len(renders); i++ {
				if renders[i] != renders[0] {
					t.Fatalf("configuration %d folded a different report:\n%s\nvs\n%s", i, renders[i], renders[0])
				}
			}
		})
	}
}

func TestShippedMonitorsHaveNoDivergence(t *testing.T) {
	// The headline differential claim: across random schedules, crashes and
	// sources, the shipped monitors never contradict the oracles. Any
	// failure here is either a monitor bug or an oracle-model bug — both
	// worth a corpus entry once understood.
	rep, err := Explore(Options{
		Master: 1, Scenarios: sweepSize(), Workers: 4,
		Gen: GenConfig{MaxCrashes: 2}, Replay: !testing.Short(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("divergence on shipped monitors: %s %v", f.Spec, f.Divergences)
	}
	// The sweep must actually exercise the differential surface.
	for _, name := range []string{CheckWellFormed, CheckSourcePrefix, CheckOwnSafety, CheckLabelSafety, CheckClass} {
		if rep.Checks[name] == 0 {
			t.Errorf("check %s never ran", name)
		}
	}
	if rep.Crashed == 0 {
		t.Error("no crash scenarios generated")
	}
}

func TestGeneratedSpecsRespectConfig(t *testing.T) {
	cfg := GenConfig{Langs: []string{"WEC_COUNT", "LIN_REG"}, MaxCrashes: 1, MaxSteps: 900}
	for i := 0; i < 100; i++ {
		s := NewSpec(5, i, cfg)
		if s.Lang != "WEC_COUNT" && s.Lang != "LIN_REG" {
			t.Fatalf("spec %d picked language %s outside the filter", i, s.Lang)
		}
		if s.Steps > 900 {
			t.Fatalf("spec %d has %d steps above the cap", i, s.Steps)
		}
		if len(s.Crashes) > 1 {
			t.Fatalf("spec %d has %d crashes above the cap", i, len(s.Crashes))
		}
		if err := s.validate(); err != nil {
			t.Fatalf("spec %d invalid: %v", i, err)
		}
	}
	if err := (GenConfig{Langs: []string{"NOPE"}}).validate(); err == nil {
		t.Error("unknown language in config accepted")
	}
}

func TestReportChecksAccounting(t *testing.T) {
	// A crash scenario must skip the label oracles and still run the
	// structural ones.
	s, err := ParseSpec("drv1:WEC_COUNT/exact:n=3:seed=9:pol=random:steps=2600:crash=0@400")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Divergences) != 0 {
		t.Fatalf("unexpected divergences: %v", out.Divergences)
	}
	ran := strings.Join(out.Ran, ",")
	for _, want := range []string{CheckWellFormed, CheckSourcePrefix, CheckOwnSafety, CheckCrashQuiet} {
		if !strings.Contains(ran, want) {
			t.Errorf("check %s did not run on a crash scenario (ran: %s)", want, ran)
		}
	}
	skipped := strings.Join(out.Skipped, ",")
	for _, want := range []string{CheckLabelSafety, CheckClass} {
		if !strings.Contains(skipped, want) {
			t.Errorf("check %s was not skipped on a crash scenario (skipped: %s)", want, skipped)
		}
	}
}
