package explore

// Acceptance tests for coverage-guided exploration: at equal scenario
// budget and fixed master seed, guidance from the committed corpus must
// discover strictly more distinct coverage signatures than the blind sweep,
// and a guided report must stay byte-identical across worker counts and
// pooling modes — guidance is a sampling strategy, never a determinism
// leak.

import (
	"encoding/json"
	"testing"

	"github.com/drv-go/drv/internal/experiment"
	"github.com/drv-go/drv/internal/monitor"
)

// committedCorpus is the seed corpus shipped with the repository.
const committedCorpus = "testdata/corpus"

func loadCommitted(t *testing.T) *Corpus {
	t.Helper()
	c, err := LoadCorpus(committedCorpus)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == 0 {
		t.Fatal("committed corpus is empty; regenerate with EXPLORE_CORPUS_OUT=testdata/corpus go test -run TestRegenerateSeedCorpus ./internal/explore")
	}
	return c
}

func TestGuidedBeatsBlindCoverage(t *testing.T) {
	// The tentpole claim: guidance concentrates the budget on the boundary
	// of the seen signature space, so it must strictly out-discover the
	// blind sweep at the same budget and master seed. Everything here is
	// deterministic — the committed corpus, the master seed and the round
	// size pin both runs bit for bit.
	if testing.Short() {
		t.Skip("guided-vs-blind comparison runs at full depth")
	}
	const budget, master = 250, 2
	blind, err := Explore(Options{
		Master: master, Scenarios: budget, Workers: 4,
		Gen: GenConfig{MaxCrashes: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	guided, err := Explore(Options{
		Master: master, Scenarios: budget, Workers: 4,
		Gen:    GenConfig{MaxCrashes: 2},
		Corpus: loadCommitted(t), MutateFrac: 0.5, Round: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if guided.Coverage <= blind.Coverage {
		t.Errorf("guided run found %d signatures, blind found %d — guidance must strictly win at equal budget",
			guided.Coverage, blind.Coverage)
	}
	if guided.Mutated == 0 {
		t.Error("guided run never mutated a corpus entry")
	}
	if guided.CorpusNew == 0 {
		t.Error("guided run added nothing to the corpus")
	}
	for _, f := range append(blind.Failures, guided.Failures...) {
		t.Errorf("divergence on shipped monitors: %s %v", f.Spec, f.Divergences)
	}
}

func TestGuidedReportDeterministicAcrossWorkersAndPooling(t *testing.T) {
	// Corpus growth feeds back into later rounds' mutation draws, so it is
	// the one place worker count could sneak into a guided report; folding
	// signatures in scenario-index order keeps it out. Each run loads its
	// own corpus copy — Explore grows the corpus it is given.
	n := 40
	if !testing.Short() {
		n = 150
	}
	var renders []string
	var grown []int
	for _, cfg := range []struct {
		workers  int
		unpooled bool
	}{{1, false}, {4, false}, {4, true}, {1, true}} {
		c := loadCommitted(t)
		rep, err := Explore(Options{
			Master: 11, Scenarios: n, Workers: cfg.workers,
			Gen:    GenConfig{MaxCrashes: 2},
			Corpus: c, MutateFrac: 0.5, Round: 25,
			Unpooled: cfg.unpooled,
		})
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		renders = append(renders, string(js))
		grown = append(grown, c.New())
	}
	for i := 1; i < len(renders); i++ {
		if renders[i] != renders[0] {
			t.Fatalf("guided configuration %d folded a different report:\n%s\nvs\n%s", i, renders[i], renders[0])
		}
		if grown[i] != grown[0] {
			t.Fatalf("guided configuration %d grew the corpus by %d entries, configuration 0 by %d", i, grown[i], grown[0])
		}
	}
	if grown[0] == 0 {
		t.Error("no configuration grew the corpus — the feedback loop never fired")
	}
}

func TestGuidedZeroMutateFracMatchesBlind(t *testing.T) {
	// MutateFrac 0 must reproduce the blind sweep scenario for scenario even
	// with a corpus loaded: the guidance stream is independent of the
	// generation stream. (Coverage bookkeeping still runs on both sides.)
	n := 40
	blind, err := Explore(Options{Master: 13, Scenarios: n, Workers: 2, Gen: GenConfig{MaxCrashes: 2}})
	if err != nil {
		t.Fatal(err)
	}
	guided, err := Explore(Options{
		Master: 13, Scenarios: n, Workers: 2, Gen: GenConfig{MaxCrashes: 2},
		Corpus: loadCommitted(t), MutateFrac: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if blind.Coverage != guided.Coverage || blind.TotalSteps != guided.TotalSteps || blind.TotalVerdicts != guided.TotalVerdicts {
		t.Errorf("MutateFrac 0 changed the sweep: blind %d/%d/%d vs corpus-loaded %d/%d/%d",
			blind.Coverage, blind.TotalSteps, blind.TotalVerdicts,
			guided.Coverage, guided.TotalSteps, guided.TotalVerdicts)
	}
	if guided.Mutated != 0 {
		t.Errorf("MutateFrac 0 still mutated %d scenarios", guided.Mutated)
	}
}

func TestCommittedCorpusEntriesReplayClean(t *testing.T) {
	// Every committed seed must execute without divergence on the shipped
	// monitors — a corpus entry that diverges belongs in corpus_test.go with
	// a lesson attached, not in the mutation pool.
	c := loadCommitted(t)
	n := c.Len()
	if testing.Short() {
		n = 12 // spot-check the head; the full tier replays everything
	}
	workers := 8
	runners := make([]Runner, experiment.WorkerCount(n, workers))
	for w := range runners {
		runners[w].Session = monitor.NewSession()
		defer runners[w].Session.Close()
	}
	errs := make([]string, n)
	experiment.ForEachWorker(n, workers, func(w, i int) {
		s := c.At(i)
		out, err := runners[w].Execute(s)
		switch {
		case err != nil:
			errs[i] = "does not execute: " + err.Error()
		case len(out.Divergences) > 0:
			errs[i] = "diverges: " + out.Divergences[0].Detail
		}
	})
	for i, msg := range errs {
		if msg != "" {
			t.Errorf("corpus entry %s %s", c.At(i), msg)
		}
	}
}
