package explore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/word"
)

// family groups the languages by the monitor construction the explorer runs
// against them, which in turn fixes the decidability predicate used as the
// verdict oracle.
type family uint8

const (
	// famWEC runs the amplified Figure 5 weak decider (untimed, WD oracle).
	famWEC family = iota + 1
	// famSEC runs the amplified Figure 9 decider (timed, PWD oracle).
	famSEC
	// famPred runs the Figure 8 predictive monitor with the LIN or SC
	// acceptance check (timed, PSD oracle).
	famPred
	// famECLed runs the best-effort EC-ledger monitor; EC_LED is
	// undecidable in every class, so only the structural and label-safety
	// oracles apply.
	famECLed
)

// famOf maps a Table 1 language name to its monitor family.
func famOf(langName string) family {
	switch langName {
	case "WEC_COUNT":
		return famWEC
	case "SEC_COUNT":
		return famSEC
	case "EC_LED":
		return famECLed
	default:
		return famPred
	}
}

// timed reports whether the family monitors against the timed adversary Aτ.
func (f family) timed() bool { return f == famSEC || f == famPred }

// Outcome is the result of executing one scenario.
type Outcome struct {
	// Spec is the executed scenario.
	Spec Spec `json:"spec"`
	// Monitor names the monitor that ran.
	Monitor string `json:"monitor"`
	// Label is the source's ω-membership ground truth.
	Label bool `json:"label"`
	// Steps is the number of scheduler steps actually taken.
	Steps int `json:"steps"`
	// Verdicts is the total verdict count across processes.
	Verdicts int `json:"verdicts"`
	// NOs is the total NO count across processes.
	NOs int `json:"nos"`
	// Digest fingerprints the full execution (history, verdict streams,
	// step and history indices); equal specs must produce equal digests.
	Digest string `json:"digest"`
	// Cursor snapshots the adversary cursor's drive state at the end of the
	// run (source depth, gate backlog, exhaustion) — one of the signature's
	// coverage axes.
	Cursor adversary.CursorStats `json:"cursor"`
	// Signature is the outcome's coverage class (see coverage.go): the
	// guided explorer corpus-keeps one spec per distinct signature.
	Signature string `json:"signature"`
	// Divergences are the failed differential checks, empty when the
	// scenario is clean.
	Divergences []Divergence `json:"divergences,omitempty"`
	// OracleFailures (object family only) are oracle violations on
	// properties the implementation does not guarantee: the seeded bug was
	// exposed. They are findings about the system under test, not about the
	// monitoring stack, so they are reported separately from Divergences.
	OracleFailures []Divergence `json:"oracle_failures,omitempty"`
	// Ran and Skipped name the checks that ran and those that did not
	// apply (label checks on crashed runs, tail proxies on short runs).
	Ran     []string `json:"ran"`
	Skipped []string `json:"skipped,omitempty"`
}

// Runner executes scenarios. The zero value runs the shipped monitors on a
// fresh runtime per scenario; Wrap lets tests swap in broken ones, Session
// lets a worker reuse one pooled runtime for its whole batch.
type Runner struct {
	// Wrap, when non-nil, wraps the scenario's monitor before the run.
	Wrap func(monitor.Monitor) monitor.Monitor
	// Session, when non-nil, executes every scenario on this pooled
	// runtime+session pair. Outcomes are byte-identical to unpooled runs,
	// but the runner must not be used concurrently (explore gives each
	// worker its own).
	Session *monitor.Session
	// Unincremental disables the incremental consistency checkers: the
	// predictive monitors and the label oracles re-run every witness search
	// from scratch, as before the incremental checker existed. Outcomes are
	// byte-identical either way (the differential tests pin it); the flag is
	// the escape hatch — and the differential driver — while the incremental
	// path is new.
	Unincremental bool
	// scratch, when non-nil (see Pooled), reuses one execution substrate —
	// SUT instances, workload, service, timed adversary, crash map, network —
	// across the runner's scenarios instead of allocating it per run.
	scratch *runScratch
	// stages, when non-nil, accumulates per-stage wall time and allocations
	// (see StageStats); nil costs nothing on the hot path.
	stages *stageRecorder
}

// safetyViolated evaluates the language's safety test on w. Languages whose
// test is a witness-search condition (Lang.Checker) run through an
// incremental checker — one pass over w even for the per-prefix-quantified
// conditions, where the closed-over checker re-searches every response-ended
// prefix — borrowing from the pooled session's checker pool when there is
// one. The boolean is identical on every path.
func (r Runner) safetyViolated(l lang.Lang, w word.Word) bool {
	c := l.Checker
	if c == nil || r.Unincremental {
		return l.SafetyViolated(w)
	}
	var chk *check.Incremental
	if r.Session != nil {
		chk = r.Session.CheckPool().Get(l.Object, c.RealTime, w.Procs())
	} else {
		chk = check.NewIncremental(l.Object, c.RealTime, w.Procs())
	}
	if c.PerPrefix {
		return chk.AnyPrefixViolated(w)
	}
	return !chk.CheckWord(w)
}

// Execute runs the scenario and differentially checks its verdicts. The
// returned error reports unexecutable specs (unknown language or source);
// oracle mismatches are reported as Divergences in the outcome.
func Execute(s Spec) (*Outcome, error) { return Runner{}.Execute(s) }

// Execute runs the scenario under the runner's monitor wrapping.
func (r Runner) Execute(s Spec) (*Outcome, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.Fam() == FamObj {
		return r.executeObj(s)
	}
	if s.Fam() == FamMsg {
		return r.executeMsg(s)
	}
	l, err := langByName(s.Lang)
	if err != nil {
		return nil, err
	}
	var lb adversary.Labeled
	found := false
	for _, cand := range l.Sources(s.N, s.Seed) {
		if cand.Name == s.Source {
			lb, found = cand, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("explore: language %s has no source %q", s.Lang, s.Source)
	}

	fam := famOf(s.Lang)
	crash := r.crashMap(s)

	adv := adversary.NewA(s.N, lb.New())
	var tau *adversary.Timed
	var svc adversary.Service = adv
	if fam.timed() {
		tau = adversary.NewTimed(s.N, adv, adversary.ArrayAtomic)
		svc = tau
	}
	m := r.buildMonitor(fam, l, tau)
	cfg := monitor.Config{
		N:       s.N,
		Monitor: m,
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			return svc, []int{adv.Register(rt)}
		},
		Policy:   func(aux []int) sched.Policy { return s.policy(aux) },
		MaxSteps: s.Steps,
		Crash:    crash,
	}
	mark := r.stages.start()
	var res *monitor.Result
	if r.Session != nil {
		res = r.Session.Run(cfg)
	} else {
		res = monitor.Run(cfg)
	}
	r.stages.stop(FamLang, stageExecute, mark)

	out := &Outcome{
		Spec:    s,
		Monitor: m.Name(),
		Label:   lb.In,
		Steps:   res.Steps,
		NOs:     res.TotalNO(),
		Digest:  digest(res),
		Cursor:  adv.CursorStats(),
	}
	for p := range res.Verdicts {
		out.Verdicts += len(res.Verdicts[p])
	}
	mark = r.stages.start()
	r.runChecks(out, l, lb, fam, res, tau)
	r.stages.stop(FamLang, stageCheck, mark)
	out.Signature = signatureOf(out, res)
	return out, nil
}

// buildMonitor constructs the family's monitor for the language, applying
// the runner's wrapping.
func (r Runner) buildMonitor(fam family, l lang.Lang, tau *adversary.Timed) monitor.Monitor {
	var m monitor.Monitor
	switch fam {
	case famWEC:
		m = monitor.AmplifyWAD(monitor.NewWEC(adversary.ArrayAtomic), adversary.ArrayAtomic)
	case famSEC:
		m = monitor.AmplifyWAD(monitor.NewSEC(tau, adversary.ArrayAtomic), adversary.ArrayAtomic)
	case famECLed:
		m = monitor.NewECLed(adversary.ArrayAtomic)
	default:
		obj := l.Object
		realTime := l.Name == "LIN_REG" || l.Name == "LIN_LED"
		switch {
		case realTime && r.Unincremental:
			m = monitor.NewLinScratch(obj, tau, adversary.ArrayAtomic)
		case realTime:
			m = monitor.NewLin(obj, tau, adversary.ArrayAtomic)
		case r.Unincremental:
			m = monitor.NewSCScratch(obj, tau, adversary.ArrayAtomic)
		default:
			m = monitor.NewSC(obj, tau, adversary.ArrayAtomic)
		}
	}
	if r.Wrap != nil {
		m = r.Wrap(m)
	}
	return m
}

// policy builds the scenario's scheduling policy. The policy seed is an
// independent stream derived from the spec seed, so schedule randomness and
// source randomness never correlate.
func (s Spec) policy(aux []int) sched.Policy {
	pseed := mix(s.Seed, 0x5eed)
	cursor := -1
	if len(aux) > 0 {
		cursor = aux[0]
	}
	switch s.Policy {
	case PolRandom:
		return sched.Random(pseed)
	case PolBursty:
		return sched.Bursty(pseed, 4)
	case PolCursor:
		return sched.Prioritize(cursor, sched.Random(pseed))
	default:
		return sched.Biased(pseed, cursor, s.Bias)
	}
}

// digest fingerprints everything the differential checks see: the exhibited
// history and the per-process verdict streams with their step and history
// indices. Replaying a spec must reproduce the digest bit for bit.
func digest(res *monitor.Result) string {
	h := sha256.New()
	fmt.Fprintf(h, "steps=%d\nhist=%s\n", res.Steps, res.History)
	for p := range res.Verdicts {
		fmt.Fprintf(h, "p%d:", p)
		for k, v := range res.Verdicts[p] {
			fmt.Fprintf(h, " %s@%d/%d", v, res.StepAt[p][k], res.HistAt[p][k])
		}
		fmt.Fprintln(h)
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}
