package explore

// Corpus persistence: the load/save round trip, signature dedup, the legacy
// no-signature format, and the deterministic entry order mutation draws
// depend on.

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestRegenerateSeedCorpus rebuilds the committed seed corpus; normally
// skipped. Regenerate (after a signature-algorithm or spec-format change)
// with:
//
//	EXPLORE_CORPUS_OUT=testdata/corpus go test -run TestRegenerateSeedCorpus -v ./internal/explore
//
// Delete the directory first for a from-scratch corpus; with it in place the
// run extends it. The sweep is itself guided, so later rounds mutate what
// earlier rounds discovered and the saved corpus covers more than a blind
// sweep of the same budget would.
func TestRegenerateSeedCorpus(t *testing.T) {
	dir := os.Getenv("EXPLORE_CORPUS_OUT")
	if dir == "" {
		t.Skip("set EXPLORE_CORPUS_OUT=testdata/corpus to regenerate the committed corpus")
	}
	c, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Explore(Options{
		Master: 1135, Scenarios: 1200, Workers: runtime.NumCPU(),
		Gen: GenConfig{MaxCrashes: 2}, Corpus: c, MutateFrac: 0.4, Round: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.SaveNew(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("coverage %d over %d scenarios (%d mutated); saved %d new seeds to %s",
		rep.Coverage, rep.Scenarios, rep.Mutated, n, dir)
	for _, f := range rep.Failures {
		t.Errorf("divergence while regenerating: %s %v", f.Spec, f.Divergences)
	}
}

// TestRegenerateObjSeedCorpus rebuilds the committed object-family seed
// corpus (testdata/corpus-obj); normally skipped. The object corpus lives in
// its own directory: corpus entries keep their family under mutation, so
// mixing the families in one corpus would leak object scenarios into
// language sweeps (and vice versa). Regenerate with:
//
//	EXPLORE_OBJ_CORPUS_OUT=testdata/corpus-obj go test -run TestRegenerateObjSeedCorpus -v ./internal/explore
func TestRegenerateObjSeedCorpus(t *testing.T) {
	dir := os.Getenv("EXPLORE_OBJ_CORPUS_OUT")
	if dir == "" {
		t.Skip("set EXPLORE_OBJ_CORPUS_OUT=testdata/corpus-obj to regenerate the committed object corpus")
	}
	c, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Explore(Options{
		Master: 2077, Scenarios: 900, Workers: runtime.NumCPU(),
		Gen:    GenConfig{Families: []string{FamObj}, MaxCrashes: 2},
		Corpus: c, MutateFrac: 0.4, Round: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.SaveNew(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("coverage %d over %d scenarios (%d mutated, %d bug scenarios); saved %d new seeds to %s",
		rep.Coverage, rep.Scenarios, rep.Mutated, rep.BugScenarios, n, dir)
	for _, f := range rep.Failures {
		t.Errorf("divergence while regenerating: %s %v", f.Spec, f.Divergences)
	}
}

// TestRegenerateMsgSeedCorpus rebuilds the committed message-family seed
// corpus (testdata/corpus-msg); normally skipped. As with the object corpus,
// the family keeps its own directory so mutation draws stay inside it.
// Regenerate with:
//
//	EXPLORE_MSG_CORPUS_OUT=testdata/corpus-msg go test -run TestRegenerateMsgSeedCorpus -v ./internal/explore
func TestRegenerateMsgSeedCorpus(t *testing.T) {
	dir := os.Getenv("EXPLORE_MSG_CORPUS_OUT")
	if dir == "" {
		t.Skip("set EXPLORE_MSG_CORPUS_OUT=testdata/corpus-msg to regenerate the committed message corpus")
	}
	c, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Explore(Options{
		Master: 3077, Scenarios: 900, Workers: runtime.NumCPU(),
		Gen:    GenConfig{Families: []string{FamMsg}, MaxCrashes: 2},
		Corpus: c, MutateFrac: 0.4, Round: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.SaveNew(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("coverage %d over %d scenarios (%d mutated, %d bug scenarios); saved %d new seeds to %s",
		rep.Coverage, rep.Scenarios, rep.Mutated, rep.BugScenarios, n, dir)
	for _, f := range rep.Failures {
		t.Errorf("divergence while regenerating: %s %v", f.Spec, f.Divergences)
	}
}

func mustSpec(t *testing.T, line string) Spec {
	t.Helper()
	s, err := ParseSpec(line)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCorpusSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := NewCorpus()
	a := mustSpec(t, "drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100")
	b := mustSpec(t, "drv1:LIN_REG/atomic:n=2:seed=2:pol=bursty:steps=200:crash=0@50")
	if !c.Add(a, "c1:sigA") || !c.Add(b, "c1:sigB") {
		t.Fatal("fresh entries not added")
	}
	n, err := c.SaveNew(dir)
	if err != nil || n != 2 {
		t.Fatalf("SaveNew wrote %d entries, err %v", n, err)
	}

	loaded, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 || loaded.New() != 0 {
		t.Fatalf("loaded %d entries (%d new), want 2 (0 new)", loaded.Len(), loaded.New())
	}
	if !loaded.HasSig("c1:sigA") || !loaded.HasSig("c1:sigB") {
		t.Error("signatures not restored from disk")
	}
	got := map[string]bool{loaded.At(0).String(): true, loaded.At(1).String(): true}
	if !got[a.String()] || !got[b.String()] {
		t.Errorf("loaded specs %v do not match saved ones", got)
	}

	// A re-save of the same corpus is a no-op: nothing is new.
	if n, err := loaded.SaveNew(dir); err != nil || n != 0 {
		t.Fatalf("re-save wrote %d files, err %v", n, err)
	}
}

func TestCorpusDedup(t *testing.T) {
	c := NewCorpus()
	a := mustSpec(t, "drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100")
	if !c.Add(a, "c1:sig") {
		t.Fatal("first add rejected")
	}
	if c.Add(a, "") {
		t.Error("exact duplicate spec added")
	}
	other := mustSpec(t, "drv1:WEC_COUNT/exact:n=3:seed=99:pol=random:steps=100")
	if c.Add(other, "c1:sig") {
		t.Error("already-covered signature added")
	}
	if !c.Add(other, "c1:other") {
		t.Error("novel signature rejected")
	}
	if c.Len() != 2 {
		t.Fatalf("corpus has %d entries, want 2", c.Len())
	}
}

func TestCorpusLoadOrderIsDeterministic(t *testing.T) {
	// Entry order feeds the seeded mutation draws, so it must be a pure
	// function of the directory contents: sorted by file name.
	dir := t.TempDir()
	lines := []string{
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100",
		"drv1:WEC_COUNT/exact:n=3:seed=2:pol=random:steps=100",
		"drv1:WEC_COUNT/exact:n=3:seed=3:pol=random:steps=100",
	}
	// Write in non-sorted name order to prove loading re-sorts.
	for i, name := range []string{"c.seed", "a.seed", "b.seed"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(lines[i]+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{lines[1], lines[2], lines[0]} // a.seed, b.seed, c.seed
	for i, want := range wantOrder {
		if got := c.At(i).String(); got != want {
			t.Errorf("entry %d is %q, want %q", i, got, want)
		}
	}
}

func TestCorpusLoadLegacyAndComments(t *testing.T) {
	dir := t.TempDir()
	content := strings.Join([]string{
		"# a hand-written seed file: no signature, extra comments, blank lines",
		"",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100",
		"# sig: c1:known",
		"drv1:LIN_REG/atomic:n=2:seed=2:pol=bursty:steps=200",
		"",
	}, "\n")
	if err := os.WriteFile(filepath.Join(dir, "hand.seed"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	// Non-seed files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("docs\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("loaded %d entries, want 2", c.Len())
	}
	if !c.HasSig("c1:known") || c.HasSig("") {
		t.Error("signature attachment wrong")
	}
}

func TestCorpusLoadMissingDirIsEmpty(t *testing.T) {
	c, err := LoadCorpus(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatalf("missing dir should bootstrap an empty corpus, got %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("empty corpus has %d entries", c.Len())
	}
}

func TestCorpusLoadRejectsMalformedSpec(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.seed"), []byte("drv1:garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil {
		t.Error("malformed corpus entry loaded silently")
	}
}
