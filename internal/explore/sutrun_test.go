package explore

// Tests for the object-execution family: spec round trips, execution
// determinism (pooled and not), the oracle split between divergences and
// bug findings, the acceptance pin — the explorer finds the seeded-bug
// implementations and shrinks the findings to small reproducers — and the
// monitor axis catching a broken monitor on real executions.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/drv-go/drv/internal/monitor"
)

// objGen is the object-family generator config used across these tests.
func objGen() GenConfig {
	return GenConfig{Families: []string{FamObj}, MaxCrashes: 2}
}

func TestObjSpecStringRoundTrip(t *testing.T) {
	for i := 0; i < 200; i++ {
		s := NewSpec(2077, i, objGen())
		if s.Fam() != FamObj {
			t.Fatalf("spec %d is not an object scenario: %s", i, s)
		}
		parsed, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("spec %d %q: %v", i, s.String(), err)
		}
		if parsed.String() != s.String() {
			t.Fatalf("round trip changed %q into %q", s.String(), parsed.String())
		}
		if !strings.HasPrefix(s.String(), objSpecVersion+":") {
			t.Fatalf("object spec %q does not carry the %s tag", s.String(), objSpecVersion)
		}
	}
}

func TestParseSpecRejectsMalformedObj(t *testing.T) {
	bad := []string{
		// The object family and the workload fields are drv2-only grammar.
		"drv1:obj/queue/lifo:n=2:seed=1:pol=random:steps=100:ops=4:mb=0.5",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100:ops=4",
		"drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100:mb=0.5",
		// Head shape.
		"drv2:obj/queue:n=2:seed=1:pol=random:steps=100:ops=4:mb=0.5",
		"drv2:obj//lifo:n=2:seed=1:pol=random:steps=100:ops=4:mb=0.5",
		// Unknown object / implementation.
		"drv2:obj/deque/lock:n=2:seed=1:pol=random:steps=100:ops=4:mb=0.5",
		"drv2:obj/queue/nope:n=2:seed=1:pol=random:steps=100:ops=4:mb=0.5",
		// Workload bounds (and the NaN trick, as for the policy bias).
		"drv2:obj/queue/lifo:n=2:seed=1:pol=random:steps=100:ops=0:mb=0.5",
		"drv2:obj/queue/lifo:n=2:seed=1:pol=random:steps=100:ops=65:mb=0.5",
		"drv2:obj/queue/lifo:n=2:seed=1:pol=random:steps=100:ops=4:mb=1.5",
		"drv2:obj/queue/lifo:n=2:seed=1:pol=random:steps=100:ops=4:mb=NaN",
		// A language spec must not carry workload fields even under drv2.
		"drv2:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100:ops=4:mb=0.5",
		// Missing workload fields on an object spec.
		"drv2:obj/queue/lifo:n=2:seed=1:pol=random:steps=100",
	}
	for _, in := range bad {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed spec", in)
		}
	}
	// The drv2 tag is a superset grammar: a language spec parses under it
	// and re-renders version-minimally with the drv1 tag.
	s, err := ParseSpec("drv2:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100")
	if err != nil {
		t.Fatalf("drv2-tagged language spec rejected: %v", err)
	}
	if got := s.String(); got != "drv1:WEC_COUNT/exact:n=3:seed=1:pol=random:steps=100" {
		t.Errorf("drv2-tagged language spec re-rendered as %q", got)
	}
}

func TestSpecVersionTagMutationRejected(t *testing.T) {
	// Corpora replay across explorer versions; a mutated version tag must
	// fail loudly instead of replaying under the wrong grammar.
	valid := []string{
		"drv1:WEC_COUNT/exact:n=3:seed=7:pol=random:steps=2600",
		"drv2:obj/queue/lifo:n=2:seed=7:pol=random:steps=900:ops=4:mb=0.5",
		"drv3:msg/register/abd:n=3:seed=7:pol=random:steps=2000:ops=4:mb=0.5:net=lifo",
	}
	for _, line := range valid {
		if _, err := ParseSpec(line); err != nil {
			t.Fatalf("valid spec %q rejected: %v", line, err)
		}
		for _, tag := range []string{"drv0", "drv4", "DRV1", "drv11", "drv", ""} {
			mutated := tag + line[strings.Index(line, ":"):]
			if _, err := ParseSpec(mutated); err == nil {
				t.Errorf("ParseSpec(%q) accepted a mutated version tag", mutated)
			}
		}
	}
}

func TestObjExecuteDeterministicAndPooled(t *testing.T) {
	// The determinism contract extends to object scenarios: same spec, same
	// digest and signature, pooled or not, run after run on one session.
	sess := monitor.NewSession()
	defer sess.Close()
	pooled := Runner{Session: sess}
	for i := 0; i < 12; i++ {
		s := NewSpec(31, i, objGen())
		a, err := Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pooled.Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		if a.Digest != b.Digest || a.Signature != b.Signature {
			t.Errorf("%s: unpooled %s/%s vs pooled %s/%s", s, a.Digest, a.Signature, b.Digest, b.Signature)
		}
	}
}

func TestObjCorrectImplsClean(t *testing.T) {
	// The correct implementation of every object must run clean across
	// seeds and crash schedules: no divergence (its guarantees hold) and no
	// oracle failure (it has no planted bug to find).
	for _, object := range Objects() {
		impl := ImplsOf(object)[0] // correct variant first, by convention
		for seed := int64(1); seed <= 4; seed++ {
			s := Spec{Family: FamObj, Object: object, Impl: impl, N: 3, Seed: seed,
				Policy: PolRandom, Steps: 1200, OpsPerProc: 4, MutBias: 0.5}
			if seed%2 == 0 {
				s.Crashes = []Crash{{Step: 40, Proc: 1}}
			}
			out, err := Execute(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Divergences) > 0 {
				t.Errorf("%s diverged: %v", s, out.Divergences)
			}
			if len(out.OracleFailures) > 0 {
				t.Errorf("%s produced oracle failures on a correct implementation: %v", s, out.OracleFailures)
			}
			if !out.Label {
				t.Errorf("%s: correct implementation not labelled correct", s)
			}
		}
	}
}

func TestObjSignatureSeparatesImplsAndBugs(t *testing.T) {
	// The family/object/impl triple anchors the class, and an exposed bug
	// folds into its own class — the axis guidance steers by.
	lock := Spec{Family: FamObj, Object: "queue", Impl: "lock", N: 2, Seed: 7,
		Policy: PolRandom, Steps: 900, OpsPerProc: 4, MutBias: 0.5}
	lifo := lock
	lifo.Impl = "lifo"
	a, err := Execute(lock)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(lifo)
	if err != nil {
		t.Fatal(err)
	}
	if a.Signature == b.Signature {
		t.Errorf("lock and lifo queues share signature %q", a.Signature)
	}
	if !strings.Contains(a.Signature, FamObj+"/queue/lock") {
		t.Errorf("signature %q lacks the family/object/impl anchor", a.Signature)
	}
	// Find a seed exposing the lifo bug and check the bug axis appears.
	for seed := int64(1); ; seed++ {
		if seed > 50 {
			t.Fatal("no seed ≤ 50 exposed the lifo bug")
		}
		s := lifo
		s.Seed = seed
		out, err := Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.OracleFailures) == 0 {
			continue
		}
		if !strings.Contains(out.Signature, "|bug=") {
			t.Errorf("bug-exposing signature %q lacks a bug axis", out.Signature)
		}
		break
	}
}

// TestObjExplorerFindsSeededBugs is the acceptance pin: a seeded guided run
// over the broken queue/stack-style implementations produces failing-oracle
// outcomes, never stack divergences, and the minimizer shrinks a finding to
// a ≤20-step reproducer.
func TestObjExplorerFindsSeededBugs(t *testing.T) {
	n := 80
	if testing.Short() {
		n = 40
	}
	rep, err := Explore(Options{
		Master: 1, Scenarios: n, Workers: 4,
		Gen: GenConfig{Families: []string{FamObj},
			Objects: []string{"queue", "stack", "register"}, MaxCrashes: 2},
		Shrink: true, ShrinkBudget: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("divergence on the shipped stack: %s %v", f.Spec, f.Divergences)
	}
	if rep.BugScenarios == 0 {
		t.Fatal("no scenario exposed a seeded bug")
	}
	found := map[string]bool{}
	for _, b := range rep.Bugs {
		found[b.Object+"/"+b.Impl] = true
		if b.Shrunk == "" {
			t.Errorf("bug %s/%s has no shrunk reproducer", b.Object, b.Impl)
			continue
		}
		// How small a reproducer can get is schedule-dependent (the seed is
		// never reshrunk); the bound pins that shrinking always makes real
		// progress from the generator's step band. The ≤20-step pin below
		// covers the minimal case.
		if b.ShrunkSteps > 500 {
			t.Errorf("bug %s/%s reproducer needs %d steps", b.Object, b.Impl, b.ShrunkSteps)
		}
		if _, err := ParseSpec(b.Shrunk); err != nil {
			t.Errorf("shrunk bug spec %q does not re-parse: %v", b.Shrunk, err)
		}
	}
	for _, want := range []string{"queue/lifo", "stack/fifo"} {
		if !found[want] {
			t.Errorf("the broken %s implementation went unfound (found %v)", want, found)
		}
	}

	// The ≤20-step pin: among the first seeds of the canonical split-register
	// shape, the minimizer reaches a reproducer of at most 20 scheduler
	// steps — two operations through the whole stack (implementation steps,
	// Aτ announce/snapshot, V_O publish/snapshot) cost ~16.
	r := Runner{}
	best := 1 << 30
	for seed := int64(1); seed <= 40 && best > 20; seed++ {
		s, err := ParseSpec(fmt.Sprintf(
			"drv2:obj/register/split:n=2:seed=%d:pol=random:steps=400:ops=2:mb=0.5", seed))
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.OracleFailures) == 0 {
			continue
		}
		shrunk, still := ShrinkBugSpec(s, r, 0)
		if len(still) == 0 {
			t.Errorf("shrinking %s lost the bug", s)
			continue
		}
		if shrunk.Steps < best {
			best = shrunk.Steps
		}
	}
	if best > 20 {
		t.Errorf("smallest shrunk reproducer needs %d steps, want ≤ 20", best)
	}
}

func TestObjGuidedDeterministicAcrossWorkersAndPooling(t *testing.T) {
	// The guided object sweep inherits the language family's determinism
	// contract: byte-identical reports for every worker count and pooling
	// mode, corpus growth included.
	n := 30
	if !testing.Short() {
		n = 80
	}
	var renders []string
	for _, cfg := range []struct {
		workers  int
		unpooled bool
	}{{1, false}, {4, false}, {4, true}} {
		c, err := LoadCorpus("testdata/corpus-obj")
		if err != nil {
			t.Fatal(err)
		}
		if c.Len() == 0 {
			t.Fatal("committed object corpus is empty; regenerate with EXPLORE_OBJ_CORPUS_OUT=testdata/corpus-obj go test -run TestRegenerateObjSeedCorpus ./internal/explore")
		}
		rep, err := Explore(Options{
			Master: 6, Scenarios: n, Workers: cfg.workers,
			Gen:    objGen(),
			Corpus: c, MutateFrac: 0.5, Round: 25,
			Unpooled: cfg.unpooled,
			Shrink:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		renders = append(renders, string(js))
	}
	for i := 1; i < len(renders); i++ {
		if renders[i] != renders[0] {
			t.Fatalf("guided object configuration %d folded a different report:\n%s\nvs\n%s", i, renders[i], renders[0])
		}
	}
}

func TestObjBrokenMonitorCaught(t *testing.T) {
	// The monitor axis must catch a verdict-suppressing monitor on a real
	// buggy execution: the history and its sketch both violate, the yes-man
	// stays silent, and monitor-lin flags it.
	caught := false
	for seed := int64(1); seed <= 40 && !caught; seed++ {
		s := Spec{Family: FamObj, Object: "ledger", Impl: "forked", N: 2, Seed: seed,
			Policy: PolRandom, Steps: 400, OpsPerProc: 2, MutBias: 0.5}
		out, err := Runner{Wrap: wrapYes}.Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range out.Divergences {
			if d.Check == CheckMonitorLin {
				caught = true
			}
		}
	}
	if !caught {
		t.Error("yes-man monitor on the forked ledger never tripped monitor-lin")
	}
}

func TestObjMutateValidAndPerturbs(t *testing.T) {
	// Mutation must stay inside the family (and the parent's object), keep
	// specs executable, and actually explore the impl-swap and workload
	// axes.
	rng := rand.New(rand.NewSource(5))
	cfg := objGen()
	implSwaps, opsChanges, mbChanges := 0, 0, 0
	for i := 0; i < 400; i++ {
		parent := NewSpec(13, i, cfg)
		child := Mutate(parent, rng, cfg)
		if err := child.validate(); err != nil {
			t.Fatalf("mutation %d of %s produced invalid %s: %v", i, parent, child, err)
		}
		if child.Fam() != FamObj || child.Object != parent.Object {
			t.Fatalf("mutation left the parent's object family: %s -> %s", parent, child)
		}
		reparsed, err := ParseSpec(child.String())
		if err != nil {
			t.Fatalf("mutated spec %q does not re-parse: %v", child, err)
		}
		if reparsed.String() != child.String() {
			t.Fatalf("mutated spec round-trip changed %q to %q", child, reparsed)
		}
		if child.Impl != parent.Impl {
			implSwaps++
		}
		if child.OpsPerProc != parent.OpsPerProc {
			opsChanges++
		}
		if child.MutBias != parent.MutBias {
			mbChanges++
		}
	}
	if implSwaps == 0 || opsChanges == 0 || mbChanges == 0 {
		t.Errorf("mutation never explored some object axis: impl=%d ops=%d mb=%d", implSwaps, opsChanges, mbChanges)
	}
}
