package explore

// Seeded spec mutators: the exploitation half of guided exploration. A
// mutation keeps most of a corpus parent — the part that reached a novel
// coverage class — and perturbs one axis at a time: the crash schedule (the
// axis the WD/PWD/PSD oracles are most sensitive to), the scheduling policy
// and its bias, the step bound, the process count, and the labelled source
// within the parent's language. Everything is drawn from the caller's rng,
// so a guided sweep is as replay-deterministic as a blind one.

import (
	"math/rand"
	"sort"

	"github.com/drv-go/drv/internal/msgnet"
)

// Mutation step-bound rails: mutations scale a parent's bound by 0.5–1.5×
// per op, clamped so compounding across corpus generations can neither
// starve every check (floor) nor blow up sweep time (cap; above the largest
// family ceiling in stepRange, so mutation still reaches past generation).
const (
	mutateStepFloor = 16
	mutateStepCap   = 8000
)

// langMutators is the language family's op list. Its length and order are
// part of the replay contract: reordering it (or appending to it) would
// shift every rng draw of every existing guided sweep.
var langMutators = []func(*Spec, *rand.Rand, GenConfig) bool{
	mutReseed,
	mutPolicy,
	mutBias,
	mutSteps,
	mutProcs,
	mutSource,
	mutCrashInsert,
	mutCrashMove,
	mutCrashDrop,
}

// objMutators is the object family's op list: the shared axes plus the
// impl-swap and the workload perturbations, minus the source swap (object
// scenarios have no labelled source).
var objMutators = []func(*Spec, *rand.Rand, GenConfig) bool{
	mutReseed,
	mutPolicy,
	mutBias,
	mutSteps,
	mutProcs,
	mutImpl,
	mutOps,
	mutMutBias,
	mutCrashInsert,
	mutCrashMove,
	mutCrashDrop,
}

// msgMutators is the message-passing family's op list: the object family's
// axes plus the network ones — the delivery-order swap and the loss-schedule
// perturbations, the axis the partial-propagation bugs are most sensitive
// to. Like the other lists, its length and order are part of the replay
// contract for guided sweeps.
var msgMutators = []func(*Spec, *rand.Rand, GenConfig) bool{
	mutReseed,
	mutPolicy,
	mutBias,
	mutSteps,
	mutProcs,
	mutImpl,
	mutOps,
	mutMutBias,
	mutNetOrder,
	mutDropInsert,
	mutDropShift,
	mutDropClear,
	mutCrashInsert,
	mutCrashMove,
	mutCrashDrop,
}

// Mutate derives a child spec from a corpus parent: one primary mutation
// plus a geometric tail of extras, re-canonicalized (crash order, bounds)
// after each op. The child is always executable; if a mutation chain ever
// produced an invalid spec it falls back to the parent, which parsed or
// generated valid. cfg bounds what mutation may add — MaxCrashes gates
// crash insertion, MaxSteps overrides the step cap — but a parent loaded
// from disk is taken as-is even where it exceeds cfg (in particular, a
// parent keeps its family and object even when the config's filters would
// not generate it fresh: corpus contents are the caller's choice).
func Mutate(parent Spec, rng *rand.Rand, cfg GenConfig) Spec {
	s := parent
	// Own the crash schedule: ops append to it and canonicalize sorts and
	// compacts it in place, which must never reach through the copied slice
	// header into the corpus entry the parent came from.
	s.Crashes = append([]Crash(nil), parent.Crashes...)
	s.Drops = append([]int(nil), parent.Drops...)
	if len(s.Drops) == 0 {
		s.Drops = nil
	}
	ops := langMutators
	switch s.Fam() {
	case FamObj:
		ops = objMutators
	case FamMsg:
		ops = msgMutators
	}
	mutated := false
	for round := 0; round < 4; round++ {
		if ops[rng.Intn(len(ops))](&s, rng, cfg) {
			mutated = true
		}
		if mutated && rng.Float64() >= 0.4 {
			break
		}
	}
	canonicalize(&s)
	if !mutated || s.validate() != nil {
		return parent
	}
	return s
}

// canonicalize restores the spec invariants a mutation chain may have bent:
// crash schedule in step-then-process order, one crash per process (the
// earliest wins), every crash step inside [1, Steps−1], at most N−1 crashes;
// for message-passing specs also a strictly increasing in-bounds loss
// schedule of at most msgnet.MaxScheduleDrops entries.
func canonicalize(s *Spec) {
	if len(s.Drops) > 0 {
		sort.Ints(s.Drops)
		kept := s.Drops[:0]
		prev := -1
		for _, k := range s.Drops {
			if k < 0 || k > msgnet.MaxScheduleDropIdx || k == prev {
				continue
			}
			kept = append(kept, k)
			prev = k
		}
		if len(kept) > msgnet.MaxScheduleDrops {
			kept = kept[:msgnet.MaxScheduleDrops]
		}
		if len(kept) == 0 {
			kept = nil
		}
		s.Drops = kept
	}
	sortCrashes(s.Crashes)
	kept := s.Crashes[:0]
	crashed := map[int]bool{}
	for _, c := range s.Crashes {
		if crashed[c.Proc] || c.Step < 1 || c.Step >= s.Steps || c.Proc < 0 || c.Proc >= s.N {
			continue
		}
		crashed[c.Proc] = true
		kept = append(kept, c)
	}
	if len(kept) > s.N-1 {
		kept = kept[:s.N-1]
	}
	if len(kept) == 0 {
		kept = nil
	}
	s.Crashes = kept
}

// mutReseed redraws the source/schedule seed: same scenario shape, entirely
// different behaviour and interleaving.
func mutReseed(s *Spec, rng *rand.Rand, _ GenConfig) bool {
	s.Seed = rng.Int63()
	return true
}

// mutPolicy swaps the scheduling policy kind; a swap to biased draws a
// fresh, unquantized bias. Redrawing the parent's own kind is only a
// mutation for biased (the bias itself changed). Object and message-passing
// scenarios skip the cursor kind — with no word cursor it degenerates to the
// random policy.
func mutPolicy(s *Spec, rng *rand.Rand, _ GenConfig) bool {
	old := s.Policy
	kinds := []string{PolRandom, PolBursty, PolCursor, PolBiased}
	if s.Fam() != FamLang {
		kinds = []string{PolRandom, PolBursty, PolBiased}
	}
	s.Policy = kinds[rng.Intn(len(kinds))]
	s.Bias = 0
	if s.Policy == PolBiased {
		s.Bias = 0.05 + 0.9*rng.Float64()
		return true
	}
	return s.Policy != old
}

// mutBias perturbs a biased policy's bias without leaving [0,1].
func mutBias(s *Spec, rng *rand.Rand, _ GenConfig) bool {
	if s.Policy != PolBiased {
		return false
	}
	s.Bias += (rng.Float64() - 0.5) * 0.3
	if s.Bias < 0 {
		s.Bias = 0
	}
	if s.Bias > 1 {
		s.Bias = 1
	}
	return true
}

// mutSteps rescales the step bound by 0.5–1.5×; crashes past the new bound
// are dropped by canonicalize.
func mutSteps(s *Spec, rng *rand.Rand, cfg GenConfig) bool {
	s.Steps = int(float64(s.Steps) * (0.5 + rng.Float64()))
	if s.Steps < mutateStepFloor {
		s.Steps = mutateStepFloor
	}
	// The cap applies after the floor: a user-supplied MaxSteps below the
	// floor must still win, exactly as NewSpec honors it.
	lim := mutateStepCap
	if cfg.MaxSteps > 0 && cfg.MaxSteps < lim {
		lim = cfg.MaxSteps
	}
	if s.Steps > lim {
		s.Steps = lim
	}
	return true
}

// mutProcs grows or shrinks the process count within the generator's band —
// 2–4, except 2–5 for message-passing scenarios, whose quorum-geometry bugs
// need the larger counts (a parent already outside the band is left there);
// a language scenario's source is re-picked if the parent's name does not
// exist at the new count (object implementations exist at every count).
func mutProcs(s *Spec, rng *rand.Rand, _ GenConfig) bool {
	n := s.N
	if rng.Intn(2) == 0 {
		n--
	} else {
		n++
	}
	hi := 4
	if s.Fam() == FamMsg {
		hi = 5
	}
	if n < 2 || n > hi || n == s.N {
		return false
	}
	s.N = n
	if s.Fam() == FamLang && !hasSource(*s) {
		pickSource(s, rng)
	}
	return true
}

// mutImpl swaps the implementation for another of the parent's object — the
// axis that carries a bug-exposing schedule from a correct implementation to
// a seeded-bug one and back. A draw that lands on the current implementation
// is not a mutation. Message-passing parents swap within their own registry.
func mutImpl(s *Spec, rng *rand.Rand, _ GenConfig) bool {
	impls := ImplsOf(s.Object)
	if s.Fam() == FamMsg {
		impls = MsgImplsOf(s.Object)
	}
	if len(impls) < 2 {
		return false
	}
	old := s.Impl
	pick := impls[rng.Intn(len(impls))]
	if pick == old {
		pick = impls[rng.Intn(len(impls))]
	}
	s.Impl = pick
	return s.Impl != old
}

// mutOps perturbs the per-process operation budget by ±1..3 within the
// spec's valid band.
func mutOps(s *Spec, rng *rand.Rand, _ GenConfig) bool {
	if s.Fam() != FamObj && s.Fam() != FamMsg {
		return false
	}
	delta := 1 + rng.Intn(3)
	if rng.Intn(2) == 0 {
		delta = -delta
	}
	ops := s.OpsPerProc + delta
	if ops < 1 {
		ops = 1
	}
	if ops > maxOpsPerProc {
		ops = maxOpsPerProc
	}
	if ops == s.OpsPerProc {
		return false
	}
	s.OpsPerProc = ops
	return true
}

// mutMutBias perturbs the workload's mutate bias without leaving [0,1].
func mutMutBias(s *Spec, rng *rand.Rand, _ GenConfig) bool {
	if s.Fam() != FamObj && s.Fam() != FamMsg {
		return false
	}
	s.MutBias += (rng.Float64() - 0.5) * 0.4
	if s.MutBias < 0 {
		s.MutBias = 0
	}
	if s.MutBias > 1 {
		s.MutBias = 1
	}
	return true
}

// mutNetOrder swaps the message delivery-order kind; a draw that lands on
// the parent's own kind is not a mutation. The config's NetOrders filter
// does not gate the swap — like the family filters, a corpus parent's
// network shape is the caller's choice to perturb.
func mutNetOrder(s *Spec, rng *rand.Rand, _ GenConfig) bool {
	if s.Fam() != FamMsg {
		return false
	}
	kinds := []string{msgnet.OrderFIFO, msgnet.OrderLIFO, msgnet.OrderRandom, msgnet.OrderStarve}
	old := s.NetOrder
	s.NetOrder = kinds[rng.Intn(len(kinds))]
	return s.NetOrder != old
}

// mutDropInsert splices a contiguous run of 1..4 dropped send indices into
// the loss schedule — contiguous runs truncate one broadcast's tail, the
// shape that opens partial-propagation windows. canonicalize merges, dedups
// and caps the result.
func mutDropInsert(s *Spec, rng *rand.Rand, _ GenConfig) bool {
	if s.Fam() != FamMsg || len(s.Drops) >= msgnet.MaxScheduleDrops {
		return false
	}
	start := rng.Intn(60)
	for k, run := 0, 1+rng.Intn(4); k < run; k++ {
		s.Drops = append(s.Drops, start+k)
	}
	return true
}

// mutDropShift slides the whole loss schedule by ±1..8 send indices, keeping
// its run structure while moving it across broadcast boundaries.
func mutDropShift(s *Spec, rng *rand.Rand, _ GenConfig) bool {
	if s.Fam() != FamMsg || len(s.Drops) == 0 {
		return false
	}
	delta := 1 + rng.Intn(8)
	if rng.Intn(2) == 0 {
		delta = -delta
	}
	for i := range s.Drops {
		s.Drops[i] += delta
		if s.Drops[i] < 0 {
			s.Drops[i] = 0
		}
	}
	return true
}

// mutDropClear empties the loss schedule, returning the parent to a reliable
// network.
func mutDropClear(s *Spec, _ *rand.Rand, _ GenConfig) bool {
	if s.Fam() != FamMsg || len(s.Drops) == 0 {
		return false
	}
	s.Drops = nil
	return true
}

// mutSource swaps the labelled source for another of the parent's language;
// a draw that lands back on the current source is not a mutation.
func mutSource(s *Spec, rng *rand.Rand, _ GenConfig) bool {
	old := s.Source
	pickSource(s, rng)
	return s.Source != old
}

// mutCrashInsert schedules a crash for a not-yet-crashed process, bounded by
// the fault model (≤ N−1 crashes) and the generator config.
func mutCrashInsert(s *Spec, rng *rand.Rand, cfg GenConfig) bool {
	max := s.N - 1
	if cfg.MaxCrashes < max {
		max = cfg.MaxCrashes
	}
	if len(s.Crashes) >= max || s.Steps < 2 {
		return false
	}
	crashed := map[int]bool{}
	for _, c := range s.Crashes {
		crashed[c.Proc] = true
	}
	var alive []int
	for p := 0; p < s.N; p++ {
		if !crashed[p] {
			alive = append(alive, p)
		}
	}
	s.Crashes = append(s.Crashes, Crash{
		Proc: alive[rng.Intn(len(alive))],
		Step: 1 + rng.Intn(s.Steps-1),
	})
	return true
}

// mutCrashMove reschedules one crash to a fresh step.
func mutCrashMove(s *Spec, rng *rand.Rand, _ GenConfig) bool {
	if len(s.Crashes) == 0 || s.Steps < 2 {
		return false
	}
	s.Crashes[rng.Intn(len(s.Crashes))].Step = 1 + rng.Intn(s.Steps-1)
	return true
}

// mutCrashDrop removes one crash from the schedule.
func mutCrashDrop(s *Spec, rng *rand.Rand, _ GenConfig) bool {
	if len(s.Crashes) == 0 {
		return false
	}
	i := rng.Intn(len(s.Crashes))
	s.Crashes = append(append([]Crash{}, s.Crashes[:i]...), s.Crashes[i+1:]...)
	return true
}

// hasSource reports whether the spec's source name exists at its (N, Seed).
func hasSource(s Spec) bool {
	l, err := langByName(s.Lang)
	if err != nil {
		return false
	}
	for _, cand := range l.Sources(s.N, s.Seed) {
		if cand.Name == s.Source {
			return true
		}
	}
	return false
}

// pickSource draws a source of the spec's language, preferring one that
// differs from the current.
func pickSource(s *Spec, rng *rand.Rand) {
	l, err := langByName(s.Lang)
	if err != nil {
		return
	}
	sources := l.Sources(s.N, s.Seed)
	pick := sources[rng.Intn(len(sources))].Name
	if pick == s.Source && len(sources) > 1 {
		pick = sources[rng.Intn(len(sources))].Name
	}
	s.Source = pick
}
