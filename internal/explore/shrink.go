package explore

// The minimizing replay: a divergent spec is shrunk to a small reproducer
// before being reported, so a failure reads as "these 15 scheduler steps
// with this seed break the monitor" instead of a 5000-step execution dump.
// Shrinking only ever re-executes candidate specs through the same Runner
// and keeps a candidate exactly when it still diverges, so the reproducer is
// trustworthy by construction; it need not fail the same check as the
// original (a smaller execution may surface the root divergence more
// directly, e.g. a per-verdict oracle instead of a tail proxy).
//
// The same machinery minimizes object-family bug findings: shrinkWhere
// parameterizes what counts as "still interesting" — stack divergences for
// ShrinkSpec, exposed implementation bugs (OracleFailures) for the Bug
// entries of a report.

// defaultShrinkBudget bounds candidate executions per shrink.
const defaultShrinkBudget = 200

// ShrinkSpec minimizes the divergent spec along up to five axes, in order:
// fewer crashes, fewer dropped messages (message-passing family), fewer
// processes, fewer workload operations (object and message-passing families),
// fewer scheduler steps. It returns the smallest divergent spec found
// together with its divergences; when the original spec itself no longer
// diverges (a nondeterministic monitor — in itself a finding the replay
// check reports), the returned divergence list is empty.
func ShrinkSpec(s Spec, r Runner, budget int) (Spec, []Divergence) {
	return shrinkWhere(s, r, budget, func(o *Outcome) []Divergence { return o.Divergences })
}

// ShrinkBugSpec minimizes an object scenario that exposed a planted
// implementation bug, preserving "some oracle failure survives" instead of
// "some divergence survives" — the reproducer shows the bug, in as few
// scheduler steps (and workload operations) as the seed's schedule allows.
func ShrinkBugSpec(s Spec, r Runner, budget int) (Spec, []Divergence) {
	return shrinkWhere(s, r, budget, func(o *Outcome) []Divergence { return o.OracleFailures })
}

// shrinkWhere is the generic minimizer: pick extracts the findings that must
// survive shrinking (non-empty = the candidate is still interesting), and
// the smallest interesting spec is returned with its surviving findings.
func shrinkWhere(s Spec, r Runner, budget int, pick func(*Outcome) []Divergence) (Spec, []Divergence) {
	if budget <= 0 {
		budget = defaultShrinkBudget
	}
	var last []Divergence
	diverges := func(cand Spec) bool {
		if budget <= 0 {
			return false
		}
		budget--
		out, err := r.Execute(cand)
		if err != nil || len(pick(out)) == 0 {
			return false
		}
		last = pick(out)
		return true
	}
	if !diverges(s) {
		return s, nil
	}
	best := s

	// Axis 1: crashes. Try none at all, then dropping one at a time.
	if len(best.Crashes) > 0 {
		if cand := best; diverges(withCrashes(cand, nil)) {
			best.Crashes = nil
		}
	}
	for i := 0; i < len(best.Crashes); {
		cs := make([]Crash, 0, len(best.Crashes)-1)
		cs = append(cs, best.Crashes[:i]...)
		cs = append(cs, best.Crashes[i+1:]...)
		if diverges(withCrashes(best, cs)) {
			best.Crashes = cs
		} else {
			i++
		}
	}

	// Axis 1b (message-passing family): the loss schedule. Try a reliable
	// network first, then dropping entries one at a time — a reproducer
	// whose bug survives without message loss is simpler to reason about
	// than one threading a loss schedule through it.
	if best.Fam() == FamMsg && len(best.Drops) > 0 {
		if diverges(withDrops(best, nil)) {
			best.Drops = nil
		}
	}
	for i := 0; i < len(best.Drops); {
		ds := make([]int, 0, len(best.Drops)-1)
		ds = append(ds, best.Drops[:i]...)
		ds = append(ds, best.Drops[i+1:]...)
		if diverges(withDrops(best, ds)) {
			best.Drops = ds
		} else {
			i++
		}
	}

	// Axis 2: processes. Crash schedules naming dropped processes are
	// discarded first — a reproducer with fewer processes beats one with
	// more crashes.
	for n := best.N - 1; n >= 1; n-- {
		cand := best
		cand.N = n
		cand.Crashes = nil
		for _, c := range best.Crashes {
			if c.Proc < n {
				cand.Crashes = append(cand.Crashes, c)
			}
		}
		if !diverges(cand) {
			break
		}
		best = cand
	}

	// Axis 3 (object and message-passing families): the per-process
	// operation budget. Halve while the finding survives, then a short
	// linear pass; fewer operations make the eventual step-bound reproducer
	// read as a near-sequential script.
	if best.Fam() == FamObj || best.Fam() == FamMsg {
		withOps := func(ops int) Spec {
			cand := best
			cand.OpsPerProc = ops
			return cand
		}
		for best.OpsPerProc > 1 && diverges(withOps(best.OpsPerProc/2)) {
			best = withOps(best.OpsPerProc / 2)
		}
		for best.OpsPerProc > 1 && diverges(withOps(best.OpsPerProc-1)) {
			best = withOps(best.OpsPerProc - 1)
		}
	}

	// Axis 4: steps. Halve while the divergence survives, bisect the gap
	// left by the failed halving (log₂ executions instead of one per step),
	// then a short linear pass mops up non-monotone tails.
	atSteps := func(steps int) Spec {
		cand := best
		cand.Steps = steps
		cand.Crashes = clampCrashes(best.Crashes, steps)
		return cand
	}
	for best.Steps > 1 && diverges(atSteps(best.Steps/2)) {
		best = atSteps(best.Steps / 2)
	}
	lo, hi := best.Steps/2, best.Steps // lo failed (or is 0), hi diverges
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if diverges(atSteps(mid)) {
			best, hi = atSteps(mid), mid
		} else {
			lo = mid
		}
	}
	for best.Steps > 1 && diverges(atSteps(best.Steps-1)) {
		best = atSteps(best.Steps - 1)
	}

	// Every successful diverges call installed its candidate as best, so
	// last always holds best's findings.
	return best, last
}

func withCrashes(s Spec, cs []Crash) Spec {
	s.Crashes = cs
	return s
}

func withDrops(s Spec, ds []int) Spec {
	s.Drops = ds
	return s
}

// clampCrashes keeps crashes that can still fire inside the step bound
// (the runner checks the schedule at steps 0..steps−1).
func clampCrashes(cs []Crash, steps int) []Crash {
	var out []Crash
	for _, c := range cs {
		if c.Step < steps {
			out = append(out, c)
		}
	}
	return out
}
