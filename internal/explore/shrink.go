package explore

// The minimizing replay: a divergent spec is shrunk to a small reproducer
// before being reported, so a failure reads as "these 15 scheduler steps
// with this seed break the monitor" instead of a 5000-step execution dump.
// Shrinking only ever re-executes candidate specs through the same Runner
// and keeps a candidate exactly when it still diverges, so the reproducer is
// trustworthy by construction; it need not fail the same check as the
// original (a smaller execution may surface the root divergence more
// directly, e.g. a per-verdict oracle instead of a tail proxy).

// defaultShrinkBudget bounds candidate executions per shrink.
const defaultShrinkBudget = 200

// ShrinkSpec minimizes the divergent spec along three axes, in order:
// fewer crashes, fewer processes, fewer scheduler steps. It returns the
// smallest divergent spec found together with its divergences; when the
// original spec itself no longer diverges (a nondeterministic monitor — in
// itself a finding the replay check reports), the returned divergence list
// is empty.
func ShrinkSpec(s Spec, r Runner, budget int) (Spec, []Divergence) {
	if budget <= 0 {
		budget = defaultShrinkBudget
	}
	var last []Divergence
	diverges := func(cand Spec) bool {
		if budget <= 0 {
			return false
		}
		budget--
		out, err := r.Execute(cand)
		if err != nil || len(out.Divergences) == 0 {
			return false
		}
		last = out.Divergences
		return true
	}
	if !diverges(s) {
		return s, nil
	}
	best := s

	// Axis 1: crashes. Try none at all, then dropping one at a time.
	if len(best.Crashes) > 0 {
		if cand := best; diverges(withCrashes(cand, nil)) {
			best.Crashes = nil
		}
	}
	for i := 0; i < len(best.Crashes); {
		cs := make([]Crash, 0, len(best.Crashes)-1)
		cs = append(cs, best.Crashes[:i]...)
		cs = append(cs, best.Crashes[i+1:]...)
		if diverges(withCrashes(best, cs)) {
			best.Crashes = cs
		} else {
			i++
		}
	}

	// Axis 2: processes. Crash schedules naming dropped processes are
	// discarded first — a reproducer with fewer processes beats one with
	// more crashes.
	for n := best.N - 1; n >= 1; n-- {
		cand := best
		cand.N = n
		cand.Crashes = nil
		for _, c := range best.Crashes {
			if c.Proc < n {
				cand.Crashes = append(cand.Crashes, c)
			}
		}
		if !diverges(cand) {
			break
		}
		best = cand
	}

	// Axis 3: steps. Halve while the divergence survives, bisect the gap
	// left by the failed halving (log₂ executions instead of one per step),
	// then a short linear pass mops up non-monotone tails.
	atSteps := func(steps int) Spec {
		cand := best
		cand.Steps = steps
		cand.Crashes = clampCrashes(best.Crashes, steps)
		return cand
	}
	for best.Steps > 1 && diverges(atSteps(best.Steps/2)) {
		best = atSteps(best.Steps / 2)
	}
	lo, hi := best.Steps/2, best.Steps // lo failed (or is 0), hi diverges
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if diverges(atSteps(mid)) {
			best, hi = atSteps(mid), mid
		} else {
			lo = mid
		}
	}
	for best.Steps > 1 && diverges(atSteps(best.Steps-1)) {
		best = atSteps(best.Steps - 1)
	}

	// Every successful diverges call installed its candidate as best, so
	// last always holds best's divergences.
	return best, last
}

func withCrashes(s Spec, cs []Crash) Spec {
	s.Crashes = cs
	return s
}

// clampCrashes keeps crashes that can still fire inside the step bound
// (the runner checks the schedule at steps 0..steps−1).
func clampCrashes(cs []Crash, steps int) []Crash {
	var out []Crash
	for _, c := range cs {
		if c.Step < steps {
			out = append(out, c)
		}
	}
	return out
}
