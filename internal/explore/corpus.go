package explore

// The seed corpus: the persistent half of coverage-guided exploration. A
// corpus is an ordered, signature-deduplicated list of specs that each
// produced a coverage signature no earlier spec produced. On disk a corpus
// is a directory of *.seed files, each holding any number of entries — a
// "# sig:" comment carrying an entry's signature followed by its one-line
// seed spec. Every save appends one batch file named by a content hash, so
// growth is append-only at the file level and repeated saves are no-op
// diffs; hand-written files (bare spec lines, comments) load too.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// seedExt is the corpus file extension; other files in the directory are
// ignored, so a README can sit next to the seeds.
const seedExt = ".seed"

// Entry is one corpus seed: a spec and the coverage signature it produced
// ("" when a hand-written file carries no signature; such entries still
// serve as mutation parents but never dedup anything).
type Entry struct {
	Spec Spec
	Sig  string
}

// Corpus is an in-memory seed corpus. Entry order is deterministic: loaded
// entries sort by file name (then file line order), entries added during a
// run append in fold order — so a guided exploration's mutation draws are
// reproducible from the directory contents and the master seed alone.
type Corpus struct {
	entries []Entry
	bySig   map[string]bool
	bySpec  map[string]bool
	loaded  int // entries[:loaded] came from disk; SaveNew writes the rest
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{bySig: map[string]bool{}, bySpec: map[string]bool{}}
}

// LoadCorpus reads every *.seed file under dir (one level, sorted by name).
// A missing directory is an empty corpus — the bootstrap case: the first
// guided run creates it on save. Malformed specs are errors, not skips; a
// corpus that silently dropped entries would change every later mutation
// draw.
func LoadCorpus(dir string) (*Corpus, error) {
	c := NewCorpus()
	files, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("explore: corpus: %w", err)
	}
	names := make([]string, 0, len(files))
	for _, f := range files {
		if !f.IsDir() && strings.HasSuffix(f.Name(), seedExt) {
			names = append(names, f.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("explore: corpus: %w", err)
		}
		sig := ""
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			switch {
			case line == "":
			case strings.HasPrefix(line, "# sig:"):
				sig = strings.TrimSpace(strings.TrimPrefix(line, "# sig:"))
			case strings.HasPrefix(line, "#"):
			default:
				s, err := ParseSpec(line)
				if err != nil {
					return nil, fmt.Errorf("explore: corpus %s: %w", name, err)
				}
				c.Add(s, sig)
				sig = ""
			}
		}
	}
	c.loaded = len(c.entries)
	return c, nil
}

// Len returns the number of entries.
func (c *Corpus) Len() int { return len(c.entries) }

// At returns entry i's spec, in deterministic corpus order.
func (c *Corpus) At(i int) Spec { return c.entries[i].Spec }

// New returns how many entries were added since load — the ones SaveNew
// persists.
func (c *Corpus) New() int { return len(c.entries) - c.loaded }

// HasSig reports whether some entry already covers the signature.
func (c *Corpus) HasSig(sig string) bool { return sig != "" && c.bySig[sig] }

// Add appends the spec unless its signature or its exact spec line is
// already covered; it reports whether the corpus grew.
func (c *Corpus) Add(s Spec, sig string) bool {
	line := s.String()
	if c.HasSig(sig) || c.bySpec[line] {
		return false
	}
	c.entries = append(c.entries, Entry{Spec: s, Sig: sig})
	if sig != "" {
		c.bySig[sig] = true
	}
	c.bySpec[line] = true
	return true
}

// SaveNew writes every entry added since load into dir (creating it if
// needed) as one batch file named by a hash of its content, and returns how
// many entries it wrote. Batches from different runs land in different
// files, so corpus growth is append-only at the file level; re-saving the
// same batch rewrites the same file with the same bytes — a no-op diff.
func (c *Corpus) SaveNew(dir string) (int, error) {
	if c.New() == 0 {
		return 0, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("explore: corpus: %w", err)
	}
	var b strings.Builder
	for _, e := range c.entries[c.loaded:] {
		if e.Sig != "" {
			b.WriteString("# sig: ")
			b.WriteString(e.Sig)
			b.WriteByte('\n')
		}
		b.WriteString(e.Spec.String())
		b.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(b.String()))
	name := "batch-" + hex.EncodeToString(sum[:6]) + seedExt
	if err := os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644); err != nil {
		return 0, fmt.Errorf("explore: corpus: %w", err)
	}
	return c.New(), nil
}
