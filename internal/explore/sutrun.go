package explore

// The object-execution scenario family (FamObj): where the language family
// replays scripted adversary words, this family runs the real concurrent
// implementations of package sut — queues, stacks, registers, counters,
// ledgers, each in a correct and several seeded-bug variants — under a
// random workload, a random schedule and a random crash schedule, through
// the full deployment stack: the timed adversary Aτ wraps the service and
// the Figure 8 predictive monitor V_O watches it, exactly as in the paper's
// deployment story. The exhibited history is then judged offline by the
// matching package check oracle, differentially against the brute-force
// reference checker, and against the monitor's own verdict stream.
//
// Oracle outcomes split by the implementation's ground truth, mirroring the
// language family's source labels: a violated property the implementation
// guarantees is a Divergence (a bug in sut, check, monitor or sched); a
// violated property a seeded-bug implementation does not guarantee is an
// OracleFailure — the explorer found the planted bug, the object family's
// figure of merit.

import (
	"fmt"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/sut"
	"github.com/drv-go/drv/internal/word"
)

// Oracle names reported in OracleFailures (bug findings on seeded-bug
// implementations) and in CheckOracle divergence details.
const (
	// OracleLin: the history is not linearizable for the sequential object.
	OracleLin = "lin"
	// OracleSC: the history is not sequentially consistent (register, queue,
	// stack).
	OracleSC = "sc"
	// OracleSECSafety: a strongly-eventual counter safety clause failed.
	OracleSECSafety = "sec-safety"
	// OracleECSafety: the eventually consistent ledger's ordering clause
	// failed.
	OracleECSafety = "ec-safety"
)

// implDef is one registered implementation of an object, with its ground
// truth: which oracle properties every history it exhibits is guaranteed to
// satisfy. Guaranteed properties are divergence-checked; non-guaranteed ones
// are the planted bugs the explorer hunts.
type implDef struct {
	// name is the spec slug (drv2:obj/<object>/<name>).
	name string
	// lin guarantees every exhibited history is linearizable.
	lin bool
	// safe guarantees the object's secondary safety oracle (SC for register,
	// queue and stack; SEC safety for counters; EC ordering for ledgers).
	safe bool
	// make builds a fresh instance for n processes.
	make func(n int) sut.Impl
}

// objDef is one registered object: its sequential specification, its
// secondary safety oracle, and its implementations (first one correct).
type objDef struct {
	name string
	obj  spec.Object
	// safetyName labels the secondary oracle in findings and signatures.
	safetyName string
	// safety returns "" when the history satisfies the secondary oracle,
	// otherwise the violation. ops is word.Operations(w), precomputed.
	safety func(obj spec.Object, w word.Word, ops []word.Operation) string
	impls  []implDef
}

// scViolation is the secondary oracle of the strong objects (register,
// queue, stack): plain sequential consistency, the strongest property an
// order-free observer can refute.
func scViolation(obj spec.Object, _ word.Word, ops []word.Operation) string {
	if !check.SeqConsistentOps(obj, ops) {
		return "history is not sequentially consistent"
	}
	return ""
}

func secViolation(_ spec.Object, w word.Word, _ []word.Operation) string {
	if v := check.SECSafety(w); v != nil {
		return v.String()
	}
	return ""
}

func ecViolation(_ spec.Object, w word.Word, _ []word.Operation) string {
	if v := check.ECLedgerSafety(w); v != nil {
		return v.String()
	}
	return ""
}

// objRegistry lists the object-execution scenarios, in deterministic order.
// The ground-truth flags restate what package sut's tests pin: e.g. the
// split register is never linearizable under cross-process reads yet always
// sequentially consistent, the collect counter forfeits linearizability but
// keeps SEC safety, the stuck counter can under-read its own increments (a
// WEC clause-1 violation), and the lossy ledger drops records while keeping
// the gets it does answer prefix-compatible.
var objRegistry = []objDef{
	{
		name: "register", obj: spec.Register(), safetyName: OracleSC, safety: scViolation,
		impls: []implDef{
			{name: "atomic", lin: true, safe: true, make: func(n int) sut.Impl { return sut.NewAtomicRegister() }},
			{name: "stale", lin: false, safe: false, make: func(n int) sut.Impl { return sut.NewStaleRegister(n, 3) }},
			{name: "split", lin: false, safe: true, make: func(n int) sut.Impl { return sut.NewSplitRegister(n) }},
		},
	},
	{
		name: "counter", obj: spec.Counter(), safetyName: OracleSECSafety, safety: secViolation,
		impls: []implDef{
			{name: "snapshot", lin: true, safe: true, make: func(n int) sut.Impl { return sut.NewSnapshotCounter(n, sut.CounterAtomic) }},
			{name: "aadgms", lin: true, safe: true, make: func(n int) sut.Impl { return sut.NewSnapshotCounter(n, sut.CounterAADGMS) }},
			{name: "collect", lin: false, safe: true, make: func(n int) sut.Impl { return sut.NewCollectCounter(n) }},
			{name: "inflated", lin: false, safe: false, make: func(n int) sut.Impl { return sut.NewInflatedCounter(n, 2) }},
			{name: "stuck", lin: false, safe: false, make: func(n int) sut.Impl { return sut.NewStuckCounter(n) }},
		},
	},
	{
		name: "queue", obj: spec.Queue(), safetyName: OracleSC, safety: scViolation,
		impls: []implDef{
			{name: "lock", lin: true, safe: true, make: func(n int) sut.Impl { return sut.NewLockQueue() }},
			{name: "lifo", lin: false, safe: false, make: func(n int) sut.Impl { return sut.NewLIFOQueue() }},
		},
	},
	{
		name: "stack", obj: spec.Stack(), safetyName: OracleSC, safety: scViolation,
		impls: []implDef{
			{name: "lock", lin: true, safe: true, make: func(n int) sut.Impl { return sut.NewLockStack() }},
			{name: "fifo", lin: false, safe: false, make: func(n int) sut.Impl { return sut.NewFIFOStack() }},
		},
	},
	{
		name: "ledger", obj: spec.Ledger(), safetyName: OracleECSafety, safety: ecViolation,
		impls: []implDef{
			{name: "lock", lin: true, safe: true, make: func(n int) sut.Impl { return sut.NewLockLedger() }},
			{name: "snapshot", lin: false, safe: false, make: func(n int) sut.Impl { return sut.NewSnapshotLedger(n) }},
			{name: "forked", lin: false, safe: false, make: func(n int) sut.Impl { return sut.NewForkedLedger(n) }},
			{name: "lossy", lin: false, safe: true, make: func(n int) sut.Impl { return sut.NewLossyLedger(2) }},
		},
	},
}

// Objects returns the registered object names, in registry order.
func Objects() []string {
	names := make([]string, 0, len(objRegistry))
	for _, od := range objRegistry {
		names = append(names, od.name)
	}
	return names
}

// ImplsOf returns the implementation slugs of the object, correct variant
// first, or nil for an unknown object.
func ImplsOf(object string) []string {
	for _, od := range objRegistry {
		if od.name != object {
			continue
		}
		names := make([]string, 0, len(od.impls))
		for _, id := range od.impls {
			names = append(names, id.name)
		}
		return names
	}
	return nil
}

// implByName resolves an object/impl slug pair.
func implByName(object, impl string) (objDef, implDef, error) {
	for _, od := range objRegistry {
		if od.name != object {
			continue
		}
		for _, id := range od.impls {
			if id.name == impl {
				return od, id, nil
			}
		}
		return objDef{}, implDef{}, fmt.Errorf("explore: object %q has no implementation %q", object, impl)
	}
	return objDef{}, implDef{}, fmt.Errorf("explore: unknown object %q", object)
}

// wlSalt derives the workload stream from the spec seed, independent of the
// policy stream (0x5eed) and the guidance stream (0x9ded).
const wlSalt = 0x3ead

// executeObj runs one object-execution scenario: the implementation under a
// seeded random workload, wrapped in Aτ, monitored by V_O, on the runner's
// pooled session when it has one. With scratch the whole substrate — the
// implementation instance (one live copy per object/impl pair, reset per
// scenario), the workload, the service, Aτ — is reused instead of rebuilt;
// the Reset contracts make the outcomes byte-identical.
func (r Runner) executeObj(s Spec) (*Outcome, error) {
	od, id, err := implByName(s.Object, s.Impl)
	if err != nil {
		return nil, err
	}
	crash := r.crashMap(s)

	var inner adversary.Service
	var tau *adversary.Timed
	if sc := r.scratch; sc != nil {
		impl := sc.objImpl(id, s)
		sc.wl.Reset(od.obj, s.N, s.OpsPerProc, s.MutBias, mix(s.Seed, wlSalt))
		sc.svc.Reset(s.N, impl, &sc.wl)
		inner = &sc.svc
		tau = sc.timed(s.N, inner)
	} else {
		wl := sut.NewRandomWorkload(od.obj, s.N, s.OpsPerProc, s.MutBias, mix(s.Seed, wlSalt))
		inner = sut.NewService(s.N, id.make(s.N), wl)
		tau = adversary.NewTimed(s.N, inner, adversary.ArrayAtomic)
	}
	m := monitor.NewLin(od.obj, tau, adversary.ArrayAtomic)
	if r.Unincremental {
		m = monitor.NewLinScratch(od.obj, tau, adversary.ArrayAtomic)
	}
	if r.Wrap != nil {
		m = r.Wrap(m)
	}
	cfg := monitor.Config{
		N:       s.N,
		Monitor: m,
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			return tau, nil
		},
		Policy:   func(aux []int) sched.Policy { return s.policy(aux) },
		MaxSteps: s.Steps,
		Crash:    crash,
	}
	mark := r.stages.start()
	var res *monitor.Result
	if r.Session != nil {
		res = r.Session.Run(cfg)
	} else {
		res = monitor.Run(cfg)
	}
	r.stages.stop(FamObj, stageExecute, mark)

	out := &Outcome{
		Spec:    s,
		Monitor: m.Name(),
		Label:   id.lin && id.safe,
		Steps:   res.Steps,
		NOs:     res.TotalNO(),
		Digest:  digest(res),
	}
	for p := range res.Verdicts {
		out.Verdicts += len(res.Verdicts[p])
	}
	r.runObjChecks(out, od, id, res, tau)
	out.Signature = objSignature(out, res)
	return out, nil
}

// bruteOpsCap bounds the brute-force differential: the reference checker
// enumerates pending subsets × permutations, so only small histories can
// afford it. Histories above the cap skip the check.
const bruteOpsCap = 7

// runObjChecks evaluates the object family's differential checks, appending
// divergences (guaranteed properties violated, checker disagreement, monitor
// unsoundness) and oracle failures (planted bugs exposed) to the outcome.
func (r Runner) runObjChecks(out *Outcome, od objDef, id implDef, res *monitor.Result, tau *adversary.Timed) {
	r.runHistoryChecks(out, od.obj, od.safetyName, od.safety, id.lin, id.safe, false, res, tau)
}

// runHistoryChecks is the check battery shared by the object and
// message-passing families: the exhibited history against the class oracles
// (split into divergences and bug findings by the implementation's ground
// truth linOK/safeOK), the brute-force differential on small histories, and
// the monitor's verdict stream against the offline oracle. lossy marks runs
// whose network schedule dropped messages; like a crash, a dropped message
// can strand the violating operation pending, so it gates the completeness
// half of the monitor check.
func (r Runner) runHistoryChecks(out *Outcome, obj spec.Object, safetyName string, safety func(spec.Object, word.Word, []word.Operation) string, linOK, safeOK, lossy bool, res *monitor.Result, tau *adversary.Timed) {
	s := out.Spec
	crashed := len(s.Crashes) > 0
	mark := r.stages.start()

	out.ran(CheckWellFormed)
	if err := word.WellFormed(res.History); err != nil {
		out.diverge(CheckWellFormed, "%v", err)
	}

	if crashed {
		out.ran(CheckCrashQuiet)
		checkCrashQuiet(out, res)
	}

	ops := word.Operations(res.History)
	// The offline oracles borrow pooled incremental checkers when the runner
	// has a session: the memoized witness search then reuses the memo table
	// and key buffers grown by earlier scenarios instead of re-allocating
	// them per run. The verdicts are identical on every path (the check
	// package's differential tests pin CheckWord against the from-scratch
	// searches), so report bytes do not depend on which one ran.
	var lin bool
	var violation string
	if r.Session != nil && !r.Unincremental {
		lin = r.Session.CheckPool().Get(obj, true, s.N).CheckWord(res.History)
		if safetyName == OracleSC {
			if !r.Session.CheckPool().Get(obj, false, s.N).CheckWord(res.History) {
				violation = "history is not sequentially consistent"
			}
		} else {
			violation = safety(obj, res.History, ops)
		}
	} else {
		lin = check.LinearizableOps(obj, ops)
		violation = safety(obj, res.History, ops)
	}

	out.ran(CheckOracle)
	if !lin {
		if linOK {
			out.diverge(CheckOracle,
				"correct implementation %s/%s exhibited a non-linearizable history", s.Object, s.Impl)
		} else {
			out.bug(OracleLin, "history of %s/%s is not linearizable", s.Object, s.Impl)
		}
	}
	if violation != "" {
		if safeOK {
			out.diverge(CheckOracle,
				"%s/%s guarantees %s but violated it: %s", s.Object, s.Impl, safetyName, violation)
		} else {
			out.bug(safetyName, "%s", violation)
		}
	}

	// The fast memoized search against the exhaustive reference — the axis
	// that guards frontSearch itself, on the histories real implementations
	// (not synthetic words) produce, including pending-at-crash operations.
	if len(ops) <= bruteOpsCap {
		out.ran(CheckBrute)
		if got := check.BruteLinearizable(obj, res.History); got != lin {
			out.diverge(CheckBrute,
				"frontSearch says linearizable=%v, brute force says %v", lin, got)
		}
		if safetyName == OracleSC {
			fast := violation == ""
			if got := check.BruteSeqConsistent(obj, res.History); got != fast {
				out.diverge(CheckBrute,
					"frontSearch says sequentially-consistent=%v, brute force says %v", fast, got)
			}
		}
	} else {
		out.skipped(CheckBrute)
	}
	r.stages.stop(s.Fam(), stageCheck, mark)
	mark = r.stages.start()

	// The monitor axis: V_O's verdict stream against the offline oracle,
	// under the predictive escape of Definition 6.1 — the monitor answers
	// for the sketch x~(E), not for x(E), in both directions. Soundness: on
	// a linearizable history a NO is only justified when the sketch itself
	// is non-linearizable (operations shrink in the sketch, so it can gain
	// precedence pairs the word never had and legitimately fall outside
	// LIN_O — the mirror image of the Out-side escape the language family
	// pins in its corpus). Completeness: a violation both the word and the
	// sketch exhibit must draw a NO; it only applies when the run drained
	// crash-free and loss-free — a step-bound cutoff, a crash or a dropped
	// message can separate the violating response from the verdict that
	// would have judged it.
	out.ran(CheckMonitorLin)
	switch {
	case lin && res.TotalNO() > 0:
		sk, err := res.Sketch(s.N, tau.InvAt)
		if err == nil && r.checkLin(obj, sk, s.N) {
			out.diverge(CheckMonitorLin,
				"history and sketch are both linearizable but %s reported %d NO verdict(s)", out.Monitor, res.TotalNO())
		}
	case !lin && !crashed && !lossy && res.Drained && res.TotalNO() == 0:
		sk, err := res.Sketch(s.N, tau.InvAt)
		if err == nil && !r.checkLin(obj, sk, s.N) {
			out.diverge(CheckMonitorLin,
				"history and sketch are both non-linearizable but no process ever reported NO")
		}
	}
	r.stages.stop(s.Fam(), stageMonitor, mark)
}

// checkLin decides linearizability of w over n processes, borrowing the
// session's pooled incremental checker when the runner has one — the verdict
// is identical on both paths (pinned by the check package's differential
// tests), only the scratch reuse differs.
func (r Runner) checkLin(obj spec.Object, w word.Word, n int) bool {
	if r.Session != nil && !r.Unincremental {
		return r.Session.CheckPool().Get(obj, true, n).CheckWord(w)
	}
	return check.Linearizable(obj, w)
}

// bug records an oracle failure: a property violation the implementation
// does not guarantee — the explorer exposing a planted bug.
func (o *Outcome) bug(oracle, format string, args ...any) {
	o.OracleFailures = append(o.OracleFailures, Divergence{
		Check:  oracle,
		Detail: fmt.Sprintf(format, args...),
	})
}
