package explore

// Fuzzing the seed-spec wire format: every accepted line must re-render to a
// canonical form that parses back to itself (the corpus, replay and shrink
// machinery all round-trip specs through String), the canonical form must
// carry the version-minimal tag, and re-parsing must be idempotent. The
// committed corpus under testdata/fuzz seeds both families plus the
// historically tricky shapes (legacy two-decimal biases, crash schedules,
// duplicate-field near-misses).

import (
	"strings"
	"testing"
)

func FuzzParseSpecRoundTrip(f *testing.F) {
	for _, seed := range []string{
		// Language family, the drv1 grammar.
		"drv1:WEC_COUNT/exact:n=3:seed=7:pol=random:steps=2600",
		"drv1:LIN_REG/atomic:n=3:seed=7:pol=bursty:steps=500:crash=1@120",
		"drv1:SEC_COUNT/over-read:n=2:seed=7:pol=biased/0.60:steps=2100",
		"drv1:SC_LED/lost-append:n=4:seed=5:pol=biased/0.333:steps=400:crash=0@50,1@100,2@300",
		// Object family, the drv2 grammar.
		"drv2:obj/queue/lifo:n=2:seed=7:pol=random:steps=900:ops=4:mb=0.5",
		"drv2:obj/register/split:n=3:seed=9:pol=bursty:steps=700:ops=4:mb=0.25:crash=1@120",
		"drv2:obj/ledger/snapshot:n=3:seed=5:pol=biased/0.7:steps=1200:ops=8:mb=0.8",
		// Message-passing family, the drv3 grammar.
		"drv3:msg/register/abd:n=3:seed=7:pol=random:steps=2000:ops=4:mb=0.5:net=fifo",
		"drv3:msg/register/nowriteback:n=3:seed=61:pol=random:steps=3000:ops=4:mb=0.3:net=lifo",
		"drv3:msg/counter/lost:n=3:seed=9:pol=bursty:steps=2400:ops=3:mb=0.5:net=random:drop=3,4,5:crash=1@120",
		"drv3:msg/consensus/echo:n=4:seed=5:pol=biased/0.45:steps=1800:ops=2:mb=0.6:net=starve",
		// Near-misses the parser must keep rejecting.
		"drv1:obj/queue/lifo:n=2:seed=7:pol=random:steps=900:ops=4:mb=0.5",
		"drv2:obj/queue/lifo:n=2:seed=7:pol=random:steps=900",
		"drv0:WEC_COUNT/exact:n=3:seed=7:pol=random:steps=2600",
		"drv1:WEC_COUNT/exact:n=3:n=4:seed=1:pol=random:steps=10",
		"drv2:msg/register/abd:n=3:seed=7:pol=random:steps=2000:ops=4:mb=0.5:net=fifo",
		"drv2:obj/queue/lifo:n=2:seed=7:pol=random:steps=900:ops=4:mb=0.5:net=fifo",
		"drv3:msg/register/abd:n=3:seed=7:pol=random:steps=2000:ops=4:mb=0.5",
		"drv3:msg/register/abd:n=3:seed=7:pol=random:steps=2000:ops=4:mb=0.5:net=lifo:drop=9,3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		s, err := ParseSpec(line)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		re := s.String()
		s2, err := ParseSpec(re)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not re-parse: %v", re, line, err)
		}
		if again := s2.String(); again != re {
			t.Fatalf("String is not idempotent: %q -> %q -> %q", line, re, again)
		}
		// The canonical form carries the version-minimal tag per family.
		switch s.Fam() {
		case FamMsg:
			if !strings.HasPrefix(re, specVersion+":"+FamMsg+"/") {
				t.Fatalf("message spec %q did not canonicalize to the %s grammar: %q", line, specVersion, re)
			}
		case FamObj:
			if !strings.HasPrefix(re, objSpecVersion+":"+FamObj+"/") {
				t.Fatalf("object spec %q did not canonicalize to the %s grammar: %q", line, objSpecVersion, re)
			}
		default:
			if !strings.HasPrefix(re, legacySpecVersion+":") {
				t.Fatalf("language spec %q did not canonicalize to the %s tag: %q", line, legacySpecVersion, re)
			}
		}
		// An accepted spec is an executable spec: validate must agree with
		// the parser on both the original and the round-tripped value.
		if err := s.validate(); err != nil {
			t.Fatalf("ParseSpec accepted %q but validate rejects it: %v", line, err)
		}
		// Mutating the version tag must reject: the tag gates the grammar.
		for _, tag := range []string{"drv0", "drv4", "xrv1"} {
			if _, err := ParseSpec(tag + re[strings.Index(re, ":"):]); err == nil {
				t.Fatalf("mutated version tag %q accepted on %q", tag, re)
			}
		}
	})
}
