package explore

import (
	"strings"
	"testing"
)

func TestSignatureDeterministic(t *testing.T) {
	// The signature folds only replay-deterministic data, so executing the
	// same spec twice must produce the same signature.
	specs := []string{
		"drv1:WEC_COUNT/exact:n=3:seed=7:pol=random:steps=2600",
		"drv1:LIN_REG/atomic:n=3:seed=7:pol=bursty:steps=500:crash=1@120",
		"drv1:SEC_COUNT/over-read:n=2:seed=7:pol=biased/0.60:steps=2100",
	}
	for _, in := range specs {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		if a.Signature == "" {
			t.Fatalf("%s: empty signature", in)
		}
		if a.Signature != b.Signature {
			t.Errorf("%s: signature %q then %q across two executions", in, a.Signature, b.Signature)
		}
	}
}

func TestSignatureSeparatesScenarioShapes(t *testing.T) {
	// Different languages, crash placements and divergence outcomes must land
	// in different coverage classes — otherwise guidance has nothing to hold
	// on to.
	shapes := []string{
		"drv1:WEC_COUNT/exact:n=3:seed=7:pol=random:steps=2600",
		"drv1:LIN_REG/atomic:n=3:seed=7:pol=bursty:steps=500",
		"drv1:LIN_REG/atomic:n=3:seed=7:pol=bursty:steps=500:crash=1@120",
		"drv1:LIN_REG/atomic:n=3:seed=7:pol=bursty:steps=500:crash=1@480",
	}
	seen := map[string]string{}
	for _, in := range shapes {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[out.Signature]; dup {
			t.Errorf("%s and %s share signature %q", prev, in, out.Signature)
		}
		seen[out.Signature] = in
	}
}

func TestSignatureFoldsDivergences(t *testing.T) {
	// A diverging run must carry its failed checks in the signature: the
	// corpus then keeps one entry per divergence kind, the most valuable
	// coverage classes of all.
	s := Spec{Lang: "WEC_COUNT", Source: "own-inc-violation", N: 3, Seed: 11, Policy: PolCursor, Steps: 3000}
	clean, err := Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	broken, err := Runner{Wrap: wrapYes}.Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken.Divergences) == 0 {
		t.Fatal("broken monitor did not diverge")
	}
	if !strings.Contains(broken.Signature, "|dv=") {
		t.Errorf("diverging signature %q lacks a dv field", broken.Signature)
	}
	if clean.Signature == broken.Signature {
		t.Error("clean and diverging runs share a signature")
	}
}

func TestSignatureBuckets(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1023, 10},
	} {
		if got := log2Bucket(tc.n); got != tc.want {
			t.Errorf("log2Bucket(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	for _, tc := range []struct{ step, bound, want int }{
		{0, 100, 0}, {24, 100, 0}, {25, 100, 1}, {99, 100, 3}, {100, 100, 3}, {5, 0, 0},
	} {
		if got := quarter(tc.step, tc.bound); got != tc.want {
			t.Errorf("quarter(%d, %d) = %d, want %d", tc.step, tc.bound, got, tc.want)
		}
	}
}
