package explore

// Per-stage profiling: an opt-in breakdown of where an exploration spends
// its time and allocations, split by pipeline stage (generate the spec,
// execute the scenario, monitor-check the verdict stream, oracle-check the
// history) and by scenario family. Off by default — stage timing is
// nondeterministic wall-clock, so default reports stay byte-identical across
// runs and flags; drvexplore exposes it as -stage-stats.

import (
	"runtime"
	"time"
)

// StageCost aggregates one pipeline stage's cost within one scenario family.
type StageCost struct {
	// Nanos is wall time summed over the stage's executions.
	Nanos int64 `json:"nanos"`
	// Allocs is the summed heap-allocation count. It is a process-global
	// runtime.MemStats.Mallocs delta, so it is exact only at Workers <= 1;
	// concurrent workers bleed into each other's deltas.
	Allocs uint64 `json:"allocs"`
	// Runs counts the measurements folded in.
	Runs int `json:"runs"`
}

// add folds one measurement into the aggregate.
func (c *StageCost) add(d StageCost) {
	c.Nanos += d.Nanos
	c.Allocs += d.Allocs
	c.Runs += d.Runs
}

// StageBreakdown splits one family's cost across the pipeline stages.
type StageBreakdown struct {
	// Generate covers drawing or mutating the scenario spec.
	Generate StageCost `json:"generate"`
	// Execute covers the scheduled run: workload, SUT, Aτ, V_O, scheduler.
	Execute StageCost `json:"execute"`
	// Monitor covers judging the monitor's verdict stream against the offline
	// oracle (sketch construction included).
	Monitor StageCost `json:"monitor"`
	// Check covers the offline history oracles and the brute differential.
	Check StageCost `json:"check"`
}

// StageStats maps scenario-family names (FamLang, FamObj, FamMsg) to their
// per-stage cost breakdowns.
type StageStats map[string]*StageBreakdown

// merge folds other into s.
func (s StageStats) merge(other StageStats) {
	for fam, b := range other {
		dst := s[fam]
		if dst == nil {
			dst = &StageBreakdown{}
			s[fam] = dst
		}
		dst.Generate.add(b.Generate)
		dst.Execute.add(b.Execute)
		dst.Monitor.add(b.Monitor)
		dst.Check.add(b.Check)
	}
}

// Stage names stop dispatches on.
const (
	stageGenerate = "generate"
	stageExecute  = "execute"
	stageMonitor  = "monitor"
	stageCheck    = "check"
)

// stageRecorder accumulates StageStats for one worker (or for the sequential
// generator loop). A nil recorder is a no-op, so the runner's hot path pays
// nothing when profiling is off.
type stageRecorder struct {
	stats StageStats
}

func newStageRecorder() *stageRecorder { return &stageRecorder{stats: StageStats{}} }

// stageMark is an in-flight measurement started by start.
type stageMark struct {
	at      time.Time
	mallocs uint64
}

// start opens a measurement. ReadMemStats briefly stops the world, which is
// why profiling is opt-in rather than always-on.
func (t *stageRecorder) start() stageMark {
	if t == nil {
		return stageMark{}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return stageMark{at: time.Now(), mallocs: ms.Mallocs}
}

// stop closes the measurement into the family's breakdown.
func (t *stageRecorder) stop(fam, stage string, m stageMark) {
	if t == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b := t.stats[fam]
	if b == nil {
		b = &StageBreakdown{}
		t.stats[fam] = b
	}
	d := StageCost{Nanos: time.Since(m.at).Nanoseconds(), Allocs: ms.Mallocs - m.mallocs, Runs: 1}
	switch stage {
	case stageGenerate:
		b.Generate.add(d)
	case stageExecute:
		b.Execute.add(d)
	case stageMonitor:
		b.Monitor.add(d)
	case stageCheck:
		b.Check.add(d)
	}
}
