// Package core implements the paper's primary contribution as executable
// definitions: the decidability notions of Sections 4 and 6 — strong (Def
// 4.1), weak (Defs 4.2–4.4), predictive strong (Def 6.1) and predictive weak
// (Def 6.2) — evaluated over finite monitored executions, and the real-time
// obliviousness characterization of Section 5.2 (Definition 5.3, Theorem
// 5.2).
//
// Finite-run semantics for the ω-quantities: "NO(E,p) = 0" is literal;
// "NO(E,p) < ∞" (finitely many NOs) is read as "no NO among the process's
// last Window reports"; "NO(E,p) = ∞" as "a NO occurs among the last Window
// reports". Window is an experiment parameter; runs must be long enough that
// transient phases fit in the head.
package core

import "fmt"

// Stats is the view of a monitored execution the decidability predicates
// need: per-process NO counts and the finite-run tail proxy. Implemented by
// monitor.Result; declared here so the decidability core stays free of the
// runner's dependencies.
type Stats interface {
	// Procs returns the number of monitor processes.
	Procs() int
	// NOCount returns how many times process p reported NO.
	NOCount(p int) int
	// NOInTail reports whether process p reported NO among its last window
	// reports.
	NOInTail(p, window int) bool
}

// Class identifies one decidability notion of the paper.
type Class uint8

const (
	// SD is strong decidability (Definition 4.1).
	SD Class = iota + 1
	// WAD is weak-all decidability (Definition 4.2): on words in the
	// language every process reports NO finitely often; outside, some
	// process reports NO infinitely often.
	WAD
	// WOD is weak-one decidability (Definition 4.3): in the language, some
	// process reports NO finitely often; outside, every process reports NO
	// infinitely often. Theorem 4.1 proves WAD = WOD = WD.
	WOD
	// WD is weak decidability (Definition 4.4): in the language every
	// process reports NO finitely often, outside every process reports NO
	// infinitely often.
	WD
	// PSD is predictive strong decidability (Definition 6.1).
	PSD
	// PWD is predictive weak decidability (Definition 6.2).
	PWD
)

// String renders the class name as used in Table 1.
func (c Class) String() string {
	switch c {
	case SD:
		return "SD"
	case WAD:
		return "WAD"
	case WOD:
		return "WOD"
	case WD:
		return "WD"
	case PSD:
		return "PSD"
	case PWD:
		return "PWD"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Eval describes how a finite run is judged against a decidability notion.
type Eval struct {
	// Class under evaluation.
	Class Class
	// Window is the tail length used to interpret "finitely/infinitely many
	// NOs" on finite runs.
	Window int
	// SketchViolated reports whether the run's reconstructed sketch x~(E)
	// falls outside the language — the escape clause of the predictive
	// notions. Required for PSD and PWD; ignored otherwise.
	SketchViolated func() bool
}

// Check judges the monitored execution res, whose input ω-word membership is
// in, against the decidability notion. It returns nil when the verdicts are
// consistent with the notion and a descriptive error otherwise.
func (e Eval) Check(res Stats, in bool) error {
	switch e.Class {
	case SD:
		return e.checkSD(res, in)
	case WAD:
		return e.checkWAD(res, in)
	case WOD:
		return e.checkWOD(res, in)
	case WD:
		return e.checkWD(res, in)
	case PSD:
		return e.checkPSD(res, in)
	case PWD:
		return e.checkPWD(res, in)
	default:
		return fmt.Errorf("core: unknown class %d", e.Class)
	}
}

func (e Eval) checkWAD(res Stats, in bool) error {
	if in {
		for p := 0; p < res.Procs(); p++ {
			if res.NOInTail(p, e.Window) {
				return fmt.Errorf("WAD violated: word in language but process %d still reports NO in the tail", p)
			}
		}
		return nil
	}
	for p := 0; p < res.Procs(); p++ {
		if res.NOInTail(p, e.Window) {
			return nil
		}
	}
	return fmt.Errorf("WAD violated: word outside language but every process stopped reporting NO")
}

func (e Eval) checkWOD(res Stats, in bool) error {
	if in {
		for p := 0; p < res.Procs(); p++ {
			if !res.NOInTail(p, e.Window) {
				return nil
			}
		}
		return fmt.Errorf("WOD violated: word in language but every process reports NO in the tail")
	}
	for p := 0; p < res.Procs(); p++ {
		if !res.NOInTail(p, e.Window) {
			return fmt.Errorf("WOD violated: word outside language but process %d stopped reporting NO", p)
		}
	}
	return nil
}

func (e Eval) checkSD(res Stats, in bool) error {
	if in {
		for p := 0; p < res.Procs(); p++ {
			if c := res.NOCount(p); c > 0 {
				return fmt.Errorf("SD violated: word in language but process %d reported NO %d times", p, c)
			}
		}
		return nil
	}
	if totalNO(res) == 0 {
		return fmt.Errorf("SD violated: word outside language but no process ever reported NO")
	}
	return nil
}

func (e Eval) checkWD(res Stats, in bool) error {
	for p := 0; p < res.Procs(); p++ {
		tail := res.NOInTail(p, e.Window)
		if in && tail {
			return fmt.Errorf("WD violated: word in language but process %d still reports NO in the tail", p)
		}
		if !in && !tail {
			return fmt.Errorf("WD violated: word outside language but process %d stopped reporting NO", p)
		}
	}
	return nil
}

func (e Eval) checkPSD(res Stats, in bool) error {
	if !in {
		if totalNO(res) == 0 {
			return fmt.Errorf("PSD violated: word outside language but no NO reported")
		}
		return nil
	}
	if totalNO(res) == 0 {
		return nil
	}
	if e.SketchViolated == nil {
		return fmt.Errorf("PSD evaluation requires a sketch check")
	}
	if !e.SketchViolated() {
		return fmt.Errorf("PSD violated: NO reported on a word in the language, yet the sketch x~(E) is in the language too — the false negative has no justification")
	}
	return nil
}

func (e Eval) checkPWD(res Stats, in bool) error {
	if !in {
		for p := 0; p < res.Procs(); p++ {
			if !res.NOInTail(p, e.Window) {
				return fmt.Errorf("PWD violated: word outside language but process %d stopped reporting NO", p)
			}
		}
		return nil
	}
	persistent := false
	for p := 0; p < res.Procs(); p++ {
		if res.NOInTail(p, e.Window) {
			persistent = true
		}
	}
	if !persistent {
		return nil
	}
	if e.SketchViolated == nil {
		return fmt.Errorf("PWD evaluation requires a sketch check")
	}
	if !e.SketchViolated() {
		return fmt.Errorf("PWD violated: persistent NOs on a word in the language without a sketch justification")
	}
	return nil
}

func totalNO(res Stats) int {
	t := 0
	for p := 0; p < res.Procs(); p++ {
		t += res.NOCount(p)
	}
	return t
}
