package core

import (
	"github.com/drv-go/drv/internal/word"
)

// Real-time obliviousness (Definition 5.3): L is real-time oblivious if for
// every αβ ∈ L with α finite, α′β ∈ L for every shuffle α′ of α's
// projections. Theorem 5.2 proves every P-decidable language — under any
// decidability predicate — is real-time oblivious, which is the paper's
// characterization of what is verifiable against the asynchronous adversary.

// RTOWitness is evidence that a language is not real-time oblivious: a prefix
// whose membership-preserving shuffle fails the language's safety test.
type RTOWitness struct {
	// Alpha is the original prefix (safety-consistent with the language).
	Alpha word.Word
	// Shuffled is the interleaving of Alpha's projections that violates
	// safety.
	Shuffled word.Word
}

// FindRTOWitness searches the shuffles of alpha's per-process projections for
// one that violates the language's safety test, given that alpha itself does
// not. It returns nil when alpha passes no judgement (alpha itself violates
// safety) or no violating shuffle exists. safetyViolated must be the
// language's prefix-falsification test; n is the process count.
//
// A non-nil witness proves the language is not real-time oblivious —
// Definition 5.3 fails for the word αβ for any continuation β keeping αβ in
// the language — and therefore, by Theorem 5.2, the language is not
// P-decidable for any decidability predicate P.
func FindRTOWitness(safetyViolated func(word.Word) bool, alpha word.Word, n int) *RTOWitness {
	if safetyViolated(alpha) {
		return nil
	}
	parts := word.ProcParts(alpha, n)
	var witness *RTOWitness
	word.Shuffles(parts, func(cand word.Word) bool {
		if safetyViolated(cand) {
			witness = &RTOWitness{Alpha: alpha.Clone(), Shuffled: cand}
			return false
		}
		return true
	})
	return witness
}

// ShuffleClosed reports whether every shuffle of alpha's projections passes
// the safety test — the bounded empirical content of real-time obliviousness
// for one prefix. Languages classified real-time oblivious (WEC_COUNT) must
// be shuffle-closed on every safety-consistent prefix.
func ShuffleClosed(safetyViolated func(word.Word) bool, alpha word.Word, n int) bool {
	return FindRTOWitness(safetyViolated, alpha, n) == nil
}

// AppendixAWitness constructs the n-process witness of Appendix A showing
// the ledger languages are not real-time oblivious: every process p appends
// record p, then process n−1 gets all records; the shuffle that defers
// process 0's append past the get breaks validity for LIN, SC and EC alike.
func AppendixAWitness(n int) word.Word {
	b := word.NewB()
	recs := make(word.Seq, 0, n)
	for p := 0; p < n; p++ {
		r := word.Rec(word.Int(p).String())
		recs = append(recs, r)
		b.Op(p, "append", r, word.Unit{})
	}
	b.Op(n-1, "get", word.Unit{}, recs)
	return b.Word()
}
