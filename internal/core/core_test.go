package core

import (
	"strings"
	"testing"
)

// fakeStats is a hand-built Stats for predicate tests: verdict tails are
// encoded as per-process NO counts plus a tail flag.
type fakeStats struct {
	noCounts []int
	noInTail []bool
}

func (f fakeStats) Procs() int             { return len(f.noCounts) }
func (f fakeStats) NOCount(p int) int      { return f.noCounts[p] }
func (f fakeStats) NOInTail(p, _ int) bool { return f.noInTail[p] }

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		SD: "SD", WAD: "WAD", WOD: "WOD", WD: "WD", PSD: "PSD", PWD: "PWD",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
	if got := Class(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown class renders %q", got)
	}
}

func TestCheckSD(t *testing.T) {
	ev := Eval{Class: SD, Window: 2}
	// In language, no NOs: ok.
	if err := ev.Check(fakeStats{[]int{0, 0}, []bool{false, false}}, true); err != nil {
		t.Errorf("clean accept rejected: %v", err)
	}
	// In language, one NO anywhere: violation.
	if err := ev.Check(fakeStats{[]int{1, 0}, []bool{false, false}}, true); err == nil {
		t.Error("false negative accepted under SD")
	}
	// Out of language, no NOs at all: violation.
	if err := ev.Check(fakeStats{[]int{0, 0}, []bool{false, false}}, false); err == nil {
		t.Error("missed detection accepted under SD")
	}
	// Out of language, some NO: ok.
	if err := ev.Check(fakeStats{[]int{0, 3}, []bool{false, true}}, false); err != nil {
		t.Errorf("detection rejected: %v", err)
	}
}

func TestCheckWDAndHalves(t *testing.T) {
	wd := Eval{Class: WD, Window: 2}
	// In language: transient NOs fine, tail NOs fatal.
	if err := wd.Check(fakeStats{[]int{5, 5}, []bool{false, false}}, true); err != nil {
		t.Errorf("transient NOs rejected: %v", err)
	}
	if err := wd.Check(fakeStats{[]int{5, 5}, []bool{false, true}}, true); err == nil {
		t.Error("persistent NO on in-language word accepted under WD")
	}
	// Out of language: every process must keep NOing.
	if err := wd.Check(fakeStats{[]int{5, 5}, []bool{true, true}}, false); err != nil {
		t.Errorf("persistent rejection rejected: %v", err)
	}
	if err := wd.Check(fakeStats{[]int{5, 5}, []bool{true, false}}, false); err == nil {
		t.Error("a process that stopped NOing accepted under WD")
	}

	// WAD: out-of-language needs only one persistent NOer.
	wad := Eval{Class: WAD, Window: 2}
	if err := wad.Check(fakeStats{[]int{5, 5}, []bool{true, false}}, false); err != nil {
		t.Errorf("WAD rejected single persistent NOer: %v", err)
	}
	// WOD: in-language needs only one process that quiesced.
	wod := Eval{Class: WOD, Window: 2}
	if err := wod.Check(fakeStats{[]int{5, 5}, []bool{true, false}}, true); err != nil {
		t.Errorf("WOD rejected single quiesced process: %v", err)
	}
	if err := wod.Check(fakeStats{[]int{5, 5}, []bool{true, true}}, true); err == nil {
		t.Error("WOD accepted all-persistent NOs on in-language word")
	}
}

func TestCheckPSD(t *testing.T) {
	// In language with NOs: needs a justifying sketch.
	justified := Eval{Class: PSD, Window: 2, SketchViolated: func() bool { return true }}
	unjustified := Eval{Class: PSD, Window: 2, SketchViolated: func() bool { return false }}
	st := fakeStats{[]int{1, 0}, []bool{false, false}}
	if err := justified.Check(st, true); err != nil {
		t.Errorf("justified false negative rejected: %v", err)
	}
	if err := unjustified.Check(st, true); err == nil {
		t.Error("unjustified false negative accepted")
	}
	// Without a sketch check the evaluation must refuse.
	bare := Eval{Class: PSD, Window: 2}
	if err := bare.Check(st, true); err == nil {
		t.Error("PSD evaluated without a sketch check")
	}
	// Clean accept needs no sketch.
	if err := bare.Check(fakeStats{[]int{0, 0}, []bool{false, false}}, true); err != nil {
		t.Errorf("clean accept rejected: %v", err)
	}
	// Out of language: at least one NO.
	if err := bare.Check(fakeStats{[]int{0, 0}, []bool{false, false}}, false); err == nil {
		t.Error("missed detection accepted under PSD")
	}
}

func TestCheckPWD(t *testing.T) {
	justified := Eval{Class: PWD, Window: 2, SketchViolated: func() bool { return true }}
	unjustified := Eval{Class: PWD, Window: 2, SketchViolated: func() bool { return false }}
	persistent := fakeStats{[]int{9, 9}, []bool{true, true}}
	if err := justified.Check(persistent, true); err != nil {
		t.Errorf("justified persistent NOs rejected: %v", err)
	}
	if err := unjustified.Check(persistent, true); err == nil {
		t.Error("unjustified persistent NOs accepted")
	}
	// Out of language: every process must keep NOing.
	if err := unjustified.Check(fakeStats{[]int{9, 9}, []bool{true, false}}, false); err == nil {
		t.Error("PWD accepted a quiesced process on an out-of-language word")
	}
	if err := unjustified.Check(fakeStats{[]int{9, 9}, []bool{true, true}}, false); err != nil {
		t.Errorf("PWD rejected persistent rejection: %v", err)
	}
}

func TestCheckUnknownClass(t *testing.T) {
	ev := Eval{Class: Class(42)}
	if err := ev.Check(fakeStats{[]int{0}, []bool{false}}, true); err == nil {
		t.Error("unknown class accepted")
	}
}
