package core

import (
	"testing"

	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

func TestAppendixAWitnessNotRTO(t *testing.T) {
	// The Appendix A word defeats all three ledger languages.
	for _, n := range []int{2, 3, 4} {
		alpha := AppendixAWitness(n)
		for _, l := range []lang.Lang{lang.LinLed(), lang.SCLed(), lang.ECLed()} {
			wit := FindRTOWitness(l.SafetyViolated, alpha, n)
			if wit == nil {
				t.Errorf("n=%d: no RTO witness for %s on the Appendix A word", n, l.Name)
				continue
			}
			if l.SafetyViolated(wit.Alpha) {
				t.Errorf("n=%d %s: witness alpha itself violates safety", n, l.Name)
			}
			if !l.SafetyViolated(wit.Shuffled) {
				t.Errorf("n=%d %s: witness shuffle does not violate safety", n, l.Name)
			}
			if !word.InShuffle(wit.Shuffled, word.ProcParts(wit.Alpha, n)) {
				t.Errorf("n=%d %s: witness shuffle is not a shuffle of alpha's projections", n, l.Name)
			}
		}
	}
}

func TestRegisterWitnessNotRTO(t *testing.T) {
	// The Lemma 5.1 round: write(1) then read=1 — deferring the write past
	// the read breaks both register languages.
	b := word.NewB()
	b.Op(0, spec.OpWrite, word.Int(1), word.Unit{})
	b.Op(1, spec.OpRead, nil, word.Int(1))
	alpha := b.Word()
	for _, l := range []lang.Lang{lang.LinReg(), lang.SCReg()} {
		if FindRTOWitness(l.SafetyViolated, alpha, 2) == nil {
			t.Errorf("no RTO witness for %s", l.Name)
		}
	}
}

func TestSECWitnessNotRTO(t *testing.T) {
	// Clause (4): inc strictly before read=1; the shuffle deferring the inc
	// makes the read an over-read.
	b := word.NewB()
	b.Op(0, spec.OpInc, nil, word.Unit{})
	b.Op(1, spec.OpRead, nil, word.Int(1))
	alpha := b.Word()
	sec := lang.SECCount()
	if FindRTOWitness(sec.SafetyViolated, alpha, 2) == nil {
		t.Error("no RTO witness for SEC_COUNT on the clause-4 word")
	}
}

func TestWECShuffleClosed(t *testing.T) {
	// WEC_COUNT is real-time oblivious: its safety clauses only relate
	// same-process events, so every shuffle of a safety-consistent prefix
	// stays consistent. Check on several prefixes.
	wec := lang.WECCount()
	words := []word.Word{}
	{
		b := word.NewB()
		b.Op(0, spec.OpInc, nil, word.Unit{})
		b.Op(1, spec.OpRead, nil, word.Int(0))
		b.Op(0, spec.OpRead, nil, word.Int(1))
		words = append(words, b.Word())
	}
	{
		b := word.NewB()
		b.Op(0, spec.OpInc, nil, word.Unit{})
		b.Op(1, spec.OpInc, nil, word.Unit{})
		b.Op(2, spec.OpRead, nil, word.Int(2))
		b.Op(2, spec.OpRead, nil, word.Int(2))
		words = append(words, b.Word())
	}
	for i, alpha := range words {
		n := alpha.Procs()
		if !ShuffleClosed(wec.SafetyViolated, alpha, n) {
			t.Errorf("word %d: WEC_COUNT not shuffle-closed — contradicts its RTO classification", i)
		}
	}
}

func TestFindRTOWitnessSkipsViolatingAlpha(t *testing.T) {
	// A word that itself violates safety passes no judgement.
	b := word.NewB()
	b.Op(0, spec.OpRead, nil, word.Int(7)) // read of a never-written value
	alpha := b.Word()
	lr := lang.LinReg()
	if !lr.SafetyViolated(alpha) {
		t.Fatal("setup: alpha should violate safety")
	}
	if FindRTOWitness(lr.SafetyViolated, alpha, 1) != nil {
		t.Error("witness reported for an already-violating alpha")
	}
}

func TestLangRTOClassificationMatchesWitnessSearch(t *testing.T) {
	// The static classification on each language must agree with what the
	// witness search finds on the canonical witnesses.
	cases := []struct {
		l     lang.Lang
		alpha word.Word
	}{
		{lang.LinReg(), regWitness()},
		{lang.SCReg(), regWitness()},
		{lang.LinLed(), AppendixAWitness(3)},
		{lang.SCLed(), AppendixAWitness(3)},
		{lang.ECLed(), AppendixAWitness(3)},
		{lang.SECCount(), secWitnessWord()},
	}
	for _, c := range cases {
		if c.l.RealTimeOblivious {
			t.Errorf("%s claims real-time obliviousness but has a known witness", c.l.Name)
			continue
		}
		n := c.alpha.Procs()
		if FindRTOWitness(c.l.SafetyViolated, c.alpha, n) == nil {
			t.Errorf("%s: classification says non-RTO but no witness found on its canonical word", c.l.Name)
		}
	}
	if !lang.WECCount().RealTimeOblivious {
		t.Error("WEC_COUNT should be classified real-time oblivious")
	}
}

func regWitness() word.Word {
	b := word.NewB()
	b.Op(0, spec.OpWrite, word.Int(1), word.Unit{})
	b.Op(1, spec.OpRead, nil, word.Int(1))
	return b.Word()
}

func secWitnessWord() word.Word {
	b := word.NewB()
	b.Op(0, spec.OpInc, nil, word.Unit{})
	b.Op(1, spec.OpRead, nil, word.Int(1))
	return b.Word()
}
