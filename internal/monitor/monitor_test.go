package monitor

import (
	"flag"
	"os"
	"testing"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/core"
	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

const (
	testProcs  = 3
	testWindow = 4
)

// testSteps bounds untimed runs (cheap per-round logic); timedSteps bounds
// runs of the predictive monitors, whose per-round history check grows with
// the history; naiveSteps bounds runs of the naive baseline, whose per-round
// sequential-consistency search has no real-time edges to prune it and is
// exponential in the worst case. TestMain shrinks all four under -short; the
// decidability proxies stay sound, just coarser.
var (
	testSteps  = 30_000
	timedSteps = 4_000
	naiveSteps = 1_200
	scSteps    = 1_500
)

func TestMain(m *testing.M) {
	flag.Parse()
	if testing.Short() {
		testSteps, timedSteps, naiveSteps, scSteps = 6_000, 800, 400, 300
	}
	os.Exit(m.Run())
}

// runUntimed executes the monitor against the plain adversary A exhibiting
// the source's word.
func runUntimed(m Monitor, src adversary.Source, seed int64) *Result {
	return runUntimedSteps(m, src, seed, testSteps)
}

func runUntimedSteps(m Monitor, src adversary.Source, seed int64, steps int) *Result {
	adv := adversary.NewA(testProcs, src)
	return Run(Config{
		N:       testProcs,
		Monitor: m,
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			return adv, []int{adv.Register(rt)}
		},
		Policy: func(aux []int) sched.Policy {
			return sched.Biased(seed, aux[0], 0.5)
		},
		MaxSteps: steps,
	})
}

// runTimed executes a monitor-factory (which needs the timed adversary)
// against Aτ wrapping A.
func runTimed(mk func(tau *adversary.Timed) Monitor, src adversary.Source, seed int64) (*Result, *adversary.Timed) {
	return runTimedSteps(mk, src, seed, timedSteps)
}

func runTimedSteps(mk func(tau *adversary.Timed) Monitor, src adversary.Source, seed int64, steps int) (*Result, *adversary.Timed) {
	adv := adversary.NewA(testProcs, src)
	tau := adversary.NewTimed(testProcs, adv, adversary.ArrayAtomic)
	res := Run(Config{
		N:       testProcs,
		Monitor: mk(tau),
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			return tau, []int{adv.Register(rt)}
		},
		Policy: func(aux []int) sched.Policy {
			return sched.Biased(seed, aux[0], 0.5)
		},
		MaxSteps: steps,
	})
	return res, tau
}

func TestFig5WECIsWAD(t *testing.T) {
	// Lemma 5.3 upper half: Figure 5 weakly-all decides WEC_COUNT. Every
	// labelled source must satisfy the WAD conditions.
	wec := lang.WECCount()
	for _, seed := range []int64{1, 2} {
		for _, lb := range wec.Sources(testProcs, seed) {
			res := runUntimed(NewWEC(adversary.ArrayAtomic), lb.New(), seed)
			ev := core.Eval{Class: core.WAD, Window: testWindow}
			if err := ev.Check(res, lb.In); err != nil {
				t.Errorf("seed %d source %s (in=%v): %v", seed, lb.Name, lb.In, err)
			}
		}
	}
}

func TestFig3AmplifiedWECIsWD(t *testing.T) {
	// Lemma 4.2 applied to Figure 5: the amplified monitor weakly decides
	// WEC_COUNT — every process reports NO infinitely often on bad words.
	wec := lang.WECCount()
	m := AmplifyWAD(NewWEC(adversary.ArrayAtomic), adversary.ArrayAtomic)
	for _, lb := range wec.Sources(testProcs, 7) {
		res := runUntimed(m, lb.New(), 7)
		ev := core.Eval{Class: core.WD, Window: testWindow}
		if err := ev.Check(res, lb.In); err != nil {
			t.Errorf("source %s (in=%v): %v", lb.Name, lb.In, err)
		}
	}
}

func TestFig8LinRegisterIsPSD(t *testing.T) {
	// Theorem 6.2 for the register: V_O predictively strongly decides
	// LIN_REG against Aτ.
	lr := lang.LinReg()
	for _, lb := range lr.Sources(testProcs, 3) {
		var tau *adversary.Timed
		res, gotTau := runTimed(func(tt *adversary.Timed) Monitor {
			tau = tt
			return NewLin(spec.Register(), tt, adversary.ArrayAtomic)
		}, lb.New(), 3)
		_ = gotTau
		ev := core.Eval{Class: core.PSD, Window: testWindow, SketchViolated: func() bool {
			sk, err := res.Sketch(testProcs, tau.InvAt)
			if err != nil {
				t.Fatalf("sketch: %v", err)
			}
			return !check.Linearizable(spec.Register(), sk)
		}}
		if err := ev.Check(res, lb.In); err != nil {
			t.Errorf("source %s (in=%v): %v\nhistory: %v", lb.Name, lb.In, err, res.History)
		}
	}
}

func TestFig8LinLedgerIsPSD(t *testing.T) {
	ll := lang.LinLed()
	for _, lb := range ll.Sources(testProcs, 4) {
		var tau *adversary.Timed
		res, _ := runTimed(func(tt *adversary.Timed) Monitor {
			tau = tt
			return NewLin(spec.Ledger(), tt, adversary.ArrayAtomic)
		}, lb.New(), 4)
		ev := core.Eval{Class: core.PSD, Window: testWindow, SketchViolated: func() bool {
			sk, err := res.Sketch(testProcs, tau.InvAt)
			if err != nil {
				t.Fatalf("sketch: %v", err)
			}
			return !check.Linearizable(spec.Ledger(), sk)
		}}
		if err := ev.Check(res, lb.In); err != nil {
			t.Errorf("source %s (in=%v): %v", lb.Name, lb.In, err)
		}
	}
}

func TestFig8SCRegisterIsPSD(t *testing.T) {
	// Table 1: SC_REG ∈ PSD via the same construction with the SC check.
	// Runs are shorter than the LIN variant's: the sequential-consistency
	// search has no real-time edges to prune it and is exponential in the
	// worst case.
	sr := lang.SCReg()
	for _, lb := range sr.Sources(testProcs, 5) {
		var tau *adversary.Timed
		res, _ := runTimedSteps(func(tt *adversary.Timed) Monitor {
			tau = tt
			return NewSC(spec.Register(), tt, adversary.ArrayAtomic)
		}, lb.New(), 5, scSteps)
		ev := core.Eval{Class: core.PSD, Window: testWindow, SketchViolated: func() bool {
			sk, err := res.Sketch(testProcs, tau.InvAt)
			if err != nil {
				t.Fatalf("sketch: %v", err)
			}
			return sr.SafetyViolated(sk)
		}}
		if err := ev.Check(res, lb.In); err != nil {
			t.Errorf("source %s (in=%v): %v\nhistory: %v", lb.Name, lb.In, err, res.History)
		}
	}
}

func TestFig9SECIsPWD(t *testing.T) {
	// Lemma 6.4: the Figure 9 monitor (amplified per Lemma 4.2 so that all
	// processes report NO on bad words) predictively weakly decides
	// SEC_COUNT against Aτ.
	sec := lang.SECCount()
	for _, lb := range sec.Sources(testProcs, 6) {
		var tau *adversary.Timed
		res, _ := runTimed(func(tt *adversary.Timed) Monitor {
			tau = tt
			return AmplifyWAD(NewSEC(tt, adversary.ArrayAtomic), adversary.ArrayAtomic)
		}, lb.New(), 6)
		ev := core.Eval{Class: core.PWD, Window: testWindow, SketchViolated: func() bool {
			sk, err := res.Sketch(testProcs, tau.InvAt)
			if err != nil {
				t.Fatalf("sketch: %v", err)
			}
			return check.SECSafety(sk) != nil
		}}
		if err := ev.Check(res, lb.In); err != nil {
			t.Errorf("source %s (in=%v): %v\nhistory: %v", lb.Name, lb.In, err, res.History)
		}
	}
}

func TestFig9DetectsOverRead(t *testing.T) {
	// The clause-4 over-read is invisible to Figure 5 but caught by Figure
	// 9's view test: the dedicated regression for the SEC/WEC separation.
	sec := lang.SECCount()
	var overRead adversary.Labeled
	for _, lb := range sec.Sources(testProcs, 1) {
		if lb.Name == "over-read" {
			overRead = lb
		}
	}
	if overRead.New == nil {
		t.Fatal("over-read source missing")
	}
	res, _ := runTimed(func(tt *adversary.Timed) Monitor {
		return NewSEC(tt, adversary.ArrayAtomic)
	}, overRead.New(), 1)
	if res.TotalNO() == 0 {
		t.Error("Figure 9 monitor missed the clause-4 violation")
	}
	for p := 0; p < testProcs; p++ {
		if !res.NOInTail(p, testWindow) {
			t.Errorf("clause-4 violation should persist for process %d", p)
		}
	}
	// Figure 5 alone converges on the same word (it is weakly consistent).
	resWEC := runUntimed(NewWEC(adversary.ArrayAtomic), overRead.New(), 1)
	for p := 0; p < testProcs; p++ {
		if resWEC.NOInTail(p, testWindow) {
			t.Errorf("Figure 5 should accept the over-read word, process %d still NOs", p)
		}
	}
}

// onceNo is a test monitor that reports NO exactly once, on process 0's
// third report, and YES otherwise.
type onceNoLogic struct {
	id     int
	rounds int
}

func (l *onceNoLogic) PreSend(*sched.Proc, word.Symbol)         {}
func (l *onceNoLogic) PostRecv(*sched.Proc, adversary.Response) {}
func (l *onceNoLogic) Decide(*sched.Proc) Verdict {
	l.rounds++
	if l.id == 0 && l.rounds == 3 {
		return No
	}
	return Yes
}

func onceNo() Monitor {
	return NewMonitor("once-no", func(n int) []Logic {
		logics := make([]Logic, n)
		for i := range logics {
			logics[i] = &onceNoLogic{id: i}
		}
		return logics
	})
}

func TestFig2StabilizePropagatesNO(t *testing.T) {
	// Lemma 4.1's property: if any process ever reports NO, eventually every
	// process always reports NO.
	wec := lang.WECCount()
	src := wec.Sources(testProcs, 9)[0] // any infinite behaviour
	res := runUntimed(Stabilize(onceNo()), src.New(), 9)
	if res.NOCount(0) == 0 {
		t.Fatal("inner NO never fired")
	}
	for p := 0; p < testProcs; p++ {
		v := res.Verdicts[p]
		if len(v) < 6 {
			t.Fatalf("process %d reported only %d times", p, len(v))
		}
		for k, d := range v[len(v)-3:] {
			if d != No {
				t.Errorf("process %d tail verdict %d = %v, want NO", p, k, d)
			}
		}
	}
}

func TestFig2NoFalseNO(t *testing.T) {
	// Stabilize must not invent NOs: wrapping an always-YES monitor yields
	// only YES.
	wec := lang.WECCount()
	src := wec.Sources(testProcs, 9)[0]
	res := runUntimed(Stabilize(Constant(Yes)), src.New(), 11)
	if res.TotalNO() != 0 {
		t.Error("stabilized constant-YES monitor reported NO")
	}
}

func TestFig4AmplifyWOD(t *testing.T) {
	// Lemma 4.3's property: if some process reports NO only finitely often,
	// eventually every process always reports YES.
	wec := lang.WECCount()
	src := wec.Sources(testProcs, 9)[0]
	res := runUntimed(AmplifyWOD(onceNo(), adversary.ArrayAtomic), src.New(), 13)
	for p := 0; p < testProcs; p++ {
		if res.NOInTail(p, testWindow) {
			t.Errorf("process %d still reports NO though the inner monitor stabilized", p)
		}
	}
	// And with an inner monitor that never stops NOing anywhere, everyone
	// keeps reporting NO.
	res = runUntimed(AmplifyWOD(Constant(No), adversary.ArrayAtomic), src.New(), 13)
	for p := 0; p < testProcs; p++ {
		if !res.NOInTail(p, testWindow) {
			t.Errorf("process %d stopped reporting NO though the inner monitor never did", p)
		}
	}
}

func TestThreeValuedWEC(t *testing.T) {
	// Section 7: the three-valued variant never reports NO on words in the
	// language and never reports YES on words outside it.
	wec := lang.WECCount()
	for _, lb := range wec.Sources(testProcs, 21) {
		res := runUntimed(ThreeValuedWEC(adversary.ArrayAtomic), lb.New(), 21)
		yes, no := 0, 0
		for p := range res.Verdicts {
			for _, d := range res.Verdicts[p] {
				switch d {
				case Yes:
					yes++
				case No:
					no++
				}
			}
		}
		if lb.In && no > 0 {
			t.Errorf("source %s: 3-valued monitor reported NO on a word in the language", lb.Name)
		}
		if !lb.In && yes > 0 {
			t.Errorf("source %s: 3-valued monitor reported YES on a word outside the language", lb.Name)
		}
	}
}

func TestNaiveOrderBlindToRealTime(t *testing.T) {
	// The naive monitor accepts the stale-read register behaviour (which is
	// outside LIN_REG) — real-time violations are invisible without views.
	lr := lang.LinReg()
	var stale, phantom adversary.Labeled
	for _, lb := range lr.Sources(testProcs, 2) {
		switch lb.Name {
		case "stale-reads":
			stale = lb
		case "phantom":
			phantom = lb
		}
	}
	res := runUntimedSteps(NewNaiveOrder(spec.Register(), adversary.ArrayAtomic), stale.New(), 2, naiveSteps)
	if res.TotalNO() != 0 {
		t.Error("naive monitor cannot distinguish stale reads, yet reported NO")
	}
	// It still catches order-free violations.
	res = runUntimedSteps(NewNaiveOrder(spec.Register(), adversary.ArrayAtomic), phantom.New(), 2, naiveSteps)
	if res.TotalNO() == 0 {
		t.Error("naive monitor missed a value never written")
	}
}
