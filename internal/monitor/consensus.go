package monitor

import (
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/mem"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/sketch"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// NewConsensusOrder returns a monitor that uses unbounded consensus power:
// processes agree — via a log of wait-free consensus objects built on
// compare-and-swap — on a single global total order of all completed
// operations, and every process validates that agreed sequential order
// against the object specification.
//
// The monitor realizes the paper's remark that "our impossibility results
// hold under operations with arbitrarily high consensus number [30]":
// despite deciding a common total order (something read/write registers
// cannot do), the order is built from what processes observed, not from the
// real-time order of events at the adversary — so the Lemma 5.1 experiment
// drives it to identical verdicts on a linearizable execution and a
// non-linearizable one. Consensus power does not buy real-time visibility.
func NewConsensusOrder(obj spec.Object, kind adversary.ArrayKind) Monitor {
	return NewMonitor("consensus-order/"+obj.Name()+"/"+kindName(kind), func(n int) []Logic {
		board := newTripleBoard(n, kind)
		log := &consLog{}
		logics := make([]Logic, n)
		for i := range logics {
			logics[i] = &consensusLogic{obj: obj, board: board, log: log, known: map[word.OpID]sketch.Triple{}}
		}
		return logics
	})
}

// consLog is an unbounded array of single-shot consensus objects; slot k
// decides the identity of the k-th operation in the agreed global order.
type consLog struct {
	cells []*mem.Consensus
}

// cell returns slot k, allocating as needed. Allocation is safe under the
// cooperative scheduler (one process runs at a time).
func (cl *consLog) cell(k int) *mem.Consensus {
	for len(cl.cells) <= k {
		cl.cells = append(cl.cells, mem.NewConsensus())
	}
	return cl.cells[k]
}

// opIDEncoding packs an operation identifier into a consensus proposal.
const opIDStride = 1 << 20

func encodeOpID(id word.OpID) int64 { return int64(id.Proc)*opIDStride + int64(id.Idx) + 1 }
func decodeOpID(v int64) word.OpID {
	v--
	return word.OpID{Proc: int(v / opIDStride), Idx: int(v % opIDStride)}
}

// consensusLogic is the per-process state of the consensus-order monitor.
type consensusLogic struct {
	obj   spec.Object
	board *tripleBoard
	log   *consLog

	inv     word.Symbol
	count   int
	tbuf    []sketch.Triple // publish's collection buffer, reused per round
	known   map[word.OpID]sketch.Triple
	agreed  []word.OpID // the process's view of the decided log prefix
	flag    bool
	verdict Verdict
}

// PreSend implements Line 02.
func (l *consensusLogic) PreSend(_ *sched.Proc, inv word.Symbol) { l.inv = inv }

// PostRecv implements Line 05: publish the completed operation, then append
// it to the agreed global order by proposing it at successive log slots
// until some slot decides it.
func (l *consensusLogic) PostRecv(p *sched.Proc, resp adversary.Response) {
	id := resp.ID
	if id == (word.OpID{}) {
		id = word.OpID{Proc: p.ID, Idx: l.count}
	}
	l.count++
	l.tbuf = l.board.publish(p, sketch.Triple{ID: id, Inv: l.inv, Res: resp.Sym}, l.tbuf)
	for _, tr := range l.tbuf {
		l.known[tr.ID] = tr
	}
	// Catch up with the decided prefix, then install our operation at the
	// first free slot (wait-free: each retry decides some operation, and
	// only finitely many precede ours).
	slot := len(l.agreed)
	for {
		decided := l.log.cell(slot).Propose(p, encodeOpID(id))
		decID := decodeOpID(decided)
		l.agreed = append(l.agreed, decID)
		slot++
		if decID == id {
			break
		}
	}
	l.validate()
}

// validate replays the agreed order against the specification; the verdict
// is NO once the agreed order is invalid (sticky — the log is append-only).
func (l *consensusLogic) validate() {
	if l.flag {
		l.verdict = No
		return
	}
	st := l.obj.Init()
	for _, id := range l.agreed {
		tr, ok := l.known[id]
		if !ok {
			break // not yet resolvable; validate the visible prefix only
		}
		next, ret, ok := st.Apply(tr.Inv.Op, tr.Inv.Val)
		if !ok || (tr.Res.Val != nil && !ret.Equal(tr.Res.Val)) {
			l.flag = true
			l.verdict = No
			return
		}
		st = next
	}
	l.verdict = Yes
}

// Decide implements Line 06.
func (l *consensusLogic) Decide(*sched.Proc) Verdict {
	if l.verdict == 0 {
		return Yes
	}
	return l.verdict
}
