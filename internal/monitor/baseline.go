package monitor

import (
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/sketch"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// Constant returns a monitor whose processes always report the given value.
// The degenerate candidates in impossibility experiments.
func Constant(v Verdict) Monitor {
	return NewMonitor("constant-"+v.String(), func(n int) []Logic {
		logics := make([]Logic, n)
		for i := range logics {
			logics[i] = constantLogic{v: v}
		}
		return logics
	})
}

type constantLogic struct {
	v Verdict
}

func (constantLogic) PreSend(*sched.Proc, word.Symbol)         {}
func (constantLogic) PostRecv(*sched.Proc, adversary.Response) {}
func (l constantLogic) Decide(*sched.Proc) Verdict             { return l.v }

// NewNaiveOrder returns the strongest monitor available against the plain
// adversary A for order-sensitive languages: processes share their observed
// (invocation, response) pairs and check whether the collected operations
// admit any valid sequential order respecting per-process order — i.e. a
// sequential-consistency check, the most a monitor can verify without
// real-time information. Against LIN_O it is sound but inherently incomplete:
// the Lemma 5.1 experiment shows its verdicts are identical on a linearizable
// execution and a non-linearizable one, as Theorem 5.2 predicts for every
// monitor.
func NewNaiveOrder(obj spec.Object, kind adversary.ArrayKind) Monitor {
	return NewMonitor("naive-order/"+obj.Name()+"/"+kindName(kind), func(n int) []Logic {
		board := newTripleBoard(n, kind)
		logics := make([]Logic, n)
		for i := range logics {
			logics[i] = &naiveOrderLogic{obj: obj, board: board}
		}
		return logics
	})
}

type naiveOrderLogic struct {
	obj   spec.Object
	board *tripleBoard

	inv     word.Symbol
	count   int
	tbuf    []sketch.Triple // publish's collection buffer, reused per round
	verdict Verdict
}

func (l *naiveOrderLogic) PreSend(_ *sched.Proc, inv word.Symbol) { l.inv = inv }

func (l *naiveOrderLogic) PostRecv(p *sched.Proc, resp adversary.Response) {
	id := resp.ID
	if id == (word.OpID{}) {
		id = word.OpID{Proc: p.ID, Idx: l.count}
	}
	l.count++
	l.tbuf = l.board.publish(p, sketch.Triple{ID: id, Inv: l.inv, Res: resp.Sym}, l.tbuf)
	triples := l.tbuf
	// Build the most permissive history consistent with what is known:
	// per-process order only — all cross-process pairs concurrent.
	h := orderFreeWord(triples)
	if check.SeqConsistent(l.obj, h) {
		l.verdict = Yes
	} else {
		l.verdict = No
	}
}

func (l *naiveOrderLogic) Decide(*sched.Proc) Verdict { return l.verdict }

// orderFreeWord lays out the collected operations with every invocation
// before every response, erasing all cross-process real-time order while
// keeping per-process operation order (IDs are per-process indices).
func orderFreeWord(triples []sketch.Triple) word.Word {
	byProc := map[int][]sketch.Triple{}
	maxProc := 0
	for _, tr := range triples {
		byProc[tr.ID.Proc] = append(byProc[tr.ID.Proc], tr)
		if tr.ID.Proc > maxProc {
			maxProc = tr.ID.Proc
		}
	}
	var out word.Word
	for p := 0; p <= maxProc; p++ {
		trs := byProc[p]
		// Per-process order by identifier index; one operation at a time so
		// the local word alternates invocation/response.
		for i := 0; i < len(trs); i++ {
			for _, tr := range trs {
				if tr.ID.Idx == i {
					out = append(out, tr.Inv, tr.Res)
				}
			}
		}
	}
	return out
}

// ThreeValuedWEC is the Section 7 adaptation of Figure 5 to the three-valued
// weak-decidability variant: NO is reserved for prefix-determined violations
// of the safety clauses (1)–(2), everything else reports MAYBE. If the
// behaviour is in WEC_COUNT no process ever reports NO; if it is not, no
// process ever reports YES.
func ThreeValuedWEC(kind adversary.ArrayKind) Monitor {
	return NewMonitor("wec-3valued/"+kindName(kind), func(n int) []Logic {
		incs := adversary.NewArray(kind, n)
		logics := make([]Logic, n)
		for i := range logics {
			logics[i] = &threeValuedLogic{wec: wecLogic{incs: incs}}
		}
		return logics
	})
}

type threeValuedLogic struct {
	wec wecLogic
}

func (l *threeValuedLogic) PreSend(p *sched.Proc, inv word.Symbol) { l.wec.PreSend(p, inv) }
func (l *threeValuedLogic) PostRecv(p *sched.Proc, r adversary.Response) {
	l.wec.PostRecv(p, r)
}

func (l *threeValuedLogic) Decide(p *sched.Proc) Verdict {
	d := l.wec.Decide(p)
	if l.wec.flag {
		// Safety clause violated: this is conclusive.
		return No
	}
	_ = d
	return Maybe
}

// ThreeValuedSEC is the analogous Section 7 variant for the predictive-weak
// class: NO only on safety clauses (1)–(2) and the view-witnessed clause (4),
// MAYBE otherwise.
func ThreeValuedSEC(tau *adversary.Timed, kind adversary.ArrayKind) Monitor {
	return NewMonitor("sec-3valued/"+kindName(kind), func(n int) []Logic {
		incs := adversary.NewArray(kind, n)
		board := newTripleBoard(n, kind)
		logics := make([]Logic, n)
		for i := range logics {
			logics[i] = &threeValuedSECLogic{
				sec: secLogic{wec: wecLogic{incs: incs}, board: board, tau: tau},
			}
		}
		return logics
	})
}

type threeValuedSECLogic struct {
	sec secLogic
}

func (l *threeValuedSECLogic) PreSend(p *sched.Proc, inv word.Symbol) { l.sec.PreSend(p, inv) }
func (l *threeValuedSECLogic) PostRecv(p *sched.Proc, r adversary.Response) {
	l.sec.PostRecv(p, r)
}

func (l *threeValuedSECLogic) Decide(p *sched.Proc) Verdict {
	l.sec.Decide(p)
	if l.sec.wec.flag || l.sec.clause4 {
		return No
	}
	return Maybe
}
