package monitor

import (
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/sched"
)

// DefaultMaxSteps bounds an execution when Config.MaxSteps is unset (≤ 0).
// It is deliberately generous: the services' finite behaviour scripts or the
// caller's step bound end real experiments long before it trips.
const DefaultMaxSteps = 1_000_000

// Session executes monitored runs on one reusable runtime. Where Run pays a
// fresh runtime — N spawned-and-torn-down goroutines plus freshly allocated
// result buffers — per execution, a Session resets its pooled runtime and
// appends into the same pre-sized Result buffers run after run, so workloads
// that execute thousands of scenarios (the explorer, the Table 1 sweeps) set
// up each execution without allocating.
//
// A Session is not safe for concurrent use: pooled workloads give each
// worker its own. Run returns the session-owned Result, which is valid until
// the next Run; callers that retain results across runs must copy what they
// keep (or use the package-level Run, which dedicates a session to the one
// execution).
type Session struct {
	rt     *sched.Runtime
	res    Result
	bodies []func(p *sched.Proc)
	checks *check.Pool

	// Per-run state read by the pooled process bodies.
	svc    adversary.Service
	stats  adversary.Stats
	logics []Logic
	gate   func(p *sched.Proc, round int)
}

// NewSession returns an empty session; its runtime is created lazily at the
// first Run and grows to the largest process count seen.
func NewSession() *Session { return &Session{} }

// CheckPool returns the session's consistency-checker pool. Logics that
// re-check histories borrow grown checkers from it run after run, so small
// scenarios batched onto one pooled runtime amortize checker setup the same
// way they amortize the runtime's: after the first few runs of a workload,
// borrowing is allocation-free. Like the session itself, the pool is
// single-owner state — it must only be used from this session's runs.
func (s *Session) CheckPool() *check.Pool {
	if s.checks == nil {
		s.checks = check.NewPool()
	}
	return s.checks
}

// Close tears down the pooled runtime. The session cannot run afterwards.
func (s *Session) Close() {
	if s.rt != nil {
		s.rt.Stop()
	}
}

// body returns the pooled Figure-1 loop for process index i. The closure is
// built once per index and reused by every run: all per-run state (service,
// logics, result buffers) is read through the session.
func (s *Session) body(i int) func(p *sched.Proc) {
	return func(p *sched.Proc) {
		logic := s.logics[i]
		res := &s.res
		for round := 0; ; round++ {
			v, ok := s.svc.NextInv(p.ID) // Line 01
			if !ok {
				return
			}
			if s.gate != nil {
				s.gate(p, round)
			}
			logic.PreSend(p, v)     // Line 02
			s.svc.Send(p, v)        // Line 03
			resp := s.svc.Recv(p)   // Line 04
			logic.PostRecv(p, resp) // Line 05
			d := logic.Decide(p)    // Line 06
			res.Invs[i] = append(res.Invs[i], v)
			res.Responses[i] = append(res.Responses[i], resp)
			res.Verdicts[i] = append(res.Verdicts[i], d)
			res.StepAt[i] = append(res.StepAt[i], s.rt.Steps())
			src, hl := 0, 0
			if s.stats != nil {
				src = s.stats.Pulled()
				hl = s.stats.HistLen()
			}
			res.PulledAt[i] = append(res.PulledAt[i], src)
			res.HistAt[i] = append(res.HistAt[i], hl)
		}
	}
}

// resetResult re-sizes the reusable result buffers for an n-process run:
// outer slices keep their backing arrays, inner ones rewind to length zero
// with capacity retained, so steady-state appends stop allocating once the
// buffers have grown to the workload's sizes.
func (s *Session) resetResult(n int) {
	res := &s.res
	res.Steps = 0
	res.Drained = false
	res.History = nil
	grow(&res.Verdicts, n)
	grow(&res.Responses, n)
	grow(&res.Invs, n)
	grow(&res.StepAt, n)
	grow(&res.PulledAt, n)
	grow(&res.HistAt, n)
}

// grow re-sizes a per-process buffer family to n rows, truncating each row in
// place so its backing array is reused by the next run's appends.
func grow[T any](s *[][]T, n int) {
	for len(*s) < n {
		*s = append(*s, nil)
	}
	*s = (*s)[:n]
	for i := range *s {
		(*s)[i] = (*s)[i][:0]
	}
}

// Run executes one monitored run on the pooled runtime and returns the
// session-owned result. The execution is byte-for-byte identical to what the
// package-level Run produces for the same Config: the pooled runtime resets
// to the exact New-runtime state (step counts, actor IDs, schedules).
func (s *Session) Run(cfg Config) *Result {
	if s.rt == nil {
		s.rt = sched.New(cfg.N, nil)
	} else {
		s.rt.Reset(cfg.N, nil)
	}
	rt := s.rt
	svc, aux := cfg.NewService(rt)
	if cfg.Policy != nil {
		rt.SetPolicy(cfg.Policy(aux))
	} else if len(aux) > 0 {
		rt.SetPolicy(sched.Prioritize(aux[0], sched.RoundRobin()))
	} else {
		rt.SetPolicy(sched.RoundRobin())
	}
	s.svc = svc
	s.stats, _ = svc.(adversary.Stats)
	s.logics = cfg.Monitor.New(cfg.N)
	pool := s.CheckPool()
	pool.Reclaim()
	for _, l := range s.logics {
		if pl, ok := l.(poolable); ok {
			pl.attachPool(pool)
		}
	}
	s.gate = cfg.Gate
	s.resetResult(cfg.N)
	for len(s.bodies) < cfg.N {
		s.bodies = append(s.bodies, s.body(len(s.bodies)))
	}
	for i := 0; i < cfg.N; i++ {
		rt.Spawn(i, s.bodies[i])
	}

	if cfg.Drive != nil {
		cfg.Drive(rt)
	} else {
		maxSteps := cfg.MaxSteps
		if maxSteps <= 0 {
			maxSteps = DefaultMaxSteps
		}
		crashable, _ := svc.(interface{ Crash(id int) })
		for rt.Steps() < maxSteps {
			if ids, ok := cfg.Crash[rt.Steps()]; ok {
				for _, id := range ids {
					rt.Crash(id)
					if crashable != nil {
						// Tell the service too: a crashed process has no
						// further events in the exhibited word.
						crashable.Crash(id)
					}
				}
			}
			if !rt.Step() {
				s.res.Drained = true
				break
			}
		}
	}
	s.res.Steps = rt.Steps()
	s.res.History = svc.History()
	return &s.res
}
