package monitor

import (
	"testing"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/word"
)

// TestHistAtRecordsHistoryPrefixes pins the verdict/oracle comparison
// surface: HistAt must align with Verdicts, grow monotonically per process,
// never exceed the final history, and — the property differential checkers
// rely on — History[:HistAt[p][k]] must already contain the response that
// process p's k-th verdict judged.
func TestHistAtRecordsHistoryPrefixes(t *testing.T) {
	src := lang.WECCount().Sources(testProcs, 1)[0]
	res := runUntimedSteps(NewWEC(adversary.ArrayAtomic), src.New(), 1, 4_000)
	if len(res.History) == 0 {
		t.Fatal("no history recorded")
	}
	for p := range res.Verdicts {
		if len(res.HistAt[p]) != len(res.Verdicts[p]) {
			t.Fatalf("process %d: %d HistAt entries for %d verdicts", p, len(res.HistAt[p]), len(res.Verdicts[p]))
		}
		prev := 0
		for k, hl := range res.HistAt[p] {
			if hl < prev {
				t.Fatalf("process %d: HistAt regressed from %d to %d at verdict %d", p, prev, hl, k)
			}
			if hl > len(res.History) {
				t.Fatalf("process %d: HistAt %d exceeds history length %d", p, hl, len(res.History))
			}
			prev = hl
			// The k-th verdict follows the k-th response: the prefix must
			// contain at least k+1 responses of process p.
			responses := 0
			for _, s := range res.History[:hl] {
				if s.Proc == p && s.Kind == word.Res {
					responses++
				}
			}
			if responses < k+1 {
				t.Fatalf("process %d: verdict %d reported with only %d own responses in its history prefix", p, k, responses)
			}
		}
	}
}

// TestHistAtTimedService checks the surface against Aτ, whose outer history
// is what the monitors actually judge.
func TestHistAtTimedService(t *testing.T) {
	src := lang.SECCount().Sources(testProcs, 1)[0]
	res, _ := runTimedSteps(func(tau *adversary.Timed) Monitor {
		return NewSEC(tau, adversary.ArrayAtomic)
	}, src.New(), 1, 1_500)
	total := 0
	for p := range res.Verdicts {
		total += len(res.Verdicts[p])
		for k, hl := range res.HistAt[p] {
			if hl == 0 {
				t.Fatalf("process %d verdict %d recorded a zero history length against a timed service", p, k)
			}
		}
	}
	if total == 0 {
		t.Fatal("run produced no verdicts")
	}
}
