package monitor

import (
	"testing"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/sched"
)

// TestWaitFreedomUnderCrashes exercises the model's fault tolerance: up to
// n−1 monitor processes crash mid-run and the survivor must keep reporting —
// its blocks are wait-free, so no crash can block it. Every monitor family
// is run with all-but-one processes crashed early.
func TestWaitFreedomUnderCrashes(t *testing.T) {
	wec := lang.WECCount()
	src := wec.Sources(testProcs, 3)[0]
	monitors := []Monitor{
		NewWEC(adversary.ArrayAtomic),
		NewWEC(adversary.ArrayAADGMS),
		NewWEC(adversary.ArrayCollect),
		AmplifyWAD(NewWEC(adversary.ArrayAtomic), adversary.ArrayAtomic),
		AmplifyWOD(NewWEC(adversary.ArrayAtomic), adversary.ArrayAtomic),
		Stabilize(NewWEC(adversary.ArrayAtomic)),
		ThreeValuedWEC(adversary.ArrayAtomic),
	}
	for _, m := range monitors {
		adv := adversary.NewA(testProcs, src.New())
		res := Run(Config{
			N:       testProcs,
			Monitor: m,
			NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
				return adv, []int{adv.Register(rt)}
			},
			Policy: func(aux []int) sched.Policy {
				return sched.Biased(3, aux[0], 0.5)
			},
			MaxSteps: 20_000,
			// Crash all processes but p0 early: n−1 crashes, the maximum the
			// model allows.
			Crash: map[int][]int{500: {1}, 900: {2}},
		})
		if len(res.Verdicts[0]) < 10 {
			t.Errorf("%s: survivor reported only %d times with %d crashed peers — not wait-free",
				m.Name(), len(res.Verdicts[0]), testProcs-1)
		}
	}
}

// TestCrashedProcessStopsReporting confirms the crash model: a crashed
// process takes no further steps, so its verdict stream freezes.
func TestCrashedProcessStopsReporting(t *testing.T) {
	wec := lang.WECCount()
	src := wec.Sources(testProcs, 3)[0]
	adv := adversary.NewA(testProcs, src.New())
	res := Run(Config{
		N:       testProcs,
		Monitor: NewWEC(adversary.ArrayAtomic),
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			return adv, []int{adv.Register(rt)}
		},
		Policy: func(aux []int) sched.Policy {
			return sched.Biased(3, aux[0], 0.5)
		},
		MaxSteps: 20_000,
		Crash:    map[int][]int{200: {2}},
	})
	if len(res.Verdicts[2]) >= len(res.Verdicts[0]) {
		t.Errorf("crashed process reported %d times, survivor %d — crash did not stop it",
			len(res.Verdicts[2]), len(res.Verdicts[0]))
	}
}

// TestTimedMonitorSurvivesCrashes runs the predictive monitor with a crashed
// peer: views keep flowing (the announce/snapshot protocol is wait-free) and
// the survivors keep deciding.
func TestTimedMonitorSurvivesCrashes(t *testing.T) {
	lr := lang.LinReg()
	src := lr.Sources(testProcs, 5)[0]
	res, _ := func() (*Result, *adversary.Timed) {
		adv := adversary.NewA(testProcs, src.New())
		tau := adversary.NewTimed(testProcs, adv, adversary.ArrayAtomic)
		res := Run(Config{
			N:       testProcs,
			Monitor: NewWEC(adversary.ArrayAtomic), // any monitor exercises the wrapper
			NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
				return tau, []int{adv.Register(rt)}
			},
			Policy: func(aux []int) sched.Policy {
				return sched.Biased(5, aux[0], 0.5)
			},
			MaxSteps: 8_000,
			Crash:    map[int][]int{400: {1}},
		})
		return res, tau
	}()
	for _, p := range []int{0, 2} {
		if len(res.Responses[p]) == 0 {
			t.Fatalf("survivor %d received no responses", p)
		}
		for k, r := range res.Responses[p] {
			if r.View == nil {
				t.Errorf("survivor %d response %d has no view — wrapper stalled after crash", p, k)
				break
			}
		}
	}
}
