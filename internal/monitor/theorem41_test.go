package monitor

import (
	"testing"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/core"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// Theorem 4.1 (SD ⊆ WAD = WOD) is a chain of monitor transformations. The
// Figure 2 transform presupposes a monitor that strongly decides — one that
// never reports NO on in-language words — so the round-trip is exercised on
// a language that IS strongly decidable: "every read returns 0", a local
// safety property each process can falsify from its own responses alone
// (the paper conjectures exactly such no-communication-needed languages are
// the only SD ones).

// zeroLogic reports NO iff the process has received a read response ≠ 0.
type zeroLogic struct{ bad bool }

func (l *zeroLogic) PreSend(*sched.Proc, word.Symbol) {}
func (l *zeroLogic) PostRecv(_ *sched.Proc, r adversary.Response) {
	if r.Sym.Op == spec.OpRead {
		if v, ok := r.Sym.Val.(word.Int); ok && v != 0 {
			l.bad = true
		}
	}
}
func (l *zeroLogic) Decide(*sched.Proc) Verdict {
	if l.bad {
		return No
	}
	return Yes
}

func zeroMonitor() Monitor {
	return NewMonitor("all-reads-zero", func(n int) []Logic {
		logics := make([]Logic, n)
		for i := range logics {
			logics[i] = &zeroLogic{}
		}
		return logics
	})
}

// zeroSource emits rounds of reads returning 0; when poison ≥ 0, process 1's
// poison-th read returns 7 instead, putting the word outside the language.
func zeroSource(procs, rounds, poison int) adversary.Source {
	b := word.NewB()
	k := 0
	for r := 0; r < rounds; r++ {
		for p := 0; p < procs; p++ {
			val := word.Int(0)
			if p == 1 && k == poison {
				val = word.Int(7)
			}
			if p == 1 {
				k++
			}
			b.Op(p, spec.OpRead, nil, val)
		}
	}
	return adversary.NewScriptSource(b.Word())
}

func TestTheorem41RoundTrip(t *testing.T) {
	const rounds = 40
	cases := []struct {
		name   string
		poison int
		in     bool
	}{
		{"all-zero", -1, true},
		{"poisoned", 3, false},
	}
	chain := []struct {
		name  string
		m     Monitor
		class core.Class
	}{
		// The base monitor strongly decides the language.
		{"SD base", zeroMonitor(), core.SD},
		// Lemma 4.1 / Figure 2: stabilized, it satisfies WAD ("eventually
		// every process always reports NO" on bad words).
		{"Fig2→WAD", Stabilize(zeroMonitor()), core.WAD},
		// Lemma 4.2 / Figure 3: amplified, it satisfies WOD.
		{"Fig3→WOD", AmplifyWAD(Stabilize(zeroMonitor()), adversary.ArrayAtomic), core.WOD},
		// Lemma 4.3 / Figure 4: amplified again, back to WAD — WAD = WOD.
		{"Fig4→WAD", AmplifyWOD(AmplifyWAD(Stabilize(zeroMonitor()), adversary.ArrayAtomic), adversary.ArrayAtomic), core.WAD},
	}
	for _, c := range cases {
		for _, st := range chain {
			res := runUntimed(st.m, zeroSource(testProcs, rounds, c.poison), 19)
			ev := core.Eval{Class: st.class, Window: testWindow}
			if err := ev.Check(res, c.in); err != nil {
				t.Errorf("%s on %s: %v", st.name, c.name, err)
			}
		}
	}
}
