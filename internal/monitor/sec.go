package monitor

import (
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/sketch"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// NewSEC returns the algorithm of Figure 9, which predictively weakly
// decides SEC_COUNT (Lemma 6.4): the Figure 5 weak decider extended — in
// blue in the paper — with a shared board of (v, w, view) triples and a
// fourth test that uses views to catch reads returning more than the number
// of inc invocations visible at their response, the real-time-sensitive
// clause (4) of the strong eventual counter.
func NewSEC(tau *adversary.Timed, kind adversary.ArrayKind) Monitor {
	return NewMonitor("sec-fig9/"+kindName(kind), func(n int) []Logic {
		incs := adversary.NewArray(kind, n)
		board := newTripleBoard(n, kind)
		logics := make([]Logic, n)
		for i := range logics {
			logics[i] = &secLogic{
				wec:   wecLogic{incs: incs},
				board: board,
				tau:   tau,
			}
		}
		return logics
	})
}

// secLogic embeds the Figure 5 state and adds the view-based clause-4 test.
type secLogic struct {
	wec   wecLogic
	board *tripleBoard
	tau   *adversary.Timed

	inv     word.Symbol
	tbuf    []sketch.Triple // publish's collection buffer, reused per round
	clause4 bool
}

// PreSend implements Line 02 of Figure 9 (same as Figure 5).
func (l *secLogic) PreSend(p *sched.Proc, inv word.Symbol) {
	l.inv = inv
	l.wec.PreSend(p, inv)
}

// PostRecv implements Line 05: the Figure 5 snapshot of INCS plus publishing
// the triple in M and snapshotting it.
func (l *secLogic) PostRecv(p *sched.Proc, resp adversary.Response) {
	l.wec.PostRecv(p, resp)
	if resp.View == nil {
		panic("monitor: SEC monitor requires a timed service")
	}
	l.tbuf = l.board.publish(p, sketch.Triple{
		ID:   resp.ID,
		Inv:  l.inv,
		Res:  resp.Sym,
		View: *resp.View,
	}, l.tbuf)
	triples := l.tbuf
	l.clause4 = false
	for _, tr := range triples {
		if tr.Inv.Op != spec.OpRead || tr.Res.Kind != word.Res {
			continue
		}
		v, ok := tr.Res.Val.(word.Int)
		if !ok {
			continue
		}
		if int(v) > l.tau.CountOp(tr.View, spec.OpInc) {
			l.clause4 = true
			break
		}
	}
}

// Decide implements Line 06 of Figure 9: the three Figure 5 cases, then the
// view-based clause-4 case, then YES.
func (l *secLogic) Decide(p *sched.Proc) Verdict {
	d := l.wec.Decide(p)
	if d == No {
		return No
	}
	if l.clause4 {
		return No
	}
	return Yes
}
