package monitor

import (
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/mem"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// NewWEC returns the algorithm of Figure 5, which weakly decides WEC_COUNT
// (Lemma 5.3): each process announces its inc invocations in the shared
// array INCS before sending them, snapshots INCS after every response, and
// reports NO when one of the weak-eventual-counter clauses is (currently)
// violated — permanently for the safety clauses (1)–(2) via the local flag,
// transiently for the convergence clause (3).
//
// kind selects the INCS array implementation (Section 6.2's snapshot-versus-
// collect ablation).
func NewWEC(kind adversary.ArrayKind) Monitor {
	return NewMonitor("wec-fig5/"+kindName(kind), func(n int) []Logic {
		incs := adversary.NewArray(kind, n)
		logics := make([]Logic, n)
		for i := range logics {
			logics[i] = &wecLogic{incs: incs}
		}
		return logics
	})
}

func kindName(kind adversary.ArrayKind) string {
	switch kind {
	case adversary.ArrayAADGMS:
		return "aadgms"
	case adversary.ArrayCollect:
		return "collect"
	default:
		return "atomic"
	}
}

// wecLogic is the per-process state of Figure 5.
type wecLogic struct {
	incs mem.Array[int]

	prevRead int64
	prevIncs int
	count    int
	flag     bool

	currRead int64
	currIncs int
	ownIncs  int
	isRead   bool
}

// PreSend implements Line 02 of Figure 5: announce inc invocations.
func (l *wecLogic) PreSend(p *sched.Proc, inv word.Symbol) {
	if inv.Op == spec.OpInc {
		l.count++
		l.incs.Write(p, p.ID, l.count)
	}
}

// PostRecv implements Line 05: snapshot INCS and record read responses.
func (l *wecLogic) PostRecv(p *sched.Proc, resp adversary.Response) {
	snap := l.incs.Snapshot(p)
	l.currIncs = 0
	for _, c := range snap {
		l.currIncs += c
	}
	l.ownIncs = snap[p.ID]
	l.isRead = resp.Sym.Op == spec.OpRead
	if l.isRead {
		l.currRead = int64(resp.Sym.Val.(word.Int))
	}
}

// Decide implements Line 06.
func (l *wecLogic) Decide(_ *sched.Proc) Verdict {
	defer func() {
		l.prevRead = l.currRead
		l.prevIncs = l.currIncs
	}()
	switch {
	case l.flag:
		return No
	case l.isRead && (l.currRead < int64(l.ownIncs) || l.currRead < l.prevRead):
		// Clause (1) or (2) violated: permanent. The isRead guard makes
		// explicit what Figure 5 leaves implicit — curr_read is only
		// meaningful once the process has received a read response.
		l.flag = true
		return No
	case l.currRead != int64(l.currIncs) || l.prevIncs < l.currIncs:
		// Clause (3) not yet witnessed: transient.
		return No
	default:
		return Yes
	}
}
