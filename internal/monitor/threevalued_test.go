package monitor

import (
	"testing"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/lang"
)

// TestThreeValuedSEC covers the Section 7 remark for the predictive side: a
// 3-valued PWD variant of the Figure 9 monitor reserves NO for
// prefix-determined safety violations and YES for rounds with conclusive
// positive information, reporting MAYBE otherwise. On words in SEC_COUNT no
// process ever reports NO; outside it, no process ever reports YES once the
// violation is determined — here, never.
func TestThreeValuedSEC(t *testing.T) {
	sec := lang.SECCount()
	for _, lb := range sec.Sources(testProcs, 23) {
		res, _ := runTimed(func(tau *adversary.Timed) Monitor {
			return ThreeValuedSEC(tau, adversary.ArrayAtomic)
		}, lb.New(), 23)
		yes, no, maybe := 0, 0, 0
		for p := range res.Verdicts {
			for _, d := range res.Verdicts[p] {
				switch d {
				case Yes:
					yes++
				case No:
					no++
				case Maybe:
					maybe++
				}
			}
		}
		if lb.In && no > 0 {
			t.Errorf("source %s: 3-valued SEC monitor reported NO on a word in the language", lb.Name)
		}
		if !lb.In && yes > 0 {
			t.Errorf("source %s: 3-valued SEC monitor reported YES on a word outside the language", lb.Name)
		}
		if yes+no+maybe == 0 {
			t.Errorf("source %s: no verdicts at all", lb.Name)
		}
	}
}
