package monitor

import (
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/sketch"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// NewECLed returns a best-effort monitor for the eventually consistent
// ledger EC_LED: processes share their observed operations on a board,
// report NO when the ordering clause (1) is violated on the shared
// (order-free) history, and report NO transiently when convergence lags —
// a get response that misses a record whose append was already shared at the
// process's previous round.
//
// Lemma 6.5 proves EC_LED ∉ PWD, so no monitor — this one included — can
// predictively weakly decide it. NewECLed exists to make that impossibility
// concrete: it is a sound, plausible candidate (it weakly catches every
// safety violation and flags divergence), and the adaptive attack of the
// experiment package drives exactly this monitor through an in-language word
// on which every process reports NO unboundedly often, with tight executions
// removing the sketch escape clause.
func NewECLed(kind adversary.ArrayKind) Monitor {
	return NewMonitor("ecled-candidate/"+kindName(kind), func(n int) []Logic {
		board := newTripleBoard(n, kind)
		logics := make([]Logic, n)
		for i := range logics {
			logics[i] = &ecledLogic{board: board}
		}
		return logics
	})
}

// ecledLogic is the per-process state of the candidate EC_LED monitor.
type ecledLogic struct {
	board *tripleBoard

	inv     word.Symbol
	count   int
	tbuf    []sketch.Triple // publish's collection buffer, reused per round
	flag    bool            // ordering clause violated: sticky NO
	verdict Verdict

	// prevAppends is the set of records whose append invocations were
	// visible on the board at the previous round; a get that misses one of
	// them is flagged as divergence (transient NO).
	prevAppends map[word.Rec]bool
}

// PreSend implements Line 02: nothing to announce before sending (appends
// become visible when their triple is published after the response).
func (l *ecledLogic) PreSend(_ *sched.Proc, inv word.Symbol) { l.inv = inv }

// PostRecv implements Line 05: publish the completed operation, snapshot the
// board, and evaluate the clauses.
func (l *ecledLogic) PostRecv(p *sched.Proc, resp adversary.Response) {
	id := resp.ID
	if id == (word.OpID{}) {
		id = word.OpID{Proc: p.ID, Idx: l.count}
	}
	l.count++
	l.tbuf = l.board.publish(p, sketch.Triple{ID: id, Inv: l.inv, Res: resp.Sym}, l.tbuf)
	triples := l.tbuf
	h := orderFreeWord(triples)

	if l.flag {
		l.verdict = No
		return
	}
	if check.ECLedgerSafety(h) != nil {
		l.flag = true
		l.verdict = No
		return
	}
	// Divergence test: if this operation was a get, it must contain every
	// record whose append was known a round ago.
	l.verdict = Yes
	if l.inv.Op == spec.OpGet {
		got := map[word.Rec]bool{}
		if seq, ok := resp.Sym.Val.(word.Seq); ok {
			for _, r := range seq {
				got[r] = true
			}
		}
		for r := range l.prevAppends {
			if !got[r] {
				l.verdict = No
				break
			}
		}
	}
	// Refresh the known-append set for the next round.
	known := map[word.Rec]bool{}
	for _, tr := range triples {
		if tr.Inv.Op == spec.OpAppend {
			if r, ok := tr.Inv.Val.(word.Rec); ok {
				known[r] = true
			}
		}
	}
	l.prevAppends = known
}

// Decide implements Line 06.
func (l *ecledLogic) Decide(*sched.Proc) Verdict {
	if l.verdict == 0 {
		return Yes
	}
	return l.verdict
}
