package monitor

import (
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/mem"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/word"
)

// Stabilize is the transformation of Figure 2 (Lemma 4.1): wrap a strong
// decider so that once any process reports NO, eventually every process
// reports NO forever. A shared FLAG register remembers the first NO.
func Stabilize(inner Monitor) Monitor {
	return NewMonitor("stabilize-fig2("+inner.Name()+")", func(n int) []Logic {
		flag := &mem.Register[bool]{}
		inners := inner.New(n)
		logics := make([]Logic, n)
		for i := range logics {
			logics[i] = &stabilizeLogic{inner: inners[i], flag: flag}
		}
		return logics
	})
}

type stabilizeLogic struct {
	inner Logic
	flag  *mem.Register[bool]
}

func (l *stabilizeLogic) PreSend(p *sched.Proc, inv word.Symbol) { l.inner.PreSend(p, inv) }
func (l *stabilizeLogic) PostRecv(p *sched.Proc, r adversary.Response) {
	l.inner.PostRecv(p, r)
}

func (l *stabilizeLogic) Decide(p *sched.Proc) Verdict {
	d := l.inner.Decide(p)
	if l.flag.Read(p) {
		return No
	}
	if d == No {
		l.flag.Write(p, true)
	}
	return d
}

// AmplifyWAD is the transformation of Figure 3 (Lemma 4.2): wrap a weak-all
// decider so that whenever the input is outside the language, every process
// reports NO infinitely often. Each process publishes how many NOs it has
// produced in the shared array C; a process reports NO exactly when some
// entry of C grew since its previous snapshot.
func AmplifyWAD(inner Monitor, kind adversary.ArrayKind) Monitor {
	return NewMonitor("amplify-wad-fig3("+inner.Name()+")", func(n int) []Logic {
		return counterLogics(inner.New(n), n, kind, false)
	})
}

// AmplifyWOD is the transformation of Figure 4 (Lemma 4.3): wrap a weak-one
// decider so that whenever the input is in the language, eventually every
// process reports YES forever. A process reports YES exactly when some entry
// of C did not change since its previous snapshot.
func AmplifyWOD(inner Monitor, kind adversary.ArrayKind) Monitor {
	return NewMonitor("amplify-wod-fig4("+inner.Name()+")", func(n int) []Logic {
		return counterLogics(inner.New(n), n, kind, true)
	})
}

func counterLogics(inners []Logic, n int, kind adversary.ArrayKind, wod bool) []Logic {
	c := adversary.NewArray(kind, n)
	logics := make([]Logic, n)
	for i := range logics {
		logics[i] = &counterLogic{inner: inners[i], c: c, prev: make([]int, n), wod: wod}
	}
	return logics
}

type counterLogic struct {
	inner Logic
	c     mem.Array[int]
	prev  []int
	wod   bool // Figure 4 semantics instead of Figure 3
}

func (l *counterLogic) PreSend(p *sched.Proc, inv word.Symbol) { l.inner.PreSend(p, inv) }
func (l *counterLogic) PostRecv(p *sched.Proc, r adversary.Response) {
	l.inner.PostRecv(p, r)
}

func (l *counterLogic) Decide(p *sched.Proc) Verdict {
	d := l.inner.Decide(p)
	if d == No {
		l.c.Write(p, p.ID, l.prev[p.ID]+1)
	}
	snap := l.c.Snapshot(p)
	defer copy(l.prev, snap)
	if l.wod {
		// Figure 4: YES when some entry stabilized.
		for j := range snap {
			if snap[j] == l.prev[j] {
				return Yes
			}
		}
		return No
	}
	// Figure 3: NO when some entry grew.
	for j := range snap {
		if snap[j] > l.prev[j] {
			return No
		}
	}
	return Yes
}
