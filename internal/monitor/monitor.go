// Package monitor implements the distributed monitors of the paper: the
// generic interaction loop of Figure 1, the stability transformations of
// Figures 2–4 (Section 4.2), the concrete deciders — Figure 5's weak decider
// for WEC_COUNT, Figure 8's predictive linearizability monitor V_O, Figure
// 9's predictive-weak decider for SEC_COUNT — the three-valued variants of
// Section 7, and baseline monitors used by the impossibility experiments.
//
// A monitor is a factory producing one Logic per process; the logics of one
// execution share wait-free read/write state (package mem) and are driven by
// the Runner through the Figure-1 loop against a Service (package adversary).
package monitor

import (
	"github.com/drv-go/drv/exp/trace"
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/word"
)

// Verdict is a value a process reports in Line 06; re-homed in the exported
// exp/trace package and aliased here.
type Verdict = trace.Verdict

const (
	// Yes reports the behaviour is (still) considered correct.
	Yes = trace.Yes
	// No reports a violation.
	No = trace.No
	// Maybe reports insufficient information (three-valued monitors, §7).
	Maybe = trace.Maybe
)

// Logic is the per-process monitor body: the blocks of Lines 02, 05 and 06
// of Figure 1. All shared-memory operations must be wait-free, which the mem
// primitives guarantee by construction.
type Logic interface {
	// PreSend is the Line 02 block: communicate before sending invocation v.
	PreSend(p *sched.Proc, inv word.Symbol)
	// PostRecv is the Line 05 block: communicate after receiving a response.
	PostRecv(p *sched.Proc, resp adversary.Response)
	// Decide is the Line 06 block: report one value.
	Decide(p *sched.Proc) Verdict
}

// Monitor builds the shared state and per-process logics for one execution.
type Monitor interface {
	// Name identifies the monitor in experiment reports.
	Name() string
	// New returns n logics sharing freshly allocated state.
	New(n int) []Logic
}

// monitorFunc adapts a name and factory function to the Monitor interface.
type monitorFunc struct {
	name string
	make func(n int) []Logic
}

func (m monitorFunc) Name() string      { return m.name }
func (m monitorFunc) New(n int) []Logic { return m.make(n) }

// NewMonitor wraps a factory function as a Monitor.
func NewMonitor(name string, make func(n int) []Logic) Monitor {
	return monitorFunc{name: name, make: make}
}
