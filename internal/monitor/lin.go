package monitor

import (
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/mem"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/sketch"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// tripleBoard is the shared array M of Figures 8 and 9: each process owns an
// append-only log of observed (invocation, response, view) triples and
// publishes its length through a shared counts array, so a snapshot of the
// counts plus the immutable log prefixes reconstructs everyone's sets.
type tripleBoard struct {
	counts mem.Array[int]
	logs   [][]sketch.Triple
}

func newTripleBoard(n int, kind adversary.ArrayKind) *tripleBoard {
	return &tripleBoard{
		counts: adversary.NewArray(kind, n),
		logs:   make([][]sketch.Triple, n),
	}
}

// publish appends the process's triple and makes it visible; then snapshots
// the board, returning every published triple (Figure 8, Line 05).
func (b *tripleBoard) publish(p *sched.Proc, tr sketch.Triple) []sketch.Triple {
	id := p.ID
	b.logs[id] = append(b.logs[id], tr)
	b.counts.Write(p, id, len(b.logs[id]))
	snap := b.counts.Snapshot(p)
	var out []sketch.Triple
	for j, c := range snap {
		out = append(out, b.logs[j][:c]...)
	}
	return out
}

// NewLin returns the algorithm V_O of Figure 8, which predictively strongly
// decides LIN_O for the sequential object obj (Theorem 6.2): each process
// publishes its (v, w, view) triples in M, snapshots M, builds the finite
// history h_i via Appendix B's construction and reports YES exactly when h_i
// is linearizable with respect to obj. tau must be the timed adversary the
// processes interact with (its announcement log resolves view contents);
// kind selects the implementation of M.
func NewLin(obj spec.Object, tau *adversary.Timed, kind adversary.ArrayKind) Monitor {
	return newPredictive("lin-fig8/"+obj.Name()+"/"+kindName(kind), tau, kind,
		func(h word.Word) bool { return check.Linearizable(obj, h) })
}

// NewSC is V_O with the sequential-consistency check: the same construction
// predictively strongly decides SC_O (Table 1 rows SC_REG, SC_LED).
func NewSC(obj spec.Object, tau *adversary.Timed, kind adversary.ArrayKind) Monitor {
	return newPredictive("sc-fig8/"+obj.Name()+"/"+kindName(kind), tau, kind,
		func(h word.Word) bool { return check.SeqConsistent(obj, h) })
}

func newPredictive(name string, tau *adversary.Timed, kind adversary.ArrayKind, accept func(word.Word) bool) Monitor {
	return NewMonitor(name, func(n int) []Logic {
		board := newTripleBoard(n, kind)
		logics := make([]Logic, n)
		for i := range logics {
			logics[i] = &predictiveLogic{n: n, board: board, tau: tau, accept: accept}
		}
		return logics
	})
}

// predictiveLogic is the per-process body of Figure 8.
type predictiveLogic struct {
	n      int
	board  *tripleBoard
	tau    *adversary.Timed
	accept func(word.Word) bool

	inv     word.Symbol
	verdict Verdict
}

// PreSend implements Line 02: "no communication is needed before sending".
func (l *predictiveLogic) PreSend(_ *sched.Proc, inv word.Symbol) {
	l.inv = inv
}

// PostRecv implements Line 05: publish the triple, snapshot M and build h_i.
func (l *predictiveLogic) PostRecv(p *sched.Proc, resp adversary.Response) {
	if resp.View == nil {
		panic("monitor: predictive monitor requires a timed service")
	}
	triples := l.board.publish(p, sketch.Triple{
		ID:   resp.ID,
		Inv:  l.inv,
		Res:  resp.Sym,
		View: *resp.View,
	})
	h, err := sketch.Build(l.n, triples, l.tau.InvAt)
	if err != nil {
		// Incomparable views (possible only with collect-backed timed
		// adversaries) leave the process without a usable history this
		// round; Section 6.2 notes the construction in [41] handles this at
		// the cost of extra local computation. Report NO conservatively? A
		// false NO would break predictive soundness, so report the previous
		// verdict's best guess: YES keeps soundness (missed detections are
		// retried next round with fresh views).
		l.verdict = Yes
		return
	}
	if l.accept(h) {
		l.verdict = Yes
	} else {
		l.verdict = No
	}
}

// Decide implements Line 06.
func (l *predictiveLogic) Decide(_ *sched.Proc) Verdict { return l.verdict }
