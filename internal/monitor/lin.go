package monitor

import (
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/mem"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/sketch"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// tripleBoard is the shared array M of Figures 8 and 9: each process owns an
// append-only log of observed (invocation, response, view) triples and
// publishes its length through a shared counts array, so a snapshot of the
// counts plus the immutable log prefixes reconstructs everyone's sets.
type tripleBoard struct {
	counts mem.Array[int]
	logs   [][]sketch.Triple
}

func newTripleBoard(n int, kind adversary.ArrayKind) *tripleBoard {
	return &tripleBoard{
		counts: adversary.NewArray(kind, n),
		logs:   make([][]sketch.Triple, n),
	}
}

// publish appends the process's triple and makes it visible; then snapshots
// the board, returning every published triple (Figure 8, Line 05). The
// triples are collected into buf, which each logic retains and hands back
// every round, so the per-round collection stops allocating once the buffer
// has grown to the execution's size.
func (b *tripleBoard) publish(p *sched.Proc, tr sketch.Triple, buf []sketch.Triple) []sketch.Triple {
	id := p.ID
	b.logs[id] = append(b.logs[id], tr)
	b.counts.Write(p, id, len(b.logs[id]))
	snap := b.counts.Snapshot(p)
	out := buf[:0]
	for j, c := range snap {
		out = append(out, b.logs[j][:c]...)
	}
	return out
}

// NewLin returns the algorithm V_O of Figure 8, which predictively strongly
// decides LIN_O for the sequential object obj (Theorem 6.2): each process
// publishes its (v, w, view) triples in M, snapshots M, builds the finite
// history h_i via Appendix B's construction and reports YES exactly when h_i
// is linearizable with respect to obj. tau must be the timed adversary the
// processes interact with (its announcement log resolves view contents);
// kind selects the implementation of M.
func NewLin(obj spec.Object, tau *adversary.Timed, kind adversary.ArrayKind) Monitor {
	return newPredictive("lin-fig8/"+obj.Name()+"/"+kindName(kind), tau, kind, obj, true, false)
}

// NewSC is V_O with the sequential-consistency check: the same construction
// predictively strongly decides SC_O (Table 1 rows SC_REG, SC_LED).
func NewSC(obj spec.Object, tau *adversary.Timed, kind adversary.ArrayKind) Monitor {
	return newPredictive("sc-fig8/"+obj.Name()+"/"+kindName(kind), tau, kind, obj, false, false)
}

// NewLinScratch is NewLin with the incremental verdict checker disabled:
// every round re-runs the witness search from scratch on the full sketch
// history. The monitor's name and verdict stream are byte-identical to
// NewLin's — it exists as the differential reference (and the
// Options.Unincremental escape hatch) while the incremental checker is new.
func NewLinScratch(obj spec.Object, tau *adversary.Timed, kind adversary.ArrayKind) Monitor {
	return newPredictive("lin-fig8/"+obj.Name()+"/"+kindName(kind), tau, kind, obj, true, true)
}

// NewSCScratch is the from-scratch reference form of NewSC.
func NewSCScratch(obj spec.Object, tau *adversary.Timed, kind adversary.ArrayKind) Monitor {
	return newPredictive("sc-fig8/"+obj.Name()+"/"+kindName(kind), tau, kind, obj, false, true)
}

func newPredictive(name string, tau *adversary.Timed, kind adversary.ArrayKind, obj spec.Object, realTime, scratch bool) Monitor {
	return NewMonitor(name, func(n int) []Logic {
		board := newTripleBoard(n, kind)
		logics := make([]Logic, n)
		for i := range logics {
			logics[i] = &predictiveLogic{n: n, board: board, tau: tau, obj: obj, realTime: realTime, scratch: scratch}
		}
		return logics
	})
}

// poolable is implemented by logics that can borrow per-run scratch state
// from a session-owned pool; Session.Run attaches its pool after Monitor.New.
type poolable interface {
	attachPool(*check.Pool)
}

// predictiveLogic is the per-process body of Figure 8.
type predictiveLogic struct {
	n        int
	board    *tripleBoard
	tau      *adversary.Timed
	obj      spec.Object
	realTime bool
	scratch  bool

	pool *check.Pool        // session pool, when running on a pooled session
	chk  *check.Incremental // this process's checker, borrowed lazily

	tbuf    []sketch.Triple // publish's collection buffer, reused per round
	builder sketch.Builder  // sketch scratch, reused per round

	inv     word.Symbol
	verdict Verdict
}

// attachPool hands the logic the running session's checker pool. Logics are
// built fresh per run, so the nil chk makes the next accept borrow a reset
// (likely recycled) checker from the pool.
func (l *predictiveLogic) attachPool(p *check.Pool) {
	l.pool = p
	l.chk = nil
}

// accept decides the consistency condition on one sketch history. The
// incremental path keeps a per-process checker alive across the verdict
// stream: successive sketch histories usually extend each other, so each
// round costs only the new suffix; non-extensions (views can reorder the
// reconstructed past) reset transparently. The scratch path re-runs the
// witness search whole each round — the two paths decide identically
// (pinned by the check package's differential tests), so verdict streams
// and report bytes do not depend on which one ran.
func (l *predictiveLogic) accept(h word.Word) bool {
	if l.scratch {
		if l.realTime {
			return check.Linearizable(l.obj, h)
		}
		return check.SeqConsistent(l.obj, h)
	}
	if l.chk == nil {
		if l.pool != nil {
			l.chk = l.pool.Get(l.obj, l.realTime, l.n)
		} else {
			l.chk = check.NewIncremental(l.obj, l.realTime, l.n)
		}
	}
	return l.chk.CheckExtending(h)
}

// PreSend implements Line 02: "no communication is needed before sending".
func (l *predictiveLogic) PreSend(_ *sched.Proc, inv word.Symbol) {
	l.inv = inv
}

// PostRecv implements Line 05: publish the triple, snapshot M and build h_i.
func (l *predictiveLogic) PostRecv(p *sched.Proc, resp adversary.Response) {
	if resp.View == nil {
		panic("monitor: predictive monitor requires a timed service")
	}
	l.tbuf = l.board.publish(p, sketch.Triple{
		ID:   resp.ID,
		Inv:  l.inv,
		Res:  resp.Sym,
		View: *resp.View,
	}, l.tbuf)
	h, err := l.builder.BuildSketch(l.n, l.tbuf, l.tau.InvAt)
	if err != nil {
		// Incomparable views (possible only with collect-backed timed
		// adversaries) leave the process without a usable history this
		// round; Section 6.2 notes the construction in [41] handles this at
		// the cost of extra local computation. Report NO conservatively? A
		// false NO would break predictive soundness, so report the previous
		// verdict's best guess: YES keeps soundness (missed detections are
		// retried next round with fresh views).
		l.verdict = Yes
		return
	}
	if l.accept(h) {
		l.verdict = Yes
	} else {
		l.verdict = No
	}
}

// Decide implements Line 06.
func (l *predictiveLogic) Decide(_ *sched.Proc) Verdict { return l.verdict }
