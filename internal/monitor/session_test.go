package monitor_test

import (
	"fmt"
	"testing"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/sched"
)

// sessionCfg builds a monitored-run config over the WEC_COUNT "exact" source:
// a crash schedule mid-run leaves gated processes behind at halt time, which
// is exactly the state a pooled runtime must recover from.
func sessionCfg(n int, seed int64, crash map[int][]int, steps int) monitor.Config {
	src := lang.WECCount().Sources(n, seed)[0]
	adv := adversary.NewA(n, src.New())
	return monitor.Config{
		N:       n,
		Monitor: monitor.NewWEC(adversary.ArrayAtomic),
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			return adv, []int{adv.Register(rt)}
		},
		Policy: func(aux []int) sched.Policy {
			return sched.Biased(seed, aux[0], 0.5)
		},
		MaxSteps: steps,
		Crash:    crash,
	}
}

// fingerprint flattens everything a differential consumer reads from a
// result: history, verdict streams, the per-verdict step/pulled/history
// indices and the step count.
func fingerprint(res *monitor.Result) string {
	s := fmt.Sprintf("steps=%d hist=%s", res.Steps, res.History)
	for p := range res.Verdicts {
		s += fmt.Sprintf("|p%d:", p)
		for k, v := range res.Verdicts[p] {
			s += fmt.Sprintf(" %s@%d/%d/%d", v, res.StepAt[p][k], res.PulledAt[p][k], res.HistAt[p][k])
		}
	}
	return s
}

// TestSessionReuseMatchesRun drives the same seeds through fresh one-shot
// runs and through a single 100×-reused session, crashes and all, and
// requires identical histories, verdicts and step counts.
func TestSessionReuseMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("session reuse sweep is a tier-2 test")
	}
	const n = 3
	crash := map[int][]int{40: {1}}
	want := make([]string, 10)
	for seed := range want {
		want[seed] = fingerprint(monitor.Run(sessionCfg(n, int64(seed+1), crash, 400)))
	}

	s := monitor.NewSession()
	defer s.Close()
	for i := 0; i < 100; i++ {
		seed := i%len(want) + 1
		got := fingerprint(s.Run(sessionCfg(n, int64(seed), crash, 400)))
		if got != want[seed-1] {
			t.Fatalf("reuse %d (seed %d) diverged:\n got %s\nwant %s", i, seed, got, want[seed-1])
		}
	}
}

// TestSessionAcrossProcessCounts interleaves runs of different sizes on one
// session; each must match its fresh-run fingerprint and report exactly n
// processes.
func TestSessionAcrossProcessCounts(t *testing.T) {
	s := monitor.NewSession()
	defer s.Close()
	for _, n := range []int{4, 2, 3, 2, 4} {
		want := monitor.Run(sessionCfg(n, 7, nil, 300))
		got := s.Run(sessionCfg(n, 7, nil, 300))
		if got.Procs() != n {
			t.Fatalf("n=%d: pooled result reports %d processes", n, got.Procs())
		}
		if fingerprint(got) != fingerprint(want) {
			t.Fatalf("n=%d: pooled run diverged from fresh run", n)
		}
	}
}
