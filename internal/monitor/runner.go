package monitor

import (
	"github.com/drv-go/drv/exp/trace"
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/sched"
)

// Config describes one monitored execution.
type Config struct {
	// N is the number of monitor processes.
	N int
	// Monitor under test.
	Monitor Monitor
	// NewService builds the service (adversary) on the runtime and returns
	// it along with the auxiliary actor IDs it registered (cursor first).
	NewService func(rt *sched.Runtime) (adversary.Service, []int)
	// Policy builds the scheduling policy, given the service's auxiliary
	// actor IDs. Nil defaults to a cursor-prioritizing round-robin.
	Policy func(aux []int) sched.Policy
	// Gate, when non-nil, is called at the top of every loop iteration
	// (between Line 01 and Line 02); tight-execution drivers use it to
	// control exactly when a process starts its send block.
	Gate func(p *sched.Proc, round int)
	// MaxSteps bounds the execution; the run also ends when the service's
	// behaviour script is exhausted and all processes are parked or exited.
	MaxSteps int
	// Crash, when non-nil, maps a step count to process IDs to crash at that
	// step. Checked between scheduler steps.
	Crash map[int][]int
	// Drive, when non-nil, replaces the default stepping loop: it receives
	// the runtime after processes are spawned and must call rt.Step itself.
	// Proof-construction drivers (the indistinguishability experiments of
	// Section 5) use it to place every step explicitly. MaxSteps and Crash
	// are ignored when Drive is set.
	Drive func(rt *sched.Runtime)
}

// Result is the outcome of a monitored execution; re-homed in the exported
// exp/trace package (with its accessors and sketch reconstruction) and
// aliased here.
type Result = trace.Result

// Run executes the monitor against the service and returns the result. It
// dedicates a one-shot Session (and runtime) to the execution; workloads
// running many executions should hold a Session and reuse it instead.
func Run(cfg Config) *Result {
	s := NewSession()
	defer s.Close()
	return s.Run(cfg)
}
