package monitor

import (
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/sketch"
	"github.com/drv-go/drv/internal/word"
)

// Config describes one monitored execution.
type Config struct {
	// N is the number of monitor processes.
	N int
	// Monitor under test.
	Monitor Monitor
	// NewService builds the service (adversary) on the runtime and returns
	// it along with the auxiliary actor IDs it registered (cursor first).
	NewService func(rt *sched.Runtime) (adversary.Service, []int)
	// Policy builds the scheduling policy, given the service's auxiliary
	// actor IDs. Nil defaults to a cursor-prioritizing round-robin.
	Policy func(aux []int) sched.Policy
	// Gate, when non-nil, is called at the top of every loop iteration
	// (between Line 01 and Line 02); tight-execution drivers use it to
	// control exactly when a process starts its send block.
	Gate func(p *sched.Proc, round int)
	// MaxSteps bounds the execution; the run also ends when the service's
	// behaviour script is exhausted and all processes are parked or exited.
	MaxSteps int
	// Crash, when non-nil, maps a step count to process IDs to crash at that
	// step. Checked between scheduler steps.
	Crash map[int][]int
	// Drive, when non-nil, replaces the default stepping loop: it receives
	// the runtime after processes are spawned and must call rt.Step itself.
	// Proof-construction drivers (the indistinguishability experiments of
	// Section 5) use it to place every step explicitly. MaxSteps and Crash
	// are ignored when Drive is set.
	Drive func(rt *sched.Runtime)
}

// Result is the outcome of a monitored execution.
type Result struct {
	// History is the input word x(E): all send/receive events in real-time
	// order as recorded by the service.
	History word.Word
	// Verdicts holds each process's reported values in report order.
	Verdicts [][]Verdict
	// Responses holds each process's received responses (with views when the
	// service is timed), for sketch reconstruction.
	Responses [][]adversary.Response
	// Invs holds each process's sent invocations, aligned with Responses.
	Invs [][]word.Symbol
	// StepAt records the global scheduler step at which each verdict was
	// reported, aligned with Verdicts.
	StepAt [][]int
	// PulledAt records how many source symbols the adversary had consumed
	// when each verdict was reported (0 when the service does not track it).
	PulledAt [][]int
	// HistAt records the length of the exhibited history x(E) when each
	// verdict was reported, aligned with Verdicts (0 when the service does
	// not expose HistLen). History[:HistAt[p][k]] is exactly the input-word
	// prefix process p's k-th verdict judges — the comparison surface that
	// lets offline oracles be evaluated verdict by verdict.
	HistAt [][]int
	// Steps is the number of scheduler steps taken.
	Steps int
	// Drained reports that the run ended because every actor parked or
	// exited (the service's behaviour script or workload was exhausted)
	// rather than by hitting the step bound. Offline oracles that reason
	// about the *final* verdicts ("the last check saw every operation") are
	// only meaningful on drained runs — a step-bound cutoff can land between
	// a response and the verdict that judges it. Always false under a custom
	// Drive loop, which owns its own termination.
	Drained bool
}

// Procs returns the number of monitor processes; part of core.Stats.
func (r *Result) Procs() int { return len(r.Verdicts) }

// NOCount returns how many times process p reported NO.
func (r *Result) NOCount(p int) int {
	n := 0
	for _, v := range r.Verdicts[p] {
		if v == No {
			n++
		}
	}
	return n
}

// TotalNO returns the number of NO reports across all processes.
func (r *Result) TotalNO() int {
	t := 0
	for p := range r.Verdicts {
		t += r.NOCount(p)
	}
	return t
}

// NOInTail reports whether process p reported NO among its last window
// reports. Finite-run proxy for "reports NO infinitely often".
func (r *Result) NOInTail(p, window int) bool {
	v := r.Verdicts[p]
	start := len(v) - window
	if start < 0 {
		start = 0
	}
	for _, d := range v[start:] {
		if d == No {
			return true
		}
	}
	return false
}

// Run executes the monitor against the service and returns the result. It
// dedicates a one-shot Session (and runtime) to the execution; workloads
// running many executions should hold a Session and reuse it instead.
func Run(cfg Config) *Result {
	s := NewSession()
	defer s.Close()
	return s.Run(cfg)
}

// Triples reassembles the sketch triples observed by process p (or by all
// processes when p < 0) from a run against a timed service. Responses
// without views (untimed services) are skipped.
func (r *Result) Triples(p int) []sketch.Triple {
	var out []sketch.Triple
	for i := range r.Responses {
		if p >= 0 && i != p {
			continue
		}
		for k, resp := range r.Responses[i] {
			if resp.View == nil {
				continue
			}
			out = append(out, sketch.Triple{
				ID:   resp.ID,
				Inv:  r.Invs[i][k],
				Res:  resp.Sym,
				View: *resp.View,
			})
		}
	}
	return out
}

// Sketch builds the global sketch x~(E) from all processes' observations of
// a run against the timed adversary tau.
func (r *Result) Sketch(n int, tau *adversary.Timed) (word.Word, error) {
	return sketch.Build(n, r.Triples(-1), tau.InvAt)
}
