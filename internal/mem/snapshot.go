package mem

import (
	"fmt"

	"github.com/drv-go/drv/internal/sched"
)

// SnapshotArray is the wait-free atomic snapshot of Afek, Attiya, Dolev,
// Gafni, Merritt and Shavit [1], built from single-writer multi-reader
// read/write registers — the construction the paper invokes when it says
// snapshots "can be read/write wait-free implemented". Cell i may be written
// only by process i (the single-writer discipline all of the paper's
// algorithms follow: INCS[i], M[i], C[i]).
//
// Each cell stores (value, sequence number, embedded view). An update first
// performs a scan and embeds the result; a scan performs repeated double
// collects, returning a clean double collect directly, or borrowing the
// embedded view of a process observed to move twice — that view is a valid
// snapshot taken within the scan's interval, which is what makes the
// operation linearizable.
type SnapshotArray[T any] struct {
	cells []snapCell[T]
	// initView is the shared all-init view every cell embeds after a Reset;
	// cells replace it with freshly scanned views on their first update, so
	// sharing (and reusing it across Resets) is safe.
	initView []T
}

type snapCell[T any] struct {
	val  T
	seq  uint64
	view []T
}

// NewSnapshotArray returns an n-cell AADGMS snapshot object, each cell
// holding init.
func NewSnapshotArray[T any](n int, init T) *SnapshotArray[T] {
	a := &SnapshotArray[T]{}
	a.Reset(n, init)
	return a
}

// Reset implements Array: n cells holding init with zeroed sequence numbers,
// reusing the backing storage where capacity allows.
func (a *SnapshotArray[T]) Reset(n int, init T) {
	if cap(a.cells) >= n {
		a.cells = a.cells[:n]
	} else {
		a.cells = make([]snapCell[T], n)
	}
	if cap(a.initView) >= n {
		a.initView = a.initView[:n]
	} else {
		a.initView = make([]T, n)
	}
	for i := range a.initView {
		a.initView[i] = init
	}
	for i := range a.cells {
		a.cells[i] = snapCell[T]{val: init, view: a.initView}
	}
}

// Len implements Array.
func (a *SnapshotArray[T]) Len() int { return len(a.cells) }

// Read implements Array: a plain read of the cell's current value; one step.
func (a *SnapshotArray[T]) Read(p *sched.Proc, i int) T {
	p.Pause()
	return a.cells[i].val
}

// Write implements Array as an AADGMS update: an embedded scan followed by a
// single register write of (value, seq+1, view). Only process i may write
// cell i.
func (a *SnapshotArray[T]) Write(p *sched.Proc, i int, v T) {
	if p.ID != i {
		panic(fmt.Sprintf("mem: single-writer snapshot cell %d written by process %d", i, p.ID))
	}
	view := a.Snapshot(p)
	p.Pause() // the register write itself
	a.cells[i] = snapCell[T]{val: v, seq: a.cells[i].seq + 1, view: view}
}

// Snapshot implements Array as an AADGMS scan. Wait-free: at most n+1 double
// collects are needed, since each retry is caused by a distinct mover and a
// second move by the same process yields a borrowable view.
func (a *SnapshotArray[T]) Snapshot(p *sched.Proc) []T {
	n := len(a.cells)
	moved := make(map[int]uint64, n) // process -> seq at first observed move
	first := a.collect(p)
	for {
		second := a.collect(p)
		clean := true
		for j := 0; j < n; j++ {
			if first[j].seq != second[j].seq {
				clean = false
				if prev, ok := moved[j]; ok && prev != second[j].seq {
					// j moved twice during this scan: its embedded view was
					// obtained inside our interval.
					out := make([]T, n)
					copy(out, second[j].view)
					return out
				}
				moved[j] = second[j].seq
			}
		}
		if clean {
			out := make([]T, n)
			for j := 0; j < n; j++ {
				out[j] = second[j].val
			}
			return out
		}
		first = second
	}
}

// collect reads all cells one by one, one step each.
func (a *SnapshotArray[T]) collect(p *sched.Proc) []snapCell[T] {
	out := make([]snapCell[T], len(a.cells))
	for i := range a.cells {
		p.Pause()
		out[i] = a.cells[i]
	}
	return out
}
