package mem

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

func TestRegisterReadWrite(t *testing.T) {
	rt := sched.New(2, sched.RoundRobin())
	var r Register[int]
	got := -1
	rt.Spawn(0, func(p *sched.Proc) {
		r.Write(p, 42)
	})
	rt.Spawn(1, func(p *sched.Proc) {
		for r.Read(p) != 42 {
		}
		got = 42
	})
	defer rt.Stop()
	rt.Run(100)
	if got != 42 {
		t.Error("reader never observed the write")
	}
}

// historyRecorder accumulates a concurrent history while the runtime runs.
// Only one goroutine executes at a time, so plain appends are race-free.
type historyRecorder struct {
	w word.Word
}

func (h *historyRecorder) inv(proc int, op string, arg word.Value) {
	h.w = append(h.w, word.NewInv(proc, op, arg))
}

func (h *historyRecorder) res(proc int, op string, ret word.Value) {
	h.w = append(h.w, word.NewRes(proc, op, ret))
}

func encodeVec(vals []int64) word.Seq {
	s := make(word.Seq, len(vals))
	for i, v := range vals {
		s[i] = word.Rec(fmt.Sprintf("%d", v))
	}
	return s
}

// runSnapshotWorkload drives n processes, each alternating updates of its own
// cell with scans, against the given array, and returns the recorded history.
func runSnapshotWorkload(t *testing.T, arr Array[int64], n, roundsPerProc int, policy sched.Policy) word.Word {
	t.Helper()
	rt := sched.New(n, policy)
	rec := &historyRecorder{}
	for i := 0; i < n; i++ {
		i := i
		rt.Spawn(i, func(p *sched.Proc) {
			for r := 1; r <= roundsPerProc; r++ {
				upd := spec.OpUpd(i)
				v := int64(10*i + r)
				rec.inv(i, upd, word.Int(v))
				arr.Write(p, i, v)
				rec.res(i, upd, word.Unit{})

				rec.inv(i, spec.OpScan, word.Unit{})
				snap := arr.Snapshot(p)
				rec.res(i, spec.OpScan, encodeVec(snap))
			}
		})
	}
	defer rt.Stop()
	rt.Run(1_000_000)
	return rec.w
}

func TestAtomicArraySnapshotLinearizable(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		arr := NewAtomicArray[int64](3, 0)
		w := runSnapshotWorkload(t, arr, 3, 3, sched.Random(seed))
		if !check.Linearizable(spec.Vector(3), w) {
			t.Fatalf("seed %d: atomic array produced non-linearizable history:\n%v", seed, w)
		}
	}
}

func TestAADGMSSnapshotLinearizable(t *testing.T) {
	// The protocol snapshot, built only from single-writer reads and writes,
	// must be indistinguishable from an atomic one: every recorded history
	// linearizes against the vector specification.
	for seed := int64(0); seed < 15; seed++ {
		arr := NewSnapshotArray[int64](3, 0)
		w := runSnapshotWorkload(t, arr, 3, 2, sched.Random(seed))
		if !check.Linearizable(spec.Vector(3), w) {
			t.Fatalf("seed %d: AADGMS produced non-linearizable history:\n%v", seed, w)
		}
	}
}

func TestAADGMSSingleWriterEnforced(t *testing.T) {
	rt := sched.New(2, sched.RoundRobin())
	arr := NewSnapshotArray[int64](2, 0)
	panicked := false
	rt.Spawn(0, func(p *sched.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true // swallow: the test asserts detection
			}
		}()
		arr.Write(p, 1, 5) // cell 1 from process 0: discipline violation
	})
	defer rt.Stop()
	rt.Run(100)
	if !panicked {
		t.Error("single-writer violation not detected")
	}
}

func TestCollectAnomaly(t *testing.T) {
	// The scripted interleaving where a collect returns (0,1) even though
	// cell 0 was written before cell 1 by the same process — a state no
	// atomic snapshot may return. This is the concrete gap between Snapshot
	// and Collect that Section 6.2's remark is about.
	arr := NewCollectArray[int64](2, 0)
	rec := &historyRecorder{}
	// Steps per process: one prologue step before the first memory access.
	script := []int{
		0,    // p0 prologue (parks before reading cell 0)
		1,    // p1 prologue (parks before writing cell 0)
		0,    // p0 reads cell 0 = 0
		1,    // p1 writes cell 0 = 1
		1,    // p1 writes cell 1 = 1
		0, 0, // p0 reads cell 1 = 1, finishes
	}
	rt := sched.New(2, sched.Script(script, sched.RoundRobin()))
	rt.Spawn(0, func(p *sched.Proc) {
		rec.inv(0, spec.OpScan, word.Unit{})
		snap := arr.Snapshot(p)
		rec.res(0, spec.OpScan, encodeVec(snap))
	})
	rt.Spawn(1, func(p *sched.Proc) {
		rec.inv(1, spec.OpUpd(0), word.Int(1))
		arr.Write(p, 0, 1)
		rec.res(1, spec.OpUpd(0), word.Unit{})
		rec.inv(1, spec.OpUpd(1), word.Int(1))
		arr.Write(p, 1, 1)
		rec.res(1, spec.OpUpd(1), word.Unit{})
	})
	defer rt.Stop()
	rt.Run(len(script) + 5)
	if check.Linearizable(spec.Vector(2), rec.w) {
		t.Fatalf("collect should have produced a non-linearizable history, got:\n%v", rec.w)
	}
}

func TestSnapshotArrayReadsOwnWrites(t *testing.T) {
	rt := sched.New(1, sched.RoundRobin())
	arr := NewSnapshotArray[int64](1, 0)
	var got int64
	rt.Spawn(0, func(p *sched.Proc) {
		arr.Write(p, 0, 9)
		got = arr.Read(p, 0)
	})
	defer rt.Stop()
	rt.Run(100)
	if got != 9 {
		t.Errorf("Read = %d, want 9", got)
	}
}

func TestTASFirstWins(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rt := sched.New(3, sched.Random(seed))
		var tas TAS
		winners := 0
		for i := 0; i < 3; i++ {
			rt.Spawn(i, func(p *sched.Proc) {
				if !tas.TestAndSet(p) {
					winners++
				}
			})
		}
		rt.Run(100)
		rt.Stop()
		if winners != 1 {
			t.Errorf("seed %d: %d winners, want exactly 1", seed, winners)
		}
	}
}

func TestConsensusAgreementValidity(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rt := sched.New(4, sched.Random(seed))
		cons := NewConsensus()
		decisions := make([]int64, 4)
		for i := 0; i < 4; i++ {
			i := i
			rt.Spawn(i, func(p *sched.Proc) {
				decisions[i] = cons.Propose(p, int64(100+i))
			})
		}
		rt.Run(1000)
		rt.Stop()
		first := decisions[0]
		for i, d := range decisions {
			if d != first {
				t.Fatalf("seed %d: disagreement %v", seed, decisions)
			}
			if d < 100 || d > 103 {
				t.Fatalf("seed %d: decision %d of proc %d not a proposal", seed, d, i)
			}
		}
	}
}

func TestConsensusToleratesCrashes(t *testing.T) {
	// Wait-freedom: survivors decide even when all but one process crashes
	// before proposing.
	rt := sched.New(3, sched.RoundRobin())
	cons := NewConsensus()
	var decided int64
	rt.Spawn(0, func(p *sched.Proc) {
		decided = cons.Propose(p, 7)
	})
	rt.Spawn(1, func(p *sched.Proc) { p.Await(func() bool { return false }) })
	rt.Spawn(2, func(p *sched.Proc) { p.Await(func() bool { return false }) })
	rt.Crash(1)
	rt.Crash(2)
	defer rt.Stop()
	rt.Run(100)
	if decided != 7 {
		t.Errorf("survivor decided %d, want 7", decided)
	}
}

func TestRandomSnapshotStress(t *testing.T) {
	// Property-style stress: random schedules, random op mixes, all three
	// array implementations; atomic and AADGMS must always linearize.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		seed := rng.Int63()
		for _, mk := range []struct {
			name string
			arr  func() Array[int64]
		}{
			{"atomic", func() Array[int64] { return NewAtomicArray[int64](2, 0) }},
			{"aadgms", func() Array[int64] { return NewSnapshotArray[int64](2, 0) }},
		} {
			w := runSnapshotWorkload(t, mk.arr(), 2, 3, sched.Random(seed))
			if !check.Linearizable(spec.Vector(2), w) {
				t.Fatalf("%s seed %d: non-linearizable:\n%v", mk.name, seed, w)
			}
		}
	}
}
