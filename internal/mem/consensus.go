package mem

import "github.com/drv-go/drv/internal/sched"

// TAS is an atomic test-and-set cell, consensus number 2.
type TAS struct {
	set bool
}

// TestAndSet atomically sets the cell and returns its previous value; one
// step. The first caller observes false.
func (t *TAS) TestAndSet(p *sched.Proc) bool {
	p.Pause()
	old := t.set
	t.set = true
	return old
}

// Set reads the cell without modifying it; one step.
func (t *TAS) Set(p *sched.Proc) bool {
	p.Pause()
	return t.set
}

// CAS is an atomic compare-and-swap cell over int64, consensus number ∞. Its
// presence in the substrate backs the paper's remark that the impossibility
// results "hold under operations with arbitrarily high consensus number
// [30]" — the experiment suite runs monitors that use CAS-based consensus and
// shows they fail all the same, because the obstruction is real-time
// indistinguishability, not consensus power.
type CAS struct {
	v int64
}

// CompareAndSwap atomically replaces the value with next when it equals old,
// reporting success; one step.
func (c *CAS) CompareAndSwap(p *sched.Proc, old, next int64) bool {
	p.Pause()
	if c.v != old {
		return false
	}
	c.v = next
	return true
}

// Load returns the current value; one step.
func (c *CAS) Load(p *sched.Proc) int64 {
	p.Pause()
	return c.v
}

// Store unconditionally writes the value; one step.
func (c *CAS) Store(p *sched.Proc, v int64) {
	p.Pause()
	c.v = v
}

// consEmpty is the sentinel marking an undecided consensus cell; proposals
// must not use it.
const consEmpty = int64(-1) << 62

// Consensus is a single-shot wait-free consensus object built from CAS:
// every process proposes a value and all decide the first installed proposal.
// Available to monitor implementations to demonstrate that even unbounded
// consensus power does not help against the adversary A (Theorem 5.2 applies
// regardless of base-primitive power).
type Consensus struct {
	cell CAS
}

// NewConsensus returns an undecided consensus object.
func NewConsensus() *Consensus {
	c := &Consensus{}
	c.cell.v = consEmpty
	return c
}

// Propose submits v and returns the decided value; wait-free, two steps.
func (c *Consensus) Propose(p *sched.Proc, v int64) int64 {
	if v == consEmpty {
		panic("mem: consensus proposal collides with the empty sentinel")
	}
	c.cell.CompareAndSwap(p, consEmpty, v)
	return c.cell.Load(p)
}
