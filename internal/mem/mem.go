// Package mem is the shared-memory substrate of the computation model
// (Section 3): atomic read/write registers and arrays accessed one scheduler
// step per primitive operation, an atomic snapshot (the paper's default,
// implementable wait-free from read/write registers [1]), the actual
// AADGMS wait-free snapshot protocol built from single-writer registers, the
// weaker collect operation discussed in Section 6.2, and test&set /
// compare&swap cells used to exercise the claim that the impossibility
// results hold under primitives of arbitrarily high consensus number.
//
// Every exported operation consumes scheduler steps via the calling process's
// Proc handle, so asynchrony between operations is entirely under the
// scheduling policy's control.
package mem

import (
	"github.com/drv-go/drv/internal/sched"
)

// Register is an atomic read/write register. The zero value holds the zero
// value of T.
type Register[T any] struct {
	v T
}

// Read returns the register's value; one atomic step.
func (r *Register[T]) Read(p *sched.Proc) T {
	p.Pause()
	return r.v
}

// Write stores v; one atomic step.
func (r *Register[T]) Write(p *sched.Proc, v T) {
	p.Pause()
	r.v = v
}

// Array is a shared array of n cells supporting reads, writes and a snapshot
// that returns all cells. The three implementations differ in the snapshot's
// guarantees and cost:
//
//   - AtomicArray: snapshot is one atomic step (the model's primitive).
//   - SnapshotArray: the AADGMS protocol — wait-free and linearizable, built
//     only from reads and writes of single-writer registers.
//   - CollectArray: snapshot is a collect — n independent reads, not atomic.
//
// Monitors are written against this interface so the Section 6.2
// snapshot-versus-collect trade-off is a drop-in ablation.
type Array[T any] interface {
	// Len returns the number of cells.
	Len() int
	// Read returns cell i; at least one step.
	Read(p *sched.Proc, i int) T
	// Write stores v into cell i; at least one step. For SnapshotArray the
	// writer must own the cell (single-writer discipline).
	Write(p *sched.Proc, i int, v T)
	// Snapshot returns a copy of all cells.
	Snapshot(p *sched.Proc) []T
	// Reset restores the array to n cells all holding init, reusing the
	// backing storage where capacity allows — the pooled-lifecycle hook that
	// lets a system under test be re-deployed without reallocating its
	// substrate.
	Reset(n int, init T)
}

// AtomicArray implements Array with a one-step atomic snapshot.
type AtomicArray[T any] struct {
	cells []T
}

// NewAtomicArray returns an n-cell atomic array, each cell holding init.
func NewAtomicArray[T any](n int, init T) *AtomicArray[T] {
	a := &AtomicArray[T]{}
	a.Reset(n, init)
	return a
}

// Reset implements Array.
func (a *AtomicArray[T]) Reset(n int, init T) {
	if cap(a.cells) >= n {
		a.cells = a.cells[:n]
	} else {
		a.cells = make([]T, n)
	}
	for i := range a.cells {
		a.cells[i] = init
	}
}

// Len implements Array.
func (a *AtomicArray[T]) Len() int { return len(a.cells) }

// Read implements Array; one step.
func (a *AtomicArray[T]) Read(p *sched.Proc, i int) T {
	p.Pause()
	return a.cells[i]
}

// Write implements Array; one step.
func (a *AtomicArray[T]) Write(p *sched.Proc, i int, v T) {
	p.Pause()
	a.cells[i] = v
}

// Snapshot implements Array; one atomic step.
func (a *AtomicArray[T]) Snapshot(p *sched.Proc) []T {
	p.Pause()
	out := make([]T, len(a.cells))
	copy(out, a.cells)
	return out
}

// CollectArray implements Array with a non-atomic snapshot: a collect reads
// the cells one by one in index order, so it can observe states that never
// existed simultaneously. Section 6.2 notes the paper's results survive this
// weakening at the cost of more complex local computation; the experiment
// suite shows where naive uses of collect break.
type CollectArray[T any] struct {
	inner AtomicArray[T]
}

// NewCollectArray returns an n-cell array whose Snapshot is a collect.
func NewCollectArray[T any](n int, init T) *CollectArray[T] {
	a := &CollectArray[T]{}
	a.inner.Reset(n, init)
	return a
}

// Reset implements Array.
func (a *CollectArray[T]) Reset(n int, init T) { a.inner.Reset(n, init) }

// Len implements Array.
func (a *CollectArray[T]) Len() int { return a.inner.Len() }

// Read implements Array; one step.
func (a *CollectArray[T]) Read(p *sched.Proc, i int) T { return a.inner.Read(p, i) }

// Write implements Array; one step.
func (a *CollectArray[T]) Write(p *sched.Proc, i int, v T) { a.inner.Write(p, i, v) }

// Snapshot implements Array as a collect: n reads, n steps, no atomicity.
func (a *CollectArray[T]) Snapshot(p *sched.Proc) []T {
	out := make([]T, a.inner.Len())
	for i := range out {
		out[i] = a.inner.Read(p, i)
	}
	return out
}
