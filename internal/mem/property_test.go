package mem

import (
	"testing"
	"testing/quick"

	"github.com/drv-go/drv/internal/sched"
)

// TestSnapshotMonotonicityProperty: under any seeded schedule, successive
// snapshots taken by any process of an array whose cells only grow must be
// pointwise monotone — the property the WEC/SEC monitors and the timed
// adversary's views rely on (view comparability comes from snapshot
// atomicity plus cell monotonicity).
func TestSnapshotMonotonicityProperty(t *testing.T) {
	for _, build := range []struct {
		name string
		mk   func(n int) Array[int]
	}{
		{"atomic", func(n int) Array[int] { return NewAtomicArray(n, 0) }},
		{"aadgms", func(n int) Array[int] { return NewSnapshotArray(n, 0) }},
		{"collect", func(n int) Array[int] { return NewCollectArray(n, 0) }},
	} {
		build := build
		t.Run(build.name, func(t *testing.T) {
			f := func(seedRaw uint16) bool {
				seed := int64(seedRaw)
				const n = 3
				rt := sched.New(n, sched.Random(seed))
				arr := build.mk(n)
				ok := true
				for i := 0; i < n; i++ {
					i := i
					rt.Spawn(i, func(p *sched.Proc) {
						prev := make([]int, n)
						for round := 0; round < 6; round++ {
							own := arr.Read(p, i)
							arr.Write(p, i, own+1)
							snap := arr.Snapshot(p)
							for j := range snap {
								if snap[j] < prev[j] {
									ok = false
								}
								prev[j] = snap[j]
							}
						}
					})
				}
				for rt.Steps() < 100_000 {
					if !rt.Step() {
						break
					}
				}
				rt.Stop()
				return ok
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSnapshotContainsOwnWriteProperty: a snapshot taken after a process's
// own write must reflect it — the "view contains its own invocation"
// property the sketch construction checks.
func TestSnapshotContainsOwnWriteProperty(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := int64(seedRaw)
		const n = 3
		rt := sched.New(n, sched.Random(seed))
		arr := NewSnapshotArray(n, 0)
		ok := true
		for i := 0; i < n; i++ {
			i := i
			rt.Spawn(i, func(p *sched.Proc) {
				for round := 1; round <= 5; round++ {
					arr.Write(p, i, round)
					snap := arr.Snapshot(p)
					if snap[i] < round {
						ok = false
					}
				}
			})
		}
		for rt.Steps() < 100_000 {
			if !rt.Step() {
				break
			}
		}
		rt.Stop()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
