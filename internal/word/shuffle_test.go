package word

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShufflesEnumeration(t *testing.T) {
	a := NewB().Op(0, "inc", Unit{}, Unit{}).Word()  // 2 symbols
	b := NewB().Op(1, "read", Unit{}, Int(0)).Word() // 2 symbols
	want := CountShuffles([]Word{a, b})              // C(4,2) = 6
	if want != 6 {
		t.Fatalf("CountShuffles = %d, want 6", want)
	}
	seen := map[string]bool{}
	Shuffles([]Word{a, b}, func(w Word) bool {
		if len(w) != 4 {
			t.Fatalf("shuffle has wrong length: %v", w)
		}
		if !InShuffle(w, []Word{a, b}) {
			t.Fatalf("enumerated shuffle not recognized: %v", w)
		}
		seen[w.String()] = true
		return true
	})
	if len(seen) != want {
		t.Errorf("enumerated %d distinct shuffles, want %d", len(seen), want)
	}
}

func TestShufflesEarlyStop(t *testing.T) {
	a := NewB().Op(0, "inc", Unit{}, Unit{}).Word()
	b := NewB().Op(1, "read", Unit{}, Int(0)).Word()
	count := 0
	Shuffles([]Word{a, b}, func(Word) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("visited %d shuffles after early stop, want 3", count)
	}
}

func TestInShuffleRejects(t *testing.T) {
	a := NewB().Op(0, "inc", Unit{}, Unit{}).Word()
	b := NewB().Op(1, "read", Unit{}, Int(0)).Word()
	// Wrong length.
	if InShuffle(a, []Word{a, b}) {
		t.Error("short candidate should be rejected")
	}
	// Reordered within one part (response before invocation).
	bad := Word{a[1], a[0], b[0], b[1]}
	if InShuffle(bad, []Word{a, b}) {
		t.Error("part-order-violating candidate should be rejected")
	}
}

func TestRandomShuffleIsShuffle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := NewB().Op(0, "write", Int(1), Unit{}).Op(0, "write", Int(2), Unit{}).Word()
	b := NewB().Op(1, "read", Unit{}, Int(1)).Word()
	c := NewB().Op(2, "read", Unit{}, Int(2)).Word()
	parts := []Word{a, b, c}
	for i := 0; i < 100; i++ {
		s := RandomShuffle(parts, rng)
		if !InShuffle(s, parts) {
			t.Fatalf("RandomShuffle produced non-shuffle: %v", s)
		}
	}
}

func TestProcPartsRoundTrip(t *testing.T) {
	// Property: any word is in the shuffle of its own projections — this is
	// the identity underlying Definition 5.3 (α ∈ α|1 ⧢ ... ⧢ α|n).
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWellFormed(rng, int(size%10)+2, 3)
		parts := ProcParts(w, 3)
		return InShuffle(w, parts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestShufflePreservesProjections(t *testing.T) {
	// Property: every shuffle of projections has the same projections.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		w := randomWellFormed(rng, 6, 2)
		parts := ProcParts(w, 2)
		s := RandomShuffle(parts, rng)
		for i := 0; i < 2; i++ {
			if !s.Project(i).Equal(w.Project(i)) {
				t.Fatalf("projection %d changed: %v vs %v", i, s.Project(i), w.Project(i))
			}
		}
	}
}

// randomWellFormed builds a random well-formed word with the given number of
// symbols over n processes: at each position a process either starts an
// operation or completes its pending one.
func randomWellFormed(rng *rand.Rand, symbols, n int) Word {
	var w Word
	pending := make([]string, n) // "" means no pending op
	for len(w) < symbols {
		p := rng.Intn(n)
		if pending[p] == "" {
			op := []string{"inc", "read", "write"}[rng.Intn(3)]
			var arg Value = Unit{}
			if op == "write" {
				arg = Int(rng.Intn(5))
			}
			w = append(w, NewInv(p, op, arg))
			pending[p] = op
		} else {
			var ret Value = Unit{}
			if pending[p] == "read" {
				ret = Int(rng.Intn(5))
			}
			w = append(w, NewRes(p, pending[p], ret))
			pending[p] = ""
		}
	}
	return w
}
