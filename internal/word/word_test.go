package word

import (
	"testing"
)

func TestSymbolString(t *testing.T) {
	tests := []struct {
		name string
		sym  Symbol
		want string
	}{
		{"inv write", NewInv(0, "write", Int(3)), "<0:write(3)"},
		{"res write", NewRes(0, "write", Unit{}), ">0:write=()"},
		{"inv read", NewInv(2, "read", Unit{}), "<2:read(())"},
		{"res read", NewRes(2, "read", Int(7)), ">2:read=7"},
		{"res get", NewRes(1, "get", Seq{"a", "b"}), ">1:get=[a·b]"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.sym.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		want bool
	}{
		{"int eq", Int(3), Int(3), true},
		{"int ne", Int(3), Int(4), false},
		{"int vs unit", Int(0), Unit{}, false},
		{"unit eq", Unit{}, Unit{}, true},
		{"rec eq", Rec("x"), Rec("x"), true},
		{"rec ne", Rec("x"), Rec("y"), false},
		{"seq eq", Seq{"a", "b"}, Seq{"a", "b"}, true},
		{"seq ne len", Seq{"a"}, Seq{"a", "b"}, false},
		{"seq ne elem", Seq{"a", "b"}, Seq{"a", "c"}, false},
		{"seq empty", Seq{}, Seq{}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("%v.Equal(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestProject(t *testing.T) {
	w := NewB().
		Inv(0, "write", Int(1)).
		Inv(1, "read", Unit{}).
		Res(0, "write", Unit{}).
		Res(1, "read", Int(1)).
		Word()
	p0 := w.Project(0)
	if len(p0) != 2 || p0[0].Op != "write" || p0[1].Kind != Res {
		t.Fatalf("Project(0) = %v", p0)
	}
	p1 := w.Project(1)
	if len(p1) != 2 || p1[0].Op != "read" {
		t.Fatalf("Project(1) = %v", p1)
	}
	if got := w.Procs(); got != 2 {
		t.Errorf("Procs() = %d, want 2", got)
	}
}

func TestWellFormed(t *testing.T) {
	tests := []struct {
		name string
		w    Word
		ok   bool
	}{
		{"empty", Word{}, true},
		{"single op", NewB().Op(0, "read", Unit{}, Int(0)).Word(), true},
		{"pending inv", NewB().Inv(0, "write", Int(1)).Word(), true},
		{"interleaved", NewB().
			Inv(0, "write", Int(1)).Inv(1, "read", Unit{}).
			Res(1, "read", Int(0)).Res(0, "write", Unit{}).Word(), true},
		{"double invocation", NewB().
			Inv(0, "write", Int(1)).Inv(0, "read", Unit{}).Word(), false},
		{"orphan response", NewB().Res(0, "read", Int(0)).Word(), false},
		{"mismatched response", NewB().
			Inv(0, "write", Int(1)).Res(0, "read", Int(1)).Word(), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := WellFormed(tt.w)
			if (err == nil) != tt.ok {
				t.Errorf("WellFormed(%v) error = %v, want ok=%v", tt.w, err, tt.ok)
			}
		})
	}
}

func TestOperations(t *testing.T) {
	w := NewB().
		Inv(0, "write", Int(5)).
		Inv(1, "read", Unit{}).
		Res(0, "write", Unit{}).
		Res(1, "read", Int(5)).
		Inv(0, "read", Unit{}).
		Word()
	ops := Operations(w)
	if len(ops) != 3 {
		t.Fatalf("Operations returned %d ops, want 3", len(ops))
	}
	if ops[0].ID != (OpID{Proc: 0, Idx: 0}) || ops[0].Op != "write" || ops[0].Res != 2 {
		t.Errorf("ops[0] = %v", ops[0])
	}
	if ops[1].ID != (OpID{Proc: 1, Idx: 0}) || !ops[1].Ret.Equal(Int(5)) {
		t.Errorf("ops[1] = %v", ops[1])
	}
	if !ops[2].Pending() || ops[2].ID != (OpID{Proc: 0, Idx: 1}) {
		t.Errorf("ops[2] = %v", ops[2])
	}
	if len(Complete(w)) != 2 {
		t.Errorf("Complete = %v", Complete(w))
	}
	if len(PendingOps(w)) != 1 {
		t.Errorf("PendingOps = %v", PendingOps(w))
	}
	trunc := TruncateComplete(w)
	if len(trunc) != 4 || len(PendingOps(trunc)) != 0 {
		t.Errorf("TruncateComplete = %v", trunc)
	}
}

func TestPrecedence(t *testing.T) {
	// p0: write(1) completes, then p1 reads: write ≺ read.
	w := NewB().
		Op(0, "write", Int(1), Unit{}).
		Op(1, "read", Unit{}, Int(1)).
		Word()
	ops := Operations(w)
	if !ops[0].Precedes(ops[1]) {
		t.Error("write should precede read")
	}
	if ops[1].Precedes(ops[0]) {
		t.Error("read should not precede write")
	}
	if ops[0].ConcurrentWith(ops[1]) {
		t.Error("sequential ops should not be concurrent")
	}

	// Overlapping operations are concurrent.
	w2 := NewB().
		Inv(0, "write", Int(1)).
		Inv(1, "read", Unit{}).
		Res(0, "write", Unit{}).
		Res(1, "read", Int(1)).
		Word()
	ops2 := Operations(w2)
	if !ops2[0].ConcurrentWith(ops2[1]) {
		t.Error("overlapping ops should be concurrent")
	}

	// A pending operation precedes nothing but can be preceded.
	w3 := NewB().
		Op(0, "write", Int(1), Unit{}).
		Inv(1, "read", Unit{}).
		Word()
	ops3 := Operations(w3)
	if ops3[1].Precedes(ops3[0]) {
		t.Error("pending op must not precede")
	}
	if !ops3[0].Precedes(ops3[1]) {
		t.Error("complete op should precede later pending op")
	}
}

func TestOperationsPanicsOnMalformed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Operations should panic on orphan response")
		}
	}()
	Operations(NewB().Res(0, "read", Int(0)).Word())
}

func TestWordEqualClone(t *testing.T) {
	w := NewB().Op(0, "inc", Unit{}, Unit{}).Op(1, "read", Unit{}, Int(1)).Word()
	c := w.Clone()
	if !w.Equal(c) {
		t.Error("clone should equal original")
	}
	c[0].Proc = 5
	if w.Equal(c) {
		t.Error("mutated clone should differ")
	}
	if w.Equal(w[:len(w)-1]) {
		t.Error("prefix should not equal word")
	}
}
