package word

// SamePrecedence reports whether two words describe the same concurrent
// history up to reordering within batches that do not affect operation
// precedence: the operation sets coincide (same identifiers, operations,
// arguments and results, pending status) and the real-time precedence
// relations agree. This is the equivalence under which Appendix B's sketch
// x~(E) is defined ("x~(E) denotes an equivalence class of histories"), and
// the sense in which tight executions satisfy x(E) = x~(E).
func SamePrecedence(a, b Word) bool {
	opsA, opsB := Operations(a), Operations(b)
	if len(opsA) != len(opsB) {
		return false
	}
	byID := map[OpID]Operation{}
	for _, o := range opsA {
		byID[o.ID] = o
	}
	match := map[OpID]Operation{}
	for _, o := range opsB {
		p, ok := byID[o.ID]
		if !ok || p.Op != o.Op || p.Pending() != o.Pending() {
			return false
		}
		if (p.Arg == nil) != (o.Arg == nil) || (p.Arg != nil && !p.Arg.Equal(o.Arg)) {
			return false
		}
		if !p.Pending() && !p.Ret.Equal(o.Ret) {
			return false
		}
		match[o.ID] = o
	}
	for _, x := range opsA {
		for _, y := range opsA {
			if x.ID == y.ID {
				continue
			}
			if x.Precedes(y) != match[x.ID].Precedes(match[y.ID]) {
				return false
			}
		}
	}
	return true
}
