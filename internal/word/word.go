// Package word implements the distributed-language machinery of Section 2 of
// the paper: distributed alphabets split into per-process invocation and
// response alphabets, finite prefixes of ω-words, per-process projections,
// well-formedness, operations with the real-time precedence relation, and the
// shuffle operator used by the real-time obliviousness characterization
// (Definition 5.3).
//
// The core definitions — symbols, words, operations, well-formedness — are
// re-homed in the exported exp/trace package so external embedders can build
// histories; this package aliases them (type identity is preserved) and keeps
// only the repo-internal machinery (shuffles, precedence equivalence) that
// embedders do not need.
package word

import (
	"github.com/drv-go/drv/exp/trace"
)

// Kind distinguishes invocation symbols (Σ<) from response symbols (Σ>).
type Kind = trace.Kind

const (
	// Inv marks a symbol of the invocation alphabet Σ< of a process.
	Inv = trace.Inv
	// Res marks a symbol of the response alphabet Σ> of a process.
	Res = trace.Res
)

// Value is an argument or return value carried by a symbol.
type Value = trace.Value

// Unit is the empty value, for operations without arguments or returns.
type Unit = trace.Unit

// Int is an integer value.
type Int = trace.Int

// Rec is a record (string) value.
type Rec = trace.Rec

// Seq is a sequence-of-records value.
type Seq = trace.Seq

// Symbol is one event of a concurrent history.
type Symbol = trace.Symbol

var (
	// NewInv builds an invocation symbol.
	NewInv = trace.NewInv
	// NewRes builds a response symbol.
	NewRes = trace.NewRes
)

// Word is a finite sequence of symbols — in experiments always a finite
// prefix of the (conceptually infinite) input ω-word x(E) of an execution E.
type Word = trace.Word

// B is a fluent word builder.
type B = trace.B

// NewB returns an empty word builder.
var NewB = trace.NewB

// OpID identifies one operation: the invoking process and the per-process
// invocation index.
type OpID = trace.OpID

// Operation is a matched invocation/response pair (or a pending invocation).
type Operation = trace.Operation

var (
	// Operations pairs the matched invocation/response events of a word.
	Operations = trace.Operations
	// Complete returns the completed operations of a word.
	Complete = trace.Complete
	// PendingOps returns the pending operations of a word.
	PendingOps = trace.PendingOps
	// TruncateComplete drops trailing pending invocations from a word.
	TruncateComplete = trace.TruncateComplete
)

var (
	// ErrNotWellFormed is wrapped by all well-formedness violations.
	ErrNotWellFormed = trace.ErrNotWellFormed
	// WellFormed checks per-process invocation/response alternation.
	WellFormed = trace.WellFormed
	// IsWellFormed reports WellFormed(w) == nil.
	IsWellFormed = trace.IsWellFormed
)
