package word

import (
	"bytes"
	"testing"
)

// wordFromBytes deterministically builds a well-formed word from fuzz input:
// each byte picks a process and either opens its next operation or closes
// the pending one, so per-process alternation holds by construction. The
// word length is capped — InShuffle's membership search is exponential in
// the worst case, and the properties under test do not need long words.
func wordFromBytes(data []byte, n int) Word {
	const maxSymbols = 40
	ops := []string{"read", "write", "inc"}
	pending := make([]string, n)
	var w Word
	for _, b := range data {
		if len(w) >= maxSymbols {
			break
		}
		p := int(b) % n
		if pending[p] == "" {
			op := ops[int(b>>3)%len(ops)]
			w = append(w, NewInv(p, op, Int(int64(b>>5))))
			pending[p] = op
		} else {
			w = append(w, NewRes(p, pending[p], Int(int64(b>>4))))
			pending[p] = ""
		}
	}
	return w
}

// FuzzWordProjectionRoundTrip checks the projection/shuffle round trip that
// the real-time obliviousness machinery (Definition 5.3) relies on: a
// well-formed word is an interleaving of its per-process projections, the
// projections partition its symbols exactly, and every operation-level
// helper agrees with the symbol-level view.
func FuzzWordProjectionRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 1, 2, 2})
	f.Add([]byte{7, 7, 13, 13, 7, 13, 255, 0, 128, 3})
	f.Add([]byte("interleaving of projections"))
	f.Fuzz(func(t *testing.T, data []byte) {
		n := 3
		w := wordFromBytes(data, n)
		if err := WellFormed(w); err != nil {
			t.Fatalf("builder produced an ill-formed word: %v", err)
		}

		parts := ProcParts(w, n)
		total := 0
		for p, part := range parts {
			total += len(part)
			if err := WellFormed(part); err != nil {
				t.Errorf("projection %d ill-formed: %v", p, err)
			}
			for _, s := range part {
				if s.Proc != p {
					t.Errorf("projection %d contains symbol of process %d", p, s.Proc)
				}
			}
		}
		if total != len(w) {
			t.Errorf("projections have %d symbols, word has %d", total, len(w))
		}

		// The round trip: the word is a member of the shuffle of its own
		// projections.
		if !InShuffle(w, parts) {
			t.Errorf("word %v not in the shuffle of its projections", w)
		}

		// Operation extraction agrees with the symbol-level view.
		ops := Operations(w)
		complete, pendingOps := 0, 0
		for _, o := range ops {
			if o.Pending() {
				pendingOps++
			} else {
				complete++
				if !w[o.Inv].Equal(NewInv(o.ID.Proc, o.Op, o.Arg)) {
					t.Errorf("operation %v does not point at its invocation", o)
				}
				if w[o.Res].Proc != o.ID.Proc || w[o.Res].Kind != Res {
					t.Errorf("operation %v does not point at a response of its process", o)
				}
			}
		}
		if got := len(Complete(w)); got != complete {
			t.Errorf("Complete returned %d operations, want %d", got, complete)
		}
		if got := len(PendingOps(w)); got != pendingOps {
			t.Errorf("PendingOps returned %d operations, want %d", got, pendingOps)
		}

		// Truncating pending invocations leaves a well-formed word of only
		// complete operations.
		tc := TruncateComplete(w)
		if err := WellFormed(tc); err != nil {
			t.Errorf("TruncateComplete ill-formed: %v", err)
		}
		if len(PendingOps(tc)) != 0 {
			t.Errorf("TruncateComplete left pending operations in %v", tc)
		}
	})
}

// FuzzWordStringStable checks that rendering is deterministic and that Clone
// produces an equal, independent word — cheap invariants the trace tooling
// leans on.
func FuzzWordStringStable(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		w := wordFromBytes(data, 3)
		c := w.Clone()
		if !w.Equal(c) {
			t.Fatal("clone not equal to original")
		}
		if !bytes.Equal([]byte(w.String()), []byte(c.String())) {
			t.Fatal("rendering differs between equal words")
		}
		if len(c) > 0 {
			c[0] = NewInv((c[0].Proc+1)%3, "write", Int(99))
			if w.Equal(c) && len(w) > 0 {
				t.Fatal("mutating the clone changed the original")
			}
		}
	})
}
