package word

import "math/rand"

// Shuffle machinery for Definition 5.2 (the shuffle x1 ⧢ ... ⧢ xm is the set
// of all interleavings of the words) and Definition 5.3 (real-time oblivious
// languages). The shuffles of interest are always of the per-process
// projections α|1, ..., α|n of a finite prefix α, so the functions below take
// the parts directly.

// Shuffles enumerates every interleaving of the given parts, invoking visit
// on each. Enumeration stops early if visit returns false. The number of
// interleavings is the multinomial coefficient of the part lengths, so
// callers should bound part sizes (tests use |α| ≤ ~12).
func Shuffles(parts []Word, visit func(Word) bool) {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	idx := make([]int, len(parts))
	cur := make(Word, 0, total)
	var rec func() bool
	rec = func() bool {
		if len(cur) == total {
			return visit(cur.Clone())
		}
		for i, p := range parts {
			if idx[i] < len(p) {
				cur = append(cur, p[idx[i]])
				idx[i]++
				ok := rec()
				idx[i]--
				cur = cur[:len(cur)-1]
				if !ok {
					return false
				}
			}
		}
		return true
	}
	rec()
}

// CountShuffles returns the number of interleavings of the parts (the
// multinomial coefficient). It overflows for large inputs; intended for the
// small words used in characterization experiments.
func CountShuffles(parts []Word) int {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	// multinomial(total; len(p1), ..., len(pm)) computed incrementally.
	result := 1
	acc := 0
	for _, p := range parts {
		for k := 1; k <= len(p); k++ {
			acc++
			result = result * acc / k
		}
	}
	return result
}

// InShuffle reports whether cand is an interleaving of the parts, i.e.
// cand ∈ parts[0] ⧢ ... ⧢ parts[m-1]. Because symbols carry their process
// index and each part is a single process's local word in experiments, the
// common case is resolved greedily; the general case (several parts sharing a
// process) falls back to search.
func InShuffle(cand Word, parts []Word) bool {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if len(cand) != total {
		return false
	}
	idx := make([]int, len(parts))
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos == len(cand) {
			return true
		}
		for i, p := range parts {
			if idx[i] < len(p) && p[idx[i]].Equal(cand[pos]) {
				idx[i]++
				if rec(pos + 1) {
					idx[i]--
					return true
				}
				idx[i]--
			}
		}
		return false
	}
	return rec(0)
}

// RandomShuffle samples one interleaving of the parts uniformly at random
// using rng, by repeatedly drawing the next part weighted by its remaining
// length.
func RandomShuffle(parts []Word, rng *rand.Rand) Word {
	total := 0
	rem := make([]int, len(parts))
	for i, p := range parts {
		rem[i] = len(p)
		total += len(p)
	}
	idx := make([]int, len(parts))
	out := make(Word, 0, total)
	for len(out) < total {
		k := rng.Intn(total - len(out))
		for i := range parts {
			if rem[i] == 0 {
				continue
			}
			if k < rem[i] {
				out = append(out, parts[i][idx[i]])
				idx[i]++
				rem[i]--
				break
			}
			k -= rem[i]
		}
	}
	return out
}

// ProcParts splits a word into its per-process projections α|0, ..., α|n−1
// for an n-process alphabet, the parts whose shuffle Definition 5.3 ranges
// over.
func ProcParts(w Word, n int) []Word {
	parts := make([]Word, n)
	for i := 0; i < n; i++ {
		parts[i] = w.Project(i)
	}
	return parts
}
