package adversary

import (
	"github.com/drv-go/drv/internal/mem"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/word"
)

// ArrayKind selects the shared-array implementation a timed adversary uses
// for its announcement array M — the Section 6.2 snapshot-versus-collect
// ablation knob.
type ArrayKind uint8

const (
	// ArrayAtomic uses the model's one-step atomic snapshot.
	ArrayAtomic ArrayKind = iota + 1
	// ArrayAADGMS uses the wait-free read/write snapshot protocol.
	ArrayAADGMS
	// ArrayCollect uses a plain collect; views may become incomparable.
	ArrayCollect
)

// NewArray builds an n-cell integer array of the requested kind.
func NewArray(kind ArrayKind, n int) mem.Array[int] {
	switch kind {
	case ArrayAADGMS:
		return mem.NewSnapshotArray(n, 0)
	case ArrayCollect:
		return mem.NewCollectArray(n, 0)
	default:
		return mem.NewAtomicArray(n, 0)
	}
}

// Timed is the timed adversary Aτ of Figure 6: it wraps an inner service in
// wait-free read/write code executed by the invoking process itself. Before
// sending invocation v, the process announces it in M[i]; after receiving the
// response it snapshots M and returns the union as the response's view.
// Lemma 6.1 (and 6.3) say the wrapper preserves the correctness of the inner
// behaviour, so verifying Aτ is an honest, if indirect, way of verifying A.
type Timed struct {
	inner   Service
	m       mem.Array[int]
	logs    [][]word.Symbol // per-process announced invocations, append-only
	history word.Word       // outer events: monitor↔Aτ sends and receives
}

var (
	_ Service = (*Timed)(nil)
	_ Stats   = (*Timed)(nil)
)

// NewTimed wraps the inner service for n processes using the given array
// kind for the announcement array M.
func NewTimed(n int, inner Service, kind ArrayKind) *Timed {
	return &Timed{
		inner: inner,
		m:     NewArray(kind, n),
		logs:  make([][]word.Symbol, n),
	}
}

// Reset re-arms the wrapper for another run around inner, for n processes,
// keeping the announcement array's kind (it resets in place) and reusing the
// log and history buffers. Safe because History()/InnerHistory() clone: no
// earlier run's result aliases the recycled backing arrays.
func (t *Timed) Reset(n int, inner Service) {
	t.inner = inner
	t.m.Reset(n, 0)
	t.history = t.history[:0]
	if cap(t.logs) < n {
		t.logs = make([][]word.Symbol, n)
		return
	}
	t.logs = t.logs[:n]
	for i := range t.logs {
		t.logs[i] = t.logs[i][:0]
	}
}

// NextInv implements Service by delegation; the wrapper adds nothing before
// Line 01.
func (t *Timed) NextInv(id int) (word.Symbol, bool) { return t.inner.NextInv(id) }

// Send implements Service: Figure 6 Lines 01–03. The monitor's invocation
// event (Line 03 of Figure 1) occurs when Aτ receives v — before the
// announcement write, which is a shared-memory step by the sending process.
// This ordering (invocation, then announce) is what lets the sketch "move
// invocations forward to the next write" (Figure 7) and makes Theorem 6.1(1)
// hold.
func (t *Timed) Send(p *sched.Proc, v word.Symbol) {
	id := p.ID
	t.history = append(t.history, v)   // the outer send event
	t.logs[id] = append(t.logs[id], v) // s_i ← s_i ∪ {v_i} (local)
	t.m.Write(p, id, len(t.logs[id]))  // M[i].write(s_i)
	t.inner.Send(p, v)                 // forward to A
}

// Recv implements Service: Figure 6 Lines 04–07. After the inner response
// arrives, the process snapshots M, attaches the resulting view, and only
// then does the outer response event occur — responses "move backward to the
// previous snapshot" in the sketch.
func (t *Timed) Recv(p *sched.Proc) Response {
	resp := t.inner.Recv(p)
	counts := t.m.Snapshot(p)
	view := NewView(counts)
	resp.View = &view
	t.history = append(t.history, resp.Sym) // the outer receive event
	return resp
}

// History implements Service: the input word x(E) of the monitor's execution
// is the sequence of outer events — invocations received by and responses
// returned by Aτ — ignoring views.
func (t *Timed) History() word.Word { return t.history.Clone() }

// HistLen returns the number of outer events so far — len(History()) without
// the clone, cheap enough to record at every verdict.
func (t *Timed) HistLen() int { return len(t.history) }

// InnerHistory returns the behaviour the wrapped service exhibited, for
// Lemma 6.1/6.3 experiments relating the correctness of A and Aτ.
func (t *Timed) InnerHistory() word.Word { return t.inner.History() }

// Pulled delegates to the inner service when it exposes Stats.
func (t *Timed) Pulled() int {
	if s, ok := t.inner.(Stats); ok {
		return s.Pulled()
	}
	return 0
}

// Crash delegates crash notifications to the inner service when it supports
// them; the wrapper itself holds no per-process gates.
func (t *Timed) Crash(id int) {
	if c, ok := t.inner.(interface{ Crash(id int) }); ok {
		c.Crash(id)
	}
}

// InvAt resolves an invocation identifier to its symbol, for monitors that
// inspect view contents (e.g. Figure 9's clause-4 test counts inc
// invocations inside views). Only identifiers contained in an observed view
// may be resolved — those are guaranteed announced.
func (t *Timed) InvAt(id word.OpID) word.Symbol { return t.logs[id.Proc][id.Idx] }

// CountOp returns how many invocations in the view name the given operation.
func (t *Timed) CountOp(v View, op string) int {
	total := 0
	for i := 0; i < v.Procs(); i++ {
		for k := 0; k < v.Count(i); k++ {
			if t.logs[i][k].Op == op {
				total++
			}
		}
	}
	return total
}
