package adversary

import (
	"fmt"

	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/word"
)

type procPhase uint8

const (
	phaseIdle procPhase = iota
	phaseWaitSend
	phaseWaitRecv
)

// A is the asynchronous adversary of Section 3: a black box that exhibits an
// arbitrary well-formed behaviour. It is implemented as a word cursor: a
// Source dictates the ω-word, and an auxiliary scheduler actor emits the
// word's symbols one at a time, each emission being the corresponding global
// send or receive event. The cursor can only emit a symbol when its owner
// process is parked at the matching gate, so the emitted order is exactly the
// real-time order of events in x(E) — the thing processes cannot observe.
//
// Claim 3.1 falls out of the construction: for any well-formed word, driving
// the cursor with a Prioritize policy yields an execution whose input is that
// word.
type A struct {
	n   int
	src Source

	queue     word.Word // pulled but not yet emitted symbols
	exhausted bool
	history   word.Word // emitted symbols: the x(E) prefix

	phase   []procPhase
	outbox  []word.Symbol // invocation a waiting process wants to send
	granted []bool        // gate flags: cursor emitted the process's symbol
	inbox   []word.Symbol // delivered responses
	invs    [][]word.Symbol
	handed  []int // invocations handed out via NextInv
	opCount []int // completed send events per process, for OpIDs
	crashed []bool
}

var (
	_ Service = (*A)(nil)
	_ Stats   = (*A)(nil)
)

// NewA returns an adversary for n processes exhibiting the source's word.
func NewA(n int, src Source) *A {
	return &A{
		n:       n,
		src:     src,
		phase:   make([]procPhase, n),
		outbox:  make([]word.Symbol, n),
		granted: make([]bool, n),
		inbox:   make([]word.Symbol, n),
		invs:    make([][]word.Symbol, n),
		handed:  make([]int, n),
		opCount: make([]int, n),
		crashed: make([]bool, n),
	}
}

// Crash tells the adversary the process has crashed: its remaining symbols
// are dropped from the exhibited word — a crashed process has finitely many
// events, so the behaviour continues without it and the cursor never blocks
// waiting for it. Call together with Runtime.Crash (the monitor runner's
// Crash map does both).
func (a *A) Crash(id int) {
	a.crashed[id] = true
	a.dropCrashed()
}

// dropCrashed removes queued symbols owned by crashed processes.
func (a *A) dropCrashed() {
	kept := a.queue[:0]
	for _, s := range a.queue {
		if !a.crashed[s.Proc] {
			kept = append(kept, s)
		}
	}
	a.queue = kept
}

// Register installs the adversary's word cursor as an auxiliary actor on the
// runtime and returns its actor ID (usable in scripted policies).
func (a *A) Register(rt *sched.Runtime) int {
	return rt.AddAux("adversary-cursor", a.cursorRunnable, a.cursorStep)
}

// pull transfers one symbol from the source into the queue; reports whether
// anything was pulled.
func (a *A) pull() bool {
	for {
		if a.exhausted {
			return false
		}
		s, ok := a.src.Next()
		if !ok {
			a.exhausted = true
			return false
		}
		if s.Proc < 0 || s.Proc >= a.n {
			panic(fmt.Sprintf("adversary: source emitted symbol for process %d of %d", s.Proc, a.n))
		}
		if a.crashed[s.Proc] {
			continue // crashed processes have no further events
		}
		a.queue = append(a.queue, s)
		if s.Kind == word.Inv {
			a.invs[s.Proc] = append(a.invs[s.Proc], s)
		}
		return true
	}
}

func (a *A) cursorRunnable() bool {
	if len(a.queue) == 0 && !a.pull() {
		return false
	}
	s := a.queue[0]
	switch s.Kind {
	case word.Inv:
		return a.phase[s.Proc] == phaseWaitSend && !a.granted[s.Proc]
	case word.Res:
		return a.phase[s.Proc] == phaseWaitRecv && !a.granted[s.Proc]
	}
	return false
}

// cursorStep emits the next symbol of the word: the send or receive event.
func (a *A) cursorStep() {
	s := a.queue[0]
	a.queue = a.queue[1:]
	a.history = append(a.history, s)
	switch s.Kind {
	case word.Inv:
		if !a.outbox[s.Proc].Equal(s) {
			panic(fmt.Sprintf("adversary: process %d waits to send %v but word says %v",
				s.Proc, a.outbox[s.Proc], s))
		}
	case word.Res:
		a.inbox[s.Proc] = s
	}
	a.granted[s.Proc] = true
}

// NextInv implements Service: it reveals the process's next invocation, which
// in the model the adversary determines (Line 01's nondeterministic pick is
// resolved by the behaviour being exhibited).
func (a *A) NextInv(id int) (word.Symbol, bool) {
	for a.handed[id] >= len(a.invs[id]) {
		if !a.pull() {
			return word.Symbol{}, false
		}
	}
	s := a.invs[id][a.handed[id]]
	a.handed[id]++
	return s, true
}

// Send implements Service; the send event occurs when the cursor emits the
// invocation symbol, and the process consumes one step observing it.
func (a *A) Send(p *sched.Proc, v word.Symbol) {
	id := p.ID
	a.outbox[id] = v
	a.phase[id] = phaseWaitSend
	p.Await(func() bool { return a.granted[id] })
	a.granted[id] = false
	a.phase[id] = phaseIdle
}

// Recv implements Service; symmetric to Send for the response symbol.
func (a *A) Recv(p *sched.Proc) Response {
	id := p.ID
	a.phase[id] = phaseWaitRecv
	p.Await(func() bool { return a.granted[id] })
	a.granted[id] = false
	a.phase[id] = phaseIdle
	resp := Response{
		Sym: a.inbox[id],
		ID:  word.OpID{Proc: id, Idx: a.opCount[id]},
	}
	a.opCount[id]++
	return resp
}

// History implements Service.
func (a *A) History() word.Word { return a.history.Clone() }

// HistLen returns the number of symbols emitted so far — len(History())
// without the clone, cheap enough to record at every verdict.
func (a *A) HistLen() int { return len(a.history) }

// Pulled returns how many symbols have been consumed from the source —
// everything that can have influenced the execution so far. Prefix-extension
// attacks (Lemmas 5.2, 6.2, 6.5) cut their hybrid words at this boundary so
// the attacked execution replays deterministically up to the cut.
func (a *A) Pulled() int { return len(a.history) + len(a.queue) }

// CursorStats is a deterministic snapshot of the word cursor's drive state:
// how far into the source the execution got, how much of the pulled word was
// actually exhibited, and what the cursor dropped. Two executions of the
// same spec report identical stats, so coverage signatures (package explore)
// can fold them without touching the history itself.
type CursorStats struct {
	// Pulled counts symbols consumed from the source (emitted + queued).
	Pulled int `json:"pulled"`
	// Emitted counts symbols emitted into the exhibited word x(E).
	Emitted int `json:"emitted"`
	// Queued counts symbols pulled but not yet emitted — the cursor's
	// backlog when the run ended, a measure of how far the schedule starved
	// the gated processes.
	Queued int `json:"queued"`
	// Exhausted reports whether the source's finite script ended.
	Exhausted bool `json:"exhausted"`
	// CrashedProcs counts processes whose remaining symbols the cursor
	// dropped from the word.
	CrashedProcs int `json:"crashed_procs"`
}

// CursorStats snapshots the cursor's drive state; call between steps or
// after the run.
func (a *A) CursorStats() CursorStats {
	s := CursorStats{
		Pulled:    a.Pulled(),
		Emitted:   len(a.history),
		Queued:    len(a.queue),
		Exhausted: a.exhausted,
	}
	for _, c := range a.crashed {
		if c {
			s.CrashedProcs++
		}
	}
	return s
}

// WaitingSend reports whether the process is parked at the send gate; used by
// the phase-structured policies that drive proof constructions.
func (a *A) WaitingSend(id int) bool { return a.phase[id] == phaseWaitSend && !a.granted[id] }

// WaitingRecv reports whether the process is parked at the receive gate.
func (a *A) WaitingRecv(id int) bool { return a.phase[id] == phaseWaitRecv && !a.granted[id] }
