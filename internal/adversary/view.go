package adversary

import (
	"github.com/drv-go/drv/exp/trace"
)

// View is the timestamp a timed adversary attaches to a response (Section
// 6.1); re-homed in the exported exp/trace package and aliased here.
type View = trace.View

// NewView builds a view from a per-process invocation-count vector.
var NewView = trace.NewView

// Response is what a process receives back from the service in Line 04: the
// response symbol, and — when the service is a timed adversary — the view
// attached to it, plus the operation identifier the service assigned to the
// interaction. Re-homed in exp/trace.
type Response = trace.Response
