package adversary

import (
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/word"
)

// TightPolicy drives an execution in which every process performs its
// Lines 01–03 (including Aτ's announcement) immediately before its send
// event, and its Lines 04–07 (snapshot and local reporting) immediately after
// its receive event, with no interleaving — the "tight" executions of the
// proofs of Lemmas 6.2 and 6.5, whose defining property is that the input
// equals its sketch: x(E) = x~(E). The policy follows the adversary's word
// order, running the owner of the next symbol up to the matching gate,
// emitting, and draining the owner after each delivery.
type TightPolicy struct {
	adv      *A
	cursor   int
	fallback sched.Policy
	draining int
}

var _ sched.Policy = (*TightPolicy)(nil)

// NewTightPolicy builds a tight policy for the adversary registered as the
// given cursor actor. The fallback schedules whatever remains after the word
// is exhausted (draining final reports).
func NewTightPolicy(adv *A, cursor int, fallback sched.Policy) *TightPolicy {
	return &TightPolicy{adv: adv, cursor: cursor, fallback: fallback, draining: -1}
}

// Next implements sched.Policy.
func (t *TightPolicy) Next(runnable []int, step int) int {
	if t.draining >= 0 {
		id := t.draining
		if idContained(runnable, id) && !t.adv.WaitingSend(id) {
			return id
		}
		t.draining = -1
	}
	s, ok := t.adv.Peek()
	if !ok {
		return t.fallback.Next(runnable, step)
	}
	owner := s.Proc
	switch s.Kind {
	case word.Inv:
		if t.adv.WaitingSend(owner) {
			return t.cursor
		}
	case word.Res:
		if t.adv.WaitingRecv(owner) {
			t.draining = owner
			return t.cursor
		}
	}
	if idContained(runnable, owner) {
		return owner
	}
	// The owner is blocked on something other than the word (should not
	// happen in well-formed setups); let the fallback make progress.
	return t.fallback.Next(runnable, step)
}

func idContained(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Peek returns the next unemitted symbol of the adversary's word without
// consuming it.
func (a *A) Peek() (word.Symbol, bool) {
	if len(a.queue) == 0 && !a.pull() {
		return word.Symbol{}, false
	}
	return a.queue[0], true
}
