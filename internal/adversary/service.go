// Package adversary implements the distributed services that monitors
// interact with in Lines 03–04 of the generic algorithm (Figure 1): the
// asynchronous adversary A — a word cursor that can exhibit any well-formed
// behaviour, realizing Claim 3.1 — and the timed adversary Aτ of Section 6.1
// (Figure 6), which wraps any service in the announce/snapshot protocol that
// attaches views to responses.
package adversary

import (
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/word"
)

// Service is a distributed service under inspection, from the point of view
// of one monitor process: an oracle for the process's next invocation
// (Line 01 — in the model the adversary determines what processes send), a
// send operation (Line 03) and a receive operation (Line 04). All methods
// with a Proc consume scheduler steps; NextInv is local.
type Service interface {
	// NextInv returns the next invocation symbol process id must send, or
	// ok=false when the service's behaviour script is exhausted and the
	// process should stop iterating (finite experiment prefix).
	NextInv(id int) (word.Symbol, bool)
	// Send transmits the invocation to the service; blocks (gated) until the
	// service absorbs it, which is the send event of the execution.
	Send(p *sched.Proc, v word.Symbol)
	// Recv blocks until the service delivers the response to the process's
	// outstanding invocation and returns it.
	Recv(p *sched.Proc) Response
	// History returns the input word x(E) emitted so far: the subsequence of
	// send/receive events in global real-time order. Call only between steps
	// or after the run.
	History() word.Word
}

// Stats is the optional introspection side of a Service: cheap counters the
// monitor runner records at every verdict. A service that implements it must
// provide both counters; services without them (the deployed SUT harness)
// simply record zeros, exactly as before the interface existed.
type Stats interface {
	// Pulled returns how many symbols the service has consumed from its
	// source — everything that can have influenced the execution so far.
	Pulled() int
	// HistLen returns the number of input-word symbols emitted so far:
	// len(History()) without the clone.
	HistLen() int
}

// Source supplies the ω-word a word-cursor adversary exhibits, one symbol at
// a time. Implementations must produce well-formed sequences (per-process
// alternation); Next is called at most once per position.
type Source interface {
	// Next returns the symbol at the current position and advances, or
	// ok=false if the source is a finite script that has ended.
	Next() (word.Symbol, bool)
}

// ScriptSource replays a fixed finite word.
type ScriptSource struct {
	w   word.Word
	pos int
}

// NewScriptSource returns a source that emits exactly w and then ends.
func NewScriptSource(w word.Word) *ScriptSource { return &ScriptSource{w: w} }

// Next implements Source.
func (s *ScriptSource) Next() (word.Symbol, bool) {
	if s.pos >= len(s.w) {
		return word.Symbol{}, false
	}
	sym := s.w[s.pos]
	s.pos++
	return sym, true
}

// FuncSource adapts a generator function to a Source.
type FuncSource func() (word.Symbol, bool)

// Next implements Source.
func (f FuncSource) Next() (word.Symbol, bool) { return f() }

// Labeled couples a source with ground truth about the infinite word it
// samples: whether that word belongs to the language under verification.
// Finite runs cannot decide ω-membership, so possibility experiments carry
// the label alongside the behaviour.
type Labeled struct {
	Name string
	// In reports membership of the full ω-word in the language.
	In bool
	// New returns a fresh source emitting the word from the start.
	New func() Source
}
