package adversary

import (
	"math/rand"
	"testing"

	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// runPlainLoop drives n processes through the bare Figure-1 loop (no monitor
// logic) against the service, returning the responses each process received.
func runPlainLoop(t *testing.T, n int, svc Service, register func(*sched.Runtime) []int, policy func(cursor []int) sched.Policy, maxSteps int) [][]Response {
	t.Helper()
	rt := sched.New(n, nil)
	cursors := register(rt)
	rt.SetPolicy(policy(cursors))
	got := make([][]Response, n)
	for i := 0; i < n; i++ {
		i := i
		rt.Spawn(i, func(p *sched.Proc) {
			for {
				v, ok := svc.NextInv(p.ID)
				if !ok {
					return
				}
				svc.Send(p, v)
				got[i] = append(got[i], svc.Recv(p))
			}
		})
	}
	defer rt.Stop()
	rt.Run(maxSteps)
	return got
}

func TestClaim31AnyWordRealizable(t *testing.T) {
	// Claim 3.1: for every well-formed word there is an execution whose
	// input is exactly that word. The cursor construction with a prioritized
	// cursor realizes it.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		script := randomCounterWord(rng, 3, 8)
		adv := NewA(3, NewScriptSource(script))
		runPlainLoop(t, 3, adv,
			func(rt *sched.Runtime) []int { return []int{adv.Register(rt)} },
			func(cursor []int) sched.Policy { return sched.Prioritize(cursor[0], sched.RoundRobin()) },
			10_000)
		if !adv.History().Equal(script) {
			t.Fatalf("trial %d: history %v != script %v", trial, adv.History(), script)
		}
	}
}

func TestCursorStatsSnapshot(t *testing.T) {
	// The drive-state snapshot must be consistent with the cursor's public
	// accessors at every stage: fresh, fully exhibited, and after a crash.
	rng := rand.New(rand.NewSource(77))
	script := randomCounterWord(rng, 3, 8)
	adv := NewA(3, NewScriptSource(script))

	fresh := adv.CursorStats()
	if fresh != (CursorStats{}) {
		t.Fatalf("fresh cursor has non-zero stats %+v", fresh)
	}

	runPlainLoop(t, 3, adv,
		func(rt *sched.Runtime) []int { return []int{adv.Register(rt)} },
		func(cursor []int) sched.Policy { return sched.Prioritize(cursor[0], sched.RoundRobin()) },
		10_000)
	st := adv.CursorStats()
	if st.Pulled != adv.Pulled() || st.Emitted != adv.HistLen() {
		t.Errorf("stats %+v disagree with Pulled()=%d HistLen()=%d", st, adv.Pulled(), adv.HistLen())
	}
	if st.Emitted != len(script) || st.Queued != 0 || !st.Exhausted || st.CrashedProcs != 0 {
		t.Errorf("fully-exhibited run has stats %+v, want emitted=%d queued=0 exhausted", st, len(script))
	}

	adv.Crash(1)
	adv.Crash(2)
	if got := adv.CursorStats().CrashedProcs; got != 2 {
		t.Errorf("CrashedProcs = %d after two crashes", got)
	}
}

func TestCursorRespectsWordOrderUnderRandomPolicies(t *testing.T) {
	// Whatever the schedule, the emitted history is exactly the script: the
	// adversary controls the real-time order of events.
	script := word.NewB().
		Op(0, spec.OpInc, word.Unit{}, word.Unit{}).
		Op(1, spec.OpRead, word.Unit{}, word.Int(1)).
		Op(2, spec.OpRead, word.Unit{}, word.Int(1)).
		Op(0, spec.OpRead, word.Unit{}, word.Int(1)).
		Word()
	for seed := int64(0); seed < 20; seed++ {
		adv := NewA(3, NewScriptSource(script))
		runPlainLoop(t, 3, adv,
			func(rt *sched.Runtime) []int { return []int{adv.Register(rt)} },
			func(cursor []int) sched.Policy { return sched.Random(seed) },
			10_000)
		if !adv.History().Equal(script) {
			t.Fatalf("seed %d: history %v != script %v", seed, adv.History(), script)
		}
	}
}

func TestNextInvProjection(t *testing.T) {
	script := word.NewB().
		Op(0, spec.OpWrite, word.Int(1), word.Unit{}).
		Op(1, spec.OpRead, word.Unit{}, word.Int(1)).
		Op(0, spec.OpWrite, word.Int(2), word.Unit{}).
		Word()
	adv := NewA(2, NewScriptSource(script))
	v1, ok := adv.NextInv(0)
	if !ok || !v1.Val.Equal(word.Int(1)) {
		t.Fatalf("first inv of p0 = %v ok=%v", v1, ok)
	}
	v2, ok := adv.NextInv(0)
	if !ok || !v2.Val.Equal(word.Int(2)) {
		t.Fatalf("second inv of p0 = %v ok=%v", v2, ok)
	}
	if _, ok := adv.NextInv(0); ok {
		t.Error("p0 should have no third invocation")
	}
	r, ok := adv.NextInv(1)
	if !ok || r.Op != spec.OpRead {
		t.Fatalf("p1 inv = %v ok=%v", r, ok)
	}
}

func TestPendingInvocationStalls(t *testing.T) {
	// A word ending in a pending invocation leaves that process parked at
	// the receive gate; the run stalls rather than fabricating a response.
	script := word.NewB().Inv(0, spec.OpRead, word.Unit{}).Word()
	adv := NewA(1, NewScriptSource(script))
	rt := sched.New(1, nil)
	cursor := adv.Register(rt)
	rt.SetPolicy(sched.Prioritize(cursor, sched.RoundRobin()))
	rt.Spawn(0, func(p *sched.Proc) {
		v, _ := adv.NextInv(p.ID)
		adv.Send(p, v)
		adv.Recv(p)
		t.Error("Recv returned without a response in the word")
	})
	defer rt.Stop()
	if steps := rt.Run(1000); steps >= 1000 {
		t.Error("expected stall")
	}
	if len(adv.History()) != 1 {
		t.Errorf("history = %v, want just the invocation", adv.History())
	}
}

func TestTimedViewsProperties(t *testing.T) {
	// Views from an atomic-snapshot Aτ: own invocation contained, per-process
	// monotone, pairwise comparable (Appendix B's comparability property).
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 25; trial++ {
		script := randomCounterWord(rng, 3, 10)
		inner := NewA(3, NewScriptSource(script))
		tau := NewTimed(3, inner, ArrayAtomic)
		seed := rng.Int63()
		got := runPlainLoop(t, 3, tau,
			func(rt *sched.Runtime) []int { return []int{inner.Register(rt)} },
			func(cursor []int) sched.Policy { return sched.Random(seed) },
			100_000)
		var all []View
		for i, resps := range got {
			var prev *View
			for k, r := range resps {
				if r.View == nil {
					t.Fatalf("response without view: %+v", r)
				}
				if r.ID != (word.OpID{Proc: i, Idx: k}) {
					t.Fatalf("bad op id %v for proc %d op %d", r.ID, i, k)
				}
				if !r.View.Contains(r.ID) {
					t.Fatalf("view %v misses own invocation %v", r.View, r.ID)
				}
				if prev != nil && !prev.Leq(*r.View) {
					t.Fatalf("views of proc %d not monotone: %v then %v", i, prev, r.View)
				}
				prev = r.View
				all = append(all, *r.View)
			}
		}
		for a := range all {
			for b := range all {
				if !all[a].Comparable(all[b]) {
					t.Fatalf("incomparable atomic-snapshot views %v vs %v", all[a], all[b])
				}
			}
		}
	}
}

func TestTimedCountOp(t *testing.T) {
	script := word.NewB().
		Op(0, spec.OpInc, word.Unit{}, word.Unit{}).
		Op(1, spec.OpInc, word.Unit{}, word.Unit{}).
		Op(0, spec.OpRead, word.Unit{}, word.Int(2)).
		Word()
	inner := NewA(2, NewScriptSource(script))
	tau := NewTimed(2, inner, ArrayAtomic)
	got := runPlainLoop(t, 2, tau,
		func(rt *sched.Runtime) []int { return []int{inner.Register(rt)} },
		func(cursor []int) sched.Policy { return sched.Prioritize(cursor[0], sched.RoundRobin()) },
		10_000)
	last := got[0][len(got[0])-1]
	if n := tau.CountOp(*last.View, spec.OpInc); n != 2 {
		t.Errorf("CountOp(inc) = %d in %v, want 2", n, last.View)
	}
	if n := tau.CountOp(*last.View, spec.OpRead); n != 1 {
		t.Errorf("CountOp(read) = %d, want 1 (own read announced before send)", n)
	}
}

func TestViewOperations(t *testing.T) {
	v := NewView([]int{2, 0, 1})
	u := NewView([]int{1, 0, 1})
	w := NewView([]int{0, 3, 0})
	if v.Total() != 3 || u.Total() != 2 {
		t.Errorf("totals: %d %d", v.Total(), u.Total())
	}
	if !u.Leq(v) || v.Leq(u) {
		t.Error("u ⊆ v expected, not conversely")
	}
	if v.Comparable(w) {
		t.Error("v and w should be incomparable")
	}
	if !v.Contains(word.OpID{Proc: 0, Idx: 1}) || v.Contains(word.OpID{Proc: 0, Idx: 2}) {
		t.Error("Contains boundary wrong")
	}
	var diff []word.OpID
	v.Diff(u, func(id word.OpID) { diff = append(diff, id) })
	if len(diff) != 1 || diff[0] != (word.OpID{Proc: 0, Idx: 1}) {
		t.Errorf("Diff = %v", diff)
	}
	if v.Key() != "2,0,1" {
		t.Errorf("Key = %q", v.Key())
	}
	if !v.Equal(NewView([]int{2, 0, 1})) || v.Equal(u) {
		t.Error("Equal broken")
	}
}

// randomCounterWord emits a random well-formed counter word over n processes
// with the given number of complete operations; a trailing pending invocation
// is never produced so runs terminate.
func randomCounterWord(rng *rand.Rand, n, ops int) word.Word {
	b := word.NewB()
	for k := 0; k < ops; k++ {
		p := rng.Intn(n)
		if rng.Intn(2) == 0 {
			b.Op(p, spec.OpInc, word.Unit{}, word.Unit{})
		} else {
			b.Op(p, spec.OpRead, word.Unit{}, word.Int(rng.Intn(5)))
		}
	}
	return b.Word()
}
