package experiment

import (
	"context"
	"fmt"
	"sync"

	"github.com/drv-go/drv/internal/monitor"
)

// The parallel experiment engine. Table 1 decomposes into independent units
// of work — one per (cell, seed, labelled source) for the possibility
// sweeps, one per impossibility construction — because every run seeds its
// own scheduling policy and allocates its own runtime, adversary and monitor
// state (no package in this module holds mutable package-level state). The
// engine fans the units onto a bounded worker pool and folds their errors
// back into cells deterministically: each cell's error is the one produced
// by the unit that comes first in the sequential plan order, so the rendered
// table is byte-identical no matter how many workers run or how they
// interleave.

// Options configures how the Table 1 plan is executed.
type Options struct {
	// Workers is the worker-pool size. Values ≤ 1 run the plan sequentially
	// on the calling goroutine, in plan order.
	Workers int
	// OnCell, when non-nil, receives one event per completed cell, as soon
	// as the cell's last unit finishes. Events are delivered serially (never
	// concurrently) but, with more than one worker, in nondeterministic cell
	// order. The callback must not call back into the engine.
	OnCell func(CellUpdate)
	// FailFast cancels all outstanding units as soon as any unit fails.
	// Cells whose units were skipped report the cancellation cause as their
	// error, so a rendered fail-fast table marks them with '!'.
	FailFast bool
	// Unpooled makes every possibility sweep allocate a fresh runtime per
	// monitored run instead of reusing its worker's pooled runtime+session
	// pair. The rendered table is byte-identical either way; the flag exists
	// for differential tests and as an escape hatch.
	Unpooled bool
}

// CellUpdate is one streaming progress event: a cell of Table 1 whose
// reproduction just finished.
type CellUpdate struct {
	// Row and Col locate the cell in the rendered table (row in paper
	// order, column 0–3 for SD, WD, PSD, PWD).
	Row, Col int
	// Cell is the completed cell, error folded in.
	Cell Cell
	// Done and Total count completed cells, including this one.
	Done, Total int
}

// cellKey addresses one cell of the plan.
type cellKey struct{ row, col int }

// unit is one independently schedulable execution of the plan. Its run
// function performs real monitored executions and returns one error slot per
// target cell (nil for success), in target order.
type unit struct {
	// ord is the unit's position in the sequential plan order; it breaks
	// ties deterministically when several units of one cell fail.
	ord  int
	name string
	// targets are the cells this unit reports into. Most units feed a
	// single cell; the impossibility constructions that prove an SD ✗ and a
	// WD ✗ at once feed two.
	targets []cellKey
	run     func(ctx context.Context, ex *exec) []error
}

// exec is the per-worker execution context: each engine worker owns one for
// its whole batch, so consecutive units reuse one pooled runtime+session pair
// instead of spawning and tearing down goroutines per monitored run.
type exec struct {
	sess *monitor.Session
}

// run executes one monitored run: on the worker's pooled session when
// pooling is on, on a dedicated runtime otherwise. The two paths produce
// byte-identical results (see monitor.Session).
func (ex *exec) run(cfg monitor.Config) *monitor.Result {
	if ex == nil || ex.sess == nil {
		return monitor.Run(cfg)
	}
	return ex.sess.Run(cfg)
}

// close releases the pooled session, if any.
func (ex *exec) close() {
	if ex != nil && ex.sess != nil {
		ex.sess.Close()
	}
}

// Run executes the full Table 1 plan under ctx and returns the rows in paper
// order. The returned error is nil when every unit ran; it reports the
// cancellation cause when ctx was cancelled (or FailFast tripped), in which
// case the skipped cells carry that cause as their Err. The rows themselves
// are always complete and renderable.
//
// Cancellation is checked at unit boundaries: units already in flight run to
// their step bound (each is bounded by Params' step limits), so a deadline
// can be overshot by the duration of the slowest in-flight units.
func Run(ctx context.Context, p Params, opts Options) ([]Row, error) {
	if p.Procs == 0 {
		p = DefaultParams()
	}
	pl := buildPlan(p)
	a := newAgg(pl, opts.OnCell)
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	execUnit := func(ex *exec, u unit) {
		var errs []error
		if cause := context.Cause(ctx); cause != nil {
			errs = make([]error, len(u.targets))
			for i := range errs {
				errs[i] = fmt.Errorf("%s skipped: %w", u.name, cause)
			}
		} else {
			errs = u.run(ctx, ex)
			if len(errs) != len(u.targets) {
				panic(fmt.Sprintf("experiment: unit %q reported %d errors for %d targets", u.name, len(errs), len(u.targets)))
			}
		}
		if cell, failed := a.record(u, errs); failed != nil && opts.FailFast {
			cancel(fmt.Errorf("fail-fast: %s × %s: %w", cell.Lang, cell.Class, failed))
		}
	}

	execs := make([]*exec, WorkerCount(len(pl.units), opts.Workers))
	for w := range execs {
		execs[w] = &exec{}
		if !opts.Unpooled {
			execs[w].sess = monitor.NewSession()
		}
	}
	defer func() {
		for _, ex := range execs {
			ex.close()
		}
	}()
	ForEachWorker(len(pl.units), opts.Workers, func(w, i int) { execUnit(execs[w], pl.units[i]) })
	return a.rows, context.Cause(ctx)
}

// WorkerCount normalizes a requested pool size against the work size: at
// least one worker, at most one per unit of work. It is exactly the worker
// count ForEachWorker uses, so callers that allocate per-worker state (one
// pooled runtime+session pair per worker) size their slice with it and index
// it safely with the worker ids fn receives.
func WorkerCount(total, workers int) int {
	if workers < 1 || total < 1 {
		return 1
	}
	if workers > total {
		return total
	}
	return workers
}

// ForEach runs fn(i) for every index in [0, total) on a bounded worker pool
// of the given size; values ≤ 1 run the indices sequentially on the calling
// goroutine, in order. It returns when every call has finished. ForEach is
// the engine's scheduling core, exported so that other independent-unit
// workloads — the scenario explorer fans its random executions through it —
// reuse the same pool discipline: indices are dispatched in order, results
// must be folded by index (not completion order) for deterministic output,
// and fn must confine its writes to per-index state or its own
// synchronization.
func ForEach(total, workers int, fn func(i int)) {
	ForEachWorker(total, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with worker identity: fn receives the stable
// index w (0 ≤ w < WorkerCount(total, workers)) of the worker running it, so
// callers can give each worker exclusive per-batch state — a pooled
// runtime+session pair — without locking. With workers ≤ 1 every index runs
// on the calling goroutine as worker 0.
func ForEachWorker(total, workers int, fn func(worker, i int)) {
	p := NewPool(WorkerCount(total, workers))
	defer p.Close()
	p.Run(total, fn)
}

// Pool is a reusable bounded worker pool: the worker goroutines persist
// across Run batches, so round-structured workloads — the explorer's guided
// exploration runs one batch per round, growing its corpus between rounds —
// pay goroutine startup once per sweep instead of once per round, and
// per-worker state (a pooled runtime+session pair indexed by the worker id
// fn receives) stays owned by the same workers for the pool's whole life.
// ForEachWorker is the one-batch convenience wrapper.
type Pool struct {
	workers int
	jobs    chan func(worker int)
	wg      sync.WaitGroup
}

// NewPool starts a pool of the given size. Sizes ≤ 1 yield an inline pool
// that runs every batch on the calling goroutine as worker 0 and spawns
// nothing. Close releases the workers.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers == 1 {
		return p
	}
	p.jobs = make(chan func(worker int))
	for w := 0; w < workers; w++ {
		w := w
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.jobs {
				fn(w)
			}
		}()
	}
	return p
}

// Workers returns the pool size: the exclusive upper bound of the worker ids
// Run passes to fn, so callers size per-worker state slices with it.
func (p *Pool) Workers() int { return p.workers }

// Run dispatches indices 0..total−1 onto the pool and blocks until every
// call has finished. Indices are dispatched in order; as with ForEach,
// results must be folded by index (not completion order) for deterministic
// output, and fn must confine its writes to per-index or per-worker state.
func (p *Pool) Run(total int, fn func(worker, i int)) {
	if p.jobs == nil {
		for i := 0; i < total; i++ {
			fn(0, i)
		}
		return
	}
	var batch sync.WaitGroup
	batch.Add(total)
	for i := 0; i < total; i++ {
		i := i
		p.jobs <- func(w int) {
			defer batch.Done()
			fn(w, i)
		}
	}
	batch.Wait()
}

// Close shuts the worker goroutines down and waits for them to exit. The
// pool must not be used afterwards; Close is idempotent.
func (p *Pool) Close() {
	if p.jobs != nil {
		close(p.jobs)
		p.wg.Wait()
		p.jobs = nil
	}
}

// agg folds unit errors back into cells. All mutation happens under mu, so
// OnCell events are serialized and Done counts are consistent.
type agg struct {
	mu      sync.Mutex
	rows    []Row
	pending map[cellKey]int
	best    map[cellKey]ordErr
	done    int
	total   int
	onCell  func(CellUpdate)
}

// ordErr is a candidate cell error tagged with its unit's plan order; the
// lowest ord wins, reproducing the error the sequential sweep would return.
type ordErr struct {
	ord int
	err error
}

func newAgg(pl *plan, onCell func(CellUpdate)) *agg {
	a := &agg{
		rows:    pl.rows,
		pending: make(map[cellKey]int),
		best:    make(map[cellKey]ordErr),
		onCell:  onCell,
	}
	for _, u := range pl.units {
		for _, k := range u.targets {
			a.pending[k]++
		}
	}
	a.total = len(a.pending)
	return a
}

// record folds one finished unit in and fires completion events for any cell
// whose last unit this was. It returns the unit's first non-nil error along
// with a copy of the cell it hit (for fail-fast reporting), or a nil error.
// The copy is taken under a.mu: callers must not touch a.rows directly while
// other workers are still recording.
func (a *agg) record(u unit, errs []error) (Cell, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var failed error
	var failedAt Cell
	for i, k := range u.targets {
		if errs[i] != nil {
			if failed == nil {
				failed, failedAt = errs[i], a.rows[k.row].Cells[k.col]
			}
			if b, ok := a.best[k]; !ok || u.ord < b.ord {
				a.best[k] = ordErr{ord: u.ord, err: errs[i]}
			}
		}
		a.pending[k]--
		if a.pending[k] == 0 {
			a.rows[k.row].Cells[k.col].Err = a.best[k].err
			a.done++
			if a.onCell != nil {
				a.onCell(CellUpdate{
					Row:   k.row,
					Col:   k.col,
					Cell:  a.rows[k.row].Cells[k.col],
					Done:  a.done,
					Total: a.total,
				})
			}
		}
	}
	return failedAt, failed
}
