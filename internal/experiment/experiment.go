// Package experiment implements the paper's proofs as executable,
// machine-checked constructions. Possibility cells of Table 1 run the
// concrete monitors of Figures 5, 8 and 9 against labelled behaviours and
// judge them with the decidability predicates of package core. Impossibility
// cells are reproduced constructively: the experiments build the exact
// execution pairs from the proofs — indistinguishable to every process yet
// exhibiting words with different language membership — run real monitors on
// both, and verify that the recorded per-process observation streams are
// identical, so the verdict streams coincide and the claimed decidability
// predicate cannot hold. Each ✗ cell reports its witness words.
//
// The constructions are:
//
//   - Lemma 5.1: the almost-synchronous write/read swap for LIN_REG and
//     SC_REG (lemma51.go).
//   - Lemma 5.2 / Lemma 6.2: the prefix-extension attack that turns any
//     early NO into a false negative on an in-language continuation
//     (prefix.go), with the tight-execution variant closing the predictive
//     escape clause.
//   - Theorem 5.2: the shuffle walk — a chain of execution triples realizing
//     Claim 5.1, dragging a safety-consistent prefix to a violating shuffle
//     one transposition at a time (walk.go).
//   - Lemma 6.5: the adaptive alternation attack on the eventually
//     consistent ledger (lemma65.go).
//   - Table 1: the 7×4 harness assembling all of the above (table1.go).
package experiment

import (
	"fmt"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/word"
)

// ItemKind distinguishes schedule items.
type ItemKind uint8

const (
	// Block schedules a process until it parks at an un-granted adversary
	// gate (or exits): the process performs all its pending local and
	// shared-memory computation.
	Block ItemKind = iota + 1
	// Emit schedules the adversary cursor for one step: the next symbol of
	// the word is emitted, which is the corresponding send or receive event.
	Emit
)

// Item is one element of an execution schedule.
type Item struct {
	Kind ItemKind
	// Proc is the process to block (Block), or the expected owner of the
	// emitted symbol (Emit) — verified at run time so construction bugs
	// cannot silently produce a different execution than intended.
	Proc int
}

// String renders the item compactly, e.g. "B0" or "E1".
func (it Item) String() string {
	switch it.Kind {
	case Block:
		return fmt.Sprintf("B%d", it.Proc)
	case Emit:
		return fmt.Sprintf("E%d", it.Proc)
	}
	return "?"
}

// Schedule is a fully explicit execution plan: the sequence of process
// blocks and cursor emissions that realizes one of the proofs' executions.
type Schedule []Item

// Canonical returns the schedule that realizes the word in the most
// sequential way, as in the proof of Claim 3.1: before every symbol its
// owner runs to its gate, then the symbol is emitted; trailing blocks let
// every process finish. The resulting execution is tight — each process
// executes its send and receive phases with no other symbols in between
// except those the word itself interleaves.
func Canonical(w word.Word, n int) Schedule {
	sch := make(Schedule, 0, 2*len(w)+n)
	for _, s := range w {
		sch = append(sch, Item{Block, s.Proc}, Item{Emit, s.Proc})
	}
	for p := 0; p < n; p++ {
		sch = append(sch, Item{Block, p})
	}
	return sch
}

// director is the policy used by scheduled runs: it always picks the target
// actor, which the driver guarantees is runnable.
type director struct{ target int }

func (d *director) Next([]int, int) int { return d.target }

// ScheduledRun executes the monitor against the plain adversary A exhibiting
// w, with every step placed by the schedule. It returns the run result and
// an error if the schedule was inconsistent with the word (an Emit whose
// symbol owner mismatched or whose owner was not parked at the right gate).
func ScheduledRun(m monitor.Monitor, n int, w word.Word, sch Schedule) (*monitor.Result, error) {
	adv := adversary.NewA(n, adversary.NewScriptSource(w))
	return scheduledRun(m, n, adv, func(rt *sched.Runtime) (adversary.Service, []int) {
		return adv, []int{adv.Register(rt)}
	}, sch)
}

// ScheduledTimedRun is ScheduledRun against the timed adversary Aτ wrapping
// A. The returned Timed service gives access to views and the inner history.
func ScheduledTimedRun(mk func(tau *adversary.Timed) monitor.Monitor, n int, w word.Word, kind adversary.ArrayKind, sch Schedule) (*monitor.Result, *adversary.Timed, error) {
	adv := adversary.NewA(n, adversary.NewScriptSource(w))
	tau := adversary.NewTimed(n, adv, kind)
	res, err := scheduledRun(mk(tau), n, adv, func(rt *sched.Runtime) (adversary.Service, []int) {
		return tau, []int{adv.Register(rt)}
	}, sch)
	return res, tau, err
}

func scheduledRun(m monitor.Monitor, n int, adv *adversary.A, newSvc func(rt *sched.Runtime) (adversary.Service, []int), sch Schedule) (*monitor.Result, error) {
	dir := &director{}
	var cursorID int
	var schedErr error
	res := monitor.Run(monitor.Config{
		N:       n,
		Monitor: m,
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			svc, aux := newSvc(rt)
			cursorID = aux[0]
			return svc, aux
		},
		Policy: func([]int) sched.Policy { return dir },
		Drive: func(rt *sched.Runtime) {
			parked := func(p int) bool {
				return adv.WaitingSend(p) || adv.WaitingRecv(p)
			}
			for k, it := range sch {
				switch it.Kind {
				case Block:
					for !parked(it.Proc) && !rt.Exited(it.Proc) {
						dir.target = it.Proc
						if !rt.Step() {
							schedErr = fmt.Errorf("experiment: runtime stalled at schedule item %d (%v)", k, it)
							return
						}
					}
				case Emit:
					next, ok := adv.Peek()
					if !ok {
						schedErr = fmt.Errorf("experiment: schedule item %d (%v) emits but the word is exhausted", k, it)
						return
					}
					if next.Proc != it.Proc {
						schedErr = fmt.Errorf("experiment: schedule item %d expects a symbol of process %d but the word's next symbol is %v", k, it.Proc, next)
						return
					}
					if (next.Kind == word.Inv && !adv.WaitingSend(next.Proc)) ||
						(next.Kind == word.Res && !adv.WaitingRecv(next.Proc)) {
						schedErr = fmt.Errorf("experiment: schedule item %d emits %v but its owner is not parked at the matching gate", k, next)
						return
					}
					dir.target = cursorID
					if !rt.Step() {
						schedErr = fmt.Errorf("experiment: runtime stalled emitting at schedule item %d", k)
						return
					}
				}
			}
		},
	})
	if schedErr != nil {
		return nil, schedErr
	}
	return res, nil
}

// Observations is the complete view one process has of an execution: the
// invocations it sent, the responses (with identifiers and views) it
// received, and the verdicts it reported. Two executions are
// indistinguishable to a process exactly when its Observations coincide —
// deterministic monitors then necessarily report the same verdicts.
type Observations struct {
	Invs      []word.Symbol
	Responses []adversary.Response
	Verdicts  []monitor.Verdict
}

// Observe extracts process p's observations from a run.
func Observe(res *monitor.Result, p int) Observations {
	return Observations{
		Invs:      res.Invs[p],
		Responses: res.Responses[p],
		Verdicts:  res.Verdicts[p],
	}
}

// Equal reports whether two observation streams are identical.
func (o Observations) Equal(q Observations) bool {
	if len(o.Invs) != len(q.Invs) || len(o.Responses) != len(q.Responses) || len(o.Verdicts) != len(q.Verdicts) {
		return false
	}
	for i := range o.Invs {
		if !o.Invs[i].Equal(q.Invs[i]) {
			return false
		}
	}
	for i := range o.Responses {
		a, b := o.Responses[i], q.Responses[i]
		if !a.Sym.Equal(b.Sym) || a.ID != b.ID {
			return false
		}
		switch {
		case a.View == nil && b.View == nil:
		case a.View == nil || b.View == nil:
			return false
		default:
			if !a.View.Equal(*b.View) {
				return false
			}
		}
	}
	for i := range o.Verdicts {
		if o.Verdicts[i] != q.Verdicts[i] {
			return false
		}
	}
	return true
}

// Indistinguishable reports whether two runs are indistinguishable to every
// process (E ≡ F): all per-process observation streams coincide. firstDiff
// names the first differing process, or −1.
func Indistinguishable(a, b *monitor.Result) (ok bool, firstDiff int) {
	n := len(a.Verdicts)
	if len(b.Verdicts) != n {
		return false, 0
	}
	for p := 0; p < n; p++ {
		if !Observe(a, p).Equal(Observe(b, p)) {
			return false, p
		}
	}
	return true, -1
}
