package experiment

import (
	"fmt"

	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/word"
)

// The shuffle walk realizes the proof of Theorem 5.2 (via Claim 5.1): given a
// finite prefix α that is safety-consistent with a language and a shuffle α′
// of α's projections that violates it, the walk drags α to α′ one adjacent
// transposition at a time. Every transposition is justified by an execution
// triple (E, F, E″):
//
//	E  — the canonical execution exhibiting the current word;
//	F  — the same word with one process's computation block moved earlier:
//	     the inputs x(E) = x(F) coincide, so any decidability predicate P
//	     judges E and F identically (they exhibit the same behaviour);
//	E″ — F's schedule with the two adjacent symbols emitted in the opposite
//	     order: F ≡ E″ (identical per-process observations), so the verdicts
//	     coincide, yet x(E″) is the transposed word.
//
// Chaining the triples links the verdict behaviour on α to that on α′ even
// though membership differs — the contradiction that proves every
// P-decidable language real-time oblivious.

// WalkStep records the machine-checked facts of one transposition.
type WalkStep struct {
	// From and To are the words before and after the transposition; To is
	// From with the symbols at Pos and Pos+1 swapped.
	From, To word.Word
	// Pos is the index of the transposed pair.
	Pos int
	// InputsEqual reports x(E) == x(F).
	InputsEqual bool
	// FEquivE2 reports F ≡ E″ (all processes observed identical streams).
	FEquivE2 bool
	// DiffProc is the first process distinguishing F from E″, or −1.
	DiffProc int
}

// Walk is the full chained construction.
type Walk struct {
	// Alpha is the start prefix (safety-consistent).
	Alpha word.Word
	// Target is the violating shuffle.
	Target word.Word
	// Steps are the verified transpositions, in order.
	Steps []WalkStep
}

// transpositionChain returns the sequence of adjacent-transposition positions
// that transforms from into to, where to is a shuffle of from's per-process
// projections. It bubbles the symbol required at each position leftward.
// Positions refer to the evolving word.
func transpositionChain(from, to word.Word) ([]int, error) {
	if len(from) != len(to) {
		return nil, fmt.Errorf("experiment: shuffle length mismatch %d vs %d", len(from), len(to))
	}
	cur := from.Clone()
	var chain []int
	for i := range to {
		// Find to[i] in cur[i:]: the first symbol equal to it that preserves
		// per-process order (the first occurrence works because projections
		// agree).
		j := -1
		for k := i; k < len(cur); k++ {
			if cur[k].Equal(to[i]) {
				j = k
				break
			}
		}
		if j < 0 {
			return nil, fmt.Errorf("experiment: %v is not a shuffle companion of the word (symbol %v missing)", to, to[i])
		}
		for ; j > i; j-- {
			if cur[j-1].Proc == cur[j].Proc {
				return nil, fmt.Errorf("experiment: transposition at %d would swap two symbols of process %d — target is not a projection-preserving shuffle", j-1, cur[j-1].Proc)
			}
			cur[j-1], cur[j] = cur[j], cur[j-1]
			chain = append(chain, j-1)
		}
	}
	return chain, nil
}

// moveBlockBack returns the canonical schedule of w with the block of the
// symbol at pos+1 moved before the block of the symbol at pos — the F
// construction of Claim 5.1. The canonical schedule is [B(s0) E(s0) B(s1)
// E(s1) …]; entries 2k/2k+1 belong to symbol k.
func moveBlockBack(w word.Word, n, pos int) Schedule {
	sch := Canonical(w, n)
	// Items: block of w[pos] at 2pos, emit at 2pos+1, block of w[pos+1] at
	// 2pos+2, emit at 2pos+3. Move item 2pos+2 before 2pos.
	moved := sch[2*pos+2]
	out := make(Schedule, 0, len(sch))
	out = append(out, sch[:2*pos]...)
	out = append(out, moved)                 // B(p_i) first
	out = append(out, sch[2*pos:2*pos+2]...) // then B(p_j) E(v)
	out = append(out, sch[2*pos+3:]...)      // then E(v′) and the rest
	return out
}

// swapEmits returns the schedule with the Emit annotations of the two
// adjacent symbols swapped, matching the transposed word's emission order.
func swapEmits(sch Schedule, pos int) Schedule {
	// After moveBlockBack the layout around the pair is:
	// … B(p_i) B(p_j) E(v) E(v′) … with E(v) at index 2pos+2 and E(v′) at
	// 2pos+3.
	out := append(Schedule(nil), sch...)
	out[2*pos+2], out[2*pos+3] = out[2*pos+3], out[2*pos+2]
	return out
}

// transpose returns w with positions pos and pos+1 swapped.
func transpose(w word.Word, pos int) word.Word {
	out := w.Clone()
	out[pos], out[pos+1] = out[pos+1], out[pos]
	return out
}

// RunWalk performs the full walk from alpha to target against the monitor,
// verifying every triple. It fails fast on the first construction error or
// unverified fact.
func RunWalk(m monitor.Monitor, n int, alpha, target word.Word) (*Walk, error) {
	chain, err := transpositionChain(alpha, target)
	if err != nil {
		return nil, err
	}
	walk := &Walk{Alpha: alpha.Clone(), Target: target.Clone()}
	cur := alpha.Clone()
	for _, pos := range chain {
		step, err := runWalkStep(m, n, cur, pos)
		if err != nil {
			return nil, fmt.Errorf("walk step at %d over %v: %w", pos, cur, err)
		}
		walk.Steps = append(walk.Steps, *step)
		if !step.InputsEqual {
			return walk, fmt.Errorf("walk step at %d: x(E) ≠ x(F), the block move changed the input", pos)
		}
		if !step.FEquivE2 {
			return walk, fmt.Errorf("walk step at %d: F ≢ E″ (process %d distinguishes them)", pos, step.DiffProc)
		}
		cur = step.To
	}
	if !cur.Equal(target) {
		return walk, fmt.Errorf("walk ended at %v, not the target %v", cur, target)
	}
	return walk, nil
}

// runWalkStep builds and checks one (E, F, E″) triple.
func runWalkStep(m monitor.Monitor, n int, w word.Word, pos int) (*WalkStep, error) {
	if w[pos].Proc == w[pos+1].Proc {
		return nil, fmt.Errorf("experiment: cannot transpose two symbols of process %d", w[pos].Proc)
	}
	resE, err := ScheduledRun(m, n, w, Canonical(w, n))
	if err != nil {
		return nil, fmt.Errorf("execution E: %w", err)
	}
	schF := moveBlockBack(w, n, pos)
	resF, err := ScheduledRun(m, n, w, schF)
	if err != nil {
		return nil, fmt.Errorf("execution F: %w", err)
	}
	w2 := transpose(w, pos)
	resE2, err := ScheduledRun(m, n, w2, swapEmits(schF, pos))
	if err != nil {
		return nil, fmt.Errorf("execution E″: %w", err)
	}
	equiv, diff := Indistinguishable(resF, resE2)
	return &WalkStep{
		From:        w.Clone(),
		To:          w2,
		Pos:         pos,
		InputsEqual: resE.History.Equal(resF.History),
		FEquivE2:    equiv,
		DiffProc:    diff,
	}, nil
}
