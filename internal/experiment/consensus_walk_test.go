package experiment

import (
	"testing"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/core"
	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// TestWalkAgainstConsensusMonitor runs the Theorem 5.2 chain against the
// consensus-order monitor: the characterization claims the impossibility for
// ANY primitive power, so the walk's indistinguishability facts must hold
// for a monitor deciding global operation orders through CAS-based
// consensus just as for the read/write baseline.
func TestWalkAgainstConsensusMonitor(t *testing.T) {
	alpha := core.AppendixAWitness(3)
	wit := core.FindRTOWitness(lang.LinLed().SafetyViolated, alpha, 3)
	if wit == nil {
		t.Fatal("no RTO witness on the Appendix A word")
	}
	m := monitor.NewConsensusOrder(spec.Ledger(), adversary.ArrayAtomic)
	walk, err := RunWalk(m, 3, wit.Alpha, wit.Shuffled)
	if err != nil {
		t.Fatalf("walk failed against the consensus monitor: %v", err)
	}
	for i, step := range walk.Steps {
		if !step.InputsEqual || !step.FEquivE2 {
			t.Errorf("step %d: inputs-equal=%v F≡E″=%v", i, step.InputsEqual, step.FEquivE2)
		}
	}
}

// TestWalkChainConnectsEndpoints verifies the chain's endpoints: the first
// step starts at alpha, the last ends at the violating shuffle, and every
// intermediate To equals the next From — the ordering that lets the paper
// conclude x(E0) ∈ L ⟺ x(E2x) ∈ L for decidable languages.
func TestWalkChainConnectsEndpoints(t *testing.T) {
	b := word.NewB()
	b.Op(0, spec.OpWrite, word.Int(1), word.Unit{})
	b.Op(1, spec.OpRead, nil, word.Int(1))
	alpha := b.Word()
	b2 := word.NewB()
	b2.Op(1, spec.OpRead, nil, word.Int(1))
	b2.Op(0, spec.OpWrite, word.Int(1), word.Unit{})
	target := b2.Word()

	walk, err := RunWalk(monitor.Constant(monitor.Yes), 2, alpha, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(walk.Steps) == 0 {
		t.Fatal("no steps")
	}
	if !walk.Steps[0].From.Equal(alpha) {
		t.Error("chain does not start at alpha")
	}
	if !walk.Steps[len(walk.Steps)-1].To.Equal(target) {
		t.Error("chain does not end at the target shuffle")
	}
	for i := 1; i < len(walk.Steps); i++ {
		if !walk.Steps[i].From.Equal(walk.Steps[i-1].To) {
			t.Errorf("chain broken between steps %d and %d", i-1, i)
		}
	}
}
