package experiment

import (
	"context"
	"fmt"
	"strings"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/core"
	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// Params sizes the Table 1 harness. The defaults keep the whole table under
// a minute; larger values sharpen the finite-run proxies for the ω-word
// quantifiers.
type Params struct {
	// Procs is the monitor process count for possibility cells.
	Procs int
	// Seeds are the scheduling seeds each possibility cell sweeps.
	Seeds []int64
	// Steps bounds untimed possibility runs; TimedSteps the predictive
	// monitors (whose per-round check grows with history); SCSteps the
	// sequential-consistency monitors (exponential search, shortest runs).
	Steps, TimedSteps, SCSteps int
	// Window is the verdict-tail length interpreting "finitely many NOs".
	Window int
	// SwapRounds sizes the Lemma 5.1 construction; AttackRounds the bad
	// prefix of the prefix-extension attacks; Stages the Lemma 6.5
	// alternation count.
	SwapRounds, AttackRounds, Stages int
}

// DefaultParams returns the harness defaults.
func DefaultParams() Params {
	return Params{
		Procs:        3,
		Seeds:        []int64{1, 2},
		Steps:        30_000,
		TimedSteps:   4_000,
		SCSteps:      1_500,
		Window:       4,
		SwapRounds:   8,
		AttackRounds: 6,
		Stages:       3,
	}
}

// ShortParams returns a shrunk parameter set for quick runs (go test -short
// and smoke tests): one seed, shorter step bounds, smaller constructions.
// Every cell still reproduces — the whole table runs in well under a second
// — but the finite-run proxies for the ω-word quantifiers are coarser, and
// only seed 1 is swept (seed 2 needs longer runs for the PWD proxies).
func ShortParams() Params {
	return Params{
		Procs:        3,
		Seeds:        []int64{1},
		Steps:        3_000,
		TimedSteps:   600,
		SCSteps:      300,
		Window:       4,
		SwapRounds:   3,
		AttackRounds: 3,
		Stages:       2,
	}
}

// Cell is one entry of Table 1.
type Cell struct {
	// Lang and Class locate the cell.
	Lang  string
	Class core.Class
	// Expected is the paper's claim: true = decidable (✓).
	Expected bool
	// Method names the construction that reproduces the cell.
	Method string
	// Evidence is a one-line summary of what was checked.
	Evidence string
	// Err is non-nil when the reproduction failed.
	Err error
}

// OK reports whether the cell was reproduced.
func (c Cell) OK() bool { return c.Err == nil }

// Mark renders ✓/✗ as in Table 1.
func (c Cell) Mark() string {
	if c.Expected {
		return "✓"
	}
	return "✗"
}

// Row is one language row of Table 1.
type Row struct {
	Lang  string
	Cells [4]Cell // SD, WD, PSD, PWD
}

// Table1 reproduces every cell of Table 1 sequentially and returns the rows
// in paper order. It is Run with a single worker and no cancellation; use
// Run directly for the parallel engine, progress streaming and fail-fast.
func Table1(p Params) []Row {
	rows, _ := Run(context.Background(), p, Options{})
	return rows
}

// plan is the fully laid-out Table 1: static cell metadata in rows, and the
// executable units that reproduce the cells. Building the plan performs no
// monitored executions; the engine (engine.go) runs the units.
type plan struct {
	p     Params
	rows  []Row
	units []unit
}

// buildPlan lays out every cell of Table 1.
func buildPlan(p Params) *plan {
	t := &plan{p: p}
	t.registerRow(lang.LinReg(), true)
	t.registerRow(lang.SCReg(), false)
	t.ledgerRow(lang.LinLed(), true)
	t.ledgerRow(lang.SCLed(), false)
	t.ecLedRow()
	t.wecRow()
	t.secRow()
	return t
}

// newRow appends an empty row and returns its index.
func (t *plan) newRow(name string) int {
	t.rows = append(t.rows, Row{Lang: name})
	return len(t.rows) - 1
}

// setCell fills one cell's static metadata and returns its key.
func (t *plan) setCell(row, col int, lang string, class core.Class, expected bool, method, evidence string) cellKey {
	t.rows[row].Cells[col] = Cell{Lang: lang, Class: class, Expected: expected, Method: method, Evidence: evidence}
	return cellKey{row, col}
}

// add appends a unit in plan order.
func (t *plan) add(name string, targets []cellKey, run func(ctx context.Context, ex *exec) []error) {
	t.units = append(t.units, unit{ord: len(t.units), name: name, targets: targets, run: run})
}

// ---------------------------------------------------------------- running

// runUntimed executes a monitor against A exhibiting the source's word, on
// the worker's pooled runtime when ex carries one.
func runUntimed(ex *exec, p Params, m monitor.Monitor, src adversary.Source, seed int64, steps int) *monitor.Result {
	adv := adversary.NewA(p.Procs, src)
	return ex.run(monitor.Config{
		N:       p.Procs,
		Monitor: m,
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			return adv, []int{adv.Register(rt)}
		},
		Policy: func(aux []int) sched.Policy {
			return sched.Biased(seed, aux[0], 0.5)
		},
		MaxSteps: steps,
	})
}

// runTimed executes a monitor factory against Aτ wrapping A, on the worker's
// pooled runtime when ex carries one.
func runTimed(ex *exec, p Params, mk func(tau *adversary.Timed) monitor.Monitor, src adversary.Source, seed int64, steps int) (*monitor.Result, *adversary.Timed) {
	adv := adversary.NewA(p.Procs, src)
	tau := adversary.NewTimed(p.Procs, adv, adversary.ArrayAtomic)
	res := ex.run(monitor.Config{
		N:       p.Procs,
		Monitor: mk(tau),
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			return tau, []int{adv.Register(rt)}
		},
		Policy: func(aux []int) sched.Policy {
			return sched.Biased(seed, aux[0], 0.5)
		},
		MaxSteps: steps,
	})
	return res, tau
}

// sweepUntimed emits one unit per (seed, labelled source): each unit runs a
// freshly built untimed monitor against the source and judges it under the
// class's predicate. Every unit allocates its own monitor, adversary and
// runtime, so units are safe to run concurrently.
func (t *plan) sweepUntimed(cell cellKey, mk func() monitor.Monitor, l lang.Lang, class core.Class, steps int) {
	for _, seed := range t.p.Seeds {
		for _, lb := range l.Sources(t.p.Procs, seed) {
			t.add(fmt.Sprintf("%s × %s seed %d source %s", l.Name, class, seed, lb.Name), []cellKey{cell},
				func(_ context.Context, ex *exec) []error {
					res := runUntimed(ex, t.p, mk(), lb.New(), seed, steps)
					ev := core.Eval{Class: class, Window: t.p.Window}
					if err := ev.Check(res, lb.In); err != nil {
						return []error{fmt.Errorf("seed %d source %s: %w", seed, lb.Name, err)}
					}
					return []error{nil}
				})
		}
	}
}

// sweepTimed emits one unit per (seed, labelled source) judging a timed
// monitor factory, with the sketch escape clause evaluated by sketchBad.
func (t *plan) sweepTimed(cell cellKey, mk func(tau *adversary.Timed) monitor.Monitor, l lang.Lang, class core.Class, steps int, sketchBad func(sk word.Word) bool) {
	for _, seed := range t.p.Seeds {
		for _, lb := range l.Sources(t.p.Procs, seed) {
			t.add(fmt.Sprintf("%s × %s seed %d source %s", l.Name, class, seed, lb.Name), []cellKey{cell},
				func(_ context.Context, ex *exec) []error {
					res, tau := runTimed(ex, t.p, mk, lb.New(), seed, steps)
					ev := core.Eval{Class: class, Window: t.p.Window, SketchViolated: func() bool {
						sk, err := res.Sketch(t.p.Procs, tau.InvAt)
						if err != nil {
							return false
						}
						return sketchBad(sk)
					}}
					if err := ev.Check(res, lb.In); err != nil {
						return []error{fmt.Errorf("seed %d source %s: %w", seed, lb.Name, err)}
					}
					return []error{nil}
				})
		}
	}
}

// ---------------------------------------------------------------- rows

// registerRow lays out the LIN_REG or SC_REG row (lin selects which).
func (t *plan) registerRow(l lang.Lang, lin bool) {
	row := t.newRow(l.Name)

	// SD ✗ and WD ✗: the Lemma 5.1 swap defeats both an order-free monitor
	// and one wielding unbounded consensus power. One unit per monitor; both
	// feed both cells, and the lowest plan order wins, so a naive-order
	// failure is reported over a consensus-order one as in a sequential
	// sweep.
	evidence := "Lemma 5.1 swap: E≡F, x(E)∈L, x(F)∉L, against order-free and consensus-powered monitors"
	sd := t.setCell(row, 0, l.Name, core.SD, false, "Lemma 5.1", evidence)
	wd := t.setCell(row, 1, l.Name, core.WD, false, "Lemma 5.1", evidence)
	for _, mkM := range []func() monitor.Monitor{
		func() monitor.Monitor { return monitor.NewNaiveOrder(spec.Register(), adversary.ArrayAtomic) },
		func() monitor.Monitor { return monitor.NewConsensusOrder(spec.Register(), adversary.ArrayAtomic) },
	} {
		t.add(l.Name+" Lemma 5.1 swap", []cellKey{sd, wd}, func(_ context.Context, _ *exec) []error {
			m := mkM()
			var err error
			if e := (Lemma51{Rounds: t.p.SwapRounds}).Verify(m); e != nil {
				err = fmt.Errorf("%s: %w", m.Name(), e)
			}
			return []error{err, err}
		})
	}

	// PSD ✓ and PWD ✓: Figure 8 with the LIN or SC check.
	steps := t.p.TimedSteps
	mk := func(tau *adversary.Timed) monitor.Monitor {
		return monitor.NewLin(spec.Register(), tau, adversary.ArrayAtomic)
	}
	if !lin {
		steps = t.p.SCSteps
		mk = func(tau *adversary.Timed) monitor.Monitor {
			return monitor.NewSC(spec.Register(), tau, adversary.ArrayAtomic)
		}
	}
	sketchBad := func(sk word.Word) bool { return l.SafetyViolated(sk) }
	psd := t.setCell(row, 2, l.Name, core.PSD, true, "Figure 8", "V_O over labelled sources, PSD predicate with sketch escape")
	t.sweepTimed(psd, mk, l, core.PSD, steps, sketchBad)
	pwd := t.setCell(row, 3, l.Name, core.PWD, true, "Figure 8", "V_O over labelled sources, PWD predicate")
	t.sweepTimed(pwd, mk, l, core.PWD, steps, sketchBad)
}

// ledgerRow lays out the LIN_LED or SC_LED row.
func (t *plan) ledgerRow(l lang.Lang, lin bool) {
	row := t.newRow(l.Name)

	// SD ✗ and WD ✗ via Theorem 5.2: the Appendix A witness word is not
	// real-time oblivious, and the shuffle walk realizes the proof's
	// execution chain against a concrete monitor.
	evidence := "Appendix A witness + Theorem 5.2 shuffle walk (E,F,E″ triples verified)"
	sd := t.setCell(row, 0, l.Name, core.SD, false, "Thm 5.2", evidence)
	wd := t.setCell(row, 1, l.Name, core.WD, false, "Thm 5.2", evidence)
	t.add(l.Name+" Theorem 5.2 walk", []cellKey{sd, wd}, func(_ context.Context, _ *exec) []error {
		alpha := core.AppendixAWitness(t.p.Procs)
		wit := core.FindRTOWitness(l.SafetyViolated, alpha, t.p.Procs)
		var err error
		if wit == nil {
			err = fmt.Errorf("no RTO witness found for %s on the Appendix A word", l.Name)
		} else {
			_, err = RunWalk(monitor.NewNaiveOrder(spec.Ledger(), adversary.ArrayAtomic), t.p.Procs, wit.Alpha, wit.Shuffled)
		}
		return []error{err, err}
	})

	steps := t.p.TimedSteps
	mk := func(tau *adversary.Timed) monitor.Monitor {
		return monitor.NewLin(spec.Ledger(), tau, adversary.ArrayAtomic)
	}
	if !lin {
		steps = t.p.SCSteps
		mk = func(tau *adversary.Timed) monitor.Monitor {
			return monitor.NewSC(spec.Ledger(), tau, adversary.ArrayAtomic)
		}
	}
	sketchBad := func(sk word.Word) bool { return l.SafetyViolated(sk) }
	psd := t.setCell(row, 2, l.Name, core.PSD, true, "Figure 8", "V_O over labelled sources, PSD predicate with sketch escape")
	t.sweepTimed(psd, mk, l, core.PSD, steps, sketchBad)
	pwd := t.setCell(row, 3, l.Name, core.PWD, true, "Figure 8", "V_O over labelled sources, PWD predicate")
	t.sweepTimed(pwd, mk, l, core.PWD, steps, sketchBad)
}

// ecLedRow lays out the EC_LED row: undecidable everywhere.
func (t *plan) ecLedRow() {
	l := lang.ECLed()
	row := t.newRow(l.Name)

	evidence := "Appendix A witness + Theorem 5.2 shuffle walk"
	sd := t.setCell(row, 0, l.Name, core.SD, false, "Thm 5.2", evidence)
	wd := t.setCell(row, 1, l.Name, core.WD, false, "Thm 5.2", evidence)
	t.add(l.Name+" Theorem 5.2 walk", []cellKey{sd, wd}, func(_ context.Context, _ *exec) []error {
		alpha := core.AppendixAWitness(t.p.Procs)
		wit := core.FindRTOWitness(l.SafetyViolated, alpha, t.p.Procs)
		var err error
		if wit == nil {
			err = fmt.Errorf("no RTO witness found for %s on the Appendix A word", l.Name)
		} else {
			_, err = RunWalk(monitor.NewECLed(adversary.ArrayAtomic), t.p.Procs, wit.Alpha, wit.Shuffled)
		}
		return []error{err, err}
	})

	evidence = "Lemma 6.5 alternation attack: unbounded NOs on an in-language tight behaviour"
	psd := t.setCell(row, 2, l.Name, core.PSD, false, "Lemma 6.5", evidence)
	pwd := t.setCell(row, 3, l.Name, core.PWD, false, "Lemma 6.5", evidence)
	t.add(l.Name+" Lemma 6.5 alternation", []cellKey{psd, pwd}, func(_ context.Context, _ *exec) []error {
		err := (Lemma65{N: 2, Stages: t.p.Stages}).Verify(func(*adversary.Timed) monitor.Monitor {
			return monitor.NewECLed(adversary.ArrayAtomic)
		}, adversary.ArrayAtomic)
		return []error{err, err}
	})
}

// wecRow lays out the WEC_COUNT row: ✗SD ✓WD ✗PSD ✓PWD.
func (t *plan) wecRow() {
	l := lang.WECCount()
	row := t.newRow(l.Name)

	sd := t.setCell(row, 0, l.Name, core.SD, false, "Lemma 5.2",
		"prefix-extension attack on Figure 5: replayed NO on an in-language word")
	t.add(l.Name+" Lemma 5.2 attack", []cellKey{sd}, func(_ context.Context, _ *exec) []error {
		res, err := counterAttack(t.p).Run(monitor.NewWEC(adversary.ArrayAtomic))
		if err == nil {
			err = res.Verify(func(w word.Word) bool {
				return check.WECSafety(w) == nil && check.Converges(w)
			})
		}
		return []error{err}
	})

	wd := t.setCell(row, 1, l.Name, core.WD, true, "Figure 5",
		"amplified Figure 5 over labelled sources, WD predicate")
	t.sweepUntimed(wd, func() monitor.Monitor {
		return monitor.AmplifyWAD(monitor.NewWEC(adversary.ArrayAtomic), adversary.ArrayAtomic)
	}, l, core.WD, t.p.Steps)

	psd := t.setCell(row, 2, l.Name, core.PSD, false, "Lemma 6.2",
		"tight prefix-extension attack: NO on in-language word with x(E)=x~(E)")
	t.add(l.Name+" Lemma 6.2 tight attack", []cellKey{psd}, func(_ context.Context, _ *exec) []error {
		res, err := counterAttack(t.p).RunTimed(func(*adversary.Timed) monitor.Monitor {
			return monitor.NewWEC(adversary.ArrayAtomic)
		}, adversary.ArrayAtomic)
		if err == nil {
			err = res.Verify(func(w word.Word) bool {
				return check.WECSafety(w) == nil && check.Converges(w)
			})
			if err == nil && !res.TightSketch {
				err = fmt.Errorf("execution not tight: sketch escape clause remains open")
			}
		}
		return []error{err}
	})

	pwd := t.setCell(row, 3, l.Name, core.PWD, true, "Figure 5",
		"amplified Figure 5 against Aτ over labelled sources, PWD predicate")
	t.sweepTimed(pwd, func(*adversary.Timed) monitor.Monitor {
		return monitor.AmplifyWAD(monitor.NewWEC(adversary.ArrayAtomic), adversary.ArrayAtomic)
	}, l, core.PWD, t.p.Steps, func(sk word.Word) bool {
		return check.WECSafety(sk) != nil
	})
}

// secRow lays out the SEC_COUNT row: ✗ ✗ ✗ ✓.
func (t *plan) secRow() {
	l := lang.SECCount()
	row := t.newRow(l.Name)

	// SD ✗ and PSD ✗ share the Figure 9 prefix-extension attack; each unit
	// replays it independently (the canonical schedule is deterministic, so
	// both runs produce identical facts), the PSD unit additionally closing
	// the predictive escape clause via the tightness check.
	runAttack := func() (*PrefixAttackResult, error) {
		res, err := counterAttack(t.p).RunTimed(func(tau *adversary.Timed) monitor.Monitor {
			return monitor.NewSEC(tau, adversary.ArrayAtomic)
		}, adversary.ArrayAtomic)
		if err == nil {
			err = res.Verify(func(w word.Word) bool {
				return check.SECSafety(w) == nil && check.Converges(w)
			})
		}
		return res, err
	}
	sd := t.setCell(row, 0, l.Name, core.SD, false, "Lemma 5.2",
		"prefix-extension attack on Figure 9: replayed NO on an in-language word")
	t.add(l.Name+" Lemma 5.2 attack", []cellKey{sd}, func(_ context.Context, _ *exec) []error {
		_, err := runAttack()
		return []error{err}
	})

	// WD ✗ via Theorem 5.2: SEC_COUNT's clause (4) makes it real-time
	// sensitive; the walk realizes the chain on the witness.
	wd := t.setCell(row, 1, l.Name, core.WD, false, "Thm 5.2",
		"clause-4 witness + shuffle walk")
	t.add(l.Name+" Theorem 5.2 walk", []cellKey{wd}, func(_ context.Context, _ *exec) []error {
		wit := core.FindRTOWitness(l.SafetyViolated, secWitness(), 2)
		var err error
		if wit == nil {
			err = fmt.Errorf("no RTO witness on the clause-4 word")
		} else {
			_, err = RunWalk(monitor.NewWEC(adversary.ArrayAtomic), 2, wit.Alpha, wit.Shuffled)
		}
		return []error{err}
	})

	psd := t.setCell(row, 2, l.Name, core.PSD, false, "Lemma 6.2",
		"tight prefix-extension attack on Figure 9")
	t.add(l.Name+" Lemma 6.2 tight attack", []cellKey{psd}, func(_ context.Context, _ *exec) []error {
		res, err := runAttack()
		if err == nil && !res.TightSketch {
			err = fmt.Errorf("execution not tight")
		}
		return []error{err}
	})

	pwd := t.setCell(row, 3, l.Name, core.PWD, true, "Figure 9",
		"amplified Figure 9 over labelled sources, PWD predicate")
	t.sweepTimed(pwd, func(tau *adversary.Timed) monitor.Monitor {
		return monitor.AmplifyWAD(monitor.NewSEC(tau, adversary.ArrayAtomic), adversary.ArrayAtomic)
	}, l, core.PWD, t.p.TimedSteps, func(sk word.Word) bool {
		return check.SECSafety(sk) != nil
	})
}

// counterAttack builds the Lemma 5.2 instance: one inc, then reads of 0
// forever (outside both counter languages); the good tail completes pending
// operations and reads the true total forever.
func counterAttack(p Params) PrefixAttack {
	n := 2
	b := word.NewB()
	b.Op(0, spec.OpInc, nil, word.Unit{})
	for r := 0; r < p.AttackRounds; r++ {
		b.Op(1, spec.OpRead, nil, word.Int(0))
		b.Op(0, spec.OpRead, nil, word.Int(0))
	}
	return PrefixAttack{
		N:   n,
		Bad: b.Word(),
		GoodTail: func(cut word.Word) word.Word {
			// Count incs invoked in the cut; every subsequent read returns
			// that total.
			incs := 0
			for _, s := range cut {
				if s.Kind == word.Inv && s.Op == spec.OpInc {
					incs++
				}
			}
			tail := word.NewB()
			// Complete pending invocations.
			for _, op := range word.PendingOps(cut) {
				switch op.Op {
				case spec.OpInc:
					tail.Res(op.ID.Proc, spec.OpInc, word.Unit{})
				case spec.OpRead:
					tail.Res(op.ID.Proc, spec.OpRead, word.Int(incs))
				}
			}
			for r := 0; r < p.AttackRounds; r++ {
				for proc := 0; proc < n; proc++ {
					tail.Op(proc, spec.OpRead, nil, word.Int(incs))
				}
			}
			return tail.Word()
		},
	}
}

// secWitness is the 2-process clause-4 witness: p0 incs, then p1 reads 1
// with the inc strictly preceding — the shuffle that defers the inc past the
// read over-reads.
func secWitness() word.Word {
	b := word.NewB()
	b.Op(0, spec.OpInc, nil, word.Unit{})
	b.Op(1, spec.OpRead, nil, word.Int(1))
	return b.Word()
}

// Render formats the rows like the paper's Table 1, marking failed cells.
func Render(rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-6s %-6s %-6s %-6s\n", "Language", "SD", "WD", "PSD", "PWD")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s", r.Lang)
		for _, c := range r.Cells {
			mark := c.Mark()
			if !c.OK() {
				mark += "!"
			}
			fmt.Fprintf(&sb, " %-6s", mark)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
