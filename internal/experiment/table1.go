package experiment

import (
	"fmt"
	"strings"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/core"
	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// Params sizes the Table 1 harness. The defaults keep the whole table under
// a minute; larger values sharpen the finite-run proxies for the ω-word
// quantifiers.
type Params struct {
	// Procs is the monitor process count for possibility cells.
	Procs int
	// Seeds are the scheduling seeds each possibility cell sweeps.
	Seeds []int64
	// Steps bounds untimed possibility runs; TimedSteps the predictive
	// monitors (whose per-round check grows with history); SCSteps the
	// sequential-consistency monitors (exponential search, shortest runs).
	Steps, TimedSteps, SCSteps int
	// Window is the verdict-tail length interpreting "finitely many NOs".
	Window int
	// SwapRounds sizes the Lemma 5.1 construction; AttackRounds the bad
	// prefix of the prefix-extension attacks; Stages the Lemma 6.5
	// alternation count.
	SwapRounds, AttackRounds, Stages int
}

// DefaultParams returns the harness defaults.
func DefaultParams() Params {
	return Params{
		Procs:        3,
		Seeds:        []int64{1, 2},
		Steps:        30_000,
		TimedSteps:   4_000,
		SCSteps:      1_500,
		Window:       4,
		SwapRounds:   8,
		AttackRounds: 6,
		Stages:       3,
	}
}

// Cell is one entry of Table 1.
type Cell struct {
	// Lang and Class locate the cell.
	Lang  string
	Class core.Class
	// Expected is the paper's claim: true = decidable (✓).
	Expected bool
	// Method names the construction that reproduces the cell.
	Method string
	// Evidence is a one-line summary of what was checked.
	Evidence string
	// Err is non-nil when the reproduction failed.
	Err error
}

// OK reports whether the cell was reproduced.
func (c Cell) OK() bool { return c.Err == nil }

// Mark renders ✓/✗ as in Table 1.
func (c Cell) Mark() string {
	if c.Expected {
		return "✓"
	}
	return "✗"
}

// Row is one language row of Table 1.
type Row struct {
	Lang  string
	Cells [4]Cell // SD, WD, PSD, PWD
}

// Table1 reproduces every cell of Table 1 and returns the rows in paper
// order.
func Table1(p Params) []Row {
	if p.Procs == 0 {
		p = DefaultParams()
	}
	t := &table{p: p}
	return []Row{
		t.registerRow(lang.LinReg(), true),
		t.registerRow(lang.SCReg(), false),
		t.ledgerRow(lang.LinLed(), true),
		t.ledgerRow(lang.SCLed(), false),
		t.ecLedRow(),
		t.wecRow(),
		t.secRow(),
	}
}

type table struct {
	p Params
}

// ---------------------------------------------------------------- running

// runUntimed executes a monitor against A exhibiting the source's word.
func (t *table) runUntimed(m monitor.Monitor, src adversary.Source, seed int64, steps int) *monitor.Result {
	adv := adversary.NewA(t.p.Procs, src)
	return monitor.Run(monitor.Config{
		N:       t.p.Procs,
		Monitor: m,
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			return adv, []int{adv.Register(rt)}
		},
		Policy: func(aux []int) sched.Policy {
			return sched.Biased(seed, aux[0], 0.5)
		},
		MaxSteps: steps,
	})
}

// runTimed executes a monitor factory against Aτ wrapping A.
func (t *table) runTimed(mk func(tau *adversary.Timed) monitor.Monitor, src adversary.Source, seed int64, steps int) (*monitor.Result, *adversary.Timed) {
	adv := adversary.NewA(t.p.Procs, src)
	tau := adversary.NewTimed(t.p.Procs, adv, adversary.ArrayAtomic)
	res := monitor.Run(monitor.Config{
		N:       t.p.Procs,
		Monitor: mk(tau),
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			return tau, []int{adv.Register(rt)}
		},
		Policy: func(aux []int) sched.Policy {
			return sched.Biased(seed, aux[0], 0.5)
		},
		MaxSteps: steps,
	})
	return res, tau
}

// sweepUntimed judges an untimed monitor against every labelled source under
// the class's predicate.
func (t *table) sweepUntimed(m monitor.Monitor, l lang.Lang, class core.Class, steps int) error {
	for _, seed := range t.p.Seeds {
		for _, lb := range l.Sources(t.p.Procs, seed) {
			res := t.runUntimed(m, lb.New(), seed, steps)
			ev := core.Eval{Class: class, Window: t.p.Window}
			if err := ev.Check(res, lb.In); err != nil {
				return fmt.Errorf("seed %d source %s: %w", seed, lb.Name, err)
			}
		}
	}
	return nil
}

// sweepTimed judges a timed monitor factory against every labelled source,
// with the sketch escape clause evaluated by sketchBad.
func (t *table) sweepTimed(mk func(tau *adversary.Timed) monitor.Monitor, l lang.Lang, class core.Class, steps int, sketchBad func(sk word.Word) bool) error {
	for _, seed := range t.p.Seeds {
		for _, lb := range l.Sources(t.p.Procs, seed) {
			res, tau := t.runTimed(mk, lb.New(), seed, steps)
			ev := core.Eval{Class: class, Window: t.p.Window, SketchViolated: func() bool {
				sk, err := res.Sketch(t.p.Procs, tau)
				if err != nil {
					return false
				}
				return sketchBad(sk)
			}}
			if err := ev.Check(res, lb.In); err != nil {
				return fmt.Errorf("seed %d source %s: %w", seed, lb.Name, err)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------- rows

// registerRow reproduces the LIN_REG or SC_REG row (lin selects which).
func (t *table) registerRow(l lang.Lang, lin bool) Row {
	row := Row{Lang: l.Name}
	swap := Lemma51{Rounds: t.p.SwapRounds}

	// SD ✗ and WD ✗: the Lemma 5.1 swap defeats both an order-free monitor
	// and one wielding unbounded consensus power.
	naive := monitor.NewNaiveOrder(spec.Register(), adversary.ArrayAtomic)
	cons := monitor.NewConsensusOrder(spec.Register(), adversary.ArrayAtomic)
	var swapErr error
	for _, m := range []monitor.Monitor{naive, cons} {
		if err := swap.Verify(m); err != nil {
			swapErr = fmt.Errorf("%s: %w", m.Name(), err)
			break
		}
	}
	evidence := "Lemma 5.1 swap: E≡F, x(E)∈L, x(F)∉L, against order-free and consensus-powered monitors"
	row.Cells[0] = Cell{Lang: l.Name, Class: core.SD, Expected: false, Method: "Lemma 5.1", Evidence: evidence, Err: swapErr}
	row.Cells[1] = Cell{Lang: l.Name, Class: core.WD, Expected: false, Method: "Lemma 5.1", Evidence: evidence, Err: swapErr}

	// PSD ✓ and PWD ✓: Figure 8 with the LIN or SC check.
	steps := t.p.TimedSteps
	mk := func(tau *adversary.Timed) monitor.Monitor {
		return monitor.NewLin(spec.Register(), tau, adversary.ArrayAtomic)
	}
	if !lin {
		steps = t.p.SCSteps
		mk = func(tau *adversary.Timed) monitor.Monitor {
			return monitor.NewSC(spec.Register(), tau, adversary.ArrayAtomic)
		}
	}
	sketchBad := func(sk word.Word) bool { return l.SafetyViolated(sk) }
	row.Cells[2] = Cell{Lang: l.Name, Class: core.PSD, Expected: true, Method: "Figure 8",
		Evidence: "V_O over labelled sources, PSD predicate with sketch escape",
		Err:      t.sweepTimed(mk, l, core.PSD, steps, sketchBad)}
	row.Cells[3] = Cell{Lang: l.Name, Class: core.PWD, Expected: true, Method: "Figure 8",
		Evidence: "V_O over labelled sources, PWD predicate",
		Err:      t.sweepTimed(mk, l, core.PWD, steps, sketchBad)}
	return row
}

// ledgerRow reproduces the LIN_LED or SC_LED row.
func (t *table) ledgerRow(l lang.Lang, lin bool) Row {
	row := Row{Lang: l.Name}

	// SD ✗ and WD ✗ via Theorem 5.2: the Appendix A witness word is not
	// real-time oblivious, and the shuffle walk realizes the proof's
	// execution chain against a concrete monitor.
	alpha := core.AppendixAWitness(t.p.Procs)
	wit := core.FindRTOWitness(l.SafetyViolated, alpha, t.p.Procs)
	var err error
	if wit == nil {
		err = fmt.Errorf("no RTO witness found for %s on the Appendix A word", l.Name)
	} else {
		_, err = RunWalk(monitor.NewNaiveOrder(spec.Ledger(), adversary.ArrayAtomic), t.p.Procs, wit.Alpha, wit.Shuffled)
	}
	evidence := "Appendix A witness + Theorem 5.2 shuffle walk (E,F,E″ triples verified)"
	row.Cells[0] = Cell{Lang: l.Name, Class: core.SD, Expected: false, Method: "Thm 5.2", Evidence: evidence, Err: err}
	row.Cells[1] = Cell{Lang: l.Name, Class: core.WD, Expected: false, Method: "Thm 5.2", Evidence: evidence, Err: err}

	steps := t.p.TimedSteps
	mk := func(tau *adversary.Timed) monitor.Monitor {
		return monitor.NewLin(spec.Ledger(), tau, adversary.ArrayAtomic)
	}
	if !lin {
		steps = t.p.SCSteps
		mk = func(tau *adversary.Timed) monitor.Monitor {
			return monitor.NewSC(spec.Ledger(), tau, adversary.ArrayAtomic)
		}
	}
	sketchBad := func(sk word.Word) bool { return l.SafetyViolated(sk) }
	row.Cells[2] = Cell{Lang: l.Name, Class: core.PSD, Expected: true, Method: "Figure 8",
		Evidence: "V_O over labelled sources, PSD predicate with sketch escape",
		Err:      t.sweepTimed(mk, l, core.PSD, steps, sketchBad)}
	row.Cells[3] = Cell{Lang: l.Name, Class: core.PWD, Expected: true, Method: "Figure 8",
		Evidence: "V_O over labelled sources, PWD predicate",
		Err:      t.sweepTimed(mk, l, core.PWD, steps, sketchBad)}
	return row
}

// ecLedRow reproduces the EC_LED row: undecidable everywhere.
func (t *table) ecLedRow() Row {
	l := lang.ECLed()
	row := Row{Lang: l.Name}

	alpha := core.AppendixAWitness(t.p.Procs)
	wit := core.FindRTOWitness(l.SafetyViolated, alpha, t.p.Procs)
	var err error
	if wit == nil {
		err = fmt.Errorf("no RTO witness found for %s on the Appendix A word", l.Name)
	} else {
		_, err = RunWalk(monitor.NewECLed(adversary.ArrayAtomic), t.p.Procs, wit.Alpha, wit.Shuffled)
	}
	evidence := "Appendix A witness + Theorem 5.2 shuffle walk"
	row.Cells[0] = Cell{Lang: l.Name, Class: core.SD, Expected: false, Method: "Thm 5.2", Evidence: evidence, Err: err}
	row.Cells[1] = Cell{Lang: l.Name, Class: core.WD, Expected: false, Method: "Thm 5.2", Evidence: evidence, Err: err}

	attack := Lemma65{N: 2, Stages: t.p.Stages}
	aErr := attack.Verify(func(*adversary.Timed) monitor.Monitor {
		return monitor.NewECLed(adversary.ArrayAtomic)
	}, adversary.ArrayAtomic)
	evidence = "Lemma 6.5 alternation attack: unbounded NOs on an in-language tight behaviour"
	row.Cells[2] = Cell{Lang: l.Name, Class: core.PSD, Expected: false, Method: "Lemma 6.5", Evidence: evidence, Err: aErr}
	row.Cells[3] = Cell{Lang: l.Name, Class: core.PWD, Expected: false, Method: "Lemma 6.5", Evidence: evidence, Err: aErr}
	return row
}

// wecRow reproduces the WEC_COUNT row: ✗SD ✓WD ✗PSD ✓PWD.
func (t *table) wecRow() Row {
	l := lang.WECCount()
	row := Row{Lang: l.Name}
	attack := t.counterAttack()

	res, err := attack.Run(monitor.NewWEC(adversary.ArrayAtomic))
	if err == nil {
		err = res.Verify(func(w word.Word) bool {
			return check.WECSafety(w) == nil && check.Converges(w)
		})
	}
	row.Cells[0] = Cell{Lang: l.Name, Class: core.SD, Expected: false, Method: "Lemma 5.2",
		Evidence: "prefix-extension attack on Figure 5: replayed NO on an in-language word", Err: err}

	row.Cells[1] = Cell{Lang: l.Name, Class: core.WD, Expected: true, Method: "Figure 5",
		Evidence: "amplified Figure 5 over labelled sources, WD predicate",
		Err:      t.sweepUntimed(monitor.AmplifyWAD(monitor.NewWEC(adversary.ArrayAtomic), adversary.ArrayAtomic), l, core.WD, t.p.Steps)}

	tRes, tErr := attack.RunTimed(func(*adversary.Timed) monitor.Monitor {
		return monitor.NewWEC(adversary.ArrayAtomic)
	}, adversary.ArrayAtomic)
	if tErr == nil {
		tErr = tRes.Verify(func(w word.Word) bool {
			return check.WECSafety(w) == nil && check.Converges(w)
		})
		if tErr == nil && !tRes.TightSketch {
			tErr = fmt.Errorf("execution not tight: sketch escape clause remains open")
		}
	}
	row.Cells[2] = Cell{Lang: l.Name, Class: core.PSD, Expected: false, Method: "Lemma 6.2",
		Evidence: "tight prefix-extension attack: NO on in-language word with x(E)=x~(E)", Err: tErr}

	row.Cells[3] = Cell{Lang: l.Name, Class: core.PWD, Expected: true, Method: "Figure 5",
		Evidence: "amplified Figure 5 against Aτ over labelled sources, PWD predicate",
		Err: t.sweepTimed(func(*adversary.Timed) monitor.Monitor {
			return monitor.AmplifyWAD(monitor.NewWEC(adversary.ArrayAtomic), adversary.ArrayAtomic)
		}, l, core.PWD, t.p.Steps, func(sk word.Word) bool {
			return check.WECSafety(sk) != nil
		})}
	return row
}

// secRow reproduces the SEC_COUNT row: ✗ ✗ ✗ ✓.
func (t *table) secRow() Row {
	l := lang.SECCount()
	row := Row{Lang: l.Name}
	attack := t.counterAttack()

	res, err := attack.RunTimed(func(tau *adversary.Timed) monitor.Monitor {
		return monitor.NewSEC(tau, adversary.ArrayAtomic)
	}, adversary.ArrayAtomic)
	if err == nil {
		err = res.Verify(func(w word.Word) bool {
			return check.SECSafety(w) == nil && check.Converges(w)
		})
	}
	row.Cells[0] = Cell{Lang: l.Name, Class: core.SD, Expected: false, Method: "Lemma 5.2",
		Evidence: "prefix-extension attack on Figure 9: replayed NO on an in-language word", Err: err}

	// WD ✗ via Theorem 5.2: SEC_COUNT's clause (4) makes it real-time
	// sensitive; the walk realizes the chain on the witness.
	alpha := secWitness()
	wit := core.FindRTOWitness(l.SafetyViolated, alpha, 2)
	var wErr error
	if wit == nil {
		wErr = fmt.Errorf("no RTO witness on the clause-4 word")
	} else {
		_, wErr = RunWalk(monitor.NewWEC(adversary.ArrayAtomic), 2, wit.Alpha, wit.Shuffled)
	}
	row.Cells[1] = Cell{Lang: l.Name, Class: core.WD, Expected: false, Method: "Thm 5.2",
		Evidence: "clause-4 witness + shuffle walk", Err: wErr}

	if err == nil && !res.TightSketch {
		err = fmt.Errorf("execution not tight")
	}
	row.Cells[2] = Cell{Lang: l.Name, Class: core.PSD, Expected: false, Method: "Lemma 6.2",
		Evidence: "tight prefix-extension attack on Figure 9", Err: err}

	row.Cells[3] = Cell{Lang: l.Name, Class: core.PWD, Expected: true, Method: "Figure 9",
		Evidence: "amplified Figure 9 over labelled sources, PWD predicate",
		Err: t.sweepTimed(func(tau *adversary.Timed) monitor.Monitor {
			return monitor.AmplifyWAD(monitor.NewSEC(tau, adversary.ArrayAtomic), adversary.ArrayAtomic)
		}, l, core.PWD, t.p.TimedSteps, func(sk word.Word) bool {
			return check.SECSafety(sk) != nil
		})}
	return row
}

// counterAttack builds the Lemma 5.2 instance: one inc, then reads of 0
// forever (outside both counter languages); the good tail completes pending
// operations and reads the true total forever.
func (t *table) counterAttack() PrefixAttack {
	n := 2
	b := word.NewB()
	b.Op(0, spec.OpInc, nil, word.Unit{})
	for r := 0; r < t.p.AttackRounds; r++ {
		b.Op(1, spec.OpRead, nil, word.Int(0))
		b.Op(0, spec.OpRead, nil, word.Int(0))
	}
	return PrefixAttack{
		N:   n,
		Bad: b.Word(),
		GoodTail: func(cut word.Word) word.Word {
			// Count incs invoked in the cut; every subsequent read returns
			// that total.
			incs := 0
			for _, s := range cut {
				if s.Kind == word.Inv && s.Op == spec.OpInc {
					incs++
				}
			}
			tail := word.NewB()
			// Complete pending invocations.
			for _, op := range word.PendingOps(cut) {
				switch op.Op {
				case spec.OpInc:
					tail.Res(op.ID.Proc, spec.OpInc, word.Unit{})
				case spec.OpRead:
					tail.Res(op.ID.Proc, spec.OpRead, word.Int(incs))
				}
			}
			for r := 0; r < t.p.AttackRounds; r++ {
				for p := 0; p < n; p++ {
					tail.Op(p, spec.OpRead, nil, word.Int(incs))
				}
			}
			return tail.Word()
		},
	}
}

// secWitness is the 2-process clause-4 witness: p0 incs, then p1 reads 1
// with the inc strictly preceding — the shuffle that defers the inc past the
// read over-reads.
func secWitness() word.Word {
	b := word.NewB()
	b.Op(0, spec.OpInc, nil, word.Unit{})
	b.Op(1, spec.OpRead, nil, word.Int(1))
	return b.Word()
}

// Render formats the rows like the paper's Table 1, marking failed cells.
func Render(rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-6s %-6s %-6s %-6s\n", "Language", "SD", "WD", "PSD", "PWD")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s", r.Lang)
		for _, c := range r.Cells {
			mark := c.Mark()
			if !c.OK() {
				mark += "!"
			}
			fmt.Fprintf(&sb, " %-6s", mark)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
