package experiment

import (
	"testing"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// wordOf builds the four-symbol round used by small driver tests.
func smallWord() word.Word {
	b := word.NewB()
	b.Op(0, spec.OpWrite, word.Int(1), word.Unit{})
	b.Op(1, spec.OpRead, nil, word.Int(1))
	return b.Word()
}

func TestScheduledRunCanonical(t *testing.T) {
	w := smallWord()
	m := monitor.Constant(monitor.Yes)
	res, err := ScheduledRun(m, 2, w, Canonical(w, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.History.Equal(w) {
		t.Errorf("canonical run exhibited %v, want %v", res.History, w)
	}
	for p := 0; p < 2; p++ {
		if len(res.Verdicts[p]) != 1 {
			t.Errorf("process %d reported %d times, want 1", p, len(res.Verdicts[p]))
		}
	}
}

func TestScheduledRunDetectsBadSchedule(t *testing.T) {
	w := smallWord()
	// An Emit expecting the wrong process must fail loudly.
	sch := Schedule{{Block, 0}, {Emit, 1}}
	if _, err := ScheduledRun(monitor.Constant(monitor.Yes), 2, w, sch); err == nil {
		t.Error("expected schedule error for mismatched Emit owner")
	}
	// Emitting past the word's end must fail loudly.
	sch = Canonical(w, 2)
	sch = append(sch, Item{Emit, 0})
	if _, err := ScheduledRun(monitor.Constant(monitor.Yes), 2, w, sch); err == nil {
		t.Error("expected schedule error for emitting past the word")
	}
}

func TestIndistinguishableReflexive(t *testing.T) {
	w := smallWord()
	m := monitor.NewNaiveOrder(spec.Register(), adversary.ArrayAtomic)
	r1, err := ScheduledRun(m, 2, w, Canonical(w, 2))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ScheduledRun(m, 2, w, Canonical(w, 2))
	if err != nil {
		t.Fatal(err)
	}
	if ok, p := Indistinguishable(r1, r2); !ok {
		t.Errorf("identical runs distinguishable at process %d", p)
	}
}

func TestLemma51AgainstMonitors(t *testing.T) {
	// The swap defeats every monitor: order-free, consensus-powered, the
	// WEC monitor (wrong object, still a monitor), and a constant.
	monitors := []monitor.Monitor{
		monitor.NewNaiveOrder(spec.Register(), adversary.ArrayAtomic),
		monitor.NewNaiveOrder(spec.Register(), adversary.ArrayAADGMS),
		monitor.NewConsensusOrder(spec.Register(), adversary.ArrayAtomic),
		monitor.Constant(monitor.Yes),
	}
	l := Lemma51{Rounds: 6}
	for _, m := range monitors {
		if err := l.Verify(m); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestLemma51WordsMembership(t *testing.T) {
	l := Lemma51{Rounds: 4}
	wE, wF := l.Words()
	if lang.LinReg().SafetyViolated(wE) {
		t.Error("x(E) should be linearizable")
	}
	if !lang.LinReg().SafetyViolated(wF) {
		t.Error("x(F) should violate linearizability")
	}
	if !lang.SCReg().SafetyViolated(wF) {
		t.Error("x(F) should violate sequential consistency prefix-wise")
	}
}

func TestWalkRegisterWitness(t *testing.T) {
	// Drag the Lemma 5.1 E-word's first round to its F-form via the walk.
	b := word.NewB()
	b.Op(0, spec.OpWrite, word.Int(1), word.Unit{})
	b.Op(1, spec.OpRead, nil, word.Int(1))
	alpha := b.Word()
	b2 := word.NewB()
	b2.Op(1, spec.OpRead, nil, word.Int(1))
	b2.Op(0, spec.OpWrite, word.Int(1), word.Unit{})
	target := b2.Word()

	m := monitor.NewNaiveOrder(spec.Register(), adversary.ArrayAtomic)
	walk, err := RunWalk(m, 2, alpha, target)
	if err != nil {
		t.Fatalf("walk failed: %v", err)
	}
	if len(walk.Steps) == 0 {
		t.Fatal("walk has no steps")
	}
	if lang.LinReg().SafetyViolated(alpha) {
		t.Error("alpha should be in the language")
	}
	if !lang.LinReg().SafetyViolated(target) {
		t.Error("target should violate the language")
	}
}

func TestWalkRejectsNonShuffle(t *testing.T) {
	b := word.NewB()
	b.Op(0, spec.OpWrite, word.Int(1), word.Unit{})
	b.Op(0, spec.OpWrite, word.Int(2), word.Unit{})
	alpha := b.Word()
	// Reversing two operations of the same process is not a projection-
	// preserving shuffle.
	target := word.Word{alpha[2], alpha[3], alpha[0], alpha[1]}
	if _, err := RunWalk(monitor.Constant(monitor.Yes), 1, alpha, target); err == nil {
		t.Error("expected rejection of a same-process reorder")
	}
}

func TestPrefixAttackWEC(t *testing.T) {
	attack := counterAttack(DefaultParams())
	res, err := attack.Run(monitor.NewWEC(adversary.ArrayAtomic))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(func(w word.Word) bool {
		return check.WECSafety(w) == nil && check.Converges(w)
	}); err != nil {
		t.Error(err)
	}
	if res.Cut <= 0 || res.Cut >= len(attack.Bad) {
		t.Errorf("cut %d outside the bad word (len %d)", res.Cut, len(attack.Bad))
	}
}

func TestPrefixAttackTimedSEC(t *testing.T) {
	attack := counterAttack(DefaultParams())
	res, err := attack.RunTimed(func(tau *adversary.Timed) monitor.Monitor {
		return monitor.NewSEC(tau, adversary.ArrayAtomic)
	}, adversary.ArrayAtomic)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(func(w word.Word) bool {
		return check.SECSafety(w) == nil && check.Converges(w)
	}); err != nil {
		t.Error(err)
	}
	if !res.TightSketch {
		t.Error("canonical timed run should be tight (x = x~)")
	}
}

func TestLemma65Attack(t *testing.T) {
	l := Lemma65{N: 2, Stages: 3}
	err := l.Verify(func(*adversary.Timed) monitor.Monitor {
		return monitor.NewECLed(adversary.ArrayAtomic)
	}, adversary.ArrayAtomic)
	if err != nil {
		t.Error(err)
	}
}

func TestLemma65WordInLanguage(t *testing.T) {
	l := Lemma65{N: 2, Stages: 2}
	w, phases := l.Build()
	if check.ECLedgerSafety(w) != nil {
		t.Error("staged word violates EC ordering safety")
	}
	if !check.ECLedgerConverges(w) {
		t.Error("staged word does not converge")
	}
	if len(phases) != 4 {
		t.Errorf("expected 4 phases, got %d", len(phases))
	}
}

func TestTable1AllCellsReproduce(t *testing.T) {
	p := DefaultParams()
	if testing.Short() {
		p = ShortParams()
	}
	rows := Table1(p)
	if len(rows) != 7 {
		t.Fatalf("expected 7 rows, got %d", len(rows))
	}
	expected := map[string][4]bool{
		"LIN_REG":   {false, false, true, true},
		"SC_REG":    {false, false, true, true},
		"LIN_LED":   {false, false, true, true},
		"SC_LED":    {false, false, true, true},
		"EC_LED":    {false, false, false, false},
		"WEC_COUNT": {false, true, false, true},
		"SEC_COUNT": {false, false, false, true},
	}
	for _, row := range rows {
		want, ok := expected[row.Lang]
		if !ok {
			t.Errorf("unexpected row %s", row.Lang)
			continue
		}
		for i, cell := range row.Cells {
			if cell.Expected != want[i] {
				t.Errorf("%s %s: harness expects %v, paper says %v", row.Lang, cell.Class, cell.Expected, want[i])
			}
			if cell.Err != nil {
				t.Errorf("%s %s: reproduction failed: %v", row.Lang, cell.Class, cell.Err)
			}
		}
	}
	t.Logf("\n%s", Render(rows))
}
