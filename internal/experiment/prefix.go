package experiment

import (
	"fmt"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/word"
)

// The prefix-extension attack of Lemmas 5.2 and 6.2: run the monitor on a
// behaviour outside the language until some process first reports NO, cut
// the behaviour at everything the adversary had revealed by that moment, and
// extend the cut with a continuation that puts the whole word inside the
// language. Replaying deterministically, the execution — and the NO — is
// unchanged up to the cut, so the monitor has reported NO on a word in the
// language: strong decidability fails. The tight variant runs against the
// timed adversary Aτ with the canonical (tight) schedule, for which the
// sketch x~(E) equals the input x(E); the predictive escape clause of
// Definition 6.1 then cannot justify the NO, so predictive strong
// decidability fails too.

// PrefixAttack describes one attack instance.
type PrefixAttack struct {
	// N is the number of processes.
	N int
	// Bad is a finite prefix of a behaviour outside the language, long
	// enough that the monitor reports NO within it.
	Bad word.Word
	// GoodTail completes the cut prefix into a word inside the language: it
	// receives the cut (which may end with pending invocations) and returns
	// the continuation symbols. The concatenation's ω-extension must be in
	// the language; the attack appends Rounds repetitions via the same
	// callback contract the paper's x′ uses.
	GoodTail func(cut word.Word) word.Word
}

// PrefixAttackResult carries the attack's machine-checked facts.
type PrefixAttackResult struct {
	// NoProc is the process that first reported NO; NoStep the scheduler
	// step; Cut how many source symbols the adversary had consumed.
	NoProc, NoStep, Cut int
	// Hybrid is the in-language word exhibited by the replay.
	Hybrid word.Word
	// ReplayNO reports that the replay reproduced a NO by NoProc with the
	// same observation prefix (deterministic replay check).
	ReplayNO bool
	// PrefixesMatch reports that NoProc's observations up to the NO verdict
	// are identical in both runs.
	PrefixesMatch bool
	// TightSketch is set by the timed variant: the replay's sketch equals
	// its input, closing the predictive escape clause.
	TightSketch bool
	// BadRun and HybridRun are the two executions.
	BadRun, HybridRun *monitor.Result
}

// firstNO locates the earliest NO report across all processes, returning the
// process, its report index, the scheduler step and the source-consumption
// mark. ok is false when no process ever reported NO.
func firstNO(res *monitor.Result) (proc, idx, step, pulled int, ok bool) {
	step = -1
	for p := range res.Verdicts {
		for k, v := range res.Verdicts[p] {
			if v != monitor.No {
				continue
			}
			if step < 0 || res.StepAt[p][k] < step {
				proc, idx, step, pulled = p, k, res.StepAt[p][k], res.PulledAt[p][k]
			}
			break // only the first NO of each process matters
		}
	}
	return proc, idx, step, pulled, step >= 0
}

// observationsPrefixEqual compares process p's observations in two runs up
// to and including report index idx.
func observationsPrefixEqual(a, b *monitor.Result, p, idx int) bool {
	if len(b.Verdicts[p]) <= idx || len(a.Verdicts[p]) <= idx {
		return false
	}
	for k := 0; k <= idx; k++ {
		if a.Verdicts[p][k] != b.Verdicts[p][k] {
			return false
		}
		if !a.Invs[p][k].Equal(b.Invs[p][k]) || !a.Responses[p][k].Sym.Equal(b.Responses[p][k].Sym) {
			return false
		}
	}
	return true
}

// Run mounts the attack on a monitor against the plain adversary A, using
// the canonical tight schedule for determinism (the construction of Claim
// 3.1, as in the proof of Lemma 5.2).
func (a PrefixAttack) Run(m monitor.Monitor) (*PrefixAttackResult, error) {
	badRes, err := ScheduledRun(m, a.N, a.Bad, Canonical(a.Bad, a.N))
	if err != nil {
		return nil, fmt.Errorf("prefix attack bad run: %w", err)
	}
	noProc, noIdx, noStep, cut, ok := firstNO(badRes)
	if !ok {
		return nil, fmt.Errorf("prefix attack: the monitor never reported NO on the bad behaviour %v — it already fails soundness", a.Bad)
	}
	prefix := a.Bad[:cut].Clone()
	hybrid := append(prefix, a.GoodTail(prefix)...)
	hybRes, err := ScheduledRun(m, a.N, hybrid, Canonical(hybrid, a.N))
	if err != nil {
		return nil, fmt.Errorf("prefix attack hybrid run: %w", err)
	}
	res := &PrefixAttackResult{
		NoProc: noProc, NoStep: noStep, Cut: cut,
		Hybrid:    hybRes.History,
		BadRun:    badRes,
		HybridRun: hybRes,
	}
	res.PrefixesMatch = observationsPrefixEqual(badRes, hybRes, noProc, noIdx)
	res.ReplayNO = len(hybRes.Verdicts[noProc]) > noIdx && hybRes.Verdicts[noProc][noIdx] == monitor.No
	return res, nil
}

// RunTimed mounts the attack against the timed adversary Aτ (Lemma 6.2): the
// canonical schedule produces tight executions, for which x(E) = x~(E), so a
// NO on the in-language hybrid word has no sketch justification.
func (a PrefixAttack) RunTimed(mk func(tau *adversary.Timed) monitor.Monitor, kind adversary.ArrayKind) (*PrefixAttackResult, error) {
	badRes, _, err := ScheduledTimedRun(mk, a.N, a.Bad, kind, Canonical(a.Bad, a.N))
	if err != nil {
		return nil, fmt.Errorf("prefix attack (timed) bad run: %w", err)
	}
	noProc, noIdx, noStep, cut, ok := firstNO(badRes)
	if !ok {
		return nil, fmt.Errorf("prefix attack (timed): the monitor never reported NO on the bad behaviour — it already fails soundness")
	}
	prefix := a.Bad[:cut].Clone()
	hybrid := append(prefix, a.GoodTail(prefix)...)
	hybRes, tau, err := ScheduledTimedRun(mk, a.N, hybrid, kind, Canonical(hybrid, a.N))
	if err != nil {
		return nil, fmt.Errorf("prefix attack (timed) hybrid run: %w", err)
	}
	res := &PrefixAttackResult{
		NoProc: noProc, NoStep: noStep, Cut: cut,
		Hybrid:    hybRes.History,
		BadRun:    badRes,
		HybridRun: hybRes,
	}
	res.PrefixesMatch = observationsPrefixEqual(badRes, hybRes, noProc, noIdx)
	res.ReplayNO = len(hybRes.Verdicts[noProc]) > noIdx && hybRes.Verdicts[noProc][noIdx] == monitor.No
	if sk, err := hybRes.Sketch(a.N, tau.InvAt); err == nil {
		res.TightSketch = sk.Equal(hybRes.History)
	}
	return res, nil
}

// Verify converts an attack result into a pass/fail judgement for the
// untimed attack: nil means the impossibility was demonstrated.
func (r *PrefixAttackResult) Verify(inLang func(word.Word) bool) error {
	if !r.ReplayNO {
		return fmt.Errorf("prefix attack: replay lost the NO — execution not deterministic up to the cut")
	}
	if !r.PrefixesMatch {
		return fmt.Errorf("prefix attack: observation prefixes diverged before the NO")
	}
	if !inLang(r.Hybrid) {
		return fmt.Errorf("prefix attack: hybrid word is not in the language — the GoodTail construction is wrong")
	}
	return nil
}
