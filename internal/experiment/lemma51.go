package experiment

import (
	"fmt"

	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// Lemma51 is the write/read swap experiment of Lemma 5.1, the paper's
// impossibility construction for LIN_REG and SC_REG against A.
//
// Two processes run "almost synchronously" for Rounds rounds. In execution E,
// round r is: p0 sends write(r) and receives its response, then p1 sends
// read() and receives r — every prefix linearizable. Execution F swaps the
// two send/receive pairs: p1 reads r before p0 writes it — the first-round
// prefix already fails sequential consistency (a read of a value never
// written), so x(F) is outside both languages. All shared-memory computation
// (the monitor's Lines 02/05/06 blocks) occurs in the same global order in
// both executions; only the purely local send/receive events swap. E and F
// are therefore indistinguishable to both processes, and any monitor — no
// matter its communication pattern or primitive power — reports identical
// verdict sequences, which contradicts weak (hence also strong) decidability.
type Lemma51 struct {
	// Rounds is the number of write/read rounds.
	Rounds int
}

// Lemma51Result carries the machine-checked facts of one run of the
// construction.
type Lemma51Result struct {
	// WordE and WordF are the exhibited inputs x(E) and x(F).
	WordE, WordF word.Word
	// EInLang and FInLang report the languages' safety tests on the words:
	// E must pass, F must fail (for both LIN_REG and SC_REG).
	ELinOK, FLinOK bool
	ESCOK, FSCOK   bool
	// Indistinguishable reports E ≡ F: every process observed identical
	// invocation, response and verdict streams.
	Indistinguishable bool
	// DiffProc is the first process whose observations differ (−1 if none).
	DiffProc int
	// ResE and ResF are the full runs, for inspection.
	ResE, ResF *monitor.Result
}

// Words builds the two input words of the construction.
func (l Lemma51) Words() (wE, wF word.Word) {
	rounds := l.Rounds
	if rounds <= 0 {
		rounds = 8
	}
	bE, bF := word.NewB(), word.NewB()
	for r := 1; r <= rounds; r++ {
		// E: write(r) completes, then read returns r.
		bE.Inv(0, spec.OpWrite, word.Int(r)).Res(0, spec.OpWrite, word.Unit{})
		bE.Inv(1, spec.OpRead, nil).Res(1, spec.OpRead, word.Int(r))
		// F: the same two operations with their send/receive events swapped.
		bF.Inv(1, spec.OpRead, nil).Res(1, spec.OpRead, word.Int(r))
		bF.Inv(0, spec.OpWrite, word.Int(r)).Res(0, spec.OpWrite, word.Unit{})
	}
	return bE.Word(), bF.Word()
}

// Schedules builds the step placements for E and F. Both run the processes'
// computation blocks in the same order (p0's block, then p1's block, at the
// top of every round); they differ only in when the cursor emits the four
// round symbols.
func (l Lemma51) Schedules() (sE, sF Schedule) {
	rounds := l.Rounds
	if rounds <= 0 {
		rounds = 8
	}
	for r := 0; r < rounds; r++ {
		// Computation blocks in identical order...
		head := Schedule{{Block, 0}, {Block, 1}}
		// ...then the events: E completes p0's operation first,
		sE = append(sE, head...)
		sE = append(sE,
			Item{Emit, 0}, Item{Block, 0}, Item{Emit, 0},
			Item{Emit, 1}, Item{Block, 1}, Item{Emit, 1},
		)
		// ...while F completes p1's first. The interior blocks only carry a
		// process from its granted send gate to its receive gate — no shared
		// memory is touched.
		sF = append(sF, head...)
		sF = append(sF,
			Item{Emit, 1}, Item{Block, 1}, Item{Emit, 1},
			Item{Emit, 0}, Item{Block, 0}, Item{Emit, 0},
		)
	}
	// Let both processes run their final report blocks and exit.
	sE = append(sE, Item{Block, 0}, Item{Block, 1})
	sF = append(sF, Item{Block, 0}, Item{Block, 1})
	return sE, sF
}

// Run executes the construction against the given monitor and returns the
// checked facts. The monitor is built fresh for each execution.
func (l Lemma51) Run(m monitor.Monitor) (*Lemma51Result, error) {
	wE, wF := l.Words()
	sE, sF := l.Schedules()
	resE, err := ScheduledRun(m, 2, wE, sE)
	if err != nil {
		return nil, fmt.Errorf("lemma 5.1 execution E: %w", err)
	}
	resF, err := ScheduledRun(m, 2, wF, sF)
	if err != nil {
		return nil, fmt.Errorf("lemma 5.1 execution F: %w", err)
	}
	ind, diff := Indistinguishable(resE, resF)
	linViol := lang.LinReg().SafetyViolated
	scViol := lang.SCReg().SafetyViolated
	return &Lemma51Result{
		WordE: resE.History, WordF: resF.History,
		ELinOK: !linViol(resE.History), FLinOK: !linViol(resF.History),
		ESCOK: !scViol(resE.History), FSCOK: !scViol(resF.History),
		Indistinguishable: ind, DiffProc: diff,
		ResE: resE, ResF: resF,
	}, nil
}

// Verify runs the construction and converts it into a pass/fail judgement:
// it returns nil exactly when the experiment demonstrates the impossibility —
// E in the language, F outside it, and the monitor unable to distinguish
// them.
func (l Lemma51) Verify(m monitor.Monitor) error {
	r, err := l.Run(m)
	if err != nil {
		return err
	}
	if !r.ELinOK || !r.ESCOK {
		return fmt.Errorf("lemma 5.1: x(E) unexpectedly violates the language safety tests")
	}
	if r.FLinOK {
		return fmt.Errorf("lemma 5.1: x(F) unexpectedly linearizable")
	}
	if r.FSCOK {
		return fmt.Errorf("lemma 5.1: x(F) unexpectedly sequentially consistent")
	}
	if !r.Indistinguishable {
		return fmt.Errorf("lemma 5.1: executions distinguishable (process %d): the monitor broke the construction's premise — check that its blocks run wait-free", r.DiffProc)
	}
	return nil
}
