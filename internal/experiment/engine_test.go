package experiment

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/drv-go/drv/internal/monitor"
)

// cellErrsEqual compares two row slices cell by cell, including error text.
func cellErrsEqual(t *testing.T, a, b []Row) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i].Cells {
			ca, cb := a[i].Cells[j], b[i].Cells[j]
			if ca.Lang != cb.Lang || ca.Class != cb.Class || ca.Expected != cb.Expected ||
				ca.Method != cb.Method || ca.Evidence != cb.Evidence {
				t.Errorf("%s × %s: metadata differs", ca.Lang, ca.Class)
			}
			ea, eb := "", ""
			if ca.Err != nil {
				ea = ca.Err.Error()
			}
			if cb.Err != nil {
				eb = cb.Err.Error()
			}
			if ea != eb {
				t.Errorf("%s × %s: errors differ: %q vs %q", ca.Lang, ca.Class, ea, eb)
			}
		}
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	p := ShortParams()
	seq, err := Run(context.Background(), p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := Run(context.Background(), p, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if Render(seq) != Render(par) {
			t.Errorf("workers=%d: rendered tables differ:\n%s\nvs\n%s", workers, Render(seq), Render(par))
		}
		cellErrsEqual(t, seq, par)
	}
}

func TestRunProgressCallback(t *testing.T) {
	var (
		mu      sync.Mutex
		events  []CellUpdate
		maxDone int
	)
	rows, err := Run(context.Background(), ShortParams(), Options{
		Workers: 4,
		OnCell: func(u CellUpdate) {
			mu.Lock()
			defer mu.Unlock()
			events = append(events, u)
			if u.Done != maxDone+1 {
				t.Errorf("Done jumped from %d to %d", maxDone, u.Done)
			}
			maxDone = u.Done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * len(rows)
	if len(events) != want {
		t.Fatalf("got %d progress events, want %d", len(events), want)
	}
	seen := make(map[cellKey]bool)
	for _, u := range events {
		if u.Total != want {
			t.Errorf("event Total = %d, want %d", u.Total, want)
		}
		k := cellKey{u.Row, u.Col}
		if seen[k] {
			t.Errorf("cell %v completed twice", k)
		}
		seen[k] = true
		got := rows[u.Row].Cells[u.Col]
		if got.Lang != u.Cell.Lang || got.Class != u.Cell.Class {
			t.Errorf("event cell %v does not match row %v", u.Cell, got)
		}
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := Run(ctx, ShortParams(), Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, r := range rows {
		for _, c := range r.Cells {
			if c.Err == nil {
				t.Errorf("%s × %s: expected a skip error on a cancelled run", c.Lang, c.Class)
			} else if !errors.Is(c.Err, context.Canceled) {
				t.Errorf("%s × %s: error %v does not wrap context.Canceled", c.Lang, c.Class, c.Err)
			}
		}
	}
}

func TestRunFailFast(t *testing.T) {
	// ShortParams' step bounds are too small for seed 2's PWD proxies, so
	// sweeping both seeds makes at least one cell genuinely fail; fail-fast
	// must then cancel outstanding units and surface the cause.
	p := ShortParams()
	p.Seeds = []int64{1, 2}
	rows, err := Run(context.Background(), p, Options{Workers: 4, FailFast: true})
	if err == nil {
		t.Fatal("expected a fail-fast error")
	}
	failed := 0
	for _, r := range rows {
		for _, c := range r.Cells {
			if c.Err != nil {
				failed++
			}
		}
	}
	if failed == 0 {
		t.Error("fail-fast run reports no failed cells")
	}
}

// TestCellDeterministicAcrossGoroutines runs every unit of one cell on many
// goroutines concurrently and asserts each concurrent evaluation folds to
// the identical Cell result — the independence property the worker pool
// relies on (fresh runtime, adversary and monitor state per unit; seeded
// policies).
func TestCellDeterministicAcrossGoroutines(t *testing.T) {
	p := ShortParams()
	pl := buildPlan(p)
	// LIN_REG × PSD: a timed sweep cell with one unit per (seed, source).
	target := cellKey{0, 2}
	var units []unit
	for _, u := range pl.units {
		for _, k := range u.targets {
			if k == target {
				units = append(units, u)
			}
		}
	}
	if len(units) == 0 {
		t.Fatal("no units target LIN_REG × PSD")
	}

	const goroutines = 8
	results := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Fold exactly as the engine does: lowest plan order wins. Each
			// goroutine owns one pooled session, as each engine worker does.
			ex := &exec{sess: monitor.NewSession()}
			defer ex.close()
			var first error
			for _, u := range units {
				errs := u.run(context.Background(), ex)
				for i, k := range u.targets {
					if k == target && errs[i] != nil && first == nil {
						first = errs[i]
					}
				}
			}
			results[g] = first
		}()
	}
	wg.Wait()
	for g, err := range results {
		if (err == nil) != (results[0] == nil) {
			t.Fatalf("goroutine %d folded %v, goroutine 0 folded %v", g, err, results[0])
		}
		if err != nil && err.Error() != results[0].Error() {
			t.Fatalf("goroutine %d folded %q, goroutine 0 folded %q", g, err, results[0])
		}
	}
}

// TestConcurrentRunsIndependent runs several whole-table engines at once;
// every one must produce the same rendered table. Under -race this doubles
// as the shared-state audit for sched.Runtime and monitor.Run.
func TestConcurrentRunsIndependent(t *testing.T) {
	p := ShortParams()
	want := Render(Table1(p))
	const runs = 4
	got := make([]string, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, err := Run(context.Background(), p, Options{Workers: 2})
			if err != nil {
				got[i] = fmt.Sprintf("error: %v", err)
				return
			}
			got[i] = Render(rows)
		}()
	}
	wg.Wait()
	for i, g := range got {
		if g != want {
			t.Errorf("concurrent run %d rendered:\n%s\nwant:\n%s", i, g, want)
		}
	}
}

func TestPlanCoversAllCells(t *testing.T) {
	pl := buildPlan(ShortParams())
	if len(pl.rows) != 7 {
		t.Fatalf("plan has %d rows, want 7", len(pl.rows))
	}
	covered := make(map[cellKey]int)
	for _, u := range pl.units {
		if len(u.targets) == 0 {
			t.Errorf("unit %q has no targets", u.name)
		}
		for _, k := range u.targets {
			covered[k]++
		}
	}
	for r := range pl.rows {
		for c := 0; c < 4; c++ {
			if covered[cellKey{r, c}] == 0 {
				t.Errorf("cell %s × %s has no units", pl.rows[r].Lang, pl.rows[r].Cells[c].Class)
			}
		}
	}
	if len(covered) != 4*len(pl.rows) {
		t.Errorf("units cover %d cells, want %d", len(covered), 4*len(pl.rows))
	}
}

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 64} {
		var mu sync.Mutex
		counts := make([]int, 37)
		ForEach(len(counts), workers, func(i int) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	var order []int
	ForEach(10, 1, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential ForEach visited %v", order)
		}
	}
	// Zero work is a no-op for any worker count.
	ForEach(0, 4, func(int) { t.Fatal("fn called for empty range") })
}

func TestPoolReusableAcrossBatches(t *testing.T) {
	// The pool's reason to exist: several Run batches on the same workers,
	// each batch a complete barrier, worker ids stable and in range so
	// per-worker state stays exclusively owned across rounds.
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		if p.Workers() != workers {
			t.Fatalf("pool of %d reports %d workers", workers, p.Workers())
		}
		var mu sync.Mutex
		for batch := 0; batch < 3; batch++ {
			counts := make([]int, 23)
			p.Run(len(counts), func(w, i int) {
				if w < 0 || w >= workers {
					t.Errorf("worker id %d out of range [0,%d)", w, workers)
				}
				mu.Lock()
				counts[i]++
				mu.Unlock()
			})
			// Run returned: the batch barrier guarantees every index ran.
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d batch %d: index %d ran %d times", workers, batch, i, c)
				}
			}
		}
		p.Run(0, func(int, int) { t.Fatal("fn called for empty batch") })
		p.Close()
		p.Close() // idempotent
	}
}

func TestPoolInlineWhenSingleWorker(t *testing.T) {
	// A one-worker pool runs on the calling goroutine in index order, so
	// sequential callers see sequential semantics.
	p := NewPool(1)
	defer p.Close()
	var order []int
	p.Run(10, func(w, i int) {
		if w != 0 {
			t.Fatalf("inline pool used worker %d", w)
		}
		order = append(order, i) // no lock: calling goroutine only
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("inline pool visited %v", order)
		}
	}
}
