package experiment

import (
	"fmt"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/word"
)

// Lemma65 is the alternation attack showing EC_LED ∉ PWD: a behaviour that
// alternates divergence phases (an append whose record stays invisible to
// gets) with convergence phases (gets catch up), staying inside EC_LED in
// the limit — every record eventually appears, and gets always form a chain
// — while forcing every process to report NO during every divergence phase.
// NO counts therefore grow without bound along an in-language word. The
// executions are tight (canonical schedule against Aτ), so x(E) = x~(E) and
// the predictive escape clause cannot justify the NOs: predictive weak
// decidability fails.
//
// The paper's proof is adaptive — it extends the word at whichever point the
// monitor under attack reports NO, defeating every monitor. The executable
// experiment fixes phase lengths and verifies, per phase, that the concrete
// monitor did report NO; a monitor that stays silent through a divergence
// phase fails differently (it misses the divergence on the pure-bad word,
// which the harness reports as the soundness counter-example instead).
type Lemma65 struct {
	// N is the number of processes (the paper uses 2).
	N int
	// Stages is the number of divergence/convergence alternations.
	Stages int
	// BadRounds and GoodRounds are the gets per process in each phase.
	BadRounds, GoodRounds int
}

// Lemma65Phase records one phase's verification.
type Lemma65Phase struct {
	// Stage index and whether this is the divergence (bad) half.
	Stage int
	Bad   bool
	// Lo and Hi delimit the phase's symbol range in the word.
	Lo, Hi int
	// NOs[p] is how many NOs process p reported with source position in
	// (Lo, Hi].
	NOs []int
}

// Lemma65Result is the attack outcome.
type Lemma65Result struct {
	// Word is the full exhibited behaviour.
	Word word.Word
	// SafetyOK reports the EC ordering clause held on the whole word, and
	// Converges the convergence diagnostic on its quiescent tail — together
	// the finite-run evidence that the ω-extension is in EC_LED.
	SafetyOK, Converges bool
	// TightSketch reports x(E) = x~(E): the escape clause is closed.
	TightSketch bool
	// Phases carry per-phase NO counts.
	Phases []Lemma65Phase
	// MinStageNOs is the minimum over processes and divergence stages of
	// the per-stage NO count; ≥ 1 demonstrates unbounded growth.
	MinStageNOs int
	// Run is the full execution.
	Run *monitor.Result
}

// Build constructs the staged word and the phase ranges.
func (l Lemma65) Build() (word.Word, []Lemma65Phase) {
	n, stages := l.N, l.Stages
	if n < 2 {
		n = 2
	}
	if stages < 1 {
		stages = 3
	}
	bad, good := l.BadRounds, l.GoodRounds
	if bad < 1 {
		bad = 3
	}
	if good < 1 {
		good = 3
	}
	b := word.NewB()
	var phases []Lemma65Phase
	var recs word.Seq
	pos := 0
	sym := func(k int) int { return 2 * k } // operations → symbol count
	for s := 0; s < stages; s++ {
		// Divergence phase: p0 appends a fresh record; gets keep returning
		// the old ledger.
		rec := word.Rec(fmt.Sprintf("r%d", s))
		stale := recs.Clone()
		recs = append(recs, rec)
		lo := sym(pos)
		b.Op(0, spec.OpAppend, rec, word.Unit{})
		pos++
		for r := 0; r < bad; r++ {
			for p := n - 1; p >= 0; p-- { // paper order: p2 first, then p1
				b.Op(p, spec.OpGet, nil, stale)
				pos++
			}
		}
		phases = append(phases, Lemma65Phase{Stage: s, Bad: true, Lo: lo, Hi: sym(pos)})
		// Convergence phase: gets catch up with the full ledger.
		lo = sym(pos)
		for r := 0; r < good; r++ {
			for p := 0; p < n; p++ {
				b.Op(p, spec.OpGet, nil, recs.Clone())
				pos++
			}
		}
		phases = append(phases, Lemma65Phase{Stage: s, Bad: false, Lo: lo, Hi: sym(pos)})
	}
	return b.Word(), phases
}

// Run mounts the attack on the monitor factory (which receives the timed
// adversary, like Figure 9's monitor).
func (l Lemma65) Run(mk func(tau *adversary.Timed) monitor.Monitor, kind adversary.ArrayKind) (*Lemma65Result, error) {
	n := l.N
	if n < 2 {
		n = 2
	}
	w, phases := l.Build()
	res, tau, err := ScheduledTimedRun(mk, n, w, kind, Canonical(w, n))
	if err != nil {
		return nil, fmt.Errorf("lemma 6.5 run: %w", err)
	}
	out := &Lemma65Result{
		Word:      res.History,
		SafetyOK:  check.ECLedgerSafety(res.History) == nil,
		Converges: check.ECLedgerConverges(res.History),
		Run:       res,
	}
	if sk, err := res.Sketch(n, tau.InvAt); err == nil {
		out.TightSketch = sk.Equal(res.History)
	}
	// Attribute NOs to phases by the source position consumed when each
	// verdict was reported. A verdict for the operation whose response sits
	// at word index r is recorded with r+2 symbols consumed (the adversary
	// keeps one symbol queued), so the windows shift by one symbol.
	for _, ph := range phases {
		ph.NOs = make([]int, n)
		for p := 0; p < n; p++ {
			for k, v := range res.Verdicts[p] {
				if v != monitor.No {
					continue
				}
				at := res.PulledAt[p][k]
				if at > ph.Lo+1 && at <= ph.Hi+1 {
					ph.NOs[p]++
				}
			}
		}
		out.Phases = append(out.Phases, ph)
	}
	out.MinStageNOs = -1
	for _, ph := range out.Phases {
		if !ph.Bad {
			continue
		}
		for _, c := range ph.NOs {
			if out.MinStageNOs < 0 || c < out.MinStageNOs {
				out.MinStageNOs = c
			}
		}
	}
	return out, nil
}

// Verify converts the attack into a pass/fail judgement: nil means the
// impossibility was demonstrated — an in-language tight behaviour on which
// every process reports NO in every divergence stage.
func (l Lemma65) Verify(mk func(tau *adversary.Timed) monitor.Monitor, kind adversary.ArrayKind) error {
	r, err := l.Run(mk, kind)
	if err != nil {
		return err
	}
	if !r.SafetyOK {
		return fmt.Errorf("lemma 6.5: staged word violates the EC ordering clause — construction bug")
	}
	if !r.Converges {
		return fmt.Errorf("lemma 6.5: staged word does not converge in its tail — construction bug")
	}
	if !r.TightSketch {
		return fmt.Errorf("lemma 6.5: execution not tight, the sketch escape clause remains open")
	}
	if r.MinStageNOs < 1 {
		return fmt.Errorf("lemma 6.5: some process reported no NO in a divergence stage (min %d) — the candidate monitor misses divergence, which is its own failure on the pure divergent word", r.MinStageNOs)
	}
	return nil
}
