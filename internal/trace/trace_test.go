package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/drv-go/drv/internal/word"
)

func sampleWord() word.Word {
	return word.Word{
		word.NewInv(0, "write", word.Int(3)),
		word.NewInv(1, "read", nil),
		word.NewRes(0, "write", word.Unit{}),
		word.NewRes(1, "read", word.Int(3)),
		word.NewInv(0, "append", word.Rec("r1")),
		word.NewRes(0, "append", word.Unit{}),
		word.NewInv(1, "get", nil),
		word.NewRes(1, "get", word.Seq{"r1"}),
	}
}

func TestRoundTripWord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	member := true
	if err := w.WriteMeta(Meta{N: 2, Lang: "LIN_REG", Member: &member, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	ww := sampleWord()
	if err := w.WriteWord(ww); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteVerdict(0, "YES", 12); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteVerdict(1, "NO", 15); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.N != 2 || tr.Meta.Lang != "LIN_REG" || tr.Meta.Member == nil || !*tr.Meta.Member || tr.Meta.Seed != 7 {
		t.Errorf("meta mismatch: %+v", tr.Meta)
	}
	if !tr.Word.Equal(ww) {
		t.Errorf("word mismatch:\n got %v\nwant %v", tr.Word, ww)
	}
	if got := tr.Verdicts[0]; len(got) != 1 || got[0] != "YES" {
		t.Errorf("verdicts[0] = %v", got)
	}
	if got := tr.Verdicts[1]; len(got) != 1 || got[0] != "NO" {
		t.Errorf("verdicts[1] = %v", got)
	}
	if tr.Steps[1][0] != 15 {
		t.Errorf("step = %d, want 15", tr.Steps[1][0])
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []word.Value{
		nil,
		word.Unit{},
		word.Int(0),
		word.Int(-42),
		word.Int(1 << 40),
		word.Rec(""),
		word.Rec("payload with spaces and \"quotes\""),
		word.Seq{},
		word.Seq{"a"},
		word.Seq{"a", "b", "c"},
	}
	for _, v := range vals {
		enc, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		dec, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		switch {
		case v == nil:
			if dec != nil {
				t.Errorf("nil round-trips to %v", dec)
			}
		default:
			if dec == nil || !v.Equal(dec) {
				t.Errorf("%v round-trips to %v", v, dec)
			}
		}
	}
}

func TestEncodeValueUnknownType(t *testing.T) {
	type alien struct{ word.Value }
	if _, err := EncodeValue(alien{}); err == nil {
		t.Error("expected error for unknown value type")
	}
}

func TestDecodeValueUnknownTag(t *testing.T) {
	if _, err := DecodeValue(&Value{T: "blob"}); err == nil {
		t.Error("expected error for unknown tag")
	}
}

func TestDecodeSymbolErrors(t *testing.T) {
	if _, err := DecodeSymbol(Event{Kind: KindMeta}); err == nil {
		t.Error("expected error decoding meta as symbol")
	}
	if _, err := DecodeSymbol(Event{Kind: KindSym, Sym: "bogus"}); err == nil {
		t.Error("expected error for bogus symbol kind")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json}\n")); err == nil {
		t.Error("expected parse error")
	}
	if _, err := Read(strings.NewReader(`{"kind":"wat"}` + "\n")); err == nil {
		t.Error("expected unknown-kind error")
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteMeta(Meta{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSymbol(word.NewInv(0, "inc", nil)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	in := "\n" + buf.String() + "\n\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Word) != 1 {
		t.Fatalf("got %d symbols, want 1", len(tr.Word))
	}
}

// randomWord builds an arbitrary well-formed-ish word for property testing
// of the encoding: the encoding must round-trip any symbol sequence, not just
// well-formed ones.
func randomWord(rng *rand.Rand, n int) word.Word {
	ops := []string{"read", "write", "inc", "append", "get"}
	w := make(word.Word, n)
	for i := range w {
		var v word.Value
		switch rng.Intn(4) {
		case 0:
			v = word.Int(rng.Int63n(100) - 50)
		case 1:
			v = word.Unit{}
		case 2:
			v = word.Rec("r" + string(rune('a'+rng.Intn(26))))
		case 3:
			v = nil
		}
		k := word.Inv
		if rng.Intn(2) == 0 {
			k = word.Res
		}
		w[i] = word.Symbol{Proc: rng.Intn(4), Kind: k, Op: ops[rng.Intn(len(ops))], Val: v}
	}
	return w
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ww := randomWord(rng, int(size%64))
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteMeta(Meta{N: 4}); err != nil {
			return false
		}
		if err := w.WriteWord(ww); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		tr, err := Read(&buf)
		if err != nil {
			return false
		}
		return tr.Word.Equal(ww)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
