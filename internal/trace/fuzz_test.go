package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/drv-go/drv/internal/word"
)

// FuzzTraceEncodeDecode round-trips the on-disk trace format in both
// directions. Structured direction: fuzz bytes build a word whose symbols
// must survive Encode/Decode exactly. Parser direction: the bytes are fed to
// Read as a hostile trace file; whatever parses must re-encode to a stream
// that parses to the same trace (decode ∘ encode = id on the parser's
// image), and the parser must never panic or accept symbols it cannot
// re-encode.
func FuzzTraceEncodeDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte(`{"kind":"meta","meta":{"n":2,"lang":"WEC_COUNT"}}` + "\n" +
		`{"kind":"sym","proc":0,"sym":"inv","op":"inc","val":{"t":"unit"}}` + "\n" +
		`{"kind":"sym","proc":0,"sym":"res","op":"inc","val":{"t":"unit"}}` + "\n" +
		`{"kind":"verdict","proc":0,"verdict":"YES","step":7}`))
	f.Add([]byte(`{"kind":"sym","proc":1,"sym":"res","op":"get","val":{"t":"seq","seq":["a","b"]}}`))
	// Empty and nested-empty sequences: all wire spellings of an empty seq
	// ({"t":"seq"}, "seq":null, "seq":[]) must decode to the canonical Seq{}
	// and re-encode to the canonical {"t":"seq"} line, and empty records
	// inside a sequence must survive untouched.
	f.Add([]byte(`{"kind":"meta","meta":{"n":1}}` + "\n" +
		`{"kind":"sym","proc":0,"sym":"res","op":"get","val":{"t":"seq"}}` + "\n" +
		`{"kind":"sym","proc":0,"sym":"res","op":"get","val":{"t":"seq","seq":null}}` + "\n" +
		`{"kind":"sym","proc":0,"sym":"res","op":"get","val":{"t":"seq","seq":[]}}` + "\n" +
		`{"kind":"sym","proc":0,"sym":"res","op":"get","val":{"t":"seq","seq":["","x",""]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzStructured(t, data)
		fuzzParser(t, data)
	})
}

// fuzzStructured builds symbols from the bytes and round-trips each through
// the event encoding.
func fuzzStructured(t *testing.T, data []byte) {
	var w word.Word
	for i := 0; i+1 < len(data) && len(w) < 32; i += 2 {
		a, b := data[i], data[i+1]
		proc := int(a % 4)
		var val word.Value
		switch b % 4 {
		case 0:
			val = word.Unit{}
		case 1:
			val = word.Int(int64(a) - 128)
		case 2:
			val = word.Rec(strings.Repeat("r", int(a%5)+1))
		default:
			s := word.Seq{"x", word.Rec([]byte{'a' + a%3}), "z"}[:a%4]
			if a%8 == 0 {
				s = nil // nil and empty Seq must share one canonical encoding
			}
			val = s
		}
		if a%2 == 0 {
			w = append(w, word.NewInv(proc, "op", val))
		} else {
			w = append(w, word.NewRes(proc, "op", val))
		}
	}
	for _, sym := range w {
		ev, err := EncodeSymbol(sym)
		if err != nil {
			t.Fatalf("cannot encode %v: %v", sym, err)
		}
		back, err := DecodeSymbol(ev)
		if err != nil {
			t.Fatalf("cannot decode %v: %v", ev, err)
		}
		if !back.Equal(sym) {
			t.Fatalf("round trip changed %v into %v", sym, back)
		}
		// Encode∘Decode is the identity on wire representations: the decoded
		// symbol re-encodes to byte-identical JSON, so empty and nil values
		// cannot drift between spellings across round trips.
		again, err := EncodeSymbol(back)
		if err != nil {
			t.Fatalf("cannot re-encode %v: %v", back, err)
		}
		j1, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		j2, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j1, j2) {
			t.Fatalf("re-encoding is not canonical: %s vs %s", j1, j2)
		}
	}
}

// fuzzParser feeds raw bytes to the trace reader and closes the loop on
// whatever it accepts.
func fuzzParser(t *testing.T, data []byte) {
	tr, err := Read(bytes.NewReader(data))
	if err != nil {
		return // hostile input rejected: fine
	}
	var buf bytes.Buffer
	wr := NewWriter(&buf)
	if err := wr.WriteMeta(tr.Meta); err != nil {
		t.Fatalf("re-encoding meta: %v", err)
	}
	if err := wr.WriteWord(tr.Word); err != nil {
		t.Fatalf("re-encoding accepted word: %v", err)
	}
	for proc, vs := range tr.Verdicts {
		for k, v := range vs {
			if err := wr.WriteVerdict(proc, v, tr.Steps[proc][k]); err != nil {
				t.Fatalf("re-encoding verdict: %v", err)
			}
		}
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("re-encoded trace does not parse: %v", err)
	}
	if back.Meta.N != tr.Meta.N || back.Meta.Lang != tr.Meta.Lang ||
		back.Meta.Seed != tr.Meta.Seed || back.Meta.Note != tr.Meta.Note {
		t.Fatalf("meta changed: %+v vs %+v", tr.Meta, back.Meta)
	}
	switch {
	case (back.Meta.Member == nil) != (tr.Meta.Member == nil):
		t.Fatalf("meta Member presence changed: %+v vs %+v", tr.Meta, back.Meta)
	case back.Meta.Member != nil && *back.Meta.Member != *tr.Meta.Member:
		t.Fatalf("meta Member value changed: %v vs %v", *tr.Meta.Member, *back.Meta.Member)
	}
	if !back.Word.Equal(tr.Word) {
		t.Fatalf("word changed:\n%v\nvs\n%v", tr.Word, back.Word)
	}
	if len(back.Verdicts) != len(tr.Verdicts) {
		t.Fatalf("verdict process sets differ: %v vs %v", tr.Verdicts, back.Verdicts)
	}
	for proc, vs := range tr.Verdicts {
		if len(back.Verdicts[proc]) != len(vs) {
			t.Fatalf("process %d verdict counts differ", proc)
		}
		for k := range vs {
			if back.Verdicts[proc][k] != vs[k] || back.Steps[proc][k] != tr.Steps[proc][k] {
				t.Fatalf("process %d verdict %d changed", proc, k)
			}
		}
	}
}
