// Package trace implements the on-disk trace format used by the command-line
// tools: a JSON-lines stream of execution events — invocation and response
// symbols, monitor verdicts, and metadata — that can be recorded during a
// monitored run and re-checked offline. Traces make the runtime-verification
// pipeline inspectable: cmd/drvtrace generates labelled traces, cmd/drvmon
// replays them through the offline consistency checkers, and tests round-trip
// words through the encoding.
//
// The format is re-homed in the exported exp/trace package so external
// embedders can record and replay histories; this package aliases it (type
// identity is preserved) for the internal pipeline.
package trace

import (
	exptrace "github.com/drv-go/drv/exp/trace"
)

// EventKind tags a trace line.
type EventKind = exptrace.EventKind

// The event kinds of the format. A trace starts with one Meta line, followed
// by Sym and Verdict lines in the order they occurred.
const (
	// KindMeta is the header line: process count, language, ground truth.
	KindMeta = exptrace.KindMeta
	// KindSym is one symbol of the input word x(E).
	KindSym = exptrace.KindSym
	// KindVerdict is one reported verdict of a monitor process.
	KindVerdict = exptrace.KindVerdict
)

// Meta is the trace header.
type Meta = exptrace.Meta

// Event is one line of a trace file.
type Event = exptrace.Event

// Value is the JSON encoding of a word.Value: a type tag plus payload.
type Value = exptrace.WireValue

var (
	// EncodeValue converts a word.Value to its trace representation.
	EncodeValue = exptrace.EncodeValue
	// DecodeValue converts a trace representation back to a word.Value.
	DecodeValue = exptrace.DecodeValue
	// EncodeSymbol converts a word.Symbol to a trace event.
	EncodeSymbol = exptrace.EncodeSymbol
	// DecodeSymbol converts a trace event back to a word.Symbol.
	DecodeSymbol = exptrace.DecodeSymbol
)

// Writer streams trace events to an underlying writer, one JSON object per
// line.
type Writer = exptrace.Writer

// NewWriter wraps w in a trace writer.
var NewWriter = exptrace.NewWriter

// Trace is a fully parsed trace file.
type Trace = exptrace.Trace

// Read parses a whole trace stream.
var Read = exptrace.Read
