package spec

import (
	"math/rand"
	"testing"

	"github.com/drv-go/drv/internal/word"
)

func TestRegister(t *testing.T) {
	r := Register()
	st := r.Init()
	st2, ret, ok := st.Apply(OpRead, word.Unit{})
	if !ok || !ret.Equal(word.Int(0)) {
		t.Fatalf("initial read = %v ok=%v", ret, ok)
	}
	st3, ret, ok := st2.Apply(OpWrite, word.Int(7))
	if !ok || !ret.Equal(word.Unit{}) {
		t.Fatalf("write = %v ok=%v", ret, ok)
	}
	// Old state is unchanged (immutability).
	_, ret, _ = st2.Apply(OpRead, word.Unit{})
	if !ret.Equal(word.Int(0)) {
		t.Errorf("old state mutated: read = %v", ret)
	}
	_, ret, _ = st3.Apply(OpRead, word.Unit{})
	if !ret.Equal(word.Int(7)) {
		t.Errorf("new state read = %v, want 7", ret)
	}
	if _, _, ok := st.Apply("bogus", word.Unit{}); ok {
		t.Error("unknown op should be rejected")
	}
	if _, _, ok := st.Apply(OpWrite, word.Unit{}); ok {
		t.Error("write with non-int arg should be rejected")
	}
}

func TestCounter(t *testing.T) {
	c := Counter()
	st := c.Init()
	for i := 0; i < 3; i++ {
		st, _, _ = st.Apply(OpInc, word.Unit{})
	}
	_, ret, ok := st.Apply(OpRead, word.Unit{})
	if !ok || !ret.Equal(word.Int(3)) {
		t.Errorf("read after 3 incs = %v", ret)
	}
}

func TestLedger(t *testing.T) {
	l := Ledger()
	st := l.Init()
	_, ret, ok := st.Apply(OpGet, word.Unit{})
	if !ok || !ret.Equal(word.Seq{}) {
		t.Fatalf("initial get = %v", ret)
	}
	st, _, _ = st.Apply(OpAppend, word.Rec("a"))
	st, _, _ = st.Apply(OpAppend, word.Rec("b"))
	_, ret, _ = st.Apply(OpGet, word.Unit{})
	if !ret.Equal(word.Seq{"a", "b"}) {
		t.Errorf("get = %v, want [a·b]", ret)
	}
}

func TestQueue(t *testing.T) {
	q := Queue()
	st := q.Init()
	_, ret, _ := st.Apply(OpDeq, word.Unit{})
	if !ret.Equal(Empty) {
		t.Errorf("deq on empty = %v", ret)
	}
	st, _, _ = st.Apply(OpEnq, word.Int(10))
	st, _, _ = st.Apply(OpEnq, word.Int(20))
	st, ret, _ = st.Apply(OpDeq, word.Unit{})
	if !ret.Equal(word.Int(10)) {
		t.Errorf("first deq = %v, want 10 (FIFO)", ret)
	}
	st, ret, _ = st.Apply(OpDeq, word.Unit{})
	if !ret.Equal(word.Int(20)) {
		t.Errorf("second deq = %v, want 20", ret)
	}
	_, ret, _ = st.Apply(OpDeq, word.Unit{})
	if !ret.Equal(Empty) {
		t.Errorf("deq after drain = %v", ret)
	}
}

func TestStack(t *testing.T) {
	s := Stack()
	st := s.Init()
	st, _, _ = st.Apply(OpPush, word.Int(10))
	st, _, _ = st.Apply(OpPush, word.Int(20))
	st, ret, _ := st.Apply(OpPop, word.Unit{})
	if !ret.Equal(word.Int(20)) {
		t.Errorf("first pop = %v, want 20 (LIFO)", ret)
	}
	st, ret, _ = st.Apply(OpPop, word.Unit{})
	if !ret.Equal(word.Int(10)) {
		t.Errorf("second pop = %v, want 10", ret)
	}
	_, ret, _ = st.Apply(OpPop, word.Unit{})
	if !ret.Equal(Empty) {
		t.Errorf("pop on empty = %v", ret)
	}
}

func TestStateKeysDistinguish(t *testing.T) {
	// Distinct states must have distinct keys or the memoized checkers would
	// conflate them.
	q := Queue()
	a := q.Init()
	b, _, _ := a.Apply(OpEnq, word.Int(1))
	c, _, _ := b.Apply(OpEnq, word.Int(2))
	d, _, _ := a.Apply(OpEnq, word.Int(12))
	keys := map[string]bool{a.Key(): true, b.Key(): true, c.Key(): true, d.Key(): true}
	if len(keys) != 4 {
		t.Errorf("queue state keys collide: %v %v %v %v", a.Key(), b.Key(), c.Key(), d.Key())
	}
	// enq(1);enq(2) must differ from enq(12).
	if c.Key() == d.Key() {
		t.Errorf("ambiguous encoding: %q vs %q", c.Key(), d.Key())
	}
}

func TestRun(t *testing.T) {
	reg := Register()
	good := word.Operations(word.NewB().
		Op(0, OpWrite, word.Int(3), word.Unit{}).
		Op(1, OpRead, word.Unit{}, word.Int(3)).
		Word())
	if !Run(reg, good) {
		t.Error("valid sequential history rejected")
	}
	bad := word.Operations(word.NewB().
		Op(0, OpWrite, word.Int(3), word.Unit{}).
		Op(1, OpRead, word.Unit{}, word.Int(4)).
		Word())
	if Run(reg, bad) {
		t.Error("invalid sequential history accepted")
	}
}

func TestRandArgTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, obj := range []Object{Register(), Counter(), Ledger(), Queue(), Stack()} {
		for _, sig := range obj.Ops() {
			v := obj.RandArg(sig.Name, rng)
			st := obj.Init()
			if _, _, ok := st.Apply(sig.Name, v); !ok {
				t.Errorf("%s.%s rejects its own RandArg %v", obj.Name(), sig.Name, v)
			}
		}
	}
}
