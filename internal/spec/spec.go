// Package spec defines sequential object specifications: deterministic state
// machines against which the consistency checkers (package check) and the
// predictive monitors (package monitor) validate concurrent histories. The
// paper's examples — register, counter, ledger (Examples 1–4) — are provided,
// plus the queue and stack used by the linearizability results of [17] that
// Section 6.2 generalizes.
//
// The definitions are re-homed in the exported exp/trace package so external
// embedders can supply their own objects; this package aliases them (type
// identity is preserved) for the internal pipeline.
package spec

import (
	"github.com/drv-go/drv/exp/trace"
)

// State is an immutable sequential-object state.
type State = trace.State

// KeyAppender is an optional fast path for State.Key.
type KeyAppender = trace.KeyAppender

// OpSig describes one operation of an object's interface.
type OpSig = trace.OpSig

// RootInterner is an optional Object interface for states with internal
// sharing.
type RootInterner = trace.RootInterner

// Object is a sequential object: a name, an initial state, and an operation
// signature set.
type Object = trace.Object

// Run applies the operations of a sequential word to the object's initial
// state and reports whether every response matches the specification.
var Run = trace.SeqValid

// Operation names shared across objects.
const (
	OpRead   = trace.OpRead
	OpWrite  = trace.OpWrite
	OpInc    = trace.OpInc
	OpAppend = trace.OpAppend
	OpGet    = trace.OpGet
	OpEnq    = trace.OpEnq
	OpDeq    = trace.OpDeq
	OpPush   = trace.OpPush
	OpPop    = trace.OpPop
	// OpPropose is the propose operation of the Consensus object.
	OpPropose = trace.OpPropose
	// OpScan is the scan operation of the Vector object.
	OpScan = trace.OpScan
)

// Empty is the return value of deq/pop on an empty queue/stack.
const Empty = trace.Empty

var (
	// Register returns the sequential read/write register of Example 1.
	Register = trace.Register
	// Counter returns the sequential counter of Example 2.
	Counter = trace.Counter
	// Consensus returns the sequential one-shot consensus object.
	Consensus = trace.Consensus
	// Ledger returns the sequential append/get ledger of Example 4.
	Ledger = trace.Ledger
	// Vector returns the n-cell upd/scan vector object.
	Vector = trace.Vector
	// OpUpd returns the update operation name for cell i of a Vector.
	OpUpd = trace.OpUpd
	// Queue returns the sequential FIFO queue.
	Queue = trace.Queue
	// Stack returns the sequential LIFO stack.
	Stack = trace.Stack
)
