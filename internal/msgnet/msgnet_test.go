package msgnet

import (
	"testing"

	"github.com/drv-go/drv/internal/sched"
)

// pump runs the runtime until quiescence or the step bound.
func pump(rt *sched.Runtime, max int) {
	for rt.Steps() < max {
		if !rt.Step() {
			break
		}
	}
}

func TestFIFODeliversInOrder(t *testing.T) {
	rt := sched.New(2, sched.RoundRobin())
	nt := New(2, FIFOOrder())
	nt.Register(rt)

	var got []int
	rt.Spawn(0, func(p *sched.Proc) {
		for i := 1; i <= 5; i++ {
			nt.Send(p, Message{To: 1, Tag: "t", Seq: i})
		}
	})
	rt.Spawn(1, func(p *sched.Proc) {
		for len(got) < 5 {
			if m, ok := nt.TryRecv(p, nil); ok {
				got = append(got, m.Seq)
			}
		}
	})
	defer rt.Stop()
	pump(rt, 10_000)
	if len(got) != 5 {
		t.Fatalf("delivered %d messages, want 5", len(got))
	}
	for i, s := range got {
		if s != i+1 {
			t.Errorf("delivery %d has seq %d, want %d", i, s, i+1)
		}
	}
}

func TestRandomOrderDeliversEverything(t *testing.T) {
	rt := sched.New(2, sched.Random(5))
	nt := New(2, RandomOrder(5))
	nt.Register(rt)

	const total = 20
	seen := map[int]bool{}
	rt.Spawn(0, func(p *sched.Proc) {
		for i := 0; i < total; i++ {
			nt.Send(p, Message{To: 1, Tag: "t", Seq: i})
		}
	})
	rt.Spawn(1, func(p *sched.Proc) {
		for len(seen) < total {
			if m, ok := nt.TryRecv(p, nil); ok {
				if seen[m.Seq] {
					t.Errorf("duplicate delivery of seq %d", m.Seq)
				}
				seen[m.Seq] = true
			}
		}
	})
	defer rt.Stop()
	pump(rt, 100_000)
	if len(seen) != total {
		t.Fatalf("delivered %d distinct messages, want %d", len(seen), total)
	}
	sent, deliv := nt.Stats()
	if sent != total || deliv != total {
		t.Errorf("stats sent=%d delivered=%d, want %d/%d", sent, deliv, total, total)
	}
}

func TestRecvFilter(t *testing.T) {
	rt := sched.New(2, sched.RoundRobin())
	nt := New(2, FIFOOrder())
	nt.Register(rt)

	var tagged Message
	rt.Spawn(0, func(p *sched.Proc) {
		nt.Send(p, Message{To: 1, Tag: "noise", Seq: 1})
		nt.Send(p, Message{To: 1, Tag: "want", Seq: 2})
	})
	rt.Spawn(1, func(p *sched.Proc) {
		tagged = nt.Recv(p, func(m Message) bool { return m.Tag == "want" })
	})
	defer rt.Stop()
	pump(rt, 10_000)
	if tagged.Seq != 2 {
		t.Errorf("filtered recv got %v", tagged)
	}
}

func TestCrashDropsMessages(t *testing.T) {
	rt := sched.New(2, sched.RoundRobin())
	nt := New(2, FIFOOrder())
	nt.Register(rt)

	rt.Spawn(0, func(p *sched.Proc) {
		for i := 0; i < 10; i++ {
			nt.Send(p, Message{To: 1, Tag: "t", Seq: i})
		}
	})
	rt.Spawn(1, func(p *sched.Proc) {
		for {
			p.Pause()
		}
	})
	nt.Crash(1)
	rt.Crash(1)
	defer rt.Stop()
	pump(rt, 10_000)
	if nt.PendingCount() != 0 {
		t.Errorf("%d messages still pending; deliveries to crashed process should vanish", nt.PendingCount())
	}
	if len(nt.inboxes[1]) != 0 {
		t.Errorf("crashed inbox holds %d messages", len(nt.inboxes[1]))
	}
}

func TestStarveOrderPrefersOthers(t *testing.T) {
	// With messages pending to both 1 and 2 and victim 1, deliveries to 2
	// happen first; victim messages arrive only once nothing else is left.
	nt := New(3, StarveOrder(1, FIFOOrder()))
	nt.pending = []Message{
		{To: 1, Seq: 1},
		{To: 2, Seq: 2},
		{To: 1, Seq: 3},
		{To: 2, Seq: 4},
	}
	nt.deliverStep()
	nt.deliverStep()
	if got := len(nt.inboxes[2]); got != 2 {
		t.Fatalf("after two deliveries process 2 has %d messages, want 2 (victim served first?)", got)
	}
	if len(nt.inboxes[1]) != 0 {
		t.Fatalf("victim received messages while others were pending")
	}
	nt.deliverStep()
	nt.deliverStep()
	if got := len(nt.inboxes[1]); got != 2 {
		t.Fatalf("victim ended with %d messages, want 2 — starvation must not become loss", got)
	}
	if nt.inboxes[2][0].Seq != 2 || nt.inboxes[2][1].Seq != 4 {
		t.Errorf("process 2 deliveries out of order: %v", nt.inboxes[2])
	}
}
