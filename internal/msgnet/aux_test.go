package msgnet

import (
	"fmt"
	"testing"

	"github.com/drv-go/drv/internal/sched"
)

// TestDropScheduleIsDeterministic checks the loss schedule drops exactly the
// named send indices, identically on every run.
func TestDropScheduleIsDeterministic(t *testing.T) {
	deliveredCount := func() int {
		rt := sched.New(2, sched.RoundRobin())
		defer rt.Stop()
		nt := New(2, FIFOOrder())
		nt.SetDrops([]int{1, 3, 99})
		nt.Register(rt)
		rt.Spawn(0, func(p *sched.Proc) {
			for i := 0; i < 5; i++ {
				nt.Send(p, Message{To: 1, Tag: "t", Seq: i})
			}
		})
		rt.Spawn(1, func(p *sched.Proc) { p.Pause() })
		pump(rt, 100)
		sent, deliv := nt.Stats()
		if sent != 5 {
			t.Fatalf("sent %d messages, want 5", sent)
		}
		if nt.Dropped() != 2 {
			t.Fatalf("dropped %d messages, want 2 (index 99 never happens)", nt.Dropped())
		}
		return deliv
	}
	first := deliveredCount()
	if first != 3 {
		t.Fatalf("delivered %d messages, want 3", first)
	}
	if again := deliveredCount(); again != first {
		t.Fatalf("drop schedule not deterministic: %d then %d deliveries", first, again)
	}
}

// TestAuxSendSuppressedAfterCrash checks aux-side sends by crashed processes
// vanish: aux actors have no scheduler gate, so the network enforces it.
func TestAuxSendSuppressedAfterCrash(t *testing.T) {
	nt := New(2, FIFOOrder())
	nt.AuxSend(0, Message{To: 1, Tag: "a"})
	nt.Crash(0)
	nt.AuxSend(0, Message{To: 1, Tag: "b"})
	if nt.PendingCount() != 1 {
		t.Fatalf("pending %d messages, want only the pre-crash one", nt.PendingCount())
	}
	sent, _ := nt.Stats()
	if sent != 1 {
		t.Fatalf("sent %d, want 1: crashed sends must not count", sent)
	}
}

// TestAuxRecvAndInboxHas checks the no-step receive pair used by replica aux
// actors: InboxHas is a pure read, AuxRecv dequeues the oldest match.
func TestAuxRecvAndInboxHas(t *testing.T) {
	rt := sched.New(1, sched.RoundRobin())
	defer rt.Stop()
	nt := New(1, FIFOOrder())
	nt.Register(rt)
	rt.Spawn(0, func(p *sched.Proc) {
		nt.Send(p, Message{To: 0, Tag: "x", Seq: 1})
		nt.Send(p, Message{To: 0, Tag: "y", Seq: 2})
		nt.Send(p, Message{To: 0, Tag: "x", Seq: 3})
	})
	pump(rt, 50)
	isX := func(m Message) bool { return m.Tag == "x" }
	if !nt.InboxHas(0, isX) {
		t.Fatal("InboxHas misses a waiting match")
	}
	m, ok := nt.AuxRecv(0, isX)
	if !ok || m.Seq != 1 {
		t.Fatalf("AuxRecv got %v %v, want the oldest x (seq 1)", m, ok)
	}
	m, ok = nt.AuxRecv(0, isX)
	if !ok || m.Seq != 3 {
		t.Fatalf("AuxRecv got %v %v, want seq 3", m, ok)
	}
	if nt.InboxHas(0, isX) {
		t.Fatal("InboxHas sees an x after both were consumed")
	}
	if !nt.InboxHas(0, nil) {
		t.Fatal("nil filter misses the remaining y")
	}
}

// TestAuxEchoServersDeliverEverything drives n client processes against n
// echo aux servers over a seeded random order — the shape of the explorer's
// emulation runs, and the -race tier's concurrent-delivery coverage: the
// scheduler hands control between client goroutines and inline aux steps, so
// a missing handoff barrier would trip the race detector here.
func TestAuxEchoServersDeliverEverything(t *testing.T) {
	const n = 4
	const msgs = 6
	rt := sched.New(n, sched.Random(11))
	defer rt.Stop()
	nt := New(n, RandomOrder(7))
	nt.Register(rt)
	for i := 0; i < n; i++ {
		i := i
		isReq := func(m Message) bool { return m.Tag == "req" }
		rt.AddAux(fmt.Sprintf("echo-%d", i), func() bool {
			return nt.InboxHas(i, isReq)
		}, func() {
			m, ok := nt.AuxRecv(i, isReq)
			if !ok {
				t.Error("echo server stepped with no request")
				return
			}
			nt.AuxSend(i, Message{To: m.From, Tag: "ack", Seq: m.Seq})
		})
	}
	got := make([]int, n)
	for id := 0; id < n; id++ {
		id := id
		rt.Spawn(id, func(p *sched.Proc) {
			for k := 0; k < msgs; k++ {
				nt.Send(p, Message{To: (id + 1) % n, Tag: "req", Seq: k})
				m := nt.RecvAwait(p, func(m Message) bool { return m.Tag == "ack" && m.Seq == k })
				got[id] = m.Seq + 1
			}
		})
	}
	pump(rt, 10_000)
	for id, g := range got {
		if g != msgs {
			t.Errorf("process %d completed %d echo rounds, want %d", id, g, msgs)
		}
	}
}
