// Package msgnet is the asynchronous message-passing substrate: a reliable
// but unordered-and-unboundedly-delayed network among n crash-prone
// processes, integrated with the cooperative scheduler. The paper's
// possibility results use only read/write registers "hence can be simulated
// in asynchronous message-passing systems tolerating crash faults in less
// than half the processes [5]" — package abd builds that simulation (the
// ABD register emulation) on top of this network, closing the loop from the
// shared-memory theorems to deployable message-passing monitors.
//
// Delivery is adversarial: a network actor registered with the scheduler
// delivers exactly one pending message per actor step, chosen by a seeded
// policy, so message delays and reorderings are controlled by the same
// schedule machinery that drives process steps. Messages are never
// duplicated; by default they are never lost either, only delayed
// arbitrarily, which together with crash injection realizes the standard
// asynchronous crash-fault model. An explicit loss schedule (SetDrops, or the
// Schedule type that packages order, seed and drops for the explorer) lossily
// degrades the network deterministically: the k-th send vanishes for each
// scheduled k, so lossy runs replay bit-identically too.
package msgnet

import (
	"fmt"
	"math/rand"

	"github.com/drv-go/drv/internal/sched"
)

// Message is one unit of transfer. Payloads are opaque to the network.
type Message struct {
	// From and To are process IDs.
	From, To int
	// Tag routes the message to the protocol handler (e.g. "read-req").
	Tag string
	// Seq is a protocol-chosen sequence number; opaque to the network.
	Seq int
	// Body is the payload; opaque to the network.
	Body any
}

// String renders the message for experiment logs.
func (m Message) String() string {
	return fmt.Sprintf("%d→%d %s#%d", m.From, m.To, m.Tag, m.Seq)
}

// Order decides which pending message the network delivers next.
type Order interface {
	// Pick returns an index into pending (non-empty).
	Pick(pending []Message, step int) int
}

// FIFOOrder delivers messages in send order: the most synchronous-looking
// network, useful as a baseline.
func FIFOOrder() Order { return fifoOrder{} }

type fifoOrder struct{}

func (fifoOrder) Pick([]Message, int) int { return 0 }

// LIFOOrder delivers the newest pending message first: older messages get
// buried under fresh traffic, sustaining long partial-propagation windows (a
// broadcast caught mid-flight can stay mid-flight indefinitely) — the most
// adversarial deterministic order short of loss.
func LIFOOrder() Order { return lifoOrder{} }

type lifoOrder struct{}

func (lifoOrder) Pick(pending []Message, _ int) int { return len(pending) - 1 }

// RandomOrder delivers a uniformly random pending message: the standard
// asynchronous adversary.
func RandomOrder(seed int64) Order {
	return &randomOrder{rng: rand.New(rand.NewSource(seed))}
}

type randomOrder struct{ rng *rand.Rand }

func (o *randomOrder) Pick(pending []Message, _ int) int {
	return o.rng.Intn(len(pending))
}

// reseeder is the optional Order extension Net.Reset uses to re-arm a seeded
// order in place instead of rebuilding it: rand.Rand.Seed restores exactly
// the state a fresh rand.NewSource yields, so a reseeded order picks the same
// delivery sequence as a fresh one.
type reseeder interface{ reseed(seed int64) }

func (o *randomOrder) reseed(seed int64) { o.rng.Seed(seed) }

func (o *starveOrder) reseed(seed int64) {
	if r, ok := o.inner.(reseeder); ok {
		r.reseed(seed)
	}
}

// StarveOrder starves one process: messages to the victim are delivered only
// when nothing else is pending. It exercises protocol liveness under maximal
// unfairness short of message loss.
func StarveOrder(victim int, inner Order) Order {
	return &starveOrder{victim: victim, inner: inner}
}

type starveOrder struct {
	victim int
	inner  Order
}

func (o *starveOrder) Pick(pending []Message, step int) int {
	other := make([]int, 0, len(pending))
	for i, m := range pending {
		if m.To != o.victim {
			other = append(other, i)
		}
	}
	if len(other) == 0 {
		return o.inner.Pick(pending, step)
	}
	sub := make([]Message, len(other))
	for k, i := range other {
		sub[k] = pending[i]
	}
	return other[o.inner.Pick(sub, step)]
}

// Net is the network. All methods must be called from scheduler-controlled
// goroutines (one runs at a time), so no further synchronization is needed.
type Net struct {
	n     int
	order Order
	// orderKind names the Schedule order the net was built from ("" when the
	// order was passed directly to New); Schedule.Reset uses it to decide
	// whether the order can be reseeded in place.
	orderKind string
	pending   []Message
	inboxes   [][]Message
	crashed   []bool
	drops     map[int]bool
	sent      int
	deliv     int
	dropped   int
}

// New builds a network for n processes with the given delivery order.
func New(n int, order Order) *Net {
	if order == nil {
		order = FIFOOrder()
	}
	nt := &Net{order: order}
	nt.Reset(n, order)
	return nt
}

// Reset restores the network to its freshly built state for n processes with
// the given delivery order, reusing the inbox and pending buffers — the
// pooled-lifecycle hook that lets emulations keep their *Net pointer across
// scenarios. Passing the current order (e.g. after reseeding it in place)
// keeps it.
func (nt *Net) Reset(n int, order Order) {
	if order == nil {
		order = FIFOOrder()
	}
	nt.n, nt.order = n, order
	nt.pending = nt.pending[:0]
	nt.drops = nil
	nt.sent, nt.deliv, nt.dropped = 0, 0, 0
	if cap(nt.inboxes) >= n {
		nt.inboxes = nt.inboxes[:n]
		nt.crashed = nt.crashed[:n]
	} else {
		nt.inboxes = make([][]Message, n)
		nt.crashed = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		nt.inboxes[i] = nt.inboxes[i][:0]
		nt.crashed[i] = false
	}
}

// Register installs the delivery actor on the runtime and returns its actor
// ID for use in scheduling policies.
func (nt *Net) Register(rt *sched.Runtime) int {
	return rt.AddAux("msgnet-delivery", nt.deliverable, nt.deliverStep)
}

func (nt *Net) deliverable() bool { return len(nt.pending) > 0 }

// deliverStep moves one pending message into its destination inbox; the
// delivery event of the asynchronous network.
func (nt *Net) deliverStep() {
	i := nt.order.Pick(nt.pending, nt.deliv)
	m := nt.pending[i]
	nt.pending = append(nt.pending[:i], nt.pending[i+1:]...)
	nt.deliv++
	if nt.crashed[m.To] {
		return // messages to crashed processes vanish
	}
	nt.inboxes[m.To] = append(nt.inboxes[m.To], m)
}

// SetDrops installs a deterministic loss schedule: the k-th send (indexing
// the global send counter from zero) is dropped for every k in drops. Loss is
// a schedule, not a probability, so runs replay bit-identically; dropping a
// send that never happens is a no-op, mirroring crash schedules past the end
// of a run.
func (nt *Net) SetDrops(drops []int) {
	if len(drops) == 0 {
		nt.drops = nil
		return
	}
	nt.drops = make(map[int]bool, len(drops))
	for _, k := range drops {
		nt.drops[k] = true
	}
}

// enqueue assigns the message its global send index and either queues it for
// delivery or drops it per the loss schedule.
func (nt *Net) enqueue(m Message) {
	k := nt.sent
	nt.sent++
	if nt.drops[k] {
		nt.dropped++
		return
	}
	nt.pending = append(nt.pending, m)
}

// Send enqueues a message; one step for the sender. Sends by crashed
// processes are dropped by the scheduler never running them, not here.
func (nt *Net) Send(p *sched.Proc, m Message) {
	m.From = p.ID
	p.Pause()
	nt.enqueue(m)
}

// AuxSend enqueues a message on behalf of process from without consuming a
// scheduler step — for replica aux actors, whose whole serve executes inline
// as one actor step. Sends by crashed processes are suppressed here because
// no scheduler gate exists for aux actors.
func (nt *Net) AuxSend(from int, m Message) {
	if nt.crashed[from] {
		return
	}
	m.From = from
	nt.enqueue(m)
}

// Broadcast sends m to every process including the sender (self-delivery
// models the standard "send to all" primitive); one step per recipient.
func (nt *Net) Broadcast(p *sched.Proc, m Message) {
	for to := 0; to < nt.n; to++ {
		mm := m
		mm.To = to
		nt.Send(p, mm)
	}
}

// TryRecv dequeues the oldest inbox message matching the filter, without
// blocking; one step. A nil filter matches everything.
func (nt *Net) TryRecv(p *sched.Proc, match func(Message) bool) (Message, bool) {
	p.Pause()
	box := nt.inboxes[p.ID]
	for i, m := range box {
		if match == nil || match(m) {
			nt.inboxes[p.ID] = append(box[:i:i], box[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

// Recv blocks (consuming steps) until a matching message arrives.
func (nt *Net) Recv(p *sched.Proc, match func(Message) bool) Message {
	for {
		if m, ok := nt.TryRecv(p, match); ok {
			return m
		}
	}
}

// InboxHas reports whether a message matching the filter waits in id's inbox,
// without consuming a step — for aux-actor runnable gates and Await
// conditions. A nil filter matches everything.
func (nt *Net) InboxHas(id int, match func(Message) bool) bool {
	for _, m := range nt.inboxes[id] {
		if match == nil || match(m) {
			return true
		}
	}
	return false
}

// AuxRecv dequeues the oldest matching inbox message without consuming a
// step — the receive half of an aux actor's serve, or the dequeue after an
// Await grant (the grant is the step).
func (nt *Net) AuxRecv(id int, match func(Message) bool) (Message, bool) {
	box := nt.inboxes[id]
	for i, m := range box {
		if match == nil || match(m) {
			nt.inboxes[id] = append(box[:i:i], box[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

// RecvAwait parks p on the scheduler gate until a matching message waits in
// its inbox, then dequeues it. The whole receive costs one step (the grant);
// unlike Recv it never busy-waits, so a process starved of its quorum
// quiesces instead of burning the step budget.
func (nt *Net) RecvAwait(p *sched.Proc, match func(Message) bool) Message {
	p.Await(func() bool { return nt.InboxHas(p.ID, match) })
	m, _ := nt.AuxRecv(p.ID, match)
	return m
}

// Crash marks a process crashed: its inbox is discarded and future messages
// to it vanish. Call together with Runtime.Crash.
func (nt *Net) Crash(id int) {
	nt.crashed[id] = true
	nt.inboxes[id] = nil
}

// Stats returns how many messages were sent and delivered.
func (nt *Net) Stats() (sent, delivered int) { return nt.sent, nt.deliv }

// Dropped returns how many sends the loss schedule discarded.
func (nt *Net) Dropped() int { return nt.dropped }

// PendingCount returns the number of in-flight messages.
func (nt *Net) PendingCount() int { return len(nt.pending) }
