package msgnet

import (
	"fmt"
	"strconv"
	"strings"
)

// Delivery-order kinds a Schedule can name.
const (
	OrderFIFO   = "fifo"
	OrderLIFO   = "lifo"
	OrderRandom = "random"
	OrderStarve = "starve"
)

// Schedule bounds for ParseSchedule; explorer specs obey the same limits so
// every spec-carried schedule parses back.
const (
	// MaxScheduleDrops caps the loss schedule's length.
	MaxScheduleDrops = 16
	// MaxScheduleDropIdx caps each dropped send index.
	MaxScheduleDropIdx = 1 << 20
)

// Schedule is a deterministic network schedule: a delivery-order kind, the
// seed driving it (unused by fifo), and an optional loss schedule of global
// send indices to drop. A Schedule plus a process count fully determines the
// network's behaviour, which is what lets the explorer treat message delay,
// reorder and loss as one replayable spec axis.
type Schedule struct {
	Order string
	Seed  int64
	Drops []int
}

// String renders the schedule canonically: "fifo", "lifo", "random/7",
// "starve/7", with an optional "!k1,k2,..." loss suffix. The deterministic
// orders carry no seed.
func (s Schedule) String() string {
	var b strings.Builder
	b.WriteString(s.Order)
	if s.Order != OrderFIFO && s.Order != OrderLIFO {
		b.WriteByte('/')
		b.WriteString(strconv.FormatInt(s.Seed, 10))
	}
	for i, k := range s.Drops {
		if i == 0 {
			b.WriteByte('!')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(k))
	}
	return b.String()
}

// ParseSchedule parses the String encoding. Accepted schedules are exactly
// the canonical ones: re-rendering an accepted schedule reproduces the input
// byte for byte, so corpora carrying schedules cannot drift.
func ParseSchedule(line string) (Schedule, error) {
	var s Schedule
	head, tail, hasDrops := strings.Cut(line, "!")
	order, seedStr, hasSeed := strings.Cut(head, "/")
	s.Order = order
	switch order {
	case OrderFIFO, OrderLIFO:
		if hasSeed {
			return Schedule{}, fmt.Errorf("msgnet: %s schedule carries no seed: %q", order, line)
		}
	case OrderRandom, OrderStarve:
		if !hasSeed {
			return Schedule{}, fmt.Errorf("msgnet: %s schedule needs a seed: %q", order, line)
		}
		seed, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			return Schedule{}, fmt.Errorf("msgnet: bad schedule seed %q: %v", seedStr, err)
		}
		if canon := strconv.FormatInt(seed, 10); canon != seedStr {
			return Schedule{}, fmt.Errorf("msgnet: non-canonical schedule seed %q", seedStr)
		}
		s.Seed = seed
	default:
		return Schedule{}, fmt.Errorf("msgnet: unknown delivery order %q", order)
	}
	if hasDrops {
		drops, err := ParseDrops(tail)
		if err != nil {
			return Schedule{}, err
		}
		s.Drops = drops
	}
	return s, nil
}

// ParseDrops parses a comma-separated loss schedule ("3,17"): strictly
// increasing canonical decimal send indices within the schedule bounds. It is
// shared with the explorer's drv3 spec grammar (the drop= field).
func ParseDrops(list string) ([]int, error) {
	parts := strings.Split(list, ",")
	if len(parts) > MaxScheduleDrops {
		return nil, fmt.Errorf("msgnet: %d drops exceed the maximum %d", len(parts), MaxScheduleDrops)
	}
	drops := make([]int, 0, len(parts))
	prev := -1
	for _, part := range parts {
		k, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("msgnet: bad drop index %q: %v", part, err)
		}
		if canon := strconv.Itoa(k); canon != part {
			return nil, fmt.Errorf("msgnet: non-canonical drop index %q", part)
		}
		if k < 0 || k > MaxScheduleDropIdx {
			return nil, fmt.Errorf("msgnet: drop index %d out of range [0,%d]", k, MaxScheduleDropIdx)
		}
		if k <= prev {
			return nil, fmt.Errorf("msgnet: drop indices must be strictly increasing, got %d after %d", k, prev)
		}
		drops = append(drops, k)
		prev = k
	}
	return drops, nil
}

// FormatDrops renders a loss schedule the way ParseDrops reads it.
func FormatDrops(drops []int) string {
	parts := make([]string, len(drops))
	for i, k := range drops {
		parts[i] = strconv.Itoa(k)
	}
	return strings.Join(parts, ",")
}

// Validate checks the schedule without building a network.
func (s Schedule) Validate() error {
	switch s.Order {
	case OrderFIFO, OrderLIFO, OrderRandom, OrderStarve:
	default:
		return fmt.Errorf("msgnet: unknown delivery order %q", s.Order)
	}
	if len(s.Drops) > MaxScheduleDrops {
		return fmt.Errorf("msgnet: %d drops exceed the maximum %d", len(s.Drops), MaxScheduleDrops)
	}
	prev := -1
	for _, k := range s.Drops {
		if k < 0 || k > MaxScheduleDropIdx {
			return fmt.Errorf("msgnet: drop index %d out of range [0,%d]", k, MaxScheduleDropIdx)
		}
		if k <= prev {
			return fmt.Errorf("msgnet: drop indices must be strictly increasing, got %d after %d", k, prev)
		}
		prev = k
	}
	return nil
}

// New builds the scheduled network for n processes. The starve order starves
// process 0 (the explorer's cursor-like victim) over a seeded random inner
// order.
func (s Schedule) New(n int) (*Net, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var order Order
	switch s.Order {
	case OrderFIFO:
		order = FIFOOrder()
	case OrderLIFO:
		order = LIFOOrder()
	case OrderRandom:
		order = RandomOrder(s.Seed)
	case OrderStarve:
		order = StarveOrder(0, RandomOrder(s.Seed))
	}
	nt := New(n, order)
	nt.orderKind = s.Order
	nt.SetDrops(s.Drops)
	return nt, nil
}

// Reset re-arms an existing network for this schedule and n processes,
// reusing its buffers — and, when the network's current order has the same
// kind, the order object itself (seeded orders are reseeded in place, which
// reproduces exactly the delivery sequence a fresh order yields). The pooled
// counterpart of New.
func (s Schedule) Reset(nt *Net, n int) error {
	if err := s.Validate(); err != nil {
		return err
	}
	order := nt.order
	if nt.orderKind != s.Order {
		switch s.Order {
		case OrderFIFO:
			order = FIFOOrder()
		case OrderLIFO:
			order = LIFOOrder()
		case OrderRandom:
			order = RandomOrder(s.Seed)
		case OrderStarve:
			order = StarveOrder(0, RandomOrder(s.Seed))
		}
	} else if r, ok := order.(reseeder); ok {
		r.reseed(s.Seed)
	}
	nt.Reset(n, order)
	nt.orderKind = s.Order
	nt.SetDrops(s.Drops)
	return nil
}
