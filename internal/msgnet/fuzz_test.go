package msgnet

import (
	"reflect"
	"testing"
)

// FuzzMsgScheduleRoundTrip pins the schedule codec: every accepted encoding
// is canonical (re-rendering reproduces the input bytes), round-trips to an
// equal value, and builds a network. Corpora and spec corpora carry these
// encodings, so acceptance of a non-canonical or unbuildable schedule would
// let replayed scenarios drift.
func FuzzMsgScheduleRoundTrip(f *testing.F) {
	for _, seed := range []string{
		// Canonical schedules of each order kind, with and without loss.
		"fifo",
		"lifo",
		"random/42",
		"starve/7",
		"lifo!4,9",
		"fifo!0,3,17",
		"random/-9!2",
		"starve/0!0,1,2",
		// Near-misses the parser must reject.
		"fifo/1",
		"lifo/3",
		"random",
		"random/042",
		"random/1!5,5",
		"random/1!7,3",
		"turtle/3",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		s, err := ParseSchedule(line)
		if err != nil {
			return
		}
		re := s.String()
		if re != line {
			t.Fatalf("accepted non-canonical schedule %q (canonical form %q)", line, re)
		}
		s2, err := ParseSchedule(re)
		if err != nil {
			t.Fatalf("canonical form %q of %q rejected: %v", re, line, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed the schedule: %+v != %+v", s, s2)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("ParseSchedule accepted %q but Validate rejects it: %v", line, err)
		}
		if _, err := s.New(3); err != nil {
			t.Fatalf("accepted schedule %q does not build: %v", line, err)
		}
	})
}
