// Benchmarks regenerating the paper's table and figures, one benchmark (or
// benchmark family) per artifact. The paper is a theory paper — it reports
// no wall-clock numbers — so the benchmarks measure the executable content
// of each construction: monitor step costs, adversary wrapper overhead,
// sketch reconstruction, the decidability experiments, and the
// snapshot-versus-collect ablation that Section 6.2 calls out.
package drv_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	exptrace "github.com/drv-go/drv/exp/trace"
	"github.com/drv-go/drv/internal/abd"
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/experiment"
	"github.com/drv-go/drv/internal/explore"
	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/msgnet"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/serve"
	"github.com/drv-go/drv/internal/sketch"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/sut"
	"github.com/drv-go/drv/internal/word"
)

const benchProcs = 3

// runMonitor drives a monitor against A exhibiting the source for maxSteps.
func runMonitor(m monitor.Monitor, src adversary.Source, seed int64, maxSteps int) *monitor.Result {
	adv := adversary.NewA(benchProcs, src)
	return monitor.Run(monitor.Config{
		N:       benchProcs,
		Monitor: m,
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			return adv, []int{adv.Register(rt)}
		},
		Policy: func(aux []int) sched.Policy {
			return sched.Biased(seed, aux[0], 0.5)
		},
		MaxSteps: maxSteps,
	})
}

// runTimedMonitor drives a timed monitor factory against Aτ wrapping A.
func runTimedMonitor(mk func(*adversary.Timed) monitor.Monitor, src adversary.Source, kind adversary.ArrayKind, seed int64, maxSteps int) *monitor.Result {
	adv := adversary.NewA(benchProcs, src)
	tau := adversary.NewTimed(benchProcs, adv, kind)
	return monitor.Run(monitor.Config{
		N:       benchProcs,
		Monitor: mk(tau),
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			return tau, []int{adv.Register(rt)}
		},
		Policy: func(aux []int) sched.Policy {
			return sched.Biased(seed, aux[0], 0.5)
		},
		MaxSteps: maxSteps,
	})
}

// ---------------------------------------------------------------- Table 1

// BenchmarkTable1 regenerates the whole table per engine configuration:
// the sequential path (one worker, no pool goroutines) against worker pools
// of increasing size. On a multi-core machine the parallel configurations
// show the wall-clock speedup of fanning the ~60 independent cell units out;
// the rendered table is byte-identical in every configuration.
func BenchmarkTable1(b *testing.B) {
	// Benchmark-sized: one seed, shorter runs; the full-depth table runs in
	// TestTable1AllCellsReproduce and cmd/drvtable.
	p := experiment.ShortParams()
	configs := []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel-2", 2},
		{"parallel-4", 4},
		{"parallel-8", 8},
	}
	var renders []string
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			var last string
			for i := 0; i < b.N; i++ {
				rows, err := experiment.Run(context.Background(), p, experiment.Options{Workers: cfg.workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, row := range rows {
					for _, cell := range row.Cells {
						if cell.Err != nil {
							b.Fatalf("%s %s: %v", cell.Lang, cell.Class, cell.Err)
						}
					}
				}
				last = experiment.Render(rows)
			}
			renders = append(renders, last)
		})
	}
	for i := 1; i < len(renders); i++ {
		if renders[i] != renders[0] {
			b.Fatalf("%s rendered a different table than %s", configs[i].name, configs[0].name)
		}
	}
}

// BenchmarkTable1Rows regenerates one row of Table 1 per sub-benchmark: the
// complete set of possibility sweeps and impossibility constructions for
// that language. Together the seven sub-benchmarks are the whole table.
func BenchmarkTable1Rows(b *testing.B) {
	p := experiment.ShortParams()
	rows := []string{"LIN_REG", "SC_REG", "LIN_LED", "SC_LED", "EC_LED", "WEC_COUNT", "SEC_COUNT"}
	for _, name := range rows {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				all := experiment.Table1(p)
				for _, row := range all {
					if row.Lang != name {
						continue
					}
					for _, cell := range row.Cells {
						if cell.Err != nil {
							b.Fatalf("%s %s: %v", cell.Lang, cell.Class, cell.Err)
						}
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------- Figure 1

// BenchmarkFig1_MonitorLoop measures the bare Figure 1 loop: a constant
// monitor against A, isolating the scheduler + adversary cost per monitored
// operation.
func BenchmarkFig1_MonitorLoop(b *testing.B) {
	src := lang.WECCount().Sources(benchProcs, 1)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runMonitor(monitor.Constant(monitor.Yes), src.New(), 1, 10_000)
	}
}

// ---------------------------------------------------------------- Figures 2–4

// BenchmarkFig2_StabilizeTransform measures the Lemma 4.1 FLAG wrapper
// overhead on the Figure 5 monitor.
func BenchmarkFig2_StabilizeTransform(b *testing.B) {
	src := lang.WECCount().Sources(benchProcs, 1)[0]
	m := monitor.Stabilize(monitor.NewWEC(adversary.ArrayAtomic))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runMonitor(m, src.New(), 1, 10_000)
	}
}

// BenchmarkFig3_WADTransform measures the Lemma 4.2 counter-array wrapper.
func BenchmarkFig3_WADTransform(b *testing.B) {
	src := lang.WECCount().Sources(benchProcs, 1)[0]
	m := monitor.AmplifyWAD(monitor.NewWEC(adversary.ArrayAtomic), adversary.ArrayAtomic)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runMonitor(m, src.New(), 1, 10_000)
	}
}

// BenchmarkFig4_WODTransform measures the Lemma 4.3 wrapper.
func BenchmarkFig4_WODTransform(b *testing.B) {
	src := lang.WECCount().Sources(benchProcs, 1)[0]
	m := monitor.AmplifyWOD(monitor.NewWEC(adversary.ArrayAtomic), adversary.ArrayAtomic)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runMonitor(m, src.New(), 1, 10_000)
	}
}

// ---------------------------------------------------------------- Figure 5

// BenchmarkFig5_WECMonitor measures the Figure 5 monitor, with the Section
// 6.2 snapshot-versus-collect ablation over the INCS array.
func BenchmarkFig5_WECMonitor(b *testing.B) {
	for _, kind := range []adversary.ArrayKind{adversary.ArrayAtomic, adversary.ArrayAADGMS, adversary.ArrayCollect} {
		b.Run(kindName(kind), func(b *testing.B) {
			src := lang.WECCount().Sources(benchProcs, 1)[0]
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runMonitor(monitor.NewWEC(kind), src.New(), 1, 10_000)
			}
		})
	}
}

// ---------------------------------------------------------------- Figure 6

// BenchmarkFig6_TimedAdversary measures the Aτ wrapper overhead: the same
// behaviour monitored bare versus wrapped (announce + snapshot per op).
func BenchmarkFig6_TimedAdversary(b *testing.B) {
	b.Run("bare", func(b *testing.B) {
		src := lang.WECCount().Sources(benchProcs, 1)[0]
		for i := 0; i < b.N; i++ {
			runMonitor(monitor.Constant(monitor.Yes), src.New(), 1, 10_000)
		}
	})
	for _, kind := range []adversary.ArrayKind{adversary.ArrayAtomic, adversary.ArrayAADGMS, adversary.ArrayCollect} {
		b.Run("timed-"+kindName(kind), func(b *testing.B) {
			src := lang.WECCount().Sources(benchProcs, 1)[0]
			for i := 0; i < b.N; i++ {
				runTimedMonitor(func(*adversary.Timed) monitor.Monitor {
					return monitor.Constant(monitor.Yes)
				}, src.New(), kind, 1, 10_000)
			}
		})
	}
}

// ---------------------------------------------------------------- Figure 7

// BenchmarkFig7_Sketch measures reconstructing x~(E) from views as the
// history grows.
func BenchmarkFig7_Sketch(b *testing.B) {
	for _, steps := range []int{500, 2_000, 8_000} {
		b.Run(fmt.Sprintf("steps-%d", steps), func(b *testing.B) {
			src := lang.LinReg().Sources(benchProcs, 1)[0]
			res := runTimedMonitor(func(*adversary.Timed) monitor.Monitor {
				return monitor.Constant(monitor.Yes)
			}, src.New(), adversary.ArrayAtomic, 1, steps)
			triples := res.Triples(-1)
			resolve := func(id word.OpID) word.Symbol {
				if id.Idx < len(res.Invs[id.Proc]) {
					return res.Invs[id.Proc][id.Idx]
				}
				// Announced but still pending when the run was cut off; the
				// symbol's content is irrelevant to the build's cost.
				return word.NewInv(id.Proc, "read", nil)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sketch.Build(benchProcs, triples, resolve); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------- Figure 8

// BenchmarkFig8_LinMonitor measures V_O on the register and the ledger, and
// the array-kind ablation. Runs are short: the monitor re-checks a growing
// history every round.
func BenchmarkFig8_LinMonitor(b *testing.B) {
	for _, obj := range []spec.Object{spec.Register(), spec.Ledger()} {
		for _, kind := range []adversary.ArrayKind{adversary.ArrayAtomic, adversary.ArrayAADGMS} {
			b.Run(obj.Name()+"-"+kindName(kind), func(b *testing.B) {
				var l lang.Lang
				if obj.Name() == "register" {
					l = lang.LinReg()
				} else {
					l = lang.LinLed()
				}
				src := l.Sources(benchProcs, 1)[0]
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					runTimedMonitor(func(tau *adversary.Timed) monitor.Monitor {
						return monitor.NewLin(obj, tau, kind)
					}, src.New(), kind, 1, 1_200)
				}
			})
		}
	}
}

// ---------------------------------------------------------------- Figure 9

// BenchmarkFig9_SECMonitor measures the Figure 9 monitor with its clause-4
// view test.
func BenchmarkFig9_SECMonitor(b *testing.B) {
	for _, kind := range []adversary.ArrayKind{adversary.ArrayAtomic, adversary.ArrayAADGMS} {
		b.Run(kindName(kind), func(b *testing.B) {
			src := lang.SECCount().Sources(benchProcs, 1)[0]
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runTimedMonitor(func(tau *adversary.Timed) monitor.Monitor {
					return monitor.NewSEC(tau, kind)
				}, src.New(), kind, 1, 2_000)
			}
		})
	}
}

// ---------------------------------------------------------------- theorems

// BenchmarkLemma51_Swap measures the full Lemma 5.1 construction (two
// scheduled executions plus the indistinguishability comparison).
func BenchmarkLemma51_Swap(b *testing.B) {
	l := experiment.Lemma51{Rounds: 8}
	m := monitor.NewNaiveOrder(spec.Register(), adversary.ArrayAtomic)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Verify(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem52_ShuffleWalk measures the execution-triple chain on the
// Appendix A ledger witness.
func BenchmarkTheorem52_ShuffleWalk(b *testing.B) {
	l := lang.LinLed()
	alpha := appendixAlpha()
	target := appendixTarget()
	m := monitor.NewNaiveOrder(spec.Ledger(), adversary.ArrayAtomic)
	_ = l
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunWalk(m, benchProcs, alpha, target); err != nil {
			b.Fatal(err)
		}
	}
}

// appendixAlpha rebuilds the Appendix A witness word for 3 processes.
func appendixAlpha() word.Word {
	bld := word.NewB()
	recs := make(word.Seq, 0, benchProcs)
	for p := 0; p < benchProcs; p++ {
		r := word.Rec(fmt.Sprintf("%d", p))
		recs = append(recs, r)
		bld.Op(p, spec.OpAppend, r, word.Unit{})
	}
	bld.Op(benchProcs-1, spec.OpGet, nil, recs)
	return bld.Word()
}

// appendixTarget moves process 0's append after the get — the violating
// shuffle of Appendix A.
func appendixTarget() word.Word {
	alpha := appendixAlpha()
	out := make(word.Word, 0, len(alpha))
	out = append(out, alpha[2:]...)
	out = append(out, alpha[0], alpha[1])
	return out
}

// BenchmarkLemma65_Alternation measures the EC_LED attack.
func BenchmarkLemma65_Alternation(b *testing.B) {
	l := experiment.Lemma65{N: 2, Stages: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Verify(func(*adversary.Timed) monitor.Monitor {
			return monitor.NewECLed(adversary.ArrayAtomic)
		}, adversary.ArrayAtomic); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------ execution core

// schedRates accumulates the BenchmarkSchedStep / BenchmarkMonitorRun
// measurements; when BENCH_SCHED_OUT is set, whichever benchmark finishes
// last flushes the accumulated baseline (see BENCH_sched.json). Regenerate
// with:
//
//	BENCH_SCHED_OUT=BENCH_sched.json go test -run '^$' \
//	  -bench 'BenchmarkSchedStep|BenchmarkMonitorRun' -benchtime 1000x .
var schedRates = map[string]float64{}

func flushSchedBaseline(b *testing.B) {
	out := os.Getenv("BENCH_SCHED_OUT")
	if out == "" {
		return
	}
	baseline := struct {
		Note    string             `json:"note"`
		NumCPU  int                `json:"num_cpu"`
		NsPerOp map[string]float64 `json:"ns_per_op"`
	}{
		Note:    "execution-core baseline; regenerate with: BENCH_SCHED_OUT=BENCH_sched.json go test -run '^$' -bench 'BenchmarkSchedStep|BenchmarkMonitorRun' -benchtime 1000x .",
		NumCPU:  runtime.NumCPU(),
		NsPerOp: schedRates,
	}
	js, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(js, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSchedStep measures the steady-state scheduler step: n parked
// processes plus one aux actor, one Step per iteration. The loop is
// zero-alloc (asserted by sched's TestStepZeroAlloc; ReportAllocs shows it).
func BenchmarkSchedStep(b *testing.B) {
	for _, n := range []int{2, benchProcs, 8} {
		b.Run(fmt.Sprintf("n-%d", n), func(b *testing.B) {
			rt := sched.New(n, sched.RoundRobin())
			defer rt.Stop()
			rt.AddAux("aux", func() bool { return true }, func() {})
			for i := 0; i < n; i++ {
				rt.Spawn(i, func(p *sched.Proc) {
					for {
						p.Pause()
					}
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.Step()
			}
			schedRates[fmt.Sprintf("sched-step/n-%d", n)] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
	}
	flushSchedBaseline(b)
}

// BenchmarkMonitorRun measures one whole monitored execution per iteration —
// the per-execution setup the explorer pays thousands of times per sweep —
// on the one-shot path (fresh runtime and buffers every run) versus a pooled
// session (Reset + buffer reuse).
func BenchmarkMonitorRun(b *testing.B) {
	const steps = 400
	cfg := func() monitor.Config {
		src := lang.WECCount().Sources(benchProcs, 1)[0]
		adv := adversary.NewA(benchProcs, src.New())
		return monitor.Config{
			N:       benchProcs,
			Monitor: monitor.Constant(monitor.Yes),
			NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
				return adv, []int{adv.Register(rt)}
			},
			Policy: func(aux []int) sched.Policy {
				return sched.Biased(1, aux[0], 0.5)
			},
			MaxSteps: steps,
		}
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			monitor.Run(cfg())
		}
		schedRates["monitor-run/fresh"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("pooled", func(b *testing.B) {
		s := monitor.NewSession()
		defer s.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Run(cfg())
		}
		schedRates["monitor-run/pooled"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	flushSchedBaseline(b)
}

// ---------------------------------------------------------------- explorer

// benchExploreScenarios sizes the benchmark sweep: large enough that the
// worker pool has work to balance, small enough for -bench runs to stay
// interactive.
const benchExploreScenarios = 48

// BenchmarkExplore measures randomized scenario-exploration throughput
// (scenarios/sec) sequentially versus on a full worker pool — the explorer
// rides the same experiment.ForEach pool as Table 1, so the parallel
// configuration shows how exploration scales with cores. When
// BENCH_EXPLORE_OUT is set, a machine-readable baseline (see
// BENCH_explore.json) is written there after the run.
func BenchmarkExplore(b *testing.B) {
	type config struct {
		name     string
		workers  int
		families []string
	}
	// Each family sweeps the same worker ladder, so the committed baseline
	// records a scaling curve rather than one point. On a single-core
	// machine the ladder collapses to j-1: the higher rows would only
	// measure pool scheduling overhead, not speedup, so they are skipped
	// and the baseline says so — re-capture on a multi-core machine to
	// record the real curve.
	ladder := []int{1, 2, 4, 8}
	skippedRows := ""
	if runtime.NumCPU() == 1 {
		ladder = []int{1}
		skippedRows = "num_cpu=1: the j-2/4/8 rows are skipped (they would measure worker-pool overhead, not speedup); re-run on a multi-core machine to capture the scaling curve"
	}
	var configs []config
	for _, fam := range []struct {
		prefix   string
		families []string
	}{
		{"", nil},
		// The object family drives real shared-memory implementations under
		// crashes; the message family pays per-scenario network and
		// emulation costs the language family does not. Their rows keep
		// those regressions visible separately.
		{"obj-", []string{explore.FamObj}},
		{"msg-", []string{explore.FamMsg}},
	} {
		for _, j := range ladder {
			configs = append(configs, config{
				name:     fmt.Sprintf("%sj-%d", fam.prefix, j),
				workers:  j,
				families: fam.families,
			})
		}
	}
	type rate struct {
		Name         string  `json:"name"`
		Workers      int     `json:"workers"`
		Scenarios    int     `json:"scenarios"`
		ScenariosSec float64 `json:"scenarios_per_sec"`
	}
	// One slot per config, overwritten on every invocation — the testing
	// package calls each sub-benchmark several times while calibrating
	// b.N, and only the final (longest) measurement should land in the
	// baseline.
	rates := make([]rate, len(configs))
	for ci, cfg := range configs {
		ci, cfg := ci, cfg
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := explore.Explore(explore.Options{
					Master: 1, Scenarios: benchExploreScenarios, Workers: cfg.workers,
					Gen: explore.GenConfig{Families: cfg.families, MaxCrashes: 2},
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Divergent() {
					b.Fatalf("benchmark sweep diverged: %v", rep.Failures)
				}
			}
			perSec := float64(benchExploreScenarios*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(perSec, "scenarios/s")
			rates[ci] = rate{
				Name: cfg.name, Workers: cfg.workers,
				Scenarios: benchExploreScenarios, ScenariosSec: perSec,
			}
		})
	}
	if out := os.Getenv("BENCH_EXPLORE_OUT"); out != "" && rates[len(rates)-1].Scenarios > 0 {
		baseline := struct {
			Note        string `json:"note"`
			NumCPU      int    `json:"num_cpu"`
			GoMaxProcs  int    `json:"gomaxprocs"`
			SkippedRows string `json:"skipped_rows,omitempty"`
			Rates       []rate `json:"rates"`
		}{
			Note:        "drvexplore throughput baseline; regenerate with: BENCH_EXPLORE_OUT=BENCH_explore.json go test -run '^$' -bench BenchmarkExplore -benchtime 2x . Scalability: rows sweep j=1/2/4/8 per family on multi-core machines (collapsed to j-1 when num_cpu=1, see skipped_rows); scenarios are partitioned deterministically, so reports are byte-identical across j.",
			NumCPU:      runtime.NumCPU(),
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			SkippedRows: skippedRows,
			Rates:       rates,
		}
		js, err := json.MarshalIndent(baseline, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(out, append(js, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------- pooled execution

// stageExecRates and stageStats accumulate the BenchmarkObjExecute /
// BenchmarkMsgExecute / BenchmarkExploreStages measurements; when
// BENCH_STAGE_OUT is set, whichever benchmark finishes last flushes the
// accumulated baseline (see BENCH_stage.json). Regenerate with:
//
//	BENCH_STAGE_OUT=BENCH_stage.json go test -run '^$' \
//	  -bench 'BenchmarkObjExecute|BenchmarkMsgExecute|BenchmarkExploreStages' \
//	  -benchtime 32x .
var (
	stageExecRates = map[string]stageExecRate{}
	stageStats     explore.StageStats
)

type stageExecRate struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func flushStageBaseline(b *testing.B) {
	out := os.Getenv("BENCH_STAGE_OUT")
	if out == "" {
		return
	}
	baseline := struct {
		Note       string                   `json:"note"`
		NumCPU     int                      `json:"num_cpu"`
		GoMaxProcs int                      `json:"gomaxprocs"`
		Execute    map[string]stageExecRate `json:"execute"`
		Stages     explore.StageStats       `json:"stages,omitempty"`
	}{
		Note:       "per-scenario execution and per-stage profiling baseline; regenerate with: BENCH_STAGE_OUT=BENCH_stage.json go test -run '^$' -bench 'BenchmarkObjExecute|BenchmarkMsgExecute|BenchmarkExploreStages' -benchtime 32x . The execute rows compare a fresh runner (new runtime, SUT and buffers every scenario) to a pooled one (Session + Reset contracts); the stages map is one 48-scenario sweep's generate/execute/monitor/check split per family, captured at Workers=1 where alloc deltas are exact.",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Execute:    stageExecRates,
		Stages:     stageStats,
	}
	js, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(js, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// benchFamSpecs draws a deterministic batch of specs from one family, the
// same distribution the explorer sweeps (crashes, seeded-bug impls, drops).
func benchFamSpecs(fam string, count int) []explore.Spec {
	cfg := explore.GenConfig{Families: []string{fam}, MaxCrashes: 2}
	specs := make([]explore.Spec, count)
	for i := range specs {
		specs[i] = explore.NewSpec(1, i, cfg)
	}
	return specs
}

// benchExecute measures one family's per-scenario execution cost on a fresh
// runner (the pre-pooling path: new runtime, implementation, workload and
// buffers every scenario) versus a pooled one (monitor session plus the
// runner scratch with its Reset contracts). Outcomes are byte-identical
// either way — TestExplorePooledMatchesUnpooled pins that — so the delta is
// pure substrate cost.
func benchExecute(b *testing.B, fam string) {
	specs := benchFamSpecs(fam, 16)
	measure := func(b *testing.B, r explore.Runner, label string) {
		b.ReportAllocs()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Execute(specs[i%len(specs)]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		runtime.ReadMemStats(&after)
		stageExecRates[label] = stageExecRate{
			NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(b.N),
		}
	}
	b.Run("fresh", func(b *testing.B) {
		measure(b, explore.Runner{}, fam+"-execute/fresh")
	})
	b.Run("pooled", func(b *testing.B) {
		s := monitor.NewSession()
		defer s.Close()
		r := explore.Runner{Session: s}.Pooled()
		// Warm the scratch over the whole batch so the measured loop sees
		// steady state: every impl cached, every buffer at capacity.
		for _, sp := range specs {
			if _, err := r.Execute(sp); err != nil {
				b.Fatal(err)
			}
		}
		measure(b, r, fam+"-execute/pooled")
	})
}

// BenchmarkObjExecute measures one object-family scenario per iteration —
// the unit the explorer pays benchExploreScenarios times per sweep.
func BenchmarkObjExecute(b *testing.B) {
	benchExecute(b, explore.FamObj)
	flushStageBaseline(b)
}

// BenchmarkMsgExecute is BenchmarkObjExecute for the message-passing family,
// which adds the network and the replica aux actors to the recycled set.
func BenchmarkMsgExecute(b *testing.B) {
	benchExecute(b, explore.FamMsg)
	flushStageBaseline(b)
}

// BenchmarkExploreStages runs the default mixed-family sweep with per-stage
// profiling on and keeps the last breakdown for the baseline: where a sweep's
// time and allocations go, per family and per pipeline stage.
func BenchmarkExploreStages(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := explore.Explore(explore.Options{
			Master: 1, Scenarios: benchExploreScenarios, Workers: 1, StageStats: true,
			Gen: explore.GenConfig{
				Families:   []string{explore.FamLang, explore.FamObj, explore.FamMsg},
				MaxCrashes: 2,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Divergent() {
			b.Fatalf("benchmark sweep diverged: %v", rep.Failures)
		}
		stageStats = rep.Stages
	}
	flushStageBaseline(b)
}

// ---------------------------------------------------------------- serving

// benchServeHistory builds a linearizable queue history of the given length:
// sequential enqueues rotating over the processes.
func benchServeHistory(events int) exptrace.Word {
	bld := exptrace.NewB()
	for i := 0; i < events/2; i++ {
		bld.Op(i%benchProcs, "enq", exptrace.Int(int64(i+1)), exptrace.Unit{})
	}
	return bld.Word()
}

// benchServeRequest renders one complete drvserve connection: the handshake
// plus `streams` verdict streams each replaying the same recorded history.
func benchServeRequest(b *testing.B, streams, events int) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	encode := func(r serve.Request) {
		if err := enc.Encode(r); err != nil {
			b.Fatal(err)
		}
	}
	encode(serve.Request{Config: &serve.ClientConfig{Protocol: serve.ProtocolVersion}})
	h := benchServeHistory(events)
	for s := 0; s < streams; s++ {
		id := fmt.Sprintf("bench-%d", s)
		encode(serve.Request{Open: &serve.Open{Stream: id, Logic: "lin", Object: "queue"}})
		encode(serve.Request{Event: &serve.StreamEvent{Stream: id, Event: exptrace.Event{Kind: exptrace.KindMeta, Meta: &exptrace.Meta{N: benchProcs}}}})
		for _, sym := range h {
			ev, err := exptrace.EncodeSymbol(sym)
			if err != nil {
				b.Fatal(err)
			}
			encode(serve.Request{Event: &serve.StreamEvent{Stream: id, Event: ev}})
		}
		encode(serve.Request{Close: &serve.CloseStream{Stream: id}})
	}
	return buf.Bytes()
}

// serveRW pairs a request reader with a response writer for ServeConn.
type serveRW struct {
	io.Reader
	io.Writer
}

// BenchmarkServe measures drvserve ingestion throughput (verdicts/sec): one
// full connection per iteration against a warm server — handshake, stream
// demux, per-stream trace decode, pooled replay, response encode. Rows cover
// a single stream on one shard and an 8-stream connection on one shard
// versus a GOMAXPROCS-wide pool. When BENCH_SERVE_OUT is set, a
// machine-readable baseline (see BENCH_serve.json) is written there after
// the run.
func BenchmarkServe(b *testing.B) {
	const events = 240
	type config struct {
		name    string
		streams int
		shards  int
	}
	configs := []config{
		{"single-stream", 1, 1},
		{"multi-8-shards-1", 8, 1},
		{"multi-8-shards-4", 8, 4},
	}
	skippedRows := ""
	if runtime.NumCPU() == 1 {
		configs = configs[:2]
		skippedRows = "num_cpu=1: the shards-4 row is skipped (a wider pool would only measure shard-queue overhead, not speedup); re-run on a multi-core machine to capture the scaling row"
	}
	type rate struct {
		Name        string  `json:"name"`
		Streams     int     `json:"streams"`
		Shards      int     `json:"shards"`
		Events      int     `json:"events_per_stream"`
		Verdicts    int     `json:"verdicts_per_conn"`
		VerdictsSec float64 `json:"verdicts_per_sec"`
	}
	rates := make([]rate, len(configs))
	for ci, cfg := range configs {
		ci, cfg := ci, cfg
		b.Run(cfg.name, func(b *testing.B) {
			req := benchServeRequest(b, cfg.streams, events)
			srv := serve.New(serve.Config{Shards: cfg.shards})
			defer func() {
				if err := srv.Shutdown(context.Background()); err != nil {
					b.Fatal(err)
				}
			}()
			// Calibrate: count the verdict lines one connection produces.
			var out bytes.Buffer
			if err := srv.ServeConn(serveRW{bytes.NewReader(req), &out}); err != nil {
				b.Fatal(err)
			}
			verdicts := bytes.Count(out.Bytes(), []byte(`{"verdict":`))
			if verdicts == 0 {
				b.Fatalf("calibration connection produced no verdicts:\n%s", out.Bytes())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := srv.ServeConn(serveRW{bytes.NewReader(req), io.Discard}); err != nil {
					b.Fatal(err)
				}
			}
			perSec := float64(verdicts*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(perSec, "verdicts/s")
			rates[ci] = rate{
				Name: cfg.name, Streams: cfg.streams, Shards: cfg.shards,
				Events: events, Verdicts: verdicts, VerdictsSec: perSec,
			}
		})
	}
	if out := os.Getenv("BENCH_SERVE_OUT"); out != "" && rates[len(rates)-1].Verdicts > 0 {
		baseline := struct {
			Note        string `json:"note"`
			NumCPU      int    `json:"num_cpu"`
			GoMaxProcs  int    `json:"gomaxprocs"`
			SkippedRows string `json:"skipped_rows,omitempty"`
			Rates       []rate `json:"rates"`
		}{
			Note:        "drvserve ingestion baseline; regenerate with: BENCH_SERVE_OUT=BENCH_serve.json go test -run '^$' -bench BenchmarkServe -benchtime 50x . Each iteration serves one full connection (handshake, stream demux, trace decode, pooled replay, response encode) against a warm server; verdict streams are byte-identical across pool sizes, so the shards rows measure cost, not output. The multi-core scaling row is skipped when num_cpu=1 (see skipped_rows).",
			NumCPU:      runtime.NumCPU(),
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			SkippedRows: skippedRows,
			Rates:       rates,
		}
		js, err := json.MarshalIndent(baseline, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(out, append(js, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------- porting

// BenchmarkABD_Register measures the message-passing register emulation:
// operations per second as the process count (and quorum size) grows.
func BenchmarkABD_Register(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("n-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rt := sched.New(n, sched.Random(1))
				nt := msgnet.New(n, msgnet.RandomOrder(1))
				nt.Register(rt)
				reg := abd.NewRegister("x", n, nt, 0)
				svc := sut.NewService(n, abd.NewRegisterImpl(reg),
					sut.NewRandomWorkload(spec.Register(), n, 4, 0.5, 1))
				done := make([]bool, n)
				for id := 0; id < n; id++ {
					id := id
					rt.Spawn(id, func(p *sched.Proc) {
						for {
							v, ok := svc.NextInv(p.ID)
							if !ok {
								done[id] = true
								for {
									if !reg.Serve(p) {
										p.Pause()
									}
								}
							}
							svc.Send(p, v)
							svc.Recv(p)
						}
					})
				}
				for rt.Steps() < 3_000_000 {
					all := true
					for _, d := range done {
						if !d {
							all = false
							break
						}
					}
					if all || !rt.Step() {
						break
					}
				}
				rt.Stop()
			}
		})
	}
}

// BenchmarkSUT_EndToEnd measures full-stack monitoring of deployed
// implementations: SUT + Aτ + Figure 8.
func BenchmarkSUT_EndToEnd(b *testing.B) {
	impls := []struct {
		name string
		mk   func() sut.Impl
	}{
		{"atomic", func() sut.Impl { return sut.NewAtomicRegister() }},
		{"stale", func() sut.Impl { return sut.NewStaleRegister(benchProcs, 3) }},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				svc := sut.NewService(benchProcs, impl.mk(),
					sut.NewRandomWorkload(spec.Register(), benchProcs, 6, 0.5, 1))
				tau := adversary.NewTimed(benchProcs, svc, adversary.ArrayAtomic)
				monitor.Run(monitor.Config{
					N:       benchProcs,
					Monitor: monitor.NewLin(spec.Register(), tau, adversary.ArrayAtomic),
					NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
						return tau, nil
					},
					Policy: func([]int) sched.Policy {
						return sched.Random(1)
					},
					MaxSteps: 60_000,
				})
			}
		})
	}
}

// kindName mirrors the monitor package's rendering for sub-benchmark names.
func kindName(kind adversary.ArrayKind) string {
	switch kind {
	case adversary.ArrayAADGMS:
		return "aadgms"
	case adversary.ArrayCollect:
		return "collect"
	default:
		return "atomic"
	}
}
