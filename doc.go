// Package drv is an executable reproduction of "Asynchronous Fault-Tolerant
// Language Decidability for Runtime Verification of Distributed Systems"
// (Castañeda & Rodríguez, PODC 2025, arXiv:2502.00191): a framework for
// distributed runtime verification in asynchronous, crash-prone,
// shared-memory systems, together with the paper's monitors, adversaries,
// decidability notions, and every possibility and impossibility result of
// its Table 1 as machine-checked experiments.
//
// The library is organized bottom-up:
//
//   - internal/sched — the asynchronous computation model: crash-prone
//     processes as goroutines under a deterministic cooperative scheduler.
//   - internal/mem — the shared-memory substrate: atomic registers, arrays,
//     snapshots (one-step and the AADGMS wait-free protocol), collects,
//     test&set, compare&swap and consensus.
//   - internal/word, internal/spec, internal/check, internal/lang — the
//     distributed-language machinery of Section 2: alphabets, ω-word
//     prefixes, sequential objects, consistency checkers, and the seven
//     Table 1 languages with labelled behaviour generators. Verdict-stream
//     workloads use check.Incremental, which re-checks each growing prefix
//     of one history by caching the last accepting linearization as a
//     witness (extended in constant time on most appends) plus standing
//     rejecting verdicts, falling back to the memoized from-scratch front
//     search only when neither cache applies; differential tests pin it
//     symbol-for-symbol to the from-scratch checkers.
//   - internal/adversary — the adversary A (a word cursor realizing Claim
//     3.1) and the timed adversary Aτ of Figure 6.
//   - internal/sketch — the view-to-history construction x~(E) of Appendix B.
//   - internal/monitor — the generic Figure 1 monitor loop, the stability
//     transformations of Figures 2–4, and the concrete monitors of Figures
//     5, 8 and 9, plus baselines (order-free, consensus-powered, 3-valued).
//   - internal/core — the decidability notions SD, WD, PSD, PWD and the
//     real-time obliviousness characterization of Theorem 5.2.
//   - internal/experiment — the proofs as executable constructions: the
//     Lemma 5.1 swap, the prefix-extension attacks of Lemmas 5.2/6.2, the
//     Theorem 5.2 shuffle walk, the Lemma 6.5 alternation attack, and the
//     complete Table 1 harness.
//   - internal/sut — real object implementations (correct and seeded-bug)
//     monitored end to end; internal/msgnet and internal/abd port the stack
//     to message passing via the ABD register emulation.
//   - internal/explore — the coverage-guided scenario explorer: seeded
//     random schedules, crash schedules and adversary behaviours run through
//     the real monitors, with every verdict stream differentially checked
//     against the ground-truth oracles; divergences shrink to one-line seed
//     specs. Every outcome folds into a deterministic coverage signature,
//     a corpus (persisted under testdata/corpus, one seed spec per novel
//     signature) feeds seeded spec mutators, and each round splits its
//     budget between fresh random specs and mutations of corpus entries —
//     drvexplore -corpus/-mutate-frac — while staying byte-deterministic in
//     the master seed and independent of the worker count. A second scenario
//     family (drvexplore -family obj, the drv2 seed-spec grammar; drv1 specs
//     still parse) explores the real internal/sut implementations under
//     random workloads and crashes through Aτ and the Figure 8 monitor,
//     splitting oracle outcomes into divergences (guaranteed properties
//     violated) and shrunk bug findings (seeded bugs exposed); its corpus
//     lives under testdata/corpus-obj. A third family (drvexplore -family
//     msg, the drv3 grammar) explores objects emulated over message passing
//     — the internal/abd register, counter and consensus walks on
//     internal/msgnet — under seeded delivery orders (-net
//     fifo/lifo/random/starve), message loss (drop=) and crashes; the
//     emulated object's history is judged by the same oracles, bug
//     reproducers also shrink along the loss-schedule axis, coverage
//     signatures gain a network axis, and its corpus lives under
//     testdata/corpus-msg.
//
// The stable core of the word/spec/trace/monitor stack is exported under
// exp/trace and exp/monitor (experimental, no compatibility promise — see
// exp/README.md): external programs wrap a monitor.Recorder around their
// own concurrent data structures and replay the recorded history through
// the paper's monitors. The internal packages alias the exported
// definitions, so there is exactly one implementation; the exported API is
// locked by exp/testdata/api.golden.
//
// The cmd directory holds the reproduction tools (drvtable, drvtrace,
// drvmon, drvsketch, drvexplore) and drvserve, the monitoring-as-a-service
// front end: internal/serve accepts recorded histories as NDJSON trace
// streams over a versioned request envelope, routes each stream through a
// sharded pool of monitor sessions keyed by stream id, and streams verdict
// events back incrementally, with bounded queues end to end and graceful
// drain on shutdown; served verdict streams are byte-identical across runs
// and pool sizes, pinned by goldens under cmd/drvserve/testdata and the
// BENCH_serve.json ingestion baseline. examples holds six runnable
// walkthroughs, including examples/extsut, an outside consumer that
// monitors queues of its own using only the exp surface (and records them
// to trace files with -trace, ready to stream to drvserve). The root bench
// and test files regenerate every table and figure of the paper.
//
// Table 1 runs on a parallel experiment engine (internal/experiment.Run):
// the table decomposes into independent units — one per (cell, seed,
// labelled source) possibility run, one per impossibility construction —
// that fan out onto a bounded worker pool with deterministic, order-stable
// result folding, so drvtable -j N prints a byte-identical table for every
// worker count. See README.md for the module setup, the short/full/race
// test tiers, and parallel usage.
//
// All workloads share one pooled execution core. internal/sched.Runtime is
// resettable (Runtime.Reset reuses Proc structs and parked goroutines; the
// steady-state Step loop and pooled per-execution setup are zero-alloc),
// internal/monitor.Session drives the Figure-1 loop on a pooled runtime with
// reusable pre-sized Result buffers (monitor.Run is the one-shot wrapper),
// and the experiment engine and the explorer give each worker one
// runtime+session pair for its whole batch. The SUT substrate pools the same
// way: every sut.Impl (and every internal/abd emulation) satisfies a
// Reset(n) contract — construction parameters survive, run state does not —
// so a pooled explore.Runner keeps one live instance per implementation per
// worker plus one reusable workload, service, timed adversary and message
// network (msgnet.Schedule.Reset re-arms order, inboxes and loss in place),
// with steady-state per-scenario allocations pinned by AllocsPerRun budget
// tests. Pooling is on by default, byte-identical to fresh substrate
// (golden-tested per registered implementation, seeded-bug variants
// included), and switchable with -pool=false on drvtable and drvexplore;
// -cpuprofile profiles either command, and -stage-stats on drvexplore adds
// an opt-in per-family generate/execute/monitor/check wall-time and
// allocation breakdown to the report. BENCH_sched.json, BENCH_explore.json
// and BENCH_stage.json track the core's committed performance baselines.
package drv
