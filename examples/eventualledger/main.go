// Eventual-ledger example: the Lemma 6.5 alternation attack, live.
//
// EC_LED — the eventually consistent ledger — is undecidable under every
// notion the paper defines, including the weakest predictive one. This
// program mounts the attack on a concrete, plausible candidate monitor: the
// behaviour alternates divergence phases (a fresh append stays invisible to
// gets) with convergence phases (gets catch up). The word stays inside
// EC_LED — every record eventually appears and gets always form a chain —
// yet every process is forced to report NO in every divergence phase, so NO
// counts grow without bound, and because the executions are tight
// (x(E) = x~(E)) the predictive escape clause cannot justify them.
//
// Run with:
//
//	go run ./examples/eventualledger
package main

import (
	"fmt"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/experiment"
	"github.com/drv-go/drv/internal/monitor"
)

func main() {
	attack := experiment.Lemma65{N: 2, Stages: 4, BadRounds: 3, GoodRounds: 3}
	res, err := attack.Run(func(*adversary.Timed) monitor.Monitor {
		return monitor.NewECLed(adversary.ArrayAtomic)
	}, adversary.ArrayAtomic)
	if err != nil {
		fmt.Println("attack construction failed:", err)
		return
	}

	fmt.Println("Lemma 6.5: EC_LED is not predictively weakly decidable")
	fmt.Println()
	fmt.Printf("staged behaviour: %d symbols, %d divergence/convergence alternations\n",
		len(res.Word), attack.Stages)
	fmt.Printf("EC ordering clause holds on the whole word: %v\n", res.SafetyOK)
	fmt.Printf("gets converge in the tail (word is in EC_LED):  %v\n", res.Converges)
	fmt.Printf("execution tight, x(E) = x~(E) (no escape):      %v\n", res.TightSketch)
	fmt.Println()
	fmt.Println("NO reports per phase (rows: phases; columns: processes):")
	for _, ph := range res.Phases {
		kind := "converge"
		if ph.Bad {
			kind = "DIVERGE "
		}
		fmt.Printf("  stage %d %s  NOs=%v\n", ph.Stage, kind, ph.NOs)
	}
	fmt.Println()
	if res.MinStageNOs >= 1 {
		fmt.Printf("every process reported ≥%d NO in every divergence stage: along this\n", res.MinStageNOs)
		fmt.Println("in-language behaviour the NO counts grow without bound — the monitor fails")
		fmt.Println("predictive weak decidability, as Lemma 6.5 proves every monitor must.")
	} else {
		fmt.Println("the candidate monitor slept through a divergence phase — it instead fails")
		fmt.Println("by missing the divergence on the never-converging word.")
	}
}
