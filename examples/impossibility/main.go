// Impossibility example: the Lemma 5.1 indistinguishability construction,
// live.
//
// The program builds the two executions of Lemma 5.1 — E, where each round's
// write completes just before the read, and F, where the same events happen
// in the opposite order — and runs two monitors on both: an order-free
// monitor, and one that uses wait-free consensus to agree on a global
// operation order. Both observe byte-identical streams in E and F, yet
// x(E) is linearizable and x(F) is not: no monitor, whatever its primitive
// power, can weakly decide LIN_REG against a fully asynchronous adversary.
//
// Run with:
//
//	go run ./examples/impossibility
package main

import (
	"fmt"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/experiment"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/sketch"
	"github.com/drv-go/drv/internal/spec"
)

func main() {
	l := experiment.Lemma51{Rounds: 3}
	monitors := []monitor.Monitor{
		monitor.NewNaiveOrder(spec.Register(), adversary.ArrayAtomic),
		monitor.NewConsensusOrder(spec.Register(), adversary.ArrayAtomic),
	}

	wE, wF := l.Words()
	fmt.Println("Lemma 5.1: two executions no monitor can tell apart")
	fmt.Println()
	fmt.Println("x(E) — every round: write(r) completes, then read returns r (linearizable):")
	fmt.Print(sketch.RenderTimeline(wE))
	fmt.Println()
	fmt.Println("x(F) — the same rounds with send/receive pairs swapped (read r before write(r)):")
	fmt.Print(sketch.RenderTimeline(wF))
	fmt.Println()

	for _, m := range monitors {
		r, err := l.Run(m)
		if err != nil {
			fmt.Printf("%s: construction error: %v\n", m.Name(), err)
			continue
		}
		fmt.Printf("monitor %s:\n", m.Name())
		fmt.Printf("  x(E) in LIN_REG: %v   x(F) in LIN_REG: %v\n", r.ELinOK, r.FLinOK)
		fmt.Printf("  executions indistinguishable to every process: %v\n", r.Indistinguishable)
		for p := 0; p < 2; p++ {
			fmt.Printf("  p%d verdicts in E: %v\n", p, r.ResE.Verdicts[p])
			fmt.Printf("  p%d verdicts in F: %v\n", p, r.ResF.Verdicts[p])
		}
		fmt.Println()
	}
	fmt.Println("the verdict streams coincide on a good and a bad execution — soundness and")
	fmt.Println("completeness cannot both hold, which is Table 1's ✗ for LIN_REG under SD and WD.")
}
