// Command extsut demonstrates the embed-your-own-SUT workflow of the
// exported exp packages: it defines two concurrent queues of its own — a
// channel-based one and a deliberately buggy mutex-based one, neither of
// which exists anywhere in the drv module — wraps a monitor.Recorder around
// their operations, and replays the recorded histories through the Figure-8
// predictive linearizability monitor, printing the verdict streams.
//
// The program imports only the exported exp/... surface; it compiles and
// behaves identically as an outside consumer of the module. Its output is
// byte-deterministic for a given seed: the workload is a seeded
// interleaving of logical processes, and replay is deterministic by
// construction.
//
// With -trace DIR the recorded histories are also written to
// DIR/<workload>.jsonl in the exp/trace wire format, ready to be re-checked
// offline or streamed to a drvserve server.
//
// Usage:
//
//	extsut [-procs 3] [-seed 1] [-steps 60] [-trace DIR]
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"

	"github.com/drv-go/drv/exp/monitor"
	"github.com/drv-go/drv/exp/trace"
)

// chanQueue is this program's own FIFO queue, built on a buffered channel.
type chanQueue struct {
	ch chan int64
}

func newChanQueue(capacity int) *chanQueue { return &chanQueue{ch: make(chan int64, capacity)} }

func (q *chanQueue) Enq(v int64) { q.ch <- v }

// Deq is non-blocking: it reports ok=false on an empty queue.
func (q *chanQueue) Deq() (int64, bool) {
	select {
	case v := <-q.ch:
		return v, true
	default:
		return 0, false
	}
}

// staleQueue is a mutex-based queue with a seeded bug: Deq reads the head
// when the operation starts but only removes an element when it completes,
// so two overlapping dequeues can deliver the same value.
type staleQueue struct {
	mu    sync.Mutex
	items []int64
}

func (q *staleQueue) Enq(v int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, v)
}

// Peek reads the head without removing it (the stale capture).
func (q *staleQueue) Peek() (int64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0], true
}

// Pop removes the head, discarding it.
func (q *staleQueue) Pop() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) > 0 {
		q.items = q.items[1:]
	}
}

// workload starts operations for logical processes; begin returns the
// invocation (op name, argument) and a completion closure executed when the
// operation responds — the window between the two is where operations of
// different processes overlap.
type workload interface {
	name() string
	// slug is the workload's file-name-safe identifier, used for -trace
	// output files.
	slug() string
	begin(p int, rng *rand.Rand, next func() int64) (op string, arg trace.Value, complete func() trace.Value)
}

type chanWorkload struct{ q *chanQueue }

func (w chanWorkload) name() string { return "channel queue" }

func (w chanWorkload) slug() string { return "chan_queue" }

func (w chanWorkload) begin(p int, rng *rand.Rand, next func() int64) (string, trace.Value, func() trace.Value) {
	if rng.Intn(2) == 0 {
		v := next()
		return "enq", trace.Int(v), func() trace.Value {
			w.q.Enq(v)
			return trace.Unit{}
		}
	}
	return "deq", nil, func() trace.Value {
		v, ok := w.q.Deq()
		if !ok {
			return trace.Empty
		}
		return trace.Int(v)
	}
}

type staleWorkload struct{ q *staleQueue }

func (w staleWorkload) name() string { return "stale-deq queue (seeded bug)" }

func (w staleWorkload) slug() string { return "stale_queue" }

func (w staleWorkload) begin(p int, rng *rand.Rand, next func() int64) (string, trace.Value, func() trace.Value) {
	if rng.Intn(2) == 0 {
		v := next()
		return "enq", trace.Int(v), func() trace.Value {
			w.q.Enq(v)
			return trace.Unit{}
		}
	}
	// The bug: the returned value is captured at invocation time, the
	// removal happens at response time.
	stale, ok := w.q.Peek()
	return "deq", nil, func() trace.Value {
		if !ok {
			return trace.Empty
		}
		w.q.Pop()
		return trace.Int(stale)
	}
}

// record drives a seeded interleaving of procs logical processes over the
// workload and returns the recorded history. Each scheduler pick either
// starts an operation on an idle process or completes the pending one, so
// operations overlap across processes while the recording stays
// deterministic for a given seed.
func record(w workload, procs, steps int, seed int64) trace.Word {
	rec := monitor.NewRecorder(procs)
	rng := rand.New(rand.NewSource(seed))
	counter := int64(0)
	next := func() int64 { counter++; return counter }
	pending := make([]func() trace.Value, procs)
	for i := 0; i < steps; i++ {
		p := rng.Intn(procs)
		if pending[p] == nil {
			op, arg, complete := w.begin(p, rng, next)
			rec.Invoke(p, op, arg)
			pending[p] = complete
		} else {
			rec.Respond(p, pending[p]())
			pending[p] = nil
		}
	}
	for p := 0; p < procs; p++ { // drain in-flight operations
		if pending[p] != nil {
			rec.Respond(p, pending[p]())
			pending[p] = nil
		}
	}
	return rec.History()
}

// writeTrace dumps a recorded history as an exp/trace NDJSON file.
func writeTrace(dir, slug string, procs int, h trace.Word) error {
	f, err := os.Create(filepath.Join(dir, slug+".jsonl"))
	if err != nil {
		return err
	}
	tw := trace.NewWriter(f)
	if err := tw.WriteMeta(trace.Meta{N: procs}); err == nil {
		err = tw.WriteWord(h)
	}
	if err == nil {
		err = tw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func report(out io.Writer, s *monitor.Session, w workload, traceDir string, procs, steps int, seed int64) error {
	h := record(w, procs, steps, seed)
	fmt.Fprintf(out, "SUT: %s — %d procs, %d scheduler picks, seed %d\n", w.name(), procs, steps, seed)
	fmt.Fprintf(out, "recorded history (%d events): %s\n", len(h), h)
	if traceDir != "" {
		if err := writeTrace(traceDir, w.slug(), procs, h); err != nil {
			return err
		}
	}

	res, err := s.Run(monitor.Config{
		N:       procs,
		Object:  trace.Queue(),
		Logic:   monitor.LogicLin,
		History: h,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "verdict stream:")
	for p := range res.Verdicts {
		fmt.Fprintf(out, "  p%d:", p)
		for _, v := range res.Verdicts[p] {
			fmt.Fprintf(out, " %s", v)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "NO reports: %d\n", res.TotalNO())

	lin, err := monitor.Linearizable(trace.Queue(), h)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "offline oracle says linearizable: %v\n", lin)
	return nil
}

func run(out io.Writer, traceDir string, procs, steps int, seed int64) error {
	s := monitor.NewSession()
	defer s.Close()
	if err := report(out, s, chanWorkload{q: newChanQueue(procs * steps)}, traceDir, procs, steps, seed); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return report(out, s, staleWorkload{q: &staleQueue{}}, traceDir, procs, steps, seed)
}

func main() {
	procs := flag.Int("procs", 3, "logical processes")
	steps := flag.Int("steps", 60, "scheduler picks in the recorded workload")
	seed := flag.Int64("seed", 1, "workload seed")
	traceDir := flag.String("trace", "", "directory to write the recorded histories to as NDJSON trace files")
	flag.Parse()
	if err := run(os.Stdout, *traceDir, *procs, *steps, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "extsut:", err)
		os.Exit(1)
	}
}
