package main

import (
	"bytes"
	"flag"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/drv-go/drv/exp/trace"
)

var update = flag.Bool("update", false, "rewrite the golden verdict stream")

// TestGoldenVerdictStream pins the acceptance contract: the demo's verdict
// stream is byte-deterministic for a given seed.
func TestGoldenVerdictStream(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", 3, 60, 1); err != nil {
		t.Fatalf("run: %v", err)
	}
	golden := filepath.Join("testdata", "verdicts.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("output drifted from %s (rerun with -update if intended):\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}

	// A second run in the same process must be byte-identical too.
	var again bytes.Buffer
	if err := run(&again, "", 3, 60, 1); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two runs with the same seed diverged")
	}
}

// TestTraceOutRoundTrips pins the -trace output: the written NDJSON files
// parse back to exactly the recorded histories.
func TestTraceOutRoundTrips(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(&buf, dir, 3, 60, 1); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, tc := range []struct {
		slug string
		w    workload
	}{
		{"chan_queue", chanWorkload{q: newChanQueue(180)}},
		{"stale_queue", staleWorkload{q: &staleQueue{}}},
	} {
		f, err := os.Open(filepath.Join(dir, tc.slug+".jsonl"))
		if err != nil {
			t.Fatalf("%s: %v", tc.slug, err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.slug, err)
		}
		if tr.Meta.N != 3 {
			t.Fatalf("%s: meta n = %d, want 3", tc.slug, tr.Meta.N)
		}
		want := record(tc.w, 3, 60, 1)
		if !tr.Word.Equal(want) {
			t.Fatalf("%s: round-tripped history differs:\n got %v\nwant %v", tc.slug, tr.Word, want)
		}
	}
}

// TestOnlyExpImports enforces the outside-consumer property: this program
// may import only the standard library and the exported exp/... packages —
// never internal/... (which the Go toolchain would reject for a real
// external module anyway; this test keeps it honest in-repo).
func TestOnlyExpImports(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "main.go", nil, parser.ImportsOnly)
	if err != nil {
		t.Fatal(err)
	}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(path, ".") {
			continue // standard library
		}
		if !strings.HasPrefix(path, "github.com/drv-go/drv/exp/") {
			t.Errorf("import %q is neither std nor exp/...; extsut must consume only the exported surface", path)
		}
	}
}
