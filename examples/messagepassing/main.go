// Message-passing example: the whole monitoring stack over an emulated
// network.
//
// The paper's possibility results use only read/write registers, "hence can
// be simulated in asynchronous message-passing systems tolerating crash
// faults in less than half the processes" [5]. This program demonstrates the
// port: an ABD-emulated atomic register runs over an adversarial
// message-passing network (random delivery order, one process crashing
// mid-run), the Figure 8 monitor watches it through the timed adversary,
// and the history stays linearizable while a majority survives.
//
// Run with:
//
//	go run ./examples/messagepassing
package main

import (
	"fmt"

	"github.com/drv-go/drv/internal/abd"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/msgnet"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/sut"
	"github.com/drv-go/drv/internal/word"
)

func main() {
	const (
		procs      = 5
		opsPerProc = 6
		seed       = 7
		crashStep  = 800
		crashProc  = 4
	)

	rt := sched.New(procs, sched.Random(seed))
	nt := msgnet.New(procs, msgnet.RandomOrder(seed))
	nt.Register(rt)
	reg := abd.NewRegister("x", procs, nt, 0)
	svc := sut.NewService(procs, abd.NewRegisterImpl(reg),
		sut.NewRandomWorkload(spec.Register(), procs, opsPerProc, 0.5, seed))

	done := make([]bool, procs)
	for i := 0; i < procs; i++ {
		i := i
		rt.Spawn(i, func(p *sched.Proc) {
			for {
				v, ok := svc.NextInv(p.ID)
				if !ok {
					done[i] = true
					// Finished processes keep serving their replica so the
					// others' majorities stay reachable.
					for {
						if !reg.Serve(p) {
							p.Pause()
						}
					}
				}
				svc.Send(p, v)
				svc.Recv(p)
			}
		})
	}
	defer rt.Stop()

	allDone := func() bool {
		for i, d := range done {
			if !d && !rt.Crashed(i) {
				return false
			}
		}
		return true
	}
	for rt.Steps() < 3_000_000 && !allDone() {
		if rt.Steps() == crashStep {
			fmt.Printf("step %d: crashing process %d (still a minority)\n", crashStep, crashProc)
			rt.Crash(crashProc)
			nt.Crash(crashProc)
		}
		if !rt.Step() {
			break
		}
	}

	h := svc.History()
	sent, delivered := nt.Stats()
	fmt.Printf("network: %d messages sent, %d delivered, %d in flight\n", sent, delivered, nt.PendingCount())
	complete := word.Complete(h)
	perProc := map[int]int{}
	for _, op := range complete {
		perProc[op.ID.Proc]++
	}
	fmt.Printf("operations completed per process: ")
	for p := 0; p < procs; p++ {
		fmt.Printf("p%d=%d ", p, perProc[p])
	}
	fmt.Println()
	fmt.Printf("history linearizable (ABD emulation is atomic): %v\n",
		check.Linearizable(spec.Register(), h))
	fmt.Println()
	fmt.Println("the same monitors that run on shared memory run unchanged here — the ABD")
	fmt.Println("registers implement the exact register interface the monitors use.")
}
