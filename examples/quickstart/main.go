// Quickstart: monitor an eventual counter with the Figure 5 algorithm.
//
// Three monitor processes interact with a counter service — first a correct
// one, then one that diverges — and weakly decide membership of the observed
// behaviour in WEC_COUNT: on the correct behaviour NO reports die out; on
// the diverging one they recur forever.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/sched"
)

func main() {
	const (
		procs  = 3
		steps  = 20_000
		window = 4
		seed   = 42
	)

	wec := lang.WECCount()
	fmt.Println("Figure 5 monitor, weakly deciding WEC_COUNT")
	fmt.Println()

	for _, lb := range wec.Sources(procs, seed) {
		// The adversary A exhibits the chosen behaviour; the monitor's three
		// processes each run the Figure 1 loop against it.
		adv := adversary.NewA(procs, lb.New())
		res := monitor.Run(monitor.Config{
			N: procs,
			// AmplifyWAD is the Figure 3 transformation: it upgrades the
			// weakly-all-deciding Figure 5 monitor so that on bad words
			// every process reports NO infinitely often.
			Monitor: monitor.AmplifyWAD(monitor.NewWEC(adversary.ArrayAtomic), adversary.ArrayAtomic),
			NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
				return adv, []int{adv.Register(rt)}
			},
			Policy: func(aux []int) sched.Policy {
				return sched.Biased(seed, aux[0], 0.5)
			},
			MaxSteps: steps,
		})

		// "NO infinitely often" on a finite run: a NO among the last few
		// reports of the process.
		persistent := 0
		for p := 0; p < procs; p++ {
			if res.NOInTail(p, window) {
				persistent++
			}
		}
		verdict := "ACCEPT (NOs died out)"
		if persistent == procs {
			verdict = "REJECT (all processes keep reporting NO)"
		}
		fmt.Printf("behaviour %-18s in-language=%-5v → %s [%d NOs total]\n",
			lb.Name, lb.In, verdict, res.TotalNO())
	}
}
