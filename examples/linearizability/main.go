// Linearizability example: predictive monitoring of real register
// implementations with the Figure 8 monitor V_O.
//
// Three monitor processes drive a register implementation through the timed
// adversary wrapper Aτ (Figure 6) and check, after every operation, whether
// the history reconstructed from views is linearizable. The correct atomic
// register passes; the stale-cache register — whose bug is invisible to any
// monitor without timing information (Theorem 5.2) — is caught.
//
// Run with:
//
//	go run ./examples/linearizability
package main

import (
	"fmt"

	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/sut"
)

func main() {
	const (
		procs      = 3
		opsPerProc = 8
		steps      = 100_000
	)

	// Fresh implementation per run: registers keep their cell contents, so
	// reusing one across runs would make later reads look stale against the
	// specification's initial state.
	impls := []struct {
		name string
		mk   func() sut.Impl
	}{
		{"register/atomic", func() sut.Impl { return sut.NewAtomicRegister() }},
		{"register/stale-3", func() sut.Impl { return sut.NewStaleRegister(procs, 3) }},
		{"register/split", func() sut.Impl { return sut.NewSplitRegister(procs) }},
	}
	fmt.Println("Figure 8 monitor V_O, predictively deciding LIN_REG on deployed implementations")
	fmt.Println()

	for _, impl := range impls {
		caught := false
		var lastNOs int
		for seed := int64(1); seed <= 5; seed++ {
			// The implementation is wrapped in the timed adversary Aτ so
			// responses carry views; monitors reconstruct the history sketch
			// from them (Appendix B).
			svc := sut.NewService(procs, impl.mk(), sut.NewRandomWorkload(spec.Register(), procs, opsPerProc, 0.5, seed))
			tau := adversary.NewTimed(procs, svc, adversary.ArrayAtomic)
			res := monitor.Run(monitor.Config{
				N:       procs,
				Monitor: monitor.NewLin(spec.Register(), tau, adversary.ArrayAtomic),
				NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
					return tau, nil
				},
				Policy: func([]int) sched.Policy {
					return sched.Random(seed)
				},
				MaxSteps: steps,
			})
			lastNOs = res.TotalNO()
			if lastNOs > 0 {
				caught = true
				break
			}
		}
		verdict := "linearizable on all schedules tried"
		if caught {
			verdict = fmt.Sprintf("NOT linearizable — monitor reported %d NOs", lastNOs)
		}
		fmt.Printf("%-22s → %s\n", impl.name, verdict)
	}
	fmt.Println()
	fmt.Println("note: the stale and split registers return only genuinely-written values —")
	fmt.Println("order-free monitors accept them; only the views expose the real-time violation.")
}
