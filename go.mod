module github.com/drv-go/drv

go 1.24
