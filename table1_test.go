// Root integration test: the complete Table 1. This is the repository's
// headline check — every ✓ and ✗ of the paper's results table, reproduced by
// running the corresponding monitor or impossibility construction, on both
// the sequential and the parallel engine paths. `go test -run TestTable1 .`
// regenerates the table; cmd/drvtable prints it.
package drv_test

import (
	"context"
	"runtime"
	"testing"

	"github.com/drv-go/drv/internal/core"
	"github.com/drv-go/drv/internal/experiment"
)

// paperTable1 is Table 1 of the paper, column order SD, WD, PSD, PWD.
var paperTable1 = map[string][4]bool{
	"LIN_REG":   {false, false, true, true},
	"SC_REG":    {false, false, true, true},
	"LIN_LED":   {false, false, true, true},
	"SC_LED":    {false, false, true, true},
	"EC_LED":    {false, false, false, false},
	"WEC_COUNT": {false, true, false, true},
	"SEC_COUNT": {false, false, false, true},
}

var classOrder = [4]core.Class{core.SD, core.WD, core.PSD, core.PWD}

// checkAgainstPaper asserts the rows encode and reproduce the paper's table.
func checkAgainstPaper(t *testing.T, rows []experiment.Row) {
	t.Helper()
	if len(rows) != len(paperTable1) {
		t.Fatalf("harness produced %d rows, paper has %d", len(rows), len(paperTable1))
	}
	for _, row := range rows {
		want, ok := paperTable1[row.Lang]
		if !ok {
			t.Errorf("unexpected language %s", row.Lang)
			continue
		}
		for i, cell := range row.Cells {
			if cell.Class != classOrder[i] {
				t.Errorf("%s column %d is %s, want %s", row.Lang, i, cell.Class, classOrder[i])
			}
			if cell.Expected != want[i] {
				t.Errorf("%s × %s: harness encodes %v, paper says %v", row.Lang, cell.Class, cell.Expected, want[i])
			}
			if cell.Err != nil {
				t.Errorf("%s × %s (%s): reproduction failed: %v", row.Lang, cell.Class, cell.Method, cell.Err)
			}
		}
	}
}

// TestTable1 reproduces the full-depth table on the parallel engine. In
// short mode the shrunk parameter set keeps it under a second.
func TestTable1(t *testing.T) {
	p := experiment.DefaultParams()
	if testing.Short() {
		p = experiment.ShortParams()
	}
	rows, err := experiment.Run(context.Background(), p, experiment.Options{Workers: runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstPaper(t, rows)
	t.Logf("Table 1 reproduced:\n%s", experiment.Render(rows))
}

// TestTable1SequentialMatchesParallel renders the table on both engine
// paths and asserts byte-identical output — the determinism contract the
// worker pool guarantees (order-stable folding of unit results).
func TestTable1SequentialMatchesParallel(t *testing.T) {
	p := experiment.ShortParams()
	seq, err := experiment.Run(context.Background(), p, experiment.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstPaper(t, seq)
	for _, workers := range []int{2, 8} {
		par, err := experiment.Run(context.Background(), p, experiment.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if experiment.Render(seq) != experiment.Render(par) {
			t.Errorf("workers=%d rendered table differs from sequential:\n%s\nvs\n%s",
				workers, experiment.Render(par), experiment.Render(seq))
		}
	}
}
