// Root integration test: the complete Table 1 at full depth. This is the
// repository's headline check — every ✓ and ✗ of the paper's results table,
// reproduced by running the corresponding monitor or impossibility
// construction. `go test -run TestTable1 .` regenerates the table;
// cmd/drvtable prints it.
package drv_test

import (
	"testing"

	"github.com/drv-go/drv/internal/core"
	"github.com/drv-go/drv/internal/experiment"
)

// paperTable1 is Table 1 of the paper, column order SD, WD, PSD, PWD.
var paperTable1 = map[string][4]bool{
	"LIN_REG":   {false, false, true, true},
	"SC_REG":    {false, false, true, true},
	"LIN_LED":   {false, false, true, true},
	"SC_LED":    {false, false, true, true},
	"EC_LED":    {false, false, false, false},
	"WEC_COUNT": {false, true, false, true},
	"SEC_COUNT": {false, false, false, true},
}

var classOrder = [4]core.Class{core.SD, core.WD, core.PSD, core.PWD}

func TestTable1(t *testing.T) {
	p := experiment.DefaultParams()
	if testing.Short() {
		p.Seeds = []int64{1}
		p.Steps = 8_000
		p.TimedSteps = 1_500
		p.SCSteps = 800
		p.SwapRounds = 4
		p.AttackRounds = 4
		p.Stages = 2
	}
	rows := experiment.Table1(p)
	if len(rows) != len(paperTable1) {
		t.Fatalf("harness produced %d rows, paper has %d", len(rows), len(paperTable1))
	}
	for _, row := range rows {
		want, ok := paperTable1[row.Lang]
		if !ok {
			t.Errorf("unexpected language %s", row.Lang)
			continue
		}
		for i, cell := range row.Cells {
			if cell.Class != classOrder[i] {
				t.Errorf("%s column %d is %s, want %s", row.Lang, i, cell.Class, classOrder[i])
			}
			if cell.Expected != want[i] {
				t.Errorf("%s × %s: harness encodes %v, paper says %v", row.Lang, cell.Class, cell.Expected, want[i])
			}
			if cell.Err != nil {
				t.Errorf("%s × %s (%s): reproduction failed: %v", row.Lang, cell.Class, cell.Method, cell.Err)
			}
		}
	}
	t.Logf("Table 1 reproduced:\n%s", experiment.Render(rows))
}
