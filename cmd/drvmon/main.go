// Command drvmon re-checks recorded traces offline: it reads a JSON-lines
// trace (from drvtrace) and runs the language's consistency checkers over
// the recorded word — the safety clauses, the convergence diagnostics, and
// for the register/ledger languages the full linearizability and sequential
// consistency searches. The verdict is compared against the trace's
// ground-truth label when one is present.
//
// Usage:
//
//	drvmon [-lang LANG] trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/trace"
	"github.com/drv-go/drv/internal/word"
)

func main() {
	os.Exit(run())
}

func run() int {
	langName := flag.String("lang", "", "language to check against (default: the trace's own)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: drvmon [-lang LANG] trace.jsonl")
		return 2
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "open: %v\n", err)
		return 1
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parse: %v\n", err)
		return 1
	}

	name := *langName
	if name == "" {
		name = tr.Meta.Lang
	}
	if name == "" {
		fmt.Fprintln(os.Stderr, "trace has no language; pass -lang")
		return 2
	}
	var l lang.Lang
	found := false
	for _, cand := range lang.All() {
		if cand.Name == name {
			l, found = cand, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown language %q\n", name)
		return 2
	}

	fmt.Printf("trace: %d symbols, %d processes, language %s\n", len(tr.Word), tr.Meta.N, name)
	violated := l.SafetyViolated(tr.Word)
	fmt.Printf("safety clauses: violated=%v\n", violated)
	printDiagnostics(name, tr.Word)

	if tr.Meta.Member != nil {
		fmt.Printf("ground truth (ω-word): in-language=%v\n", *tr.Meta.Member)
		if *tr.Meta.Member && violated {
			fmt.Println("MISMATCH: safety violation on an in-language trace")
			return 1
		}
		if !*tr.Meta.Member && !violated {
			fmt.Println("note: no prefix violation found — the word's badness is a liveness property (see the convergence diagnostics)")
		}
	}
	return 0
}

// printDiagnostics runs the language-specific extra checkers.
func printDiagnostics(name string, w word.Word) {
	switch name {
	case "LIN_REG", "SC_REG":
		fmt.Printf("linearizable (register): %v\n", check.Linearizable(spec.Register(), w))
		fmt.Printf("seq. consistent (register): %v\n", check.SeqConsistent(spec.Register(), w))
	case "LIN_LED", "SC_LED":
		fmt.Printf("linearizable (ledger): %v\n", check.Linearizable(spec.Ledger(), w))
		fmt.Printf("seq. consistent (ledger): %v\n", check.SeqConsistent(spec.Ledger(), w))
	case "EC_LED":
		if v := check.ECLedgerSafety(w); v != nil {
			fmt.Printf("EC ordering clause: violated (%v)\n", v)
		} else {
			fmt.Println("EC ordering clause: ok")
		}
		fmt.Printf("EC convergence (quiescent tail): %v\n", check.ECLedgerConverges(w))
	case "WEC_COUNT", "SEC_COUNT":
		if v := check.WECSafety(w); v != nil {
			fmt.Printf("WEC safety: violated (%v)\n", v)
		} else {
			fmt.Println("WEC safety: ok")
		}
		if name == "SEC_COUNT" {
			if v := check.SECSafety(w); v != nil {
				fmt.Printf("SEC safety (clause 4): violated (%v)\n", v)
			} else {
				fmt.Println("SEC safety (clause 4): ok")
			}
		}
		fmt.Printf("counter convergence (quiescent tail): %v\n", check.Converges(w))
	}
}
