// Command drvmon re-checks recorded traces offline: it reads a JSON-lines
// trace (from drvtrace) and runs the language's consistency checkers over
// the recorded word — the safety clauses, the convergence diagnostics, and
// for the register/ledger languages the full linearizability and sequential
// consistency searches. The verdict is compared against the trace's
// ground-truth label when one is present.
//
// Usage:
//
//	drvmon [-lang LANG] trace.jsonl
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/drv-go/drv/exp/trace"
	"github.com/drv-go/drv/internal/check"
	"github.com/drv-go/drv/internal/lang"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("drvmon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	langName := fs.String("lang", "", "language to check against (default: the trace's own)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: drvmon [-lang LANG] trace.jsonl")
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "open: %v\n", err)
		return 1
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fmt.Fprintf(stderr, "parse: %v\n", err)
		return 1
	}

	name := *langName
	if name == "" {
		name = tr.Meta.Lang
	}
	if name == "" {
		fmt.Fprintln(stderr, "trace has no language; pass -lang")
		return 2
	}
	found := false
	var l lang.Lang
	for _, cand := range lang.All() {
		if cand.Name == name {
			l, found = cand, true
			break
		}
	}
	if !found {
		fmt.Fprintf(stderr, "unknown language %q\n", name)
		return 2
	}

	fmt.Fprintf(stdout, "trace: %d symbols, %d processes, language %s\n", len(tr.Word), tr.Meta.N, name)
	violated := l.SafetyViolated(tr.Word)
	fmt.Fprintf(stdout, "safety clauses: violated=%v\n", violated)
	printDiagnostics(stdout, name, tr.Word)

	if tr.Meta.Member != nil {
		fmt.Fprintf(stdout, "ground truth (ω-word): in-language=%v\n", *tr.Meta.Member)
		if *tr.Meta.Member && violated {
			fmt.Fprintln(stdout, "MISMATCH: safety violation on an in-language trace")
			return 1
		}
		if !*tr.Meta.Member && !violated {
			fmt.Fprintln(stdout, "note: no prefix violation found — the word's badness is a liveness property (see the convergence diagnostics)")
		}
	}
	return 0
}

// printDiagnostics runs the language-specific extra checkers.
func printDiagnostics(stdout io.Writer, name string, w trace.Word) {
	switch name {
	case "LIN_REG", "SC_REG":
		fmt.Fprintf(stdout, "linearizable (register): %v\n", check.Linearizable(trace.Register(), w))
		fmt.Fprintf(stdout, "seq. consistent (register): %v\n", check.SeqConsistent(trace.Register(), w))
	case "LIN_LED", "SC_LED":
		fmt.Fprintf(stdout, "linearizable (ledger): %v\n", check.Linearizable(trace.Ledger(), w))
		fmt.Fprintf(stdout, "seq. consistent (ledger): %v\n", check.SeqConsistent(trace.Ledger(), w))
	case "EC_LED":
		if v := check.ECLedgerSafety(w); v != nil {
			fmt.Fprintf(stdout, "EC ordering clause: violated (%v)\n", v)
		} else {
			fmt.Fprintln(stdout, "EC ordering clause: ok")
		}
		fmt.Fprintf(stdout, "EC convergence (quiescent tail): %v\n", check.ECLedgerConverges(w))
	case "WEC_COUNT", "SEC_COUNT":
		if v := check.WECSafety(w); v != nil {
			fmt.Fprintf(stdout, "WEC safety: violated (%v)\n", v)
		} else {
			fmt.Fprintln(stdout, "WEC safety: ok")
		}
		if name == "SEC_COUNT" {
			if v := check.SECSafety(w); v != nil {
				fmt.Fprintf(stdout, "SEC safety (clause 4): violated (%v)\n", v)
			} else {
				fmt.Fprintln(stdout, "SEC safety (clause 4): ok")
			}
		}
		fmt.Fprintf(stdout, "counter convergence (quiescent tail): %v\n", check.Converges(w))
	}
}
