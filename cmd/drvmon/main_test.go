package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/drv-go/drv/internal/spec"
	"github.com/drv-go/drv/internal/trace"
	"github.com/drv-go/drv/internal/word"
)

func runMon(args ...string) (int, string, string) {
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// writeTrace writes a minimal labelled trace and returns its path.
func writeTrace(t *testing.T, langName string, member bool, w word.Word) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tw := trace.NewWriter(f)
	if err := tw.WriteMeta(trace.Meta{N: 2, Lang: langName, Member: &member, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteWord(w); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func goodCounterWord() word.Word {
	b := word.NewB()
	b.Op(0, spec.OpInc, nil, word.Unit{})
	b.Op(1, spec.OpRead, nil, word.Int(1))
	return b.Word()
}

func TestUsageWithoutArgs(t *testing.T) {
	code, _, errOut := runMon()
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "usage:") {
		t.Errorf("missing usage line: %s", errOut)
	}
}

func TestHelpExitsZero(t *testing.T) {
	if code, _, _ := runMon("-h"); code != 0 {
		t.Errorf("-h exited %d, want 0", code)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runMon("-no-such-flag"); code != 2 {
		t.Errorf("bad flag exited %d, want 2", code)
	}
}

func TestMissingFile(t *testing.T) {
	code, _, errOut := runMon("nonexistent.jsonl")
	if code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut, "open:") {
		t.Errorf("missing open diagnostic: %s", errOut)
	}
}

func TestChecksConsistentTrace(t *testing.T) {
	path := writeTrace(t, "WEC_COUNT", true, goodCounterWord())
	code, out, errOut := runMon(path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"language WEC_COUNT", "violated=false", "ground truth", "in-language=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestDetectsMismatch(t *testing.T) {
	// An in-language label on a word that violates WEC clause (1) — a
	// process reading less than its own preceding incs — must be reported
	// as a mismatch.
	b := word.NewB()
	b.Op(0, spec.OpInc, nil, word.Unit{})
	b.Op(0, spec.OpRead, nil, word.Int(0))
	path := writeTrace(t, "WEC_COUNT", true, b.Word())
	code, out, _ := runMon(path)
	if code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "MISMATCH") {
		t.Errorf("missing MISMATCH line:\n%s", out)
	}
}

func TestLangOverride(t *testing.T) {
	path := writeTrace(t, "", true, goodCounterWord())
	code, _, errOut := runMon(path)
	if code != 2 {
		t.Errorf("trace without language exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "pass -lang") {
		t.Errorf("missing -lang hint: %s", errOut)
	}
	code, out, errOut := runMon("-lang", "WEC_COUNT", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "language WEC_COUNT") {
		t.Errorf("override not applied:\n%s", out)
	}
	if code, _, _ := runMon("-lang", "NOPE", path); code != 2 {
		t.Errorf("unknown language exited %d, want 2", code)
	}
}
