// Command drvtable regenerates Table 1 of the paper: for every language row
// and decidability notion it runs the corresponding possibility monitor or
// impossibility construction and prints the resulting matrix, marking any
// cell whose reproduction failed.
//
// Usage:
//
//	drvtable [-procs n] [-seeds k] [-steps s] [-window w] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/drv-go/drv/internal/experiment"
)

func main() {
	os.Exit(run())
}

func run() int {
	procs := flag.Int("procs", 3, "monitor process count for possibility cells")
	seeds := flag.Int("seeds", 2, "number of scheduling seeds per possibility cell")
	steps := flag.Int("steps", 30_000, "step bound for untimed possibility runs")
	timedSteps := flag.Int("timed-steps", 4_000, "step bound for predictive-monitor runs")
	scSteps := flag.Int("sc-steps", 1_500, "step bound for sequential-consistency monitor runs")
	window := flag.Int("window", 4, "verdict-tail window for the ω-quantifier proxies")
	rounds := flag.Int("rounds", 8, "rounds for the Lemma 5.1 swap and prefix attacks")
	stages := flag.Int("stages", 3, "alternation stages for the Lemma 6.5 attack")
	verbose := flag.Bool("v", false, "print per-cell method and evidence")
	flag.Parse()

	p := experiment.Params{
		Procs:        *procs,
		Steps:        *steps,
		TimedSteps:   *timedSteps,
		SCSteps:      *scSteps,
		Window:       *window,
		SwapRounds:   *rounds,
		AttackRounds: *rounds,
		Stages:       *stages,
	}
	for s := int64(1); s <= int64(*seeds); s++ {
		p.Seeds = append(p.Seeds, s)
	}

	rows := experiment.Table1(p)
	fmt.Println("Table 1 — decidability of the example languages (✓ decidable, ✗ impossible; '!' marks a failed reproduction)")
	fmt.Println()
	fmt.Print(experiment.Render(rows))

	failures := 0
	for _, row := range rows {
		for _, cell := range row.Cells {
			if *verbose {
				status := "ok"
				if cell.Err != nil {
					status = "FAILED: " + cell.Err.Error()
				}
				fmt.Printf("\n%s × %s (%s)\n  method:   %s\n  evidence: %s\n  status:   %s\n",
					cell.Lang, cell.Class, cell.Mark(), cell.Method, cell.Evidence, status)
			}
			if cell.Err != nil {
				failures++
				if !*verbose {
					fmt.Fprintf(os.Stderr, "FAILED %s × %s: %v\n", cell.Lang, cell.Class, cell.Err)
				}
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "\n%d cell(s) failed to reproduce\n", failures)
		return 1
	}
	fmt.Println("\nall 28 cells reproduced")
	return 0
}
