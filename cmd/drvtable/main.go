// Command drvtable regenerates Table 1 of the paper: for every language row
// and decidability notion it runs the corresponding possibility monitor or
// impossibility construction and prints the resulting matrix, marking any
// cell whose reproduction failed.
//
// Cells run on a bounded worker pool (-j); results are folded back in plan
// order, so the printed table is byte-identical for every worker count.
//
// Usage:
//
//	drvtable [-procs n] [-seeds k] [-steps s] [-window w] [-j workers]
//	         [-pool] [-progress] [-fail-fast] [-timeout d] [-cpuprofile f] [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/drv-go/drv/internal/experiment"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("drvtable", flag.ContinueOnError)
	fs.SetOutput(stderr)
	procs := fs.Int("procs", 3, "monitor process count for possibility cells")
	seeds := fs.Int("seeds", 2, "number of scheduling seeds per possibility cell")
	steps := fs.Int("steps", 30_000, "step bound for untimed possibility runs")
	timedSteps := fs.Int("timed-steps", 4_000, "step bound for predictive-monitor runs")
	scSteps := fs.Int("sc-steps", 1_500, "step bound for sequential-consistency monitor runs")
	window := fs.Int("window", 4, "verdict-tail window for the ω-quantifier proxies")
	rounds := fs.Int("rounds", 8, "rounds for the Lemma 5.1 swap and prefix attacks")
	stages := fs.Int("stages", 3, "alternation stages for the Lemma 6.5 attack")
	verbose := fs.Bool("v", false, "print per-cell method and evidence")
	var workers int
	fs.IntVar(&workers, "j", runtime.NumCPU(), "worker-pool size; 1 runs the cells sequentially")
	fs.IntVar(&workers, "parallel", runtime.NumCPU(), "alias for -j")
	progress := fs.Bool("progress", false, "stream per-cell completion to stderr")
	failFast := fs.Bool("fail-fast", false, "cancel outstanding cells after the first failure")
	timeout := fs.Duration("timeout", 0, "overall deadline, checked between cell units — in-flight runs finish their step bound (0 = none)")
	pool := fs.Bool("pool", true, "reuse one pooled runtime+session per worker (output is byte-identical either way)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "drvtable: cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "drvtable: cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}

	p := experiment.Params{
		Procs:        *procs,
		Steps:        *steps,
		TimedSteps:   *timedSteps,
		SCSteps:      *scSteps,
		Window:       *window,
		SwapRounds:   *rounds,
		AttackRounds: *rounds,
		Stages:       *stages,
	}
	for s := int64(1); s <= int64(*seeds); s++ {
		p.Seeds = append(p.Seeds, s)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := experiment.Options{Workers: workers, FailFast: *failFast, Unpooled: !*pool}
	if *progress {
		start := time.Now()
		opts.OnCell = func(u experiment.CellUpdate) {
			status := "ok"
			if !u.Cell.OK() {
				status = "FAILED"
			}
			fmt.Fprintf(stderr, "[%2d/%d %7.2fs] %-10s × %-3s %s\n",
				u.Done, u.Total, time.Since(start).Seconds(), u.Cell.Lang, u.Cell.Class, status)
		}
	}

	rows, runErr := experiment.Run(ctx, p, opts)
	fmt.Fprintln(stdout, "Table 1 — decidability of the example languages (✓ decidable, ✗ impossible; '!' marks a failed reproduction)")
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, experiment.Render(rows))

	failures := 0
	for _, row := range rows {
		for _, cell := range row.Cells {
			if *verbose {
				status := "ok"
				if cell.Err != nil {
					status = "FAILED: " + cell.Err.Error()
				}
				fmt.Fprintf(stdout, "\n%s × %s (%s)\n  method:   %s\n  evidence: %s\n  status:   %s\n",
					cell.Lang, cell.Class, cell.Mark(), cell.Method, cell.Evidence, status)
			}
			if cell.Err != nil {
				failures++
				if !*verbose {
					fmt.Fprintf(stderr, "FAILED %s × %s: %v\n", cell.Lang, cell.Class, cell.Err)
				}
			}
		}
	}
	if runErr != nil {
		fmt.Fprintf(stderr, "\nrun interrupted: %v\n", runErr)
		return 1
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "\n%d cell(s) failed to reproduce\n", failures)
		return 1
	}
	fmt.Fprintln(stdout, "\nall 28 cells reproduced")
	return 0
}
