package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

// smallArgs sizes the table down so the whole golden run takes well under a
// second while every cell still reproduces (see experiment.ShortParams).
var smallArgs = []string{
	"-seeds", "1", "-steps", "3000", "-timed-steps", "600",
	"-sc-steps", "300", "-rounds", "3", "-stages", "2",
}

func runTable(t *testing.T, extra ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(append(append([]string{}, smallArgs...), extra...), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestGoldenOutput(t *testing.T) {
	code, out, errOut := runTable(t, "-j", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	golden, err := os.ReadFile("testdata/table_small.golden")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Errorf("sequential output does not match golden file:\n%s\nwant:\n%s", out, golden)
	}
}

func TestParallelOutputByteIdentical(t *testing.T) {
	_, seq, _ := runTable(t, "-j", "1")
	for _, j := range []string{"2", "4", "8"} {
		code, par, errOut := runTable(t, "-j", j)
		if code != 0 {
			t.Fatalf("-j %s: exit %d, stderr:\n%s", j, code, errOut)
		}
		if par != seq {
			t.Errorf("-j %s output differs from sequential:\n%s\nvs\n%s", j, par, seq)
		}
	}
}

func TestPooledOutputByteIdentical(t *testing.T) {
	// -pool is a pure optimization: the rendered table (and the golden file)
	// must be byte-identical with runtime pooling on and off, sequentially
	// and across worker pools.
	golden, err := os.ReadFile("testdata/table_small.golden")
	if err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-j", "1", "-pool=true"},
		{"-j", "1", "-pool=false"},
		{"-j", "4", "-pool=false"},
	} {
		code, out, errOut := runTable(t, args...)
		if code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", args, code, errOut)
		}
		if out != string(golden) {
			t.Errorf("%v output does not match golden file:\n%s\nwant:\n%s", args, out, golden)
		}
	}
}

func TestParallelAlias(t *testing.T) {
	_, seq, _ := runTable(t, "-j", "1")
	code, par, _ := runTable(t, "-parallel", "4")
	if code != 0 {
		t.Fatalf("-parallel 4 exited %d", code)
	}
	if par != seq {
		t.Error("-parallel output differs from -j output")
	}
}

func TestProgressGoesToStderrOnly(t *testing.T) {
	code, out, errOut := runTable(t, "-j", "4", "-progress")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out, "[") {
		t.Error("progress lines leaked into stdout")
	}
	lines := strings.Count(errOut, "\n")
	if lines != 28 {
		t.Errorf("expected 28 progress lines on stderr, got %d:\n%s", lines, errOut)
	}
	for done := 1; done <= 28; done++ {
		if !strings.Contains(errOut, fmt.Sprintf("[%2d/28", done)) {
			t.Errorf("missing progress line for cell %d", done)
		}
	}
}

func TestVerboseListsEveryCell(t *testing.T) {
	code, out, _ := runTable(t, "-j", "2", "-v")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if got := strings.Count(out, "method:"); got != 28 {
		t.Errorf("verbose output lists %d cells, want 28", got)
	}
}

func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("-h exited %d, want 0", code)
	}
	if !strings.Contains(stderr.String(), "Usage of drvtable") {
		t.Errorf("no usage text on stderr: %s", stderr.String())
	}
}

func TestBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "flag") {
		t.Errorf("no flag diagnostic on stderr: %s", stderr.String())
	}
}
