// Command drvsketch reproduces Figure 7: it runs the predictive monitor V_O
// against the timed adversary Aτ on a register behaviour, reconstructs the
// sketch x~(E) from the views (Appendix B), and renders both the input word
// x(E) and the sketch as ASCII interval diagrams, making the "shrinking" of
// operations visible.
//
// Usage:
//
//	drvsketch [-n 3] [-seed 1] [-steps 600] [-source name] [-kind atomic|aadgms|collect]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/drv-go/drv/exp/trace"
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/sched"
	"github.com/drv-go/drv/internal/sketch"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("drvsketch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 3, "process count (Figure 7 uses 3)")
	seed := fs.Int64("seed", 1, "schedule seed")
	steps := fs.Int("steps", 600, "scheduler step bound (0 = monitor.DefaultMaxSteps)")
	source := fs.String("source", "", "register behaviour source (default: first; see drvtrace -list -lang LIN_REG)")
	kindName := fs.String("kind", "atomic", "announcement array kind: atomic, aadgms or collect")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var kind adversary.ArrayKind
	switch *kindName {
	case "atomic":
		kind = adversary.ArrayAtomic
	case "aadgms":
		kind = adversary.ArrayAADGMS
	case "collect":
		kind = adversary.ArrayCollect
	default:
		fmt.Fprintf(stderr, "unknown array kind %q\n", *kindName)
		return 2
	}

	sources := lang.LinReg().Sources(*n, *seed)
	var chosen *adversary.Labeled
	for i := range sources {
		if *source == "" || sources[i].Name == *source {
			chosen = &sources[i]
			break
		}
	}
	if chosen == nil {
		fmt.Fprintf(stderr, "unknown source %q\n", *source)
		return 2
	}

	adv := adversary.NewA(*n, chosen.New())
	tau := adversary.NewTimed(*n, adv, kind)
	res := monitor.Run(monitor.Config{
		N:       *n,
		Monitor: monitor.NewLin(trace.Register(), tau, kind),
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			return tau, []int{adv.Register(rt)}
		},
		Policy: func(aux []int) sched.Policy {
			return sched.Biased(*seed, aux[0], 0.5)
		},
		MaxSteps: *steps,
	})

	sk, err := res.Sketch(*n, tau.InvAt)
	if err != nil {
		fmt.Fprintf(stderr, "sketch reconstruction: %v\n", err)
		if kind == adversary.ArrayCollect {
			fmt.Fprintln(stderr, "(collect views need not be totally ordered — this is the Section 6.2 caveat)")
		}
		return 1
	}
	fmt.Fprintf(stdout, "behaviour: %s/%s (in LIN_REG: %v), %d processes, seed %d\n\n",
		lang.LinReg().Name, chosen.Name, chosen.In, *n, *seed)
	fmt.Fprint(stdout, sketch.RenderComparison(res.History, sk))

	noTotal := res.TotalNO()
	fmt.Fprintf(stdout, "\nmonitor verdicts: %d NO reports across %d processes\n", noTotal, *n)
	return 0
}
