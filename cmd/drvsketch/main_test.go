package main

import (
	"bytes"
	"strings"
	"testing"
)

func runSketch(args ...string) (int, string, string) {
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRendersComparison(t *testing.T) {
	code, out, errOut := runSketch("-steps", "400")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"behaviour: LIN_REG", "monitor verdicts:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestUnknownKind(t *testing.T) {
	code, _, errOut := runSketch("-kind", "bogus")
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown array kind") {
		t.Errorf("missing diagnostic: %s", errOut)
	}
}

func TestUnknownSource(t *testing.T) {
	code, _, errOut := runSketch("-source", "nope")
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown source") {
		t.Errorf("missing diagnostic: %s", errOut)
	}
}

func TestHelpExitsZero(t *testing.T) {
	if code, _, _ := runSketch("-h"); code != 0 {
		t.Errorf("-h exited %d, want 0", code)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runSketch("-no-such-flag"); code != 2 {
		t.Errorf("bad flag exited %d, want 2", code)
	}
}
