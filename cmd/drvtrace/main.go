// Command drvtrace generates labelled behaviour traces: it runs one of a
// language's behaviour sources against the adversary A under a seeded
// schedule and writes the exhibited word — with its ground-truth membership
// label — as a JSON-lines trace, ready for offline re-checking with drvmon.
//
// Usage:
//
//	drvtrace -lang WEC_COUNT [-list] [-source name] [-n 3] [-seed 1] [-steps 20000] [-o out.jsonl]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/drv-go/drv/exp/trace"
	"github.com/drv-go/drv/internal/adversary"
	"github.com/drv-go/drv/internal/lang"
	"github.com/drv-go/drv/internal/monitor"
	"github.com/drv-go/drv/internal/sched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("drvtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	langName := fs.String("lang", "WEC_COUNT", "language: LIN_REG, SC_REG, LIN_LED, SC_LED, EC_LED, WEC_COUNT, SEC_COUNT")
	list := fs.Bool("list", false, "list the language's behaviour sources and exit")
	source := fs.String("source", "", "behaviour source name (default: first source)")
	n := fs.Int("n", 3, "process count")
	seed := fs.Int64("seed", 1, "schedule and workload seed")
	steps := fs.Int("steps", 20_000, "scheduler step bound (0 = monitor.DefaultMaxSteps)")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var l lang.Lang
	found := false
	for _, cand := range lang.All() {
		if cand.Name == *langName {
			l, found = cand, true
			break
		}
	}
	if !found {
		fmt.Fprintf(stderr, "unknown language %q\n", *langName)
		return 2
	}

	sources := l.Sources(*n, *seed)
	if *list {
		fmt.Fprintf(stdout, "sources of %s (n=%d, seed=%d):\n", l.Name, *n, *seed)
		for _, lb := range sources {
			fmt.Fprintf(stdout, "  %-20s in-language: %v\n", lb.Name, lb.In)
		}
		return 0
	}
	var chosen *adversary.Labeled
	for i := range sources {
		if *source == "" || sources[i].Name == *source {
			chosen = &sources[i]
			break
		}
	}
	if chosen == nil {
		fmt.Fprintf(stderr, "unknown source %q (use -list)\n", *source)
		return 2
	}

	adv := adversary.NewA(*n, chosen.New())
	res := monitor.Run(monitor.Config{
		N:       *n,
		Monitor: monitor.Constant(monitor.Yes),
		NewService: func(rt *sched.Runtime) (adversary.Service, []int) {
			return adv, []int{adv.Register(rt)}
		},
		Policy: func(aux []int) sched.Policy {
			return sched.Biased(*seed, aux[0], 0.5)
		},
		MaxSteps: *steps,
	})

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "create %s: %v\n", *out, err)
			return 1
		}
		defer f.Close()
		w = f
	}
	tw := trace.NewWriter(w)
	member := chosen.In
	if err := tw.WriteMeta(trace.Meta{
		N:      *n,
		Lang:   l.Name,
		Member: &member,
		Seed:   *seed,
		Note:   "source=" + chosen.Name,
	}); err != nil {
		fmt.Fprintf(stderr, "write meta: %v\n", err)
		return 1
	}
	if err := tw.WriteWord(res.History); err != nil {
		fmt.Fprintf(stderr, "write trace: %v\n", err)
		return 1
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintf(stderr, "flush: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %d symbols of %s/%s (in-language: %v)\n",
		len(res.History), l.Name, chosen.Name, chosen.In)
	return 0
}
