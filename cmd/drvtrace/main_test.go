package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runTrace(args ...string) (int, string, string) {
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestListSources(t *testing.T) {
	code, out, _ := runTrace("-lang", "WEC_COUNT", "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "sources of WEC_COUNT") {
		t.Errorf("missing header: %s", out)
	}
	if !strings.Contains(out, "in-language: true") || !strings.Contains(out, "in-language: false") {
		t.Errorf("expected sources with both labels:\n%s", out)
	}
}

func TestUnknownLanguage(t *testing.T) {
	code, _, errOut := runTrace("-lang", "NOPE")
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown language") {
		t.Errorf("missing diagnostic: %s", errOut)
	}
}

func TestUnknownSource(t *testing.T) {
	code, _, errOut := runTrace("-lang", "WEC_COUNT", "-source", "nope")
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown source") {
		t.Errorf("missing diagnostic: %s", errOut)
	}
}

func TestHelpExitsZero(t *testing.T) {
	if code, _, _ := runTrace("-h"); code != 0 {
		t.Errorf("-h exited %d, want 0", code)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runTrace("-no-such-flag"); code != 2 {
		t.Errorf("bad flag exited %d, want 2", code)
	}
}

func TestWritesTraceFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.jsonl")
	code, _, errOut := runTrace("-lang", "WEC_COUNT", "-steps", "2000", "-o", out)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "wrote") {
		t.Errorf("missing summary on stderr: %s", errOut)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "WEC_COUNT") {
		t.Errorf("trace file lacks language meta:\n%s", data)
	}
}

func TestTraceToStdout(t *testing.T) {
	code, out, _ := runTrace("-lang", "LIN_REG", "-steps", "1500")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "LIN_REG") {
		t.Errorf("stdout trace lacks meta line:\n%s", out)
	}
}
