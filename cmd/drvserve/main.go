// Command drvserve is the monitoring-as-a-service front end: a long-running
// server that accepts recorded histories as NDJSON trace streams (the
// exp/trace line format inside the internal/serve request envelope), replays
// each stream through a sharded pool of monitor sessions, and streams the
// verdict events back incrementally.
//
// Three modes, exactly one of which must be selected:
//
//	drvserve -addr HOST:PORT [-shards N] [-queue D]
//	    Serve TCP until SIGINT/SIGTERM, then drain gracefully: in-flight
//	    replays finish and deliver their verdicts before exit.
//
//	drvserve -stdio [-shards N] [-queue D]
//	    Serve exactly one connection on stdin/stdout and exit when the
//	    input is exhausted and every response has been written. This is
//	    the scriptable form: requests in, responses out, byte-for-byte
//	    reproducible for a given input.
//
//	drvserve -send HOST:PORT [-stream ID] [-logic L] [-object O]
//	         [-array A] [-max-steps K] trace.jsonl
//	    Client mode: read a trace file (e.g. written by extsut -trace or
//	    drvtrace), stream it to a drvserve server as one verdict stream,
//	    and copy the server's response lines to stdout verbatim.
//
// Served verdict streams inherit the replay determinism contract: the same
// input yields byte-identical response lines regardless of pool size, and
// re-running the recorded history through exp/monitor reproduces exactly the
// served verdicts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/drv-go/drv/exp/trace"
	"github.com/drv-go/drv/internal/serve"
)

func main() { os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)) }

const usage = "usage: drvserve -addr HOST:PORT | drvserve -stdio | drvserve -send HOST:PORT trace.jsonl"

// options is the client-mode stream selection.
type options struct {
	stream   string
	logic    string
	object   string
	array    string
	maxSteps int
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("drvserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "serve TCP on this address (e.g. :7077)")
	stdio := fs.Bool("stdio", false, "serve one connection on stdin/stdout")
	shards := fs.Int("shards", 0, "session-pool width (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "per-shard pending-run queue depth (0 = default)")
	send := fs.String("send", "", "client mode: stream a trace file to a drvserve at this address")
	stream := fs.String("stream", "trace", "client: stream id")
	logic := fs.String("logic", "lin", "client: monitor logic (lin, sc, wec, sec, ecledger)")
	object := fs.String("object", "queue", "client: sequential object (register, counter, queue, stack, ledger, consensus)")
	array := fs.String("array", "", "client: announcement array (atomic, aadgms, collect)")
	maxSteps := fs.Int("max-steps", 0, "client: replay step bound (0 = monitor default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	modes := 0
	for _, on := range []bool{*addr != "", *stdio, *send != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(stderr, usage)
		return 2
	}
	cfg := serve.Config{Shards: *shards, QueueDepth: *queue}
	switch {
	case *stdio:
		return serveStdio(cfg, stdin, stdout, stderr)
	case *addr != "":
		return serveTCP(cfg, *addr, stderr)
	default:
		if fs.NArg() != 1 {
			fmt.Fprintln(stderr, usage)
			return 2
		}
		o := options{stream: *stream, logic: *logic, object: *object, array: *array, maxSteps: *maxSteps}
		return sendTrace(*send, fs.Arg(0), o, stdout, stderr)
	}
}

// rw pairs the process's stdin and stdout into one connection.
type rw struct {
	io.Reader
	io.Writer
}

// serveStdio serves exactly one connection on stdin/stdout.
func serveStdio(cfg serve.Config, stdin io.Reader, stdout, stderr io.Writer) int {
	srv := serve.New(cfg)
	err := srv.ServeConn(rw{stdin, stdout})
	if serr := srv.Shutdown(context.Background()); err == nil {
		err = serr
	}
	if err != nil {
		fmt.Fprintln(stderr, "drvserve:", err)
		return 1
	}
	return 0
}

// serveTCP serves connections on addr until SIGINT/SIGTERM, then drains.
func serveTCP(cfg serve.Config, addr string, stderr io.Writer) int {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(stderr, "drvserve:", err)
		return 1
	}
	fmt.Fprintf(stderr, "drvserve: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	srv := serve.New(cfg)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(stderr, "drvserve: draining")
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintln(stderr, "drvserve: shutdown:", err)
			return 1
		}
		<-serveErr
		return 0
	case err := <-serveErr:
		// The listener failed before any signal.
		fmt.Fprintln(stderr, "drvserve:", err)
		srv.Shutdown(context.Background())
		return 1
	}
}

// encodeRequest renders a parsed trace as one complete request: handshake,
// open, meta, every symbol, close. This is exactly what -send puts on the
// wire, so a captured request file replays it byte-for-byte.
func encodeRequest(w io.Writer, tr *trace.Trace, o options) error {
	enc := json.NewEncoder(w)
	msgs := []serve.Request{
		{Config: &serve.ClientConfig{Protocol: serve.ProtocolVersion}},
		{Open: &serve.Open{Stream: o.stream, Logic: o.logic, Object: o.object, Array: o.array, MaxSteps: o.maxSteps}},
		{Event: &serve.StreamEvent{Stream: o.stream, Event: trace.Event{Kind: trace.KindMeta, Meta: &tr.Meta}}},
	}
	for _, sym := range tr.Word {
		ev, err := trace.EncodeSymbol(sym)
		if err != nil {
			return err
		}
		msgs = append(msgs, serve.Request{Event: &serve.StreamEvent{Stream: o.stream, Event: ev}})
	}
	msgs = append(msgs, serve.Request{Close: &serve.CloseStream{Stream: o.stream}})
	for _, m := range msgs {
		if err := enc.Encode(m); err != nil {
			return err
		}
	}
	return nil
}

// dialRetry dials addr, retrying for a few seconds so a just-started server
// (e.g. backgrounded in a script) has time to bind.
func dialRetry(addr string) (net.Conn, error) {
	deadline := time.Now().Add(3 * time.Second)
	for {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// sendTrace streams one trace file to a server and copies the response lines
// to stdout.
func sendTrace(addr, path string, o options, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, "drvserve:", err)
		return 1
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(stderr, "drvserve: parse %s: %v\n", path, err)
		return 1
	}

	conn, err := dialRetry(addr)
	if err != nil {
		fmt.Fprintln(stderr, "drvserve: dial:", err)
		return 1
	}
	defer conn.Close()
	if err := encodeRequest(conn, tr, o); err != nil {
		fmt.Fprintln(stderr, "drvserve: send:", err)
		return 1
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		if err := tc.CloseWrite(); err != nil {
			fmt.Fprintln(stderr, "drvserve:", err)
			return 1
		}
	}
	if _, err := io.Copy(stdout, conn); err != nil {
		fmt.Fprintln(stderr, "drvserve: recv:", err)
		return 1
	}
	return 0
}
