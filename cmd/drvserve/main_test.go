package main

import (
	"bytes"
	"context"
	"flag"
	"net"
	"os"
	"path/filepath"
	"testing"

	"github.com/drv-go/drv/exp/trace"
	"github.com/drv-go/drv/internal/serve"
)

var update = flag.Bool("update", false, "rewrite the request and response goldens")

// slugs are the extsut workloads whose recorded histories are committed
// under testdata (regenerate with: go run ../../examples/extsut -trace testdata).
var slugs = []string{"chan_queue", "stale_queue"}

func loadTrace(t *testing.T, slug string) *trace.Trace {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", slug+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatalf("%s: %v", slug, err)
	}
	return tr
}

func opts(slug string) options {
	return options{stream: slug, logic: "lin", object: "queue"}
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output drifted from %s (rerun with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestRequestGolden pins the exact bytes -send puts on the wire for the
// committed histories.
func TestRequestGolden(t *testing.T) {
	for _, slug := range slugs {
		var buf bytes.Buffer
		if err := encodeRequest(&buf, loadTrace(t, slug), opts(slug)); err != nil {
			t.Fatalf("%s: %v", slug, err)
		}
		checkGolden(t, filepath.Join("testdata", slug+"_request.ndjson"), buf.Bytes())
	}
}

// serveBytes runs one request through a fresh server and returns the raw
// response bytes.
func serveBytes(t *testing.T, cfg serve.Config, req []byte) []byte {
	t.Helper()
	srv := serve.New(cfg)
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	}()
	var out bytes.Buffer
	if err := srv.ServeConn(rw{bytes.NewReader(req), &out}); err != nil {
		t.Fatalf("ServeConn: %v", err)
	}
	return out.Bytes()
}

// TestResponseGolden is the acceptance pin: the served verdict stream for a
// fixed input is byte-identical across two runs and across pool sizes, and
// matches the committed golden.
func TestResponseGolden(t *testing.T) {
	for _, slug := range slugs {
		req, err := os.ReadFile(filepath.Join("testdata", slug+"_request.ndjson"))
		if err != nil {
			t.Fatal(err)
		}
		first := serveBytes(t, serve.Config{Shards: 1}, req)
		checkGolden(t, filepath.Join("testdata", slug+"_response.golden"), first)
		if again := serveBytes(t, serve.Config{Shards: 1}, req); !bytes.Equal(first, again) {
			t.Fatalf("%s: two runs over the same input diverged", slug)
		}
		for _, shards := range []int{2, 4} {
			if got := serveBytes(t, serve.Config{Shards: shards}, req); !bytes.Equal(first, got) {
				t.Fatalf("%s: responses differ between shards=1 and shards=%d", slug, shards)
			}
		}
	}
}

// TestStdioMode drives the actual -stdio command path against the goldens.
func TestStdioMode(t *testing.T) {
	for _, slug := range slugs {
		req, err := os.ReadFile(filepath.Join("testdata", slug+"_request.ndjson"))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join("testdata", slug+"_response.golden"))
		if err != nil {
			t.Fatal(err)
		}
		var out, errb bytes.Buffer
		if code := run([]string{"-stdio", "-shards", "1"}, bytes.NewReader(req), &out, &errb); code != 0 {
			t.Fatalf("%s: -stdio exited %d: %s", slug, code, errb.Bytes())
		}
		if !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("%s: -stdio output drifted:\n--- got ---\n%s\n--- want ---\n%s", slug, out.Bytes(), want)
		}
	}
}

// TestSendMode drives the -send client against an in-process TCP server and
// checks the copied responses equal the golden.
func TestSendMode(t *testing.T) {
	srv := serve.New(serve.Config{Shards: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
		if err := <-serveDone; err != serve.ErrServerClosed {
			t.Fatalf("Serve returned %v", err)
		}
	}()

	for _, slug := range slugs {
		want, err := os.ReadFile(filepath.Join("testdata", slug+"_response.golden"))
		if err != nil {
			t.Fatal(err)
		}
		var out, errb bytes.Buffer
		args := []string{"-send", ln.Addr().String(), "-stream", slug, "-logic", "lin", "-object", "queue",
			filepath.Join("testdata", slug+".jsonl")}
		if code := run(args, nil, &out, &errb); code != 0 {
			t.Fatalf("%s: -send exited %d: %s", slug, code, errb.Bytes())
		}
		if !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("%s: -send output drifted:\n--- got ---\n%s\n--- want ---\n%s", slug, out.Bytes(), want)
		}
	}
}

// TestModeSelection pins the exactly-one-mode flag contract.
func TestModeSelection(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-stdio", "-addr", ":0"},
		{"-send", "x:1", "-stdio"},
		{"-send", "x:1"}, // missing trace file
	} {
		var out, errb bytes.Buffer
		if code := run(args, nil, &out, &errb); code != 2 {
			t.Fatalf("run(%v) = %d, want 2", args, code)
		}
	}
}
