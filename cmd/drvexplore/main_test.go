package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smallArgs keeps CLI tests fast: a few dozen scenarios, no replay.
var smallArgs = []string{"-seeds", "25", "-crashes", "2"}

func runExplore(t *testing.T, extra ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(append(append([]string{}, smallArgs...), extra...), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCleanSweepExitsZero(t *testing.T) {
	code, out, errOut := runExplore(t, "-j", "2")
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "no divergences") {
		t.Errorf("missing clean-sweep summary:\n%s", out)
	}
	if !strings.Contains(out, "explored 25 scenarios") {
		t.Errorf("missing scenario count:\n%s", out)
	}
}

func TestOutputDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	var files []string
	var outs []string
	for i, j := range []string{"1", "4"} {
		f := filepath.Join(dir, "seeds"+j+".json")
		code, out, errOut := runExplore(t, "-j", j, "-out", f)
		if code != 0 {
			t.Fatalf("-j %s: exit %d, stderr:\n%s", j, code, errOut)
		}
		files = append(files, f)
		outs = append(outs, out)
		_ = i
	}
	a, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("-out files differ between -j 1 and -j 4:\n%s\nvs\n%s", a, b)
	}
	if outs[0] != outs[1] {
		t.Errorf("stdout differs between -j 1 and -j 4")
	}
	if !strings.Contains(string(a), "\"master\": 1") {
		t.Errorf("report JSON missing master seed:\n%s", a)
	}
}

func TestPooledOutputByteIdentical(t *testing.T) {
	// -pool is a pure optimization: the report, the -out file and the
	// stdout summary must be byte-identical with pooling on and off.
	dir := t.TempDir()
	var files, outs []string
	for _, cfg := range [][]string{
		{"-j", "2", "-pool=true"},
		{"-j", "2", "-pool=false"},
		{"-j", "1", "-pool=false"},
	} {
		f := filepath.Join(dir, "seeds"+strings.Join(cfg, "")+".json")
		code, out, errOut := runExplore(t, append(cfg, "-out", f)...)
		if code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", cfg, code, errOut)
		}
		files = append(files, f)
		outs = append(outs, out)
	}
	first, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(files); i++ {
		js, err := os.ReadFile(files[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, js) {
			t.Errorf("report %d differs from pooled report:\n%s\nvs\n%s", i, js, first)
		}
		if outs[i] != outs[0] {
			t.Errorf("stdout %d differs from pooled stdout", i)
		}
	}
}

func TestLangFilter(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "seeds.json")
	code, _, errOut := runExplore(t, "-lang", "WEC_COUNT", "-out", f)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	js, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), "WEC_COUNT") {
		t.Errorf("filtered sweep never ran WEC_COUNT:\n%s", js)
	}
	for _, other := range []string{"LIN_REG", "SC_REG", "LIN_LED", "SC_LED", "EC_LED", "SEC_COUNT"} {
		if strings.Contains(string(js), other) {
			t.Errorf("filtered sweep ran %s:\n%s", other, js)
		}
	}
}

func TestUnknownLangRejected(t *testing.T) {
	code, _, errOut := runExplore(t, "-lang", "NO_SUCH")
	if code != 2 {
		t.Fatalf("unknown language exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "NO_SUCH") {
		t.Errorf("no diagnostic for the unknown language: %s", errOut)
	}
}

func TestReplaySpec(t *testing.T) {
	var stdout, stderr bytes.Buffer
	spec := "drv1:WEC_COUNT/exact:n=3:seed=7:pol=random:steps=2600"
	code := run([]string{"-replay", spec}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("replay exited %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{spec, "digest:", "no divergences"} {
		if !strings.Contains(out, want) {
			t.Errorf("replay output missing %q:\n%s", want, out)
		}
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-replay", "garbage"}, &stdout, &stderr); code != 2 {
		t.Errorf("malformed replay spec exited %d, want 2", code)
	}
}

func TestProgressGoesToStderrOnly(t *testing.T) {
	code, out, errOut := runExplore(t, "-j", "2", "-progress")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out, "[") {
		t.Error("progress lines leaked into stdout")
	}
	if got := strings.Count(errOut, "\n"); got != 25 {
		t.Errorf("expected 25 progress lines on stderr, got %d", got)
	}
}

func TestCountList(t *testing.T) {
	// Regression: countList silently dropped keys outside CheckNames() and
	// rendered an empty string (instead of "none") when no key matched.
	cases := []struct {
		m    map[string]int
		want string
	}{
		{nil, "none"},
		{map[string]int{}, "none"},
		{map[string]int{"class": 3, "replay": 1}, "class=3 replay=1"},
		// Unknown keys (a report written by a newer explorer) render after
		// the known ones, sorted.
		{map[string]int{"zeta": 2, "alpha": 1, "class": 3}, "class=3 alpha=1 zeta=2"},
		{map[string]int{"mystery": 7}, "mystery=7"},
	}
	for _, tc := range cases {
		if got := countList(tc.m); got != tc.want {
			t.Errorf("countList(%v) = %q, want %q", tc.m, got, tc.want)
		}
	}
}

// writeSeedCorpus writes a small hand-rolled corpus and returns its dir.
func writeSeedCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	seeds := `drv1:WEC_COUNT/exact:n=3:seed=7:pol=random:steps=2600
drv1:LIN_REG/atomic:n=3:seed=7:pol=bursty:steps=500:crash=1@120
drv1:SEC_COUNT/over-read:n=2:seed=7:pol=biased/0.6:steps=2100
`
	if err := os.WriteFile(filepath.Join(dir, "hand.seed"), []byte(seeds), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCorpusGuidedSweep(t *testing.T) {
	// A guided sweep must exit clean, report coverage, and save the novel
	// seeds it found back into the corpus directory.
	dir := writeSeedCorpus(t)
	code, out, errOut := runExplore(t, "-j", "2", "-corpus", dir, "-mutate-frac", "0.5")
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "coverage: ") || !strings.Contains(out, "corpus seeds") {
		t.Errorf("missing coverage summary:\n%s", out)
	}
	if !strings.Contains(out, "saved ") {
		t.Errorf("guided sweep saved nothing:\n%s", out)
	}
	files, err := filepath.Glob(filepath.Join(dir, "batch-*.seed"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no batch file saved (err %v); sweep output:\n%s", err, out)
	}
}

func TestCorpusSweepDeterministicAcrossWorkers(t *testing.T) {
	// Guided runs fold signatures in scenario-index order, so -j must not
	// leak into the report or into what gets saved.
	var outs, reports, batches []string
	for _, j := range []string{"1", "4"} {
		dir := writeSeedCorpus(t)
		f := filepath.Join(t.TempDir(), "rep.json")
		code, out, errOut := runExplore(t, "-j", j, "-corpus", dir, "-mutate-frac", "0.6", "-out", f)
		if code != 0 {
			t.Fatalf("-j %s: exit %d, stderr:\n%s", j, code, errOut)
		}
		js, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		files, err := filepath.Glob(filepath.Join(dir, "batch-*.seed"))
		if err != nil || len(files) != 1 {
			t.Fatalf("-j %s: batch files %v (err %v)", j, files, err)
		}
		batch, err := os.ReadFile(files[0])
		if err != nil {
			t.Fatal(err)
		}
		// The save line names the per-run corpus directory; normalize it so
		// the comparison sees only the sweep output.
		outs = append(outs, strings.ReplaceAll(out, dir, "CORPUS"))
		reports = append(reports, string(js))
		batches = append(batches, string(batch))
	}
	if outs[0] != outs[1] {
		t.Errorf("stdout differs between -j 1 and -j 4:\n%s\nvs\n%s", outs[0], outs[1])
	}
	if reports[0] != reports[1] {
		t.Errorf("report JSON differs between -j 1 and -j 4")
	}
	if batches[0] != batches[1] {
		t.Errorf("saved corpus batch differs between -j 1 and -j 4:\n%s\nvs\n%s", batches[0], batches[1])
	}
}

func TestCorpusSaveDisabled(t *testing.T) {
	dir := writeSeedCorpus(t)
	code, _, errOut := runExplore(t, "-corpus", dir, "-corpus-save=false")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	files, err := filepath.Glob(filepath.Join(dir, "batch-*.seed"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Errorf("-corpus-save=false still wrote %v", files)
	}
}

func TestCorpusBadDirRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.seed"), []byte("not a spec\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runExplore(t, "-corpus", dir)
	if code != 2 {
		t.Fatalf("malformed corpus exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "bad.seed") {
		t.Errorf("no diagnostic naming the bad file: %s", errOut)
	}
}

func TestObjFamilySweep(t *testing.T) {
	// An object-family sweep over the seeded-bug implementations must find
	// bugs (reported on stdout with shrunk reproducers), stay free of stack
	// divergences, and exit 0 — bug findings are the product, not an error.
	code, out, errOut := runExplore(t, "-j", "2", "-family", "obj", "-seeds", "60")
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	for _, want := range []string{"objects: ", "bugs: ", "BUG ", "shrunk to drv2:obj/", "no divergences"} {
		if !strings.Contains(out, want) {
			t.Errorf("object sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestObjFamilyDeterministicAcrossWorkersAndPooling(t *testing.T) {
	// The new family rides the same byte-determinism contract: -family obj
	// reports are identical across -j 1/-j 4 and -pool/-pool=false.
	dir := t.TempDir()
	var files, outs []string
	for _, cfg := range [][]string{
		{"-j", "1", "-pool=true"},
		{"-j", "4", "-pool=true"},
		{"-j", "4", "-pool=false"},
	} {
		f := filepath.Join(dir, "obj"+strings.Join(cfg, "")+".json")
		args := append([]string{"-family", "obj", "-obj", "queue,stack,ledger"}, cfg...)
		code, out, errOut := runExplore(t, append(args, "-out", f)...)
		if code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", cfg, code, errOut)
		}
		files = append(files, f)
		outs = append(outs, out)
	}
	first, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(first), "drv2:obj/") {
		t.Fatalf("object sweep report contains no object specs:\n%s", first)
	}
	for i := 1; i < len(files); i++ {
		js, err := os.ReadFile(files[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, js) {
			t.Errorf("object report %d differs from the -j 1 report", i)
		}
		if outs[i] != outs[0] {
			t.Errorf("object stdout %d differs from the -j 1 stdout", i)
		}
	}
}

func TestObjFamilyFilters(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "obj.json")
	code, _, errOut := runExplore(t, "-family", "obj", "-obj", "queue", "-impl", "lifo", "-out", f)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	js, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), "drv2:obj/queue/lifo") {
		t.Errorf("filtered sweep never ran queue/lifo:\n%s", js)
	}
	for _, other := range []string{"obj/stack", "obj/register", "obj/counter", "obj/ledger", "queue/lock"} {
		if strings.Contains(string(js), other) {
			t.Errorf("filtered sweep ran %s:\n%s", other, js)
		}
	}
	// Unknown families, objects and implementations are usage errors, as is
	// an explicit family set that would silently ignore the object filters.
	for _, args := range [][]string{
		{"-family", "nope"},
		{"-family", "obj", "-obj", "deque"},
		{"-family", "obj", "-impl", "no-such"},
		{"-family", "lang", "-obj", "queue"},
		{"-family", "lang", "-impl", "lifo"},
	} {
		if code, _, _ := runExplore(t, args...); code != 2 {
			t.Errorf("%v exited %d, want 2", args, code)
		}
	}

	// Bare -obj/-impl imply the object family instead of being ignored.
	code, out, errOut := runExplore(t, "-obj", "queue", "-impl", "lifo")
	if code != 0 {
		t.Fatalf("bare -obj/-impl exited %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "objects: queue/lifo=") {
		t.Errorf("bare -obj/-impl did not run the object family:\n%s", out)
	}
}

func TestObjReplaySpec(t *testing.T) {
	// Replaying an object spec that exposes a seeded bug prints the finding
	// and exits 0: the bug is in the SUT, not in the stack.
	var stdout, stderr bytes.Buffer
	spec := "drv2:obj/register/split:n=2:seed=30:pol=random:steps=400:ops=2:mb=0.5"
	code := run([]string{"-replay", spec}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("replay exited %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{spec, "BUG lin", "no divergences"} {
		if !strings.Contains(out, want) {
			t.Errorf("object replay output missing %q:\n%s", want, out)
		}
	}
}

func TestLegacyDrv1CorpusStillLoads(t *testing.T) {
	// Regression for the drv1→drv2 version bump: a corpus written before the
	// object family existed must load and sweep unchanged — including the
	// committed repository corpus, which deliberately stays in drv1 form.
	dir := t.TempDir()
	legacy := `# a pre-drv2 corpus file
# sig: c1:WEC_COUNT/out|vs=3n2200|ck=r-rr-rr|cu=2
drv1:WEC_COUNT/own-inc-violation:n=3:seed=5116376774559743294:pol=random:steps=5044
drv1:LIN_REG/atomic:n=3:seed=7:pol=bursty:steps=500:crash=1@120
drv1:SEC_COUNT/over-read:n=2:seed=7:pol=biased/0.60:steps=2100
`
	if err := os.WriteFile(filepath.Join(dir, "legacy.seed"), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runExplore(t, "-corpus", dir, "-corpus-save=false")
	if code != 0 {
		t.Fatalf("legacy corpus sweep exited %d, stdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "from 3 corpus seeds") {
		t.Errorf("legacy corpus entries were not all loaded:\n%s", out)
	}
}

func TestMsgFamilySweep(t *testing.T) {
	// A message-family sweep over the seeded-bug emulations must find bugs
	// (reported on stdout with shrunk drv3 reproducers), stay free of stack
	// divergences, and exit 0.
	code, out, errOut := runExplore(t, "-j", "2", "-family", "msg", "-seeds", "60")
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	for _, want := range []string{"objects: ", "bugs: ", "BUG ", "shrunk to drv3:msg/", "no divergences"} {
		if !strings.Contains(out, want) {
			t.Errorf("message sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestMsgFamilyDeterministicAcrossWorkersAndPooling(t *testing.T) {
	// Byte-determinism extends to the message family: -family msg reports
	// are identical across -j 1/-j 4 and -pool/-pool=false.
	dir := t.TempDir()
	var files, outs []string
	for _, cfg := range [][]string{
		{"-j", "1", "-pool=true"},
		{"-j", "4", "-pool=true"},
		{"-j", "4", "-pool=false"},
	} {
		f := filepath.Join(dir, "msg"+strings.Join(cfg, "")+".json")
		args := append([]string{"-family", "msg"}, cfg...)
		code, out, errOut := runExplore(t, append(args, "-out", f)...)
		if code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", cfg, code, errOut)
		}
		files = append(files, f)
		outs = append(outs, out)
	}
	first, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(first), "drv3:msg/") {
		t.Fatalf("message sweep report contains no message specs:\n%s", first)
	}
	for i := 1; i < len(files); i++ {
		js, err := os.ReadFile(files[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, js) {
			t.Errorf("message report %d differs from the -j 1 report", i)
		}
		if outs[i] != outs[0] {
			t.Errorf("message stdout %d differs from the -j 1 stdout", i)
		}
	}
}

func TestMsgFamilyFilters(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "msg.json")
	// consensus/echo exposes its bug on essentially every schedule, so the
	// report carries full drv3 spec lines to assert the filters on.
	code, _, errOut := runExplore(t, "-family", "msg", "-obj", "consensus", "-impl", "echo", "-net", "starve", "-out", f)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	js, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), "drv3:msg/consensus/echo") {
		t.Errorf("filtered sweep never ran consensus/echo:\n%s", js)
	}
	for _, other := range []string{"msg/register", "msg/counter", "consensus/coord", "net=fifo", "net=lifo", "net=random"} {
		if strings.Contains(string(js), other) {
			t.Errorf("filtered sweep ran %s:\n%s", other, js)
		}
	}
	// Unknown network orders are usage errors, as is -net under a family
	// set that would silently ignore it.
	for _, args := range [][]string{
		{"-family", "msg", "-net", "turtle"},
		{"-family", "msg", "-obj", "queue"},
		{"-family", "lang", "-net", "lifo"},
		{"-family", "obj", "-net", "lifo"},
	} {
		if code, _, _ := runExplore(t, args...); code != 2 {
			t.Errorf("%v exited %d, want 2", args, code)
		}
	}

	// Bare -net implies the message family instead of being ignored.
	code, out, errOut := runExplore(t, "-net", "starve")
	if code != 0 {
		t.Fatalf("bare -net exited %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "objects: ") || !strings.Contains(out, "register/") {
		t.Errorf("bare -net did not run the message family:\n%s", out)
	}
}

func TestMsgReplaySpec(t *testing.T) {
	// Replaying a message spec that exposes a seeded emulation bug prints
	// the finding and exits 0: the bug is in the emulation under test, not
	// in the stack.
	var stdout, stderr bytes.Buffer
	spec := "drv3:msg/consensus/echo:n=2:seed=8551264065755986178:pol=biased/0.65:steps=20:ops=1:mb=0.6:net=starve"
	code := run([]string{"-replay", spec}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("replay exited %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{spec, "label:    correct-impl=false", "BUG lin", "no divergences"} {
		if !strings.Contains(out, want) {
			t.Errorf("message replay output missing %q:\n%s", want, out)
		}
	}
}

func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("-h exited %d, want 0", code)
	}
	if !strings.Contains(stderr.String(), "Usage of drvexplore") {
		t.Errorf("no usage text on stderr: %s", stderr.String())
	}
}

func TestBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag exited %d, want 2", code)
	}
}
